// Stock-exchange dissemination: the paper's motivating scenario
// (SuperMontage-style quote distribution) with a side-by-side tour of every
// allocation approach on the same profiled workload.
//
// Usage: ./build/examples/stock_exchange [subs_per_publisher]
#include <cstdio>
#include <cstdlib>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

using namespace greenps;

namespace {

struct Row {
  std::string name;
  CrocConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig config;
  config.num_brokers = 32;
  config.num_publishers = 8;
  config.subs_per_publisher = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  config.full_out_bw_kb_s = 40.0;
  config.seed = 7;

  std::printf("stock exchange: %zu symbols, %zu subscriptions over %zu brokers\n\n",
              config.num_publishers, config.num_publishers * config.subs_per_publisher,
              config.num_brokers);

  std::vector<Row> rows;
  {
    Row r{"FBF", {}};
    r.config.algorithm = Phase2Algorithm::kFbf;
    rows.push_back(r);
  }
  {
    Row r{"BIN PACKING", {}};
    r.config.algorithm = Phase2Algorithm::kBinPacking;
    rows.push_back(r);
  }
  for (const auto metric : {ClosenessMetric::kIntersect, ClosenessMetric::kXor,
                            ClosenessMetric::kIos, ClosenessMetric::kIou}) {
    Row r{std::string("CRAM-") + metric_name(metric), {}};
    r.config.algorithm = Phase2Algorithm::kCram;
    r.config.cram.metric = metric;
    rows.push_back(r);
  }
  {
    Row r{"PAIRWISE-K", {}};
    r.config.algorithm = Phase2Algorithm::kPairwiseK;
    rows.push_back(r);
  }
  {
    Row r{"PAIRWISE-N", {}};
    r.config.algorithm = Phase2Algorithm::kPairwiseN;
    rows.push_back(r);
  }

  std::printf("%-14s %8s %9s %10s %8s %10s %10s\n", "approach", "brokers", "clusters",
              "sys msg/s", "hops", "delay ms", "util %");

  // Baseline measurement.
  {
    Simulation sim = make_simulation(config);
    sim.run(60.0);
    sim.reset_metrics();
    sim.run(120.0);
    const SimSummary s = sim.summarize();
    std::printf("%-14s %8zu %9s %10.1f %8.2f %10.2f %10.1f\n", "MANUAL",
                s.allocated_brokers, "-", s.system_msg_rate, s.avg_hop_count,
                s.avg_delivery_delay_ms, s.avg_output_utilization * 100.0);
  }

  for (const Row& row : rows) {
    Simulation sim = make_simulation(config);
    sim.run(60.0);
    Croc croc(row.config);
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    if (!report.success) {
      std::printf("%-14s reconfiguration failed\n", row.name.c_str());
      continue;
    }
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(120.0);
    const SimSummary s = sim.summarize();
    std::printf("%-14s %8zu %9zu %10.1f %8.2f %10.2f %10.1f\n", row.name.c_str(),
                s.allocated_brokers, report.cluster_count, s.system_msg_rate,
                s.avg_hop_count, s.avg_delivery_delay_ms,
                s.avg_output_utilization * 100.0);
  }

  std::printf(
      "\nreading the table: capacity-aware approaches consolidate to a handful of\n"
      "brokers; CRAM variants additionally cluster same-interest subscribers, so\n"
      "their system message rate is the lowest; XOR's cap-and-merge behavior can\n"
      "cluster disjoint interests (higher rate than IOS/IOU).\n");
  return 0;
}
