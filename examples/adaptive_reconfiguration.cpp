// Adaptive operation: re-running CROC as the workload drifts.
//
// The bit-vector framework makes no workload assumptions, so the same
// pipeline handles drift: we deploy, profile, consolidate; then the
// subscriber population shifts (half the subscribers re-subscribe to
// different symbols), profiles re-fill, and a second reconfiguration adapts
// the broker allocation to the new interest distribution.
//
// Usage: ./build/examples/adaptive_reconfiguration
#include <cstdio>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"
#include "workload/subscription_gen.hpp"

using namespace greenps;

namespace {

void report_state(const char* label, const SimSummary& s) {
  std::printf("%-24s brokers=%2zu  system=%7.1f msg/s  hops=%.2f  delay=%.2f ms\n", label,
              s.allocated_brokers, s.system_msg_rate, s.avg_hop_count,
              s.avg_delivery_delay_ms);
}

ReconfigurationReport reconfigure(Simulation& sim) {
  CrocConfig config;
  config.algorithm = Phase2Algorithm::kCram;
  config.cram.metric = ClosenessMetric::kIos;
  Croc croc(config);
  return croc.reconfigure(sim, sim.deployment().topology.brokers().front());
}

}  // namespace

int main() {
  ScenarioConfig config;
  config.num_brokers = 24;
  config.num_publishers = 6;
  config.subs_per_publisher = 40;
  config.full_out_bw_kb_s = 40.0;
  config.seed = 5;
  Scenario scenario = build_scenario(config);
  const std::vector<std::string> symbols = scenario.symbols;
  Simulation sim(std::move(scenario.deployment), make_quote_generator(config));

  // --- epoch 1 ---
  sim.run(90.0);
  report_state("epoch 1 (MANUAL)", sim.summarize());
  {
    const auto report = reconfigure(sim);
    if (!report.success) return 1;
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(90.0);
    report_state("epoch 1 (reconfigured)", sim.summarize());
  }

  // --- workload drift: half the subscribers change interest ---
  {
    Deployment drifted = sim.deployment();
    Rng rng(99);
    StockQuoteGenerator quotes = make_quote_generator(config);
    SubscriptionGenerator gen(SubscriptionGenerator::Config{}, rng.fork());
    std::size_t changed = 0;
    for (auto& sub : drifted.subscribers) {
      if (rng.chance(0.5)) {
        const std::string& new_symbol = symbols[rng.index(symbols.size())];
        sub.filter = gen.next(new_symbol, quotes);
        ++changed;
      }
    }
    std::printf("\nworkload drift: %zu subscribers re-subscribed to new symbols\n\n",
                changed);
    sim.redeploy(std::move(drifted));
  }

  // --- epoch 2: profiles refill on the drifted workload ---
  sim.run(90.0);
  report_state("epoch 2 (stale overlay)", sim.summarize());
  {
    const auto report = reconfigure(sim);
    if (!report.success) return 1;
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(90.0);
    report_state("epoch 2 (reconfigured)", sim.summarize());
  }

  std::printf(
      "\nthe second reconfiguration re-clusters the drifted interests without any\n"
      "knowledge of the subscription language or workload distribution --\n"
      "everything is driven by the delivery bit vectors.\n");
  return 0;
}
