// Green-IT consolidation in a heterogeneous data center.
//
// The paper's motivation: 97% of enterprises run green-IT programs, and the
// broker fleet is sized for peak. This example deploys the heterogeneous
// capacity mix (100%/50%/25% brokers at 15:25:40), reconfigures with CRAM,
// and reports a back-of-the-envelope energy estimate for the deallocated
// brokers.
//
// Usage: ./build/examples/datacenter_consolidation [Ns]
#include <cstdio>
#include <cstdlib>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

using namespace greenps;

int main(int argc, char** argv) {
  ScenarioConfig config;
  config.num_brokers = 40;
  config.num_publishers = 10;
  config.subs_per_publisher = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 120;
  config.heterogeneous = true;
  config.full_out_bw_kb_s = 40.0;
  config.seed = 13;

  std::size_t total_subs = 0;
  for (std::size_t i = 1; i <= config.num_publishers; ++i) {
    total_subs += std::max<std::size_t>(1, config.subs_per_publisher / i);
  }
  std::printf(
      "data center: %zu brokers (capacity mix 100/50/25%% at 15:25:40),\n"
      "%zu publishers, %zu subscriptions (Ns=%zu, publisher i gets Ns/i)\n\n",
      config.num_brokers, config.num_publishers, total_subs, config.subs_per_publisher);

  Simulation sim = make_simulation(config);
  sim.run(90.0);
  const SimSummary before = sim.summarize();

  CrocConfig croc_config;
  croc_config.algorithm = Phase2Algorithm::kCram;
  croc_config.cram.metric = ClosenessMetric::kIou;
  Croc croc(croc_config);
  const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
  if (!report.success) {
    std::printf("reconfiguration failed\n");
    return 1;
  }

  // Which capacity classes were kept?
  std::size_t kept_full = 0;
  std::size_t kept_half = 0;
  std::size_t kept_quarter = 0;
  for (const BrokerId b : report.plan.allocated_brokers) {
    const double bw = sim.deployment().capacities.at(b).out_bw_kb_s;
    if (bw == config.full_out_bw_kb_s) {
      ++kept_full;
    } else if (bw == config.full_out_bw_kb_s * 0.5) {
      ++kept_half;
    } else {
      ++kept_quarter;
    }
  }

  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(120.0);
  const SimSummary after = sim.summarize();

  std::printf("%-28s %10s %10s\n", "", "before", "after");
  std::printf("%-28s %10zu %10zu\n", "allocated brokers", before.allocated_brokers,
              after.allocated_brokers);
  std::printf("%-28s %10.1f %10.1f\n", "system message rate (msg/s)",
              before.system_msg_rate, after.system_msg_rate);
  std::printf("%-28s %10.2f %10.2f\n", "avg hop count", before.avg_hop_count,
              after.avg_hop_count);
  std::printf("%-28s %9.1f%% %9.1f%%\n", "avg output utilization",
              before.avg_output_utilization * 100.0, after.avg_output_utilization * 100.0);
  std::printf("\nkept brokers by class: %zu full, %zu half, %zu quarter capacity\n",
              kept_full, kept_half, kept_quarter);

  // Energy estimate: a commodity 1U server idles around 150 W; every
  // deallocated broker can be suspended.
  const double watts_per_server = 150.0;
  const std::size_t freed = config.num_brokers - after.allocated_brokers;
  std::printf("energy estimate: %zu servers suspended ~= %.1f kW saved "
              "(%.0f MWh/year at 24/7)\n",
              freed, freed * watts_per_server / 1000.0,
              freed * watts_per_server * 24 * 365 / 1e6);
  return 0;
}
