// PANDA-driven deployment: describe the experiment as a topology file
// (exactly how the paper's evaluations were launched), run it, reconfigure,
// and emit the reconfigured deployment as a new topology file.
//
// Usage: ./build/examples/panda_deploy [topology-file]
// Without an argument a built-in sample topology is used.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "croc/croc.hpp"
#include "panda/panda.hpp"

using namespace greenps;

namespace {

constexpr const char* kSampleTopology = R"(# sample topology: 7 brokers, fan-out-2 tree
broker B0 bw=80 start=0
broker B1 bw=80 start=1
broker B2 bw=80 start=1
broker B3 bw=40 start=2
broker B4 bw=40 start=2
broker B5 bw=40 start=2
broker B6 bw=40 start=2
link B0 B1
link B0 B2
link B1 B3
link B1 B4
link B2 B5
link B2 B6
publisher P0 broker=B3 symbol=YHOO rate=2.0 start=10
publisher P1 broker=B6 symbol=GOOG rate=2.0 start=10
subscriber C0 broker=B5 start=12 filter=[class,=,'STOCK'],[symbol,=,'YHOO']
subscriber C1 broker=B4 start=12 filter=[class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,500000]
subscriber C2 broker=B0 start=12 filter=[class,=,'STOCK'],[symbol,=,'GOOG']
subscriber C3 broker=B3 start=12 filter=[class,=,'STOCK'],[symbol,=,'GOOG'],[low,<,150.0]
subscriber C4 broker=B6 start=12 filter=[class,=,'STOCK'],[symbol,=,'YHOO']
subscriber C5 broker=B2 start=12 filter=[class,=,'STOCK'],[symbol,=,'GOOG']
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kSampleTopology;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  PandaTopology topo;
  try {
    topo = parse_panda(text);
  } catch (const PandaError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (const std::string bad = topo.first_ordering_violation(); !bad.empty()) {
    std::fprintf(stderr, "warning: client '%s' starts before all brokers are up\n",
                 bad.c_str());
  }
  std::printf("parsed topology: %zu brokers, %zu links, %zu publishers, %zu subscribers\n",
              topo.deployment.topology.broker_count(),
              topo.deployment.topology.link_count(), topo.deployment.publishers.size(),
              topo.deployment.subscribers.size());

  Simulation sim(std::move(topo.deployment),
                 StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(7)));
  sim.run(60.0);
  const SimSummary before = sim.summarize();
  std::printf("before: %zu brokers, %.1f msg/s system, %.2f hops\n",
              before.allocated_brokers, before.system_msg_rate, before.avg_hop_count);

  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, sim.deployment().topology.brokers().front());
  if (!report.success) {
    std::printf("reconfiguration failed\n");
    return 1;
  }
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(60.0);
  const SimSummary after = sim.summarize();
  std::printf("after:  %zu brokers, %.1f msg/s system, %.2f hops\n\n",
              after.allocated_brokers, after.system_msg_rate, after.avg_hop_count);

  std::printf("reconfigured topology file:\n%s", write_panda(sim.deployment()).c_str());
  return 0;
}
