// Quickstart: the smallest end-to-end use of the library.
//
// 1. Deploy a 12-broker MANUAL overlay with stock-quote publishers.
// 2. Let the CBCs profile traffic (bit vectors fill up).
// 3. Run CROC: Phase 1 gather, Phase 2 CRAM allocation, Phase 3 recursive
//    overlay construction, GRAPE publisher placement.
// 4. Apply the plan and compare the before/after metrics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

using namespace greenps;

int main() {
  // --- 1. initial deployment ---
  ScenarioConfig config;
  config.num_brokers = 12;
  config.num_publishers = 4;
  config.subs_per_publisher = 25;
  config.full_out_bw_kb_s = 60.0;
  config.seed = 2026;
  Simulation sim = make_simulation(config);
  std::printf("deployed MANUAL overlay: %zu brokers, %zu publishers, %zu subscriptions\n",
              sim.deployment().topology.broker_count(), sim.deployment().publishers.size(),
              sim.deployment().subscribers.size());

  // --- 2. profile ---
  sim.run(60.0);
  const SimSummary before = sim.summarize();
  std::printf("before: %zu brokers active, %.1f msg/s system rate, %.2f avg hops, "
              "%.2f ms avg delay\n",
              before.allocated_brokers, before.system_msg_rate, before.avg_hop_count,
              before.avg_delivery_delay_ms);

  // --- 3. reconfigure ---
  CrocConfig croc_config;
  croc_config.algorithm = Phase2Algorithm::kCram;
  croc_config.cram.metric = ClosenessMetric::kIos;
  Croc croc(croc_config);
  const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
  if (!report.success) {
    std::printf("reconfiguration failed (insufficient broker resources)\n");
    return 1;
  }
  std::printf("\nCROC plan: %zu brokers allocated (root=broker %llu), %zu clusters, "
              "%zu BIA messages\n",
              report.allocated_brokers,
              static_cast<unsigned long long>(report.plan.root.value()),
              report.cluster_count, report.gather.bia_messages);

  // --- 4. apply and re-measure ---
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(60.0);
  const SimSummary after = sim.summarize();
  std::printf("after:  %zu brokers active, %.1f msg/s system rate, %.2f avg hops, "
              "%.2f ms avg delay\n",
              after.allocated_brokers, after.system_msg_rate, after.avg_hop_count,
              after.avg_delivery_delay_ms);
  std::printf("\nbroker reduction: %zu -> %zu (%.0f%%), system message rate: %.0f%% lower\n",
              before.allocated_brokers, after.allocated_brokers,
              100.0 * (1.0 - static_cast<double>(after.allocated_brokers) /
                                 static_cast<double>(before.allocated_brokers)),
              100.0 * (1.0 - after.system_msg_rate / before.system_msg_rate));
  return 0;
}
