// A3 (ablation) — GRAPE placement modes.
//
// GRAPE can place publishers to minimize system load (publication traffic
// crossing overlay links) or average delivery delay (rate-weighted hop
// distance). This ablation compares both against leaving every publisher at
// the Phase-3 root.
#include <cstdio>

#include "bench_util.hpp"
#include "croc/reconfig_plan.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  ScenarioConfig sc;
  sc.num_brokers = full_scale() ? 80 : 40;
  sc.num_publishers = full_scale() ? 40 : 10;
  sc.subs_per_publisher = full_scale() ? 150 : 80;
  // Moderate bandwidth: tight enough that Phase 3 keeps a multi-level tree
  // (placement only matters when the overlay has depth) but with queueing
  // headroom, so the comparison isolates placement rather than saturation.
  sc.full_out_bw_kb_s = full_scale() ? 160.0 : 18.0;
  sc.seed = 42;
  std::printf("A3: GRAPE placement-mode ablation (CRAM-IOS, %zu subscriptions)\n\n",
              sc.num_publishers * sc.subs_per_publisher);

  const std::vector<int> widths = {16, 9, 12, 8, 11, 11};
  print_row({"placement", "brokers", "sys msg/s", "hops", "avg ms", "p99 ms"}, widths);

  struct Mode {
    const char* name;
    bool run_grape;
    GrapeMode mode;
  };
  for (const Mode m : {Mode{"root (no GRAPE)", false, GrapeMode::kMinimizeLoad},
                       Mode{"minimize-load", true, GrapeMode::kMinimizeLoad},
                       Mode{"minimize-delay", true, GrapeMode::kMinimizeDelay}}) {
    Simulation sim = make_simulation(sc);
    sim.run(90.0);
    CrocConfig cfg;
    cfg.algorithm = Phase2Algorithm::kCram;
    cfg.run_grape = m.run_grape;
    cfg.grape_mode = m.mode;
    Croc croc(cfg);
    const auto report = croc.reconfigure(sim, BrokerId{0});
    if (!report.success) {
      print_row({m.name, "failed", "-", "-", "-", "-"}, widths);
      continue;
    }
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(120.0);
    const SimSummary s = sim.summarize();
    print_row({m.name, std::to_string(s.allocated_brokers), fmt(s.system_msg_rate, 1),
               fmt(s.avg_hop_count, 2), fmt(s.avg_delivery_delay_ms, 2),
               fmt(s.p99_delivery_delay_ms, 2)},
              widths);
  }
  std::printf(
      "\nexpected shape: both GRAPE modes cut the system message rate and hop\n"
      "count vs root placement (minimize-delay the most hops-wise). Note that at\n"
      "high utilization wall-clock delay can still favor the root: an interior\n"
      "broker's output link has more slack than a loaded leaf's.\n");
  return 0;
}
