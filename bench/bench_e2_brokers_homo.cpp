// E2 — Number of allocated brokers, homogeneous scenario.
//
// Expected shape: the CRAM variants allocate up to ~91% fewer brokers than
// the 80-broker baselines; BIN PACKING consistently allocates about one
// broker fewer than FBF; the broker count grows with the subscription load.
#include <cstdio>

#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  const HarnessConfig base = homogeneous_base();
  std::printf(
      "E2: allocated brokers, homogeneous\n"
      "brokers=%zu publishers=%zu %s\n\n",
      base.scenario.num_brokers, base.scenario.num_publishers,
      full_scale() ? "[FULL SCALE]" : "[reduced scale; GREENPS_FULL=1 for paper scale]");

  const std::vector<int> widths = {6, 12, 10, 10, 10, 12};
  print_row({"subs", "approach", "brokers", "clusters", "vs MANUAL", "utilization"},
            widths);

  for (const std::size_t spp : subs_per_publisher_sweep()) {
    HarnessConfig cfg = base;
    cfg.scenario.subs_per_publisher = spp;
    const std::size_t total_subs = spp * cfg.scenario.num_publishers;
    double manual_brokers = 0;
    for (const Approach a : all_approaches()) {
      const RunResult r = run_approach(a, cfg);
      if (a == Approach::kManual) {
        manual_brokers = static_cast<double>(r.summary.allocated_brokers);
      }
      print_row({std::to_string(total_subs), approach_name(a),
                 std::to_string(r.summary.allocated_brokers),
                 r.reconfigured ? std::to_string(r.report.cluster_count) : "-",
                 pct_change(manual_brokers,
                            static_cast<double>(r.summary.allocated_brokers)),
                 fmt(r.summary.avg_output_utilization * 100.0, 1) + "%"},
                widths);
    }
    std::printf("\n");
  }
  return 0;
}
