#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "croc/reconfig_plan.hpp"
#include "matching/matching_engine.hpp"

namespace greenps::bench {

const char* approach_name(Approach a) {
  switch (a) {
    case Approach::kManual: return "MANUAL";
    case Approach::kAutomatic: return "AUTOMATIC";
    case Approach::kPairwiseK: return "PAIRWISE-K";
    case Approach::kPairwiseN: return "PAIRWISE-N";
    case Approach::kFbf: return "FBF";
    case Approach::kBinPacking: return "BINPACKING";
    case Approach::kCramIntersect: return "CRAM-INT";
    case Approach::kCramXor: return "CRAM-XOR";
    case Approach::kCramIos: return "CRAM-IOS";
    case Approach::kCramIou: return "CRAM-IOU";
  }
  return "?";
}

std::vector<Approach> all_approaches() {
  return {Approach::kManual,     Approach::kAutomatic,     Approach::kPairwiseK,
          Approach::kPairwiseN,  Approach::kFbf,           Approach::kBinPacking,
          Approach::kCramIntersect, Approach::kCramXor,    Approach::kCramIos,
          Approach::kCramIou};
}

std::vector<Approach> proposed_approaches() {
  return {Approach::kFbf, Approach::kBinPacking, Approach::kCramIntersect,
          Approach::kCramXor, Approach::kCramIos, Approach::kCramIou};
}

bool full_scale() {
  const char* v = std::getenv("GREENPS_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0' && !tiny_scale();
}

bool tiny_scale() {
  const char* v = std::getenv("GREENPS_TINY");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

CrocConfig croc_config_for(Approach a, std::uint64_t seed) {
  CrocConfig cfg;
  cfg.seed = seed;
  switch (a) {
    case Approach::kPairwiseK:
      cfg.algorithm = Phase2Algorithm::kPairwiseK;
      break;
    case Approach::kPairwiseN:
      cfg.algorithm = Phase2Algorithm::kPairwiseN;
      break;
    case Approach::kFbf:
      cfg.algorithm = Phase2Algorithm::kFbf;
      break;
    case Approach::kBinPacking:
      cfg.algorithm = Phase2Algorithm::kBinPacking;
      break;
    case Approach::kCramIntersect:
      cfg.algorithm = Phase2Algorithm::kCram;
      cfg.cram.metric = ClosenessMetric::kIntersect;
      break;
    case Approach::kCramXor:
      cfg.algorithm = Phase2Algorithm::kCram;
      cfg.cram.metric = ClosenessMetric::kXor;
      break;
    case Approach::kCramIos:
      cfg.algorithm = Phase2Algorithm::kCram;
      cfg.cram.metric = ClosenessMetric::kIos;
      break;
    case Approach::kCramIou:
      cfg.algorithm = Phase2Algorithm::kCram;
      cfg.cram.metric = ClosenessMetric::kIou;
      break;
    case Approach::kManual:
    case Approach::kAutomatic:
      break;  // no reconfiguration
  }
  return cfg;
}

RunResult run_approach(Approach a, const HarnessConfig& cfg) {
  RunResult result;
  result.approach = a;

  const auto t0 = std::chrono::steady_clock::now();
  MatchingEngine::reset_match_walks();
  const auto finish = [&](Simulation& sim) {
    result.summary = sim.summarize();
    result.events = sim.events_executed();
    result.match_walks = MatchingEngine::match_walks();
    result.workers = sim.shard_count();
    result.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  ScenarioConfig sc = cfg.scenario;
  // MANUAL forms the initial overlay for every approach; AUTOMATIC is the
  // other deploy-only baseline.
  sc.placement =
      a == Approach::kAutomatic ? InitialPlacement::kAutomatic : InitialPlacement::kManual;
  Simulation sim = make_simulation(sc, cfg.sim);

  if (a == Approach::kManual || a == Approach::kAutomatic) {
    sim.run(cfg.profile_seconds);  // warm-up for parity with the others
    sim.reset_metrics();
    sim.run(cfg.measure_seconds);
    finish(sim);
    return result;
  }

  sim.run(cfg.profile_seconds);
  Croc croc(croc_config_for(a, sc.seed));
  result.report = croc.reconfigure(sim, BrokerId{0});
  if (!result.report.success) {
    std::fprintf(stderr, "[bench] %s reconfiguration failed\n", approach_name(a));
    finish(sim);
    return result;
  }
  sim.redeploy(apply_plan(sim.deployment(), result.report.plan));
  result.reconfigured = true;
  sim.run(cfg.measure_seconds);
  finish(sim);
  return result;
}

void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    os << (i == 0 ? "" : "  ");
    const std::string& c = cells[i];
    if (static_cast<int>(c.size()) < w) {
      os << std::string(static_cast<std::size_t>(w) - c.size(), ' ');
    }
    os << c;
  }
  std::printf("%s\n", os.str().c_str());
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string pct_change(double baseline, double value) {
  if (baseline <= 0) return "n/a";
  // Rendered as change relative to the baseline: "-92%" = 92% lower.
  const double reduction = (baseline - value) / baseline * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%.0f%%", reduction >= 0 ? "-" : "+",
                reduction >= 0 ? reduction : -reduction);
  return buf;
}

BenchBudget::BenchBudget() : t0_(std::chrono::steady_clock::now()) {
  if (const char* v = std::getenv("GREENPS_BENCH_BUDGET_S"); v != nullptr && *v != '\0') {
    budget_s_ = std::strtod(v, nullptr);
  }
}

double BenchBudget::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
}

bool BenchBudget::skip(const char* what) const {
  if (!exceeded()) return false;
  std::printf("[budget exceeded] %.0f s elapsed of GREENPS_BENCH_BUDGET_S=%.0f — skipping %s\n",
              elapsed(), budget_s_, what);
  return true;
}

JsonObject run_result_json(const RunResult& r) {
  JsonObject row;
  row.set_string("approach", approach_name(r.approach))
      .set_bool("reconfigured", r.reconfigured)
      .set_bool("reconfigure_success", r.report.success)
      .set_string("failure_reason", failure_reason_name(r.report.failure))
      .set_number("wall_s", r.wall_s)
      .set_integer("events", r.events)
      .set_number("events_per_s", r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0)
      .set_integer("match_walks", r.match_walks)
      .set_integer("workers", r.workers)
      .set_integer("retransmit_overflow", r.summary.retransmit_overflow)
      .set_integer("publications", r.summary.publications)
      .set_integer("deliveries", r.summary.deliveries)
      .set_integer("allocated_brokers", r.summary.allocated_brokers)
      .set_number("avg_hop_count", r.summary.avg_hop_count)
      .set_number("system_msg_rate", r.summary.system_msg_rate)
      .set_number("avg_broker_msg_rate", r.summary.avg_broker_msg_rate);
  if (r.reconfigured) set_gather_stats(row, r.report.gather);
  return row;
}

JsonObject& set_gather_stats(JsonObject& row, const GatherStats& g) {
  return row.set_integer("gather_bir_messages", g.bir_messages)
      .set_integer("gather_bia_messages", g.bia_messages)
      .set_integer("gather_brokers_answered", g.brokers_answered)
      .set_integer("gather_unreachable_brokers", g.unreachable_brokers)
      .set_integer("gather_retries", g.retries)
      .set_number("gather_backoff_s", g.backoff_s)
      .set_integer("gather_epoch_probes", g.epoch_probes)
      .set_integer("gather_brokers_reused", g.brokers_reused);
}

RunReport make_sim_report(const std::string& bench) {
  RunReport report(bench);
  report.header().set_bool("full_scale", full_scale()).set_bool("tiny_scale", tiny_scale());
  return report;
}

bool write_sim_bench_json(const std::string& bench, const std::vector<std::string>& rows) {
  RunReport report = make_sim_report(bench);
  for (const std::string& row : rows) report.add_row(row);
  return report.write("BENCH_sim.json", "rows");
}

}  // namespace greenps::bench
