// Shared harness for the experiment benches (E1-E9).
//
// Runs one evaluated approach end-to-end: deploy the MANUAL baseline,
// profile, reconfigure with CROC (except for the MANUAL/AUTOMATIC
// baselines), then measure a fresh window and report the paper's metrics.
//
// Scale: benches default to a reduced-but-shape-preserving configuration so
// the whole suite finishes in minutes; set GREENPS_FULL=1 for the paper's
// cluster-testbed scale (80 brokers, 40 publishers, 2,000-8,000
// subscriptions).
#pragma once

#include <string>
#include <vector>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

namespace greenps::bench {

enum class Approach {
  kManual,
  kAutomatic,
  kPairwiseK,
  kPairwiseN,
  kFbf,
  kBinPacking,
  kCramIntersect,
  kCramXor,
  kCramIos,
  kCramIou,
};

[[nodiscard]] const char* approach_name(Approach a);
[[nodiscard]] std::vector<Approach> all_approaches();
[[nodiscard]] std::vector<Approach> proposed_approaches();  // FBF..CRAM-IOU

struct HarnessConfig {
  ScenarioConfig scenario;
  double profile_seconds = 90.0;
  double measure_seconds = 120.0;
};

struct RunResult {
  Approach approach = Approach::kManual;
  SimSummary summary;
  ReconfigurationReport report;  // success=false for MANUAL/AUTOMATIC
  bool reconfigured = false;
};

[[nodiscard]] RunResult run_approach(Approach a, const HarnessConfig& cfg);

// Map an approach to a CROC configuration (for the reconfiguring ones).
[[nodiscard]] CrocConfig croc_config_for(Approach a, std::uint64_t seed);

[[nodiscard]] bool full_scale();

// Column-aligned table printing.
void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths);
[[nodiscard]] std::string fmt(double v, int precision = 1);
[[nodiscard]] std::string pct_change(double baseline, double value);

}  // namespace greenps::bench
