// Shared harness for the experiment benches (E1-E9).
//
// Runs one evaluated approach end-to-end: deploy the MANUAL baseline,
// profile, reconfigure with CROC (except for the MANUAL/AUTOMATIC
// baselines), then measure a fresh window and report the paper's metrics.
//
// Scale: benches default to a reduced-but-shape-preserving configuration so
// the whole suite finishes in minutes; set GREENPS_FULL=1 for the paper's
// cluster-testbed scale (80 brokers, 40 publishers, 2,000-8,000
// subscriptions).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "croc/croc.hpp"
#include "obs/report.hpp"
#include "scenario/scenario.hpp"

namespace greenps::bench {

enum class Approach {
  kManual,
  kAutomatic,
  kPairwiseK,
  kPairwiseN,
  kFbf,
  kBinPacking,
  kCramIntersect,
  kCramXor,
  kCramIos,
  kCramIou,
};

[[nodiscard]] const char* approach_name(Approach a);
[[nodiscard]] std::vector<Approach> all_approaches();
[[nodiscard]] std::vector<Approach> proposed_approaches();  // FBF..CRAM-IOU

struct HarnessConfig {
  ScenarioConfig scenario;
  double profile_seconds = 90.0;
  double measure_seconds = 120.0;
  // Simulator parallelism (workers = event-queue shards). Defaults to the
  // GREENPS_SIM_WORKERS environment resolution; results are bit-identical
  // for any worker count.
  SimOptions sim;
};

struct RunResult {
  Approach approach = Approach::kManual;
  SimSummary summary;
  ReconfigurationReport report;  // success=false for MANUAL/AUTOMATIC
  bool reconfigured = false;
  // Harness instrumentation (profile + reconfiguration + measurement):
  double wall_s = 0;             // wall-clock seconds for the whole run
  std::size_t events = 0;        // discrete events executed
  std::size_t match_walks = 0;   // candidate filter evaluations (this thread)
  std::size_t workers = 1;       // event-loop shards the simulator used
};

[[nodiscard]] RunResult run_approach(Approach a, const HarnessConfig& cfg);

// Map an approach to a CROC configuration (for the reconfiguring ones).
[[nodiscard]] CrocConfig croc_config_for(Approach a, std::uint64_t seed);

[[nodiscard]] bool full_scale();
// GREENPS_TINY=1: smoke-test scale (a few brokers, seconds of simulated
// time) so a bench binary can run under ctest as a routing regression
// check. Overrides GREENPS_FULL.
[[nodiscard]] bool tiny_scale();

// Column-aligned table printing.
void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths);
[[nodiscard]] std::string fmt(double v, int precision = 1);
[[nodiscard]] std::string pct_change(double baseline, double value);

// Wall-clock budget for a bench binary, read from GREENPS_BENCH_BUDGET_S
// (seconds; unset or <= 0 means unlimited). The clock starts at construction.
// Benches check `exceeded()` between rows and degrade gracefully: the rows
// that completed are printed, the rest are skipped with a "budget exceeded"
// note, and the process still exits 0 — so a full-scale run under a time cap
// yields a partial table instead of a killed process.
class BenchBudget {
 public:
  BenchBudget();
  [[nodiscard]] bool limited() const { return budget_s_ > 0; }
  [[nodiscard]] double budget_seconds() const { return budget_s_; }
  [[nodiscard]] double elapsed() const;
  [[nodiscard]] bool exceeded() const { return limited() && elapsed() >= budget_s_; }
  // If exceeded, prints the standard skip note (naming what is skipped) once
  // and returns true.
  [[nodiscard]] bool skip(const char* what) const;

 private:
  std::chrono::steady_clock::time_point t0_;
  double budget_s_ = 0;
};

// JSON assembly and file writing live in the observability subsystem's
// run-report writer now (one escaping implementation for every BENCH_*.json
// producer); re-exported here so bench code keeps its historical names.
using obs::JsonObject;
using obs::RunReport;
using obs::json_array;
using obs::json_quote;
using obs::write_text_file;

// One BENCH_sim.json row for a completed run: approach, wall clock, event
// throughput, match-walk counters and the headline summary numbers. Callers
// add their sweep coordinates (subs, brokers, ...) on top.
[[nodiscard]] JsonObject run_result_json(const RunResult& r);

// Append Phase 1 gather statistics (message counts, unreachable brokers,
// retries, simulated backoff, epoch-probe reuse) to a JSON row under
// "gather_*" keys. run_result_json applies it automatically; benches that
// assemble rows by hand call it on rows that carry a ReconfigurationReport.
JsonObject& set_gather_stats(JsonObject& row, const GatherStats& g);

// Start the standard sim-bench report (full_scale/tiny_scale header fields
// filled in); benches add rows and sweep-specific header fields on top.
[[nodiscard]] RunReport make_sim_report(const std::string& bench);

// Write BENCH_sim.json (cwd) with the given rendered rows; prints a
// confirmation line. `bench` names the producing experiment ("e1", "e5").
bool write_sim_bench_json(const std::string& bench, const std::vector<std::string>& rows);

}  // namespace greenps::bench
