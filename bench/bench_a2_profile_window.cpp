// A2 (ablation) — profiling-window size vs estimation accuracy.
//
// Section III-B: "A larger size will improve the accuracy of estimating the
// anticipated load of a subscription, but will lengthen the time required
// to profile subscriptions." This ablation sweeps the bit-vector capacity
// under a fast publication stream and compares the broker input rates CROC
// *plans* (from the gathered profiles) with the input rates *measured* at
// the subscription-hosting brokers after the plan is applied.
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "alloc/cram.hpp"
#include "bench_util.hpp"
#include "croc/reconfig_plan.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  ScenarioConfig base;
  base.num_brokers = full_scale() ? 80 : 24;
  base.num_publishers = full_scale() ? 40 : 6;
  base.subs_per_publisher = full_scale() ? 100 : 40;
  base.full_out_bw_kb_s = full_scale() ? 300.0 : 40.0;
  base.publication_rate = 10.0;  // fast stream so small windows wrap
  base.seed = 42;
  const double profile_s = 45.0;
  std::printf(
      "A2: profiling window-size ablation (CRAM-IOS, %.0f s profiling at %.0f msg/s)\n\n",
      profile_s, base.publication_rate);

  const std::vector<int> widths = {8, 9, 13, 13, 9, 10};
  print_row({"window", "brokers", "planned-in/s", "actual-in/s", "est-err", "clusters"},
            widths);

  for (const std::size_t window : {64u, 128u, 320u, 640u, 1280u}) {
    ScenarioConfig sc = base;
    sc.profile_window_bits = window;
    Simulation sim = make_simulation(sc);
    sim.run(profile_s);

    // Plan (and capture the Phase-2 allocation for its predicted rates).
    const GatheredInfo info = gather_information(
        sim.deployment().topology, BrokerId{0},
        [&sim](BrokerId b) { return sim.broker_info(b); });
    const CramResult planned =
        cram_allocate(Croc::pool_from(info), Croc::units_from(info), info.publisher_table);
    CrocConfig cfg;
    cfg.algorithm = Phase2Algorithm::kCram;
    Croc croc(cfg);
    const auto report = croc.plan_from_info(info);
    if (!report.success || !planned.allocation.success) {
      print_row({std::to_string(window), "failed", "-", "-", "-", "-"}, widths);
      continue;
    }
    const double planned_in = planned.allocation.total_in_rate();

    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(60.0);
    const SimSummary s = sim.summarize();
    // Measured inflow at the brokers that host subscriptions (the tier the
    // planned rates describe).
    std::unordered_set<BrokerId> leaf_brokers;
    for (const auto& [sub, broker] : report.plan.subscriber_home) {
      (void)sub;
      leaf_brokers.insert(broker);
    }
    double actual_in = 0;
    for (const auto& [b, t] : sim.metrics().traffic()) {
      if (leaf_brokers.contains(b)) actual_in += static_cast<double>(t.msgs_in);
    }
    actual_in /= s.duration_s;
    const double err = actual_in > 0 ? std::abs(planned_in - actual_in) / actual_in : 0.0;
    print_row({std::to_string(window), std::to_string(s.allocated_brokers),
               fmt(planned_in, 1), fmt(actual_in, 1), fmt(err * 100.0, 1) + "%",
               std::to_string(report.cluster_count)},
              widths);
  }
  std::printf(
      "\nexpected shape: small windows wrap under the fast stream and lose\n"
      "history, so the planned rates drift from the measured ones; accuracy\n"
      "saturates near the paper's 1,280-bit default.\n");
  return 0;
}
