// A1 (ablation) — capacity headroom vs delivery delay.
//
// The paper maximizes broker utilization; the library exposes a
// `capacity_headroom` knob that reserves a fraction of each broker's
// bandwidth during planning. This ablation quantifies the trade: fewer
// reserved brokers (headroom=1.0) means higher utilization but more
// queueing delay; lower headroom buys back tail latency with extra brokers.
#include <cstdio>

#include "bench_util.hpp"
#include "croc/reconfig_plan.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  ScenarioConfig sc;
  sc.num_brokers = full_scale() ? 80 : 32;
  sc.num_publishers = full_scale() ? 40 : 8;
  sc.subs_per_publisher = full_scale() ? 150 : 80;
  sc.full_out_bw_kb_s = full_scale() ? 300.0 : 35.0;
  sc.seed = 42;
  std::printf("A1: capacity headroom ablation (CRAM-IOS, %zu subscriptions)\n\n",
              sc.num_publishers * sc.subs_per_publisher);

  const std::vector<int> widths = {9, 9, 12, 11, 11, 11, 12};
  print_row({"headroom", "brokers", "sys msg/s", "p50 ms", "p99 ms", "avg ms", "utilization"},
            widths);

  for (const double headroom : {1.0, 0.8, 0.6, 0.4}) {
    Simulation sim = make_simulation(sc);
    sim.run(90.0);
    CrocConfig cfg;
    cfg.algorithm = Phase2Algorithm::kCram;
    cfg.capacity_headroom = headroom;
    Croc croc(cfg);
    const auto report = croc.reconfigure(sim, BrokerId{0});
    if (!report.success) {
      print_row({fmt(headroom, 2), "failed", "-", "-", "-", "-", "-"}, widths);
      continue;
    }
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(120.0);
    const SimSummary s = sim.summarize();
    print_row({fmt(headroom, 2), std::to_string(s.allocated_brokers),
               fmt(s.system_msg_rate, 1), fmt(s.p50_delivery_delay_ms, 2),
               fmt(s.p99_delivery_delay_ms, 2), fmt(s.avg_delivery_delay_ms, 2),
               fmt(s.avg_output_utilization * 100.0, 1) + "%"},
              widths);
  }
  std::printf(
      "\nexpected shape: headroom=1.0 gives the fewest brokers and highest\n"
      "utilization; lowering it adds brokers and shrinks the p99 delay.\n");
  return 0;
}
