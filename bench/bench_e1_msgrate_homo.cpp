// E1 — Average broker message rate, homogeneous scenario.
//
// Reproduces the paper's headline figure: the average broker message rate
// of the two baselines (MANUAL, AUTOMATIC), the two related approaches
// (PAIRWISE-K, PAIRWISE-N) and the six proposed variants (FBF, BIN PACKING,
// CRAM x 4 closeness metrics) as the subscription count sweeps upward.
// Expected shape: CRAM variants reduce the average broker message rate by
// up to ~92% versus the baselines.
#include <cstdio>

#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  const BenchBudget budget;  // GREENPS_BENCH_BUDGET_S caps the sweep
  const HarnessConfig base = homogeneous_base();
  std::printf(
      "E1: average broker message rate (msg/s per allocated broker), homogeneous\n"
      "brokers=%zu publishers=%zu %s\n\n",
      base.scenario.num_brokers, base.scenario.num_publishers,
      tiny_scale()   ? "[TINY: smoke-test scale]"
      : full_scale() ? "[FULL SCALE]"
                     : "[reduced scale; GREENPS_FULL=1 for paper scale]");

  // "Average broker message rate" averages over the fixed broker pool (the
  // fleet the operator pays for), so deallocating brokers and eliminating
  // redundant streams both lower it — this is the metric the paper reduces
  // by up to 92%. rate/alloc shows the per-allocated-broker load rising as
  // utilization is maximized.
  const std::vector<int> widths = {6, 12, 10, 12, 12, 12, 10};
  print_row({"subs", "approach", "brokers", "rate/pool", "rate/alloc", "sys rate",
             "vs MANUAL"},
            widths);

  std::vector<std::string> json_rows;
  for (const std::size_t spp : subs_per_publisher_sweep()) {
    if (budget.skip("remaining subscription sweep")) break;
    HarnessConfig cfg = base;
    cfg.scenario.subs_per_publisher = spp;
    const std::size_t total_subs = spp * cfg.scenario.num_publishers;
    const auto pool_size = static_cast<double>(cfg.scenario.num_brokers);
    double manual_pool_rate = 0;
    for (const Approach a : all_approaches()) {
      if (budget.skip("remaining approaches at this subscription count")) break;
      const RunResult r = run_approach(a, cfg);
      const double pool_rate = r.summary.system_msg_rate / pool_size;
      if (a == Approach::kManual) manual_pool_rate = pool_rate;
      print_row({std::to_string(total_subs), approach_name(a),
                 std::to_string(r.summary.allocated_brokers), fmt(pool_rate, 2),
                 fmt(r.summary.avg_broker_msg_rate, 2), fmt(r.summary.system_msg_rate, 1),
                 pct_change(manual_pool_rate, pool_rate)},
                widths);
      JsonObject row = run_result_json(r);
      row.set_integer("subscriptions", total_subs);
      json_rows.push_back(row.render());
    }
    std::printf("\n");
  }
  write_sim_bench_json("e1", json_rows);
  return 0;
}
