// E9 — Phase-3 overlay-construction optimizations (Section V, Figure 4).
//
// Ablates the three optimizations (pure-forwarder elimination, child
// takeover, best-fit replacement) over the recursive builder, reporting the
// allocated broker count, tree depth and per-optimization action counts.
#include <cstdio>

#include "alloc/bin_packing.hpp"
#include "bench_util.hpp"
#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

int tree_depth(const Topology& t, BrokerId root) {
  int depth = 0;
  for (const auto& [b, d] : t.distances_from(root)) {
    (void)b;
    depth = std::max(depth, d);
  }
  return depth;
}

}  // namespace

int main() {
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 200 : 200;
  // Heterogeneous pool makes best-fit replacement meaningful; tighter
  // broker bandwidth yields a leaf layer wide enough to need real layers.
  cfg.scenario.heterogeneous = true;
  cfg.scenario.full_out_bw_kb_s = full_scale() ? 150.0 : 20.0;
  std::printf("E9: Phase-3 overlay optimization ablation (heterogeneous pool) %s\n\n",
              full_scale() ? "[FULL SCALE]" : "[reduced scale]");

  Simulation sim = make_simulation(cfg.scenario);
  sim.run(cfg.profile_seconds);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  const auto pool = Croc::pool_from(info);
  const auto units = Croc::units_from(info);

  const Allocation phase2 = bin_packing_allocate(pool, units, info.publisher_table);
  if (!phase2.success) {
    std::printf("phase-2 allocation failed; cannot ablate phase 3\n");
    return 1;
  }
  std::printf("phase-2 (BIN PACKING) leaf brokers: %zu\n\n", phase2.brokers_used());

  const AllocatorFn allocator = [](const std::vector<AllocBroker>& p,
                                   const std::vector<SubUnit>& u, const PublisherTable& t) {
    return bin_packing_allocate(p, u, t);
  };

  const std::vector<int> widths = {24, 9, 7, 8, 11, 10, 9};
  print_row({"variant", "brokers", "depth", "layers", "forwarders", "takeovers", "bestfit"},
            widths);
  struct Variant {
    const char* name;
    bool pf, take, fit;
  };
  for (const Variant v : {Variant{"none", false, false, false},
                          Variant{"opt1 forwarders", true, false, false},
                          Variant{"opt2 takeover", false, true, false},
                          Variant{"opt3 best-fit", false, false, true},
                          Variant{"opt1+2", true, true, false},
                          Variant{"all (opt1+2+3)", true, true, true}}) {
    OverlayBuildOptions opts;
    opts.eliminate_pure_forwarders = v.pf;
    opts.takeover_children = v.take;
    opts.best_fit_replacement = v.fit;
    const BuiltOverlay built =
        build_overlay(phase2, pool, info.publisher_table, allocator, opts);
    print_row({v.name, std::to_string(built.broker_count()),
               std::to_string(tree_depth(built.tree, built.root)),
               std::to_string(built.stats.layers),
               std::to_string(built.stats.pure_forwarders_removed),
               std::to_string(built.stats.children_taken_over),
               std::to_string(built.stats.best_fit_replacements)},
              widths);
  }
  std::printf(
      "\nexpected shape: each optimization reduces (or keeps) the broker count;\n"
      "best-fit swaps large brokers for the smallest that still fit.\n");
  return 0;
}
