// E6 — Algorithm computation time.
//
// Times each Phase-2 algorithm on one gathered workload. Expected shape:
// FBF < BIN PACKING << CRAM, and CRAM-XOR at least ~75% slower than the
// prunable metrics (INTERSECT/IOS/IOU) because XOR cannot prune
// empty-relation subtrees of the poset.
#include <chrono>
#include <cstdio>

#include "alloc/bin_packing.hpp"
#include "alloc/fbf.hpp"
#include "bench_util.hpp"
#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {
using Clock = std::chrono::steady_clock;
double time_of(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

int main() {
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 200 : 100;
  std::printf("E6: Phase-2 computation time, %zu subscriptions %s\n\n",
              cfg.scenario.subs_per_publisher * cfg.scenario.num_publishers,
              full_scale() ? "[FULL SCALE]" : "[reduced scale]");

  // Gather once from a profiled deployment.
  Simulation sim = make_simulation(cfg.scenario);
  sim.run(cfg.profile_seconds);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  const auto pool = Croc::pool_from(info);
  const auto units = Croc::units_from(info);
  std::printf("gathered: %zu brokers, %zu subscriptions, %zu publishers\n\n",
              info.brokers.size(), units.size(), info.publishers.size());

  const std::vector<int> widths = {12, 12, 10, 10, 16, 14};
  print_row({"approach", "time(s)", "brokers", "clusters", "closeness-comps", "alloc-runs"},
            widths);

  {
    Rng rng(1);
    Allocation a;
    const double t = time_of([&] { a = fbf_allocate(pool, units, info.publisher_table, rng); });
    print_row({"FBF", fmt(t, 4), std::to_string(a.brokers_used()),
               std::to_string(a.unit_count()), "-", "-"},
              widths);
  }
  {
    Allocation a;
    const double t =
        time_of([&] { a = bin_packing_allocate(pool, units, info.publisher_table); });
    print_row({"BINPACKING", fmt(t, 4), std::to_string(a.brokers_used()),
               std::to_string(a.unit_count()), "-", "-"},
              widths);
  }
  double prunable_max = 0;
  double xor_time = 0;
  for (const ClosenessMetric m : {ClosenessMetric::kIntersect, ClosenessMetric::kIos,
                                  ClosenessMetric::kIou, ClosenessMetric::kXor}) {
    CramOptions opts;
    opts.metric = m;
    CramResult r;
    const double t =
        time_of([&] { r = cram_allocate(pool, units, info.publisher_table, opts); });
    if (m == ClosenessMetric::kXor) {
      xor_time = t;
    } else {
      prunable_max = std::max(prunable_max, t);
    }
    print_row({std::string("CRAM-") + metric_name(m), fmt(t, 4),
               std::to_string(r.allocation.brokers_used()),
               std::to_string(r.allocation.unit_count()),
               std::to_string(r.stats.closeness_computations),
               std::to_string(r.stats.allocation_runs)},
              widths);
  }
  if (prunable_max > 0) {
    std::printf(
        "\nCRAM-XOR vs slowest prunable metric: %+.0f%% wall clock, and note the\n"
        "closeness-computation column (the paper's >= +75%% shows when the pair\n"
        "search dominates, i.e. at full scale where candidates grow as S^2).\n",
        (xor_time - prunable_max) / prunable_max * 100.0);
  }
  return 0;
}
