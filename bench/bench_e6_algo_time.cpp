// E6 — Algorithm computation time.
//
// Times each Phase-2 algorithm on one gathered workload. Expected shape:
// FBF < BIN PACKING << CRAM, and CRAM-XOR at least ~75% slower than the
// prunable metrics (INTERSECT/IOS/IOU) because XOR cannot prune
// empty-relation subtrees of the poset.
//
// Knobs: GREENPS_FULL=1 for paper scale, GREENPS_BENCH_BUDGET_S=<seconds>
// to cap wall clock (completed rows are kept, the rest are skipped), and
// GREENPS_CRAM_THREADS to size CRAM's parallel pair search. Results are
// also written machine-readably to BENCH_cram.json in the working
// directory.
#include <chrono>
#include <cstdio>

#include "alloc/bin_packing.hpp"
#include "alloc/fbf.hpp"
#include "bench_util.hpp"
#include "profile/union_profile.hpp"
#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {
using Clock = std::chrono::steady_clock;
double time_of(const std::function<void()>& fn) {
  const auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// A timing row for a failed allocation is meaningless; say so loudly
// instead of printing broker counts from a half-built result.
std::string broker_cell(const Allocation& a, const char* approach) {
  if (a.success) return std::to_string(a.brokers_used());
  std::fprintf(stderr, "[bench] %s allocation FAILED (insufficient broker resources); "
                       "row reflects a failed run\n", approach);
  return "FAILED";
}
}  // namespace

int main() {
  const BenchBudget budget;
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 200 : tiny_scale() ? 15 : 100;
  const std::size_t total = cfg.scenario.subs_per_publisher * cfg.scenario.num_publishers;
  std::printf("E6: Phase-2 computation time, %zu subscriptions %s\n\n", total,
              full_scale()   ? "[FULL SCALE]"
              : tiny_scale() ? "[tiny/smoke scale]"
                             : "[reduced scale]");

  // Gather once from a profiled deployment.
  Simulation sim = make_simulation(cfg.scenario);
  sim.run(cfg.profile_seconds);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  const auto pool = Croc::pool_from(info);
  const auto units = Croc::units_from(info);
  std::printf("gathered: %zu brokers, %zu subscriptions, %zu publishers\n\n",
              info.brokers.size(), units.size(), info.publishers.size());

  const std::vector<int> widths = {12, 12, 10, 10, 16, 14, 9};
  print_row({"approach", "time(s)", "brokers", "clusters", "closeness-comps", "alloc-runs",
             "threads"},
            widths);

  std::vector<std::string> json_rows;
  bool budget_hit = false;

  {
    Rng rng(1);
    Allocation a;
    const double t = time_of([&] { a = fbf_allocate(pool, units, info.publisher_table, rng); });
    print_row({"FBF", fmt(t, 4), broker_cell(a, "FBF"),
               std::to_string(a.unit_count()), "-", "-", "-"},
              widths);
    json_rows.push_back(JsonObject()
                            .set_string("approach", "FBF")
                            .set_bool("success", a.success)
                            .set_number("seconds", t)
                            .set_integer("brokers", a.brokers_used())
                            .set_integer("clusters", a.unit_count())
                            .render());
  }
  {
    Allocation a;
    const double t =
        time_of([&] { a = bin_packing_allocate(pool, units, info.publisher_table); });
    print_row({"BINPACKING", fmt(t, 4), broker_cell(a, "BINPACKING"),
               std::to_string(a.unit_count()), "-", "-", "-"},
              widths);
    json_rows.push_back(JsonObject()
                            .set_string("approach", "BINPACKING")
                            .set_bool("success", a.success)
                            .set_number("seconds", t)
                            .set_integer("brokers", a.brokers_used())
                            .set_integer("clusters", a.unit_count())
                            .render());
  }
  double prunable_max = 0;
  double xor_time = 0;
  for (const ClosenessMetric m : {ClosenessMetric::kIntersect, ClosenessMetric::kIos,
                                  ClosenessMetric::kIou, ClosenessMetric::kXor}) {
    const std::string name = std::string("CRAM-") + metric_name(m);
    if (budget.skip((name + " (and any remaining metrics)").c_str())) {
      budget_hit = true;
      break;
    }
    CramOptions opts;
    opts.metric = m;
    CramResult r;
    UnionProfile::reset_probe_walks();
    const double t =
        time_of([&] { r = cram_allocate(pool, units, info.publisher_table, opts); });
    // Union-rate walks by this thread (complete when threads == 1; worker
    // threads keep their own counters).
    const std::size_t walks = UnionProfile::probe_walks();
    if (m == ClosenessMetric::kXor) {
      xor_time = t;
    } else {
      prunable_max = std::max(prunable_max, t);
    }
    print_row({name, fmt(t, 4), broker_cell(r.allocation, name.c_str()),
               std::to_string(r.allocation.unit_count()),
               std::to_string(r.stats.closeness_computations),
               std::to_string(r.stats.allocation_runs),
               std::to_string(r.stats.threads_used)},
              widths);
    json_rows.push_back(JsonObject()
                            .set_string("approach", name)
                            .set_bool("success", r.allocation.success)
                            .set_number("seconds", t)
                            .set_integer("brokers", r.allocation.brokers_used())
                            .set_integer("clusters", r.allocation.unit_count())
                            .set_integer("closeness_computations",
                                         r.stats.closeness_computations)
                            .set_integer("allocation_runs", r.stats.allocation_runs)
                            .set_integer("threads", r.stats.threads_used)
                            .set_number("poset_build_seconds", r.stats.poset_build_seconds)
                            .set_number("probe_seconds", r.stats.probe_seconds)
                            .set_number("pair_search_seconds", r.stats.pair_search_seconds)
                            .set_integer("probe_units_packed", r.stats.probe_units_packed)
                            .set_integer("probe_units_skipped", r.stats.probe_units_skipped)
                            .set_integer("main_thread_probe_walks", walks)
                            .set_integer("base_rebuilds", r.stats.base_rebuilds)
                            .set_integer("speculative_probes", r.stats.speculative_probes)
                            .render());
  }
  if (xor_time > 0 && prunable_max > 0) {
    std::printf(
        "\nCRAM-XOR vs slowest prunable metric: %+.0f%% wall clock, and note the\n"
        "closeness-computation column (the paper's >= +75%% shows when the pair\n"
        "search dominates, i.e. at full scale where candidates grow as S^2).\n",
        (xor_time - prunable_max) / prunable_max * 100.0);
  }

  RunReport report("e6_algo_time");
  report.header()
      .set_bool("full_scale", full_scale())
      .set_integer("subscriptions", units.size())
      .set_integer("brokers_in_pool", pool.size())
      .set_number("budget_seconds", budget.limited() ? budget.budget_seconds() : 0)
      .set_bool("budget_exceeded", budget_hit);
  for (std::string& row : json_rows) report.add_row(std::move(row));
  report.write("BENCH_cram.json", "results");
  return 0;
}
