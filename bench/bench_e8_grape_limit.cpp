// E8 — The publisher-relocation limitation (Section II-B).
//
// Adversarial workload: every broker hosts a subscriber with the *same*
// subscription, so publications must reach every broker no matter where the
// publishers sit. Relocating publishers alone (GRAPE on the unchanged
// MANUAL overlay) then yields ~0% system message rate reduction, while the
// full 3-phase scheme still collapses the deployment (paper: up to 92%).
#include <cstdio>

#include "bench_util.hpp"
#include "croc/reconfig_plan.hpp"
#include "language/parser.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

// MANUAL scenario, then add one template subscriber per (broker, symbol).
Simulation adversarial_sim(std::size_t brokers, std::size_t publishers) {
  ScenarioConfig sc;
  sc.num_brokers = brokers;
  sc.num_publishers = publishers;
  sc.subs_per_publisher = 0;  // base workload: none; we add our own below
  sc.full_out_bw_kb_s = 50.0;
  sc.seed = 21;
  Scenario scenario = build_scenario(sc);
  std::uint64_t next_client = 100000;
  std::uint64_t next_sub = 0;
  for (const BrokerId b : scenario.deployment.topology.brokers()) {
    for (const auto& symbol : scenario.symbols) {
      SubscriberSpec s;
      s.client = ClientId{next_client++};
      s.sub = SubId{next_sub++};
      s.filter = parse_filter("[class,=,'STOCK'],[symbol,=,'" + symbol + "']");
      s.home = b;
      scenario.deployment.subscribers.push_back(std::move(s));
    }
  }
  return Simulation(std::move(scenario.deployment), make_quote_generator(sc));
}

}  // namespace

int main() {
  const std::size_t brokers = full_scale() ? 80 : 24;
  const std::size_t publishers = full_scale() ? 40 : 6;
  std::printf(
      "E8: publisher relocation alone vs full reconfiguration\n"
      "adversarial workload: identical subscription at every broker "
      "(brokers=%zu publishers=%zu)\n\n",
      brokers, publishers);

  const double profile_s = 90.0;
  const double measure_s = 120.0;

  // Baseline.
  Simulation sim = adversarial_sim(brokers, publishers);
  sim.run(profile_s);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  sim.reset_metrics();
  sim.run(measure_s);
  const SimSummary manual = sim.summarize();

  // GRAPE-only: keep the MANUAL overlay and subscriber placement; move only
  // the publishers to their GRAPE-optimal brokers.
  {
    std::unordered_map<BrokerId, SubscriptionProfile> local;
    for (const BrokerInfo& b : info.brokers) {
      SubscriptionProfile agg;
      for (const auto& s : b.subscriptions) agg.merge(s.profile);
      if (!b.subscriptions.empty()) local.emplace(b.id, std::move(agg));
    }
    std::vector<GrapePublisher> pubs;
    for (const PublisherRecord& p : info.publishers) {
      pubs.push_back(GrapePublisher{p.client, p.profile.adv});
    }
    const GrapePlacement placed =
        grape_place_publishers(sim.deployment().topology, pubs, local,
                               info.publisher_table, GrapeMode::kMinimizeLoad);
    Deployment moved = sim.deployment();
    for (auto& p : moved.publishers) {
      const auto it = placed.broker_for.find(p.client);
      if (it != placed.broker_for.end()) p.home = it->second;
    }
    Simulation grape_sim = adversarial_sim(brokers, publishers);
    grape_sim.redeploy(std::move(moved));
    grape_sim.run(measure_s);
    const SimSummary s = grape_sim.summarize();
    std::printf("%-22s system rate %8.1f msg/s  brokers %3zu  (vs MANUAL: %s)\n",
                "GRAPE-only", s.system_msg_rate, s.allocated_brokers,
                pct_change(manual.system_msg_rate, s.system_msg_rate).c_str());
  }

  std::printf("%-22s system rate %8.1f msg/s  brokers %3zu\n", "MANUAL",
              manual.system_msg_rate, manual.allocated_brokers);

  // Full 3-phase reconfiguration with CRAM.
  {
    CrocConfig cfg;
    cfg.algorithm = Phase2Algorithm::kCram;
    Croc croc(cfg);
    const auto report = croc.reconfigure(sim, BrokerId{0});
    if (!report.success) {
      std::printf("full scheme: reconfiguration failed\n");
      return 1;
    }
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
    sim.run(measure_s);
    const SimSummary s = sim.summarize();
    std::printf("%-22s system rate %8.1f msg/s  brokers %3zu  (vs MANUAL: %s)\n",
                "full 3-phase (CRAM)", s.system_msg_rate, s.allocated_brokers,
                pct_change(manual.system_msg_rate, s.system_msg_rate).c_str());
  }
  std::printf(
      "\nexpected shape: GRAPE-only ~0%% change; full scheme large reduction "
      "(paper: up to 92%%)\n");
  return 0;
}
