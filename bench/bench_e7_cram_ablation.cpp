// E7 — CRAM optimization ablation (Section IV-C.1..3).
//
// Quantifies each CRAM optimization on one gathered workload:
//   opt 1 (GIF grouping):    pool reduction (paper: up to 61% on 8,000 subs)
//   opt 2 (poset pruning):   closeness computations with/without pruning
//                            (paper: ~5,000,000 -> ~280,000)
//   opt 3 (one-to-many):     clusters/brokers with and without CGS clustering
//   poset build time         (paper: 3,200 GIFs in ~2 s)
#include <chrono>
#include <cstdio>

#include "alloc/gif.hpp"
#include "bench_util.hpp"
#include "poset/poset.hpp"
#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  const BenchBudget budget;  // GREENPS_BENCH_BUDGET_S caps the variant grid
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 200 : 100;
  const std::size_t total = cfg.scenario.subs_per_publisher * cfg.scenario.num_publishers;
  std::printf("E7: CRAM optimization ablation, %zu subscriptions %s\n\n", total,
              full_scale() ? "[FULL SCALE]" : "[reduced scale]");

  Simulation sim = make_simulation(cfg.scenario);
  sim.run(cfg.profile_seconds);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  const auto pool = Croc::pool_from(info);
  const auto units = Croc::units_from(info);

  RunReport report("e7_cram_ablation");
  report.header()
      .set_bool("full_scale", full_scale())
      .set_integer("subscriptions", units.size())
      .set_integer("brokers_in_pool", pool.size());

  // --- opt 1: GIF grouping ---
  {
    const auto gifs = group_identical_filters(units);
    const double reduction =
        (1.0 - static_cast<double>(gifs.size()) / static_cast<double>(units.size())) * 100.0;
    std::printf("opt1 GIF grouping: %zu subscriptions -> %zu GIFs (-%.0f%%; paper: up to -61%%)\n\n",
                units.size(), gifs.size(), reduction);
    report.header().set_integer("gif_count", gifs.size()).set_number("gif_reduction_pct",
                                                                     reduction);
  }

  // --- opt 2 + 3 grid ---
  const std::vector<int> widths = {22, 10, 10, 16, 12, 10, 10, 10};
  print_row({"variant", "brokers", "clusters", "closeness-comps", "one-to-many", "time(s)",
             "probe(s)", "search(s)"},
            widths);
  struct Variant {
    const char* name;
    bool prune;
    bool o2m;
  };
  const auto report_variant = [&report](const char* name, const CramResult& r) {
    report.add_row(JsonObject()
                       .set_string("variant", name)
                       .set_integer("brokers", r.allocation.brokers_used())
                       .set_integer("clusters", r.allocation.unit_count())
                       .set_integer("closeness_computations", r.stats.closeness_computations)
                       .set_integer("one_to_many_applied", r.stats.one_to_many_applied)
                       .set_number("seconds", r.stats.total_seconds)
                       .set_number("probe_seconds", r.stats.probe_seconds)
                       .set_number("pair_search_seconds", r.stats.pair_search_seconds));
  };
  for (const Variant v : {Variant{"full (opt1+2+3)", true, true},
                          Variant{"no pruning (opt1+3)", false, true},
                          Variant{"no one-to-many (1+2)", true, false},
                          Variant{"pairwise only (opt1)", false, false}}) {
    if (budget.skip(v.name)) continue;
    CramOptions opts;
    opts.metric = ClosenessMetric::kIos;
    opts.poset_pruning = v.prune;
    opts.one_to_many = v.o2m;
    const CramResult r = cram_allocate(pool, units, info.publisher_table, opts);
    print_row({v.name, std::to_string(r.allocation.brokers_used()),
               std::to_string(r.allocation.unit_count()),
               std::to_string(r.stats.closeness_computations),
               std::to_string(r.stats.one_to_many_applied), fmt(r.stats.total_seconds, 3),
               fmt(r.stats.probe_seconds, 3), fmt(r.stats.pair_search_seconds, 3)},
              widths);
    report_variant(v.name, r);
  }

  // --- no GIF grouping at all (opt 2 requires opt 1, so both are off) ---
  if (!budget.skip("no-optimizations variant")) {
    CramOptions opts;
    opts.metric = ClosenessMetric::kIos;
    opts.gif_grouping = false;
    opts.one_to_many = false;
    const CramResult r = cram_allocate(pool, units, info.publisher_table, opts);
    print_row({"no optimizations", std::to_string(r.allocation.brokers_used()),
               std::to_string(r.allocation.unit_count()),
               std::to_string(r.stats.closeness_computations), "0",
               fmt(r.stats.total_seconds, 3), fmt(r.stats.probe_seconds, 3),
               fmt(r.stats.pair_search_seconds, 3)},
              widths);
    report_variant("no optimizations", r);
  }

  // --- poset build time ---
  {
    const std::size_t n = full_scale() ? 3200 : 1000;
    Rng rng(9);
    using Clock = std::chrono::steady_clock;
    ProfilePoset poset;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      SubscriptionProfile p(256);
      const auto from = rng.uniform_int(0, 4000);
      const auto len = 1 + rng.uniform_int(0, 200);
      for (MessageSeq s = from; s < from + len; ++s) {
        p.record(AdvId{static_cast<std::uint64_t>(rng.index(8))}, s);
      }
      poset.insert(std::move(p), i);
    }
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("\nposet build: %zu GIFs inserted in %.2f s (paper: 3,200 in ~2 s)\n", n,
                secs);
    report.header().set_integer("poset_build_gifs", n).set_number("poset_build_seconds",
                                                                 secs);
  }
  report.write("BENCH_cram_ablation.json", "results");
  return 0;
}
