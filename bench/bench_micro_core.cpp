// E10 — Microbenchmarks of the core data structures (google-benchmark):
// windowed bit vectors, closeness metrics, profile algebra, poset insertion
// and the broker matching engine — plus an always-run concurrent-matching
// throughput section (eq-only and range-only suites at 1/2/4/8 reader
// threads against one published routing snapshot) that verifies exact
// match-set equality against the single-thread oracle and emits
// BENCH_match.json. GREENPS_TINY=1 shrinks the table and iteration counts
// to smoke scale.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "alloc/cram_incremental.hpp"
#include "alloc/gif.hpp"
#include "bench_util.hpp"
#include "broker/routing_tables.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "matching/matching_engine.hpp"
#include "poset/poset.hpp"
#include "profile/closeness.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_engine.hpp"
#include "workload/subscription_gen.hpp"

namespace greenps {
namespace {

SubscriptionProfile random_profile(Rng& rng, std::size_t bits, std::size_t advs = 4) {
  SubscriptionProfile p(1280);
  for (std::size_t i = 0; i < bits; ++i) {
    p.record(AdvId{static_cast<std::uint64_t>(rng.index(advs))}, rng.uniform_int(0, 1279));
  }
  return p;
}

void BM_WindowedBitVectorRecord(benchmark::State& state) {
  WindowedBitVector v;
  MessageSeq seq = 0;
  for (auto _ : state) {
    v.record(seq);
    seq += 3;  // periodic slide
  }
}
BENCHMARK(BM_WindowedBitVectorRecord);

void BM_WindowedBitVectorIntersect(benchmark::State& state) {
  WindowedBitVector a, b;
  for (MessageSeq s = 0; s < 1280; s += 2) a.record(s);
  for (MessageSeq s = 0; s < 1280; s += 3) b.record(s + 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WindowedBitVector::intersect_count(a, b));
  }
}
BENCHMARK(BM_WindowedBitVectorIntersect);

void BM_Closeness(benchmark::State& state) {
  Rng rng(1);
  const auto metric = static_cast<ClosenessMetric>(state.range(0));
  const auto a = random_profile(rng, 400);
  const auto b = random_profile(rng, 400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(closeness(metric, a, b));
  }
}
BENCHMARK(BM_Closeness)->DenseRange(0, 3)->ArgName("metric");

void BM_ProfileMerge(benchmark::State& state) {
  Rng rng(2);
  const auto a = random_profile(rng, 400);
  const auto b = random_profile(rng, 400);
  for (auto _ : state) {
    SubscriptionProfile m = a;
    m.merge(b);
    benchmark::DoNotOptimize(m.cardinality());
  }
}
BENCHMARK(BM_ProfileMerge);

void BM_ProfileRelation(benchmark::State& state) {
  Rng rng(3);
  const auto a = random_profile(rng, 400);
  const auto b = random_profile(rng, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubscriptionProfile::relation(a, b));
  }
}
BENCHMARK(BM_ProfileRelation);

void BM_PosetInsert(benchmark::State& state) {
  // The paper's claim: 3,200 GIF inserts in ~2 s.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(4);
    std::vector<SubscriptionProfile> profiles;
    profiles.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      SubscriptionProfile p(256);
      const auto from = rng.uniform_int(0, 4000);
      const auto len = 1 + rng.uniform_int(0, 150);
      for (MessageSeq s = from; s < from + len; ++s) {
        p.record(AdvId{static_cast<std::uint64_t>(rng.index(8))}, s);
      }
      profiles.push_back(std::move(p));
    }
    state.ResumeTiming();
    ProfilePoset poset;
    for (std::size_t i = 0; i < n; ++i) poset.insert(profiles[i], i);
    benchmark::DoNotOptimize(poset.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PosetInsert)->Arg(400)->Arg(1600)->Arg(3200)->Unit(benchmark::kMillisecond);

void BM_GifGrouping(benchmark::State& state) {
  Rng rng(5);
  PublisherTable table;
  table[AdvId{0}] = PublisherProfile{AdvId{0}, 100.0, 100.0, 100000};
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    SubscriptionProfile p(128);
    const auto group = rng.index(200);  // ~10 identical units per group
    for (MessageSeq s = 0; s < 40; ++s) {
      p.record(AdvId{0}, static_cast<MessageSeq>(group) * 50 + s);
    }
    units.push_back(make_subscription_unit(SubId{i}, std::move(p), table));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(group_identical_filters(units).size());
  }
}
BENCHMARK(BM_GifGrouping)->Unit(benchmark::kMillisecond);

// Balanced insert/remove delta batches against an already-populated poset —
// the splice cost the incremental reconfiguration path pays per churn step
// (no DAG rebuild). Arg = batch size on a 800-node poset.
void BM_PosetDelta(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLive = 800;
  Rng rng(6);
  ProfilePoset poset;
  const auto make = [&rng] {
    SubscriptionProfile p(256);
    const auto from = rng.uniform_int(0, 4000);
    const auto len = 1 + rng.uniform_int(0, 150);
    for (MessageSeq s = from; s < from + len; ++s) {
      p.record(AdvId{static_cast<std::uint64_t>(rng.index(8))}, s);
    }
    return p;
  };
  std::uint64_t payload = 0;
  for (std::size_t i = 0; i < kLive; ++i) poset.insert(make(), payload++);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<SubscriptionProfile> fresh;
    fresh.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) fresh.push_back(make());
    state.ResumeTiming();
    std::vector<ProfilePoset::NodeId> nodes;
    nodes.reserve(batch);
    for (SubscriptionProfile& p : fresh) {
      const auto ins = poset.insert(std::move(p), payload++);
      if (ins.inserted) nodes.push_back(ins.node);
    }
    for (const auto n : nodes) poset.remove(n);
    benchmark::DoNotOptimize(poset.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * batch));
}
BENCHMARK(BM_PosetDelta)->Arg(1)->Arg(8)->Arg(32)->ArgName("batch");

// One incremental churn step end-to-end: apply a balanced add/remove batch
// to a warm IncrementalCram session and reconverge the dirty neighborhoods.
// Compare against BM_PosetInsert-scale from-scratch runs to see the
// delta-proportional cost. Arg = batch size on a 400-subscription session.
void BM_IncrementalRecluster(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kSubs = 400;
  Rng rng(7);
  PublisherTable table;
  for (std::uint64_t a = 0; a < 8; ++a) {
    table[AdvId{a}] = PublisherProfile{AdvId{a}, 100.0, 100.0, 100000};
  }
  const auto make_unit = [&rng, &table](std::uint64_t id) {
    SubscriptionProfile p(256);
    const auto group = rng.index(60);  // overlap so clustering has work
    for (MessageSeq s = 0; s < 40; ++s) {
      p.record(AdvId{static_cast<std::uint64_t>(rng.index(8))},
               static_cast<MessageSeq>(group) * 30 + s);
    }
    return make_subscription_unit(SubId{id}, std::move(p), table);
  };
  std::vector<SubUnit> units;
  std::vector<SubId> live;
  units.reserve(kSubs);
  for (std::uint64_t i = 0; i < kSubs; ++i) {
    units.push_back(make_unit(i));
    live.push_back(SubId{i});
  }
  std::vector<AllocBroker> pool(24);
  for (std::size_t b = 0; b < pool.size(); ++b) {
    pool[b] = AllocBroker{BrokerId{b}, 4000.0, MatchingDelayFunction{}};
  }
  IncrementalCram session(std::move(pool), std::move(units), table, CramOptions{});
  if (!session.initialize().allocation.success) {
    state.SkipWithError("initial convergence failed");
    return;
  }
  std::uint64_t next_id = kSubs;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<SubUnit> added;
    std::vector<SubId> removed;
    added.reserve(batch);
    removed.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      added.push_back(make_unit(next_id));
      live.push_back(SubId{next_id++});
      const std::size_t pick = rng.index(live.size());
      removed.push_back(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    state.ResumeTiming();
    const CramResult r = session.apply(std::move(added), removed);
    benchmark::DoNotOptimize(r.allocation.brokers_used());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * batch));
}
BENCHMARK(BM_IncrementalRecluster)->Arg(1)->Arg(8)->Arg(32)->ArgName("batch")
    ->Unit(benchmark::kMillisecond);

void BM_MatchingEngine(benchmark::State& state) {
  Rng rng(6);
  StockQuoteGenerator quotes(StockQuoteGenerator::Config{}, rng.fork());
  SubscriptionGenerator subs(SubscriptionGenerator::Config{}, rng.fork());
  MatchingEngine engine;
  MatchingEngine::Handle h = 0;
  std::vector<std::string> symbols;
  for (int i = 0; i < 40; ++i) symbols.push_back("SYM" + std::to_string(i));
  for (const auto& sym : symbols) {
    for (const Filter& f : subs.batch(sym, static_cast<std::size_t>(state.range(0)) / 40,
                                      quotes)) {
      engine.insert(h++, f);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const Publication pub = quotes.next(symbols[i++ % symbols.size()]);
    benchmark::DoNotOptimize(engine.match(pub).size());
  }
  state.SetLabel(std::to_string(engine.size()) + " filters");
}
BENCHMARK(BM_MatchingEngine)->Arg(2000)->Arg(8000);

// Equality-only filters: every probe is one hash bucket of the typed index.
void BM_MatchingEngineEqOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  MatchingEngine engine;
  for (std::size_t i = 0; i < n; ++i) {
    Filter f;
    f.add(Predicate{"class", Op::kEq, Value(std::string("STOCK"))});
    f.add(Predicate{"symbol", Op::kEq, Value("SYM" + std::to_string(i % 40))});
    engine.insert(i, std::move(f));
  }
  Publication pub;
  pub.set_attr("class", Value(std::string("STOCK")));
  pub.set_attr("symbol", Value(std::string("SYM7")));
  pub.set_attr("low", Value(18.0));
  std::vector<MatchingEngine::Handle> out;
  for (auto _ : state) {
    out.clear();
    engine.match_into(pub, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel(std::to_string(engine.size()) + " filters");
}
BENCHMARK(BM_MatchingEngineEqOnly)->Arg(2000)->Arg(8000);

// Range-only filters (no equality predicate anywhere): before the interval
// index these all sat on the scan list and every match brute-forced the
// whole table.
void BM_MatchingEngineRangeOnly(benchmark::State& state) {
  Rng rng(8);
  const auto n = static_cast<std::size_t>(state.range(0));
  MatchingEngine engine;
  for (std::size_t i = 0; i < n; ++i) {
    Filter f;
    const double lo = rng.uniform_real(0.0, 90.0);
    f.add(Predicate{"low", Op::kGt, Value(lo)});
    f.add(Predicate{"low", Op::kLt, Value(lo + rng.uniform_real(0.5, 10.0))});
    engine.insert(i, std::move(f));
  }
  Publication pub;
  pub.set_attr("class", Value(std::string("STOCK")));
  pub.set_attr("low", Value(42.0));
  std::vector<MatchingEngine::Handle> out;
  for (auto _ : state) {
    out.clear();
    engine.match_into(pub, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetLabel(std::to_string(engine.size()) + " filters");
}
BENCHMARK(BM_MatchingEngineRangeOnly)->Arg(2000)->Arg(8000);

// Event-queue throughput: schedule a burst, drain it, repeat. The Action is
// an inline-storage callable, so this path never heap-allocates per event.
void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue q;
  Rng rng(9);
  std::uint64_t executed = 0;
  constexpr int kBurst = 1024;
  for (auto _ : state) {
    const SimTime base = q.now();
    for (int i = 0; i < kBurst; ++i) {
      q.schedule(base + rng.uniform_int(1, 1000), [&executed] { ++executed; });
    }
    q.run_until(base + 1001);
  }
  benchmark::DoNotOptimize(executed);
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_EventQueueScheduleRun);

// Sharded event-loop drain: self-rescheduling event chains spread over W
// shards, with `cross_pct` percent of reschedules posting to the next shard
// (at +lookahead, honoring the conservative window contract). Sweeps the
// worker count against the cross-shard traffic ratio — the two axes that
// bound the simulator's parallel speedup.
void BM_ShardedEventLoopDrain(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const double cross = static_cast<double>(state.range(1)) / 100.0;
  constexpr SimTime kLookahead = 500;  // the simulator's link latency, in us
  constexpr std::size_t kChains = 128;
  constexpr SimTime kEpoch = 20000;  // simulated us drained per iteration

  ShardedEventLoop loop(workers);
  ThreadPool pool(workers);
  struct alignas(64) PerShard {
    std::uint64_t executed = 0;
    std::uint64_t key_seq = 0;
    Rng rng{0};
  };
  std::vector<PerShard> sh(workers);
  for (std::size_t s = 0; s < workers; ++s) sh[s].rng = Rng(s + 1);

  // Each firing does a pinch of work (the counter + RNG draws) and
  // reschedules itself — locally a short hop ahead, or onto the next shard
  // past the lookahead.
  std::function<void(std::size_t, std::uint64_t)> fire = [&](std::size_t s,
                                                             std::uint64_t chain) {
    PerShard& ps = sh[s];
    ps.executed += 1;
    const bool go_cross = workers > 1 && ps.rng.chance(cross);
    const std::size_t dst = go_cross ? (s + 1) % workers : s;
    const SimTime now = loop.queue(s).now();
    const SimTime at =
        now + (go_cross ? kLookahead : 0) + 1 + static_cast<SimTime>(ps.rng.index(97));
    loop.post(s, dst, at, EventKey{(2ull << 56) | chain, ps.key_seq++},
              [&fire, dst, chain] { fire(dst, chain); });
  };
  for (std::uint64_t c = 0; c < kChains; ++c) {
    const std::size_t s = c % workers;
    loop.queue(s).schedule_keyed(1 + static_cast<SimTime>(c), EventKey{(2ull << 56) | c, 0},
                                 [&fire, s, c] { fire(s, c); });
  }

  SimTime end = 0;
  for (auto _ : state) {
    end += kEpoch;
    loop.run(end, kLookahead, workers > 1 ? &pool : nullptr);
  }
  std::uint64_t total = 0;
  for (const PerShard& ps : sh) total += ps.executed;
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_ShardedEventLoopDrain)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 10, 50}})
    ->ArgNames({"workers", "cross_pct"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// --- concurrent snapshot-match throughput (always run; BENCH_match.json) --
//
// Readers share one published SubscriptionRoutingTable snapshot and match
// lock-free via match_published(); each reader owns its MatchScratch and
// verifies every result — exact forward_to/deliver equality — against the
// single-thread oracle computed up front. Throughput is aggregate match
// operations per second across all readers. On a multi-core host the
// eq/range suites are expected to scale near-linearly to the core count; a
// single-core container reports ~flat numbers (the JSON records whatever
// was measured).
struct MatchSuite {
  std::string name;
  SubscriptionRoutingTable table;
  std::vector<Publication> pubs;
};

// The routing table pins its address (EpochPtr + atomic members), so suites
// are populated in place rather than returned.
void build_eq_suite(MatchSuite& s, std::size_t n) {
  s.name = "eq_only";
  for (std::size_t i = 0; i < n; ++i) {
    Filter f;
    f.add(Predicate{"class", Op::kEq, Value(std::string("STOCK"))});
    f.add(Predicate{"symbol", Op::kEq, Value("SYM" + std::to_string(i % 40))});
    s.table.insert(SubId{i}, f, Hop::to_client(ClientId{i}));
  }
  s.table.publish();
  for (int k = 0; k < 8; ++k) {
    Publication pub;
    pub.set_attr("class", Value(std::string("STOCK")));
    pub.set_attr("symbol", Value("SYM" + std::to_string(k * 5)));
    pub.set_attr("low", Value(18.0));
    s.pubs.push_back(std::move(pub));
  }
}

void build_range_suite(MatchSuite& s, std::size_t n) {
  s.name = "range_only";
  Rng rng(8);
  for (std::size_t i = 0; i < n; ++i) {
    Filter f;
    const double lo = rng.uniform_real(0.0, 90.0);
    f.add(Predicate{"low", Op::kGt, Value(lo)});
    f.add(Predicate{"low", Op::kLt, Value(lo + rng.uniform_real(0.5, 10.0))});
    s.table.insert(SubId{i}, f, Hop::to_client(ClientId{i}));
  }
  s.table.publish();
  for (int k = 0; k < 8; ++k) {
    Publication pub;
    pub.set_attr("class", Value(std::string("STOCK")));
    pub.set_attr("low", Value(5.0 + 11.0 * k));
    s.pubs.push_back(std::move(pub));
  }
}

struct MatchRunStats {
  double seconds = 0;
  std::uint64_t ops = 0;
  std::uint64_t deliveries = 0;
  bool verified = true;
};

MatchRunStats run_match_suite(const MatchSuite& s, std::size_t threads,
                              std::size_t iters_per_thread) {
  using MatchResult = SubscriptionRoutingTable::MatchResult;
  // Single-thread oracle per publication, computed before the clock starts.
  std::vector<MatchResult> oracle(s.pubs.size());
  {
    MatchScratch scratch;
    for (std::size_t p = 0; p < s.pubs.size(); ++p) {
      s.table.match_published(s.pubs[p], nullptr, oracle[p], scratch);
    }
  }

  std::atomic<std::uint64_t> deliveries{0};
  std::atomic<std::uint64_t> mismatches{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      MatchScratch scratch;
      MatchResult out;
      std::uint64_t local_deliveries = 0;
      std::uint64_t local_mismatches = 0;
      for (std::size_t i = 0; i < iters_per_thread; ++i) {
        const std::size_t p = (i + t) % s.pubs.size();
        s.table.match_published(s.pubs[p], nullptr, out, scratch);
        local_deliveries += out.deliver.size();
        if (out.forward_to != oracle[p].forward_to || out.deliver != oracle[p].deliver) {
          ++local_mismatches;
        }
      }
      deliveries.fetch_add(local_deliveries, std::memory_order_relaxed);
      mismatches.fetch_add(local_mismatches, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();

  MatchRunStats r;
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  r.ops = static_cast<std::uint64_t>(threads) * iters_per_thread;
  r.deliveries = deliveries.load();
  r.verified = mismatches.load() == 0;
  return r;
}

int run_match_report() {
  const bool tiny = bench::tiny_scale();
  const std::size_t filters = tiny ? 2000 : 8000;
  const std::size_t iters = tiny ? 2000 : 20000;
  // On a single-core host every "parallel" run timeshares one CPU, so
  // speedup_vs_1 measures scheduler overhead, not scaling. The flag rides
  // on each row so downstream dashboards can drop those points.
  const bool single_core_host = std::thread::hardware_concurrency() <= 1;
  std::printf("\nconcurrent snapshot matching (%zu filters, %zu matches/thread)%s\n",
              filters, iters, tiny ? " [tiny/smoke scale]" : "");

  bench::RunReport report("micro_match");
  report.header()
      .set_integer("filters", filters)
      .set_integer("iters_per_thread", iters)
      .set_integer("hardware_threads", std::thread::hardware_concurrency())
      .set_bool("tiny", tiny);

  const std::vector<int> widths = {11, 8, 9, 12, 13, 11, 7};
  bench::print_row({"suite", "threads", "wall(s)", "ops/s", "deliveries", "speedup", "ok"},
                   widths);
  bool all_verified = true;
  MatchSuite eq_suite, range_suite;
  build_eq_suite(eq_suite, filters);
  build_range_suite(range_suite, filters);
  for (const MatchSuite* sp : {&eq_suite, &range_suite}) {
    const MatchSuite& suite = *sp;
    double base_ops_per_s = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const MatchRunStats r = run_match_suite(suite, threads, iters);
      const double ops_per_s = r.seconds > 0 ? static_cast<double>(r.ops) / r.seconds : 0;
      if (threads == 1) base_ops_per_s = ops_per_s;
      const double speedup = base_ops_per_s > 0 ? ops_per_s / base_ops_per_s : 0;
      all_verified = all_verified && r.verified;
      bench::print_row({suite.name, std::to_string(threads), bench::fmt(r.seconds, 3),
                        bench::fmt(ops_per_s, 0), std::to_string(r.deliveries),
                        bench::fmt(speedup, 2) + "x", r.verified ? "ok" : "FAIL"},
                       widths);
      report.add_row(bench::JsonObject()
                         .set_string("suite", suite.name)
                         .set_integer("threads", threads)
                         .set_integer("matches", r.ops)
                         .set_integer("deliveries", r.deliveries)
                         .set_number("seconds", r.seconds)
                         .set_number("matches_per_s", ops_per_s)
                         .set_number("speedup_vs_1", speedup)
                         .set_bool("single_core_host", single_core_host)
                         .set_bool("verified", r.verified));
    }
  }
  report.write("BENCH_match.json", "rows");
  if (!all_verified) {
    std::fprintf(stderr, "[micro_match] concurrent match diverged from the oracle\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace greenps

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // The concurrent-matching report always runs (even with a benchmark
  // filter matching nothing), so BENCH_match.json is produced by every
  // invocation, including the ctest smoke entry.
  return greenps::run_match_report();
}
