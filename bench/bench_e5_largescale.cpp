// E5 — Large-scale deployments (the paper's SciNet runs: 400 and 1,000
// brokers with 72 and 100 publishers at 225 subscriptions each, sized so
// the MANUAL baseline initially saturates the system).
//
// Reduced default: 100/160 brokers. Expected shape: consolidation ratios
// grow with network size — most of a sparse deployment is pure forwarding.
#include <cstdio>

#include "bench_util.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

struct Scale {
  std::size_t brokers;
  std::size_t publishers;
  std::size_t subs_per_publisher;
};

std::vector<Scale> scales() {
  if (tiny_scale()) return {{12, 3, 5}};
  if (full_scale()) return {{400, 72, 225}, {1000, 100, 225}};
  return {{100, 18, 40}, {160, 25, 40}};
}

}  // namespace

int main() {
  const BenchBudget budget;  // GREENPS_BENCH_BUDGET_S caps the scale grid
  std::printf("E5: large-scale deployments %s\n\n",
              tiny_scale()   ? "[TINY: smoke-test scale]"
              : full_scale() ? "[FULL SCALE: SciNet shape]"
                             : "[reduced scale; GREENPS_FULL=1 for 400/1000 brokers]");
  const std::vector<int> widths = {8, 6, 12, 10, 12, 12, 8};
  print_row({"brokers", "subs", "approach", "alloc", "msg rate", "sys rate", "hops"},
            widths);

  std::vector<std::string> json_rows;
  for (const Scale& s : scales()) {
    if (budget.skip("remaining deployment scales")) break;
    HarnessConfig cfg;
    cfg.scenario.num_brokers = s.brokers;
    cfg.scenario.num_publishers = s.publishers;
    cfg.scenario.subs_per_publisher = s.subs_per_publisher;
    cfg.scenario.full_out_bw_kb_s = full_scale() ? 300.0 : 40.0;
    cfg.scenario.seed = 42;
    cfg.profile_seconds = tiny_scale() ? 5.0 : 90.0;
    cfg.measure_seconds = tiny_scale() ? 10.0 : (full_scale() ? 60.0 : 120.0);
    const std::size_t total = s.publishers * s.subs_per_publisher;
    for (const Approach a :
         {Approach::kManual, Approach::kAutomatic, Approach::kBinPacking, Approach::kCramIos}) {
      if (budget.skip("remaining approaches at this scale")) break;
      const RunResult r = run_approach(a, cfg);
      print_row({std::to_string(s.brokers), std::to_string(total), approach_name(a),
                 std::to_string(r.summary.allocated_brokers),
                 fmt(r.summary.avg_broker_msg_rate, 2), fmt(r.summary.system_msg_rate, 1),
                 fmt(r.summary.avg_hop_count, 2)},
                widths);
      JsonObject row = run_result_json(r);
      row.set_integer("brokers", s.brokers).set_integer("subscriptions", total);
      json_rows.push_back(row.render());
    }
    std::printf("\n");
  }
  write_sim_bench_json("e5", json_rows);
  return 0;
}
