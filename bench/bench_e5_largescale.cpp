// E5 — Large-scale deployments (the paper's SciNet runs: 400 and 1,000
// brokers with 72 and 100 publishers at 225 subscriptions each, sized so
// the MANUAL baseline initially saturates the system; plus a 4,000-broker /
// ~101k-subscription stretch configuration exercising the sharded event
// loop).
//
// Reduced default: 100/160 brokers. Expected shape: consolidation ratios
// grow with network size — most of a sparse deployment is pure forwarding.
//
// Besides the approach grid, the bench sweeps the simulator's worker count
// (1/2/4/8 event-queue shards) on the first scale and emits the scaling
// curve as "series": "workers" rows in BENCH_sim.json — results are
// bit-identical across worker counts, so the curve isolates pure event-loop
// parallelism. See EXPERIMENTS.md for the row schema.
#include <cstdio>

#include "bench_util.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

struct Scale {
  std::size_t brokers;
  std::size_t publishers;
  std::size_t subs_per_publisher;
};

std::vector<Scale> scales() {
  if (tiny_scale()) return {{12, 3, 5}};
  if (full_scale()) return {{400, 72, 225}, {1000, 100, 225}, {4000, 450, 225}};
  return {{100, 18, 40}, {160, 25, 40}};
}

HarnessConfig config_for(const Scale& s) {
  HarnessConfig cfg;
  cfg.scenario.num_brokers = s.brokers;
  cfg.scenario.num_publishers = s.publishers;
  cfg.scenario.subs_per_publisher = s.subs_per_publisher;
  cfg.scenario.full_out_bw_kb_s = full_scale() ? 300.0 : 40.0;
  cfg.scenario.seed = 42;
  cfg.profile_seconds = tiny_scale() ? 5.0 : 90.0;
  cfg.measure_seconds = tiny_scale() ? 10.0 : (full_scale() ? 60.0 : 120.0);
  return cfg;
}

}  // namespace

int main() {
  const BenchBudget budget;  // GREENPS_BENCH_BUDGET_S caps the scale grid
  std::printf("E5: large-scale deployments %s\n\n",
              tiny_scale()   ? "[TINY: smoke-test scale]"
              : full_scale() ? "[FULL SCALE: SciNet shape]"
                             : "[reduced scale; GREENPS_FULL=1 for 400/1000/4000 brokers]");
  std::vector<std::string> json_rows;

  // --- worker-count scaling curve (first scale, MANUAL baseline) ---
  // Runs before the approach grid so a tight budget still yields the curve.
  const Scale first = scales().front();
  {
    const std::vector<int> widths = {8, 8, 10, 12, 10};
    std::printf("worker scaling, %zu brokers (MANUAL):\n",
                static_cast<std::size_t>(first.brokers));
    print_row({"workers", "shards", "wall s", "events/s", "speedup"}, widths);
    double wall_1 = 0;
    for (const std::size_t w : {1, 2, 4, 8}) {
      if (budget.skip("remaining worker counts")) break;
      HarnessConfig cfg = config_for(first);
      cfg.sim.workers = w;
      const RunResult r = run_approach(Approach::kManual, cfg);
      if (w == 1) wall_1 = r.wall_s;
      print_row({std::to_string(w), std::to_string(r.workers), fmt(r.wall_s, 2),
                 fmt(r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0, 0),
                 r.wall_s > 0 && wall_1 > 0 ? fmt(wall_1 / r.wall_s, 2) + "x" : "n/a"},
                widths);
      JsonObject row = run_result_json(r);
      row.set_string("series", "workers")
          .set_integer("requested_workers", w)
          .set_integer("brokers", first.brokers)
          .set_integer("subscriptions", first.publishers * first.subs_per_publisher);
      json_rows.push_back(row.render());
    }
    std::printf("\n");
  }

  // --- approach grid across deployment scales ---
  const std::vector<int> widths = {8, 8, 6, 12, 10, 12, 12, 8};
  print_row({"brokers", "workers", "subs", "approach", "alloc", "msg rate", "sys rate",
             "hops"},
            widths);
  for (const Scale& s : scales()) {
    if (budget.skip("remaining deployment scales")) break;
    const HarnessConfig cfg = config_for(s);
    const std::size_t total = s.publishers * s.subs_per_publisher;
    for (const Approach a :
         {Approach::kManual, Approach::kAutomatic, Approach::kBinPacking, Approach::kCramIos}) {
      if (budget.skip("remaining approaches at this scale")) break;
      const RunResult r = run_approach(a, cfg);
      print_row({std::to_string(s.brokers), std::to_string(r.workers),
                 std::to_string(total), approach_name(a),
                 std::to_string(r.summary.allocated_brokers),
                 fmt(r.summary.avg_broker_msg_rate, 2), fmt(r.summary.system_msg_rate, 1),
                 fmt(r.summary.avg_hop_count, 2)},
                widths);
      JsonObject row = run_result_json(r);
      row.set_string("series", "approaches")
          .set_integer("brokers", s.brokers)
          .set_integer("subscriptions", total);
      json_rows.push_back(row.render());
    }
    std::printf("\n");
  }
  write_sim_bench_json("e5", json_rows);
  return 0;
}
