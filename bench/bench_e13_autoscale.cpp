// E14 — Closed-loop elastic autoscaling over a diurnal day with flash crowds.
//
// Three provisioning policies run the identical MANUAL scenario through the
// identical diurnal + flash-crowd rate schedule (workload/diurnal.hpp:
// trough at t = 0, sinusoidal peak at mid-day, one crowd on the morning
// ramp and one in the evening trough):
//
//   static-peak    size once for the schedule's peak multiplier, never adapt
//   static-trough  size once for the trough multiplier, never adapt
//   controller     ControlLoop: sense -> estimate -> decide -> CROC plan ->
//                  transactional apply, consolidating at low load and
//                  commissioning parked brokers back under the crowds
//
// Each mode reports broker-hours (the energy proxy), the exact overall
// delivery-delay distribution (merged per-window histograms), and
// migrations/hour. The headline — the controller consumes fewer
// broker-hours than static-peak while holding p99 delivery delay within
// max(2x static-peak, static-peak + 100 ms) — is enforced with a non-zero
// exit at default/full scale (tiny smoke runs check the machinery, not the
// asymptote, and the enforcement is waived there and under a budget skip).
//
// Knobs: GREENPS_TINY=1 / GREENPS_FULL=1 scale, GREENPS_BENCH_BUDGET_S,
// GREENPS_AUTOSCALE_DAY_S (day length), GREENPS_AUTOSCALE_INTERVAL_S
// (control interval), GREENPS_HEADROOM_SCALE (seed the controller's learned
// allocator-headroom correction with a previous run's value; each mode row
// emits the run's final correction as learned_headroom_scale). Results land
// in BENCH_autoscale.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "control/control_loop.hpp"
#include "sweep_common.hpp"
#include "workload/diurnal.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

using Clock = std::chrono::steady_clock;

enum class Mode { kStaticPeak, kStaticTrough, kController };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kStaticPeak: return "static-peak";
    case Mode::kStaticTrough: return "static-trough";
    case Mode::kController: return "controller";
  }
  return "?";
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

struct ModeResult {
  Mode mode = Mode::kController;
  bool ran = false;
  bool sized = false;  // static modes: the one-shot reconfigure applied
  double broker_hours = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double avg_ms = 0;
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
  std::size_t min_brokers = 0;
  std::size_t max_brokers = 0;
  double migrations_per_hour = 0;
  double headroom_scale = 1.0;  // learned allocator-headroom correction
  control::ControlTotals totals;
  double wall_s = 0;
  std::vector<std::string> tick_rows;
};

ModeResult run_mode(Mode mode, const HarnessConfig& cfg, const DiurnalSchedule& schedule,
                    double run_s, double interval_s, double profile_s) {
  const auto t0 = Clock::now();
  ModeResult r;
  r.mode = mode;

  Simulation sim = make_simulation(cfg.scenario, cfg.sim);
  const control::RateModulator modulator(sim);

  if (mode == Mode::kController) {
    // Warm the CBC profiles at the day's opening rate; the loop itself
    // starts against the full deployment and consolidates on its own.
    modulator.apply(sim, schedule.multiplier(0));
    sim.run(profile_s);
  } else {
    // One-shot sizing: profile at the extremum this baseline provisions
    // for, reconfigure once, then never adapt again.
    const double size_mult =
        mode == Mode::kStaticPeak ? schedule.peak() : schedule.trough();
    modulator.apply(sim, size_mult);
    sim.run(profile_s);
    CrocConfig ccfg;
    ccfg.seed = cfg.scenario.seed;
    ccfg.capacity_headroom = 0.9;
    Croc croc(ccfg);
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    if (report.success) {
      ApplyResult applied = apply_plan_transactional(
          sim.deployment(), report.plan,
          [&sim](BrokerId b) { return sim.broker_alive(b); });
      if (applied.success) {
        sim.redeploy(std::move(applied.deployment));
        r.sized = true;
      }
    }
    if (!r.sized) {
      std::fprintf(stderr, "[e14] %s: one-shot sizing failed (%s); running unsized\n",
                   mode_name(mode), failure_reason_name(report.failure));
    }
  }
  sim.reset_metrics();

  control::ControlLoopConfig lc;
  lc.interval_s = interval_s;
  lc.enabled = mode == Mode::kController;
  lc.croc.seed = cfg.scenario.seed;
  control::ControlLoop loop(sim, lc);

  r.min_brokers = r.max_brokers = sim.deployment().topology.broker_count();
  const auto steps = static_cast<std::size_t>(std::ceil(run_s / interval_s));
  for (std::size_t i = 0; i < steps; ++i) {
    // Piecewise-constant schedule: the window's rate is set at its start.
    modulator.apply(sim, schedule.multiplier(static_cast<double>(i) * interval_s));
    const control::TickRecord& rec = loop.step();
    r.min_brokers = std::min(r.min_brokers, rec.brokers_after);
    r.max_brokers = std::max(r.max_brokers, rec.brokers_after);
    if (mode == Mode::kController) {
      JsonObject row;
      row.set_string("kind", "tick")
          .set_number("time_s", rec.time_s)
          .set_string("action", control::action_name(rec.decision.action))
          .set_string("hold", control::hold_reason_name(rec.decision.hold))
          .set_bool("emergency", rec.decision.emergency)
          .set_bool("applied", rec.applied)
          .set_integer("brokers", rec.brokers_after)
          .set_number("ewma_peak_util", rec.estimate.ewma_peak_util)
          .set_number("ewma_avg_util", rec.estimate.ewma_avg_util)
          .set_number("max_backlog_s", rec.estimate.max_backlog_s)
          .set_number("in_rate_msg_s", rec.estimate.in_rate_msg_s)
          .set_integer("clients_moved", rec.migration.subscribers_moved +
                                            rec.migration.publishers_moved)
          .set_number("score_net", rec.score.net)
          .set_number("projected_util", rec.score.projected_util)
          .set_bool("delay_risk", rec.score.delay_risk)
          .set_string("plan_failure", failure_reason_name(rec.plan_failure))
          .set_string("apply_failure", failure_reason_name(rec.apply_failure));
      r.tick_rows.push_back(row.render());
    }
  }

  r.totals = loop.totals();
  r.headroom_scale = loop.headroom_scale();
  r.broker_hours = r.totals.broker_seconds / 3600.0;
  r.publications = r.totals.publications;
  r.deliveries = r.totals.deliveries;
  r.p50_ms = loop.delay_histogram().percentile_ms(0.50);
  r.p99_ms = loop.delay_histogram().percentile_ms(0.99);
  r.avg_ms = r.deliveries > 0
                 ? r.totals.delay_sum_ms / static_cast<double>(r.deliveries)
                 : 0.0;
  r.migrations_per_hour =
      static_cast<double>(r.totals.reconfigurations) / (run_s / 3600.0);
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ran = true;
  return r;
}

}  // namespace

int main() {
  const BenchBudget budget;
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 100 : tiny_scale() ? 15 : 50;

  const double day_s = env_double("GREENPS_AUTOSCALE_DAY_S",
                                  full_scale() ? 1800 : tiny_scale() ? 300 : 900);
  // Two diurnal cycles by default: the first includes the controller's
  // cold start (it inherits the full peak deployment and has to discover
  // the trough), the second is steady state. Day-long averages over both
  // keep the cold-start cost in the books without letting it dominate.
  const double days = env_double("GREENPS_AUTOSCALE_DAYS", tiny_scale() ? 1 : 2);
  const double run_s = days * day_s;
  const double interval_s =
      env_double("GREENPS_AUTOSCALE_INTERVAL_S", tiny_scale() ? 5 : 10);
  const double profile_s = tiny_scale() ? 10 : 45;

  const DiurnalSchedule schedule(default_diurnal(day_s));
  std::printf("E14: elastic autoscaling, %.0f s day x %.0f, %.0f s control interval, "
              "multipliers %.2f..%.2f %s\n\n",
              day_s, days, interval_s, schedule.trough(), schedule.peak(),
              full_scale()   ? "[FULL SCALE]"
              : tiny_scale() ? "[tiny/smoke scale]"
                             : "[reduced scale]");

  const std::vector<Mode> modes = {Mode::kStaticPeak, Mode::kStaticTrough,
                                   Mode::kController};
  std::vector<ModeResult> results;
  for (const Mode m : modes) {
    if (budget.skip("remaining autoscale modes")) break;
    results.push_back(run_mode(m, cfg, schedule, run_s, interval_s, profile_s));
  }

  const std::vector<int> widths = {14, 9, 8, 9, 9, 9, 10, 9, 7};
  print_row({"mode", "brokers", "bk-hrs", "p50(ms)", "p99(ms)", "avg(ms)",
             "deliveries", "reconf/h", "wall"},
            widths);
  for (const ModeResult& r : results) {
    print_row({mode_name(r.mode),
               std::to_string(r.min_brokers) + ".." + std::to_string(r.max_brokers),
               fmt(r.broker_hours, 3), fmt(r.p50_ms, 1), fmt(r.p99_ms, 1),
               fmt(r.avg_ms, 1), std::to_string(r.deliveries),
               fmt(r.migrations_per_hour, 1), fmt(r.wall_s, 1)},
              widths);
  }

  const ModeResult* peak = nullptr;
  const ModeResult* trough = nullptr;
  const ModeResult* on = nullptr;
  for (const ModeResult& r : results) {
    if (r.mode == Mode::kStaticPeak) peak = &r;
    if (r.mode == Mode::kStaticTrough) trough = &r;
    if (r.mode == Mode::kController) on = &r;
  }

  std::vector<std::string> rows;
  for (const ModeResult& r : results) {
    rows.push_back(JsonObject()
                       .set_string("kind", "mode")
                       .set_string("mode", mode_name(r.mode))
                       .set_bool("sized", r.sized)
                       .set_number("broker_hours", r.broker_hours)
                       .set_integer("min_brokers", r.min_brokers)
                       .set_integer("max_brokers", r.max_brokers)
                       .set_number("p50_delivery_delay_ms", r.p50_ms)
                       .set_number("p99_delivery_delay_ms", r.p99_ms)
                       .set_number("avg_delivery_delay_ms", r.avg_ms)
                       .set_integer("publications", r.publications)
                       .set_integer("deliveries", r.deliveries)
                       .set_number("migrations_per_hour", r.migrations_per_hour)
                       .set_integer("reconfigurations", r.totals.reconfigurations)
                       .set_integer("commissions", r.totals.commissions)
                       .set_integer("consolidations", r.totals.consolidations)
                       .set_integer("clients_migrated", r.totals.clients_migrated)
                       .set_integer("plan_failures", r.totals.plan_failures)
                       .set_integer("apply_failures", r.totals.apply_failures)
                       .set_integer("plans_rejected", r.totals.plans_rejected)
                       .set_number("learned_headroom_scale", r.headroom_scale)
                       .set_number("wall_s", r.wall_s)
                       .render());
    for (const std::string& tick : r.tick_rows) rows.push_back(tick);
  }

  bool failed = false;
  if (peak != nullptr && on != nullptr) {
    const double saved_pct =
        peak->broker_hours > 0
            ? 100.0 * (peak->broker_hours - on->broker_hours) / peak->broker_hours
            : 0.0;
    const double p99_bound = std::max(2.0 * peak->p99_ms, peak->p99_ms + 100.0);
    std::printf("\ncontroller vs static-peak: %.1f%% broker-hours saved, "
                "p99 %.1f ms vs bound %.1f ms, %.1f migrations/hour\n",
                saved_pct, on->p99_ms, p99_bound, on->migrations_per_hour);
    if (trough != nullptr) {
      std::printf("static-trough floor: %.3f broker-hours at p99 %.1f ms — "
                  "the energy floor is unreachable without the delay blowup\n",
                  trough->broker_hours, trough->p99_ms);
    }
    if (!tiny_scale()) {
      if (on->broker_hours >= peak->broker_hours) {
        std::fprintf(stderr, "[e14] controller consumed %.3f broker-hours vs "
                             "static-peak %.3f — no energy saving\n",
                     on->broker_hours, peak->broker_hours);
        failed = true;
      }
      if (on->p99_ms > p99_bound) {
        std::fprintf(stderr, "[e14] controller p99 %.1f ms above the bound %.1f ms "
                             "(max(2x static-peak, static-peak + 100 ms))\n",
                     on->p99_ms, p99_bound);
        failed = true;
      }
      if (on->totals.commissions == 0 || on->totals.consolidations == 0) {
        std::fprintf(stderr, "[e14] controller never cycled capacity "
                             "(%zu commissions, %zu consolidations)\n",
                     on->totals.commissions, on->totals.consolidations);
        failed = true;
      }
    }
  } else {
    std::printf("\n(headline comparison skipped: not all modes ran)\n");
  }

  RunReport report = make_sim_report("e14");
  report.header()
      .set_integer("num_brokers", cfg.scenario.num_brokers)
      .set_integer("num_publishers", cfg.scenario.num_publishers)
      .set_integer("subs_per_publisher", cfg.scenario.subs_per_publisher)
      .set_number("day_length_s", day_s)
      .set_number("days", days)
      .set_number("control_interval_s", interval_s)
      .set_number("profile_s", profile_s)
      .set_number("schedule_peak", schedule.peak())
      .set_number("schedule_trough", schedule.trough())
      .set_string("p99_bound", "max(2x static-peak p99, static-peak p99 + 100 ms)");
  for (const std::string& row : rows) report.add_row(row);
  report.write("BENCH_autoscale.json", "rows");

  if (failed) {
    std::fprintf(stderr, "[e14] FAILURES above\n");
    return 1;
  }
  return 0;
}
