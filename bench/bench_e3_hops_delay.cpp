// E3 — Publication hop count and end-to-end delivery delay, homogeneous.
//
// Reducing the broker count shrinks the network, which improves the average
// broker hop count per delivery; delivery delay follows unless queueing at
// the consolidated brokers dominates.
#include <cstdio>

#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  const HarnessConfig base = homogeneous_base();
  std::printf(
      "E3: hop count and delivery delay, homogeneous\n"
      "brokers=%zu publishers=%zu %s\n\n",
      base.scenario.num_brokers, base.scenario.num_publishers,
      full_scale() ? "[FULL SCALE]" : "[reduced scale; GREENPS_FULL=1 for paper scale]");

  const std::vector<int> widths = {6, 12, 10, 8, 11, 12};
  print_row({"subs", "approach", "brokers", "hops", "delay(ms)", "deliveries"}, widths);

  for (const std::size_t spp : subs_per_publisher_sweep()) {
    HarnessConfig cfg = base;
    cfg.scenario.subs_per_publisher = spp;
    const std::size_t total_subs = spp * cfg.scenario.num_publishers;
    for (const Approach a : all_approaches()) {
      const RunResult r = run_approach(a, cfg);
      print_row({std::to_string(total_subs), approach_name(a),
                 std::to_string(r.summary.allocated_brokers), fmt(r.summary.avg_hop_count, 2),
                 fmt(r.summary.avg_delivery_delay_ms, 2),
                 std::to_string(r.summary.deliveries)},
                widths);
    }
    std::printf("\n");
  }
  return 0;
}
