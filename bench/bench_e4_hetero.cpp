// E4 — Heterogeneous scenario (Section VI-A).
//
// Broker capacities mixed 15:25:40 at 100%/50%/25% of full bandwidth;
// publisher i has Ns/i subscriptions with Ns swept 50..200. The MANUAL
// baseline places resourceful brokers at the top of the tree and spreads
// subscribers proportionally to broker resources. Expected shape: the
// capacity-aware approaches (especially CRAM + best-fit replacement) still
// consolidate heavily; PAIRWISE-K/N suffer because they ignore capacity.
#include <cstdio>

#include "sweep_common.hpp"

using namespace greenps;
using namespace greenps::bench;

int main() {
  HarnessConfig base = homogeneous_base();
  base.scenario.heterogeneous = true;
  std::printf(
      "E4: heterogeneous capacity mix (100%%/50%%/25%% at 15:25:40), Ns/i subscriptions\n"
      "brokers=%zu publishers=%zu %s\n\n",
      base.scenario.num_brokers, base.scenario.num_publishers,
      full_scale() ? "[FULL SCALE]" : "[reduced scale; GREENPS_FULL=1 for paper scale]");

  const std::vector<int> widths = {6, 6, 12, 10, 12, 10, 12};
  print_row({"Ns", "subs", "approach", "brokers", "msg rate", "hops", "utilization"},
            widths);

  for (const std::size_t ns : subs_per_publisher_sweep()) {
    HarnessConfig cfg = base;
    cfg.scenario.subs_per_publisher = ns;
    // Total subscriptions = sum over publishers of max(1, Ns/i).
    std::size_t total = 0;
    for (std::size_t i = 1; i <= cfg.scenario.num_publishers; ++i) {
      total += std::max<std::size_t>(1, ns / i);
    }
    for (const Approach a : all_approaches()) {
      const RunResult r = run_approach(a, cfg);
      print_row({std::to_string(ns), std::to_string(total), approach_name(a),
                 std::to_string(r.summary.allocated_brokers),
                 fmt(r.summary.avg_broker_msg_rate, 2), fmt(r.summary.avg_hop_count, 2),
                 fmt(r.summary.avg_output_utilization * 100.0, 1) + "%"},
                widths);
    }
    std::printf("\n");
  }
  return 0;
}
