// Shared sweep configuration for the homogeneous cluster-testbed
// experiments (E1-E3): the paper's 80-broker / 40-publisher setup with
// 2,000-8,000 subscriptions, or a reduced shape-preserving default.
#pragma once

#include <vector>

#include "bench_util.hpp"

namespace greenps::bench {

inline HarnessConfig homogeneous_base() {
  HarnessConfig h;
  ScenarioConfig& sc = h.scenario;
  if (tiny_scale()) {
    // Smoke-test shape for ctest: seconds of wall clock, same code paths.
    sc.num_brokers = 10;
    sc.num_publishers = 3;
    sc.full_out_bw_kb_s = 30.0;
    h.profile_seconds = 5.0;
    h.measure_seconds = 10.0;
    sc.seed = 42;
    return h;
  }
  if (full_scale()) {
    sc.num_brokers = 80;
    sc.num_publishers = 40;
    sc.full_out_bw_kb_s = 300.0;
    h.profile_seconds = 90.0;
    h.measure_seconds = 180.0;
  } else {
    sc.num_brokers = 40;
    sc.num_publishers = 10;
    sc.full_out_bw_kb_s = 30.0;
    h.profile_seconds = 90.0;
    h.measure_seconds = 120.0;
  }
  sc.seed = 42;
  return h;
}

inline std::vector<std::size_t> subs_per_publisher_sweep() {
  if (tiny_scale()) return {5};
  if (full_scale()) return {50, 100, 150, 200};  // 2,000..8,000 subscriptions
  return {25, 50, 75, 100};                      // 250..1,000 subscriptions
}

}  // namespace greenps::bench
