// E12 — Incremental reconfiguration under subscription churn.
//
// Profiles one deployment, then drives Poisson subscription churn (default
// 1%/s turnover) against a warm IncrementalCram session. Every step applies
// the delta batch incrementally AND replays a from-scratch CRAM run on the
// identical post-delta population (inside the differential oracle), so each
// row carries both sides' wall clock and closeness-comparison counts plus
// the oracle verdict. The headline claim — incremental reconvergence is
// >= 10x cheaper than a full re-run at 1%/s turnover, while staying within
// the oracle's union-rate epsilon — is enforced with a non-zero exit (the
// speedup floor is waived at tiny/smoke scale, where populations are too
// small for the asymptotics to show; the oracle is enforced always).
//
// A closing scene exercises the Croc-level path end-to-end on the live
// simulator: reconfigure_incremental bootstraps a session, and a second
// call must reuse every broker's cached BIA (traffic alone must not move
// profile epochs) and plan through the incremental session.
//
// Knobs: GREENPS_TINY=1 / GREENPS_FULL=1 scale, GREENPS_BENCH_BUDGET_S,
// GREENPS_CHURN_TURNOVER (fraction/s, default 0.01), GREENPS_CHURN_STEPS,
// GREENPS_CRAM_REBASELINE (rebaseline every N deltas; the bench also
// requests one whenever measured drift reaches 80% of the oracle epsilon).
// Results land in BENCH_churn.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "croc/diff_oracle.hpp"
#include "sweep_common.hpp"
#include "workload/churn.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

using Clock = std::chrono::steady_clock;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

}  // namespace

int main() {
  const BenchBudget budget;
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 200 : tiny_scale() ? 15 : 100;
  const double turnover = env_double("GREENPS_CHURN_TURNOVER", 0.01);
  const std::size_t steps = static_cast<std::size_t>(
      env_double("GREENPS_CHURN_STEPS", tiny_scale() ? 6 : full_scale() ? 20 : 12));

  std::printf("E12: incremental reconfiguration under churn, %.2f%%/s turnover, %zu steps %s\n\n",
              turnover * 100.0, steps,
              full_scale()   ? "[FULL SCALE]"
              : tiny_scale() ? "[tiny/smoke scale]"
                             : "[reduced scale]");

  // One profiled deployment seeds the population and the churn references.
  Simulation sim = make_simulation(cfg.scenario);
  sim.run(cfg.profile_seconds);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  const std::vector<SubUnit> units = Croc::units_from(info);
  std::printf("gathered: %zu brokers, %zu subscriptions, %zu publishers\n\n",
              info.brokers.size(), units.size(), info.publishers.size());

  std::vector<SubscriptionProfile> refs;
  std::vector<SubId> live0;
  std::uint64_t max_id = 0;
  refs.reserve(units.size());
  live0.reserve(units.size());
  for (const SubUnit& u : units) {
    refs.push_back(u.profile);
    live0.push_back(u.members.front());
    max_id = std::max(max_id, u.members.front().value());
  }

  IncrementalCram session(Croc::pool_from(info), units, info.publisher_table, CramOptions{});
  const auto t_init = Clock::now();
  const CramResult init = session.initialize();
  const double init_s = std::chrono::duration<double>(Clock::now() - t_init).count();
  if (!init.allocation.success) {
    std::fprintf(stderr, "[e12] initial convergence failed; cannot bench churn\n");
    return 1;
  }
  std::printf("warm start: %.3f s, %zu clusters on %zu brokers\n\n", init_s,
              init.allocation.unit_count(), init.allocation.brokers_used());

  ChurnOptions churn_opts;
  churn_opts.turnover_per_s = turnover;
  ChurnGenerator churn(churn_opts, std::move(refs), std::move(live0), max_id + 1,
                       Rng(cfg.scenario.seed ^ 0xe12u));

  const std::vector<int> widths = {5, 5, 5, 6, 11, 11, 12, 12, 7, 7};
  print_row({"step", "add", "rm", "live", "inc(s)", "scratch(s)", "inc-comps",
             "scr-comps", "dirty", "oracle"},
            widths);

  std::vector<std::string> rows;
  bool oracle_failed = false;
  double inc_wall = 0, scratch_wall = 0;
  std::size_t inc_comps = 0, scratch_comps = 0;
  std::size_t inc_alloc_runs = 0, scratch_alloc_runs = 0;
  std::size_t steps_run = 0;

  for (std::size_t step = 0; step < steps; ++step) {
    if (budget.skip("remaining churn steps")) break;
    ChurnBatch batch = churn.step();
    std::vector<SubUnit> added;
    added.reserve(batch.added.size());
    for (ChurnBatch::Arrival& a : batch.added) {
      added.push_back(make_subscription_unit(a.id, std::move(a.profile), info.publisher_table));
    }

    const auto t_inc = Clock::now();
    const CramResult inc = session.apply(std::move(added), batch.removed);
    const double inc_s = std::chrono::duration<double>(Clock::now() - t_inc).count();

    // The oracle's from-scratch run on the identical post-delta population
    // is the full-re-run side of the comparison; its wall clock is
    // dominated by that cram_allocate (the membership checks are linear).
    const auto t_scr = Clock::now();
    const DiffOracleResult oracle = diff_against_scratch(session, inc.allocation);
    const double scr_s = std::chrono::duration<double>(Clock::now() - t_scr).count();

    if (!oracle.ok) {
      std::fprintf(stderr, "[e12] step %zu: ORACLE FAILED: %s\n", step, oracle.detail.c_str());
      oracle_failed = true;
    }

    // Drift watchdog: when the incremental objective creeps toward the
    // oracle's epsilon bound (80% of the allowance), fold a from-scratch
    // convergence into the session at the next apply() rather than waiting
    // for a violation. GREENPS_CRAM_REBASELINE additionally forces a
    // periodic rebaseline every N deltas.
    const double drift_gap =
        oracle.scratch_objective > 0
            ? (oracle.incremental_objective - oracle.scratch_objective) /
                  oracle.scratch_objective
            : 0.0;
    if (drift_gap > 0.8 * DiffOracleOptions{}.objective_epsilon) {
      std::printf("  [drift %.3f%% approaches epsilon; rebaseline requested]\n",
                  drift_gap * 100.0);
      session.request_rebaseline();
    }

    const CramDeltaStats& d = session.last_delta();
    inc_wall += inc_s;
    scratch_wall += scr_s;
    inc_comps += inc.stats.closeness_computations;
    scratch_comps += oracle.scratch_stats.closeness_computations;
    inc_alloc_runs += inc.stats.allocation_runs;
    scratch_alloc_runs += oracle.scratch_stats.allocation_runs;
    ++steps_run;

    print_row({std::to_string(step), std::to_string(batch.added.size()),
               std::to_string(batch.removed.size()), std::to_string(churn.live().size()),
               fmt(inc_s, 5), fmt(scr_s, 5), std::to_string(inc.stats.closeness_computations),
               std::to_string(oracle.scratch_stats.closeness_computations),
               std::to_string(d.dirty_gifs), oracle.ok ? "ok" : "FAIL"},
              widths);

    rows.push_back(JsonObject()
                       .set_string("kind", "step")
                       .set_integer("step", step)
                       .set_number("turnover_per_s", turnover)
                       .set_integer("adds", batch.added.size())
                       .set_integer("removes", batch.removed.size())
                       .set_integer("live", churn.live().size())
                       .set_number("inc_wall_s", inc_s)
                       .set_number("scratch_wall_s", scr_s)
                       .set_integer("inc_closeness", inc.stats.closeness_computations)
                       .set_integer("scratch_closeness",
                                    oracle.scratch_stats.closeness_computations)
                       .set_integer("inc_alloc_runs", inc.stats.allocation_runs)
                       .set_integer("scratch_alloc_runs", oracle.scratch_stats.allocation_runs)
                       .set_integer("dirty_gifs", d.dirty_gifs)
                       .set_integer("gif_count", d.gif_count)
                       .set_integer("units_dissolved", d.units_dissolved)
                       .set_integer("survivors_reinserted", d.survivors_reinserted)
                       .set_integer("blacklist_cleared", d.blacklist_cleared)
                       .set_bool("rebaselined", d.rebaselined)
                       .set_bool("inc_success", inc.allocation.success)
                       .set_bool("oracle_ok", oracle.ok)
                       .set_string("oracle_detail", oracle.detail)
                       .set_number("inc_objective", oracle.incremental_objective)
                       .set_number("scratch_objective", oracle.scratch_objective)
                       .set_integer("inc_brokers", oracle.incremental_brokers)
                       .set_integer("scratch_brokers", oracle.scratch_brokers)
                       .render());
  }

  const double wall_speedup = inc_wall > 0 ? scratch_wall / inc_wall : 0;
  const double comp_speedup =
      inc_comps > 0 ? static_cast<double>(scratch_comps) / static_cast<double>(inc_comps) : 0;
  std::printf("\ntotals over %zu steps: incremental %.3f s / %zu comparisons, "
              "from-scratch %.3f s / %zu comparisons\n",
              steps_run, inc_wall, inc_comps, scratch_wall, scratch_comps);
  std::printf("speedup: %.1fx wall-clock, %.1fx comparisons\n", wall_speedup, comp_speedup);

  // ---- Croc-level scene: epoch-based gather reuse on the live simulator ----
  bool scene_ok = true;
  if (!budget.skip("epoch-reuse scene")) {
    CrocConfig ccfg;
    ccfg.seed = cfg.scenario.seed;
    Croc croc(ccfg);
    const ReconfigurationReport r1 = croc.reconfigure_incremental(sim, BrokerId{0});
    sim.run(5.0);  // traffic only: no structural profile change
    const ReconfigurationReport r2 = croc.reconfigure_incremental(sim, BrokerId{0});
    const bool reused_all =
        r2.gather.brokers_reused > 0 && r2.gather.brokers_reused == r2.gather.brokers_answered;
    scene_ok = r1.success && r2.success && r2.incremental && reused_all;
    if (!scene_ok) {
      std::fprintf(stderr,
                   "[e12] epoch-reuse scene failed: r1=%s r2=%s incremental=%d reused=%zu/%zu\n",
                   failure_reason_name(r1.failure), failure_reason_name(r2.failure),
                   r2.incremental ? 1 : 0, r2.gather.brokers_reused,
                   r2.gather.brokers_answered);
    }
    std::printf("epoch reuse: second gather reused %zu/%zu broker BIAs (%zu probes) — %s\n",
                r2.gather.brokers_reused, r2.gather.brokers_answered, r2.gather.epoch_probes,
                scene_ok ? "ok" : "FAIL");
    JsonObject scene;
    scene.set_string("kind", "epoch_reuse")
        .set_bool("ok", scene_ok)
        .set_bool("bootstrap_success", r1.success)
        .set_bool("second_success", r2.success)
        .set_bool("second_incremental", r2.incremental)
        .set_integer("delta_removed_found", r2.delta.removed_found)
        .set_integer("delta_added_units", r2.delta.added_units);
    set_gather_stats(scene, r2.gather);
    rows.push_back(scene.render());
  }

  RunReport report = make_sim_report("e12");
  report.header()
      .set_integer("num_brokers", cfg.scenario.num_brokers)
      .set_integer("num_publishers", cfg.scenario.num_publishers)
      .set_integer("initial_subscriptions", units.size())
      .set_number("turnover_per_s", turnover)
      .set_integer("steps", steps_run)
      .set_number("initial_convergence_s", init_s)
      .set_number("incremental_wall_s", inc_wall)
      .set_number("scratch_wall_s", scratch_wall)
      .set_integer("incremental_closeness", inc_comps)
      .set_integer("scratch_closeness", scratch_comps)
      .set_integer("incremental_alloc_runs", inc_alloc_runs)
      .set_integer("scratch_alloc_runs", scratch_alloc_runs)
      .set_number("wall_speedup", wall_speedup)
      .set_number("comparison_speedup", comp_speedup)
      .set_integer("rebaselines", session.rebaselines());
  for (const std::string& row : rows) report.add_row(row);
  report.write("BENCH_churn.json", "rows");

  bool failed = oracle_failed || !scene_ok;
  // The >=10x floor only means something once the population dwarfs the
  // per-step delta; tiny smoke runs check the machinery, not the asymptote.
  if (!tiny_scale() && steps_run > 0 && (wall_speedup < 10.0 || comp_speedup < 10.0)) {
    std::fprintf(stderr, "[e12] speedup below the 10x floor (wall %.1fx, comparisons %.1fx)\n",
                 wall_speedup, comp_speedup);
    failed = true;
  }
  if (failed) {
    std::fprintf(stderr, "[e12] FAILURES above\n");
    return 1;
  }
  return 0;
}
