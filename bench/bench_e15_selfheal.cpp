// E15 — Self-healing control plane under chaos.
//
// The same MANUAL scenario walks the same diurnal day (workload/diurnal.hpp)
// while scripted broker crashes hit the deployment — one on the morning
// ramp (clients orphaned while load is rising) and one at the busy-hours
// peak (the worst moment to lose capacity). Both crashes are permanent:
// nothing restarts, so every delivery to an orphaned client depends on the
// control plane noticing the death and re-homing the client. Three legs:
//
//   no-healing   ControlLoop with healing disabled: the elastic controller
//                still autoscales, but dead brokers stay in the deployment,
//                their clients stay attached, and plans that touch the
//                corpse roll back at the liveness probe
//   healing      full self-healing loop: phi-accrual detection on sampler
//                heartbeats, emergency bounded-migration recovery, CROC
//                quarantine, degraded-mode admission control
//   fault-free   healing enabled, no crashes: the false-positive guard
//
// Enforced (non-zero exit):
//   - fault-free: zero suspect transitions, zero dead transitions, zero
//     recoveries — the detector's floors make false positives structural
//   - healing: every scripted crash is detected and recovered, the victim
//     leaves the deployment, and detection -> clients-reattached stays
//     within bounded control ticks
//   - healing: every per-epoch loss audit plus the final audit is clean —
//     zero real losses; every miss is excused by a crash window, a
//     retransmit/admission buffer, a shed, a stranding or the horizon
//   - determinism: the healing leg's full per-tick trace (decisions, dead
//     sets, orphan counts, window summaries) and recovery records are
//     bit-identical for 1 and 4 simulator workers
//   - at non-tiny scale: healing delivers strictly more than no-healing
//
// Knobs: GREENPS_TINY=1 / GREENPS_FULL=1 scale, GREENPS_BENCH_BUDGET_S,
// GREENPS_SELFHEAL_DAY_S, GREENPS_SELFHEAL_INTERVAL_S. Results land in
// BENCH_selfheal.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "control/control_loop.hpp"
#include "sim/loss_oracle.hpp"
#include "sweep_common.hpp"
#include "workload/diurnal.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

using Clock = std::chrono::steady_clock;

enum class Mode { kNoHealing, kHealing, kFaultFree };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNoHealing: return "no-healing";
    case Mode::kHealing: return "healing";
    case Mode::kFaultFree: return "fault-free";
  }
  return "?";
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtod(v, nullptr);
}

struct CrashRecord {
  double at_s = 0;  // loop time the fault was injected
  std::uint64_t broker = 0;
};

struct ModeResult {
  Mode mode = Mode::kHealing;
  std::size_t workers = 1;
  bool ran = false;
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
  double broker_hours = 0;
  double p99_ms = 0;
  // Degraded-mode accounting, exact across epochs (fault counters reset at
  // every redeploy; snapshotted in the pre-redeploy hook).
  std::uint64_t pubs_deferred = 0;
  std::uint64_t pubs_readmitted = 0;
  std::uint64_t pubs_shed = 0;
  std::uint64_t msgs_stranded = 0;
  control::ControlTotals totals;
  std::vector<control::RecoveryRecord> recoveries;
  std::vector<CrashRecord> crashes;
  // Loss-oracle verdict (healing legs only).
  std::size_t audits = 0;
  std::uint64_t audited_expected = 0;
  std::uint64_t real_losses = 0;
  std::uint64_t false_positives = 0;
  std::size_t suspect_transitions = 0;
  std::size_t dead_transitions = 0;
  // Determinism fingerprint: one line per tick, windows included.
  std::vector<std::string> trace;
  std::vector<std::string> tick_rows;
  double wall_s = 0;
};

// The broker currently hosting the most subscribers (ties: smallest id) —
// the most damaging deterministic victim. Deployment order is
// shard-invariant, so both worker counts pick the same corpse.
std::pair<bool, BrokerId> pick_victim(const Simulation& sim) {
  std::map<BrokerId, std::size_t> load;
  for (const auto& s : sim.deployment().subscribers) {
    if (sim.broker_alive(s.home)) load[s.home] += 1;
  }
  bool found = false;
  BrokerId best{};
  std::size_t n = 0;
  for (const auto& [b, count] : load) {
    if (count > n) {
      best = b;
      n = count;
      found = true;
    }
  }
  return {found, best};
}

ModeResult run_mode(Mode mode, std::size_t workers, const HarnessConfig& cfg,
                    const DiurnalSchedule& schedule, double run_s, double interval_s,
                    double profile_s) {
  const auto t0 = Clock::now();
  ModeResult r;
  r.mode = mode;
  r.workers = workers;

  HarnessConfig c = cfg;
  c.sim.workers = workers;
  Simulation sim = make_simulation(c.scenario, c.sim);
  const control::RateModulator modulator(sim);
  modulator.apply(sim, schedule.multiplier(0));
  sim.run(profile_s);
  sim.reset_metrics();

  // Chaos-facing posture for every leg: store-and-forward buffering at a
  // dead broker's neighbors plus degraded-mode admission control. With no
  // fault events armed (empty schedule) the fault-free leg's event stream
  // is untouched — only the ledger for the loss oracle is enabled.
  FaultOptions fo;
  fo.retransmit_on_reconnect = true;
  fo.admission_control = true;
  sim.install_faults(FaultSchedule{}, fo);

  control::ControlLoopConfig lc;
  lc.interval_s = interval_s;
  lc.croc.seed = c.scenario.seed;
  lc.healing = mode != Mode::kNoHealing;
  control::ControlLoop loop(sim, lc);

  std::vector<LossAudit> audit_results;
  const bool audited = mode != Mode::kNoHealing;
  const LossAuditOptions audit_opts{seconds(0.5), seconds(2.0)};
  // Fault counters reset at every redeploy; snapshot the closing epoch's
  // stats (and audit it, while its ledger and outage windows are live).
  loop.pre_redeploy_hook = [&](Simulation& s) {
    const FaultStats& fs = s.fault_state().stats();
    r.pubs_deferred += fs.pubs_deferred_admission;
    r.pubs_readmitted += fs.pubs_readmitted;
    r.pubs_shed += fs.pubs_shed_admission;
    if (audited) {
      audit_results.push_back(
          audit_losses(s, make_quote_generator(c.scenario), audit_opts));
    }
  };
  loop.post_redeploy_hook = [fo](Simulation& s) {
    s.install_faults(FaultSchedule{}, fo);
  };

  const auto steps = static_cast<std::size_t>(std::ceil(run_s / interval_s));
  std::vector<std::size_t> crash_ticks;
  if (mode != Mode::kFaultFree) {
    // Morning ramp and busy-hours peak; permanent (no restarts).
    crash_ticks = {static_cast<std::size_t>(0.15 * static_cast<double>(steps)),
                   static_cast<std::size_t>(0.55 * static_cast<double>(steps))};
  }

  for (std::size_t i = 0; i < steps; ++i) {
    const double tick_start_s = static_cast<double>(i) * interval_s;
    if (std::find(crash_ticks.begin(), crash_ticks.end(), i) != crash_ticks.end()) {
      const auto [found, victim] = pick_victim(sim);
      if (found) {
        sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, victim});
        r.crashes.push_back({tick_start_s, victim.value()});
      }
    }
    modulator.apply(sim, schedule.multiplier(tick_start_s));
    const control::TickRecord& rec = loop.step();

    r.trace.push_back(std::string(control::action_name(rec.decision.action)) + "/" +
                      control::hold_reason_name(rec.decision.hold) + "/" +
                      std::to_string(rec.dead.size()) + "/" +
                      std::to_string(rec.suspects.size()) + "/" +
                      std::to_string(rec.orphans_rehomed) + "/" +
                      std::to_string(rec.brokers_after) + "/" +
                      std::to_string(rec.window.publications) + "/" +
                      std::to_string(rec.window.deliveries) + "/" +
                      std::to_string(rec.window.pubs_deferred) + "/" +
                      std::to_string(rec.window.pubs_shed) + "/" +
                      std::to_string(rec.window.msgs_stranded));
    JsonObject row;
    row.set_string("kind", "tick")
        .set_string("mode", mode_name(mode))
        .set_integer("workers", workers)
        .set_number("time_s", rec.time_s)
        .set_string("action", control::action_name(rec.decision.action))
        .set_string("hold", control::hold_reason_name(rec.decision.hold))
        .set_bool("applied", rec.applied)
        .set_integer("brokers", rec.brokers_after)
        .set_integer("dead", rec.dead.size())
        .set_integer("suspects", rec.suspects.size())
        .set_integer("orphans_rehomed", rec.orphans_rehomed)
        .set_integer("window_deliveries", rec.window.deliveries)
        .set_number("max_backlog_s", rec.estimate.max_backlog_s);
    r.tick_rows.push_back(row.render());
  }

  // Quiet tail at the schedule's trough so deferred buffers drain and
  // in-flight work lands, then the closing epoch's stats and audit.
  modulator.apply(sim, schedule.trough());
  sim.run(std::max(10.0, 2.0 * interval_s));
  {
    const FaultStats& fs = sim.fault_state().stats();
    r.pubs_deferred += fs.pubs_deferred_admission;
    r.pubs_readmitted += fs.pubs_readmitted;
    r.pubs_shed += fs.pubs_shed_admission;
  }
  if (audited) {
    audit_results.push_back(
        audit_losses(sim, make_quote_generator(c.scenario), audit_opts));
  }

  r.totals = loop.totals();
  r.recoveries = loop.recoveries();
  r.publications = r.totals.publications;
  r.deliveries = r.totals.deliveries;
  r.broker_hours = r.totals.broker_seconds / 3600.0;
  r.p99_ms = loop.delay_histogram().percentile_ms(0.99);
  r.msgs_stranded = sim.summarize().msgs_stranded;  // cumulative by design
  r.suspect_transitions = loop.detector().suspect_transitions();
  r.dead_transitions = loop.detector().dead_transitions();
  r.audits = audit_results.size();
  for (const LossAudit& a : audit_results) {
    r.audited_expected += a.expected;
    r.real_losses += a.real_losses.size();
    r.false_positives += a.false_positives;
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.ran = true;
  return r;
}

}  // namespace

int main() {
  const BenchBudget budget;
  HarnessConfig cfg = homogeneous_base();
  cfg.scenario.subs_per_publisher = full_scale() ? 100 : tiny_scale() ? 15 : 50;

  const double day_s = env_double("GREENPS_SELFHEAL_DAY_S",
                                  full_scale() ? 1800 : tiny_scale() ? 300 : 900);
  const double interval_s =
      env_double("GREENPS_SELFHEAL_INTERVAL_S", tiny_scale() ? 5 : 10);
  const double profile_s = tiny_scale() ? 10 : 45;
  const double recovery_bound_s = 4.0 * interval_s;  // crash -> clients reattached

  const DiurnalSchedule schedule(default_diurnal(day_s));
  std::printf("E15: self-healing under chaos, %.0f s day, %.0f s control interval, "
              "2 permanent crashes %s\n\n",
              day_s, interval_s,
              full_scale()   ? "[FULL SCALE]"
              : tiny_scale() ? "[tiny/smoke scale]"
                             : "[reduced scale]");

  // Legs: the healing determinism pair first (the headline), then the
  // baseline and the false-positive guard.
  std::vector<ModeResult> results;
  const std::vector<std::pair<Mode, std::size_t>> legs = {
      {Mode::kHealing, 1},
      {Mode::kHealing, 4},
      {Mode::kNoHealing, 1},
      {Mode::kFaultFree, 1},
  };
  for (const auto& [mode, workers] : legs) {
    if (budget.skip("remaining self-heal legs")) break;
    results.push_back(
        run_mode(mode, workers, cfg, schedule, day_s, interval_s, profile_s));
  }

  const std::vector<int> widths = {12, 4, 8, 10, 9, 9, 9, 9, 8, 7};
  print_row({"mode", "wkr", "crashes", "recovered", "orphans", "deliver",
             "deferred", "stranded", "losses", "wall"},
            widths);
  for (const ModeResult& r : results) {
    print_row({mode_name(r.mode), std::to_string(r.workers),
               std::to_string(r.crashes.size()), std::to_string(r.totals.recoveries),
               std::to_string(r.totals.orphans_rehomed), std::to_string(r.deliveries),
               std::to_string(r.pubs_deferred), std::to_string(r.msgs_stranded),
               std::to_string(r.real_losses), fmt(r.wall_s, 1)},
              widths);
  }

  const ModeResult* heal1 = nullptr;
  const ModeResult* heal4 = nullptr;
  const ModeResult* base = nullptr;
  const ModeResult* clean = nullptr;
  for (const ModeResult& r : results) {
    if (r.mode == Mode::kHealing && r.workers == 1) heal1 = &r;
    if (r.mode == Mode::kHealing && r.workers == 4) heal4 = &r;
    if (r.mode == Mode::kNoHealing) base = &r;
    if (r.mode == Mode::kFaultFree) clean = &r;
  }

  bool failed = false;

  // Zero fault-free false positives: structural, enforced at every scale.
  if (clean != nullptr) {
    if (clean->suspect_transitions != 0 || clean->dead_transitions != 0 ||
        clean->totals.recoveries != 0) {
      std::fprintf(stderr,
                   "[e15] fault-free leg raised alarms: %zu suspect, %zu dead "
                   "transitions, %zu recoveries\n",
                   clean->suspect_transitions, clean->dead_transitions,
                   clean->totals.recoveries);
      failed = true;
    }
  }

  if (heal1 != nullptr) {
    // Every scripted crash detected and recovered, within the time bound.
    if (heal1->crashes.size() != 2 ||
        heal1->totals.recoveries != heal1->crashes.size()) {
      std::fprintf(stderr, "[e15] healing: %zu crashes but %zu recoveries\n",
                   heal1->crashes.size(), heal1->totals.recoveries);
      failed = true;
    }
    // A broker can crash, be recovered, leave quarantine, be re-commissioned
    // and crash again — pair each crash with the earliest unconsumed
    // recovery of that broker at or after the injection.
    std::vector<bool> used(heal1->recoveries.size(), false);
    for (const CrashRecord& crash : heal1->crashes) {
      const control::RecoveryRecord* match = nullptr;
      for (std::size_t i = 0; i < heal1->recoveries.size(); ++i) {
        const control::RecoveryRecord& rec = heal1->recoveries[i];
        if (used[i] || rec.broker.value() != crash.broker ||
            rec.recovered_s < crash.at_s) {
          continue;
        }
        if (match == nullptr || rec.recovered_s < match->recovered_s) {
          match = &rec;
        }
      }
      if (match != nullptr) used[static_cast<std::size_t>(match - heal1->recoveries.data())] = true;
      if (match == nullptr) {
        std::fprintf(stderr, "[e15] healing: broker %llu crashed but never recovered\n",
                     static_cast<unsigned long long>(crash.broker));
        failed = true;
        continue;
      }
      const double crash_to_reattach = match->recovered_s - crash.at_s;
      if (crash_to_reattach > recovery_bound_s || match->orphans == 0) {
        std::fprintf(stderr,
                     "[e15] healing: broker %llu crash->reattach %.1f s "
                     "(bound %.1f s), %zu orphans\n",
                     static_cast<unsigned long long>(crash.broker), crash_to_reattach,
                     recovery_bound_s, match->orphans);
        failed = true;
      }
    }
    // Zero real losses across every epoch audit plus the final audit.
    if (heal1->real_losses != 0 || heal1->false_positives != 0 ||
        heal1->audited_expected == 0) {
      std::fprintf(stderr,
                   "[e15] healing: %llu real losses, %llu false positives over "
                   "%zu audits (%llu expected deliveries)\n",
                   static_cast<unsigned long long>(heal1->real_losses),
                   static_cast<unsigned long long>(heal1->false_positives),
                   heal1->audits,
                   static_cast<unsigned long long>(heal1->audited_expected));
      failed = true;
    }
    std::printf("\nhealing: %zu recoveries, %zu orphans re-homed, %llu deferred "
                "(%llu readmitted, %llu shed), %llu stranded; %zu audits, "
                "%llu real losses\n",
                heal1->totals.recoveries, heal1->totals.orphans_rehomed,
                static_cast<unsigned long long>(heal1->pubs_deferred),
                static_cast<unsigned long long>(heal1->pubs_readmitted),
                static_cast<unsigned long long>(heal1->pubs_shed),
                static_cast<unsigned long long>(heal1->msgs_stranded),
                heal1->audits,
                static_cast<unsigned long long>(heal1->real_losses));
  }

  // The whole trajectory — decisions, dead sets, orphans, per-window
  // summaries, recovery records — is worker-count invariant.
  if (heal1 != nullptr && heal4 != nullptr) {
    bool same = heal1->trace == heal4->trace &&
                heal1->recoveries.size() == heal4->recoveries.size();
    if (same) {
      for (std::size_t i = 0; i < heal1->recoveries.size(); ++i) {
        const control::RecoveryRecord& a = heal1->recoveries[i];
        const control::RecoveryRecord& b = heal4->recoveries[i];
        same = same && a.broker == b.broker && a.detected_s == b.detected_s &&
               a.recovered_s == b.recovered_s && a.orphans == b.orphans;
      }
    }
    if (!same) {
      std::fprintf(stderr, "[e15] healing trajectory diverges between 1 and 4 "
                           "simulator workers\n");
      for (std::size_t i = 0; i < heal1->trace.size() && i < heal4->trace.size(); ++i) {
        if (heal1->trace[i] != heal4->trace[i]) {
          std::fprintf(stderr, "[e15]   tick %zu: %s vs %s\n", i,
                       heal1->trace[i].c_str(), heal4->trace[i].c_str());
          break;
        }
      }
      failed = true;
    } else {
      std::printf("determinism: %zu-tick trajectory bit-identical for 1 and 4 "
                  "workers\n",
                  heal1->trace.size());
    }
  }

  if (heal1 != nullptr && base != nullptr) {
    std::printf("healing vs no-healing: %llu vs %llu deliveries (+%.1f%%)\n",
                static_cast<unsigned long long>(heal1->deliveries),
                static_cast<unsigned long long>(base->deliveries),
                base->deliveries > 0
                    ? 100.0 * (static_cast<double>(heal1->deliveries) -
                               static_cast<double>(base->deliveries)) /
                          static_cast<double>(base->deliveries)
                    : 0.0);
    if (!tiny_scale() && heal1->deliveries <= base->deliveries) {
      std::fprintf(stderr, "[e15] healing delivered no more than the "
                           "no-healing baseline\n");
      failed = true;
    }
  }

  std::vector<std::string> rows;
  for (const ModeResult& r : results) {
    rows.push_back(JsonObject()
                       .set_string("kind", "mode")
                       .set_string("mode", mode_name(r.mode))
                       .set_integer("workers", r.workers)
                       .set_integer("publications", r.publications)
                       .set_integer("deliveries", r.deliveries)
                       .set_number("broker_hours", r.broker_hours)
                       .set_number("p99_delivery_delay_ms", r.p99_ms)
                       .set_integer("crashes", r.crashes.size())
                       .set_integer("detections", r.totals.detections)
                       .set_integer("recoveries", r.totals.recoveries)
                       .set_integer("orphans_rehomed", r.totals.orphans_rehomed)
                       .set_integer("reconfigurations", r.totals.reconfigurations)
                       .set_integer("apply_failures", r.totals.apply_failures)
                       .set_integer("pubs_deferred", r.pubs_deferred)
                       .set_integer("pubs_readmitted", r.pubs_readmitted)
                       .set_integer("pubs_shed", r.pubs_shed)
                       .set_integer("msgs_stranded", r.msgs_stranded)
                       .set_integer("suspect_transitions", r.suspect_transitions)
                       .set_integer("dead_transitions", r.dead_transitions)
                       .set_integer("audits", r.audits)
                       .set_integer("audited_expected", r.audited_expected)
                       .set_integer("real_losses", r.real_losses)
                       .set_integer("false_positives", r.false_positives)
                       .set_number("wall_s", r.wall_s)
                       .render());
    for (const CrashRecord& crash : r.crashes) {
      rows.push_back(JsonObject()
                         .set_string("kind", "crash")
                         .set_string("mode", mode_name(r.mode))
                         .set_integer("workers", r.workers)
                         .set_integer("broker", crash.broker)
                         .set_number("at_s", crash.at_s)
                         .render());
    }
    for (const control::RecoveryRecord& rec : r.recoveries) {
      rows.push_back(JsonObject()
                         .set_string("kind", "recovery")
                         .set_string("mode", mode_name(r.mode))
                         .set_integer("workers", r.workers)
                         .set_integer("broker", rec.broker.value())
                         .set_number("detected_s", rec.detected_s)
                         .set_number("recovered_s", rec.recovered_s)
                         .set_integer("orphans", rec.orphans)
                         .render());
    }
    // One leg's tick series is enough for plots; keep the headline leg's.
    if (r.mode == Mode::kHealing && r.workers == 1) {
      for (const std::string& tick : r.tick_rows) rows.push_back(tick);
    }
  }

  RunReport report = make_sim_report("e15");
  report.header()
      .set_integer("num_brokers", cfg.scenario.num_brokers)
      .set_integer("num_publishers", cfg.scenario.num_publishers)
      .set_integer("subs_per_publisher", cfg.scenario.subs_per_publisher)
      .set_number("day_length_s", day_s)
      .set_number("control_interval_s", interval_s)
      .set_number("recovery_bound_s", recovery_bound_s)
      .set_number("schedule_peak", schedule.peak())
      .set_number("schedule_trough", schedule.trough());
  for (const std::string& row : rows) report.add_row(row);
  report.write("BENCH_selfheal.json", "rows");

  if (failed) {
    std::fprintf(stderr, "[e15] FAILURES above\n");
    return 1;
  }
  return 0;
}
