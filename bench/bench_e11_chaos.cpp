// E11 — Reconfiguration under chaos (broker churn + degraded links).
//
// Each level profiles a clean deployment, reconfigures with CROC, applies
// the plan transactionally (health-probed), then measures under an
// escalating seeded fault schedule with retransmit-on-reconnect enabled.
// After every run the delivery-loss oracle replays the publication ledger
// and classifies missed deliveries as excused (attributable to an injected
// fault) or real. Crash-only levels must show zero real losses; the heavy
// level adds link flaps and probabilistic drops, which are genuinely lossy.
//
// A final scene forces the failure paths end-to-end: a broker named in a
// fresh plan is crashed mid-apply (the transactional apply must roll back),
// reconfiguring *through* the dead entry broker must fail with
// gather_failed, and a re-plan from a live entry must route around the hole
// and apply cleanly.
//
// Knobs: GREENPS_TINY=1 (smoke scale), GREENPS_FULL=1 (paper scale),
// GREENPS_BENCH_BUDGET_S. Results land in BENCH_chaos.json.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/faults.hpp"
#include "sim/loss_oracle.hpp"

using namespace greenps;
using namespace greenps::bench;

namespace {

struct ChaosLevel {
  std::string name;
  FaultSchedule::ChaosConfig chaos;
  // Crash-only faults + retransmit-on-reconnect must lose nothing.
  bool lossless_expected = false;
};

std::vector<std::pair<BrokerId, BrokerId>> links_of(const Topology& t) {
  std::vector<std::pair<BrokerId, BrokerId>> links;
  for (const BrokerId a : t.brokers()) {
    for (const BrokerId b : t.neighbors(a)) {
      if (a.value() < b.value()) links.emplace_back(a, b);
    }
  }
  return links;
}

BrokerId first_alive(const Simulation& sim) {
  for (const BrokerId b : sim.deployment().topology.brokers()) {
    if (sim.broker_alive(b)) return b;
  }
  return BrokerId{0};
}

}  // namespace

int main() {
  const BenchBudget budget;
  ScenarioConfig sc;
  sc.num_brokers = full_scale() ? 80 : tiny_scale() ? 8 : 24;
  sc.num_publishers = full_scale() ? 40 : tiny_scale() ? 3 : 8;
  sc.subs_per_publisher = full_scale() ? 50 : tiny_scale() ? 8 : 25;
  sc.seed = 1107;
  const double profile_s = tiny_scale() ? 20.0 : 60.0;
  const double measure_s = tiny_scale() ? 30.0 : 90.0;

  std::printf("E11: reconfiguration under chaos, %zu brokers, %zu publishers %s\n\n",
              sc.num_brokers, sc.num_publishers,
              full_scale()   ? "[FULL SCALE]"
              : tiny_scale() ? "[tiny/smoke scale]"
                             : "[reduced scale]");

  std::vector<ChaosLevel> levels(4);
  levels[0].name = "none";
  levels[0].chaos.crashes = 0;
  levels[0].lossless_expected = true;
  levels[1].name = "light";
  levels[1].chaos.crashes = 1;
  levels[1].chaos.mean_outage_s = measure_s / 15.0;
  levels[1].lossless_expected = true;
  levels[2].name = "medium";
  levels[2].chaos.crashes = 3;
  levels[2].chaos.mean_outage_s = measure_s / 10.0;
  levels[2].lossless_expected = true;
  levels[3].name = "heavy";
  levels[3].chaos.crashes = 4;
  levels[3].chaos.mean_outage_s = measure_s / 8.0;
  levels[3].chaos.link_flaps = 2;
  levels[3].chaos.mean_link_outage_s = measure_s / 20.0;
  levels[3].chaos.drop_windows = 2;
  levels[3].chaos.drop_prob = 0.05;
  levels[3].chaos.latency_spikes = 2;

  const std::vector<int> widths = {8, 8, 10, 9, 9, 9, 10, 9, 9, 7};
  print_row({"level", "crashes", "delivered", "expected", "recorded", "excused", "replayed",
             "dropped", "real", "clean"},
            widths);

  FaultOptions fopts;
  fopts.retransmit_on_reconnect = true;
  LossAuditOptions audit_opts;
  audit_opts.outage_slack = seconds(0.5);
  audit_opts.horizon_slack = seconds(0.5);

  std::vector<std::string> rows;
  bool failed = false;

  for (std::size_t li = 0; li < levels.size(); ++li) {
    const ChaosLevel& level = levels[li];
    if (budget.skip((level.name + " (and any remaining levels)").c_str())) break;

    Simulation sim = make_simulation(sc);
    sim.run(profile_s);
    CrocConfig cfg;
    cfg.seed = sc.seed;
    Croc croc(cfg);
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    if (!report.success) {
      std::fprintf(stderr, "[e11] %s: reconfiguration failed (%s)\n", level.name.c_str(),
                   failure_reason_name(report.failure));
      failed = true;
      continue;
    }
    ApplyResult apply = apply_plan_transactional(
        sim.deployment(), report.plan, [&sim](BrokerId b) { return sim.broker_alive(b); });
    if (!apply.success) {
      std::fprintf(stderr, "[e11] %s: apply rolled back unexpectedly (%s: %s)\n",
                   level.name.c_str(), failure_reason_name(apply.reason),
                   apply.detail.c_str());
      failed = true;
      continue;
    }
    sim.redeploy(std::move(apply.deployment));

    FaultSchedule::ChaosConfig chaos_cfg = level.chaos;
    chaos_cfg.horizon_s = measure_s;
    Rng chaos_rng(sc.seed ^ (0x517u + li));
    const Topology& topo = sim.deployment().topology;
    FaultSchedule schedule =
        FaultSchedule::chaos(chaos_cfg, topo.brokers(), links_of(topo), chaos_rng);
    const std::size_t fault_events = schedule.size();
    sim.install_faults(std::move(schedule), fopts);
    sim.run(measure_s);

    const SimSummary s = sim.summarize();
    const FaultStats fs = sim.fault_state().stats();
    const LossAudit audit = audit_losses(sim, make_quote_generator(sc), audit_opts);
    const bool level_clean =
        audit.false_positives == 0 && (!level.lossless_expected || audit.real_losses.empty());
    if (!level_clean) {
      std::fprintf(stderr,
                   "[e11] %s: %zu real losses / %llu false positives where none allowed\n",
                   level.name.c_str(), audit.real_losses.size(),
                   static_cast<unsigned long long>(audit.false_positives));
      failed = true;
    }

    print_row({level.name, std::to_string(fs.crashes), std::to_string(s.deliveries),
               std::to_string(audit.expected), std::to_string(audit.recorded),
               std::to_string(audit.excused), std::to_string(fs.retransmits_replayed),
               std::to_string(fs.arrivals_dropped + fs.deliveries_dropped),
               std::to_string(audit.real_losses.size()), level_clean ? "yes" : "NO"},
              widths);

    JsonObject level_row;
    level_row.set_string("kind", "level")
        .set_string("level", level.name)
        .set_bool("lossless_expected", level.lossless_expected)
        .set_bool("clean", level_clean)
        .set_integer("fault_events", fault_events)
        .set_integer("publications", s.publications)
        .set_integer("deliveries", s.deliveries)
        .set_number("avg_delivery_delay_ms", s.avg_delivery_delay_ms)
        .set_integer("crashes", fs.crashes)
        .set_integer("restarts", fs.restarts)
        .set_integer("pubs_dropped_at_source", fs.pubs_dropped_at_source)
        .set_integer("arrivals_dropped", fs.arrivals_dropped)
        .set_integer("deliveries_dropped", fs.deliveries_dropped)
        .set_integer("msgs_dropped_link_down", fs.msgs_dropped_link_down)
        .set_integer("msgs_dropped_random", fs.msgs_dropped_random)
        .set_integer("retransmits_replayed", fs.retransmits_replayed)
        .set_integer("retransmit_overflow", fs.retransmit_overflow)
        .set_integer("audit_expected", audit.expected)
        .set_integer("audit_recorded", audit.recorded)
        .set_integer("audit_excused", audit.excused)
        .set_integer("audit_out_of_window", audit.out_of_window)
        .set_integer("real_losses", audit.real_losses.size())
        .set_integer("false_positives", audit.false_positives);
    set_gather_stats(level_row, report.gather);
    rows.push_back(level_row.render());
  }

  // ---- forced failure paths: mid-apply crash, dead entry, re-plan ----
  if (!budget.skip("mid-apply crash scene")) {
    Simulation sim = make_simulation(sc);
    sim.run(profile_s);
    CrocConfig cfg;
    cfg.seed = sc.seed;
    Croc croc(cfg);
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    bool rollback_ok = false;
    bool entry_failure_ok = false;
    bool recovered = false;
    if (report.success && !report.plan.allocated_brokers.empty()) {
      const BrokerId victim = report.plan.allocated_brokers.back();
      sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, victim, {}, 0, 0});
      const auto probe = [&sim](BrokerId b) { return sim.broker_alive(b); };
      // 1. The plan names the now-dead broker: apply must roll back.
      const ApplyResult apply = apply_plan_transactional(sim.deployment(), report.plan, probe);
      rollback_ok = !apply.success && apply.reason == FailureReason::kBrokerUnreachable;
      // 2. Entering the overlay at the dead broker: gather must fail, and a
      //    never-run plan must cost no migrations.
      const ReconfigurationReport via_dead = croc.reconfigure(sim, victim);
      entry_failure_ok = !via_dead.success &&
                         via_dead.failure == FailureReason::kGatherFailed &&
                         via_dead.migration.subscribers_moved == 0 &&
                         via_dead.migration.brokers_decommissioned == 0;
      // 3. Re-plan from a live entry: Phase 1 routes around the dead broker
      //    and the new plan applies cleanly without it.
      const ReconfigurationReport retry = croc.reconfigure(sim, first_alive(sim));
      if (retry.success && !retry.plan.overlay.has_broker(victim)) {
        ApplyResult apply2 = apply_plan_transactional(sim.deployment(), retry.plan, probe);
        if (apply2.success) {
          sim.redeploy(std::move(apply2.deployment));
          sim.install_faults(FaultSchedule{}, fopts);  // ledger only: audit the recovery
          sim.run(measure_s);
          const LossAudit audit = audit_losses(sim, make_quote_generator(sc), audit_opts);
          recovered = audit.clean();
        }
      }
      rows.push_back(JsonObject()
                         .set_string("kind", "mid_apply_crash")
                         .set_integer("victim_broker", victim.value())
                         .set_bool("rollback_ok", rollback_ok)
                         .set_integer("apply_steps_applied", apply.steps_applied)
                         .set_integer("apply_steps_total", apply.steps_total)
                         .set_bool("entry_failure_ok", entry_failure_ok)
                         .set_integer("gather_unreachable",
                                      retry.gather.unreachable_brokers)
                         .set_integer("gather_retries", retry.gather.retries)
                         .set_bool("recovered", recovered)
                         .render());
    }
    std::printf("\nmid-apply crash: rollback %s, dead-entry failure %s, recovery %s\n",
                rollback_ok ? "ok" : "MISSED", entry_failure_ok ? "ok" : "MISSED",
                recovered ? "ok" : "MISSED");
    if (!rollback_ok || !entry_failure_ok || !recovered) failed = true;
  }

  RunReport report = make_sim_report("e11");
  report.header()
      .set_integer("num_brokers", sc.num_brokers)
      .set_integer("num_publishers", sc.num_publishers)
      .set_number("profile_seconds", profile_s)
      .set_number("measure_seconds", measure_s);
  for (const std::string& row : rows) report.add_row(row);
  report.write("BENCH_chaos.json", "rows");

  if (failed) {
    std::fprintf(stderr, "[e11] FAILURES above\n");
    return 1;
  }
  return 0;
}
