// The elastic controller's contract, from unit policy to closed loop:
//
//   - Determinism: for a fixed scenario seed the whole sense -> decide ->
//     plan -> apply trajectory (every decision, every broker count, every
//     aggregate) is bit-identical across repeated runs and across simulator
//     worker counts — the sampler emits rows in canonical order and the
//     controller is pure arithmetic over them.
//   - Transparency: with the loop disabled it senses and accounts but must
//     not perturb a single event — totals and the merged delay histogram
//     equal an uncontrolled run of the same duration exactly.
//   - Anti-flap: hysteresis + dwell mean an in-band or band-straddling
//     signal never acts, and cooldowns bound the action rate after applies.
//   - Resilience: a broker dying between plan and apply rolls back (the sim
//     never sees a half-applied plan), backs off, and re-plans successfully
//     once the broker heals.
//   - Responsiveness: a flash crowd against a consolidated deployment
//     commissions parked brokers within a bounded number of intervals (the
//     backlog emergency skips the dwell).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "control/control_loop.hpp"
#include "croc/reconfig_plan.hpp"
#include "scenario/scenario.hpp"
#include "sim/faults.hpp"
#include "sim/simulation.hpp"

namespace greenps::control {
namespace {

// Small enough to run in seconds, large enough that consolidation has
// brokers to park and a flash crowd can outrun the packed capacity.
ScenarioConfig autoscale_scenario(std::uint64_t seed = 42) {
  ScenarioConfig cfg;
  cfg.num_brokers = 10;
  cfg.num_publishers = 3;
  cfg.subs_per_publisher = 15;
  cfg.full_out_bw_kb_s = 30.0;
  cfg.seed = seed;
  return cfg;
}

// Time constants shrunk so the full decide -> act -> cooldown -> act cycle
// fits inside a test; the policy structure is untouched.
ControlLoopConfig fast_loop(std::uint64_t seed) {
  ControlLoopConfig lc;
  lc.interval_s = 5;
  lc.croc.seed = seed;
  lc.controller.warmup_s = 10;
  lc.controller.commission_cooldown_s = 10;
  lc.controller.consolidate_cooldown_s = 20;
  lc.controller.failure_backoff_s = 10;
  return lc;
}

LoadEstimate est_with(double peak, double backlog = 0.0) {
  LoadEstimate e;
  e.brokers = 4;
  e.sample_ticks = 5;
  e.avg_util = peak * 0.8;
  e.peak_util = peak;
  e.max_backlog_s = backlog;
  e.ewma_avg_util = peak * 0.8;
  e.ewma_peak_util = peak;
  return e;
}

// --- determinism -------------------------------------------------------

struct LoopTrace {
  std::vector<std::string> ticks;
  ControlTotals totals;
  double p99_ms = 0;
};

// One scripted mini-day: quiet opening (consolidate), a crowd (commission),
// quiet close (claw back). Every phase exercises a different decision path.
LoopTrace run_trace(std::uint64_t seed, std::size_t workers) {
  const ScenarioConfig scen = autoscale_scenario(seed);
  Simulation sim = make_simulation(scen, SimOptions{.workers = workers});
  const RateModulator mod(sim);
  mod.apply(sim, 0.3);
  sim.run(10.0);  // warm the CBC profiles at the opening rate
  sim.reset_metrics();

  ControlLoop loop(sim, fast_loop(seed));
  LoopTrace t;
  for (int i = 0; i < 18; ++i) {
    mod.apply(sim, i < 6 ? 0.3 : i < 12 ? 6.0 : 0.3);
    const TickRecord& rec = loop.step();
    t.ticks.push_back(std::string(action_name(rec.decision.action)) + "/" +
                      hold_reason_name(rec.decision.hold) + "/" +
                      (rec.applied ? "applied" : "held") + "/" +
                      std::to_string(rec.brokers_after));
  }
  t.totals = loop.totals();
  t.p99_ms = loop.delay_histogram().percentile_ms(0.99);
  return t;
}

TEST(ElasticController, TrajectoryBitIdenticalAcrossRunsAndWorkerCounts) {
  for (const std::uint64_t seed : {7ull, 42ull}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const LoopTrace base = run_trace(seed, 1);
    // The script must actually drive the controller through decisions.
    EXPECT_GT(base.totals.publications, 0u);
    EXPECT_GT(base.totals.reconfigurations, 0u);

    const LoopTrace again = run_trace(seed, 1);
    EXPECT_EQ(again.ticks, base.ticks);

    const LoopTrace sharded = run_trace(seed, 2);
    EXPECT_EQ(sharded.ticks, base.ticks);
    EXPECT_EQ(sharded.totals.publications, base.totals.publications);
    EXPECT_EQ(sharded.totals.deliveries, base.totals.deliveries);
    EXPECT_EQ(sharded.totals.broker_seconds, base.totals.broker_seconds);
    EXPECT_EQ(sharded.totals.reconfigurations, base.totals.reconfigurations);
    EXPECT_EQ(sharded.totals.commissions, base.totals.commissions);
    EXPECT_EQ(sharded.totals.consolidations, base.totals.consolidations);
    EXPECT_EQ(sharded.totals.clients_migrated, base.totals.clients_migrated);
    EXPECT_EQ(sharded.p99_ms, base.p99_ms);
  }
}

// --- transparency when disabled ----------------------------------------

TEST(ElasticController, DisabledLoopMatchesUncontrolledRunExactly) {
  const ScenarioConfig scen = autoscale_scenario();
  const double duration_s = 60.0;

  Simulation plain = make_simulation(scen);
  plain.set_sample_interval_ms(1000);  // the loop ctor sets this on its sim
  plain.run(duration_s);
  const SimSummary want = plain.summarize();
  ASSERT_GT(want.deliveries, 0u);

  Simulation sensed = make_simulation(scen);
  ControlLoopConfig lc;
  lc.interval_s = 10;
  lc.enabled = false;
  ControlLoop loop(sensed, lc);
  loop.run_for(duration_s);

  // Sensing must be free: same events, same deployment, nothing planned.
  EXPECT_EQ(loop.totals().reconfigurations, 0u);
  EXPECT_EQ(sensed.deployment().topology.broker_count(), scen.num_brokers);
  EXPECT_EQ(loop.totals().publications, want.publications);
  EXPECT_EQ(loop.totals().deliveries, want.deliveries);
  EXPECT_EQ(loop.totals().broker_seconds,
            static_cast<double>(scen.num_brokers) * duration_s);
  // Merged per-window histograms carry the identical bucket counts as the
  // uncontrolled one-shot histogram: exact percentile equality.
  EXPECT_EQ(loop.delay_histogram().percentile_ms(0.50),
            plain.metrics().delay_histogram().percentile_ms(0.50));
  EXPECT_EQ(loop.delay_histogram().percentile_ms(0.99),
            plain.metrics().delay_histogram().percentile_ms(0.99));
  EXPECT_NEAR(loop.totals().delay_sum_ms / static_cast<double>(loop.totals().deliveries),
              want.avg_delivery_delay_ms, 1e-9);
}

// --- hysteresis / anti-flap --------------------------------------------

TEST(ElasticController, InBandOrStraddlingSignalsNeverAct) {
  const ControllerConfig cfg;
  ElasticController ctl(cfg);
  double now = 0;
  // Oscillation strictly inside the band: held as in-band every tick.
  for (int i = 0; i < 50; ++i) {
    now += 10;
    const double peak = i % 2 == 0 ? cfg.util_low + 0.01 : cfg.util_high - 0.01;
    const Decision d = ctl.decide(est_with(peak), now, /*since_deploy_s=*/1e9);
    EXPECT_EQ(d.action, ControlAction::kHold);
    EXPECT_EQ(d.hold, HoldReason::kInBand);
  }
  // Straddling the band edges: each crossing resets the opposite dwell, so
  // neither direction ever accumulates enough persistence to act.
  for (int i = 0; i < 50; ++i) {
    now += 10;
    const double peak = i % 2 == 0 ? cfg.util_high + 0.1 : cfg.util_low - 0.1;
    const Decision d = ctl.decide(est_with(peak), now, 1e9);
    EXPECT_EQ(d.action, ControlAction::kHold);
    EXPECT_EQ(d.hold, HoldReason::kDwell);
  }
}

TEST(ElasticController, CooldownsBoundTheActionRateAfterAnApply) {
  const ControllerConfig cfg;
  ElasticController ctl(cfg);
  double now = 0;

  // Persistent overload commissions after exactly the dwell.
  now += 10;
  EXPECT_EQ(ctl.decide(est_with(0.9), now, 1e9).hold, HoldReason::kDwell);
  now += 10;
  const Decision up = ctl.decide(est_with(0.9), now, 1e9);
  ASSERT_EQ(up.action, ControlAction::kCommission);
  EXPECT_FALSE(up.emergency);
  ctl.on_applied(ControlAction::kCommission, now);
  const double applied_at = now;

  // Immediately-quiet load (the classic commission overshoot): the reverse
  // consolidation still waits out the short guard plus its full dwell.
  std::vector<double> act_times;
  for (int i = 0; i < 8; ++i) {
    now += 10;
    const Decision d = ctl.decide(est_with(0.2), now, 1e9);
    if (d.action == ControlAction::kConsolidate) {
      act_times.push_back(now);
      ctl.on_applied(ControlAction::kConsolidate, now);
    } else {
      EXPECT_TRUE(d.hold == HoldReason::kCooldown || d.hold == HoldReason::kDwell)
          << "tick at " << now << ": " << hold_reason_name(d.hold);
    }
  }
  ASSERT_EQ(act_times.size(), 1u);
  EXPECT_GE(act_times[0], applied_at + cfg.commission_cooldown_s);
  // After a consolidation the full (long) consolidate cooldown applies.
  now += 10;
  EXPECT_EQ(ctl.decide(est_with(0.2), now, 1e9).hold, HoldReason::kCooldown);
}

TEST(ElasticController, BacklogEmergencySkipsDwellAndWarmupResetsIt) {
  const ControllerConfig cfg;
  ElasticController ctl(cfg);
  // Emergency backlog at modest utilization: commission on the first tick.
  const Decision d = ctl.decide(est_with(0.2, /*backlog=*/1.0), 10, 1e9);
  EXPECT_EQ(d.action, ControlAction::kCommission);
  EXPECT_TRUE(d.emergency);

  // A non-emergency signal riding through warm-up accumulates no dwell:
  // the first post-warmup tick starts the count from scratch.
  ElasticController fresh(cfg);
  double now = 0;
  for (int i = 0; i < 5; ++i) {
    now += 10;
    EXPECT_EQ(fresh.decide(est_with(0.9), now, /*since_deploy_s=*/1.0).hold,
              HoldReason::kWarmup);
  }
  now += 10;
  EXPECT_EQ(fresh.decide(est_with(0.9), now, cfg.warmup_s + 1).hold,
            HoldReason::kDwell);
}

// --- rollback -> backoff -> re-plan ------------------------------------

TEST(ElasticController, FailedApplyRollsBackBacksOffThenReplans) {
  const ScenarioConfig scen = autoscale_scenario();
  Simulation sim = make_simulation(scen);
  const RateModulator mod(sim);
  mod.apply(sim, 0.3);
  sim.run(10.0);
  sim.reset_metrics();

  ControlLoop loop(sim, fast_loop(scen.seed));

  // Between planning and apply, kill one deployed broker the plan targets —
  // the race the transactional apply exists for.
  BrokerId crashed{};
  std::atomic<bool> armed{true};
  loop.pre_apply_hook = [&](const ReconfigurationPlan& plan) {
    if (!armed.load()) return;
    for (const BrokerId b : plan.allocated_brokers) {
      if (sim.deployment().topology.has_broker(b) && sim.broker_alive(b)) {
        crashed = b;
        sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, b});
        armed.store(false);
        return;
      }
    }
  };

  const std::size_t before = sim.deployment().topology.broker_count();
  int ticks = 0;
  while (armed.load() && ticks < 20) {
    loop.step();
    ++ticks;
  }
  ASSERT_FALSE(armed.load()) << "low load never produced a consolidation plan";
  const TickRecord& failed = loop.history().back();
  EXPECT_FALSE(failed.applied);
  EXPECT_EQ(failed.apply_failure, FailureReason::kBrokerUnreachable);
  // Rolled back: the simulator still runs the pre-plan deployment.
  EXPECT_EQ(sim.deployment().topology.broker_count(), before);
  EXPECT_EQ(loop.totals().apply_failures, 1u);
  EXPECT_EQ(loop.controller().consecutive_failures(), 1u);

  // Heal the broker; the controller waits out its backoff, then re-plans
  // the still-present signal and the consolidation lands.
  sim.inject_fault(FaultEvent{0, FaultKind::kBrokerRestart, crashed});
  bool saw_backoff = false;
  for (int i = 0; i < 30 && loop.totals().consolidations == 0; ++i) {
    const TickRecord& rec = loop.step();
    saw_backoff = saw_backoff || rec.decision.hold == HoldReason::kBackoff;
  }
  EXPECT_TRUE(saw_backoff);
  ASSERT_GE(loop.totals().consolidations, 1u);
  EXPECT_EQ(loop.controller().consecutive_failures(), 0u);
  EXPECT_LT(sim.deployment().topology.broker_count(), before);
}

// --- flash-crowd responsiveness ----------------------------------------

TEST(ElasticController, FlashCrowdCommissionsWithinBoundedIntervals) {
  const ScenarioConfig scen = autoscale_scenario();
  Simulation sim = make_simulation(scen);
  const RateModulator mod(sim);
  mod.apply(sim, 0.3);
  sim.run(10.0);
  sim.reset_metrics();

  ControlLoop loop(sim, fast_loop(scen.seed));
  int ticks = 0;
  while (loop.totals().consolidations == 0 && ticks < 20) {
    loop.step();
    ++ticks;
  }
  ASSERT_GE(loop.totals().consolidations, 1u)
      << "controller never reached the consolidated quiet state";
  const std::size_t parked_at = sim.deployment().topology.broker_count();
  ASSERT_LT(parked_at, scen.num_brokers);

  // The crowd: rates jump far past the packed capacity. Backlog trips the
  // emergency path (no dwell), so the commission may only wait out the
  // post-consolidation warm-up and the short commission guard.
  mod.apply(sim, 8.0);
  int latency = 0;
  while (loop.totals().commissions == 0 && latency < 12) {
    loop.step();
    ++latency;
  }
  ASSERT_GE(loop.totals().commissions, 1u) << "crowd never commissioned";
  EXPECT_GT(sim.deployment().topology.broker_count(), parked_at);
  EXPECT_LE(latency, 8) << "commission latency exceeded the bound";
}

}  // namespace
}  // namespace greenps::control
