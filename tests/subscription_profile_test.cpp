#include "profile/subscription_profile.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace greenps {
namespace {

constexpr AdvId kAdv1{1};
constexpr AdvId kAdv2{2};
constexpr AdvId kAdv3{3};

SubscriptionProfile profile_of(AdvId adv, std::initializer_list<MessageSeq> seqs,
                               std::size_t window = 64) {
  SubscriptionProfile p(window);
  for (const MessageSeq s : seqs) p.record(adv, s);
  return p;
}

TEST(SubscriptionProfile, RecordsPerPublisher) {
  SubscriptionProfile p(64);
  p.record(kAdv1, 75);
  p.record(kAdv1, 76);
  p.record(kAdv2, 144);
  EXPECT_EQ(p.vectors().size(), 2u);
  EXPECT_EQ(p.cardinality(), 3u);
}

TEST(SubscriptionProfile, PaperFigure1Merge) {
  // S1: Adv1 {75,76,77}, Adv2 {144..148}. S2: Adv1 {77,78,79}, Adv3 {146}.
  SubscriptionProfile s1(64), s2(64);
  for (MessageSeq m : {75, 76, 77}) s1.record(kAdv1, m);
  for (MessageSeq m : {144, 145, 146, 147, 148}) s1.record(kAdv2, m);
  for (MessageSeq m : {77, 78, 79}) s2.record(kAdv1, m);
  s2.record(kAdv3, 146);

  SubscriptionProfile merged = s1;
  merged.merge(s2);
  EXPECT_EQ(merged.vectors().size(), 3u);
  EXPECT_EQ(merged.cardinality(), 5u + 5u + 1u);  // Adv1 75..79, Adv2 5 bits, Adv3 1 bit
  EXPECT_TRUE(SubscriptionProfile::covers(merged, s1));
  EXPECT_TRUE(SubscriptionProfile::covers(merged, s2));
}

TEST(SubscriptionProfile, IntersectAcrossPublishers) {
  SubscriptionProfile a(64), b(64);
  a.record(kAdv1, 10);
  a.record(kAdv2, 20);
  b.record(kAdv1, 10);
  b.record(kAdv2, 21);
  b.record(kAdv3, 5);
  EXPECT_EQ(SubscriptionProfile::intersect_count(a, b), 1u);
  EXPECT_EQ(SubscriptionProfile::union_count(a, b), 4u);
  EXPECT_EQ(SubscriptionProfile::xor_count(a, b), 3u);
}

TEST(SubscriptionProfile, RelationClassification) {
  const auto base = profile_of(kAdv1, {1, 2, 3, 4});
  const auto equal = profile_of(kAdv1, {1, 2, 3, 4});
  const auto subset = profile_of(kAdv1, {2, 3});
  const auto overlap = profile_of(kAdv1, {3, 4, 5});
  const auto disjoint = profile_of(kAdv1, {10, 11});
  const auto other_pub = profile_of(kAdv2, {1, 2});

  EXPECT_EQ(SubscriptionProfile::relation(base, equal), Relation::kEqual);
  EXPECT_EQ(SubscriptionProfile::relation(base, subset), Relation::kSuperset);
  EXPECT_EQ(SubscriptionProfile::relation(subset, base), Relation::kSubset);
  EXPECT_EQ(SubscriptionProfile::relation(base, overlap), Relation::kIntersect);
  EXPECT_EQ(SubscriptionProfile::relation(base, disjoint), Relation::kEmpty);
  EXPECT_EQ(SubscriptionProfile::relation(base, other_pub), Relation::kEmpty);
}

TEST(SubscriptionProfile, MultiPublisherRelation) {
  // Superset must cover on *every* publisher.
  SubscriptionProfile sup(64), sub(64);
  sup.record(kAdv1, 1);
  sup.record(kAdv1, 2);
  sup.record(kAdv2, 1);
  sub.record(kAdv1, 1);
  sub.record(kAdv2, 1);
  EXPECT_EQ(SubscriptionProfile::relation(sup, sub), Relation::kSuperset);
  sub.record(kAdv3, 1);
  EXPECT_EQ(SubscriptionProfile::relation(sup, sub), Relation::kIntersect);
}

TEST(SubscriptionProfile, SameBitsIgnoresWindowAnchor) {
  // Two windows anchored differently but holding the same set bits.
  SubscriptionProfile a(16), b(32);
  for (MessageSeq s : {100, 101, 110}) a.record(kAdv1, s);  // anchor 100
  b.record(kAdv1, 70);   // anchor 70; slides out below
  b.record(kAdv1, 110);  // slides window to [79, 111), dropping 70
  b.record(kAdv1, 100);
  b.record(kAdv1, 101);
  ASSERT_EQ(a.cardinality(), 3u);
  ASSERT_EQ(b.cardinality(), 3u);
  EXPECT_TRUE(SubscriptionProfile::same_bits(a, b));
  EXPECT_EQ(a.bit_hash(), b.bit_hash());
}

TEST(SubscriptionProfile, BitHashDiffersForDifferentSets) {
  const auto a = profile_of(kAdv1, {1, 2, 3});
  const auto b = profile_of(kAdv1, {1, 2, 4});
  const auto c = profile_of(kAdv2, {1, 2, 3});
  EXPECT_NE(a.bit_hash(), b.bit_hash());
  EXPECT_NE(a.bit_hash(), c.bit_hash());
}

TEST(SubscriptionProfile, LoadEstimationPaperExample) {
  // "a subscription with 10 out of 100 bits set in a bit vector
  //  corresponding to a publisher whose publication rate is 50 msg/s and
  //  bandwidth is 50 kB/s [induces] 5 msg/s and ... 5 kB/s."
  SubscriptionProfile p(128);
  for (MessageSeq s = 0; s < 100; s += 10) p.record(kAdv1, s);  // 10 bits over 0..99
  PublisherTable table;
  table[kAdv1] = PublisherProfile{kAdv1, 50.0, 50.0, /*last_seq=*/99};
  EXPECT_NEAR(p.induced_rate(table), 5.0, 1e-9);
  EXPECT_NEAR(p.induced_bandwidth(table), 5.0, 1e-9);
}

TEST(SubscriptionProfile, LoadEstimationSumsPublishers) {
  SubscriptionProfile p(64);
  for (MessageSeq s = 0; s < 10; ++s) p.record(kAdv1, s);  // all of 10
  for (MessageSeq s = 0; s < 10; s += 2) p.record(kAdv2, s);  // 5 of 10
  PublisherTable table;
  table[kAdv1] = PublisherProfile{kAdv1, 10.0, 20.0, 9};
  table[kAdv2] = PublisherProfile{kAdv2, 10.0, 20.0, 9};
  EXPECT_NEAR(p.induced_rate(table), 10.0 + 5.0, 1e-9);
  EXPECT_NEAR(p.induced_bandwidth(table), 20.0 + 10.0, 1e-9);
}

TEST(SubscriptionProfile, UnknownPublisherContributesNothing) {
  const auto p = profile_of(kAdv3, {1, 2, 3});
  PublisherTable table;
  table[kAdv1] = PublisherProfile{kAdv1, 10.0, 10.0, 100};
  EXPECT_DOUBLE_EQ(p.induced_rate(table), 0.0);
}

TEST(SubscriptionProfile, MergedProfileInputCountsSharedTrafficOnce) {
  // Two subscriptions sharing most publications: the OR'd profile's induced
  // rate is far below the sum of the parts — the core of why clustering
  // reduces broker load.
  SubscriptionProfile a(64), b(64);
  for (MessageSeq s = 0; s < 20; ++s) {
    a.record(kAdv1, s);
    b.record(kAdv1, s);
  }
  b.record(kAdv1, 21);
  PublisherTable table;
  table[kAdv1] = PublisherProfile{kAdv1, 100.0, 100.0, 21};
  SubscriptionProfile merged = a;
  merged.merge(b);
  const double sum = a.induced_rate(table) + b.induced_rate(table);
  EXPECT_LT(merged.induced_rate(table), 0.6 * sum);
}

// Property: the fused pairwise_counts kernel agrees with the naive
// per-operation set algebra on randomized profiles — disjoint, nested and
// overlapping publisher sets, sliding windows included.
TEST(SubscriptionProfile, PairwiseCountsMatchNaiveSetAlgebra) {
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    SubscriptionProfile a(128), b(128);
    for (int i = 0; i < 80; ++i) {
      const AdvId adv{static_cast<std::uint64_t>(rng.index(5))};
      const auto seq = static_cast<MessageSeq>(rng.uniform_int(0, 300));
      if (rng.chance(0.6)) a.record(adv, seq);
      if (rng.chance(0.6)) b.record(adv, seq + static_cast<MessageSeq>(rng.index(4)));
    }
    const auto pc = SubscriptionProfile::pairwise_counts(a, b);
    EXPECT_EQ(pc.intersect, SubscriptionProfile::intersect_count(a, b)) << "trial " << trial;
    EXPECT_EQ(pc.union_, SubscriptionProfile::union_count(a, b)) << "trial " << trial;
    EXPECT_EQ(pc.xor_, SubscriptionProfile::xor_count(a, b)) << "trial " << trial;
    EXPECT_EQ(pc.card_a, a.cardinality()) << "trial " << trial;
    EXPECT_EQ(pc.card_b, b.cardinality()) << "trial " << trial;
    // And the derived relations stay consistent with the counts.
    EXPECT_EQ(SubscriptionProfile::covers(a, b), pc.intersect == pc.card_b);
    EXPECT_EQ(SubscriptionProfile::same_bits(a, b),
              pc.intersect == pc.card_a && pc.intersect == pc.card_b);
  }
}

TEST(SubscriptionProfile, RelationPerformsExactlyOneProfileWalk) {
  const auto a = profile_of(kAdv1, {1, 2, 3});
  const auto b = profile_of(kAdv1, {2, 3, 4});
  SubscriptionProfile::reset_pairwise_walks();
  (void)SubscriptionProfile::relation(a, b);
  EXPECT_EQ(SubscriptionProfile::pairwise_walks(), 1u);
}

}  // namespace
}  // namespace greenps
