#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace greenps {
namespace {

TEST(DelayHistogram, EmptyReturnsZero) {
  DelayHistogram h;
  EXPECT_EQ(h.samples(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.5), 0.0);
}

TEST(DelayHistogram, SingleSample) {
  DelayHistogram h;
  h.record(seconds(0.010));  // 10 ms
  EXPECT_EQ(h.samples(), 1u);
  EXPECT_NEAR(h.percentile_ms(0.5), 10.0, 2.0);
  EXPECT_NEAR(h.percentile_ms(0.99), 10.0, 2.0);
}

TEST(DelayHistogram, PercentilesOrdered) {
  DelayHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(seconds(0.001 * i));  // 1ms .. 1s
  EXPECT_LE(h.percentile_ms(0.10), h.percentile_ms(0.50));
  EXPECT_LE(h.percentile_ms(0.50), h.percentile_ms(0.99));
}

TEST(DelayHistogram, UniformDistributionAccuracy) {
  DelayHistogram h;
  Rng rng(1);
  for (int i = 0; i < 50000; ++i) {
    h.record(seconds(rng.uniform_real(0.0, 0.100)));  // 0..100 ms uniform
  }
  EXPECT_NEAR(h.percentile_ms(0.50), 50.0, 10.0);
  EXPECT_NEAR(h.percentile_ms(0.99), 99.0, 15.0);
}

TEST(DelayHistogram, TinyAndHugeDelaysClampToEdges) {
  DelayHistogram h;
  h.record(0);                  // below the first bucket
  h.record(seconds(10000.0));   // beyond the last bucket
  EXPECT_EQ(h.samples(), 2u);
  EXPECT_GT(h.percentile_ms(0.99), h.percentile_ms(0.01));
}

TEST(DelayHistogram, ResetClears) {
  DelayHistogram h;
  h.record(seconds(1.0));
  h.reset();
  EXPECT_EQ(h.samples(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile_ms(0.5), 0.0);
}

TEST(MetricsCollector, TracksPerBrokerTraffic) {
  MetricsCollector m;
  m.on_broker_process(BrokerId{1});
  m.on_broker_process(BrokerId{1});
  m.on_broker_send(BrokerId{1});
  m.on_publication();
  m.on_delivery(BrokerId{1}, 3, seconds(0.005));
  EXPECT_EQ(m.traffic().at(BrokerId{1}).msgs_in, 2u);
  EXPECT_EQ(m.traffic().at(BrokerId{1}).msgs_out, 1u);
  EXPECT_EQ(m.traffic().at(BrokerId{1}).local_deliveries, 1u);
  EXPECT_EQ(m.publications(), 1u);
  EXPECT_EQ(m.deliveries(), 1u);
  EXPECT_DOUBLE_EQ(m.avg_hops(), 3.0);
  EXPECT_NEAR(m.avg_delay_ms(), 5.0, 1e-9);
  m.reset();
  EXPECT_TRUE(m.traffic().empty());
  EXPECT_EQ(m.deliveries(), 0u);
}

}  // namespace
}  // namespace greenps
