// The publication-routing fast path: compiled filters, the typed matching
// indexes, and advertisement-scoped candidate pruning must all be invisible
// to observable behavior. These tests pit each layer against a naive oracle
// on randomized inputs and assert the end-to-end simulation is bit-identical
// with the fast path disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "broker/routing_tables.hpp"
#include "common/rng.hpp"
#include "matching/compiled_filter.hpp"
#include "matching/matching_engine.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

// Restore the process-wide fast-path toggles even if a test fails.
struct ToggleGuard {
  bool index = MatchingEngine::index_enabled();
  bool pruning = SubscriptionRoutingTable::adv_pruning_enabled();
  ~ToggleGuard() {
    MatchingEngine::set_index_enabled(index);
    SubscriptionRoutingTable::set_adv_pruning_enabled(pruning);
  }
};

const char* const kAttrs[] = {"class", "symbol", "low", "volume", "flag", "note"};
const char* const kStrings[] = {"STOCK", "YHOO", "GOOG", "IBM", "abc", ""};

Value random_value(Rng& rng) {
  switch (rng.index(6)) {
    case 0: return Value(rng.uniform_int(-3, 3));
    case 1: return Value(rng.uniform_real(-2.0, 2.0));
    case 2: return Value(rng.chance(0.5) ? 0.0 : -0.0);  // canonical-zero edge
    case 3: return Value(std::string(kStrings[rng.index(6)]));
    case 4: return Value(rng.chance(0.5));
    default: return Value(static_cast<double>(rng.uniform_int(-3, 3)));  // int/real alias
  }
}

Filter random_filter(Rng& rng) {
  static const Op kOps[] = {Op::kEq,     Op::kNeq,    Op::kLt,       Op::kLe,     Op::kGt,
                            Op::kGe,     Op::kPrefix, Op::kSuffix,   Op::kContains,
                            Op::kPresent};
  Filter f;
  const std::size_t n = 1 + rng.index(4);
  for (std::size_t i = 0; i < n; ++i) {
    Predicate p;
    p.attribute = kAttrs[rng.index(6)];
    p.op = kOps[rng.index(10)];
    p.value = random_value(rng);
    f.add(std::move(p));
  }
  return f;
}

Publication random_publication(Rng& rng) {
  Publication pub;
  const std::size_t n = 1 + rng.index(6);
  for (std::size_t i = 0; i < n; ++i) {
    pub.set_attr(kAttrs[rng.index(6)], random_value(rng));
  }
  return pub;
}

// 1,500 randomized cases: the compiled form must agree with Filter::matches
// exactly, including mixed-kind comparisons, canonical zeros and the slow
// string/negation operators.
TEST(CompiledFilter, AgreesWithFilterMatchesOnRandomInputs) {
  Rng rng(7);
  for (int i = 0; i < 1500; ++i) {
    const Filter f = random_filter(rng);
    const CompiledFilter cf(f);
    const Publication pub = random_publication(rng);
    EXPECT_EQ(cf.matches(pub), f.matches(pub))
        << "case " << i << ": " << f.to_string() << " vs " << pub.to_string();
  }
}

// Differential test of the typed-index engine against a scan-all oracle on
// 1,200 random publications over 300 random filters, with removals mixed in.
TEST(MatchingEngineProperty, TypedIndexAgreesWithScanAllOracle) {
  ToggleGuard guard;
  Rng rng(2025);
  MatchingEngine eng;
  std::vector<std::pair<MatchingEngine::Handle, Filter>> oracle;
  for (MatchingEngine::Handle h = 1; h <= 300; ++h) {
    const Filter f = random_filter(rng);
    eng.insert(h, f);
    oracle.emplace_back(h, f);
  }
  // Remove a random slice so index maintenance is exercised too.
  for (int i = 0; i < 50; ++i) {
    const auto k = rng.index(oracle.size());
    eng.remove(oracle[k].first);
    oracle.erase(oracle.begin() + static_cast<std::ptrdiff_t>(k));
  }

  for (int round = 0; round < 1200; ++round) {
    const Publication pub = random_publication(rng);
    std::vector<MatchingEngine::Handle> expected;
    for (const auto& [h, f] : oracle) {
      if (f.matches(pub)) expected.push_back(h);
    }

    MatchingEngine::set_index_enabled(true);
    auto fast = eng.match(pub);
    std::sort(fast.begin(), fast.end());
    EXPECT_EQ(fast, expected) << "round " << round << ": " << pub.to_string();

    MatchingEngine::set_index_enabled(false);
    auto brute = eng.match(pub);
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(brute, expected) << "round " << round << " (index disabled)";
  }
}

Filter symbol_filter(const std::string& symbol) {
  Filter f;
  f.add(Predicate{"class", Op::kEq, Value(std::string("STOCK"))});
  f.add(Predicate{"symbol", Op::kEq, Value(symbol)});
  return f;
}

// Advertisement-scoped pruning must return exactly the unpruned decision for
// every publication — conforming, non-conforming, and unknown-advertisement.
TEST(SubscriptionRoutingTable, AdvScopedPruningMatchesUnprunedDecision) {
  ToggleGuard guard;
  Rng rng(11);
  const std::string symbols[] = {"YHOO", "GOOG", "IBM"};

  SubscriptionRoutingTable srt;
  // Advertisements registered first (as install_routing does), then
  // subscriptions stream in and scopes update incrementally.
  for (std::size_t i = 0; i < 3; ++i) {
    srt.register_advertisement(AdvId{i + 1}, symbol_filter(symbols[i]));
  }
  std::uint64_t next = 1;
  for (int i = 0; i < 150; ++i) {
    Filter f = symbol_filter(symbols[rng.index(3)]);
    if (rng.chance(0.5)) {
      f.add(Predicate{"low", rng.chance(0.5) ? Op::kGt : Op::kLe,
                      Value(rng.uniform_real(-2.0, 2.0))});
    }
    const Hop hop = rng.chance(0.5) ? Hop::to_client(ClientId{next})
                                    : Hop::to_broker(BrokerId{rng.index(5)});
    srt.insert(SubId{next}, f, hop);
    ++next;
  }
  // A few free-form subscriptions that intersect no advertisement cleanly.
  for (int i = 0; i < 20; ++i) {
    srt.insert(SubId{next}, random_filter(rng), Hop::to_client(ClientId{next}));
    ++next;
  }

  for (int round = 0; round < 400; ++round) {
    Publication pub;
    const std::size_t sym = rng.index(3);
    if (rng.chance(0.8)) {
      pub.set_attr("class", Value(std::string("STOCK")));
      pub.set_attr("symbol", Value(std::string(symbols[sym])));
      pub.set_attr("low", Value(rng.uniform_real(-2.0, 2.0)));
    } else {
      pub = random_publication(rng);  // usually non-conforming
    }
    // Known advertisement, unknown advertisement, or no header at all.
    if (rng.chance(0.8)) {
      pub.set_header(AdvId{sym + 1}, 1);
    } else if (rng.chance(0.5)) {
      pub.set_header(AdvId{99}, 1);
    }
    const BrokerId excl{1};
    const BrokerId* exclude = rng.chance(0.5) ? &excl : nullptr;

    SubscriptionRoutingTable::set_adv_pruning_enabled(true);
    const auto pruned = srt.match(pub, exclude);
    SubscriptionRoutingTable::set_adv_pruning_enabled(false);
    const auto full = srt.match(pub, exclude);
    EXPECT_EQ(pruned.forward_to, full.forward_to) << "round " << round;
    EXPECT_EQ(pruned.deliver, full.deliver) << "round " << round;
  }
}

// The pruned fast path must evaluate strictly fewer candidates than a
// brute-force scan, and the walk counter must account for both.
TEST(SubscriptionRoutingTable, PruningReducesMatchWalks) {
  ToggleGuard guard;
  SubscriptionRoutingTable srt;
  srt.register_advertisement(AdvId{1}, symbol_filter("YHOO"));
  const std::string symbols[] = {"YHOO", "GOOG", "IBM", "MSFT"};
  for (std::uint64_t i = 0; i < 200; ++i) {
    srt.insert(SubId{i + 1}, symbol_filter(symbols[i % 4]), Hop::to_client(ClientId{i + 1}));
  }
  Publication pub;
  pub.set_attr("class", Value(std::string("STOCK")));
  pub.set_attr("symbol", Value(std::string("YHOO")));
  pub.set_header(AdvId{1}, 1);

  SubscriptionRoutingTable::set_adv_pruning_enabled(true);
  MatchingEngine::reset_match_walks();
  const auto pruned = srt.match(pub);
  const std::size_t pruned_walks = MatchingEngine::match_walks();

  SubscriptionRoutingTable::set_adv_pruning_enabled(false);
  MatchingEngine::set_index_enabled(false);
  MatchingEngine::reset_match_walks();
  const auto brute = srt.match(pub);
  const std::size_t brute_walks = MatchingEngine::match_walks();

  EXPECT_EQ(pruned.deliver, brute.deliver);
  EXPECT_EQ(pruned.deliver.size(), 50u);
  EXPECT_EQ(pruned_walks, 50u);   // exactly the YHOO scope
  EXPECT_EQ(brute_walks, 200u);   // every live filter
}

// End-to-end determinism: a full simulation must produce a bit-identical
// summary with the fast path (typed indexes + pruning) on and off.
TEST(SimulationDeterminism, FastPathTogglesPreserveSummaryBitForBit) {
  ToggleGuard guard;
  ScenarioConfig cfg;
  cfg.num_brokers = 12;
  cfg.num_publishers = 4;
  cfg.subs_per_publisher = 8;
  cfg.full_out_bw_kb_s = 30.0;
  cfg.seed = 42;

  const auto run = [&cfg](bool fast) {
    MatchingEngine::set_index_enabled(fast);
    SubscriptionRoutingTable::set_adv_pruning_enabled(fast);
    Simulation sim = make_simulation(cfg);
    sim.run(5.0);
    sim.reset_metrics();
    sim.run(10.0);
    return sim.summarize();
  };
  const SimSummary fast = run(true);
  const SimSummary slow = run(false);

  EXPECT_EQ(fast.publications, slow.publications);
  EXPECT_EQ(fast.deliveries, slow.deliveries);
  EXPECT_EQ(fast.broker_msgs_total, slow.broker_msgs_total);
  EXPECT_EQ(fast.brokers_with_traffic, slow.brokers_with_traffic);
  EXPECT_EQ(fast.pure_forwarding_brokers, slow.pure_forwarding_brokers);
  // Doubles compared exactly: the fast path must not perturb a single event.
  EXPECT_EQ(fast.avg_hop_count, slow.avg_hop_count);
  EXPECT_EQ(fast.avg_delivery_delay_ms, slow.avg_delivery_delay_ms);
  EXPECT_EQ(fast.p50_delivery_delay_ms, slow.p50_delivery_delay_ms);
  EXPECT_EQ(fast.p99_delivery_delay_ms, slow.p99_delivery_delay_ms);
  EXPECT_EQ(fast.system_msg_rate, slow.system_msg_rate);
  EXPECT_EQ(fast.avg_broker_msg_rate, slow.avg_broker_msg_rate);
  EXPECT_EQ(fast.avg_output_utilization, slow.avg_output_utilization);
  EXPECT_GT(fast.deliveries, 0u);
}

}  // namespace
}  // namespace greenps
