// Robustness of the text front-ends: random garbage and mutated valid
// inputs must produce a clean ParseError/PandaError, never a crash or an
// accepted-but-corrupt structure.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "language/parser.hpp"
#include "panda/panda.hpp"

namespace greenps {
namespace {

std::string random_garbage(Rng& rng, std::size_t len) {
  static constexpr char kAlphabet[] =
      "[],='ab:0.9-+eE \n\t#_<>!{}broker link publisher subscriber filter";
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

TEST(FuzzInputs, FilterParserNeverCrashes) {
  Rng rng(1);
  int parsed = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = random_garbage(rng, rng.index(80));
    try {
      const Filter f = parse_filter(input);
      ++parsed;
      // Anything accepted must round-trip.
      EXPECT_EQ(parse_filter(f.to_string()), f);
    } catch (const ParseError&) {
      // expected for most inputs
    }
  }
  // Sanity: the fuzz alphabet occasionally produces valid input.
  EXPECT_GE(parsed, 0);
}

TEST(FuzzInputs, PublicationParserNeverCrashes) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string input = random_garbage(rng, rng.index(80));
    try {
      (void)parse_publication(input);
    } catch (const ParseError&) {
    }
  }
}

TEST(FuzzInputs, MutatedValidFilterStillSafe) {
  Rng rng(3);
  const std::string base = "[class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,1000]";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string s = base;
    const std::size_t pos = rng.index(s.size());
    switch (rng.index(3)) {
      case 0:
        s[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
        break;
    }
    try {
      (void)parse_filter(s);
    } catch (const ParseError&) {
    }
  }
}

TEST(FuzzInputs, PandaParserNeverCrashes) {
  Rng rng(4);
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string input = random_garbage(rng, rng.index(200));
    try {
      (void)parse_panda(input);
    } catch (const PandaError&) {
    } catch (const ParseError&) {
      // filter values inside subscriber lines funnel through parse_filter;
      // panda wraps these, but be lenient about the exception type.
    }
  }
}

TEST(FuzzInputs, MutatedValidPandaStillSafe) {
  Rng rng(5);
  const std::string base =
      "broker B0 bw=300\nbroker B1 bw=150\nlink B0 B1\n"
      "publisher P0 broker=B0 symbol=YHOO rate=1.2\n"
      "subscriber C0 broker=B1 filter=[class,=,'STOCK']\n";
  for (int trial = 0; trial < 1000; ++trial) {
    std::string s = base;
    const std::size_t pos = rng.index(s.size());
    s[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const PandaTopology t = parse_panda(s);
      // Accepted topologies must be internally consistent.
      for (const auto& sub : t.deployment.subscribers) {
        EXPECT_TRUE(t.deployment.topology.has_broker(sub.home));
      }
      for (const auto& pub : t.deployment.publishers) {
        EXPECT_TRUE(t.deployment.topology.has_broker(pub.home));
      }
    } catch (const PandaError&) {
    }
  }
}

}  // namespace
}  // namespace greenps
