#include "profile/closeness.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace greenps {
namespace {

constexpr AdvId kAdv{1};

SubscriptionProfile profile_of(std::initializer_list<MessageSeq> seqs) {
  SubscriptionProfile p(256);
  for (const MessageSeq s : seqs) p.record(kAdv, s);
  return p;
}

// Build profiles mimicking Figure 3: S1 has 36 bits, S2 has 16 bits, the
// overlap is 8 bits.
struct Figure3 {
  SubscriptionProfile s1 = SubscriptionProfile(256);
  SubscriptionProfile s2 = SubscriptionProfile(256);
  Figure3() {
    for (MessageSeq i = 0; i < 36; ++i) s1.record(kAdv, i);
    for (MessageSeq i = 28; i < 44; ++i) s2.record(kAdv, i);  // 8-bit overlap
  }
};

TEST(Closeness, IntersectMetric) {
  const Figure3 f;
  EXPECT_DOUBLE_EQ(closeness(ClosenessMetric::kIntersect, f.s1, f.s2), 8.0);
}

TEST(Closeness, IosMatchesPaperFigure3) {
  // "the closeness between S1 and S2 is 8^2 / 52... " — the paper's grid
  // example uses |S1|+|S2| = 36+16 = 52? The text computes 8²÷60 ≈ 1.07
  // (they use 36 + 24 there); with our exact construction the formula is
  // i²/(|S1|+|S2|) = 64/52.
  const Figure3 f;
  EXPECT_NEAR(closeness(ClosenessMetric::kIos, f.s1, f.s2), 64.0 / 52.0, 1e-9);
}

TEST(Closeness, IouMetric) {
  const Figure3 f;
  // |union| = 36 + 16 - 8 = 44.
  EXPECT_NEAR(closeness(ClosenessMetric::kIou, f.s1, f.s2), 64.0 / 44.0, 1e-9);
}

TEST(Closeness, XorMetric) {
  const Figure3 f;
  // |xor| = 36 + 16 - 16 = 36.
  EXPECT_NEAR(closeness(ClosenessMetric::kXor, f.s1, f.s2), 1.0 / 36.0, 1e-12);
}

TEST(Closeness, XorCapOnIdenticalProfiles) {
  const auto a = profile_of({1, 2, 3});
  EXPECT_DOUBLE_EQ(closeness(ClosenessMetric::kXor, a, a), kXorCap);
}

TEST(Closeness, ZeroOnEmptyRelationExceptXor) {
  const auto a = profile_of({1, 2, 3});
  const auto b = profile_of({10, 11});
  EXPECT_DOUBLE_EQ(closeness(ClosenessMetric::kIntersect, a, b), 0.0);
  EXPECT_DOUBLE_EQ(closeness(ClosenessMetric::kIos, a, b), 0.0);
  EXPECT_DOUBLE_EQ(closeness(ClosenessMetric::kIou, a, b), 0.0);
  // XOR is non-zero on disjoint profiles — its defining pathology.
  EXPECT_GT(closeness(ClosenessMetric::kXor, a, b), 0.0);
  EXPECT_TRUE(metric_prunes_empty(ClosenessMetric::kIntersect));
  EXPECT_TRUE(metric_prunes_empty(ClosenessMetric::kIos));
  EXPECT_TRUE(metric_prunes_empty(ClosenessMetric::kIou));
  EXPECT_FALSE(metric_prunes_empty(ClosenessMetric::kXor));
}

TEST(Closeness, IosFavorsHighTrafficPairs) {
  // Same overlap *fraction*, more absolute traffic => higher IOS (the
  // squared numerator favors clustering heavy subscriptions first).
  SubscriptionProfile small_a(256), small_b(256), big_a(256), big_b(256);
  for (MessageSeq i = 0; i < 4; ++i) small_a.record(kAdv, i);
  for (MessageSeq i = 2; i < 6; ++i) small_b.record(kAdv, i);
  for (MessageSeq i = 0; i < 40; ++i) big_a.record(kAdv, i);
  for (MessageSeq i = 20; i < 60; ++i) big_b.record(kAdv, i);
  EXPECT_GT(closeness(ClosenessMetric::kIos, big_a, big_b),
            closeness(ClosenessMetric::kIos, small_a, small_b));
}

TEST(Closeness, PaperOneToManyClaim) {
  // Figure 3 discussion: clustering S1 with all of its covered
  // subscriptions (total coverage 12 bits of a 48-bit sum) yields closeness
  // 12²/48 = 3, greater than S1-with-S2.
  SubscriptionProfile s1(256);
  for (MessageSeq i = 0; i < 36; ++i) s1.record(kAdv, i);
  SubscriptionProfile covered(256);  // three 2x2 blocks = 12 bits inside S1
  for (MessageSeq i = 0; i < 12; ++i) covered.record(kAdv, i);
  const double c = closeness(ClosenessMetric::kIos, s1, covered);
  EXPECT_NEAR(c, 144.0 / 48.0, 1e-9);
  const Figure3 f;
  EXPECT_GT(c, closeness(ClosenessMetric::kIos, f.s1, f.s2));
}

// The fused-kernel invariant: every metric costs exactly one pairwise
// profile walk (the walk counter is the test hook behind the "one word loop
// instead of 2-3" optimization — kIou used to walk three times).
TEST(Closeness, EveryMetricPerformsExactlyOneProfileWalk) {
  const Figure3 f;
  for (const auto m : {ClosenessMetric::kIntersect, ClosenessMetric::kXor,
                       ClosenessMetric::kIos, ClosenessMetric::kIou}) {
    SubscriptionProfile::reset_pairwise_walks();
    (void)closeness(m, f.s1, f.s2);
    EXPECT_EQ(SubscriptionProfile::pairwise_walks(), 1u) << metric_name(m);
  }
}

// Property: all metrics are symmetric and non-negative.
TEST(ClosenessProperty, SymmetricNonNegative) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    SubscriptionProfile a(128), b(128);
    for (int i = 0; i < 40; ++i) {
      if (rng.chance(0.7)) a.record(AdvId{static_cast<std::uint64_t>(rng.index(3))}, rng.uniform_int(0, 100));
      if (rng.chance(0.7)) b.record(AdvId{static_cast<std::uint64_t>(rng.index(3))}, rng.uniform_int(0, 100));
    }
    for (const auto m : {ClosenessMetric::kIntersect, ClosenessMetric::kXor,
                         ClosenessMetric::kIos, ClosenessMetric::kIou}) {
      const double ab = closeness(m, a, b);
      const double ba = closeness(m, b, a);
      EXPECT_DOUBLE_EQ(ab, ba) << metric_name(m);
      EXPECT_GE(ab, 0.0) << metric_name(m);
    }
  }
}

}  // namespace
}  // namespace greenps
