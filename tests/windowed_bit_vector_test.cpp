#include "bitvec/windowed_bit_vector.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace greenps {
namespace {

TEST(WindowedBitVector, FirstRecordAnchorsWindow) {
  WindowedBitVector v(10);
  EXPECT_FALSE(v.anchored());
  EXPECT_TRUE(v.record(75));
  EXPECT_TRUE(v.anchored());
  EXPECT_EQ(v.first_id(), 75);
  EXPECT_TRUE(v.test_seq(75));
  EXPECT_EQ(v.count(), 1u);
}

TEST(WindowedBitVector, PaperFigure1Example) {
  // S1 received publications 75, 76, 77 from Adv1.
  WindowedBitVector v;
  v.record(75);
  v.record(76);
  v.record(77);
  EXPECT_EQ(v.count(), 3u);
  EXPECT_TRUE(v.test_seq(75));
  EXPECT_TRUE(v.test_seq(76));
  EXPECT_TRUE(v.test_seq(77));
  EXPECT_FALSE(v.test_seq(78));
}

TEST(WindowedBitVector, PaperShiftExample) {
  // "if the bit vector length is 10 while the counter representing the
  // first bit is 100, and an incoming publication has a publication ID of
  // 119, then shift the bit vector by 10 bits, set the bit at index 9, and
  // update the counter to 110."
  WindowedBitVector v(10);
  v.record(100);  // anchor at 100
  EXPECT_EQ(v.first_id(), 100);
  v.record(119);
  EXPECT_EQ(v.first_id(), 110);
  EXPECT_TRUE(v.test_seq(119));
  EXPECT_TRUE(v.bits().test(9));
  // The bit for 100 slid out of the window.
  EXPECT_FALSE(v.test_seq(100));
}

TEST(WindowedBitVector, ShiftPreservesRecentBits) {
  WindowedBitVector v(10);
  v.record(100);
  v.record(105);
  v.record(109);
  v.record(112);  // shifts by 3
  EXPECT_EQ(v.first_id(), 103);
  EXPECT_FALSE(v.test_seq(100));
  EXPECT_TRUE(v.test_seq(105));
  EXPECT_TRUE(v.test_seq(109));
  EXPECT_TRUE(v.test_seq(112));
  EXPECT_EQ(v.count(), 3u);
}

TEST(WindowedBitVector, StalePublicationRejected) {
  WindowedBitVector v(10);
  v.record(100);
  v.record(150);  // window now [141, 151)
  EXPECT_FALSE(v.record(120));
  EXPECT_EQ(v.count(), 1u);
}

TEST(WindowedBitVector, DuplicateRecordIdempotent) {
  WindowedBitVector v(10);
  v.record(5);
  v.record(5);
  EXPECT_EQ(v.count(), 1u);
}

TEST(WindowedBitVector, IntersectCountAlignsByMessageId) {
  WindowedBitVector a(20), b(20);
  a.record(100);
  a.record(105);
  a.record(110);
  b.record(105);
  b.record(110);
  b.record(115);
  EXPECT_EQ(WindowedBitVector::intersect_count(a, b), 2u);
  EXPECT_EQ(WindowedBitVector::union_count(a, b), 4u);
  EXPECT_EQ(WindowedBitVector::xor_count(a, b), 2u);
}

TEST(WindowedBitVector, IntersectCountDisjointWindows) {
  WindowedBitVector a(10), b(10);
  a.record(0);
  b.record(1000);
  EXPECT_EQ(WindowedBitVector::intersect_count(a, b), 0u);
  EXPECT_EQ(WindowedBitVector::union_count(a, b), 2u);
}

TEST(WindowedBitVector, CoversBasics) {
  WindowedBitVector sup(20), sub(20);
  sup.record(100);
  sup.record(101);
  sup.record(102);
  sub.record(101);
  EXPECT_TRUE(WindowedBitVector::covers(sup, sub));
  EXPECT_FALSE(WindowedBitVector::covers(sub, sup));
  sub.record(110);
  EXPECT_FALSE(WindowedBitVector::covers(sup, sub));
}

TEST(WindowedBitVector, CoversEmptySub) {
  WindowedBitVector sup(20), sub(20);
  sup.record(5);
  EXPECT_TRUE(WindowedBitVector::covers(sup, sub));
}

TEST(WindowedBitVector, CoversFailsWhenSubBitOutsideSupWindow) {
  WindowedBitVector sup(10), sub(100);
  sup.record(200);  // window [200, 210)
  sub.record(50);   // bit far before sup's window
  EXPECT_FALSE(WindowedBitVector::covers(sup, sub));
}

TEST(WindowedBitVector, MergeOrsByMessageId) {
  WindowedBitVector a(20), b(20);
  a.record(100);
  a.record(102);
  b.record(101);
  b.record(104);
  a.merge(b);
  EXPECT_TRUE(a.test_seq(100));
  EXPECT_TRUE(a.test_seq(101));
  EXPECT_TRUE(a.test_seq(102));
  EXPECT_TRUE(a.test_seq(104));
  EXPECT_EQ(a.count(), 4u);
}

TEST(WindowedBitVector, MergeIntoUnanchored) {
  WindowedBitVector a(20), b(20);
  b.record(77);
  a.merge(b);
  EXPECT_TRUE(a.anchored());
  EXPECT_TRUE(a.test_seq(77));
}

TEST(WindowedBitVector, MergeSlidesWindowForwardForNewerBits) {
  WindowedBitVector a(10), b(10);
  a.record(100);
  b.record(150);
  a.merge(b);
  EXPECT_TRUE(a.test_seq(150));
  EXPECT_FALSE(a.test_seq(100));  // slid out
}

TEST(WindowedBitVector, PaperFigure1Clustering) {
  // S1: Adv1 bits 75,76,77 (11100 at 75); S2: Adv1 bits 77,78,79 (00111).
  // Merged: 11111 at 75.
  WindowedBitVector s1(5), s2(5);
  for (MessageSeq i : {75, 76, 77}) s1.record(i);
  for (MessageSeq i : {77, 78, 79}) s2.record(i);
  s1.merge(s2);
  EXPECT_EQ(s1.count(), 5u);
  for (MessageSeq i = 75; i <= 79; ++i) EXPECT_TRUE(s1.test_seq(i)) << i;
}

// Property: merge computes exactly the set union of surviving message IDs.
TEST(WindowedBitVectorProperty, MergeMatchesSetUnionOracle) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cap = 16 + rng() % 64;
    WindowedBitVector a(cap), b(cap);
    std::set<MessageSeq> sa, sb;
    MessageSeq base = static_cast<MessageSeq>(rng() % 1000);
    for (int i = 0; i < 30; ++i) {
      const MessageSeq s = base + static_cast<MessageSeq>(rng() % (2 * cap));
      if (a.record(s)) {
        sa.insert(s);
      }
    }
    for (int i = 0; i < 30; ++i) {
      const MessageSeq s = base + static_cast<MessageSeq>(rng() % (2 * cap));
      if (b.record(s)) {
        sb.insert(s);
      }
    }
    // Drop IDs that slid out of their own windows.
    std::erase_if(sa, [&](MessageSeq s) { return !a.test_seq(s); });
    std::erase_if(sb, [&](MessageSeq s) { return !b.test_seq(s); });
    WindowedBitVector merged = a;
    merged.merge(b);
    // Every bit in the merged window must be in the union; every union
    // element still within the merged window must be present.
    std::set<MessageSeq> uni;
    uni.insert(sa.begin(), sa.end());
    uni.insert(sb.begin(), sb.end());
    for (MessageSeq s = merged.first_id(); s < merged.end_id(); ++s) {
      if (merged.test_seq(s)) {
        EXPECT_TRUE(uni.count(s)) << "trial " << trial;
      }
    }
    for (const MessageSeq s : uni) {
      if (s >= merged.first_id() && s < merged.end_id()) {
        EXPECT_TRUE(merged.test_seq(s)) << "trial " << trial << " seq " << s;
      }
    }
  }
}

}  // namespace
}  // namespace greenps
