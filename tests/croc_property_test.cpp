// Plan invariants over randomized scenarios (parameterized property sweep):
// whatever the workload and algorithm, an accepted plan must be a connected
// tree of known brokers, place every client, conserve subscriptions, and
// report a consistent migration cost.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

using Param = std::tuple<std::uint64_t /*seed*/, Phase2Algorithm, bool /*heterogeneous*/>;

class PlanInvariants : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanInvariants,
    ::testing::Combine(::testing::Values(1u, 7u, 23u),
                       ::testing::Values(Phase2Algorithm::kFbf, Phase2Algorithm::kBinPacking,
                                         Phase2Algorithm::kCram,
                                         Phase2Algorithm::kPairwiseN),
                       ::testing::Bool()),
    [](const auto& info) {
      // (no structured bindings here: the preprocessor would split the
      // macro argument at the commas inside the brackets)
      const auto seed = std::get<0>(info.param);
      const auto algo = std::get<1>(info.param);
      const bool hetero = std::get<2>(info.param);
      std::string name = "seed" + std::to_string(seed);
      switch (algo) {
        case Phase2Algorithm::kFbf: name += "_FBF"; break;
        case Phase2Algorithm::kBinPacking: name += "_BP"; break;
        case Phase2Algorithm::kCram: name += "_CRAM"; break;
        case Phase2Algorithm::kPairwiseK: name += "_PWK"; break;
        case Phase2Algorithm::kPairwiseN: name += "_PWN"; break;
      }
      return name + (hetero ? "_het" : "_hom");
    });

TEST_P(PlanInvariants, HoldOnRandomScenario) {
  const auto& [seed, algo, hetero] = GetParam();
  ScenarioConfig config;
  config.num_brokers = 20;
  config.num_publishers = 5;
  config.subs_per_publisher = 24;
  config.heterogeneous = hetero;
  config.full_out_bw_kb_s = 80.0;
  config.combined_clients = true;
  config.seed = seed;
  Simulation sim = make_simulation(config);
  sim.run(45.0);

  CrocConfig cfg;
  cfg.algorithm = algo;
  cfg.seed = seed;
  Croc croc(cfg);
  const auto report = croc.reconfigure(sim, BrokerId{seed % config.num_brokers});
  ASSERT_TRUE(report.success);
  const ReconfigurationPlan& plan = report.plan;

  // Tree over known brokers.
  EXPECT_TRUE(plan.overlay.is_tree());
  EXPECT_TRUE(plan.overlay.has_broker(plan.root));
  for (const BrokerId b : plan.overlay.brokers()) {
    EXPECT_TRUE(sim.deployment().capacities.contains(b));
  }

  // Every subscription placed exactly once, on a broker in the overlay.
  std::set<SubId> placed;
  for (const auto& [sub, broker] : plan.subscriber_home) {
    EXPECT_TRUE(plan.overlay.has_broker(broker));
    placed.insert(sub);
  }
  EXPECT_EQ(placed.size(), sim.deployment().subscribers.size());

  // Every publisher placed on a broker in the overlay.
  for (const auto& p : sim.deployment().publishers) {
    const auto it = plan.publisher_home.find(p.client);
    ASSERT_NE(it, plan.publisher_home.end());
    EXPECT_TRUE(plan.overlay.has_broker(it->second));
  }

  // Migration accounting adds up.
  EXPECT_EQ(report.migration.subscribers_total, sim.deployment().subscribers.size());
  EXPECT_EQ(report.migration.publishers_total, sim.deployment().publishers.size());
  EXPECT_LE(report.migration.subscribers_moved, report.migration.subscribers_total);
  EXPECT_EQ(report.migration.brokers_commissioned, 0u);  // pool is fixed
  EXPECT_EQ(report.migration.brokers_decommissioned,
            sim.deployment().topology.broker_count() - plan.overlay.broker_count());

  // Applying the plan yields a runnable deployment.
  sim.redeploy(apply_plan(sim.deployment(), plan));
  sim.run(45.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
}

TEST(CombinedClients, HalvesRelocateIndependently) {
  ScenarioConfig config;
  config.num_brokers = 16;
  config.num_publishers = 4;
  config.subs_per_publisher = 20;
  config.combined_clients = true;
  config.seed = 9;
  Scenario sc = build_scenario(config);
  ASSERT_EQ(sc.combined_pairs.size(), 4u);
  // Initially co-located.
  for (const auto& [pub_client, sub_id] : sc.combined_pairs) {
    BrokerId pub_home, sub_home;
    for (const auto& p : sc.deployment.publishers) {
      if (p.client == pub_client) pub_home = p.home;
    }
    for (const auto& s : sc.deployment.subscribers) {
      if (s.sub == sub_id) sub_home = s.home;
    }
    EXPECT_EQ(pub_home, sub_home);
  }
  Simulation sim(std::move(sc.deployment), make_quote_generator(config));
  sim.run(60.0);
  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  // Both halves have assignments; they may differ (separated connections).
  for (const auto& [pub_client, sub_id] : sc.combined_pairs) {
    EXPECT_TRUE(report.plan.publisher_home.contains(pub_client));
    EXPECT_TRUE(report.plan.subscriber_home.contains(sub_id));
  }
}

}  // namespace
}  // namespace greenps
