// Concurrency suite for the epoch-guarded broker core: epoch reclamation
// (grace periods, torture), the lock-free published-snapshot match path
// against a single-threaded oracle under concurrent registration churn,
// parallel candidate evaluation (thread pool + help queue) determinism, the
// concurrent interner, and SimSummary invariance across the parallel-match
// threshold. Every test asserts *exact* equality — the concurrent machinery
// must be invisible to observable behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "broker/parallel_match.hpp"
#include "broker/routing_tables.hpp"
#include "common/epoch.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "language/interner.hpp"
#include "language/parser.hpp"
#include "sim/match_help.hpp"
#include "sim/simulation.hpp"

namespace greenps {
namespace {

using MatchResult = SubscriptionRoutingTable::MatchResult;

bool results_equal(const MatchResult& a, const MatchResult& b) {
  return a.forward_to == b.forward_to && a.deliver == b.deliver;
}

// --- epoch-based reclamation --------------------------------------------

struct Tracked {
  explicit Tracked(std::atomic<int>& live, std::uint64_t v) : alive(live), value(v) {
    alive.fetch_add(1, std::memory_order_relaxed);
  }
  ~Tracked() { alive.fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<int>& alive;
  std::uint64_t value;
};

// A held guard keeps a retired snapshot alive; releasing it makes the next
// reclaim free it.
TEST(EpochReclaim, GuardDefersReclamationUntilReaderLeaves) {
  auto& domain = EpochDomain::global();
  std::atomic<int> live{0};
  EpochPtr<Tracked> ptr;
  ptr.publish(new Tracked(live, 1));

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::uint64_t seen = 0;
  std::thread reader([&] {
    EpochGuard guard;
    const Tracked* t = ptr.load();
    ASSERT_NE(t, nullptr);
    seen = t->value;
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
    // Still inside the guard: the snapshot must not have been freed.
    EXPECT_EQ(t->value, 1u);
  });
  while (!pinned.load()) std::this_thread::yield();

  ptr.publish(new Tracked(live, 2));  // retires v1 while the reader is pinned
  domain.try_reclaim();
  EXPECT_EQ(live.load(), 2) << "v1 reclaimed under a live reader pin";

  release.store(true);
  reader.join();
  domain.try_reclaim();
  EXPECT_EQ(live.load(), 1) << "v1 not reclaimed after the reader left";
  EXPECT_EQ(seen, 1u);
}

// Torture: a writer races through ~1000 versions while readers load
// continuously. No reader may ever observe a freed snapshot (ASan/TSan
// enforce that); after quiescence everything but the final version is
// reclaimed.
TEST(EpochReclaim, TortureManyVersionsConcurrentReaders) {
  auto& domain = EpochDomain::global();
  std::atomic<int> live{0};
  std::atomic<bool> stop{false};
  {
    EpochPtr<Tracked> ptr;
    ptr.publish(new Tracked(live, 0));

    std::vector<std::thread> readers;
    std::atomic<std::uint64_t> loads{0};
    for (int r = 0; r < 4; ++r) {
      readers.emplace_back([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          EpochGuard guard;
          const Tracked* t = ptr.load();
          ASSERT_NE(t, nullptr);
          // Versions are published in increasing order; a reader must never
          // travel back in time.
          EXPECT_GE(t->value, last);
          last = t->value;
          loads.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    for (std::uint64_t v = 1; v <= 1000; ++v) {
      ptr.publish(new Tracked(live, v));
      // Single-core schedulers would otherwise run the writer to completion
      // before any reader gets a slice.
      if (v % 16 == 0) std::this_thread::yield();
    }
    // The final version stays published; readers always make progress, so
    // insist on a floor of loads before stopping them.
    while (loads.load(std::memory_order_relaxed) < 100) {
      std::this_thread::yield();
    }
    stop.store(true);
    for (std::thread& t : readers) t.join();
    EXPECT_GT(loads.load(), 0u);
    // All readers quiesced: everything except the current version drains.
    domain.try_reclaim();
    EXPECT_EQ(live.load(), 1);
  }
  // EpochPtr's destructor retires the final version.
  domain.try_reclaim();
  EXPECT_EQ(live.load(), 0);
}

// Nested guards reuse the outer pin (the interner inside a routing match);
// the inner guard's destruction must not release the outer protection.
TEST(EpochReclaim, NestedGuardsShareOnePin) {
  auto& domain = EpochDomain::global();
  std::atomic<int> live{0};
  EpochPtr<Tracked> ptr;
  ptr.publish(new Tracked(live, 7));
  {
    EpochGuard outer;
    const Tracked* t = ptr.load();
    { EpochGuard inner; }  // no-op: must not unpin the thread
    ptr.publish(new Tracked(live, 8));
    domain.try_reclaim();
    EXPECT_EQ(t->value, 7u) << "outer pin lost when the inner guard closed";
    EXPECT_EQ(live.load(), 2);
  }
  domain.try_reclaim();
  EXPECT_EQ(live.load(), 1);
}

// --- concurrent match vs single-threaded oracle -------------------------

Filter symbol_filter(const std::string& symbol) {
  return parse_filter("[class,=,'STOCK'],[symbol,=,'" + symbol + "']");
}

std::vector<Publication> probe_publications() {
  const char* symbols[] = {"AAA", "BBB", "CCC", "DDD"};
  std::vector<Publication> pubs;
  for (const char* s : symbols) {
    Publication p;
    p.set_attr("class", Value(std::string("STOCK")));
    p.set_attr("symbol", Value(std::string(s)));
    p.set_attr("volume", Value(std::int64_t{500000}));
    pubs.push_back(std::move(p));
  }
  return pubs;
}

// Readers hammer match_published() while the owner churns registrations and
// re-publishes. Every reader result is compared — exactly — against what a
// single-threaded oracle table produced for the same snapshot version.
TEST(ConcurrentMatching, PublishedMatchAgreesWithOracleUnderChurn) {
  const char* symbols[] = {"AAA", "BBB", "CCC", "DDD"};
  for (const std::uint64_t seed : {11u, 29u, 71u}) {
    SubscriptionRoutingTable table;
    SubscriptionRoutingTable oracle;  // mutated in lockstep, read only by owner
    const std::vector<Publication> pubs = probe_publications();

    // oracle_results[version][pub index], filled by the owner right after
    // each publish; readers never touch it, the main thread reads it after
    // both sides joined.
    std::map<std::uint64_t, std::vector<MatchResult>> oracle_results;

    struct Observation {
      std::uint64_t version;
      std::size_t pub;
      MatchResult result;
    };
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> observations{0};
    const int kReaders = 3;
    std::vector<std::vector<Observation>> observed(kReaders);
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        Rng rng(seed * 1000 + static_cast<std::uint64_t>(r));
        MatchScratch scratch;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t pi = rng.index(pubs.size());
          Observation obs;
          obs.pub = pi;
          obs.version = table.match_published(pubs[pi], nullptr, obs.result, scratch);
          if (obs.version != 0) {
            observed[r].push_back(std::move(obs));
            observations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }

    // Owner: 200 mutate/publish steps. Each step inserts or removes a
    // subscription in both tables, publishes, and records the oracle's
    // single-threaded answer for every probe under that version.
    Rng rng(seed);
    std::uint64_t next_sub = 0;
    std::vector<SubId> installed;
    for (int step = 0; step < 200; ++step) {
      if (!installed.empty() && rng.chance(0.3)) {
        const std::size_t k = rng.index(installed.size());
        table.remove(installed[k]);
        oracle.remove(installed[k]);
        installed.erase(installed.begin() + static_cast<std::ptrdiff_t>(k));
      } else {
        const SubId id{next_sub++};
        const Filter f = symbol_filter(symbols[rng.index(4)]);
        const Hop hop = rng.chance(0.5) ? Hop::to_broker(BrokerId{rng.index(8)})
                                        : Hop::to_client(ClientId{id.value()});
        table.insert(id, f, hop);
        oracle.insert(id, f, hop);
        installed.push_back(id);
      }
      table.publish();
      const std::uint64_t v = table.published_version();
      std::vector<MatchResult> expected(pubs.size());
      for (std::size_t pi = 0; pi < pubs.size(); ++pi) {
        // The oracle is never published: match_into routes through its live
        // single-threaded path.
        oracle.match_into(pubs[pi], nullptr, expected[pi]);
      }
      oracle_results.emplace(v, std::move(expected));
      // On a single core the owner would otherwise finish every step before
      // a reader ever runs; yield so readers interleave with the churn.
      std::this_thread::yield();
    }
    // The final snapshot stays published, so readers are guaranteed to make
    // progress; collect a floor of observations before stopping them.
    while (observations.load(std::memory_order_relaxed) < 200) {
      std::this_thread::yield();
    }
    stop.store(true);
    for (std::thread& t : readers) t.join();

    std::size_t checked = 0;
    for (const auto& per_reader : observed) {
      for (const Observation& obs : per_reader) {
        const auto it = oracle_results.find(obs.version);
        ASSERT_NE(it, oracle_results.end()) << "unknown snapshot version " << obs.version;
        EXPECT_TRUE(results_equal(obs.result, it->second[obs.pub]))
            << "seed " << seed << " version " << obs.version << " pub " << obs.pub;
        ++checked;
      }
    }
    EXPECT_GT(checked, 0u) << "readers never observed a published snapshot";
  }
}

// The published-snapshot path must agree with the live path for the same
// table state, across both process-wide fast-path toggles.
TEST(ConcurrentMatching, SnapshotAgreesWithLiveAcrossToggles) {
  struct ToggleGuard {
    bool index = MatchingEngine::index_enabled();
    bool pruning = SubscriptionRoutingTable::adv_pruning_enabled();
    ~ToggleGuard() {
      MatchingEngine::set_index_enabled(index);
      SubscriptionRoutingTable::set_adv_pruning_enabled(pruning);
    }
  } restore;

  const char* symbols[] = {"AAA", "BBB", "CCC", "DDD"};
  for (const bool index_on : {true, false}) {
    for (const bool pruning_on : {true, false}) {
      MatchingEngine::set_index_enabled(index_on);
      SubscriptionRoutingTable::set_adv_pruning_enabled(pruning_on);

      SubscriptionRoutingTable published;
      SubscriptionRoutingTable live;
      Rng rng(42);
      for (std::uint64_t i = 0; i < 64; ++i) {
        std::string f = "[symbol,=,'" + std::string(symbols[rng.index(4)]) + "']";
        if (rng.chance(0.4)) f += ",[volume,>,400000]";
        const Hop hop = Hop::to_client(ClientId{i});
        published.insert(SubId{i}, parse_filter(f), hop);
        live.insert(SubId{i}, parse_filter(f), hop);
      }
      published.register_advertisement(AdvId{0}, symbol_filter("AAA"));
      live.register_advertisement(AdvId{0}, symbol_filter("AAA"));
      published.publish();

      MatchScratch scratch;
      for (const Publication& pub : probe_publications()) {
        MatchResult from_snapshot, from_live;
        const std::uint64_t v =
            published.match_published(pub, nullptr, from_snapshot, scratch);
        ASSERT_NE(v, 0u);
        live.match_into(pub, nullptr, from_live);
        EXPECT_TRUE(results_equal(from_snapshot, from_live))
            << "index=" << index_on << " pruning=" << pruning_on;
      }
    }
  }
}

// --- parallel candidate evaluation --------------------------------------

// A published table large enough to cross the fan-out threshold: the pool
// evaluator must produce the identical MatchResult at every thread count,
// including chunk boundaries (chunk size 16 against 500 candidates).
TEST(ParallelMatchEval, PoolEvaluatorIsBitIdenticalAcrossThreadCounts) {
  SubscriptionRoutingTable table;
  Rng rng(5);
  const char* symbols[] = {"AAA", "BBB"};
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::string f = "[symbol,=,'" + std::string(symbols[rng.index(2)]) + "']";
    if (rng.chance(0.5)) f += ",[volume,>," + std::to_string(rng.index(900000)) + "]";
    table.insert(SubId{i}, parse_filter(f), Hop::to_client(ClientId{i}));
  }
  table.publish();

  Publication pub;
  pub.set_attr("symbol", Value(std::string("AAA")));
  pub.set_attr("volume", Value(std::int64_t{750000}));

  MatchScratch scratch;
  MatchResult serial;
  ASSERT_NE(table.match_published(pub, nullptr, serial, scratch), 0u);
  ASSERT_FALSE(serial.deliver.empty());

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    PoolCandidateEvaluator eval(pool, /*threshold=*/1, /*chunk=*/16);
    MatchResult parallel;
    ASSERT_NE(table.match_published(pub, nullptr, parallel, scratch, &eval), 0u);
    EXPECT_TRUE(results_equal(parallel, serial)) << threads << " threads";
  }
}

// The help queue with helpers hammering help() concurrently must emit the
// same ascending hit list as the serial loop, for every request shape.
TEST(ParallelMatchEval, HelpQueueAgreesWithSerialUnderConcurrentHelpers) {
  MatchHelpQueue queue(/*chunk=*/8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> helpers;
  for (int h = 0; h < 3; ++h) {
    helpers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!queue.help()) std::this_thread::yield();
      }
    });
  }

  // Predicate over an immutable vector — the same shape as a snapshot
  // candidate scan. Repeat many times so helpers actually interleave.
  Rng rng(77);
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + rng.index(400);
    std::vector<std::uint8_t> keep(n);
    for (std::size_t i = 0; i < n; ++i) keep[i] = rng.chance(0.4) ? 1 : 0;
    auto pred = [&keep](std::size_t i) { return keep[i] != 0; };

    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) expected.push_back(static_cast<std::uint32_t>(i));
    }
    std::vector<std::uint32_t> got;
    queue.evaluate(n, CandidatePred(pred), got);
    ASSERT_EQ(got, expected) << "round " << round;
  }
  stop.store(true);
  for (std::thread& t : helpers) t.join();
}

// Several hot shards fanning out in the same lookahead window: one owner
// per ring slot, all evaluating concurrently while shared helpers hammer
// help() and steal chunks from whichever slot has work. Every owner must
// still see exactly the serial hit list for its own request — chunk merge
// order is per-slot, never cross-slot.
TEST(ParallelMatchEval, MultiSlotOwnersConcurrentWithHelpers) {
  constexpr std::size_t kOwners = 4;
  MatchHelpQueue queue(/*chunk=*/8, /*slots=*/kOwners);
  ASSERT_EQ(queue.slot_count(), kOwners);

  std::atomic<bool> stop{false};
  std::vector<std::thread> helpers;
  for (int h = 0; h < 2; ++h) {
    helpers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!queue.help()) std::this_thread::yield();
      }
    });
  }

  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> owners;
  for (std::size_t slot = 0; slot < kOwners; ++slot) {
    owners.emplace_back([&, slot] {
      Rng rng(1000 + slot);
      for (int round = 0; round < 200; ++round) {
        const std::size_t n = 1 + rng.index(300);
        std::vector<std::uint8_t> keep(n);
        for (std::size_t i = 0; i < n; ++i) keep[i] = rng.chance(0.35) ? 1 : 0;
        std::vector<std::uint32_t> expected;
        for (std::size_t i = 0; i < n; ++i) {
          if (keep[i]) expected.push_back(static_cast<std::uint32_t>(i));
        }
        auto pred = [&keep](std::size_t i) { return keep[i] != 0; };
        std::vector<std::uint32_t> got;
        queue.evaluate(slot, n, CandidatePred(pred), got);
        if (got != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (std::thread& t : owners) t.join();
  stop.store(true);
  for (std::thread& t : helpers) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// --- concurrent interner ------------------------------------------------

// Threads intern overlapping string sets concurrently; ids must be
// consistent (same spelling -> same id everywhere) and every id must
// round-trip through spelling().
TEST(InternerTorture, ConcurrentInterningIsConsistent) {
  Interner interner;
  const int kThreads = 4;
  const int kStrings = 200;
  std::vector<std::vector<InternId>> ids(kThreads, std::vector<InternId>(kStrings));
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread walks the shared set in a different order, so first
      // sight races on most strings.
      for (int k = 0; k < kStrings; ++k) {
        const int s = (k * 7 + t * 31) % kStrings;
        ids[t][static_cast<std::size_t>(s)] = interner.intern("attr_" + std::to_string(s));
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(interner.size(), static_cast<std::size_t>(kStrings));
  for (int s = 0; s < kStrings; ++s) {
    const InternId id = ids[0][static_cast<std::size_t>(s)];
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(ids[t][static_cast<std::size_t>(s)], id) << "string " << s;
    }
    EXPECT_EQ(interner.spelling(id), "attr_" + std::to_string(s));
    EXPECT_EQ(interner.find("attr_" + std::to_string(s)), id);
  }
  EXPECT_EQ(interner.find("never_interned"), kNoIntern);
}

// --- SimSummary invariance across the parallel-match threshold ----------

struct InvarianceNet {
  Deployment dep;
  std::uint64_t next_client = 0;
  std::uint64_t next_sub = 0;

  explicit InvarianceNet(std::size_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      dep.topology.add_broker(BrokerId{i});
      if (i > 0) dep.topology.add_link(BrokerId{(i - 1) / 3}, BrokerId{i});
      dep.capacities.emplace(BrokerId{i},
                             BrokerCapacity{1.0e5, MatchingDelayFunction{10e-6, 0.5e-6}});
    }
    const char* symbols[] = {"AAA", "BBB", "CCC"};
    const double rates[] = {40.0, 25.0, 15.0};
    Rng rng(3);
    for (std::size_t i = 0; i < 3; ++i) {
      PublisherSpec p;
      p.client = ClientId{next_client++};
      p.adv = AdvId{i};
      p.symbol = symbols[i];
      p.rate_msg_s = rates[i];
      p.home = BrokerId{rng.index(n)};
      p.adv_filter = parse_filter("[class,=,'STOCK'],[symbol,=,'" +
                                  std::string(symbols[i]) + "']");
      dep.publishers.push_back(std::move(p));
    }
    for (std::size_t k = 0; k < 24; ++k) {
      SubscriberSpec s;
      s.client = ClientId{next_client++};
      s.sub = SubId{next_sub++};
      std::string filter = "[symbol,=,'" + std::string(symbols[rng.index(3)]) + "']";
      if (rng.chance(0.4)) filter += ",[volume,>,900000]";
      s.filter = parse_filter(filter);
      s.home = BrokerId{rng.index(n)};
      dep.subscribers.push_back(std::move(s));
    }
  }

  Simulation make(SimOptions opts) {
    return Simulation(Deployment(dep),
                      StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(99)),
                      NetworkConfig{}, opts);
  }
};

void expect_summary_identical(const SimSummary& a, const SimSummary& b) {
  EXPECT_EQ(b.publications, a.publications);
  EXPECT_EQ(b.deliveries, a.deliveries);
  EXPECT_EQ(b.broker_msgs_total, a.broker_msgs_total);
  EXPECT_EQ(b.avg_broker_msg_rate, a.avg_broker_msg_rate);
  EXPECT_EQ(b.system_msg_rate, a.system_msg_rate);
  EXPECT_EQ(b.avg_hop_count, a.avg_hop_count);
  EXPECT_EQ(b.avg_delivery_delay_ms, a.avg_delivery_delay_ms);
  EXPECT_EQ(b.p50_delivery_delay_ms, a.p50_delivery_delay_ms);
  EXPECT_EQ(b.p99_delivery_delay_ms, a.p99_delivery_delay_ms);
  EXPECT_EQ(b.avg_output_utilization, a.avg_output_utilization);
}

// The whole point of the deterministic merge: enabling parallel matching
// (threshold 1 = every batch fans out) must not move a single summary bit,
// at any worker count. workers=1 exercises the dedicated-pool evaluator,
// workers=2 the shard help-queue donation path.
TEST(MatchThresholdInvariance, SummaryIsBitIdenticalWithParallelMatching) {
  InvarianceNet base(9);
  Simulation reference = base.make(SimOptions{.workers = 1});
  reference.run(8.0);
  const SimSummary expected = reference.summarize();
  const std::size_t expected_events = reference.events_executed();

  struct Case {
    std::size_t workers;
    std::size_t threshold;
  };
  for (const Case c : {Case{1, 1}, Case{2, 1}, Case{2, 4}}) {
    InvarianceNet net(9);
    Simulation sim = net.make(SimOptions{.workers = c.workers, .match_threshold = c.threshold});
    sim.run(8.0);
    expect_summary_identical(expected, sim.summarize());
    EXPECT_EQ(sim.events_executed(), expected_events)
        << "workers=" << c.workers << " threshold=" << c.threshold;
  }
}

}  // namespace
}  // namespace greenps
