#include "poset/poset.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace greenps {
namespace {

constexpr AdvId kAdv{1};

SubscriptionProfile profile_of(std::initializer_list<MessageSeq> seqs) {
  SubscriptionProfile p(256);
  for (const MessageSeq s : seqs) p.record(kAdv, s);
  return p;
}

SubscriptionProfile range_profile(MessageSeq from, MessageSeq to) {
  SubscriptionProfile p(256);
  for (MessageSeq s = from; s < to; ++s) p.record(kAdv, s);
  return p;
}

TEST(Poset, InsertUnderRoot) {
  ProfilePoset poset;
  const auto r = poset.insert(profile_of({1, 2, 3}), 7);
  EXPECT_TRUE(r.inserted);
  EXPECT_EQ(poset.size(), 1u);
  EXPECT_EQ(poset.payload(r.node), 7u);
  ASSERT_EQ(poset.children(ProfilePoset::kRoot).size(), 1u);
  EXPECT_EQ(poset.children(ProfilePoset::kRoot)[0], r.node);
  EXPECT_TRUE(poset.check_invariants());
}

TEST(Poset, SupersetBecomesParent) {
  ProfilePoset poset;
  const auto big = poset.insert(range_profile(0, 10), 1);
  const auto small = poset.insert(range_profile(2, 5), 2);
  EXPECT_TRUE(poset.check_invariants());
  ASSERT_EQ(poset.children(big.node).size(), 1u);
  EXPECT_EQ(poset.children(big.node)[0], small.node);
  EXPECT_EQ(poset.parents(small.node)[0], big.node);
}

TEST(Poset, InsertBetweenParentAndChild) {
  ProfilePoset poset;
  const auto big = poset.insert(range_profile(0, 10), 1);
  const auto small = poset.insert(range_profile(2, 4), 2);
  const auto mid = poset.insert(range_profile(1, 6), 3);
  EXPECT_TRUE(poset.check_invariants());
  // big -> mid -> small; the old big->small edge is cut.
  EXPECT_EQ(poset.children(big.node), std::vector<ProfilePoset::NodeId>{mid.node});
  EXPECT_EQ(poset.children(mid.node), std::vector<ProfilePoset::NodeId>{small.node});
}

TEST(Poset, SiblingsForIntersectingProfiles) {
  ProfilePoset poset;
  const auto a = poset.insert(range_profile(0, 6), 1);
  const auto b = poset.insert(range_profile(4, 10), 2);
  EXPECT_TRUE(poset.check_invariants());
  EXPECT_EQ(poset.parents(a.node)[0], ProfilePoset::kRoot);
  EXPECT_EQ(poset.parents(b.node)[0], ProfilePoset::kRoot);
  EXPECT_TRUE(poset.children(a.node).empty());
  EXPECT_TRUE(poset.children(b.node).empty());
}

TEST(Poset, EqualProfileNotReinserted) {
  ProfilePoset poset;
  const auto first = poset.insert(profile_of({5, 6}), 1);
  const auto second = poset.insert(profile_of({5, 6}), 2);
  EXPECT_TRUE(first.inserted);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(second.node, first.node);
  EXPECT_EQ(poset.size(), 1u);
  EXPECT_EQ(poset.payload(first.node), 1u);  // original payload kept
}

TEST(Poset, RemoveReconnectsChildren) {
  ProfilePoset poset;
  const auto big = poset.insert(range_profile(0, 10), 1);
  const auto mid = poset.insert(range_profile(1, 6), 2);
  const auto small = poset.insert(range_profile(2, 4), 3);
  poset.remove(mid.node);
  EXPECT_EQ(poset.size(), 2u);
  EXPECT_TRUE(poset.check_invariants());
  // small must remain reachable under big.
  const auto desc = poset.descendants(big.node);
  EXPECT_NE(std::find(desc.begin(), desc.end(), small.node), desc.end());
}

TEST(Poset, RemoveLeaf) {
  ProfilePoset poset;
  const auto a = poset.insert(range_profile(0, 10), 1);
  const auto b = poset.insert(range_profile(2, 4), 2);
  poset.remove(b.node);
  EXPECT_EQ(poset.size(), 1u);
  EXPECT_TRUE(poset.children(a.node).empty());
  EXPECT_TRUE(poset.check_invariants());
}

TEST(Poset, NodeIdsRecycled) {
  ProfilePoset poset;
  const auto a = poset.insert(range_profile(0, 4), 1);
  poset.remove(a.node);
  const auto b = poset.insert(range_profile(5, 9), 2);
  EXPECT_EQ(b.node, a.node);  // freed slot reused
  EXPECT_EQ(poset.size(), 1u);
}

TEST(Poset, DescendantsAreExactlyCoveredNodes) {
  ProfilePoset poset;
  const auto top = poset.insert(range_profile(0, 20), 1);
  poset.insert(range_profile(0, 5), 2);
  poset.insert(range_profile(5, 10), 3);
  poset.insert(range_profile(30, 40), 4);  // unrelated
  const auto desc = poset.descendants(top.node);
  EXPECT_EQ(desc.size(), 2u);
}

TEST(Poset, BfsVisitsEveryLiveNodeOnce) {
  ProfilePoset poset;
  for (int i = 0; i < 10; ++i) {
    poset.insert(range_profile(i, 20 - i), static_cast<std::uint64_t>(i));
  }
  std::size_t visits = 0;
  poset.bfs([&](ProfilePoset::NodeId) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, poset.size());
}

TEST(Poset, BfsPruneStopsDescent) {
  ProfilePoset poset;
  poset.insert(range_profile(0, 20), 1);
  poset.insert(range_profile(2, 6), 2);  // child of the first
  std::size_t visits = 0;
  poset.bfs([&](ProfilePoset::NodeId) {
    ++visits;
    return false;  // never descend
  });
  EXPECT_EQ(visits, 1u);  // only the root's single child
}

// Property: random nested/overlapping inserts and removals keep the
// invariants and containment order.
TEST(PosetProperty, RandomInsertRemoveKeepsInvariants) {
  Rng rng(77);
  ProfilePoset poset;
  std::vector<ProfilePoset::NodeId> live;
  for (int step = 0; step < 200; ++step) {
    if (live.empty() || rng.chance(0.7)) {
      const auto a = rng.uniform_int(0, 100);
      const auto b = a + 1 + rng.uniform_int(0, 60);
      const auto r = poset.insert(range_profile(a, b),
                                  static_cast<std::uint64_t>(step));
      if (r.inserted) live.push_back(r.node);
    } else {
      const std::size_t idx = rng.index(live.size());
      poset.remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  EXPECT_TRUE(poset.check_invariants());
  EXPECT_EQ(poset.size(), live.size());
  // Order property: every node's profile covers all of its descendants'.
  for (const auto n : live) {
    for (const auto d : poset.descendants(n)) {
      EXPECT_TRUE(SubscriptionProfile::covers(poset.profile(n), poset.profile(d)));
    }
  }
}

// The paper reports inserting 3,200 GIFs into the poset takes ~2 s; the
// structure must at least handle a few thousand inserts quickly. (Timing is
// asserted loosely to keep CI stable; the bench measures it properly.)
TEST(PosetProperty, ThousandsOfInsertsComplete) {
  Rng rng(5);
  ProfilePoset poset;
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.uniform_int(0, 2000);
    const auto b = a + 1 + rng.uniform_int(0, 200);
    poset.insert(range_profile(a, b), static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(poset.size(), 1000u);
  EXPECT_TRUE(poset.check_invariants());
}

}  // namespace
}  // namespace greenps
