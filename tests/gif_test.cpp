#include "alloc/gif.hpp"

#include <gtest/gtest.h>

#include "alloc_test_util.hpp"

namespace greenps {
namespace {

using testutil::one_publisher;
using testutil::unit;

TEST(Gif, GroupsIdenticalBitPatterns) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 5; ++i) units.push_back(unit(i, 0, 20, table));
  for (std::uint64_t i = 5; i < 8; ++i) units.push_back(unit(i, 30, 50, table));
  const auto gifs = group_identical_filters(std::move(units));
  ASSERT_EQ(gifs.size(), 2u);
  // Membership counts preserved.
  std::size_t total = 0;
  for (const auto& g : gifs) total += g.units.size();
  EXPECT_EQ(total, 8u);
}

TEST(Gif, DifferentPublishersNeverGroup) {
  const auto table = [] {
    PublisherTable t;
    t[AdvId{0}] = PublisherProfile{AdvId{0}, 100.0, 100.0, 100000};
    t[AdvId{1}] = PublisherProfile{AdvId{1}, 100.0, 100.0, 100000};
    return t;
  }();
  std::vector<SubUnit> units;
  units.push_back(unit(0, 0, 20, table, AdvId{0}));
  units.push_back(unit(1, 0, 20, table, AdvId{1}));  // same bits, other adv
  const auto gifs = group_identical_filters(std::move(units));
  EXPECT_EQ(gifs.size(), 2u);
}

TEST(Gif, UnitsSortedByBandwidthAscending) {
  const auto table = one_publisher();
  // Identical profiles but different endpoint counts => different out_bw.
  const SubUnit single = unit(0, 0, 20, table);
  const SubUnit heavy = cluster_units(unit(1, 0, 20, table), unit(2, 0, 20, table), table);
  std::vector<SubUnit> units = {heavy, single};
  const auto gifs = group_identical_filters(std::move(units));
  ASSERT_EQ(gifs.size(), 1u);
  ASSERT_EQ(gifs[0].units.size(), 2u);
  EXPECT_LE(gifs[0].units[0].out_bw, gifs[0].units[1].out_bw);
  EXPECT_EQ(gifs[0].lightest().members.size(), 1u);
  EXPECT_NEAR(gifs[0].total_out_bw(), 60.0, 1e-9);
}

TEST(Gif, EmptyProfilesGroupTogether) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 3; ++i) {
    units.push_back(make_subscription_unit(SubId{i}, SubscriptionProfile(100), table));
  }
  const auto gifs = group_identical_filters(std::move(units));
  EXPECT_EQ(gifs.size(), 1u);  // all empty => identical bit sets
  EXPECT_EQ(gifs[0].units.size(), 3u);
}

TEST(Gif, SingletonGifsKeepEveryUnitApart) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 4; ++i) units.push_back(unit(i, 0, 20, table));
  const auto gifs = singleton_gifs(std::move(units));
  EXPECT_EQ(gifs.size(), 4u);
}

TEST(Gif, NoUnits) {
  EXPECT_TRUE(group_identical_filters({}).empty());
  EXPECT_TRUE(singleton_gifs({}).empty());
}

}  // namespace
}  // namespace greenps
