#include "alloc/cram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_set>

#include "alloc/bin_packing.hpp"
#include "alloc_test_util.hpp"

namespace greenps {
namespace {

using testutil::all_members;
using testutil::one_publisher;
using testutil::pool;
using testutil::range_profile;
using testutil::unit;

class CramMetricTest : public ::testing::TestWithParam<ClosenessMetric> {};

INSTANTIATE_TEST_SUITE_P(AllMetrics, CramMetricTest,
                         ::testing::Values(ClosenessMetric::kIntersect,
                                           ClosenessMetric::kXor, ClosenessMetric::kIos,
                                           ClosenessMetric::kIou),
                         [](const auto& info) { return metric_name(info.param); });

// Workload: 40 subscriptions in 4 interest groups of 10 identical profiles
// each; groups pairwise disjoint. One broker fits far more than one group's
// worth of bandwidth, so heavy clustering is possible.
std::vector<SubUnit> grouped_units(const PublisherTable& table) {
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 10; ++i) {
      units.push_back(unit(id++, g * 25, g * 25 + 20, table));  // 20 kB/s each
    }
  }
  return units;
}

TEST_P(CramMetricTest, AllocatesEveryEndpointExactlyOnce) {
  const auto table = one_publisher();
  CramOptions opts;
  opts.metric = GetParam();
  const CramResult r = cram_allocate(pool(40, 100.0), grouped_units(table), table, opts);
  ASSERT_TRUE(r.allocation.success);
  auto members = all_members(r.allocation);
  EXPECT_EQ(members.size(), 40u);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(std::adjacent_find(members.begin(), members.end()), members.end());
}

TEST_P(CramMetricTest, NeverWorseThanBinPacking) {
  const auto table = one_publisher();
  const auto units = grouped_units(table);
  const Allocation bp = bin_packing_allocate(pool(40, 100.0), units, table);
  CramOptions opts;
  opts.metric = GetParam();
  const CramResult r = cram_allocate(pool(40, 100.0), units, table, opts);
  ASSERT_TRUE(bp.success);
  ASSERT_TRUE(r.allocation.success);
  EXPECT_LE(r.allocation.brokers_used(), bp.brokers_used());
}

TEST_P(CramMetricTest, RespectsCapacityConstraints) {
  const auto table = one_publisher();
  CramOptions opts;
  opts.metric = GetParam();
  const CramResult r = cram_allocate(pool(40, 100.0), grouped_units(table), table, opts);
  ASSERT_TRUE(r.allocation.success);
  for (const BrokerLoad& b : r.allocation.brokers) {
    EXPECT_GT(b.remaining_bw(), 0.0);
    EXPECT_LE(b.in_rate(), b.broker().delay.max_matching_rate(b.filter_count()) + 1e-9);
  }
}

TEST(Cram, ClustersIdenticalSubscriptionsTogether) {
  // 10 identical 20 kB/s subscriptions, brokers of 100 kB/s: bin packing
  // needs 3 brokers (4+4+2 by bandwidth); CRAM clusters identical profiles,
  // and a cluster of k identical subs has input 20 msg/s instead of k*20.
  // Bandwidth still binds, so CRAM cannot beat 3 brokers, but the total
  // broker input rate must collapse to ~20/s per broker.
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 10; ++i) units.push_back(unit(i, 0, 20, table));
  const CramResult r = cram_allocate(pool(10, 100.0), units, table);
  ASSERT_TRUE(r.allocation.success);
  for (const BrokerLoad& b : r.allocation.brokers) {
    EXPECT_NEAR(b.in_rate(), 20.0, 1e-6);
  }
  // Everything became a handful of clusters.
  EXPECT_LT(r.allocation.unit_count(), 10u);
}

TEST(Cram, ReducesTotalInputRateVersusBinPacking) {
  // Overlapping interests scattered by bin packing produce redundant
  // streams; CRAM's clustering must strictly reduce the summed broker input
  // rate.
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 8; ++i) {
      // Within a group profiles nest with decreasing width, so FFD's
      // bandwidth ordering interleaves the groups across brokers (the
      // scatter CRAM is built to avoid).
      units.push_back(unit(id++, g * 30, g * 30 + 20 - i, table));
    }
  }
  const Allocation bp = bin_packing_allocate(pool(30, 90.0), units, table);
  const CramResult cram = cram_allocate(pool(30, 90.0), units, table);
  ASSERT_TRUE(bp.success);
  ASSERT_TRUE(cram.allocation.success);
  EXPECT_LT(cram.allocation.total_in_rate(), bp.total_in_rate());
}

TEST(Cram, FailsGracefullyWhenInitialAllocationImpossible) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 5; ++i) units.push_back(unit(i, 0, 90, table));
  const CramResult r = cram_allocate(pool(1, 100.0), units, table);
  EXPECT_FALSE(r.allocation.success);
}

TEST(Cram, GifGroupingCollapsesIdenticalProfiles) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 30; ++i) units.push_back(unit(i, 0, 10, table));
  for (std::uint64_t i = 30; i < 40; ++i) units.push_back(unit(i, 50, 60, table));
  CramOptions opts;
  const CramResult r = cram_allocate(pool(20, 200.0), units, table, opts);
  EXPECT_EQ(r.stats.initial_units, 40u);
  EXPECT_EQ(r.stats.gif_count, 2u);  // two distinct bit patterns
  ASSERT_TRUE(r.allocation.success);
}

TEST(Cram, PruningReducesClosenessComputations) {
  // Many mutually-disjoint groups: the poset walk prunes empty relations
  // under IOS but must visit everything under XOR.
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  for (int g = 0; g < 12; ++g) {
    for (int i = 0; i < 3; ++i) {
      units.push_back(unit(id++, g * 8, g * 8 + 4 + i, table));
    }
  }
  CramOptions ios;
  ios.metric = ClosenessMetric::kIos;
  CramOptions xo;
  xo.metric = ClosenessMetric::kXor;
  const CramResult rios = cram_allocate(pool(40, 500.0), units, table, ios);
  const CramResult rxor = cram_allocate(pool(40, 500.0), units, table, xo);
  ASSERT_TRUE(rios.allocation.success);
  ASSERT_TRUE(rxor.allocation.success);
  EXPECT_LT(rios.stats.closeness_computations, rxor.stats.closeness_computations);
}

TEST(Cram, OptionTogglesStillProduceValidAllocations) {
  const auto table = one_publisher();
  const auto units = grouped_units(table);
  for (const bool gif : {false, true}) {
    for (const bool prune : {false, true}) {
      for (const bool o2m : {false, true}) {
        CramOptions opts;
        opts.gif_grouping = gif;
        opts.poset_pruning = prune;
        opts.one_to_many = o2m;
        const CramResult r = cram_allocate(pool(40, 100.0), units, table, opts);
        ASSERT_TRUE(r.allocation.success)
            << "gif=" << gif << " prune=" << prune << " o2m=" << o2m;
        EXPECT_EQ(all_members(r.allocation).size(), 40u);
      }
    }
  }
}

TEST(Cram, OneToManyTriggersOnNestedProfiles) {
  // A big profile covering several small disjoint ones, plus an
  // intersecting sibling — the Figure 3 shape.
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  units.push_back(unit(id++, 0, 36, table));   // S1
  units.push_back(unit(id++, 28, 44, table));  // S2 (intersects S1)
  for (int k = 0; k < 3; ++k) {
    units.push_back(unit(id++, k * 4, k * 4 + 4, table));  // covered by S1
  }
  CramOptions opts;
  opts.metric = ClosenessMetric::kIos;
  const CramResult r = cram_allocate(pool(10, 200.0), units, table, opts);
  ASSERT_TRUE(r.allocation.success);
  EXPECT_GT(r.stats.one_to_many_applied, 0u);
}

TEST(Cram, StatsAreInternallyConsistent) {
  const auto table = one_publisher();
  const CramResult r = cram_allocate(pool(40, 100.0), grouped_units(table), table);
  ASSERT_TRUE(r.allocation.success);
  EXPECT_EQ(r.stats.initial_units, 40u);
  EXPECT_GE(r.stats.allocation_runs, 1u);
  EXPECT_GE(r.stats.iterations, r.stats.clusterings_applied);
  EXPECT_EQ(r.stats.final_units, r.allocation.unit_count());
  EXPECT_LE(r.stats.final_units, r.stats.initial_units);
  EXPECT_GT(r.stats.total_seconds, 0.0);
}

// Canonical rendering of an allocation: broker id -> sorted clusters, each a
// sorted member list. Two allocations with equal signatures place every
// endpoint identically.
std::string allocation_signature(const Allocation& a) {
  std::string sig;
  for (const BrokerLoad& b : a.brokers) {
    std::vector<std::string> clusters;
    for (const SubUnit& u : b.units()) {
      std::vector<std::uint64_t> m;
      for (const SubId id : u.members) m.push_back(id.value());
      std::sort(m.begin(), m.end());
      std::string c;
      for (const std::uint64_t v : m) c += std::to_string(v) + ",";
      clusters.push_back(c);
    }
    std::sort(clusters.begin(), clusters.end());
    sig += "B" + std::to_string(b.broker().id.value()) + "{";
    for (const std::string& c : clusters) sig += c + ";";
    sig += "}";
  }
  return sig;
}

// Mixed workload exercising every clustering path: identical groups (self
// cluster), nested profiles (cover + one-to-many) and overlapping siblings
// (pairwise merge).
std::vector<SubUnit> mixed_units(const PublisherTable& table) {
  std::vector<SubUnit> units = grouped_units(table);
  std::uint64_t id = 100;
  units.push_back(unit(id++, 0, 36, table));
  units.push_back(unit(id++, 28, 44, table));
  for (int k = 0; k < 3; ++k) units.push_back(unit(id++, k * 4, k * 4 + 4, table));
  return units;
}

// The tentpole invariant: the threaded pair search is bit-identical to the
// serial one — same allocation, same stats (timings aside) — because the
// searches read a snapshot and merge in a fixed order after the join.
TEST_P(CramMetricTest, ThreadCountDoesNotChangeTheResult) {
  const auto table = one_publisher();
  const auto units = mixed_units(table);
  CramOptions serial;
  serial.metric = GetParam();
  serial.threads = 1;
  CramOptions threaded = serial;
  threaded.threads = 4;
  const CramResult rs = cram_allocate(pool(40, 100.0), units, table, serial);
  const CramResult rt = cram_allocate(pool(40, 100.0), units, table, threaded);
  ASSERT_TRUE(rs.allocation.success);
  ASSERT_TRUE(rt.allocation.success);
  EXPECT_EQ(rs.stats.threads_used, 1u);
  EXPECT_EQ(rt.stats.threads_used, 4u);
  EXPECT_EQ(allocation_signature(rs.allocation), allocation_signature(rt.allocation));
  EXPECT_EQ(rs.stats.closeness_computations, rt.stats.closeness_computations);
  EXPECT_EQ(rs.stats.allocation_runs, rt.stats.allocation_runs);
  EXPECT_EQ(rs.stats.iterations, rt.stats.iterations);
  EXPECT_EQ(rs.stats.clusterings_applied, rt.stats.clusterings_applied);
  EXPECT_EQ(rs.stats.clusterings_rejected, rt.stats.clusterings_rejected);
  EXPECT_EQ(rs.stats.one_to_many_applied, rt.stats.one_to_many_applied);
  EXPECT_EQ(rs.stats.gif_count, rt.stats.gif_count);
  EXPECT_EQ(rs.stats.final_units, rt.stats.final_units);
}

// The tentpole invariant, extended over the incremental probe: thread count
// (serial vs. speculative parallel k-search) and checkpoint interval (every
// unit, auto, none) change only how the packing work is scheduled, never
// the result or the decision-path accounting. packed + skipped is conserved
// across strides — a checkpoint only converts walked units into skipped
// ones.
TEST_P(CramMetricTest, CheckpointIntervalAndThreadCountDoNotChangeTheResult) {
  const auto table = one_publisher();
  const auto units = mixed_units(table);
  CramOptions ref_opts;
  ref_opts.metric = GetParam();
  ref_opts.threads = 1;
  ref_opts.probe_checkpoint_stride = CheckpointedFirstFit::kNoCheckpoints;
  const CramResult ref = cram_allocate(pool(40, 100.0), units, table, ref_opts);
  ASSERT_TRUE(ref.allocation.success);
  const std::size_t ref_work =
      ref.stats.probe_units_packed + ref.stats.probe_units_skipped;
  EXPECT_EQ(ref.stats.probe_units_skipped, 0u);  // no checkpoints: nothing skipped
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t stride :
         {std::size_t{1}, std::size_t{0}, CheckpointedFirstFit::kNoCheckpoints}) {
      CramOptions o = ref_opts;
      o.threads = threads;
      o.probe_checkpoint_stride = stride;
      const CramResult r = cram_allocate(pool(40, 100.0), units, table, o);
      ASSERT_TRUE(r.allocation.success);
      EXPECT_EQ(allocation_signature(r.allocation), allocation_signature(ref.allocation));
      EXPECT_EQ(r.stats.closeness_computations, ref.stats.closeness_computations);
      EXPECT_EQ(r.stats.allocation_runs, ref.stats.allocation_runs);
      EXPECT_EQ(r.stats.iterations, ref.stats.iterations);
      EXPECT_EQ(r.stats.clusterings_applied, ref.stats.clusterings_applied);
      EXPECT_EQ(r.stats.clusterings_rejected, ref.stats.clusterings_rejected);
      EXPECT_EQ(r.stats.one_to_many_applied, ref.stats.one_to_many_applied);
      EXPECT_EQ(r.stats.final_units, ref.stats.final_units);
      EXPECT_EQ(r.stats.base_rebuilds, ref.stats.base_rebuilds);
      EXPECT_EQ(r.stats.probe_units_packed + r.stats.probe_units_skipped, ref_work);
      if (threads == 1) EXPECT_EQ(r.stats.speculative_probes, 0u);
    }
  }
}

TEST(Cram, DefaultThreadOptionResolvesToHardwareConcurrency) {
  const auto table = one_publisher();
  const CramResult r = cram_allocate(pool(40, 100.0), grouped_units(table), table);
  ASSERT_TRUE(r.allocation.success);
  EXPECT_GE(r.stats.threads_used, 1u);
}

// Regression: the blacklist key used to be (a << 32) ^ b, which discards
// the high bits of the smaller id. These two distinct pairs collided under
// that fold (both mapped to 1 << 32); the widened key keeps them apart.
TEST(Cram, PairKeyKeepsDistinctPairsDistinct) {
  const std::uint64_t big = std::uint64_t{1} << 32;
  const GifPairKey k1 = make_gif_pair_key(0, big);
  const GifPairKey k2 = make_gif_pair_key(2, 3 * big);
  EXPECT_FALSE(k1 == k2);
  // Unordered: (a,b) and (b,a) are the same pair.
  EXPECT_TRUE(k1 == make_gif_pair_key(big, 0));
  std::unordered_set<GifPairKey, GifPairKeyHash> blacklist;
  blacklist.insert(k1);
  EXPECT_TRUE(blacklist.contains(make_gif_pair_key(big, 0)));
  EXPECT_FALSE(blacklist.contains(k2));
}

TEST(Cram, MaxIterationsBoundsWork) {
  const auto table = one_publisher();
  CramOptions opts;
  opts.max_iterations = 1;
  const CramResult r = cram_allocate(pool(40, 100.0), grouped_units(table), table, opts);
  ASSERT_TRUE(r.allocation.success);
  EXPECT_LE(r.stats.iterations, 1u);
}

}  // namespace
}  // namespace greenps
