#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <set>

namespace greenps {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig c;
  c.num_brokers = 16;
  c.num_publishers = 4;
  c.subs_per_publisher = 10;
  c.seed = 7;
  return c;
}

TEST(Scenario, HomogeneousCounts) {
  const Scenario sc = build_scenario(small_config());
  EXPECT_EQ(sc.deployment.topology.broker_count(), 16u);
  EXPECT_TRUE(sc.deployment.topology.is_tree());
  EXPECT_EQ(sc.deployment.publishers.size(), 4u);
  EXPECT_EQ(sc.deployment.subscribers.size(), 40u);
  EXPECT_EQ(sc.symbols.size(), 4u);
  // Homogeneous capacities all equal.
  std::set<double> caps;
  for (const auto& [b, cap] : sc.deployment.capacities) caps.insert(cap.out_bw_kb_s);
  EXPECT_EQ(caps.size(), 1u);
}

TEST(Scenario, PaperScaleCounts) {
  ScenarioConfig c;
  c.num_brokers = 80;
  c.num_publishers = 40;
  c.subs_per_publisher = 50;
  const Scenario sc = build_scenario(c);
  EXPECT_EQ(sc.deployment.topology.broker_count(), 80u);
  EXPECT_EQ(sc.deployment.subscribers.size(), 2000u);  // 40 x 50
  EXPECT_NEAR(sc.deployment.publishers[0].rate_msg_s, 70.0 / 60.0, 1e-9);
}

TEST(Scenario, HeterogeneousCapacityMix) {
  ScenarioConfig c;
  c.num_brokers = 80;
  c.num_publishers = 4;
  c.heterogeneous = true;
  const Scenario sc = build_scenario(c);
  std::size_t full = 0;
  std::size_t half = 0;
  std::size_t quarter = 0;
  for (const auto& [b, cap] : sc.deployment.capacities) {
    if (cap.out_bw_kb_s == c.full_out_bw_kb_s) {
      ++full;
    } else if (cap.out_bw_kb_s == c.full_out_bw_kb_s * 0.5) {
      ++half;
    } else if (cap.out_bw_kb_s == c.full_out_bw_kb_s * 0.25) {
      ++quarter;
    }
  }
  // The paper's mix: 15 full, 25 half, 40 quarter.
  EXPECT_EQ(full, 15u);
  EXPECT_EQ(half, 25u);
  EXPECT_EQ(quarter, 40u);
}

TEST(Scenario, HeterogeneousSubscriptionCountsFollowNsOverI) {
  ScenarioConfig c = small_config();
  c.heterogeneous = true;
  c.subs_per_publisher = 12;  // Ns
  const Scenario sc = build_scenario(c);
  // Publisher i (1-based) has max(1, 12/i) subscriptions: 12+6+4+3 = 25.
  EXPECT_EQ(sc.deployment.subscribers.size(), 12u + 6u + 4u + 3u);
}

TEST(Scenario, ManualPlacesResourcefulBrokersAtTop) {
  ScenarioConfig c = small_config();
  c.heterogeneous = true;
  const Scenario sc = build_scenario(c);
  // Broker 0 is the root of the fan-out-2 tree and must be full-capacity.
  EXPECT_EQ(sc.deployment.capacities.at(BrokerId{0}).out_bw_kb_s, c.full_out_bw_kb_s);
  // The deepest broker is quarter capacity.
  EXPECT_EQ(sc.deployment.capacities.at(BrokerId{15}).out_bw_kb_s,
            c.full_out_bw_kb_s * 0.25);
}

TEST(Scenario, AutomaticBuildsRandomTree) {
  ScenarioConfig c = small_config();
  c.placement = InitialPlacement::kAutomatic;
  const Scenario sc = build_scenario(c);
  EXPECT_TRUE(sc.deployment.topology.is_tree());
}

TEST(Scenario, DeterministicForSameSeed) {
  const Scenario a = build_scenario(small_config());
  const Scenario b = build_scenario(small_config());
  ASSERT_EQ(a.deployment.subscribers.size(), b.deployment.subscribers.size());
  for (std::size_t i = 0; i < a.deployment.subscribers.size(); ++i) {
    EXPECT_EQ(a.deployment.subscribers[i].home, b.deployment.subscribers[i].home);
    EXPECT_EQ(a.deployment.subscribers[i].filter, b.deployment.subscribers[i].filter);
  }
}

TEST(Scenario, SubscriptionMixIsFortySixty) {
  ScenarioConfig c;
  c.num_brokers = 10;
  c.num_publishers = 10;
  c.subs_per_publisher = 100;
  const Scenario sc = build_scenario(c);
  std::size_t plain = 0;
  for (const auto& s : sc.deployment.subscribers) {
    if (s.filter.predicates().size() == 2) ++plain;
  }
  const double frac = static_cast<double>(plain) /
                      static_cast<double>(sc.deployment.subscribers.size());
  EXPECT_NEAR(frac, 0.4, 0.08);
}

TEST(Scenario, SimulationRunsEndToEnd) {
  Simulation sim = make_simulation(small_config());
  sim.run(5.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
}

}  // namespace
}  // namespace greenps
