// Shared helpers for allocation-layer tests: synthetic publishers, profiles
// and broker pools.
#pragma once

#include <vector>

#include "alloc/allocation.hpp"
#include "common/rng.hpp"
#include "profile/sub_unit.hpp"

namespace greenps::testutil {

// One publisher: 100 msg/s, 100 kB/s. The publisher's last_seq is far past
// any profile window, so every 100-bit window is fully observed and one set
// bit = exactly 1 msg/s = 1 kB/s regardless of where the window anchors.
inline PublisherTable one_publisher(AdvId adv = AdvId{0}) {
  PublisherTable t;
  t[adv] = PublisherProfile{adv, 100.0, 100.0, 100000};
  return t;
}

inline SubscriptionProfile range_profile(MessageSeq from, MessageSeq to,
                                         AdvId adv = AdvId{0}) {
  SubscriptionProfile p(100);
  for (MessageSeq s = from; s < to; ++s) p.record(adv, s);
  return p;
}

inline SubUnit unit(std::uint64_t id, MessageSeq from, MessageSeq to,
                    const PublisherTable& table, AdvId adv = AdvId{0}) {
  return make_subscription_unit(SubId{id}, range_profile(from, to, adv), table);
}

// `n` homogeneous brokers with the given output bandwidth.
inline std::vector<AllocBroker> pool(std::size_t n, Bandwidth out_bw,
                                     MatchingDelayFunction delay = {20e-6, 0.5e-6}) {
  std::vector<AllocBroker> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(AllocBroker{BrokerId{i}, out_bw, delay});
  }
  return out;
}

// Total endpoints across an allocation (for conservation checks).
inline std::vector<SubId> all_members(const Allocation& a) {
  std::vector<SubId> out;
  for (const auto& b : a.brokers) {
    for (const auto& u : b.units()) {
      out.insert(out.end(), u.members.begin(), u.members.end());
    }
  }
  return out;
}

}  // namespace greenps::testutil
