#include "matching/matching_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "language/parser.hpp"
#include "workload/stock_quote.hpp"
#include "workload/subscription_gen.hpp"

namespace greenps {
namespace {

Publication yhoo_pub(double low = 18.37, std::int64_t volume = 6200) {
  Publication p(AdvId{1}, 1);
  p.set_attr("class", Value(std::string("STOCK")));
  p.set_attr("symbol", Value(std::string("YHOO")));
  p.set_attr("low", Value(low));
  p.set_attr("volume", Value(volume));
  return p;
}

TEST(MatchingEngine, MatchesInsertedFilters) {
  MatchingEngine eng;
  eng.insert(1, parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO']"));
  eng.insert(2, parse_filter("[class,=,'STOCK'],[symbol,=,'GOOG']"));
  eng.insert(3, parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,10000]"));
  auto result = eng.match(yhoo_pub());
  std::sort(result.begin(), result.end());
  EXPECT_EQ(result, (std::vector<MatchingEngine::Handle>{1}));
}

TEST(MatchingEngine, RemoveStopsMatching) {
  MatchingEngine eng;
  eng.insert(1, parse_filter("[symbol,=,'YHOO']"));
  EXPECT_EQ(eng.match(yhoo_pub()).size(), 1u);
  eng.remove(1);
  EXPECT_TRUE(eng.match(yhoo_pub()).empty());
  EXPECT_EQ(eng.size(), 0u);
  eng.remove(1);  // idempotent
}

TEST(MatchingEngine, FiltersWithoutEqualityGoToScanList) {
  MatchingEngine eng;
  eng.insert(7, parse_filter("[volume,>,1000]"));
  EXPECT_EQ(eng.match(yhoo_pub()).size(), 1u);
  eng.remove(7);
  EXPECT_TRUE(eng.match(yhoo_pub()).empty());
}

TEST(MatchingEngine, NoDuplicateResults) {
  MatchingEngine eng;
  // Two equality predicates could bucket under either attribute; the result
  // must still contain the handle exactly once.
  eng.insert(5, parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO']"));
  const auto result = eng.match(yhoo_pub());
  EXPECT_EQ(result.size(), 1u);
}

TEST(MatchingEngine, FindReturnsStoredFilter) {
  MatchingEngine eng;
  const Filter f = parse_filter("[symbol,=,'YHOO']");
  eng.insert(9, f);
  ASSERT_NE(eng.find(9), nullptr);
  EXPECT_EQ(*eng.find(9), f);
  EXPECT_EQ(eng.find(10), nullptr);
}

// Property: on a realistic workload the engine returns exactly the same set
// of handles as brute-force evaluation of every filter.
TEST(MatchingEngineProperty, AgreesWithBruteForce) {
  Rng rng(2024);
  StockQuoteGenerator quotes(StockQuoteGenerator::Config{}, rng.fork());
  SubscriptionGenerator subs(SubscriptionGenerator::Config{}, rng.fork());
  const std::string symbols[] = {"YHOO", "GOOG", "IBM", "MSFT"};

  MatchingEngine eng;
  std::vector<std::pair<MatchingEngine::Handle, Filter>> all;
  MatchingEngine::Handle next = 1;
  for (const auto& sym : symbols) {
    for (const Filter& f : subs.batch(sym, 50, quotes)) {
      all.emplace_back(next, f);
      eng.insert(next, f);
      ++next;
    }
  }
  ASSERT_EQ(eng.size(), 200u);

  for (int round = 0; round < 60; ++round) {
    const Publication pub = quotes.next(symbols[round % 4]);
    auto got = eng.match(pub);
    std::sort(got.begin(), got.end());
    std::vector<MatchingEngine::Handle> expected;
    for (const auto& [h, f] : all) {
      if (f.matches(pub)) expected.push_back(h);
    }
    EXPECT_EQ(got, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace greenps
