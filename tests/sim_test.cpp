#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "language/parser.hpp"
#include "sim/event_queue.hpp"

namespace greenps {
namespace {

// Chain of `n` brokers: 0 - 1 - ... - n-1, one publisher of symbol SYM at
// broker `pub_home`, subscribers as given.
struct TestNet {
  Deployment dep;
  std::uint64_t next_client = 0;
  std::uint64_t next_sub = 0;

  explicit TestNet(std::size_t n, Bandwidth out_bw = 1.0e5) {
    for (std::uint64_t i = 0; i < n; ++i) {
      dep.topology.add_broker(BrokerId{i});
      if (i > 0) dep.topology.add_link(BrokerId{i - 1}, BrokerId{i});
      dep.capacities.emplace(BrokerId{i},
                             BrokerCapacity{out_bw, MatchingDelayFunction{10e-6, 0.5e-6}});
    }
  }

  void add_publisher(const std::string& symbol, std::uint64_t home, MsgRate rate = 10.0) {
    PublisherSpec p;
    p.client = ClientId{next_client++};
    p.adv = AdvId{dep.publishers.size()};
    p.symbol = symbol;
    p.rate_msg_s = rate;
    p.home = BrokerId{home};
    p.adv_filter = parse_filter("[class,=,'STOCK'],[symbol,=,'" + symbol + "']");
    dep.publishers.push_back(std::move(p));
  }

  SubId add_subscriber(const std::string& filter, std::uint64_t home) {
    SubscriberSpec s;
    s.client = ClientId{next_client++};
    s.sub = SubId{next_sub++};
    s.filter = parse_filter(filter);
    s.home = BrokerId{home};
    dep.subscribers.push_back(s);
    return s.sub;
  }

  Simulation make() {
    return Simulation(std::move(dep),
                      StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(99)));
  }
};

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(2); });
  q.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&] {
    ++fired;
    q.schedule(q.now() + 1, [&] { ++fired; });
  });
  q.run_until(10);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(5, [&] { ++fired; });
  q.schedule(50, [&] { ++fired; });
  EXPECT_EQ(q.run_until(10), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
}

TEST(Simulation, DeliversAllMatchingPublications) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[class,=,'STOCK'],[symbol,=,'YHOO']", 2);  // matches everything
  Simulation sim = net.make();
  sim.run(10.0);
  const auto& m = sim.metrics();
  EXPECT_NEAR(static_cast<double>(m.publications()), 100.0, 2.0);
  // Every publication reaches the subscriber (a few may be in flight at the
  // horizon).
  EXPECT_GE(m.deliveries() + 3, m.publications());
  EXPECT_LE(m.deliveries(), m.publications());
}

TEST(Simulation, NoFalsePositiveDeliveries) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[class,=,'STOCK'],[symbol,=,'GOOG']", 2);  // matches nothing
  Simulation sim = net.make();
  sim.run(5.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
  EXPECT_EQ(sim.metrics().deliveries(), 0u);
}

TEST(Simulation, SelectiveFilterDeliversFraction) {
  TestNet net(2);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,1000000]", 1);
  Simulation sim = net.make();
  sim.run(30.0);
  const auto& m = sim.metrics();
  // volume is uniform on [1e3, 2e6]: roughly half the quotes match.
  const double frac = static_cast<double>(m.deliveries()) /
                      static_cast<double>(m.publications());
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

TEST(Simulation, HopCountMatchesTopologyDistance) {
  TestNet net(4);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 3);  // 4 brokers on the path
  Simulation sim = net.make();
  sim.run(5.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
  EXPECT_DOUBLE_EQ(sim.metrics().avg_hops(), 4.0);
  EXPECT_GT(sim.metrics().avg_delay_ms(), 0.0);
}

TEST(Simulation, PureForwarderProcessesButDeliversNothing) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 2);
  Simulation sim = net.make();
  sim.run(5.0);
  const auto& traffic = sim.metrics().traffic();
  const auto mid = traffic.find(BrokerId{1});
  ASSERT_NE(mid, traffic.end());
  EXPECT_GT(mid->second.msgs_in, 0u);
  EXPECT_GT(mid->second.msgs_out, 0u);
  EXPECT_EQ(mid->second.local_deliveries, 0u);
  const SimSummary s = sim.summarize();
  EXPECT_EQ(s.pure_forwarding_brokers, 1u);
}

TEST(Simulation, PublicationsStopAtUnmatchedBranches) {
  // Star: pub at center 0; subscriber for YHOO at 1; broker 2 must see no
  // traffic (filter-based routing, not flooding).
  TestNet net(1);
  net.dep.topology.add_link(BrokerId{0}, BrokerId{1});
  net.dep.topology.add_link(BrokerId{0}, BrokerId{2});
  for (std::uint64_t i = 1; i <= 2; ++i) {
    net.dep.capacities.emplace(BrokerId{i},
                               BrokerCapacity{1.0e5, MatchingDelayFunction{10e-6, 0.5e-6}});
  }
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation sim = net.make();
  sim.run(5.0);
  EXPECT_FALSE(sim.metrics().traffic().contains(BrokerId{2}));
}

TEST(Simulation, CbcProfilesFillDuringRun) {
  TestNet net(2);
  net.add_publisher("YHOO", 0);
  const SubId sub = net.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation sim = net.make();
  sim.run(10.0);
  const BrokerInfo info = sim.broker_info(BrokerId{1});
  ASSERT_EQ(info.subscriptions.size(), 1u);
  EXPECT_EQ(info.subscriptions[0].id, sub);
  EXPECT_GT(info.subscriptions[0].profile.cardinality(), 50u);
  const BrokerInfo pub_info = sim.broker_info(BrokerId{0});
  ASSERT_EQ(pub_info.publishers.size(), 1u);
  EXPECT_NEAR(pub_info.publishers[0].profile.rate_msg_s, 10.0, 1.5);
}

TEST(Simulation, RedeployKeepsSequenceNumbers) {
  TestNet net(2);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation sim = net.make();
  sim.run(5.0);
  const auto pubs_before = sim.metrics().publications();
  EXPECT_GT(pubs_before, 0u);

  // Rebuild the same deployment with swapped homes.
  Deployment next = sim.deployment();
  next.publishers[0].home = BrokerId{1};
  next.subscribers[0].home = BrokerId{0};
  sim.redeploy(std::move(next));
  EXPECT_EQ(sim.metrics().publications(), 0u);  // metrics reset
  sim.run(5.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
  // Sequence numbers continued: the subscriber's new profile window anchors
  // past the pre-reconfiguration sequence range.
  const BrokerInfo info = sim.broker_info(BrokerId{0});
  ASSERT_EQ(info.subscriptions.size(), 1u);
  const auto* v = info.subscriptions[0].profile.vector_for(AdvId{0});
  ASSERT_NE(v, nullptr);
  EXPECT_GE(v->first_id(), static_cast<MessageSeq>(pubs_before) - 1);
}

TEST(Simulation, SummaryRatesAreConsistent) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 2);
  Simulation sim = net.make();
  sim.run(10.0);
  const SimSummary s = sim.summarize();
  EXPECT_EQ(s.allocated_brokers, 3u);
  EXPECT_GT(s.system_msg_rate, 0.0);
  EXPECT_NEAR(s.avg_broker_msg_rate * 3.0, s.system_msg_rate, 1e-9);
  EXPECT_GT(s.avg_output_utilization, 0.0);
  EXPECT_LT(s.avg_output_utilization, 1.0);
}

TEST(Simulation, BandwidthThrottlingIncreasesDelay) {
  TestNet fast(2, /*out_bw=*/1.0e5);
  fast.add_publisher("YHOO", 0, 50.0);
  for (int i = 0; i < 20; ++i) fast.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation fast_sim = fast.make();
  fast_sim.run(10.0);

  TestNet slow(2, /*out_bw=*/18.0);  // barely above offered load
  slow.add_publisher("YHOO", 0, 50.0);
  for (int i = 0; i < 20; ++i) slow.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation slow_sim = slow.make();
  slow_sim.run(10.0);

  EXPECT_GT(slow_sim.metrics().avg_delay_ms(), fast_sim.metrics().avg_delay_ms());
}

}  // namespace
}  // namespace greenps
