#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "language/parser.hpp"
#include "sim/event_queue.hpp"
#include "sim/loss_oracle.hpp"
#include "sim/shard_partitioner.hpp"

namespace greenps {
namespace {

// Chain of `n` brokers: 0 - 1 - ... - n-1, one publisher of symbol SYM at
// broker `pub_home`, subscribers as given.
struct TestNet {
  Deployment dep;
  std::uint64_t next_client = 0;
  std::uint64_t next_sub = 0;

  explicit TestNet(std::size_t n, Bandwidth out_bw = 1.0e5) {
    for (std::uint64_t i = 0; i < n; ++i) {
      dep.topology.add_broker(BrokerId{i});
      if (i > 0) dep.topology.add_link(BrokerId{i - 1}, BrokerId{i});
      dep.capacities.emplace(BrokerId{i},
                             BrokerCapacity{out_bw, MatchingDelayFunction{10e-6, 0.5e-6}});
    }
  }

  void add_publisher(const std::string& symbol, std::uint64_t home, MsgRate rate = 10.0) {
    PublisherSpec p;
    p.client = ClientId{next_client++};
    p.adv = AdvId{dep.publishers.size()};
    p.symbol = symbol;
    p.rate_msg_s = rate;
    p.home = BrokerId{home};
    p.adv_filter = parse_filter("[class,=,'STOCK'],[symbol,=,'" + symbol + "']");
    dep.publishers.push_back(std::move(p));
  }

  SubId add_subscriber(const std::string& filter, std::uint64_t home) {
    SubscriberSpec s;
    s.client = ClientId{next_client++};
    s.sub = SubId{next_sub++};
    s.filter = parse_filter(filter);
    s.home = BrokerId{home};
    dep.subscribers.push_back(s);
    return s.sub;
  }

  Simulation make(SimOptions opts = {}) {
    return Simulation(std::move(dep),
                      StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(99)),
                      NetworkConfig{}, opts);
  }
};

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(10, [&] { order.push_back(2); });
  q.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&] {
    ++fired;
    q.schedule(q.now() + 1, [&] { ++fired; });
  });
  q.run_until(10);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(5, [&] { ++fired; });
  q.schedule(50, [&] { ++fired; });
  EXPECT_EQ(q.run_until(10), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.empty());
}

TEST(Simulation, DeliversAllMatchingPublications) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[class,=,'STOCK'],[symbol,=,'YHOO']", 2);  // matches everything
  Simulation sim = net.make();
  sim.run(10.0);
  const auto& m = sim.metrics();
  EXPECT_NEAR(static_cast<double>(m.publications()), 100.0, 2.0);
  // Every publication reaches the subscriber (a few may be in flight at the
  // horizon).
  EXPECT_GE(m.deliveries() + 3, m.publications());
  EXPECT_LE(m.deliveries(), m.publications());
}

TEST(Simulation, NoFalsePositiveDeliveries) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[class,=,'STOCK'],[symbol,=,'GOOG']", 2);  // matches nothing
  Simulation sim = net.make();
  sim.run(5.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
  EXPECT_EQ(sim.metrics().deliveries(), 0u);
}

TEST(Simulation, SelectiveFilterDeliversFraction) {
  TestNet net(2);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,1000000]", 1);
  Simulation sim = net.make();
  sim.run(30.0);
  const auto& m = sim.metrics();
  // volume is uniform on [1e3, 2e6]: roughly half the quotes match.
  const double frac = static_cast<double>(m.deliveries()) /
                      static_cast<double>(m.publications());
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);
}

TEST(Simulation, HopCountMatchesTopologyDistance) {
  TestNet net(4);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 3);  // 4 brokers on the path
  Simulation sim = net.make();
  sim.run(5.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
  EXPECT_DOUBLE_EQ(sim.metrics().avg_hops(), 4.0);
  EXPECT_GT(sim.metrics().avg_delay_ms(), 0.0);
}

TEST(Simulation, PureForwarderProcessesButDeliversNothing) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 2);
  Simulation sim = net.make();
  sim.run(5.0);
  const auto& traffic = sim.metrics().traffic();
  const auto mid = traffic.find(BrokerId{1});
  ASSERT_NE(mid, traffic.end());
  EXPECT_GT(mid->second.msgs_in, 0u);
  EXPECT_GT(mid->second.msgs_out, 0u);
  EXPECT_EQ(mid->second.local_deliveries, 0u);
  const SimSummary s = sim.summarize();
  EXPECT_EQ(s.pure_forwarding_brokers, 1u);
}

TEST(Simulation, PublicationsStopAtUnmatchedBranches) {
  // Star: pub at center 0; subscriber for YHOO at 1; broker 2 must see no
  // traffic (filter-based routing, not flooding).
  TestNet net(1);
  net.dep.topology.add_link(BrokerId{0}, BrokerId{1});
  net.dep.topology.add_link(BrokerId{0}, BrokerId{2});
  for (std::uint64_t i = 1; i <= 2; ++i) {
    net.dep.capacities.emplace(BrokerId{i},
                               BrokerCapacity{1.0e5, MatchingDelayFunction{10e-6, 0.5e-6}});
  }
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation sim = net.make();
  sim.run(5.0);
  EXPECT_FALSE(sim.metrics().traffic().contains(BrokerId{2}));
}

TEST(Simulation, CbcProfilesFillDuringRun) {
  TestNet net(2);
  net.add_publisher("YHOO", 0);
  const SubId sub = net.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation sim = net.make();
  sim.run(10.0);
  const BrokerInfo info = sim.broker_info(BrokerId{1});
  ASSERT_EQ(info.subscriptions.size(), 1u);
  EXPECT_EQ(info.subscriptions[0].id, sub);
  EXPECT_GT(info.subscriptions[0].profile.cardinality(), 50u);
  const BrokerInfo pub_info = sim.broker_info(BrokerId{0});
  ASSERT_EQ(pub_info.publishers.size(), 1u);
  EXPECT_NEAR(pub_info.publishers[0].profile.rate_msg_s, 10.0, 1.5);
}

TEST(Simulation, RedeployKeepsSequenceNumbers) {
  TestNet net(2);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation sim = net.make();
  sim.run(5.0);
  const auto pubs_before = sim.metrics().publications();
  EXPECT_GT(pubs_before, 0u);

  // Rebuild the same deployment with swapped homes.
  Deployment next = sim.deployment();
  next.publishers[0].home = BrokerId{1};
  next.subscribers[0].home = BrokerId{0};
  sim.redeploy(std::move(next));
  EXPECT_EQ(sim.metrics().publications(), 0u);  // metrics reset
  sim.run(5.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
  // Sequence numbers continued: the subscriber's new profile window anchors
  // past the pre-reconfiguration sequence range.
  const BrokerInfo info = sim.broker_info(BrokerId{0});
  ASSERT_EQ(info.subscriptions.size(), 1u);
  const auto* v = info.subscriptions[0].profile.vector_for(AdvId{0});
  ASSERT_NE(v, nullptr);
  EXPECT_GE(v->first_id(), static_cast<MessageSeq>(pubs_before) - 1);
}

TEST(Simulation, SummaryRatesAreConsistent) {
  TestNet net(3);
  net.add_publisher("YHOO", 0);
  net.add_subscriber("[symbol,=,'YHOO']", 2);
  Simulation sim = net.make();
  sim.run(10.0);
  const SimSummary s = sim.summarize();
  EXPECT_EQ(s.allocated_brokers, 3u);
  EXPECT_GT(s.system_msg_rate, 0.0);
  EXPECT_NEAR(s.avg_broker_msg_rate * 3.0, s.system_msg_rate, 1e-9);
  EXPECT_GT(s.avg_output_utilization, 0.0);
  EXPECT_LT(s.avg_output_utilization, 1.0);
}

TEST(EventQueue, KeyedTiesOrderByKey) {
  EventQueue q;
  std::vector<int> order;
  // Legacy insertion-keyed events carry the highest class, so they fire
  // after every content-keyed event at the same timestamp.
  q.schedule(10, [&] { order.push_back(9); });
  q.schedule_keyed(10, EventKey{(2ull << 56) | 3, 5}, [&] { order.push_back(3); });
  q.schedule_keyed(10, EventKey{(1ull << 56) | 7, 0}, [&] { order.push_back(1); });
  q.schedule_keyed(10, EventKey{(2ull << 56) | 3, 1}, [&] { order.push_back(2); });
  q.schedule_keyed(5, EventKey{(2ull << 56) | 9, 0}, [&] { order.push_back(0); });
  q.run_until(10);
  // Time first, then (hi, lo) — regardless of insertion order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 9}));
}

TEST(ShardPartitioner, PathGraphCutsAreMinimal) {
  Topology t;
  for (std::uint64_t i = 0; i < 16; ++i) {
    t.add_broker(BrokerId{i});
    if (i > 0) t.add_link(BrokerId{i - 1}, BrokerId{i});
  }
  const ShardPlan plan = partition_brokers(t, {}, 4);
  ASSERT_EQ(plan.shards.size(), 4u);
  // A path cut into 4 contiguous blocks has exactly 3 cross links (optimal),
  // and uniform weights split 16 brokers evenly.
  EXPECT_EQ(plan.cross_links, 3u);
  std::size_t total = 0;
  for (const auto& shard : plan.shards) {
    EXPECT_EQ(shard.size(), 4u);
    total += shard.size();
  }
  EXPECT_EQ(total, 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_LT(plan.shard_of(BrokerId{i}), 4u);
  }
}

TEST(ShardPartitioner, BalancesByClientWeight) {
  Topology t;
  for (std::uint64_t i = 0; i < 8; ++i) {
    t.add_broker(BrokerId{i});
    if (i > 0) t.add_link(BrokerId{i - 1}, BrokerId{i});
  }
  // Broker 0 hosts 6 clients (weight 7); the other seven weigh 1 each.
  // Total weight 14, two shards, target 7: the heavy broker fills shard 0
  // alone instead of dragging half the chain with it.
  const ShardPlan plan = partition_brokers(t, {{BrokerId{0}, 6}}, 2);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0], (std::vector<BrokerId>{BrokerId{0}}));
  EXPECT_EQ(plan.shards[1].size(), 7u);
  EXPECT_EQ(plan.cross_links, 1u);
}

TEST(ShardPartitioner, ClampsAndStaysDeterministic) {
  Topology t;
  for (std::uint64_t i = 0; i < 3; ++i) {
    t.add_broker(BrokerId{i});
    if (i > 0) t.add_link(BrokerId{i - 1}, BrokerId{i});
  }
  const ShardPlan a = partition_brokers(t, {}, 8);  // clamped to broker count
  ASSERT_EQ(a.shards.size(), 3u);
  for (const auto& shard : a.shards) EXPECT_EQ(shard.size(), 1u);
  const ShardPlan b = partition_brokers(t, {}, 8);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.cross_links, b.cross_links);
}

TEST(SimOptionsTest, ResolveWorkersReadsEnvironment) {
  ASSERT_EQ(setenv("GREENPS_SIM_WORKERS", "6", 1), 0);
  EXPECT_EQ(SimOptions::resolve_workers(0), 6u);
  EXPECT_EQ(SimOptions::resolve_workers(3), 3u);  // explicit request wins
  ASSERT_EQ(unsetenv("GREENPS_SIM_WORKERS"), 0);
  EXPECT_EQ(SimOptions::resolve_workers(0), 1u);  // default: single-threaded
}

// --- sharded-simulator determinism matrix -------------------------------
//
// The contract under test: SimSummary (and every counter feeding it) is
// bit-identical — exact double equality, no tolerance — for any worker
// count, with and without an armed fault schedule.

struct RunArtifacts {
  SimSummary summary;
  FaultStats faults;
  std::unordered_map<BrokerId, BrokerTraffic> traffic;
  std::size_t events = 0;
  std::size_t shards = 0;
  std::size_t ledger_rows = 0;
};

void expect_identical(const RunArtifacts& base, const RunArtifacts& got) {
  const SimSummary& a = base.summary;
  const SimSummary& b = got.summary;
  EXPECT_EQ(b.duration_s, a.duration_s);
  EXPECT_EQ(b.brokers_with_traffic, a.brokers_with_traffic);
  EXPECT_EQ(b.allocated_brokers, a.allocated_brokers);
  EXPECT_EQ(b.publications, a.publications);
  EXPECT_EQ(b.deliveries, a.deliveries);
  EXPECT_EQ(b.broker_msgs_total, a.broker_msgs_total);
  EXPECT_EQ(b.avg_broker_msg_rate, a.avg_broker_msg_rate);
  EXPECT_EQ(b.system_msg_rate, a.system_msg_rate);
  EXPECT_EQ(b.avg_hop_count, a.avg_hop_count);
  EXPECT_EQ(b.avg_delivery_delay_ms, a.avg_delivery_delay_ms);
  EXPECT_EQ(b.p50_delivery_delay_ms, a.p50_delivery_delay_ms);
  EXPECT_EQ(b.p99_delivery_delay_ms, a.p99_delivery_delay_ms);
  EXPECT_EQ(b.avg_output_utilization, a.avg_output_utilization);
  EXPECT_EQ(b.pure_forwarding_brokers, a.pure_forwarding_brokers);
  EXPECT_EQ(b.retransmit_overflow, a.retransmit_overflow);

  const FaultStats& fa = base.faults;
  const FaultStats& fb = got.faults;
  EXPECT_EQ(fb.crashes, fa.crashes);
  EXPECT_EQ(fb.restarts, fa.restarts);
  EXPECT_EQ(fb.link_downs, fa.link_downs);
  EXPECT_EQ(fb.link_ups, fa.link_ups);
  EXPECT_EQ(fb.pubs_dropped_at_source, fa.pubs_dropped_at_source);
  EXPECT_EQ(fb.arrivals_dropped, fa.arrivals_dropped);
  EXPECT_EQ(fb.deliveries_dropped, fa.deliveries_dropped);
  EXPECT_EQ(fb.msgs_dropped_link_down, fa.msgs_dropped_link_down);
  EXPECT_EQ(fb.msgs_dropped_random, fa.msgs_dropped_random);
  EXPECT_EQ(fb.retransmits_replayed, fa.retransmits_replayed);
  EXPECT_EQ(fb.retransmit_overflow, fa.retransmit_overflow);

  EXPECT_EQ(got.events, base.events);
  EXPECT_EQ(got.ledger_rows, base.ledger_rows);
  ASSERT_EQ(got.traffic.size(), base.traffic.size());
  for (const auto& [id, ta] : base.traffic) {
    const auto it = got.traffic.find(id);
    ASSERT_NE(it, got.traffic.end()) << "broker " << id.value();
    EXPECT_EQ(it->second.msgs_in, ta.msgs_in) << "broker " << id.value();
    EXPECT_EQ(it->second.msgs_out, ta.msgs_out) << "broker " << id.value();
    EXPECT_EQ(it->second.local_deliveries, ta.local_deliveries) << "broker " << id.value();
    EXPECT_EQ(it->second.hop_total, ta.hop_total) << "broker " << id.value();
    EXPECT_EQ(it->second.delay_total_s, ta.delay_total_s) << "broker " << id.value();
  }
}

RunArtifacts capture(const Simulation& sim) {
  RunArtifacts a;
  a.summary = sim.summarize();
  a.faults = sim.fault_state().stats();
  a.traffic = sim.metrics().traffic();
  a.events = sim.events_executed();
  a.shards = sim.shard_count();
  a.ledger_rows = sim.publish_ledger().size();
  return a;
}

// Fanout-3 tree of `n` brokers with a seed-scrambled mix of publishers
// (distinct symbols, mixed rates) and subscribers (exact and range filters).
TestNet matrix_net(std::size_t n, std::uint64_t seed) {
  TestNet net(1);
  for (std::uint64_t i = 1; i < n; ++i) {
    net.dep.topology.add_link(BrokerId{(i - 1) / 3}, BrokerId{i});
    net.dep.capacities.emplace(BrokerId{i},
                               BrokerCapacity{1.0e5, MatchingDelayFunction{10e-6, 0.5e-6}});
  }
  Rng rng(seed);
  const char* symbols[] = {"AAA", "BBB", "CCC", "DDD"};
  const double rates[] = {40.0, 25.0, 15.0, 10.0};
  for (std::size_t i = 0; i < 4; ++i) {
    net.add_publisher(symbols[i], rng.index(n), rates[i]);
  }
  // Two guaranteed-match subscribers, then a scrambled tail.
  net.add_subscriber("[symbol,=,'AAA']", rng.index(n));
  net.add_subscriber("[symbol,=,'BBB']", rng.index(n));
  for (std::size_t k = 0; k < 10; ++k) {
    const std::string symbol = symbols[rng.index(4)];
    std::string filter = "[symbol,=,'" + symbol + "']";
    switch (rng.index(3)) {
      case 1: filter += ",[volume,>,1000000]"; break;
      case 2: filter += ",[volume,<,800000]"; break;
      default: break;
    }
    net.add_subscriber(filter, rng.index(n));
  }
  return net;
}

RunArtifacts run_matrix_case(std::uint64_t seed, std::size_t workers, bool faulted) {
  TestNet net = matrix_net(13, seed);
  Simulation sim = net.make(SimOptions{.workers = workers});
  if (faulted) {
    FaultSchedule fs;
    fs.link_drop(seconds(1.0), BrokerId{0}, BrokerId{1}, 0.2);
    fs.outage(seconds(2.0), seconds(1.5), BrokerId{4});
    fs.latency_spike(seconds(3.0), seconds(0.002));
    fs.latency_spike(seconds(4.5), 0);
    fs.link_drop(seconds(5.0), BrokerId{0}, BrokerId{1}, 0.0);
    FaultOptions fo;
    fo.retransmit_on_reconnect = true;
    sim.install_faults(std::move(fs), fo);
  }
  // Two run segments: the second re-enters the window loop with non-empty
  // queues and a mid-stream clock, like every profile/measure bench does.
  sim.run(3.0);
  sim.run(3.0);
  return capture(sim);
}

TEST(ShardedSim, SummaryBitIdenticalAcrossWorkerCounts) {
  for (const std::uint64_t seed : {7ull, 21ull}) {
    for (const bool faulted : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " faulted=" << faulted);
      const RunArtifacts base = run_matrix_case(seed, 1, faulted);
      ASSERT_EQ(base.shards, 1u);
      ASSERT_GT(base.summary.deliveries, 0u);
      if (faulted) {
        ASSERT_GT(base.faults.crashes, 0u);
      }
      for (const std::size_t w : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        SCOPED_TRACE(::testing::Message() << "workers=" << w);
        const RunArtifacts got = run_matrix_case(seed, w, faulted);
        EXPECT_EQ(got.shards, w);
        expect_identical(base, got);
      }
    }
  }
}

TEST(ShardedSim, PathGraphCrossShardHeavyMatchesSingleThread) {
  // Chain with traffic pinned to the far ends: nearly every hop of every
  // publication crosses a shard boundary when the chain is cut into 4.
  const auto build = [] {
    TestNet net(12);
    net.add_publisher("AAA", 0, 40.0);
    net.add_publisher("BBB", 11, 25.0);
    net.add_subscriber("[symbol,=,'AAA']", 11);
    net.add_subscriber("[symbol,=,'BBB']", 0);
    net.add_subscriber("[symbol,=,'AAA'],[volume,>,1000000]", 6);
    return net;
  };
  TestNet n1 = build();
  TestNet n4 = build();
  Simulation s1 = n1.make(SimOptions{.workers = 1});
  Simulation s4 = n4.make(SimOptions{.workers = 4});
  EXPECT_EQ(s4.shard_count(), 4u);
  s1.run(8.0);
  s4.run(8.0);
  const RunArtifacts base = capture(s1);
  ASSERT_GT(base.summary.deliveries, 0u);
  EXPECT_GT(base.summary.avg_hop_count, 5.0);  // end-to-end traffic dominates
  expect_identical(base, capture(s4));
}

TEST(ShardedSim, CrashStraddlingWindowsReplaysIdentically) {
  // One outage in the middle of the chain. At 50 msg/s the 1.5 s outage
  // spans thousands of conservative lookahead windows, so crash, buffering
  // and restart-replay all land mid-window-loop on the sharded path.
  const auto run_one = [](std::size_t workers, RunArtifacts* out, std::uint64_t* replayed,
                          LossAudit* audit) {
    TestNet net(8);
    net.add_publisher("AAA", 0, 50.0);
    net.add_subscriber("[symbol,=,'AAA']", 7);
    net.add_subscriber("[symbol,=,'AAA']", 4);
    Simulation sim = net.make(SimOptions{.workers = workers});
    FaultSchedule fs;
    fs.outage(seconds(2.0), seconds(1.5), BrokerId{3});
    FaultOptions fo;
    fo.retransmit_on_reconnect = true;
    sim.install_faults(std::move(fs), fo);
    sim.run(8.0);
    *out = capture(sim);
    *replayed = sim.fault_state().stats().retransmits_replayed;
    *audit = audit_losses(sim, StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(99)));
  };
  RunArtifacts base, got;
  std::uint64_t replayed1 = 0;
  std::uint64_t replayed4 = 0;
  LossAudit audit1, audit4;
  run_one(1, &base, &replayed1, &audit1);
  run_one(4, &got, &replayed4, &audit4);
  EXPECT_EQ(got.shards, 4u);
  EXPECT_GT(replayed1, 0u);  // the outage actually buffered and replayed
  expect_identical(base, got);
  // Store-and-forward across the outage: the oracle finds no real loss on
  // either path.
  EXPECT_TRUE(audit1.clean()) << audit1.real_losses.size() << " real losses (1 worker)";
  EXPECT_TRUE(audit4.clean()) << audit4.real_losses.size() << " real losses (4 workers)";
  EXPECT_EQ(audit4.expected, audit1.expected);
  EXPECT_EQ(audit4.excused, audit1.excused);
}

TEST(ShardedSim, SharedSymbolForcesSingleShard) {
  TestNet net(6);
  net.add_publisher("AAA", 0);
  net.add_publisher("AAA", 5);  // one shared price walk: unshardable
  net.add_subscriber("[symbol,=,'AAA']", 3);
  Simulation sim = net.make(SimOptions{.workers = 4});
  EXPECT_EQ(sim.shard_count(), 1u);
}

TEST(ShardedSim, WorkerCountClampsToBrokerCount) {
  TestNet net(2);
  net.add_publisher("AAA", 0);
  net.add_subscriber("[symbol,=,'AAA']", 1);
  Simulation sim = net.make(SimOptions{.workers = 8});
  EXPECT_EQ(sim.shard_count(), 2u);
  sim.run(2.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
}

// --- derived retransmit caps --------------------------------------------

TEST(Simulation, RetransmitCapDerivedFromProfiledRate) {
  TestNet net(2);
  net.add_publisher("AAA", 0, 200.0);
  net.add_subscriber("[symbol,=,'AAA']", 1);
  Simulation sim = net.make();
  sim.run(10.0);
  const BrokerTraffic t1 = sim.metrics().traffic().at(BrokerId{1});
  const BrokerTraffic t0 = sim.metrics().traffic().at(BrokerId{0});
  const double measured = sim.measured_seconds();
  sim.reset_metrics();  // snapshots the profiled rates for the next epoch

  FaultOptions fo;
  fo.retransmit_on_reconnect = true;
  fo.expected_outage_s = 2.0;  // headroom defaults to 2.0
  sim.install_faults(FaultSchedule{}, fo);

  // Broker 1 (forwarding + delivering, ~400 msg/s): cap = ceil(rate * 2 s
  // * 2.0 headroom), above the 1024 floor.
  const double rate1 =
      static_cast<double>(t1.msgs_in + t1.local_deliveries) / measured;
  const auto expected1 = static_cast<std::size_t>(std::ceil(rate1 * 2.0 * 2.0));
  ASSERT_GT(expected1, 1024u);
  EXPECT_EQ(sim.retransmit_cap(BrokerId{1}), expected1);

  // Broker 0 (~200 msg/s, no local deliveries): the derived cap falls below
  // the floor and clamps to 1024.
  const double rate0 =
      static_cast<double>(t0.msgs_in + t0.local_deliveries) / measured;
  ASSERT_LT(rate0 * 2.0 * 2.0, 1024.0);
  EXPECT_EQ(sim.retransmit_cap(BrokerId{0}), 1024u);
}

TEST(Simulation, RetransmitCapFallsBackWithoutProfile) {
  TestNet net(2);
  net.add_publisher("AAA", 0);
  net.add_subscriber("[symbol,=,'AAA']", 1);
  Simulation sim = net.make();
  // No run yet: no profiled rates, so every broker gets the historical flat
  // default.
  sim.install_faults(FaultSchedule{}, FaultOptions{});
  EXPECT_EQ(sim.retransmit_cap(BrokerId{0}), 65536u);
  EXPECT_EQ(sim.retransmit_cap(BrokerId{1}), 65536u);

  // An explicit nonzero cap bypasses derivation entirely.
  FaultOptions flat;
  flat.max_retransmit_buffer = 4096;
  sim.install_faults(FaultSchedule{}, flat);
  EXPECT_EQ(sim.retransmit_cap(BrokerId{0}), 4096u);
  EXPECT_EQ(sim.retransmit_cap(BrokerId{1}), 4096u);
}

TEST(Simulation, RetransmitOverflowSurfacesInSummary) {
  TestNet net(3);
  net.add_publisher("AAA", 0, 100.0);
  net.add_subscriber("[symbol,=,'AAA']", 2);
  Simulation sim = net.make();
  FaultSchedule fs;
  fs.outage(seconds(1.0), seconds(3.0), BrokerId{2});
  FaultOptions fo;
  fo.retransmit_on_reconnect = true;
  fo.max_retransmit_buffer = 5;  // ~300 arrivals during the outage: overflows
  sim.install_faults(std::move(fs), fo);
  sim.run(6.0);
  const SimSummary s = sim.summarize();
  EXPECT_GT(s.retransmit_overflow, 0u);
  EXPECT_EQ(s.retransmit_overflow, sim.fault_state().stats().retransmit_overflow);
}

TEST(Simulation, BandwidthThrottlingIncreasesDelay) {
  TestNet fast(2, /*out_bw=*/1.0e5);
  fast.add_publisher("YHOO", 0, 50.0);
  for (int i = 0; i < 20; ++i) fast.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation fast_sim = fast.make();
  fast_sim.run(10.0);

  TestNet slow(2, /*out_bw=*/18.0);  // barely above offered load
  slow.add_publisher("YHOO", 0, 50.0);
  for (int i = 0; i < 20; ++i) slow.add_subscriber("[symbol,=,'YHOO']", 1);
  Simulation slow_sim = slow.make();
  slow_sim.run(10.0);

  EXPECT_GT(slow_sim.metrics().avg_delay_ms(), fast_sim.metrics().avg_delay_ms());
}

}  // namespace
}  // namespace greenps
