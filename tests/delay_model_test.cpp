#include "matching/delay_model.hpp"

#include <gtest/gtest.h>

namespace greenps {
namespace {

TEST(DelayModel, LinearInSubscriptions) {
  const MatchingDelayFunction f{10e-6, 1e-6};
  EXPECT_DOUBLE_EQ(f.delay_s(0), 10e-6);
  EXPECT_DOUBLE_EQ(f.delay_s(100), 110e-6);
}

TEST(DelayModel, MaxMatchingRateIsInverseDelay) {
  const MatchingDelayFunction f{10e-6, 1e-6};
  EXPECT_DOUBLE_EQ(f.max_matching_rate(0), 1.0 / 10e-6);
  EXPECT_DOUBLE_EQ(f.max_matching_rate(90), 1.0 / 100e-6);
  // More subscriptions => lower ceiling.
  EXPECT_LT(f.max_matching_rate(1000), f.max_matching_rate(10));
}

TEST(DelayModel, FitRecoversLine) {
  const MatchingDelayFunction truth{20e-6, 0.5e-6};
  const auto fitted = fit_delay_function(100, truth.delay_s(100), 1000, truth.delay_s(1000));
  EXPECT_NEAR(fitted.base_s, truth.base_s, 1e-12);
  EXPECT_NEAR(fitted.per_sub_s, truth.per_sub_s, 1e-15);
}

TEST(DelayModel, FitClampsDegenerateSamples) {
  // Noisy samples implying negative base/slope are clamped to a valid model.
  const auto fitted = fit_delay_function(10, 5e-6, 20, 4e-6);
  EXPECT_GT(fitted.base_s, 0.0);
  EXPECT_GE(fitted.per_sub_s, 0.0);
  EXPECT_GT(fitted.max_matching_rate(50), 0.0);
}

}  // namespace
}  // namespace greenps
