#include "croc/info_gathering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "overlay/topology_builder.hpp"

namespace greenps {
namespace {

BrokerInfo fake_info(BrokerId b) {
  BrokerInfo info;
  info.id = b;
  info.total_out_bw = 100.0 + static_cast<double>(b.value());
  // One local subscription and publisher per broker, tagged by id.
  LocalSubscriptionInfo s;
  s.id = SubId{b.value()};
  s.client = ClientId{b.value()};
  s.profile = SubscriptionProfile(64);
  info.subscriptions.push_back(std::move(s));
  LocalPublisherInfo p;
  p.client = ClientId{1000 + b.value()};
  p.profile = PublisherProfile{AdvId{b.value()}, 1.0, 2.0, 10};
  info.publishers.push_back(std::move(p));
  return info;
}

std::vector<BrokerId> ids(std::size_t n) {
  std::vector<BrokerId> v;
  for (std::size_t i = 0; i < n; ++i) v.emplace_back(i);
  return v;
}

TEST(InfoGathering, CollectsEveryBrokerOnce) {
  const Topology t = build_manual_tree(ids(15), 2);
  const GatheredInfo info = gather_information(t, BrokerId{7}, fake_info);
  EXPECT_EQ(info.brokers.size(), 15u);
  std::set<BrokerId> seen;
  for (const auto& b : info.brokers) seen.insert(b.id);
  EXPECT_EQ(seen.size(), 15u);
  EXPECT_EQ(info.stats.brokers_answered, 15u);
}

TEST(InfoGathering, MessageCountsMatchProtocol) {
  // On a tree: one BIR per link plus CROC's, one aggregated BIA per link
  // plus the final reply to CROC.
  const Topology t = build_manual_tree(ids(9), 2);
  const GatheredInfo info = gather_information(t, BrokerId{0}, fake_info);
  EXPECT_EQ(info.stats.bir_messages, 8u + 1u);
  EXPECT_EQ(info.stats.bia_messages, 8u + 1u);
}

TEST(InfoGathering, SingleBrokerOverlay) {
  Topology t;
  t.add_broker(BrokerId{0});
  const GatheredInfo info = gather_information(t, BrokerId{0}, fake_info);
  EXPECT_EQ(info.brokers.size(), 1u);
  EXPECT_EQ(info.stats.bir_messages, 1u);
  EXPECT_EQ(info.stats.bia_messages, 1u);
}

TEST(InfoGathering, FlattensSubscriptionsAndPublishers) {
  const Topology t = build_manual_tree(ids(5), 2);
  const GatheredInfo info = gather_information(t, BrokerId{2}, fake_info);
  EXPECT_EQ(info.subscriptions.size(), 5u);
  EXPECT_EQ(info.publishers.size(), 5u);
  EXPECT_EQ(info.publisher_table.size(), 5u);
  // Home brokers recorded correctly.
  for (const auto& rec : info.subscriptions) {
    EXPECT_EQ(rec.home.value(), rec.info.id.value());
  }
  EXPECT_EQ(info.publisher_table.at(AdvId{3}).bw_kb_s, 2.0);
}

TEST(InfoGathering, WorksOnRandomTrees) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const Topology t = build_random_tree(ids(30), rng);
    const GatheredInfo info =
        gather_information(t, BrokerId{static_cast<std::uint64_t>(trial)}, fake_info);
    EXPECT_EQ(info.brokers.size(), 30u);
  }
}

TEST(InfoGathering, ToleratesCycles) {
  Topology t = build_manual_tree(ids(6), 2);
  t.add_link(BrokerId{4}, BrokerId{5});  // extra edge forms a cycle
  const GatheredInfo info = gather_information(t, BrokerId{0}, fake_info);
  EXPECT_EQ(info.brokers.size(), 6u);  // every broker still answers once
}

}  // namespace
}  // namespace greenps
