#include "overlay/topology.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "overlay/topology_builder.hpp"

namespace greenps {
namespace {

std::vector<BrokerId> ids(std::size_t n) {
  std::vector<BrokerId> v;
  for (std::size_t i = 0; i < n; ++i) v.emplace_back(i);
  return v;
}

TEST(Topology, AddRemoveLinks) {
  Topology t;
  t.add_link(BrokerId{0}, BrokerId{1});
  t.add_link(BrokerId{1}, BrokerId{2});
  EXPECT_TRUE(t.has_link(BrokerId{0}, BrokerId{1}));
  EXPECT_TRUE(t.has_link(BrokerId{1}, BrokerId{0}));
  EXPECT_EQ(t.link_count(), 2u);
  t.add_link(BrokerId{0}, BrokerId{1});  // duplicate ignored
  EXPECT_EQ(t.link_count(), 2u);
  t.remove_link(BrokerId{0}, BrokerId{1});
  EXPECT_FALSE(t.has_link(BrokerId{0}, BrokerId{1}));
  EXPECT_EQ(t.link_count(), 1u);
}

TEST(Topology, RemoveBrokerDropsItsLinks) {
  Topology t;
  t.add_link(BrokerId{0}, BrokerId{1});
  t.add_link(BrokerId{1}, BrokerId{2});
  t.remove_broker(BrokerId{1});
  EXPECT_FALSE(t.has_broker(BrokerId{1}));
  EXPECT_EQ(t.link_count(), 0u);
  EXPECT_TRUE(t.neighbors(BrokerId{0}).empty());
}

TEST(Topology, TreeDetection) {
  Topology t;
  t.add_link(BrokerId{0}, BrokerId{1});
  t.add_link(BrokerId{0}, BrokerId{2});
  EXPECT_TRUE(t.is_tree());
  t.add_link(BrokerId{1}, BrokerId{2});  // cycle
  EXPECT_FALSE(t.is_tree());
  EXPECT_TRUE(t.connected());
}

TEST(Topology, DisconnectedIsNotTree) {
  Topology t;
  t.add_link(BrokerId{0}, BrokerId{1});
  t.add_broker(BrokerId{5});
  EXPECT_FALSE(t.connected());
  EXPECT_FALSE(t.is_tree());
}

TEST(Topology, DistancesAndPath) {
  // 0 - 1 - 2 - 3 chain
  Topology t;
  for (std::uint64_t i = 0; i + 1 < 4; ++i) t.add_link(BrokerId{i}, BrokerId{i + 1});
  const auto dist = t.distances_from(BrokerId{0});
  EXPECT_EQ(dist.at(BrokerId{3}), 3);
  const auto path = t.path(BrokerId{0}, BrokerId{3});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);
  EXPECT_EQ(path->front(), BrokerId{0});
  EXPECT_EQ(path->back(), BrokerId{3});
  EXPECT_FALSE(t.path(BrokerId{0}, BrokerId{9}).has_value());
}

TEST(TopologyBuilder, ManualTreeHasFanout2) {
  const Topology t = build_manual_tree(ids(7), 2);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.broker_count(), 7u);
  // Root (broker 0) has exactly 2 children; interior nodes at most 3 links.
  EXPECT_EQ(t.neighbors(BrokerId{0}).size(), 2u);
  for (const BrokerId b : t.brokers()) {
    EXPECT_LE(t.neighbors(b).size(), 3u);
  }
  // Balanced: depth of broker 6 is 2.
  EXPECT_EQ(t.distances_from(BrokerId{0}).at(BrokerId{6}), 2);
}

TEST(TopologyBuilder, ManualTreeSingleBroker) {
  const Topology t = build_manual_tree(ids(1), 2);
  EXPECT_EQ(t.broker_count(), 1u);
  EXPECT_TRUE(t.is_tree());
}

TEST(TopologyBuilder, RandomTreeIsTree) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = build_random_tree(ids(40), rng);
    EXPECT_TRUE(t.is_tree());
    EXPECT_EQ(t.broker_count(), 40u);
  }
}

TEST(TopologyBuilder, StarTopology) {
  const Topology t = build_star(BrokerId{9}, ids(5));
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.neighbors(BrokerId{9}).size(), 5u);
}

}  // namespace
}  // namespace greenps
