// Observability subsystem tests: metrics registry and log-histogram math,
// run-report JSON structure, time-series sampler CSV, the span tracer's
// Chrome trace-event output (golden-structure over a tiny CROC run), and
// thread-pool span attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "croc/croc.hpp"
#include "sim/metrics.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

// ---- minimal JSON checks ----
//
// A full parser is overkill: the golden tests assert structural invariants
// (balanced braces/brackets outside strings, expected keys present, every
// event object well-formed) that a hand-rolled scan verifies reliably on
// the writer's known output shape.

bool json_balanced(const std::string& s) {
  int depth_obj = 0, depth_arr = 0;
  bool in_str = false, esc = false;
  for (const char c : s) {
    if (esc) {
      esc = false;
      continue;
    }
    if (in_str) {
      if (c == '\\') esc = true;
      if (c == '"') in_str = false;
      continue;
    }
    switch (c) {
      case '"': in_str = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    if (depth_obj < 0 || depth_arr < 0) return false;
  }
  return depth_obj == 0 && depth_arr == 0 && !in_str;
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- metrics registry ----

TEST(MetricsRegistry, CounterGaugeIdentityAndSnapshot) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  obs::Counter& c1 = reg.counter("test.widget_count");
  obs::Counter& c2 = reg.counter("test.widget_count");
  EXPECT_EQ(&c1, &c2);  // lookups intern: same name, same object
  c1.add(3);
  c2.add(4);
  EXPECT_EQ(c1.value(), 7u);

  reg.gauge("test.temperature").set(21.5);
  reg.histogram("test.latency").record(5.0);

  const auto snap = reg.snapshot();
  ASSERT_GE(snap.size(), 3u);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(), [](const auto& a, const auto& b) {
    return a.name < b.name;
  }));
  bool saw_counter = false;
  for (const auto& e : snap) {
    if (e.name == "test.widget_count") {
      EXPECT_EQ(e.kind, obs::MetricsRegistry::Entry::Kind::kCounter);
      EXPECT_DOUBLE_EQ(e.value, 7.0);
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  reg.reset();
  EXPECT_EQ(c1.value(), 0u);
}

TEST(LogHistogram, BucketEdgesMatchSpec) {
  // Bucket 0 = [0, first]; bucket i>0 = (first*growth^(i-1), first*growth^i].
  obs::LogHistogram h(100.0, 1.15, 120);
  EXPECT_EQ(h.bucket_for(0.0), 0u);
  EXPECT_EQ(h.bucket_for(100.0), 0u);
  EXPECT_EQ(h.bucket_for(100.0001), 1u);
  EXPECT_EQ(h.bucket_for(114.9), 1u);
  EXPECT_EQ(h.bucket_for(1e18), 119u);  // overflow clamps to last bucket
}

TEST(LogHistogram, PercentileTracksExactOracle) {
  // Log-bucketed percentiles approximate the exact ones within the bucket
  // width: the reported midpoint must be within one growth factor of the
  // true order statistic.
  obs::LogHistogram h(100.0, 1.15, 120);
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(8.0, 1.2);  // heavy-tailed, like delays
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    exact.push_back(v);
    h.record(v);
  }
  std::sort(exact.begin(), exact.end());
  for (const double q : {0.50, 0.90, 0.99}) {
    const double oracle = exact[static_cast<std::size_t>(q * (exact.size() - 1))];
    const double est = h.percentile(q);
    EXPECT_GT(est, oracle / 1.16) << "q=" << q;
    EXPECT_LT(est, oracle * 1.16) << "q=" << q;
  }
  EXPECT_EQ(h.samples(), 20000u);
  EXPECT_NEAR(h.mean(), std::accumulate(exact.begin(), exact.end(), 0.0) / 20000.0, 1e-6);
}

TEST(LogHistogram, MergeAndResetBehave) {
  obs::LogHistogram a(1.0, 1.5, 16);
  obs::LogHistogram b(1.0, 1.5, 16);
  a.record(2.0);
  b.record(8.0);
  b.record(9.0);
  a.merge(b);
  EXPECT_EQ(a.samples(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 19.0);
  a.reset();
  EXPECT_EQ(a.samples(), 0u);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 0.0);
}

// ---- run report ----

TEST(RunReport, RendersHeaderRowsAndMetrics) {
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::global().counter("report.test_counter").add(11);

  obs::RunReport report("unit_test");
  report.header().set_integer("subscriptions", 120).set_bool("full_scale", false);
  report.add_row(obs::JsonObject().set_string("approach", "FBF").set_number("seconds", 0.5));
  report.add_row(obs::JsonObject().set_string("approach", "CRAM\"quoted\""));
  report.add_metrics_snapshot();

  const std::string doc = report.render("results");
  EXPECT_TRUE(json_balanced(doc));
  // Field order: bench first, then header insertion order, rows key last.
  EXPECT_EQ(doc.find("\"bench\":\"unit_test\""), 1u);
  EXPECT_NE(doc.find("\"subscriptions\":120"), std::string::npos);
  EXPECT_NE(doc.find("\"results\":["), std::string::npos);
  EXPECT_NE(doc.find("\"approach\":\"CRAM\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"report.test_counter\":11"), std::string::npos);
  EXPECT_EQ(report.row_count(), 2u);
  EXPECT_LT(doc.find("\"subscriptions\""), doc.find("\"results\""));
}

TEST(RunReport, WritesFileWithTrailingNewline) {
  const std::string path = "obs_report_test.json";
  obs::RunReport report("write_test");
  report.add_row(obs::JsonObject().set_integer("x", 1));
  ASSERT_TRUE(report.write(path, "rows"));
  const std::string content = slurp(path);
  EXPECT_TRUE(json_balanced(content));
  ASSERT_FALSE(content.empty());
  EXPECT_EQ(content.back(), '\n');
  std::remove(path.c_str());
}

TEST(JsonQuote, EscapesControlCharacters) {
  EXPECT_EQ(obs::json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(obs::json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(obs::json_quote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

// ---- sampler ----

TEST(TimeSeriesSampler, RendersCsvWithHeaderAndRows) {
  obs::TimeSeriesSampler s("broker", {"in_rate", "util"});
  s.append(1.0, 7, {3.5, 0.25});
  s.append(2.0, 8, {4.0, 0.5});
  const std::string csv = s.render_csv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "time_s,broker,in_rate,util");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1.000000,7,3.5,0.25");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "2.000000,8,4,0.5");
  EXPECT_FALSE(std::getline(in, line));
  EXPECT_EQ(s.row_count(), 2u);
}

TEST(TimeSeriesSampler, SimulationEmitsSamplesWhenEnabled) {
#if defined(GREENPS_OBS_DISABLE)
  GTEST_SKIP() << "observability compiled out";
#endif
  // The sampler knobs are env-driven and read at Simulation construction.
  ScenarioConfig c;
  c.num_brokers = 6;
  c.num_publishers = 2;
  c.subs_per_publisher = 4;
  c.seed = 5;
  const std::string path = "obs_sampler_test.csv";
  setenv("GREENPS_OBS_SAMPLE_MS", "500", 1);
  setenv("GREENPS_OBS_SAMPLES", path.c_str(), 1);
  {
    Simulation sim = make_simulation(c);
    sim.run(5.0);
  }
  unsetenv("GREENPS_OBS_SAMPLE_MS");
  unsetenv("GREENPS_OBS_SAMPLES");
  const std::string csv = slurp(path);
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(csv.rfind("time_s,broker,", 0), 0u);
  // 5 s at 500 ms => ~10 sampling points x 6 brokers, plus the header.
  const auto lines = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_GE(lines, 1u + 9u * 6u);
  std::remove(path.c_str());
}

TEST(TimeSeriesSampler, DisabledByDefault) {
  EXPECT_EQ(obs::TimeSeriesSampler::interval_us_from_env(), 0);
}

// ---- tracer ----

TEST(Trace, DisabledSpansAreCheap) {
  // Not a benchmark, just a guard against accidental work on the disabled
  // path: a million disabled spans should be effectively free.
  ASSERT_FALSE(obs::trace_enabled());
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    GREENPS_SPAN("noop");
  }
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(secs, 1.0);
}

TEST(Trace, GoldenStructureFromTinyCrocRun) {
#if defined(GREENPS_OBS_DISABLE)
  GTEST_SKIP() << "observability compiled out";
#endif
  const std::string path = "obs_trace_test.trace.json";
  obs::trace_start(path);
  {
    ScenarioConfig c;
    c.num_brokers = 24;
    c.num_publishers = 6;
    c.subs_per_publisher = 20;
    // Tight per-broker bandwidth and a hot publication rate so Phase 2 must
    // allocate several brokers, which in turn makes Phase 3 build at least
    // one recursive layer.
    c.full_out_bw_kb_s = 8.0;
    c.publication_rate = 5.0;
    c.seed = 11;
    Simulation sim = make_simulation(c);
    sim.run(60.0);
    CrocConfig cfg;
    cfg.algorithm = Phase2Algorithm::kCram;
    Croc croc(cfg);
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    ASSERT_TRUE(report.success);
    ASSERT_GT(report.allocated_brokers, 1u);  // guarantees a phase3.layer span
  }
  obs::trace_stop();
  ASSERT_FALSE(obs::trace_enabled());

  const std::string trace = slurp(path);
  ASSERT_FALSE(trace.empty());
  EXPECT_TRUE(json_balanced(trace));
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);

  // The full pipeline must appear: Phase 1 gather, Phase 2 (CRAM inside),
  // Phase 3 with at least one recursive layer, and GRAPE placement.
  for (const char* name :
       {"croc.reconfigure", "croc.phase1.gather", "croc.phase2", "croc.phase3",
        "croc.grape", "cram.run", "cram.pair_search", "phase3.layer", "grape.place",
        "sim.run"}) {
    EXPECT_NE(trace.find(std::string("\"name\":\"") + name + "\""), std::string::npos)
        << "missing span: " << name;
  }
  // Spans nest: croc.reconfigure strictly contains croc.phase1.gather
  // (every event carries ts and dur we can compare).
  const auto extract_first = [&trace](const std::string& name, const char* field) {
    const std::size_t at = trace.find("\"name\":\"" + name + "\"");
    EXPECT_NE(at, std::string::npos);
    const std::size_t obj_end = trace.find('}', at);
    const std::size_t f = trace.find(std::string("\"") + field + "\":", at);
    EXPECT_LT(f, obj_end);
    return std::strtoull(trace.c_str() + f + std::strlen(field) + 3, nullptr, 10);
  };
  const auto outer_ts = extract_first("croc.reconfigure", "ts");
  const auto outer_dur = extract_first("croc.reconfigure", "dur");
  const auto inner_ts = extract_first("croc.phase1.gather", "ts");
  const auto inner_dur = extract_first("croc.phase1.gather", "dur");
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);

  // Every complete event is well-formed (one dur per X event).
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"X\""), count_occurrences(trace, "\"dur\":"));
  std::remove(path.c_str());
}

TEST(Trace, ThreadPoolSpansCarryDistinctThreadsAndTags) {
#if defined(GREENPS_OBS_DISABLE)
  GTEST_SKIP() << "observability compiled out";
#endif
  const std::string path = "obs_pool_test.trace.json";
  obs::trace_start(path);
  {
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sink{0};
    pool.parallel_for_indexed(256, [&](std::size_t i, std::size_t) {
      // Enough work per index that every worker picks up a share.
      std::uint64_t h = i + 1;
      for (int r = 0; r < 20000; ++r) h = h * 6364136223846793005ull + 1442695040888963407ull;
      sink.fetch_add(h, std::memory_order_relaxed);
    });
    ASSERT_NE(sink.load(), 0u);
  }
  obs::trace_stop();

  const std::string trace = slurp(path);
  EXPECT_TRUE(json_balanced(trace));
  // Collect the tids of all pool.work spans; with 4 workers on real work
  // at least two distinct threads must have participated.
  std::set<std::string> tids;
  std::size_t spans = 0;
  for (std::size_t at = trace.find("\"name\":\"pool.work\""); at != std::string::npos;
       at = trace.find("\"name\":\"pool.work\"", at + 1)) {
    ++spans;
    const std::size_t obj_end = trace.find('}', at);
    const std::size_t tid_at = trace.find("\"tid\":", at);
    ASSERT_LT(tid_at, obj_end);
    const std::size_t val = tid_at + 6;
    tids.insert(trace.substr(val, trace.find_first_of(",}", val) - val));
    // The worker slot rides along as args.tag (args follows the outer '}'
    // scan window, so just assert it exists in this object's span).
    EXPECT_NE(trace.find("\"args\":{\"tag\":", at), std::string::npos);
  }
  EXPECT_GE(spans, 2u);
  EXPECT_GE(tids.size(), 2u);
  std::remove(path.c_str());
}

TEST(Trace, CounterAndInstantEventsRender) {
#if defined(GREENPS_OBS_DISABLE)
  GTEST_SKIP() << "observability compiled out";
#endif
  const std::string path = "obs_events_test.trace.json";
  obs::trace_start(path);
  GREENPS_INSTANT("unit.instant");
  GREENPS_COUNTER("unit.counter", 42.5);
  obs::trace_stop();
  const std::string trace = slurp(path);
  EXPECT_TRUE(json_balanced(trace));
  EXPECT_NE(trace.find("\"name\":\"unit.instant\",\"cat\":\"greenps\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"unit.counter\",\"cat\":\"greenps\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"value\":42.5}"), std::string::npos);
  std::remove(path.c_str());
}

// ---- shared clock ----

TEST(ObsClock, SimTimeIsScopedToEventLoop) {
  EXPECT_FALSE(obs::current_sim_time_us().has_value());
  obs::set_sim_time_us(1500000);
  ASSERT_TRUE(obs::current_sim_time_us().has_value());
  EXPECT_EQ(*obs::current_sim_time_us(), 1500000);
  obs::clear_sim_time();
  EXPECT_FALSE(obs::current_sim_time_us().has_value());
}

TEST(ObsClock, WallClockIsMonotonic) {
  const auto a = obs::wall_now_us();
  const auto b = obs::wall_now_us();
  EXPECT_GE(b, a);
}

// The sim DelayHistogram is a wrapper over obs::LogHistogram; its ms
// percentiles must match the generalized histogram's us percentiles.
TEST(DelayHistogramWrapper, MatchesLogHistogram) {
  DelayHistogram wrapped;
  obs::LogHistogram direct(100.0, 1.15, 120);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<SimTime> dist(0, 5000000);
  for (int i = 0; i < 5000; ++i) {
    const SimTime d = dist(rng);
    wrapped.record(d);
    direct.record(static_cast<double>(std::max<SimTime>(d, 1)));
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(wrapped.percentile_ms(q), direct.percentile(q) / 1000.0);
  }
}

}  // namespace
}  // namespace greenps
