#include "language/parser.hpp"

#include <gtest/gtest.h>

namespace greenps {
namespace {

TEST(Parser, ParsesPaperSubscriptionTemplate) {
  const Filter f = parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO']");
  ASSERT_EQ(f.predicates().size(), 2u);
  EXPECT_EQ(f.predicates()[0].attribute, "class");
  EXPECT_EQ(f.predicates()[0].op, Op::kEq);
  EXPECT_EQ(f.predicates()[0].value.as_string(), "STOCK");
  EXPECT_EQ(f.predicates()[1].attribute, "symbol");
  EXPECT_EQ(f.predicates()[1].value.as_string(), "YHOO");
}

TEST(Parser, ParsesInequalitySubscription) {
  const Filter f = parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,18.5]");
  ASSERT_EQ(f.predicates().size(), 3u);
  EXPECT_EQ(f.predicates()[2].op, Op::kLt);
  EXPECT_DOUBLE_EQ(f.predicates()[2].value.as_double(), 18.5);
}

TEST(Parser, ParsesAllOperators) {
  const Filter f = parse_filter(
      "[a,=,1],[b,!=,2],[c,<,3],[d,<=,4],[e,>,5],[f,>=,6],"
      "[g,str-prefix,'x'],[h,str-suffix,'y'],[i,str-contains,'z'],[j,isPresent,0]");
  ASSERT_EQ(f.predicates().size(), 10u);
  EXPECT_EQ(f.predicates()[1].op, Op::kNeq);
  EXPECT_EQ(f.predicates()[6].op, Op::kPrefix);
  EXPECT_EQ(f.predicates()[9].op, Op::kPresent);
}

TEST(Parser, ParsesPaperPublication) {
  const Publication p = parse_publication(
      "[class,'STOCK'],[symbol,'YHOO'],[open,18.37],[high,18.6],[low,18.37],"
      "[close,18.37],[volume,6200],[date,'5-Sep-96'],[openClose%Diff,0.0],"
      "[highLow%Diff,0.014],[closeEqualsLow,'true'],[closeEqualsHigh,'false']");
  EXPECT_EQ(p.attrs().size(), 12u);
  EXPECT_EQ(p.find("class")->as_string(), "STOCK");
  EXPECT_DOUBLE_EQ(p.find("open")->as_double(), 18.37);
  EXPECT_EQ(p.find("volume")->as_double(), 6200);
  EXPECT_EQ(p.find("closeEqualsLow")->as_string(), "true");
  EXPECT_EQ(p.find("date")->as_string(), "5-Sep-96");
}

TEST(Parser, ValueKinds) {
  EXPECT_TRUE(parse_value("42").is_numeric());
  EXPECT_TRUE(parse_value("4.2").is_numeric());
  EXPECT_TRUE(parse_value("-3").is_numeric());
  EXPECT_TRUE(parse_value("1e3").is_numeric());
  EXPECT_TRUE(parse_value("'abc'").is_string());
  EXPECT_TRUE(parse_value("true").is_bool());
  EXPECT_TRUE(parse_value("false").is_bool());
}

TEST(Parser, QuotedStringsMayContainCommasAndBrackets) {
  const Publication p = parse_publication("[note,'a,b]c'],[x,1]");
  EXPECT_EQ(p.find("note")->as_string(), "a,b]c");
  EXPECT_EQ(p.attrs().size(), 2u);
}

TEST(Parser, ToleratesWhitespace) {
  const Filter f = parse_filter("  [ class , = , 'STOCK' ] ,  [volume,>,100]  ");
  ASSERT_EQ(f.predicates().size(), 2u);
  EXPECT_EQ(f.predicates()[0].attribute, "class");
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_filter("[class,=]"), ParseError);
  EXPECT_THROW(parse_filter("[class,??,'X']"), ParseError);
  EXPECT_THROW(parse_filter("class,=,'X']"), ParseError);
  EXPECT_THROW(parse_filter("[class,=,'X'"), ParseError);
  EXPECT_THROW(parse_filter("[class,=,'X'] [a,=,1]"), ParseError);
  EXPECT_THROW(parse_publication("[a,1,2]"), ParseError);
  EXPECT_THROW(parse_value("'unterminated"), ParseError);
  EXPECT_THROW(parse_value("12x"), ParseError);
  EXPECT_THROW(parse_value(""), ParseError);
}

TEST(Parser, RoundTripsThroughToString) {
  const std::string text = "[class,=,'STOCK'],[volume,>,1000]";
  const Filter f = parse_filter(text);
  const Filter g = parse_filter(f.to_string());
  EXPECT_EQ(f, g);
}

}  // namespace
}  // namespace greenps
