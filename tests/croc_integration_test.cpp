// End-to-end integration: deploy MANUAL, profile, run CROC with each
// Phase-2 algorithm, apply the plan, and verify the reconfigured system is
// valid and greener.
#include <gtest/gtest.h>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

ScenarioConfig test_config() {
  ScenarioConfig c;
  c.num_brokers = 24;
  c.num_publishers = 6;
  c.subs_per_publisher = 20;
  c.full_out_bw_kb_s = 120.0;
  c.seed = 11;
  return c;
}

class CrocAlgorithmTest : public ::testing::TestWithParam<Phase2Algorithm> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CrocAlgorithmTest,
                         ::testing::Values(Phase2Algorithm::kFbf,
                                           Phase2Algorithm::kBinPacking,
                                           Phase2Algorithm::kCram,
                                           Phase2Algorithm::kPairwiseK,
                                           Phase2Algorithm::kPairwiseN),
                         [](const auto& info) {
                           switch (info.param) {
                             case Phase2Algorithm::kFbf: return "FBF";
                             case Phase2Algorithm::kBinPacking: return "BINPACKING";
                             case Phase2Algorithm::kCram: return "CRAM";
                             case Phase2Algorithm::kPairwiseK: return "PAIRWISEK";
                             case Phase2Algorithm::kPairwiseN: return "PAIRWISEN";
                           }
                           return "UNKNOWN";
                         });

TEST_P(CrocAlgorithmTest, ReconfiguredSystemIsValidAndDeliners) {
  Simulation sim = make_simulation(test_config());
  sim.run(60.0);  // profiling window
  const auto before = sim.summarize();
  ASSERT_GT(before.deliveries, 0u);

  CrocConfig cfg;
  cfg.algorithm = GetParam();
  Croc croc(cfg);
  const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success) << algorithm_name(GetParam());
  EXPECT_TRUE(report.plan.overlay.is_tree());
  EXPECT_TRUE(report.plan.overlay.has_broker(report.plan.root));
  // Every subscriber and publisher has a valid home in the new overlay.
  for (const auto& s : sim.deployment().subscribers) {
    const auto it = report.plan.subscriber_home.find(s.sub);
    ASSERT_NE(it, report.plan.subscriber_home.end());
    EXPECT_TRUE(report.plan.overlay.has_broker(it->second));
  }
  for (const auto& p : sim.deployment().publishers) {
    const auto it = report.plan.publisher_home.find(p.client);
    ASSERT_NE(it, report.plan.publisher_home.end());
    EXPECT_TRUE(report.plan.overlay.has_broker(it->second));
  }

  // Apply and re-run: the system must still deliver everything.
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(60.0);
  const auto after = sim.summarize();
  EXPECT_GT(after.deliveries, 0u);
  const double before_ratio = static_cast<double>(before.deliveries) /
                              static_cast<double>(before.publications);
  const double after_ratio = static_cast<double>(after.deliveries) /
                             static_cast<double>(after.publications);
  // Same workload => same deliveries-per-publication ratio (within the
  // noise of in-flight cut-offs and the random-walk thresholds).
  EXPECT_NEAR(after_ratio, before_ratio, 0.05 * before_ratio)
      << algorithm_name(GetParam());
}

TEST(CrocIntegration, CapacityAwareAlgorithmsConsolidateBrokers) {
  Simulation sim = make_simulation(test_config());
  sim.run(60.0);
  for (const auto algo :
       {Phase2Algorithm::kFbf, Phase2Algorithm::kBinPacking, Phase2Algorithm::kCram}) {
    CrocConfig cfg;
    cfg.algorithm = algo;
    Croc croc(cfg);
    const auto report = croc.reconfigure(sim, BrokerId{0});
    ASSERT_TRUE(report.success);
    EXPECT_LT(report.allocated_brokers, sim.deployment().topology.broker_count())
        << algorithm_name(algo);
  }
}

TEST(CrocIntegration, CramReducesMessageRateVersusManual) {
  Simulation sim = make_simulation(test_config());
  sim.run(90.0);
  const auto before = sim.summarize();

  CrocConfig cfg;
  cfg.algorithm = Phase2Algorithm::kCram;
  Croc croc(cfg);
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(90.0);
  const auto after = sim.summarize();
  // The headline effect: both the per-broker and the system-wide message
  // rates drop substantially.
  EXPECT_LT(after.system_msg_rate, before.system_msg_rate);
  EXPECT_LT(static_cast<double>(after.allocated_brokers),
            0.8 * static_cast<double>(before.allocated_brokers));
}

TEST(CrocIntegration, ReportTimingsAndStatsPopulated) {
  Simulation sim = make_simulation(test_config());
  sim.run(30.0);
  CrocConfig cfg;
  cfg.algorithm = Phase2Algorithm::kCram;
  Croc croc(cfg);
  const auto report = croc.reconfigure(sim, BrokerId{3});
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.gather.brokers_answered, 0u);
  EXPECT_GT(report.cram.allocation_runs, 0u);
  EXPECT_GT(report.cluster_count, 0u);
  EXPECT_GE(report.phase2_seconds, 0.0);
  EXPECT_GT(report.allocated_brokers, 0u);
}

TEST(CrocIntegration, GrapeOffPlacesPublishersAtRoot) {
  Simulation sim = make_simulation(test_config());
  sim.run(30.0);
  CrocConfig cfg;
  cfg.algorithm = Phase2Algorithm::kBinPacking;
  cfg.run_grape = false;
  Croc croc(cfg);
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  for (const auto& [client, broker] : report.plan.publisher_home) {
    (void)client;
    EXPECT_EQ(broker, report.plan.root);
  }
}

TEST(CrocIntegration, ApplyPlanKeepsWorkloadIdentity) {
  Simulation sim = make_simulation(test_config());
  sim.run(30.0);
  CrocConfig cfg;
  Croc croc(cfg);
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  const Deployment& old_dep = sim.deployment();
  const Deployment next = apply_plan(old_dep, report.plan);
  ASSERT_EQ(next.publishers.size(), old_dep.publishers.size());
  ASSERT_EQ(next.subscribers.size(), old_dep.subscribers.size());
  for (std::size_t i = 0; i < next.publishers.size(); ++i) {
    EXPECT_EQ(next.publishers[i].adv, old_dep.publishers[i].adv);
    EXPECT_EQ(next.publishers[i].symbol, old_dep.publishers[i].symbol);
  }
  for (std::size_t i = 0; i < next.subscribers.size(); ++i) {
    EXPECT_EQ(next.subscribers[i].filter, old_dep.subscribers[i].filter);
  }
  // Capacities preserved for every allocated broker.
  for (const BrokerId b : next.topology.brokers()) {
    EXPECT_EQ(next.capacities.at(b).out_bw_kb_s, old_dep.capacities.at(b).out_bw_kb_s);
  }
}

}  // namespace
}  // namespace greenps
