#include "alloc/allocation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/bin_packing.hpp"
#include "alloc/fbf.hpp"
#include "alloc_test_util.hpp"

namespace greenps {
namespace {

using testutil::all_members;
using testutil::one_publisher;
using testutil::pool;
using testutil::unit;

TEST(BrokerLoad, FitsRespectsBandwidth) {
  const auto table = one_publisher();
  BrokerLoad load(AllocBroker{BrokerId{0}, 50.0, {20e-6, 0.5e-6}});
  const SubUnit u = unit(1, 0, 30, table);  // 30 kB/s
  EXPECT_TRUE(load.fits(u, table));
  load.add(u, table);
  EXPECT_NEAR(load.used_bw(), 30.0, 1e-9);
  // A second 30 kB/s unit would leave remaining <= 0.
  EXPECT_FALSE(load.fits(unit(2, 40, 70, table), table));
  // A 19 kB/s unit leaves 1 kB/s > 0.
  EXPECT_TRUE(load.fits(unit(3, 40, 59, table), table));
}

TEST(BrokerLoad, FitsRespectsMatchingRate) {
  const auto table = one_publisher();
  // Broker with huge bandwidth but a matching ceiling of 1/(0.02+0.0) = 50/s.
  BrokerLoad load(AllocBroker{BrokerId{0}, 1.0e9, {0.02, 0.0}});
  EXPECT_FALSE(load.fits(unit(1, 0, 60, table), table));  // 60 msg/s > 50
  EXPECT_TRUE(load.fits(unit(2, 0, 40, table), table));   // 40 msg/s ok
}

TEST(BrokerLoad, UnionRateCountsOverlapOnce) {
  const auto table = one_publisher();
  BrokerLoad load(AllocBroker{BrokerId{0}, 1000.0, {20e-6, 0.5e-6}});
  load.add(unit(1, 0, 50, table), table);
  load.add(unit(2, 25, 75, table), table);
  EXPECT_NEAR(load.in_rate(), 75.0, 1e-6);      // union 0..75
  EXPECT_NEAR(load.used_bw(), 100.0, 1e-9);     // outputs add
  EXPECT_EQ(load.filter_count(), 2u);
}

TEST(FirstFit, FillsBrokersInOrder) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (int i = 0; i < 6; ++i) units.push_back(unit(static_cast<std::uint64_t>(i), 0, 30, table));
  // Each broker fits three 30 kB/s units (remaining 10 > 0).
  const Allocation a = first_fit(pool(3, 100.0), units, table);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.brokers_used(), 2u);
  EXPECT_EQ(a.brokers[0].units().size(), 3u);
  EXPECT_EQ(a.unit_count(), 6u);
}

TEST(FirstFit, FailsWhenPoolTooSmall) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (int i = 0; i < 10; ++i) units.push_back(unit(static_cast<std::uint64_t>(i), 0, 60, table));
  const Allocation a = first_fit(pool(2, 100.0), units, table);
  EXPECT_FALSE(a.success);
}

TEST(FirstFit, EmptyUnitsSucceedTrivially) {
  const auto table = one_publisher();
  const Allocation a = first_fit(pool(2, 100.0), {}, table);
  EXPECT_TRUE(a.success);
  EXPECT_EQ(a.brokers_used(), 0u);
}

TEST(Fbf, AllocatesEverythingAndPreservesMembers) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (int i = 0; i < 20; ++i) {
    units.push_back(unit(static_cast<std::uint64_t>(i), i, i + 20, table));
  }
  Rng rng(1);
  const Allocation a = fbf_allocate(pool(10, 100.0), units, table, rng);
  ASSERT_TRUE(a.success);
  auto members = all_members(a);
  EXPECT_EQ(members.size(), 20u);
  std::sort(members.begin(), members.end());
  EXPECT_EQ(std::adjacent_find(members.begin(), members.end()), members.end());
}

TEST(Fbf, PrefersMostResourcefulBroker) {
  const auto table = one_publisher();
  std::vector<AllocBroker> brokers = {
      {BrokerId{0}, 50.0, {20e-6, 0.5e-6}},
      {BrokerId{1}, 500.0, {20e-6, 0.5e-6}},
  };
  Rng rng(1);
  const Allocation a = fbf_allocate(brokers, {unit(1, 0, 10, table)}, table, rng);
  ASSERT_TRUE(a.success);
  ASSERT_EQ(a.brokers_used(), 1u);
  EXPECT_EQ(a.brokers[0].broker().id, BrokerId{1});
}

TEST(BinPacking, SortsByBandwidthRequirement) {
  const auto table = one_publisher();
  // One 60 kB/s unit and three 25 kB/s units onto 100 kB/s brokers.
  std::vector<SubUnit> units = {unit(1, 0, 25, table), unit(2, 25, 50, table),
                                unit(3, 0, 60, table), unit(4, 50, 75, table)};
  const Allocation a = bin_packing_allocate(pool(5, 100.0), units, table);
  ASSERT_TRUE(a.success);
  // FFD packs 60+25 on broker A, 25+25 on broker B => 2 brokers.
  EXPECT_EQ(a.brokers_used(), 2u);
  // The first (largest) unit placed first.
  EXPECT_EQ(a.brokers[0].units()[0].members[0], SubId{3});
}

TEST(BinPacking, NeverBeatenByFbfOnBrokerCount) {
  // Statistical property from the paper: BIN PACKING consistently allocates
  // no more brokers than FBF.
  const auto table = one_publisher();
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<SubUnit> units;
    for (int i = 0; i < 40; ++i) {
      const auto from = rng.uniform_int(0, 60);
      units.push_back(unit(static_cast<std::uint64_t>(i), from,
                           from + rng.uniform_int(5, 40), table));
    }
    const Allocation bp = bin_packing_allocate(pool(30, 100.0), units, table);
    Rng fbf_rng(trial);
    const Allocation fb = fbf_allocate(pool(30, 100.0), units, table, fbf_rng);
    ASSERT_TRUE(bp.success);
    ASSERT_TRUE(fb.success);
    EXPECT_LE(bp.brokers_used(), fb.brokers_used()) << "trial " << trial;
  }
}

TEST(BinPacking, DeterministicAcrossRuns) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (int i = 0; i < 15; ++i) units.push_back(unit(static_cast<std::uint64_t>(i), i, i + 10, table));
  const Allocation a = bin_packing_allocate(pool(8, 100.0), units, table);
  const Allocation b = bin_packing_allocate(pool(8, 100.0), units, table);
  ASSERT_EQ(a.brokers_used(), b.brokers_used());
  for (std::size_t i = 0; i < a.brokers.size(); ++i) {
    EXPECT_EQ(a.brokers[i].broker().id, b.brokers[i].broker().id);
    EXPECT_EQ(a.brokers[i].units().size(), b.brokers[i].units().size());
  }
}

}  // namespace
}  // namespace greenps
