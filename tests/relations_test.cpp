#include "matching/relations.hpp"

#include <gtest/gtest.h>

#include <random>

#include "language/parser.hpp"
#include "workload/stock_quote.hpp"

namespace greenps {
namespace {

Filter F(const char* text) { return parse_filter(text); }

TEST(Relations, IdenticalFiltersIntersectAndCover) {
  const Filter a = F("[class,=,'STOCK'],[symbol,=,'YHOO']");
  EXPECT_TRUE(intersects(a, a));
  EXPECT_TRUE(covers(a, a));
}

TEST(Relations, DisjointSymbolsDoNotIntersect) {
  const Filter a = F("[class,=,'STOCK'],[symbol,=,'YHOO']");
  const Filter b = F("[class,=,'STOCK'],[symbol,=,'GOOG']");
  EXPECT_FALSE(intersects(a, b));
}

TEST(Relations, DisjointNumericRanges) {
  const Filter a = F("[volume,>,100]");
  const Filter b = F("[volume,<,50]");
  EXPECT_FALSE(intersects(a, b));
  // (100, inf) vs (-inf, 100] still share no point.
  EXPECT_FALSE(intersects(a, F("[volume,<=,100]")));
  EXPECT_TRUE(intersects(F("[volume,>=,100]"), F("[volume,<=,100]")));
}

TEST(Relations, TouchingOpenIntervalsAreDisjoint) {
  // (100, inf) and (-inf, 100) share no point; with one closed end at 100
  // they still share none because the other end is open.
  EXPECT_FALSE(intersects(F("[v,>,100]"), F("[v,<,100]")));
  EXPECT_FALSE(intersects(F("[v,>,100]"), F("[v,<=,100]")));
  EXPECT_TRUE(intersects(F("[v,>=,100]"), F("[v,<=,100]")));
}

TEST(Relations, BroaderFilterCoversNarrower) {
  const Filter broad = F("[class,=,'STOCK'],[symbol,=,'YHOO']");
  const Filter narrow = F("[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,18.5]");
  EXPECT_TRUE(covers(broad, narrow));
  EXPECT_FALSE(covers(narrow, broad));
  EXPECT_TRUE(intersects(broad, narrow));
}

TEST(Relations, IntervalContainment) {
  EXPECT_TRUE(covers(F("[v,>,10]"), F("[v,>,20]")));
  EXPECT_TRUE(covers(F("[v,>=,10]"), F("[v,>,10]")));
  EXPECT_FALSE(covers(F("[v,>,10]"), F("[v,>=,10]")));
  EXPECT_TRUE(covers(F("[v,>,0],[v,<,100]"), F("[v,>=,10],[v,<=,20]")));
  EXPECT_FALSE(covers(F("[v,>,0],[v,<,100]"), F("[v,>=,10]")));
}

TEST(Relations, MissingAttributeBlocksCover) {
  // sub can match publications that lack `low`, which sup would reject.
  EXPECT_FALSE(covers(F("[low,<,10]"), F("[high,>,5]")));
}

TEST(Relations, StringOperatorCoverage) {
  EXPECT_TRUE(covers(F("[s,str-prefix,'YH']"), F("[s,=,'YHOO']")));
  EXPECT_FALSE(covers(F("[s,str-prefix,'GO']"), F("[s,=,'YHOO']")));
  EXPECT_TRUE(covers(F("[s,str-suffix,'OO']"), F("[s,=,'YHOO']")));
  EXPECT_TRUE(covers(F("[s,str-contains,'HO']"), F("[s,=,'YHOO']")));
  EXPECT_TRUE(covers(F("[s,isPresent,0]"), F("[s,=,'YHOO']")));
}

TEST(Relations, StringPrefixIntersection) {
  EXPECT_TRUE(intersects(F("[s,str-prefix,'YH']"), F("[s,str-prefix,'YHO']")));
  EXPECT_FALSE(intersects(F("[s,str-prefix,'YH']"), F("[s,str-prefix,'GO']")));
  EXPECT_FALSE(intersects(F("[s,=,'YHOO']"), F("[s,str-prefix,'GO']")));
}

TEST(Relations, KindMismatchIsDisjoint) {
  EXPECT_FALSE(intersects(F("[v,=,5]"), F("[v,=,'five']")));
  EXPECT_FALSE(covers(F("[v,>,1]"), F("[v,=,'five']")));
}

TEST(Relations, NegationHandling) {
  EXPECT_TRUE(intersects(F("[s,!=,'YHOO']"), F("[s,str-prefix,'YH']")));
  EXPECT_FALSE(intersects(F("[s,!=,'YHOO']"), F("[s,=,'YHOO']")));
  // Cover requires the inner filter to exclude the outer's forbidden value.
  EXPECT_TRUE(covers(F("[v,!=,5]"), F("[v,>,10]")));
  EXPECT_FALSE(covers(F("[v,!=,5]"), F("[v,>,0]")));
  EXPECT_TRUE(covers(F("[s,!=,'X']"), F("[s,=,'Y']")));
}

TEST(Relations, UnsatisfiableDetection) {
  EXPECT_TRUE(unsatisfiable(F("[v,>,10],[v,<,5]")));
  EXPECT_TRUE(unsatisfiable(F("[s,=,'A'],[s,=,'B']")));
  EXPECT_TRUE(unsatisfiable(F("[v,=,5],[v,=,'five']")));
  EXPECT_TRUE(unsatisfiable(F("[v,=,5],[v,!=,5]")));
  EXPECT_FALSE(unsatisfiable(F("[v,>,5],[v,<,10]")));
}

TEST(Relations, UnsatisfiableNeverIntersects) {
  EXPECT_FALSE(intersects(F("[v,>,10],[v,<,5]"), F("[v,=,7]")));
  EXPECT_FALSE(intersects(F("[v,=,7]"), F("[v,>,10],[v,<,5]")));
}

// Property: on random stock publications, if both filters match a
// publication then intersects() must be true (no false negatives), and if
// covers(sup, sub) then every pub matching sub matches sup.
TEST(RelationsProperty, SoundAgainstSampledPublications) {
  std::mt19937 seed(123);
  Rng rng(99);
  StockQuoteGenerator gen(StockQuoteGenerator::Config{}, rng.fork());
  std::vector<Filter> filters;
  const char* symbols[] = {"YHOO", "GOOG"};
  for (const char* sym : symbols) {
    filters.push_back(F(("[class,=,'STOCK'],[symbol,=,'" + std::string(sym) + "']").c_str()));
    filters.push_back(
        F(("[class,=,'STOCK'],[symbol,=,'" + std::string(sym) + "'],[volume,>,5000]").c_str()));
    filters.push_back(
        F(("[class,=,'STOCK'],[symbol,=,'" + std::string(sym) + "'],[low,<,100.0]").c_str()));
  }
  std::vector<Publication> pubs;
  for (int sym = 0; sym < 2; ++sym) {
    for (int day = 0; day < 40; ++day) {
      pubs.push_back(gen.next(symbols[sym]));
    }
  }
  for (std::size_t i = 0; i < filters.size(); ++i) {
    for (std::size_t j = 0; j < filters.size(); ++j) {
      bool joint = false;
      bool sub_implies_sup = true;
      for (const auto& p : pubs) {
        const bool mi = filters[i].matches(p);
        const bool mj = filters[j].matches(p);
        joint = joint || (mi && mj);
        if (mj && !mi) sub_implies_sup = false;
      }
      if (joint) {
        EXPECT_TRUE(intersects(filters[i], filters[j])) << i << "," << j;
      }
      if (covers(filters[i], filters[j])) {
        EXPECT_TRUE(sub_implies_sup) << i << "," << j;
      }
    }
  }
}

}  // namespace
}  // namespace greenps
