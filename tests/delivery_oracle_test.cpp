// End-to-end delivery oracle.
//
// Per-symbol quote streams are deterministic given (seed, symbol), so after
// a simulation run we can regenerate every publication offline and check,
// subscriber by subscriber, that the CBC bit vectors record *exactly* the
// matching publications: no false positives (guaranteed by filter-based
// routing) and no missed deliveries (modulo the in-flight tail at the
// measurement horizon).
#include <gtest/gtest.h>

#include <map>

#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

struct Oracle {
  // publications per advertisement, indexed by sequence number
  std::map<AdvId, std::vector<Publication>> pubs;
};

Oracle regenerate(const ScenarioConfig& config, const Simulation& sim) {
  Oracle oracle;
  StockQuoteGenerator quotes = make_quote_generator(config);
  for (const auto& p : sim.deployment().publishers) {
    // One publication per sequence number actually emitted.
    const BrokerInfo info = sim.broker_info(p.home);
    MessageSeq last = -1;
    for (const auto& lp : info.publishers) {
      if (lp.profile.adv == p.adv) last = lp.profile.last_seq;
    }
    auto& vec = oracle.pubs[p.adv];
    for (MessageSeq s = 0; s <= last; ++s) {
      Publication pub = quotes.next(p.symbol);
      pub.set_header(p.adv, s);
      vec.push_back(std::move(pub));
    }
  }
  return oracle;
}

// `seq_floor`: per-adv first sequence the current profiles could have seen
// (profiles reset on redeploy, so pre-reconfiguration traffic is excluded
// from the coverage expectation; exactness is still checked on everything).
void check_profiles_against_oracle(const ScenarioConfig& config, const Simulation& sim,
                                   double min_coverage,
                                   const std::map<AdvId, MessageSeq>& seq_floor = {}) {
  const Oracle oracle = regenerate(config, sim);
  std::size_t checked_subs = 0;
  for (const BrokerId b : sim.deployment().topology.brokers()) {
    const BrokerInfo info = sim.broker_info(b);
    for (const auto& s : info.subscriptions) {
      ++checked_subs;
      std::size_t expected = 0;
      std::size_t recorded = 0;
      for (const auto& [adv, pubs] : oracle.pubs) {
        const auto* v = s.profile.vector_for(adv);
        const auto fit = seq_floor.find(adv);
        const MessageSeq floor = fit == seq_floor.end() ? 0 : fit->second;
        for (std::size_t seq = 0; seq < pubs.size(); ++seq) {
          const bool matches = s.filter.matches(pubs[seq]);
          const bool bit = v != nullptr && v->test_seq(static_cast<MessageSeq>(seq));
          if (bit) {
            // Exactness: a set bit MUST correspond to a matching publication.
            ASSERT_TRUE(matches) << "false positive: sub " << s.id.value() << " adv "
                                 << adv.value() << " seq " << seq;
            ++recorded;
          }
          if (matches && static_cast<MessageSeq>(seq) >= floor) ++expected;
        }
      }
      if (expected > 10) {
        EXPECT_GE(static_cast<double>(recorded),
                  min_coverage * static_cast<double>(expected))
            << "sub " << s.id.value() << " missed too many deliveries";
      }
    }
  }
  EXPECT_GT(checked_subs, 0u);
}

TEST(DeliveryOracle, ManualDeploymentDeliversExactlyMatches) {
  ScenarioConfig config;
  config.num_brokers = 16;
  config.num_publishers = 4;
  config.subs_per_publisher = 15;
  config.seed = 31;
  Simulation sim = make_simulation(config);
  sim.run(120.0);
  check_profiles_against_oracle(config, sim, /*min_coverage=*/0.9);
}

TEST(DeliveryOracle, ReconfiguredDeploymentStaysExact) {
  ScenarioConfig config;
  config.num_brokers = 16;
  config.num_publishers = 4;
  config.subs_per_publisher = 15;
  config.full_out_bw_kb_s = 100.0;
  config.seed = 32;
  Simulation sim = make_simulation(config);
  sim.run(90.0);
  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  // Sequence floors: profiles reset at the redeploy, so coverage is only
  // expected for sequences published afterwards.
  std::map<AdvId, MessageSeq> floors;
  for (const auto& p : sim.deployment().publishers) {
    const BrokerInfo info = sim.broker_info(p.home);
    for (const auto& lp : info.publishers) {
      if (lp.profile.adv == p.adv) floors[p.adv] = lp.profile.last_seq + 1;
    }
  }
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(120.0);
  check_profiles_against_oracle(config, sim, /*min_coverage=*/0.85, floors);
}

TEST(DeliveryOracle, QuoteStreamsAreOrderIndependent) {
  StockQuoteGenerator a(StockQuoteGenerator::Config{}, Rng(5));
  StockQuoteGenerator b(StockQuoteGenerator::Config{}, Rng(5));
  // Interleave differently; per-symbol streams must match exactly.
  std::vector<Publication> a_x, b_x;
  for (int i = 0; i < 10; ++i) {
    a_x.push_back(a.next("XXX"));
    (void)a.next("YYY");
  }
  for (int i = 0; i < 10; ++i) (void)b.next("YYY");
  for (int i = 0; i < 10; ++i) b_x.push_back(b.next("XXX"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a_x[i].to_string(), b_x[i].to_string()) << "quote " << i;
  }
}

}  // namespace
}  // namespace greenps
