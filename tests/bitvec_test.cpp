#include "bitvec/bit_vector.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace greenps {
namespace {

TEST(BitVector, StartsEmpty) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetAndTest) {
  BitVector v(130);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(63));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(129));
  EXPECT_FALSE(v.test(1));
  EXPECT_FALSE(v.test(128));
  EXPECT_EQ(v.count(), 4u);
}

TEST(BitVector, ResetClearsBit) {
  BitVector v(10);
  v.set(3);
  v.reset(3);
  EXPECT_FALSE(v.test(3));
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, TestOutOfRangeIsFalse) {
  BitVector v(10);
  EXPECT_FALSE(v.test(10));
  EXPECT_FALSE(v.test(1000));
}

TEST(BitVector, ShiftDownMovesBits) {
  BitVector v(200);
  v.set(5);
  v.set(70);
  v.set(199);
  v.shift_down(5);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(65));
  EXPECT_TRUE(v.test(194));
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVector, ShiftDownDropsLowBits) {
  BitVector v(64);
  v.set(0);
  v.set(1);
  v.set(63);
  v.shift_down(2);
  EXPECT_EQ(v.count(), 1u);
  EXPECT_TRUE(v.test(61));
}

TEST(BitVector, ShiftDownByWholeSizeClears) {
  BitVector v(100);
  for (std::size_t i = 0; i < 100; i += 7) v.set(i);
  v.shift_down(100);
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, ShiftDownBeyondSizeClears) {
  BitVector v(100);
  v.set(99);
  v.shift_down(5000);
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, ShiftByZeroIsNoop) {
  BitVector v(65);
  v.set(64);
  v.shift_down(0);
  EXPECT_TRUE(v.test(64));
}

TEST(BitVector, WordAtReadsAcrossBoundaries) {
  BitVector v(128);
  v.set(63);
  v.set(64);
  EXPECT_EQ(v.word_at(63) & 0x3u, 0x3u);
  EXPECT_EQ(v.word_at(64) & 0x1u, 0x1u);
  EXPECT_EQ(v.word_at(120), 0u);  // zero-padded past the end
}

TEST(BitVector, AndCountAligned) {
  BitVector a(100), b(100);
  a.set(1);
  a.set(50);
  a.set(99);
  b.set(50);
  b.set(99);
  b.set(2);
  EXPECT_EQ(BitVector::and_count(a, 0, b, 0, 100), 2u);
}

TEST(BitVector, AndCountWithOffsets) {
  BitVector a(100), b(100);
  // a bit i corresponds to b bit i+10.
  a.set(5);
  b.set(15);
  a.set(80);
  b.set(90);
  a.set(7);  // unmatched
  EXPECT_EQ(BitVector::and_count(a, 0, b, 10, 90), 2u);
}

TEST(BitVector, AndCountRespectsLength) {
  BitVector a(100), b(100);
  a.set(95);
  b.set(95);
  EXPECT_EQ(BitVector::and_count(a, 0, b, 0, 90), 0u);
  EXPECT_EQ(BitVector::and_count(a, 0, b, 0, 96), 1u);
}

TEST(BitVector, ContainsDetectsSubset) {
  BitVector sup(100), sub(100);
  sup.set(1);
  sup.set(2);
  sup.set(3);
  sub.set(2);
  EXPECT_TRUE(BitVector::contains(sup, 0, sub, 0, 100));
  sub.set(50);
  EXPECT_FALSE(BitVector::contains(sup, 0, sub, 0, 100));
}

TEST(BitVector, ContainsWithOffset) {
  BitVector sup(100), sub(100);
  sup.set(20);
  sub.set(10);
  EXPECT_TRUE(BitVector::contains(sup, 10, sub, 0, 90));
}

TEST(BitVector, CountRange) {
  BitVector v(256);
  v.set(0);
  v.set(100);
  v.set(255);
  EXPECT_EQ(v.count_range(0, 256), 3u);
  EXPECT_EQ(v.count_range(1, 254), 1u);
  EXPECT_EQ(v.count_range(100, 1), 1u);
  EXPECT_EQ(v.count_range(300, 10), 0u);
}

TEST(BitVector, OrWithMergesAlignedBits) {
  BitVector a(50), b(50);
  b.set(3);
  b.set(49);
  a.or_with(b, 0, 0, 50);
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(49));
}

TEST(BitVector, OrWithOffsetsMapsCoordinates) {
  BitVector a(50), b(50);
  b.set(10);
  a.or_with(b, /*this_offset=*/0, /*other_offset=*/10, 40);
  EXPECT_TRUE(a.test(0));
  EXPECT_EQ(a.count(), 1u);
}

// Property test: and_count agrees with a bit-by-bit oracle on random data.
TEST(BitVectorProperty, AndCountMatchesOracle) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t na = 1 + rng() % 300;
    const std::size_t nb = 1 + rng() % 300;
    BitVector a(na), b(nb);
    std::set<std::size_t> sa, sb;
    for (std::size_t i = 0; i < na / 3 + 1; ++i) {
      const std::size_t bit = rng() % na;
      a.set(bit);
      sa.insert(bit);
    }
    for (std::size_t i = 0; i < nb / 3 + 1; ++i) {
      const std::size_t bit = rng() % nb;
      b.set(bit);
      sb.insert(bit);
    }
    const std::size_t a_off = rng() % 50;
    const std::size_t b_off = rng() % 50;
    const std::size_t len = rng() % 400;
    std::size_t expected = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const bool in_a = sa.count(a_off + i) > 0 && a_off + i < na;
      const bool in_b = sb.count(b_off + i) > 0 && b_off + i < nb;
      if (in_a && in_b) ++expected;
    }
    EXPECT_EQ(BitVector::and_count(a, a_off, b, b_off, len), expected)
        << "trial " << trial;
  }
}

// Property test: or_with agrees with a bit-by-bit oracle on random data,
// including negative offsets and out-of-range spans.
TEST(BitVectorProperty, OrWithMatchesOracle) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t na = 1 + rng() % 300;
    const std::size_t nb = 1 + rng() % 300;
    BitVector a(na), b(nb);
    std::set<std::size_t> sa, sb;
    for (std::size_t i = 0; i < na / 2 + 1; ++i) {
      const std::size_t bit = rng() % na;
      a.set(bit);
      sa.insert(bit);
    }
    for (std::size_t i = 0; i < nb / 2 + 1; ++i) {
      const std::size_t bit = rng() % nb;
      b.set(bit);
      sb.insert(bit);
    }
    const auto t_off = static_cast<std::ptrdiff_t>(rng() % 100) - 50;
    const auto o_off = static_cast<std::ptrdiff_t>(rng() % 100) - 50;
    const std::size_t len = rng() % 400;
    a.or_with(b, t_off, o_off, len);
    for (std::size_t i = 0; i < na; ++i) {
      bool expected = sa.count(i) > 0;
      const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) - t_off;
      if (k >= 0 && static_cast<std::size_t>(k) < len) {
        const std::ptrdiff_t src = o_off + k;
        if (src >= 0 && static_cast<std::size_t>(src) < nb && sb.count(static_cast<std::size_t>(src)) > 0) {
          expected = true;
        }
      }
      EXPECT_EQ(a.test(i), expected) << "trial " << trial << " bit " << i;
    }
  }
}

// Property test: shift_down(k) then test(i) == original test(i+k).
TEST(BitVectorProperty, ShiftDownMatchesOracle) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng() % 400;
    BitVector v(n);
    std::set<std::size_t> bits;
    for (std::size_t i = 0; i < n / 2; ++i) {
      const std::size_t bit = rng() % n;
      v.set(bit);
      bits.insert(bit);
    }
    const std::size_t k = rng() % (n + 10);
    v.shift_down(k);
    for (std::size_t i = 0; i < n; ++i) {
      const bool expected = bits.count(i + k) > 0 && i + k < n;
      EXPECT_EQ(v.test(i), expected) << "trial " << trial << " bit " << i;
    }
  }
}

}  // namespace
}  // namespace greenps
