// Incremental reconfiguration under churn: randomized differentials against
// from-scratch CRAM, poset splice/reclamation invariants, CBC epoch
// semantics, epoch-based gather reuse, and the Croc session lifecycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "alloc/cram_incremental.hpp"
#include "alloc_test_util.hpp"
#include "broker/cbc.hpp"
#include "common/rng.hpp"
#include "croc/croc.hpp"
#include "croc/diff_oracle.hpp"
#include "obs/metrics.hpp"
#include "overlay/topology_builder.hpp"
#include "poset/poset.hpp"
#include "scenario/scenario.hpp"
#include "sim/faults.hpp"
#include "workload/churn.hpp"

namespace greenps {
namespace {

// ---------------------------------------------------------------------------
// Randomized differential suite: incremental vs from-scratch
// ---------------------------------------------------------------------------

PublisherTable three_publishers() {
  PublisherTable t;
  for (std::uint64_t a = 0; a < 3; ++a) {
    t[AdvId{a}] = PublisherProfile{AdvId{a}, 100.0, 100.0, 100000};
  }
  return t;
}

SubscriptionProfile random_range_profile(Rng& rng) {
  SubscriptionProfile p(100);
  const AdvId adv{static_cast<std::uint64_t>(rng.index(3))};
  const MessageSeq from = rng.uniform_int(0, 300);
  const MessageSeq len = 1 + rng.uniform_int(0, 59);
  for (MessageSeq s = from; s < from + len; ++s) p.record(adv, s);
  return p;
}

// Snapshot a poset as payload -> set of reachable (covered) payloads, the
// order-independent view of the containment DAG.
std::map<std::uint64_t, std::set<std::uint64_t>> reachability(const ProfilePoset& poset) {
  std::map<std::uint64_t, std::set<std::uint64_t>> out;
  poset.bfs([&](ProfilePoset::NodeId n) {
    auto& reach = out[poset.payload(n)];
    for (const ProfilePoset::NodeId d : poset.descendants(n)) {
      reach.insert(poset.payload(d));
    }
    return true;
  });
  return out;
}

// The incremental poset, spliced by deltas, must be reachability-identical
// to a poset freshly built from the same live profiles. Payloads (gif ids)
// differ between the two, so compare through profile identity: re-insert
// with payloads renumbered by a canonical bfs order of set bits.
void expect_poset_matches_fresh(const ProfilePoset& live) {
  // Collect live profiles with their session payloads.
  std::vector<std::pair<std::uint64_t, const SubscriptionProfile*>> nodes;
  live.bfs([&](ProfilePoset::NodeId n) {
    nodes.emplace_back(live.payload(n), &live.profile(n));
    return true;
  });
  ProfilePoset fresh;
  for (const auto& [payload, profile] : nodes) {
    const auto ins = fresh.insert(*profile, payload);
    ASSERT_TRUE(ins.inserted) << "live poset held two equal profiles";
  }
  EXPECT_TRUE(live.check_invariants());
  EXPECT_TRUE(fresh.check_invariants());
  EXPECT_EQ(reachability(live), reachability(fresh));
}

enum class BatchKind { kAddOnly, kRemoveOnly, kMixed };

// The objective-drift bound is scale-dependent: a 1-5 subscription batch is
// ~10% of a 24-56 subscription population, so the incremental result may
// miss clustering opportunities worth a sizable fraction of the objective.
// The small-population sweep therefore runs the oracle with a loose (but
// still enforced) bound — its job is structural correctness at adversarial
// scale: success agreement, exactly-once member conservation, and broker
// sanity, over a thousand seeds. The tight 5% bound is enforced separately
// at populations large enough for the asymptotic claim (see
// LargePopulationsHoldTightBound and bench_e12_churn at 1000 subs).
DiffOracleOptions loose_oracle() {
  DiffOracleOptions o;
  o.objective_epsilon = 0.60;
  o.broker_slack = 2;
  return o;
}

// One randomized case: converge a population, apply 1-2 delta batches, and
// after every batch check (a) the differential oracle against a
// from-scratch run on the post-delta population and (b) bit-identical poset
// reachability against a fresh build.
void run_differential_case(std::uint64_t seed, BatchKind kind, std::size_t threads) {
  Rng rng(seed);
  const PublisherTable table = three_publishers();
  const std::size_t n = 24 + rng.index(32);
  std::vector<SubUnit> units;
  std::vector<SubId> live;
  units.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    units.push_back(make_subscription_unit(SubId{i}, random_range_profile(rng), table));
    live.push_back(SubId{i});
  }
  CramOptions opts;
  opts.threads = threads;
  IncrementalCram session(testutil::pool(10, 500.0), std::move(units), table, opts);
  ASSERT_TRUE(session.initialize().allocation.success) << "seed " << seed;

  std::uint64_t next_id = n;
  const std::size_t batches = 1 + rng.index(2);
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<SubUnit> added;
    std::vector<SubId> removed;
    const std::size_t adds = kind == BatchKind::kRemoveOnly ? 0 : 1 + rng.index(5);
    const std::size_t removes = kind == BatchKind::kAddOnly ? 0 : 1 + rng.index(5);
    for (std::size_t i = 0; i < adds; ++i) {
      const SubId id{next_id++};
      added.push_back(make_subscription_unit(id, random_range_profile(rng), table));
      live.push_back(id);
    }
    for (std::size_t i = 0; i < removes && !live.empty(); ++i) {
      const std::size_t pick = rng.index(live.size());
      removed.push_back(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    const CramResult r = session.apply(std::move(added), removed);
    const DiffOracleResult oracle = diff_against_scratch(session, r.allocation, loose_oracle());
    ASSERT_TRUE(oracle.ok) << "seed " << seed << " batch " << b << ": " << oracle.detail;
    expect_poset_matches_fresh(session.poset());
    ASSERT_EQ(session.live_subscriptions(), live.size());
  }
}

// The ISSUE's >=1,000-case differential floor, spread over batch kinds and
// thread counts. Thread counts beyond 1 exercise the speculative parallel
// k-search merge inside reconvergence.
TEST(IncrementalDifferential, AddOnlyBatches) {
  for (std::uint64_t seed = 0; seed < 340; ++seed) {
    run_differential_case(1000 + seed, BatchKind::kAddOnly, 1 + seed % 3);
  }
}

TEST(IncrementalDifferential, RemoveOnlyBatches) {
  for (std::uint64_t seed = 0; seed < 340; ++seed) {
    run_differential_case(2000 + seed, BatchKind::kRemoveOnly, 1 + seed % 3);
  }
}

TEST(IncrementalDifferential, MixedBatches) {
  for (std::uint64_t seed = 0; seed < 340; ++seed) {
    run_differential_case(3000 + seed, BatchKind::kMixed, 1 + seed % 3);
  }
}

// On profiled (simulator-derived) populations under realistic Poisson
// churn — the regime the speedup claim is made in — the incremental result
// must stay within the oracle's default 5% of from-scratch at every step.
TEST(IncrementalDifferential, ProfiledPopulationsHoldTightBound) {
  ScenarioConfig cfg;
  cfg.num_brokers = 16;
  cfg.num_publishers = 5;
  cfg.subs_per_publisher = 40;
  cfg.full_out_bw_kb_s = 150.0;
  cfg.seed = 57;
  Simulation sim = make_simulation(cfg);
  sim.run(60.0);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  const std::vector<SubUnit> units = Croc::units_from(info);
  ASSERT_GE(units.size(), 150u);

  std::vector<SubscriptionProfile> refs;
  std::vector<SubId> live;
  std::uint64_t max_id = 0;
  for (const SubUnit& u : units) {
    refs.push_back(u.profile);
    live.push_back(u.members.front());
    max_id = std::max(max_id, u.members.front().value());
  }
  IncrementalCram session(Croc::pool_from(info), units, info.publisher_table,
                          CramOptions{});
  ASSERT_TRUE(session.initialize().allocation.success);

  ChurnOptions churn_opts;
  churn_opts.turnover_per_s = 0.01;
  ChurnGenerator churn(churn_opts, std::move(refs), std::move(live), max_id + 1, Rng(91));
  for (int step = 0; step < 8; ++step) {
    ChurnBatch batch = churn.step();
    std::vector<SubUnit> added;
    for (ChurnBatch::Arrival& a : batch.added) {
      added.push_back(
          make_subscription_unit(a.id, std::move(a.profile), info.publisher_table));
    }
    const CramResult r = session.apply(std::move(added), batch.removed);
    // Default oracle options: 5% objective epsilon, zero broker slack.
    const DiffOracleResult oracle = diff_against_scratch(session, r.allocation);
    ASSERT_TRUE(oracle.ok) << "step " << step << ": " << oracle.detail;
  }
}

// The same delta sequence must produce bit-identical allocations whatever
// the thread count (the parallel searches merge deterministically).
TEST(IncrementalDifferential, ThreadCountInvariance) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::vector<double> objectives;
    std::vector<std::size_t> brokers;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      Rng rng(77 + seed);
      const PublisherTable table = three_publishers();
      std::vector<SubUnit> units;
      for (std::uint64_t i = 0; i < 40; ++i) {
        units.push_back(make_subscription_unit(SubId{i}, random_range_profile(rng), table));
      }
      CramOptions opts;
      opts.threads = threads;
      IncrementalCram session(testutil::pool(10, 500.0), std::move(units), table, opts);
      ASSERT_TRUE(session.initialize().allocation.success);
      std::vector<SubUnit> added;
      for (std::uint64_t i = 40; i < 44; ++i) {
        added.push_back(make_subscription_unit(SubId{i}, random_range_profile(rng), table));
      }
      const CramResult r =
          session.apply(std::move(added), {SubId{3}, SubId{17}, SubId{29}});
      ASSERT_TRUE(r.allocation.success);
      objectives.push_back(r.allocation.total_in_rate());
      brokers.push_back(r.allocation.brokers_used());
    }
    EXPECT_EQ(objectives[0], objectives[1]) << "seed " << seed;
    EXPECT_EQ(objectives[0], objectives[2]) << "seed " << seed;
    EXPECT_EQ(brokers[0], brokers[1]) << "seed " << seed;
    EXPECT_EQ(brokers[0], brokers[2]) << "seed " << seed;
  }
}

// Removing every member of every cluster must drain the session to an
// empty-but-successful allocation, and re-adding must revive it.
TEST(IncrementalDifferential, DrainAndRefill) {
  Rng rng(9);
  const PublisherTable table = three_publishers();
  std::vector<SubUnit> units;
  std::vector<SubId> all;
  for (std::uint64_t i = 0; i < 20; ++i) {
    units.push_back(make_subscription_unit(SubId{i}, random_range_profile(rng), table));
    all.push_back(SubId{i});
  }
  IncrementalCram session(testutil::pool(6, 500.0), std::move(units), table, CramOptions{});
  ASSERT_TRUE(session.initialize().allocation.success);

  const CramResult drained = session.apply({}, all);
  EXPECT_TRUE(drained.allocation.success);
  EXPECT_EQ(session.live_subscriptions(), 0u);
  EXPECT_EQ(drained.allocation.unit_count(), 0u);
  EXPECT_EQ(session.last_delta().removed_found, 20u);

  std::vector<SubUnit> back;
  for (std::uint64_t i = 100; i < 110; ++i) {
    back.push_back(make_subscription_unit(SubId{i}, random_range_profile(rng), table));
  }
  const CramResult refilled = session.apply(std::move(back), {});
  ASSERT_TRUE(refilled.allocation.success);
  EXPECT_EQ(session.live_subscriptions(), 10u);
  const DiffOracleResult oracle = diff_against_scratch(session, refilled.allocation);
  EXPECT_TRUE(oracle.ok) << oracle.detail;
}

// Unknown removal ids are counted but harmless.
TEST(IncrementalDifferential, UnknownRemovalsIgnored) {
  Rng rng(13);
  const PublisherTable table = three_publishers();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 12; ++i) {
    units.push_back(make_subscription_unit(SubId{i}, random_range_profile(rng), table));
  }
  IncrementalCram session(testutil::pool(6, 500.0), std::move(units), table, CramOptions{});
  ASSERT_TRUE(session.initialize().allocation.success);
  const CramResult r = session.apply({}, {SubId{999}, SubId{1000}});
  EXPECT_TRUE(r.allocation.success);
  EXPECT_EQ(session.last_delta().removed_requested, 2u);
  EXPECT_EQ(session.last_delta().removed_found, 0u);
  EXPECT_EQ(session.live_subscriptions(), 12u);
}

// ---------------------------------------------------------------------------
// Poset slot reclamation under churn
// ---------------------------------------------------------------------------

TEST(PosetChurn, SlotsStayBoundedUnderBalancedChurn) {
  Rng rng(21);
  ProfilePoset poset;
  std::vector<ProfilePoset::NodeId> alive;
  std::uint64_t payload = 0;
  const auto insert_one = [&] {
    const auto ins = poset.insert(random_range_profile(rng), payload++);
    if (ins.inserted) alive.push_back(ins.node);
  };
  for (int i = 0; i < 150; ++i) insert_one();
  const std::size_t high_water = poset.slot_count();

  // Balanced churn: every round removes one live node and inserts one
  // fresh profile. Without slot reclamation the slot count would grow by
  // ~one per round; with it, the poset stays near its high-water mark.
  for (int round = 0; round < 400; ++round) {
    const std::size_t pick = rng.index(alive.size());
    poset.remove(alive[pick]);
    alive[pick] = alive.back();
    alive.pop_back();
    insert_one();
    ASSERT_TRUE(poset.size() <= poset.slot_count());
  }
  EXPECT_TRUE(poset.check_invariants());
  // Steady state: bounded by the lifetime high-water mark of *live* nodes
  // (+ a small free-list allowance), not by the 550 total inserts.
  const std::size_t final_high_water = std::max(high_water, poset.size());
  EXPECT_LE(poset.slot_count(), final_high_water + 40);
  EXPECT_GT(poset.slots_compacted(), 0u);
}

TEST(PosetChurn, RemoveReleasesPayloadAndKeepsLiveIdsStable) {
  Rng rng(22);
  ProfilePoset poset;
  const auto a = poset.insert(random_range_profile(rng), 1);
  const auto b = poset.insert(random_range_profile(rng), 2);
  ASSERT_TRUE(a.inserted);
  ASSERT_TRUE(b.inserted);
  poset.remove(a.node);
  EXPECT_FALSE(poset.alive(a.node) && poset.payload(a.node) == 1);
  EXPECT_TRUE(poset.alive(b.node));
  EXPECT_EQ(poset.payload(b.node), 2u);
  EXPECT_TRUE(poset.check_invariants());
}

// ---------------------------------------------------------------------------
// CBC structural epochs
// ---------------------------------------------------------------------------

TEST(CbcEpoch, BumpsOnStructuralChangesOnly) {
  CbcComponent cbc(64);
  const std::uint64_t e0 = cbc.epoch();

  cbc.register_subscription(SubId{1}, ClientId{1}, Filter{});
  const std::uint64_t e1 = cbc.epoch();
  EXPECT_GT(e1, e0);

  // Traffic is NOT structural: recorded deliveries/publishes must leave the
  // epoch alone, or cached BIAs would never be reusable.
  cbc.record_delivery(SubId{1}, AdvId{0}, 5);
  cbc.record_delivery(SubId{1}, AdvId{0}, 6);
  cbc.register_publisher(ClientId{2}, AdvId{0});
  const std::uint64_t e2 = cbc.epoch();
  EXPECT_GT(e2, e1);
  cbc.record_publish(AdvId{0}, 7, 1.0, 1.0);
  cbc.record_matching(4, 0.001);
  EXPECT_EQ(cbc.epoch(), e2);

  // Unregistering something that exists bumps; unknown ids do not.
  cbc.unregister_subscription(SubId{999});
  EXPECT_EQ(cbc.epoch(), e2);
  cbc.unregister_subscription(SubId{1});
  const std::uint64_t e3 = cbc.epoch();
  EXPECT_GT(e3, e2);
  cbc.unregister_publisher(AdvId{999});
  EXPECT_EQ(cbc.epoch(), e3);

  cbc.clear();
  EXPECT_GT(cbc.epoch(), e3);
}

TEST(CbcEpoch, SnapshotCarriesEpoch) {
  CbcComponent cbc(64);
  cbc.register_subscription(SubId{1}, ClientId{1}, Filter{});
  const BrokerInfo info = cbc.snapshot(BrokerId{3}, MatchingDelayFunction{}, 100.0);
  EXPECT_EQ(info.epoch, cbc.epoch());
}

// ---------------------------------------------------------------------------
// Epoch-based incremental gather
// ---------------------------------------------------------------------------

std::vector<BrokerId> broker_ids(std::size_t n) {
  std::vector<BrokerId> v;
  for (std::size_t i = 0; i < n; ++i) v.emplace_back(i);
  return v;
}

BrokerInfo info_with_epoch(BrokerId b, std::uint64_t epoch, double bw) {
  BrokerInfo info;
  info.id = b;
  info.total_out_bw = bw;
  info.epoch = epoch;
  LocalSubscriptionInfo s;
  s.id = SubId{b.value()};
  s.client = ClientId{b.value()};
  s.profile = SubscriptionProfile(64);
  info.subscriptions.push_back(std::move(s));
  return info;
}

TEST(EpochGather, UnchangedEpochsReuseCachedAnswers) {
  const Topology t = build_manual_tree(broker_ids(9), 2);
  std::size_t full_fetches = 0;
  const auto provider = [&full_fetches](BrokerId b) -> std::optional<BrokerInfo> {
    ++full_fetches;
    return info_with_epoch(b, 7, 100.0);
  };
  const GatheredInfo first = gather_information(t, BrokerId{0}, provider);
  ASSERT_EQ(first.brokers.size(), 9u);
  ASSERT_EQ(full_fetches, 9u);

  const GatheredInfo second = gather_information_incremental(
      t, BrokerId{0}, first, [](BrokerId) { return std::optional<std::uint64_t>{7}; },
      provider);
  EXPECT_EQ(second.brokers.size(), 9u);
  EXPECT_EQ(full_fetches, 9u) << "unchanged epochs must not re-fetch BIAs";
  EXPECT_EQ(second.stats.epoch_probes, 9u);
  EXPECT_EQ(second.stats.brokers_reused, 9u);
  EXPECT_EQ(second.subscriptions.size(), 9u);
}

TEST(EpochGather, ChangedEpochRefetchesOnlyThatBroker) {
  const Topology t = build_manual_tree(broker_ids(9), 2);
  const auto provider = [](BrokerId b) -> std::optional<BrokerInfo> {
    return info_with_epoch(b, 7, 100.0);
  };
  const GatheredInfo first = gather_information(t, BrokerId{0}, provider);

  // Broker 4 changed: epoch moved to 8 and the fresh payload differs.
  std::size_t full_fetches = 0;
  const auto fresh_provider = [&full_fetches](BrokerId b) -> std::optional<BrokerInfo> {
    ++full_fetches;
    return info_with_epoch(b, 8, 250.0);
  };
  const GatheredInfo second = gather_information_incremental(
      t, BrokerId{0}, first,
      [](BrokerId b) {
        return std::optional<std::uint64_t>{b == BrokerId{4} ? 8u : 7u};
      },
      fresh_provider);
  EXPECT_EQ(full_fetches, 1u);
  EXPECT_EQ(second.stats.brokers_reused, 8u);
  for (const BrokerInfo& b : second.brokers) {
    EXPECT_EQ(b.total_out_bw, b.id == BrokerId{4} ? 250.0 : 100.0);
  }
}

TEST(EpochGather, UnknownBrokersFallBackToFullFetch) {
  // The previous gather never saw brokers beyond id 4; a grown overlay must
  // fetch the new ones in full.
  const Topology small = build_manual_tree(broker_ids(5), 2);
  const auto provider = [](BrokerId b) -> std::optional<BrokerInfo> {
    return info_with_epoch(b, 1, 100.0);
  };
  const GatheredInfo first = gather_information(small, BrokerId{0}, provider);

  const Topology grown = build_manual_tree(broker_ids(7), 2);
  std::size_t full_fetches = 0;
  const auto counting = [&full_fetches](BrokerId b) -> std::optional<BrokerInfo> {
    ++full_fetches;
    return info_with_epoch(b, 1, 100.0);
  };
  const GatheredInfo second = gather_information_incremental(
      grown, BrokerId{0}, first, [](BrokerId) { return std::optional<std::uint64_t>{1}; },
      counting);
  EXPECT_EQ(second.brokers.size(), 7u);
  EXPECT_EQ(second.stats.brokers_reused, 5u);
  EXPECT_EQ(full_fetches, 2u);
}

// ---------------------------------------------------------------------------
// Croc incremental session lifecycle (simulator-backed)
// ---------------------------------------------------------------------------

ScenarioConfig small_scenario() {
  ScenarioConfig c;
  c.num_brokers = 8;
  c.num_publishers = 3;
  c.subs_per_publisher = 8;
  c.full_out_bw_kb_s = 120.0;
  c.seed = 31;
  return c;
}

TEST(CrocIncremental, PlanWithoutSessionFails) {
  Croc croc(CrocConfig{});
  const ReconfigurationReport r = croc.plan_incremental(SubscriptionDelta{});
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kNoIncrementalSession);
  EXPECT_FALSE(croc.has_session());
}

TEST(CrocIncremental, BootstrapThenEpochReuse) {
  Simulation sim = make_simulation(small_scenario());
  sim.run(30.0);
  CrocConfig cfg;
  cfg.seed = 31;
  Croc croc(cfg);

  const ReconfigurationReport r1 = croc.reconfigure_incremental(sim, BrokerId{0});
  ASSERT_TRUE(r1.success) << failure_reason_name(r1.failure);
  EXPECT_TRUE(r1.incremental);
  EXPECT_TRUE(croc.has_session());
  ASSERT_NE(croc.session_cram(), nullptr);
  const std::size_t live = croc.session_cram()->live_subscriptions();
  EXPECT_GT(live, 0u);

  // Traffic only — the second pass must reuse every cached BIA and plan an
  // empty delta through the live session.
  sim.run(5.0);
  const ReconfigurationReport r2 = croc.reconfigure_incremental(sim, BrokerId{0});
  ASSERT_TRUE(r2.success) << failure_reason_name(r2.failure);
  EXPECT_TRUE(r2.incremental);
  EXPECT_GT(r2.gather.brokers_reused, 0u);
  EXPECT_EQ(r2.gather.brokers_reused, r2.gather.brokers_answered);
  EXPECT_EQ(r2.delta.added_units, 0u);
  EXPECT_EQ(r2.delta.removed_found, 0u);
  EXPECT_EQ(croc.session_cram()->live_subscriptions(), live);

  // The session plan is a complete, appliable reconfiguration.
  const ApplyResult apply = apply_plan_transactional(
      sim.deployment(), r2.plan, [&sim](BrokerId b) { return sim.broker_alive(b); });
  EXPECT_TRUE(apply.success) << apply.detail;
}

TEST(CrocIncremental, PlanIncrementalAppliesDeltas) {
  Simulation sim = make_simulation(small_scenario());
  sim.run(30.0);
  CrocConfig cfg;
  cfg.seed = 31;
  Croc croc(cfg);
  const GatheredInfo info = gather_information(
      sim.deployment().topology, BrokerId{0},
      [&sim](BrokerId b) { return sim.broker_info(b); });
  ASSERT_TRUE(croc.begin_incremental(info).success);
  const std::size_t live = croc.session_cram()->live_subscriptions();

  // Remove two gathered subscriptions and add one synthetic arrival.
  SubscriptionDelta delta;
  delta.removed.push_back(info.subscriptions[0].info.id);
  delta.removed.push_back(info.subscriptions[1].info.id);
  SubscriptionRecord arrival;
  arrival.home = info.subscriptions[2].home;
  arrival.info = info.subscriptions[2].info;
  arrival.info.id = SubId{900001};
  delta.added.push_back(arrival);

  const ReconfigurationReport r = croc.plan_incremental(delta);
  ASSERT_TRUE(r.success) << failure_reason_name(r.failure);
  EXPECT_TRUE(r.incremental);
  EXPECT_EQ(r.delta.removed_found, 2u);
  EXPECT_EQ(r.delta.added_units, 1u);
  EXPECT_EQ(croc.session_cram()->live_subscriptions(), live - 1);
  // The arrival is placed; the departed subscriptions are not.
  EXPECT_TRUE(r.plan.subscriber_home.contains(SubId{900001}));
  EXPECT_FALSE(r.plan.subscriber_home.contains(info.subscriptions[0].info.id));
}

TEST(CrocIncremental, StructuralChangeResetsSession) {
  Simulation sim = make_simulation(small_scenario());
  sim.run(30.0);
  CrocConfig cfg;
  cfg.seed = 31;
  Croc croc(cfg);
  const ReconfigurationReport r1 = croc.reconfigure_incremental(sim, BrokerId{0});
  ASSERT_TRUE(r1.success);

  // Crash a non-entry broker: the broker pool shrinks, which invalidates
  // the warm session; the next incremental reconfigure must bootstrap a
  // fresh one instead of planning against a stale pool.
  auto& resets = obs::MetricsRegistry::global().counter("croc.incremental.session_resets");
  const std::uint64_t before = resets.value();
  sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, BrokerId{7}, {}, 0, 0});
  const ReconfigurationReport r2 = croc.reconfigure_incremental(sim, BrokerId{0});
  ASSERT_TRUE(r2.success) << failure_reason_name(r2.failure);
  EXPECT_TRUE(r2.incremental);
  EXPECT_EQ(resets.value(), before + 1);
  EXPECT_TRUE(croc.has_session());
}

TEST(CrocIncremental, EndIncrementalDropsSession) {
  Simulation sim = make_simulation(small_scenario());
  sim.run(30.0);
  Croc croc(CrocConfig{});
  ASSERT_TRUE(croc.reconfigure_incremental(sim, BrokerId{0}).success);
  ASSERT_TRUE(croc.has_session());
  croc.end_incremental();
  EXPECT_FALSE(croc.has_session());
  EXPECT_EQ(croc.session_cram(), nullptr);
  const ReconfigurationReport r = croc.plan_incremental(SubscriptionDelta{});
  EXPECT_EQ(r.failure, FailureReason::kNoIncrementalSession);
}

// ---------------------------------------------------------------------------
// Churn generator determinism and stationarity
// ---------------------------------------------------------------------------

TEST(ChurnGenerator, DeterministicFromSeed) {
  Rng rng(41);
  std::vector<SubscriptionProfile> refs;
  std::vector<SubId> live;
  for (std::uint64_t i = 0; i < 50; ++i) {
    refs.push_back(random_range_profile(rng));
    live.push_back(SubId{i});
  }
  ChurnOptions opts;
  opts.turnover_per_s = 0.1;
  ChurnGenerator g1(opts, refs, live, 1000, Rng(5));
  ChurnGenerator g2(opts, refs, live, 1000, Rng(5));
  for (int step = 0; step < 20; ++step) {
    const ChurnBatch b1 = g1.step();
    const ChurnBatch b2 = g2.step();
    ASSERT_EQ(b1.removed, b2.removed);
    ASSERT_EQ(b1.added.size(), b2.added.size());
    for (std::size_t i = 0; i < b1.added.size(); ++i) {
      EXPECT_EQ(b1.added[i].id, b2.added[i].id);
      EXPECT_TRUE(SubscriptionProfile::same_bits(b1.added[i].profile, b2.added[i].profile));
    }
  }
  EXPECT_EQ(g1.live().size(), g2.live().size());
}

TEST(ChurnGenerator, PopulationHoversAroundTarget) {
  Rng rng(43);
  std::vector<SubscriptionProfile> refs;
  std::vector<SubId> live;
  for (std::uint64_t i = 0; i < 100; ++i) {
    refs.push_back(random_range_profile(rng));
    live.push_back(SubId{i});
  }
  ChurnOptions opts;
  opts.turnover_per_s = 0.05;
  ChurnGenerator gen(opts, refs, live, 1000, Rng(7));
  std::size_t total_changes = 0;
  for (int step = 0; step < 200; ++step) {
    const ChurnBatch b = gen.step();
    total_changes += b.added.size() + b.removed.size();
    for (const ChurnBatch::Arrival& a : b.added) {
      EXPECT_FALSE(a.profile.empty()) << "arrivals must induce load";
    }
  }
  EXPECT_GT(total_changes, 0u);
  // Stationary around the starting population (100): drift beyond +-50%
  // after 200 steps would mean arrivals and departures are unbalanced.
  EXPECT_GT(gen.live().size(), 50u);
  EXPECT_LT(gen.live().size(), 150u);
  EXPECT_EQ(gen.target_population(), 100u);
}

}  // namespace
}  // namespace greenps
