#include <gtest/gtest.h>

#include "language/advertisement.hpp"
#include "language/publication.hpp"
#include "language/subscription.hpp"

namespace greenps {
namespace {

Publication stock_pub() {
  Publication p(AdvId{1}, 42);
  p.set_attr("class", Value(std::string("STOCK")));
  p.set_attr("symbol", Value(std::string("YHOO")));
  p.set_attr("open", Value(18.37));
  p.set_attr("high", Value(18.6));
  p.set_attr("low", Value(18.37));
  p.set_attr("close", Value(18.37));
  p.set_attr("volume", Value(std::int64_t{6200}));
  return p;
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(std::int64_t{5}).equals(Value(5.0)));
  EXPECT_TRUE(Value(4.5).less_than(Value(std::int64_t{5})));
  EXPECT_FALSE(Value(std::string("5")).equals(Value(std::int64_t{5})));
}

TEST(Value, IncomparableKindsNeverOrdered) {
  EXPECT_FALSE(Value(std::string("a")).less_than(Value(1.0)));
  EXPECT_FALSE(Value(true).less_than(Value(false)));
}

TEST(Predicate, EqualityOps) {
  Predicate p{"symbol", Op::kEq, Value(std::string("YHOO"))};
  EXPECT_TRUE(p.matches(Value(std::string("YHOO"))));
  EXPECT_FALSE(p.matches(Value(std::string("GOOG"))));
}

TEST(Predicate, NumericComparisons) {
  Predicate gt{"volume", Op::kGt, Value(std::int64_t{1000})};
  EXPECT_TRUE(gt.matches(Value(std::int64_t{6200})));
  EXPECT_FALSE(gt.matches(Value(std::int64_t{1000})));
  Predicate ge{"volume", Op::kGe, Value(std::int64_t{1000})};
  EXPECT_TRUE(ge.matches(Value(std::int64_t{1000})));
  Predicate lt{"open", Op::kLt, Value(20.0)};
  EXPECT_TRUE(lt.matches(Value(18.37)));
  Predicate le{"open", Op::kLe, Value(18.37)};
  EXPECT_TRUE(le.matches(Value(18.37)));
}

TEST(Predicate, Negation) {
  Predicate neq{"symbol", Op::kNeq, Value(std::string("YHOO"))};
  EXPECT_FALSE(neq.matches(Value(std::string("YHOO"))));
  EXPECT_TRUE(neq.matches(Value(std::string("GOOG"))));
  // Incomparable kinds do not satisfy !=.
  EXPECT_FALSE(neq.matches(Value(1.0)));
}

TEST(Predicate, StringOperators) {
  Predicate pre{"symbol", Op::kPrefix, Value(std::string("YH"))};
  EXPECT_TRUE(pre.matches(Value(std::string("YHOO"))));
  EXPECT_FALSE(pre.matches(Value(std::string("GOOG"))));
  Predicate suf{"symbol", Op::kSuffix, Value(std::string("OO"))};
  EXPECT_TRUE(suf.matches(Value(std::string("YHOO"))));
  Predicate con{"symbol", Op::kContains, Value(std::string("HO"))};
  EXPECT_TRUE(con.matches(Value(std::string("YHOO"))));
  EXPECT_FALSE(con.matches(Value(std::string("GOOG"))));
}

TEST(Filter, ConjunctionRequiresAllPredicates) {
  Filter f;
  f.add({"class", Op::kEq, Value(std::string("STOCK"))});
  f.add({"symbol", Op::kEq, Value(std::string("YHOO"))});
  f.add({"volume", Op::kGt, Value(std::int64_t{1000})});
  EXPECT_TRUE(f.matches(stock_pub()));
  f.add({"volume", Op::kGt, Value(std::int64_t{10000})});
  EXPECT_FALSE(f.matches(stock_pub()));
}

TEST(Filter, MissingAttributeFailsMatch) {
  Filter f;
  f.add({"nonexistent", Op::kGt, Value(1.0)});
  EXPECT_FALSE(f.matches(stock_pub()));
}

TEST(Filter, PresentOperator) {
  Filter f;
  f.add({"volume", Op::kPresent, Value()});
  EXPECT_TRUE(f.matches(stock_pub()));
  Filter g;
  g.add({"bid", Op::kPresent, Value()});
  EXPECT_FALSE(g.matches(stock_pub()));
}

TEST(Publication, AttributesSortedAndReplaceable) {
  Publication p(AdvId{3}, 1);
  p.set_attr("b", Value(1.0));
  p.set_attr("a", Value(2.0));
  p.set_attr("b", Value(3.0));
  ASSERT_EQ(p.attrs().size(), 2u);
  EXPECT_EQ(p.attrs()[0].first, "a");
  EXPECT_EQ(p.attrs()[1].first, "b");
  EXPECT_DOUBLE_EQ(p.find("b")->as_double(), 3.0);
  EXPECT_EQ(p.find("zzz"), nullptr);
}

TEST(Publication, HeaderCarriesAdvAndSeq) {
  const Publication p = stock_pub();
  EXPECT_EQ(p.adv_id(), AdvId{1});
  EXPECT_EQ(p.seq(), 42);
}

TEST(Publication, SizeGrowsWithContent) {
  Publication small(AdvId{1}, 0);
  small.set_attr("a", Value(1.0));
  EXPECT_GT(stock_pub().size_kb(), small.size_kb());
  EXPECT_GT(small.size_kb(), 0.0);
}

TEST(Advertisement, MatchesOwnPublications) {
  Filter f;
  f.add({"class", Op::kEq, Value(std::string("STOCK"))});
  f.add({"symbol", Op::kEq, Value(std::string("YHOO"))});
  Advertisement adv(AdvId{1}, f);
  EXPECT_TRUE(adv.matches(stock_pub()));
}

}  // namespace
}  // namespace greenps
