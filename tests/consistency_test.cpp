// Cross-implementation consistency properties: the copy-free packing probe
// must agree with the materializing packer; CRAM must be deterministic;
// sliding windows must keep aligned set algebra exact.
#include <gtest/gtest.h>

#include "alloc/bin_packing.hpp"
#include "alloc/cram.hpp"
#include "alloc_test_util.hpp"
#include "panda/panda.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

using testutil::one_publisher;
using testutil::pool;
using testutil::unit;

// The dry-run probe exists purely as an optimization of bin packing; on
// random inputs it must report exactly the same feasibility and broker
// count as the materializing version.
TEST(Consistency, PackProbeAgreesWithFullPacking) {
  Rng rng(17);
  const auto table = one_publisher();
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<SubUnit> units;
    const std::size_t n = 5 + rng.index(60);
    for (std::size_t i = 0; i < n; ++i) {
      const auto from = rng.uniform_int(0, 70);
      units.push_back(unit(i, from, from + 1 + rng.uniform_int(0, 29), table));
    }
    const std::size_t brokers = 1 + rng.index(20);
    const Bandwidth bw = 40.0 + rng.uniform_real(0, 120.0);
    const Allocation full = bin_packing_allocate(pool(brokers, bw), units, table);
    std::vector<const SubUnit*> ptrs;
    for (const auto& u : units) ptrs.push_back(&u);
    const PackProbe probe = bin_packing_probe(pool(brokers, bw), ptrs, table);
    ASSERT_EQ(probe.success, full.success) << "trial " << trial;
    if (full.success) {
      EXPECT_EQ(probe.brokers_used, full.brokers_used()) << "trial " << trial;
    }
  }
}

TEST(Consistency, CramIsDeterministic) {
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  for (int g = 0; g < 5; ++g) {
    for (int i = 0; i < 6; ++i) {
      units.push_back(unit(id++, g * 15 + i, g * 15 + i + 12, table));
    }
  }
  const CramResult a = cram_allocate(pool(20, 80.0), units, table);
  const CramResult b = cram_allocate(pool(20, 80.0), units, table);
  ASSERT_TRUE(a.allocation.success);
  ASSERT_EQ(a.allocation.brokers_used(), b.allocation.brokers_used());
  ASSERT_EQ(a.allocation.unit_count(), b.allocation.unit_count());
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.closeness_computations, b.stats.closeness_computations);
  for (std::size_t i = 0; i < a.allocation.brokers.size(); ++i) {
    EXPECT_EQ(a.allocation.brokers[i].broker().id, b.allocation.brokers[i].broker().id);
    EXPECT_EQ(a.allocation.brokers[i].units().size(),
              b.allocation.brokers[i].units().size());
  }
}

// Windows anchored at very different points must still compute exact
// aligned intersections after both have slid.
TEST(Consistency, SlidWindowsKeepAlignedAlgebra) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    WindowedBitVector a(64), b(64);
    std::set<MessageSeq> sa, sb;
    for (int i = 0; i < 80; ++i) {
      const MessageSeq s = rng.uniform_int(0, 300);
      if (rng.chance(0.5)) {
        if (a.record(s)) sa.insert(s);
      } else {
        if (b.record(s)) sb.insert(s);
      }
    }
    std::erase_if(sa, [&](MessageSeq s) { return !a.test_seq(s); });
    std::erase_if(sb, [&](MessageSeq s) { return !b.test_seq(s); });
    std::size_t expected = 0;
    for (const MessageSeq s : sa) {
      if (sb.contains(s)) ++expected;
    }
    EXPECT_EQ(WindowedBitVector::intersect_count(a, b), expected) << "trial " << trial;
    EXPECT_EQ(WindowedBitVector::union_count(a, b), sa.size() + sb.size() - expected);
  }
}

TEST(Consistency, HeterogeneousScenarioRoundTripsThroughPanda) {
  ScenarioConfig c;
  c.num_brokers = 12;
  c.num_publishers = 3;
  c.subs_per_publisher = 8;
  c.heterogeneous = true;
  c.seed = 77;
  const Scenario sc = build_scenario(c);
  const std::string text = write_panda(sc.deployment);
  const PandaTopology reparsed = parse_panda(text);
  EXPECT_EQ(reparsed.deployment.topology.broker_count(),
            sc.deployment.topology.broker_count());
  EXPECT_EQ(reparsed.deployment.subscribers.size(), sc.deployment.subscribers.size());
  // Capacities survive the round trip (by position in the sorted order).
  for (const BrokerId b : sc.deployment.topology.brokers()) {
    EXPECT_DOUBLE_EQ(reparsed.deployment.capacities.at(b).out_bw_kb_s,
                     sc.deployment.capacities.at(b).out_bw_kb_s);
  }
}

TEST(Consistency, ClusterProfileEqualsMemberUnion) {
  // A CRAM result's cluster profiles must equal the OR of their members'
  // original profiles (Figure 1 semantics end to end).
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  std::unordered_map<std::uint64_t, SubscriptionProfile> originals;
  for (std::uint64_t i = 0; i < 12; ++i) {
    const auto from = static_cast<MessageSeq>((i % 4) * 20);
    auto u = unit(i, from, from + 15, table);
    originals.emplace(i, u.profile);
    units.push_back(std::move(u));
  }
  const CramResult r = cram_allocate(pool(10, 100.0), units, table);
  ASSERT_TRUE(r.allocation.success);
  for (const auto& b : r.allocation.brokers) {
    for (const auto& u : b.units()) {
      SubscriptionProfile expected;
      for (const SubId m : u.members) expected.merge(originals.at(m.value()));
      EXPECT_TRUE(SubscriptionProfile::same_bits(expected, u.profile));
    }
  }
}

}  // namespace
}  // namespace greenps
