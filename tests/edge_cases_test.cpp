// Degenerate inputs and failure injection across the reconfiguration
// pipeline: empty workloads, silent subscriptions (no traffic recorded),
// publishers missing from the table, single-broker overlays.
#include <gtest/gtest.h>

#include "alloc/bin_packing.hpp"
#include "alloc/cram.hpp"
#include "alloc_test_util.hpp"
#include "croc/croc.hpp"
#include "scenario/scenario.hpp"

namespace greenps {
namespace {

using testutil::one_publisher;
using testutil::pool;
using testutil::unit;

TEST(EdgeCases, CramWithNoUnits) {
  const auto table = one_publisher();
  const CramResult r = cram_allocate(pool(3, 100.0), {}, table);
  EXPECT_TRUE(r.allocation.success);
  EXPECT_EQ(r.allocation.brokers_used(), 0u);
  EXPECT_EQ(r.stats.iterations, 0u);
}

TEST(EdgeCases, CramWithSilentSubscriptions) {
  // Subscriptions that never received anything: zero load, empty profiles.
  // They must all be allocated (somewhere) and never clustered with live
  // traffic under the prunable metrics.
  const auto table = one_publisher();
  std::vector<SubUnit> units;
  for (std::uint64_t i = 0; i < 5; ++i) {
    units.push_back(make_subscription_unit(SubId{i}, SubscriptionProfile(100), table));
  }
  units.push_back(unit(10, 0, 50, table));
  const CramResult r = cram_allocate(pool(5, 100.0), units, table);
  ASSERT_TRUE(r.allocation.success);
  std::size_t endpoints = 0;
  for (const auto& b : r.allocation.brokers) {
    for (const auto& u : b.units()) {
      endpoints += u.members.size();
      if (u.members.size() > 1) {
        // A cluster containing a silent subscription may only pair silent
        // ones together (closeness with the live profile is zero).
        const bool mixes_live =
            u.profile.cardinality() > 0 && u.members.size() != 1;
        if (mixes_live) {
          // The only live subscription is SubId 10; ensure it is alone.
          for (const SubId m : u.members) EXPECT_NE(m, SubId{10});
        }
      }
    }
  }
  EXPECT_EQ(endpoints, 6u);
}

TEST(EdgeCases, UnitsForUnknownPublishersHaveZeroLoad) {
  PublisherTable empty;
  SubscriptionProfile p(100);
  for (MessageSeq s = 0; s < 50; ++s) p.record(AdvId{77}, s);
  const SubUnit u = make_subscription_unit(SubId{1}, std::move(p), empty);
  EXPECT_DOUBLE_EQ(u.in_rate, 0.0);
  EXPECT_DOUBLE_EQ(u.out_bw, 0.0);
  // Zero-load units always fit.
  const Allocation a = bin_packing_allocate(pool(1, 1.0), {u}, empty);
  EXPECT_TRUE(a.success);
}

TEST(EdgeCases, SingleBrokerScenarioReconfigures) {
  ScenarioConfig c;
  c.num_brokers = 1;
  c.num_publishers = 2;
  c.subs_per_publisher = 5;
  c.seed = 3;
  Simulation sim = make_simulation(c);
  sim.run(30.0);
  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.allocated_brokers, 1u);
  EXPECT_EQ(report.plan.root, BrokerId{0});
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(30.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
}

TEST(EdgeCases, ReconfigureBeforeAnyTraffic) {
  // CROC runs on a deployment whose profiles are empty (no publications
  // yet): every subscription has zero estimated load, so everything fits
  // one broker. The system must stay correct after applying such a plan.
  ScenarioConfig c;
  c.num_brokers = 8;
  c.num_publishers = 2;
  c.subs_per_publisher = 10;
  c.seed = 4;
  Simulation sim = make_simulation(c);
  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, BrokerId{0});
  ASSERT_TRUE(report.success);
  sim.redeploy(apply_plan(sim.deployment(), report.plan));
  sim.run(30.0);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
}

TEST(EdgeCases, ScenarioWithZeroSubscriptions) {
  ScenarioConfig c;
  c.num_brokers = 4;
  c.num_publishers = 2;
  c.subs_per_publisher = 0;
  Simulation sim = make_simulation(c);
  sim.run(10.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
  EXPECT_EQ(sim.metrics().deliveries(), 0u);
  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, BrokerId{0});
  // Nothing to allocate: a valid (possibly single-broker) plan results.
  ASSERT_TRUE(report.success);
}

TEST(EdgeCases, OverloadedPoolFailsCleanly) {
  // Gathered info whose measured subscription loads exceed every broker's
  // capacity: Phase 2 must fail and the report must say so.
  GatheredInfo info;
  BrokerInfo broker;
  broker.id = BrokerId{0};
  broker.total_out_bw = 1.0;  // kB/s, hopeless
  const PublisherProfile pub{AdvId{0}, 100.0, 100.0, 100000};
  info.publisher_table[pub.adv] = pub;
  info.publishers.push_back(PublisherRecord{BrokerId{0}, ClientId{99}, pub});
  for (std::uint64_t i = 0; i < 5; ++i) {
    LocalSubscriptionInfo s;
    s.id = SubId{i};
    s.client = ClientId{i};
    s.profile = SubscriptionProfile(100);
    for (MessageSeq m = 0; m < 30; ++m) s.profile.record(pub.adv, m);  // 30 kB/s
    broker.subscriptions.push_back(s);
    info.subscriptions.push_back(SubscriptionRecord{BrokerId{0}, std::move(s)});
  }
  info.brokers.push_back(std::move(broker));
  Croc croc(CrocConfig{});
  const auto report = croc.plan_from_info(info);
  EXPECT_FALSE(report.success);
}

TEST(EdgeCases, SaturatedDeploymentMeasuresPoorlyButStaysUp) {
  // A deployment whose links cannot carry the offered load: deliveries lag,
  // profiles underfill, yet the system and a subsequent reconfiguration
  // remain functional (estimates are simply optimistic).
  ScenarioConfig c;
  c.num_brokers = 2;
  c.num_publishers = 4;
  c.subs_per_publisher = 50;
  c.full_out_bw_kb_s = 0.5;
  Simulation sim = make_simulation(c);
  sim.run(30.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
  Croc croc(CrocConfig{});
  const auto report = croc.reconfigure(sim, BrokerId{0});
  if (report.success) {
    sim.redeploy(apply_plan(sim.deployment(), report.plan));
  }
  sim.run(10.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
}

TEST(EdgeCases, BinPackingZeroBandwidthBrokerNeverUsed) {
  const auto table = one_publisher();
  std::vector<AllocBroker> brokers = {
      {BrokerId{0}, 0.0, {20e-6, 0.5e-6}},
      {BrokerId{1}, 100.0, {20e-6, 0.5e-6}},
  };
  const Allocation a = bin_packing_allocate(brokers, {unit(1, 0, 10, table)}, table);
  ASSERT_TRUE(a.success);
  ASSERT_EQ(a.brokers_used(), 1u);
  EXPECT_EQ(a.brokers[0].broker().id, BrokerId{1});
}

}  // namespace
}  // namespace greenps
