// The self-healing control plane's contract, from the phi-accrual detector
// up to the closed loop:
//
//   - Detection: suspicion accrues with silence, the structural min-missed
//     floors make fault-free false positives impossible, a heartbeat clears
//     any suspicion, and death is sticky until the topology moves on.
//   - Recovery: a confirmed death overrides the load controller — the loop
//     plans around the dead broker (quarantined from CROC's pool AND its
//     reserve), re-homes the orphaned clients with a bounded-migration
//     plan (survivors whose broker lives on do not move), and applies
//     transactionally.
//   - Resilience: a second broker dying inside the recovery apply rolls
//     back, backs off, and the re-plan converges with every casualty
//     evicted — and the per-epoch loss audits stay clean throughout.
//   - Degraded mode: while survivors absorb a dead peer's load, admission
//     control sheds new publisher injections (the lowest-priority class) at
//     the door instead of growing unbounded backlogs; everything deferred,
//     re-admitted or shed is accounted in FaultStats/SimSummary and the
//     loss oracle classifies it as excused.
//   - Determinism: the whole crash -> detect -> recover trajectory is
//     bit-identical across simulator worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "control/control_loop.hpp"
#include "control/failure_detector.hpp"
#include "croc/reconfig_plan.hpp"
#include "scenario/scenario.hpp"
#include "sim/faults.hpp"
#include "sim/loss_oracle.hpp"
#include "sim/simulation.hpp"

namespace greenps::control {
namespace {

// --- FailureDetector unit tests ----------------------------------------

TEST(FailureDetector, PhiAccruesWithSilenceAndThresholdsFire) {
  FailureDetector fd;  // expected interval 1 s, suspect >= 2 missed, dead >= 3
  const BrokerId b{7};
  fd.watch({b}, 0.0);
  for (int t = 1; t <= 20; ++t) fd.heartbeat(b, static_cast<double>(t));

  // Fresh silence: phi is tiny and monotone in the gap.
  EXPECT_LT(fd.phi(b, 20.5), 1.0);
  EXPECT_LT(fd.phi(b, 21.0), fd.phi(b, 22.0));
  EXPECT_LT(fd.phi(b, 22.0), fd.phi(b, 23.0));

  // Under the min-missed floor nothing fires, whatever phi says.
  fd.evaluate(21.5);
  EXPECT_EQ(fd.health(b), BrokerHealth::kAlive);

  fd.evaluate(22.2);  // > 2 expected intervals of silence
  EXPECT_EQ(fd.health(b), BrokerHealth::kSuspect);
  EXPECT_EQ(fd.suspects(), std::vector<BrokerId>{b});
  EXPECT_EQ(fd.suspect_transitions(), 1u);
  EXPECT_EQ(fd.dead_transitions(), 0u);

  fd.evaluate(23.5);  // > 3 expected intervals
  EXPECT_EQ(fd.health(b), BrokerHealth::kDead);
  EXPECT_EQ(fd.dead(), std::vector<BrokerId>{b});
  EXPECT_EQ(fd.dead_since(b), 23.5);
  EXPECT_EQ(fd.dead_transitions(), 1u);

  // Death is sticky across further evaluations.
  fd.evaluate(30.0);
  EXPECT_EQ(fd.health(b), BrokerHealth::kDead);
  EXPECT_EQ(fd.dead_since(b), 23.5);
  EXPECT_EQ(fd.dead_transitions(), 1u);

  // ...until the broker is heard from again.
  fd.heartbeat(b, 31.0);
  EXPECT_EQ(fd.health(b), BrokerHealth::kAlive);
  EXPECT_LT(fd.dead_since(b), 0.0);
}

TEST(FailureDetector, HeartbeatClearsSuspicionWithoutDeathTransition) {
  FailureDetector fd;
  const BrokerId b{3};
  fd.watch({b}, 0.0);
  for (int t = 1; t <= 10; ++t) fd.heartbeat(b, static_cast<double>(t));
  fd.evaluate(12.5);
  ASSERT_EQ(fd.health(b), BrokerHealth::kSuspect);

  // One delayed heartbeat: suspicion clears, and the learned window widens
  // instead of the detector flapping straight back to suspect.
  fd.heartbeat(b, 12.6);
  EXPECT_EQ(fd.health(b), BrokerHealth::kAlive);
  fd.evaluate(13.6);
  EXPECT_EQ(fd.health(b), BrokerHealth::kAlive);
  EXPECT_EQ(fd.dead_transitions(), 0u);
}

TEST(FailureDetector, WatchGrantsGraceAndDropsDepartedBrokers) {
  FailureDetector fd;
  const BrokerId a{0};
  const BrokerId b{1};
  const BrokerId c{2};
  fd.watch({a, b}, 0.0);
  for (int t = 1; t <= 5; ++t) {
    fd.heartbeat(a, static_cast<double>(t));
    fd.heartbeat(b, static_cast<double>(t));
  }

  // Redeploy: a leaves, c joins with a grace heartbeat at the watch time.
  fd.watch({b, c}, 5.0);
  fd.evaluate(6.5);  // c is 1.5 s past its grace mark: under every floor
  EXPECT_EQ(fd.health(c), BrokerHealth::kAlive);
  EXPECT_TRUE(fd.suspects().empty());
  // The departed broker is not tracked (and never counted) anymore.
  EXPECT_LT(fd.dead_since(a), 0.0);
  fd.evaluate(60.0);
  for (const BrokerId d : fd.dead()) EXPECT_NE(d, a);
}

// --- closed-loop scaffolding -------------------------------------------

// Same shape as the elastic-controller tests: small enough for seconds,
// large enough that a broker death leaves survivors with spare capacity.
ScenarioConfig heal_scenario(std::uint64_t seed = 42) {
  ScenarioConfig cfg;
  cfg.num_brokers = 10;
  cfg.num_publishers = 3;
  cfg.subs_per_publisher = 15;
  cfg.full_out_bw_kb_s = 30.0;
  cfg.seed = seed;
  return cfg;
}

ControlLoopConfig heal_loop(std::uint64_t seed) {
  ControlLoopConfig lc;
  lc.interval_s = 5;
  lc.croc.seed = seed;
  lc.controller.warmup_s = 10;
  lc.controller.commission_cooldown_s = 10;
  lc.controller.consolidate_cooldown_s = 20;
  lc.controller.failure_backoff_s = 10;
  return lc;
}

Simulation warmed_sim(const ScenarioConfig& scen, double multiplier,
                      std::size_t workers = 1) {
  Simulation sim = make_simulation(scen, SimOptions{.workers = workers});
  const RateModulator mod(sim);
  mod.apply(sim, multiplier);
  sim.run(10.0);
  sim.reset_metrics();
  return sim;
}

TEST(SelfHealing, FaultFreeRunNeverSuspectsAnyBroker) {
  const ScenarioConfig scen = heal_scenario();
  Simulation sim = warmed_sim(scen, 0.5);
  ControlLoop loop(sim, heal_loop(scen.seed));
  const RateModulator mod(sim);
  // A mildly bumpy day with real consolidations/commissions in it: sampler
  // epochs restart on every redeploy, and none of it may look like death.
  for (int i = 0; i < 18; ++i) {
    mod.apply(sim, i < 6 ? 0.5 : i < 12 ? 4.0 : 0.5);
    loop.step();
  }
  EXPECT_GT(loop.totals().reconfigurations, 0u)
      << "schedule never exercised a redeploy";
  EXPECT_EQ(loop.detector().suspect_transitions(), 0u);
  EXPECT_EQ(loop.detector().dead_transitions(), 0u);
  EXPECT_EQ(loop.totals().detections, 0u);
  EXPECT_EQ(loop.totals().recoveries, 0u);
}

TEST(SelfHealing, CrashedBrokerIsDetectedEvictedAndClientsRehomed) {
  const ScenarioConfig scen = heal_scenario();
  Simulation sim = warmed_sim(scen, 0.8);
  ControlLoop loop(sim, heal_loop(scen.seed));
  loop.step();
  loop.step();

  // Kill the home of the first subscriber, permanently (no restart).
  const BrokerId victim = sim.deployment().subscribers.front().home;
  std::map<SubId, BrokerId> sub_home;
  std::map<ClientId, BrokerId> pub_home;
  std::size_t victims_clients = 0;
  for (const auto& s : sim.deployment().subscribers) {
    sub_home[s.sub] = s.home;
    if (s.home == victim) ++victims_clients;
  }
  for (const auto& p : sim.deployment().publishers) {
    pub_home[p.client] = p.home;
    if (p.home == victim) ++victims_clients;
  }
  ASSERT_GT(victims_clients, 0u);
  sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, victim});

  int ticks = 0;
  while (loop.totals().recoveries == 0 && ticks < 12) {
    loop.step();
    ++ticks;
  }
  ASSERT_EQ(loop.totals().recoveries, 1u) << "death never recovered";
  EXPECT_GE(loop.totals().detections, 1u);

  // The dead broker is out of the deployment and hosts nobody.
  EXPECT_FALSE(sim.deployment().topology.has_broker(victim));
  for (const auto& s : sim.deployment().subscribers) EXPECT_NE(s.home, victim);
  for (const auto& p : sim.deployment().publishers) EXPECT_NE(p.home, victim);

  // Bounded migration: a client whose old home survived the recovery plan
  // is pinned there — emergencies move the orphans, not the population.
  for (const auto& s : sim.deployment().subscribers) {
    const BrokerId before = sub_home.at(s.sub);
    if (before != victim && sim.deployment().topology.has_broker(before)) {
      EXPECT_EQ(s.home, before);
    }
  }
  for (const auto& p : sim.deployment().publishers) {
    const BrokerId before = pub_home.at(p.client);
    if (before != victim && sim.deployment().topology.has_broker(before)) {
      EXPECT_EQ(p.home, before);
    }
  }
  EXPECT_EQ(loop.totals().orphans_rehomed, victims_clients);

  // Recovery record: detection -> reattach bounded by two control ticks.
  ASSERT_EQ(loop.recoveries().size(), 1u);
  const RecoveryRecord& r = loop.recoveries().front();
  EXPECT_EQ(r.broker, victim);
  EXPECT_EQ(r.orphans, victims_clients);
  EXPECT_GE(r.recovered_s, r.detected_s);
  EXPECT_LE(r.recovered_s - r.detected_s, 2 * 5.0);

  // Quarantine holds: later plans never resurrect the corpse (its reserve
  // entry still covers the whole universe).
  const RateModulator mod(sim);
  for (int i = 0; i < 8; ++i) {
    mod.apply(sim, i < 4 ? 0.4 : 5.0);
    loop.step();
  }
  EXPECT_FALSE(sim.deployment().topology.has_broker(victim));
}

TEST(SelfHealing, RecoveryApplyFailureBacksOffThenConvergesCleanly) {
  const ScenarioConfig scen = heal_scenario();
  Simulation sim = warmed_sim(scen, 0.8);

  FaultOptions fo;
  fo.retransmit_on_reconnect = true;
  sim.install_faults(FaultSchedule{}, fo);

  ControlLoop loop(sim, heal_loop(scen.seed));
  std::vector<LossAudit> audits;
  loop.pre_redeploy_hook = [&](Simulation& s) {
    audits.push_back(audit_losses(s, make_quote_generator(scen)));
  };
  // A redeploy clears the simulator's fault machinery; re-arm the options
  // (retransmit buffering, ledger) for the fresh epoch.
  loop.post_redeploy_hook = [fo](Simulation& s) {
    s.install_faults(FaultSchedule{}, fo);
  };

  loop.step();
  loop.step();
  const BrokerId victim = sim.deployment().subscribers.front().home;

  // Second failure *inside* the recovery apply window: as soon as a
  // recovery plan exists, crash one surviving broker it targets. The
  // transactional apply must roll back, back off, and the re-plan (with
  // both corpses quarantined) must converge.
  BrokerId second{};
  bool armed = false;
  loop.pre_apply_hook = [&](const ReconfigurationPlan& plan) {
    if (!armed) return;
    for (const BrokerId b : plan.allocated_brokers) {
      if (b != victim && sim.deployment().topology.has_broker(b) &&
          sim.broker_alive(b)) {
        second = b;
        sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, b});
        armed = false;
        return;
      }
    }
  };

  sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, victim});
  armed = true;

  int ticks = 0;
  bool saw_backoff = false;
  while (loop.totals().recoveries == 0 && ticks < 30) {
    const TickRecord& rec = loop.step();
    saw_backoff = saw_backoff || rec.decision.hold == HoldReason::kBackoff;
    ++ticks;
  }
  ASSERT_FALSE(armed) << "no recovery plan was ever produced";
  ASSERT_GE(loop.totals().recoveries, 1u) << "recovery never converged";
  EXPECT_GE(loop.totals().apply_failures, 1u);
  EXPECT_TRUE(saw_backoff);
  EXPECT_EQ(loop.controller().consecutive_failures(), 0u);

  // Both casualties evicted; give the second one time if it outlived the
  // first recovery by a tick.
  for (int i = 0; i < 10 && sim.deployment().topology.has_broker(second); ++i) {
    loop.step();
  }
  EXPECT_FALSE(sim.deployment().topology.has_broker(victim));
  EXPECT_FALSE(sim.deployment().topology.has_broker(second));

  // Per-epoch loss audits (plus the final epoch) stay clean: every missed
  // delivery is attributable to the injected crashes, the retransmit
  // buffers, or the recovery that stranded them — never to the router.
  audits.push_back(audit_losses(sim, make_quote_generator(scen)));
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < audits.size(); ++i) {
    EXPECT_TRUE(audits[i].clean())
        << "epoch " << i << ": " << audits[i].real_losses.size() << " real losses, "
        << audits[i].false_positives << " false positives";
    expected += audits[i].expected;
  }
  EXPECT_GT(expected, 0u);
}

// S1 regression: messages buffered at neighbors for a crashed broker used
// to vanish without a trace when a reconfiguration decommissioned that
// broker mid-outage. They must be swept into the stranded set (visible in
// SimSummary) and the epoch audit must excuse, not silently lose, them.
TEST(SelfHealing, RetransmitsStrandedByRecoveryAreSweptAndExcused) {
  const ScenarioConfig scen = heal_scenario();
  Simulation sim = warmed_sim(scen, 1.0);

  FaultOptions fo;
  fo.retransmit_on_reconnect = true;
  sim.install_faults(FaultSchedule{}, fo);

  ControlLoop loop(sim, heal_loop(scen.seed));
  std::vector<LossAudit> audits;
  std::uint64_t buffered_at_audit = 0;
  loop.pre_redeploy_hook = [&](Simulation& s) {
    buffered_at_audit += s.pending_retransmits().size();
    audits.push_back(audit_losses(s, make_quote_generator(scen)));
  };
  loop.post_redeploy_hook = [fo](Simulation& s) {
    s.install_faults(FaultSchedule{}, fo);
  };

  loop.step();
  loop.step();
  const BrokerId victim = sim.deployment().subscribers.front().home;
  sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, victim});

  int ticks = 0;
  while (loop.totals().recoveries == 0 && ticks < 12) {
    loop.step();
    ++ticks;
  }
  ASSERT_GE(loop.totals().recoveries, 1u);

  // Traffic kept flowing toward the dead broker until the recovery, so its
  // neighbors were buffering — and the recovery stranded those buffers.
  EXPECT_GT(buffered_at_audit, 0u)
      << "outage produced no retransmit buffering; the regression is untested";
  EXPECT_GT(sim.stranded_messages().size(), 0u);
  EXPECT_GT(sim.summarize().msgs_stranded, 0u);

  audits.push_back(audit_losses(sim, make_quote_generator(scen)));
  for (std::size_t i = 0; i < audits.size(); ++i) {
    EXPECT_TRUE(audits[i].clean())
        << "epoch " << i << ": " << audits[i].real_losses.size() << " real losses";
  }
}

// --- degraded-mode admission control -----------------------------------

struct DegradedRun {
  FaultStats stats;
  SimSummary summary;
  LossAudit audit;
  double max_backlog_s = 0;
};

DegradedRun run_overloaded(bool admission, std::size_t cap) {
  ScenarioConfig scen = heal_scenario();
  scen.full_out_bw_kb_s = 8.0;  // thin pipes: overload shows up as backlog
  Simulation sim = make_simulation(scen);
  sim.set_sample_interval_ms(1000);
  FaultOptions fo;
  fo.admission_control = admission;
  fo.admission_backlog_s = 0.75;
  fo.admission_resume_s = 0.3;
  fo.admission_max_deferred = cap;
  sim.install_faults(FaultSchedule{}, fo);

  const RateModulator mod(sim);
  mod.apply(sim, 80.0);  // far past capacity: backlog growth is unbounded
  sim.run(12.0);
  mod.apply(sim, 0.05);  // quiet tail: queued work and deferred buffers drain
  sim.run(120.0);

  DegradedRun r;
  r.stats = sim.fault_state().stats();
  r.summary = sim.summarize();
  r.audit = audit_losses(sim, make_quote_generator(scen),
                         LossAuditOptions{.horizon_slack = seconds(2.0)});
  for (const auto& row : sim.samples().rows()) {
    r.max_backlog_s = std::max(r.max_backlog_s, row.values[2]);
  }
  return r;
}

TEST(SelfHealing, AdmissionControlShedsNewInjectionsAndStaysAccounted) {
  const DegradedRun off = run_overloaded(false, 64);
  const DegradedRun on = run_overloaded(true, 64);

  // Load was shed by priority: deferrals happened, the tiny buffer forced
  // sheds, and the quiet tail re-admitted the parked remainder.
  EXPECT_GT(on.stats.pubs_deferred_admission, 0u);
  EXPECT_GT(on.stats.pubs_shed_admission, 0u);
  EXPECT_GT(on.stats.pubs_readmitted, 0u);
  EXPECT_EQ(off.stats.pubs_deferred_admission, 0u);

  // Accounted end to end: SimSummary mirrors the fault counters.
  EXPECT_EQ(on.summary.pubs_deferred, on.stats.pubs_deferred_admission);
  EXPECT_EQ(on.summary.pubs_shed, on.stats.pubs_shed_admission);

  // The point of backpressure: the worst sampled backlog stays far below
  // the uncontrolled run's (which grows with the overload duration).
  EXPECT_LT(on.max_backlog_s, off.max_backlog_s);

  // Every missed delivery is classified: parked (still deliverable), shed
  // (accounted loss) or in flight — the oracle finds no real losses.
  EXPECT_GT(on.audit.expected, 0u);
  EXPECT_TRUE(on.audit.clean())
      << on.audit.real_losses.size() << " real losses, "
      << on.audit.false_positives << " false positives";
}

// --- determinism across worker counts ----------------------------------

std::vector<std::string> chaos_trace(std::size_t workers) {
  const ScenarioConfig scen = heal_scenario();
  Simulation sim = warmed_sim(scen, 0.8, workers);
  ControlLoop loop(sim, heal_loop(scen.seed));
  std::vector<std::string> trace;
  BrokerId victim{};
  for (int i = 0; i < 14; ++i) {
    if (i == 2) {
      victim = sim.deployment().subscribers.front().home;
      sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, victim});
    }
    const TickRecord& rec = loop.step();
    trace.push_back(std::string(action_name(rec.decision.action)) + "/" +
                    hold_reason_name(rec.decision.hold) + "/" +
                    std::to_string(rec.dead.size()) + "/" +
                    std::to_string(rec.orphans_rehomed) + "/" +
                    std::to_string(rec.brokers_after) + "/" +
                    std::to_string(rec.window.deliveries));
  }
  return trace;
}

TEST(SelfHealing, RecoveryTrajectoryBitIdenticalAcrossWorkerCounts) {
  const std::vector<std::string> single = chaos_trace(1);
  const std::vector<std::string> sharded = chaos_trace(2);
  EXPECT_EQ(single, sharded);
  // The trace must actually contain a recovery for this to mean anything.
  bool recovered = false;
  for (const std::string& t : single) recovered = recovered || t.find("recover") == 0;
  EXPECT_TRUE(recovered) << "trace never recovered";
}

}  // namespace
}  // namespace greenps::control
