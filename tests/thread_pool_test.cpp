#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

namespace greenps {
namespace {

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(1), 1u);
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

TEST(ThreadPool, SizeCountsTheCaller) {
  ThreadPool one(1);
  EXPECT_EQ(one.size(), 1u);  // no extra workers
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);  // caller + 3 workers
}

TEST(ThreadPool, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no atomics needed: everything runs on the caller
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 50u * (64u * 63u / 2));
}

TEST(ThreadPool, EmptyAndSingletonLoops) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ResultsLandInPerIndexSlots) {
  // The pattern CRAM relies on: concurrent writers, disjoint slots, results
  // merged after the join are independent of scheduling.
  ThreadPool pool(4);
  std::vector<std::size_t> out(1000, 0);
  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace greenps
