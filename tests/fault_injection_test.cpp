// Fault injection must be invisible when disabled and deterministic when
// armed. The toggle tests mirror routing_fastpath_test.cpp: a simulation
// with an *empty* FaultSchedule installed must be bit-identical — every
// SimSummary field, exact doubles included — to one that never heard of
// faults, and CROC must plan the identical reconfiguration from both.
// Seeded chaos schedules must replay identically across runs and CRAM
// thread counts. The remaining tests pin the resilient-gather, crashed
// entry, transactional-apply rollback and retransmit-loss semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "croc/croc.hpp"
#include "croc/info_gathering.hpp"
#include "croc/reconfig_plan.hpp"
#include "language/parser.hpp"
#include "overlay/topology_builder.hpp"
#include "scenario/scenario.hpp"
#include "sim/faults.hpp"
#include "sim/loss_oracle.hpp"
#include "sim/simulation.hpp"

namespace greenps {
namespace {

ScenarioConfig small_scenario() {
  ScenarioConfig cfg;
  cfg.num_brokers = 12;
  cfg.num_publishers = 4;
  cfg.subs_per_publisher = 8;
  cfg.seed = 42;
  return cfg;
}

void expect_summaries_identical(const SimSummary& a, const SimSummary& b) {
  EXPECT_EQ(a.publications, b.publications);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.broker_msgs_total, b.broker_msgs_total);
  EXPECT_EQ(a.brokers_with_traffic, b.brokers_with_traffic);
  EXPECT_EQ(a.allocated_brokers, b.allocated_brokers);
  EXPECT_EQ(a.pure_forwarding_brokers, b.pure_forwarding_brokers);
  // Doubles compared exactly: fault hooks must not perturb a single event.
  EXPECT_EQ(a.avg_hop_count, b.avg_hop_count);
  EXPECT_EQ(a.avg_delivery_delay_ms, b.avg_delivery_delay_ms);
  EXPECT_EQ(a.p50_delivery_delay_ms, b.p50_delivery_delay_ms);
  EXPECT_EQ(a.p99_delivery_delay_ms, b.p99_delivery_delay_ms);
  EXPECT_EQ(a.system_msg_rate, b.system_msg_rate);
  EXPECT_EQ(a.avg_broker_msg_rate, b.avg_broker_msg_rate);
  EXPECT_EQ(a.avg_output_utilization, b.avg_output_utilization);
}

// Plans compare by placement, not by timing fields.
void expect_plans_identical(const ReconfigurationPlan& a, const ReconfigurationPlan& b) {
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.allocated_brokers, b.allocated_brokers);
  EXPECT_EQ(a.cluster_count, b.cluster_count);
  ASSERT_EQ(a.subscriber_home.size(), b.subscriber_home.size());
  for (const auto& [sub, home] : a.subscriber_home) {
    const auto it = b.subscriber_home.find(sub);
    ASSERT_NE(it, b.subscriber_home.end());
    EXPECT_EQ(it->second, home);
  }
  ASSERT_EQ(a.publisher_home.size(), b.publisher_home.size());
  for (const auto& [client, home] : a.publisher_home) {
    const auto it = b.publisher_home.find(client);
    ASSERT_NE(it, b.publisher_home.end());
    EXPECT_EQ(it->second, home);
  }
}

void expect_fault_stats_identical(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.link_downs, b.link_downs);
  EXPECT_EQ(a.link_ups, b.link_ups);
  EXPECT_EQ(a.pubs_dropped_at_source, b.pubs_dropped_at_source);
  EXPECT_EQ(a.arrivals_dropped, b.arrivals_dropped);
  EXPECT_EQ(a.deliveries_dropped, b.deliveries_dropped);
  EXPECT_EQ(a.msgs_dropped_link_down, b.msgs_dropped_link_down);
  EXPECT_EQ(a.msgs_dropped_random, b.msgs_dropped_random);
  EXPECT_EQ(a.retransmits_replayed, b.retransmits_replayed);
  EXPECT_EQ(a.retransmit_overflow, b.retransmit_overflow);
}

std::vector<std::pair<BrokerId, BrokerId>> links_of(const Topology& t) {
  std::vector<std::pair<BrokerId, BrokerId>> links;
  for (const BrokerId a : t.brokers()) {
    for (const BrokerId b : t.neighbors(a)) {
      if (a.value() < b.value()) links.emplace_back(a, b);
    }
  }
  return links;
}

// An empty schedule must not change a single bit of observable behavior:
// no fault event is armed, no fault RNG draw happens, and the publication
// ledger is passive bookkeeping.
TEST(FaultInjection, EmptyScheduleIsBitIdenticalToFaultFreeRun) {
  const ScenarioConfig cfg = small_scenario();
  const auto run = [&cfg](bool install_empty_schedule) {
    Simulation sim = make_simulation(cfg);
    if (install_empty_schedule) {
      FaultOptions opts;
      opts.retransmit_on_reconnect = true;  // options alone must be inert too
      sim.install_faults(FaultSchedule{}, opts);
    }
    sim.run(5.0);
    sim.reset_metrics();
    sim.run(10.0);
    Croc croc(CrocConfig{});
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    EXPECT_TRUE(report.success);
    return std::pair{sim.summarize(), report.plan};
  };
  auto [plain_summary, plain_plan] = run(false);
  auto [armed_summary, armed_plan] = run(true);
  EXPECT_GT(plain_summary.deliveries, 0u);
  expect_summaries_identical(plain_summary, armed_summary);
  expect_plans_identical(plain_plan, armed_plan);
}

// The same seed must reproduce the same chaos — schedule, drops, replays,
// and the full delivery trace — run after run.
TEST(FaultInjection, SeededChaosReplaysIdentically) {
  const ScenarioConfig cfg = small_scenario();
  const auto run = [&cfg] {
    Simulation sim = make_simulation(cfg);
    sim.run(3.0);
    FaultSchedule::ChaosConfig chaos;
    chaos.horizon_s = 10.0;
    chaos.crashes = 2;
    chaos.mean_outage_s = 1.5;
    chaos.link_flaps = 1;
    chaos.drop_windows = 1;
    chaos.drop_prob = 0.1;
    Rng rng(777);
    const Topology& topo = sim.deployment().topology;
    FaultSchedule schedule = FaultSchedule::chaos(chaos, topo.brokers(), links_of(topo), rng);
    EXPECT_FALSE(schedule.empty());
    FaultOptions opts;
    opts.retransmit_on_reconnect = true;
    sim.install_faults(std::move(schedule), opts);
    sim.run(10.0);
    return std::pair{sim.summarize(), sim.fault_state().stats()};
  };
  const auto [summary1, stats1] = run();
  const auto [summary2, stats2] = run();
  EXPECT_GT(stats1.crashes, 0u);
  EXPECT_EQ(stats1.crashes, stats1.restarts);  // chaos pairs every crash
  expect_summaries_identical(summary1, summary2);
  expect_fault_stats_identical(stats1, stats2);
}

// Planning from a faulted simulation must not depend on the CRAM thread
// count: the parallel partner search merges deterministically.
TEST(FaultInjection, FaultedReconfigurationInvariantAcrossThreadCounts) {
  const ScenarioConfig cfg = small_scenario();
  Simulation sim = make_simulation(cfg);
  sim.run(3.0);
  FaultSchedule schedule;
  schedule.outage(seconds(1.0), seconds(2.0), BrokerId{3});
  sim.install_faults(std::move(schedule), FaultOptions{});
  sim.run(8.0);  // past the outage: broker 3 is back and answers the gather

  const auto plan_with_threads = [&](std::size_t threads) {
    CrocConfig croc_cfg;
    croc_cfg.seed = cfg.seed;
    croc_cfg.cram.threads = threads;
    Croc croc(croc_cfg);
    const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
    EXPECT_TRUE(report.success);
    return report.plan;
  };
  const ReconfigurationPlan serial = plan_with_threads(1);
  const ReconfigurationPlan parallel = plan_with_threads(4);
  expect_plans_identical(serial, parallel);
}

BrokerInfo fake_info(BrokerId b) {
  BrokerInfo info;
  info.id = b;
  info.total_out_bw = 100.0 + static_cast<double>(b.value());
  return info;
}

std::vector<BrokerId> ids(std::size_t n) {
  std::vector<BrokerId> v;
  for (std::size_t i = 0; i < n; ++i) v.emplace_back(i);
  return v;
}

// An unreachable interior broker times out (bounded retries, doubling
// backoff) and the traversal routes around it; everyone else answers.
TEST(FaultInjection, GatherRoutesAroundUnreachableInteriorBroker) {
  const Topology t = build_manual_tree(ids(9), 2);
  const BrokerId dead{1};  // interior: has children in the manual tree
  const GatheredInfo info =
      gather_information(t, BrokerId{0}, [dead](BrokerId b) -> std::optional<BrokerInfo> {
        if (b == dead) return std::nullopt;
        return fake_info(b);
      });
  EXPECT_EQ(info.stats.unreachable_brokers, 1u);
  EXPECT_EQ(info.stats.retries, 2u);  // 3 attempts = first try + 2 retries
  EXPECT_GT(info.stats.backoff_s, 0.0);
  EXPECT_EQ(info.stats.brokers_answered, 8u);
  EXPECT_EQ(info.brokers.size(), 8u);
  std::set<BrokerId> seen;
  for (const auto& b : info.brokers) seen.insert(b.id);
  EXPECT_FALSE(seen.contains(dead));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(FaultInjection, GatherFailsOnUnreachableEntryBroker) {
  const Topology t = build_manual_tree(ids(5), 2);
  GatherOptions opts;
  opts.attempts_per_broker = 2;
  const GatheredInfo info = gather_information(
      t, BrokerId{0}, [](BrokerId) { return std::optional<BrokerInfo>{}; }, opts);
  EXPECT_TRUE(info.brokers.empty());
  EXPECT_EQ(info.stats.brokers_answered, 0u);
  EXPECT_EQ(info.stats.unreachable_brokers, 1u);  // only the entry was tried
}

// Regression: a reconfiguration that never produced a plan must cost no
// migrations — previously an empty plan counted every client as moved and
// every broker as decommissioned.
TEST(FaultInjection, CrashedEntryBrokerFailsReconfigureWithZeroMigrationCost) {
  const ScenarioConfig cfg = small_scenario();
  Simulation sim = make_simulation(cfg);
  sim.run(3.0);
  sim.inject_fault(FaultEvent{0, FaultKind::kBrokerCrash, BrokerId{0}, {}, 0, 0});
  ASSERT_FALSE(sim.broker_alive(BrokerId{0}));

  Croc croc(CrocConfig{});
  const ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
  EXPECT_FALSE(report.success);
  EXPECT_EQ(report.failure, FailureReason::kGatherFailed);
  EXPECT_GE(report.gather.unreachable_brokers, 1u);
  EXPECT_EQ(report.migration.subscribers_moved, 0u);
  EXPECT_EQ(report.migration.publishers_moved, 0u);
  EXPECT_EQ(report.migration.brokers_decommissioned, 0u);
  EXPECT_EQ(report.migration.brokers_commissioned, 0u);

  // A live entry still plans around the crashed broker.
  const ReconfigurationReport live = croc.reconfigure(sim, BrokerId{1});
  EXPECT_TRUE(live.success);
  EXPECT_FALSE(live.plan.overlay.has_broker(BrokerId{0}));
}

struct PlannedScenario {
  Simulation sim;
  ReconfigurationPlan plan;
};

PlannedScenario planned_scenario() {
  Simulation sim = make_simulation(small_scenario());
  sim.run(5.0);
  Croc croc(CrocConfig{});
  ReconfigurationReport report = croc.reconfigure(sim, BrokerId{0});
  EXPECT_TRUE(report.success);
  return PlannedScenario{std::move(sim), std::move(report.plan)};
}

TEST(TransactionalApply, HealthyApplySucceedsEndToEnd) {
  PlannedScenario ps = planned_scenario();
  const ApplyResult result = apply_plan_transactional(ps.sim.deployment(), ps.plan);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.reason, FailureReason::kNone);
  EXPECT_EQ(result.steps_applied, result.steps_total);
  EXPECT_EQ(result.deployment.topology.brokers(), ps.plan.overlay.brokers());
}

TEST(TransactionalApply, MidApplyCrashRollsBackToOldDeployment) {
  PlannedScenario ps = planned_scenario();
  ASSERT_FALSE(ps.plan.allocated_brokers.empty());
  const BrokerId victim = ps.plan.allocated_brokers.back();
  const Deployment& old = ps.sim.deployment();
  const ApplyResult result = apply_plan_transactional(
      old, ps.plan, [victim](BrokerId b) { return b != victim; });
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.reason, FailureReason::kBrokerUnreachable);
  EXPECT_LT(result.steps_applied, result.steps_total);
  EXPECT_FALSE(result.detail.empty());
  // Rollback: the returned deployment is the old one, bit for bit where it
  // matters — same overlay and same client placements.
  EXPECT_EQ(result.deployment.topology.brokers(), old.topology.brokers());
  ASSERT_EQ(result.deployment.subscribers.size(), old.subscribers.size());
  for (std::size_t i = 0; i < old.subscribers.size(); ++i) {
    EXPECT_EQ(result.deployment.subscribers[i].home, old.subscribers[i].home);
  }
  ASSERT_EQ(result.deployment.publishers.size(), old.publishers.size());
  for (std::size_t i = 0; i < old.publishers.size(); ++i) {
    EXPECT_EQ(result.deployment.publishers[i].home, old.publishers[i].home);
  }
}

TEST(TransactionalApply, InvalidPlansAreRejectedBeforeAnyStep) {
  PlannedScenario ps = planned_scenario();
  const Deployment& old = ps.sim.deployment();

  ReconfigurationPlan empty;  // no overlay at all
  const ApplyResult r1 = apply_plan_transactional(old, empty);
  EXPECT_FALSE(r1.success);
  EXPECT_EQ(r1.reason, FailureReason::kPlanInvalid);
  EXPECT_EQ(r1.steps_applied, 0u);

  ReconfigurationPlan bad_root = ps.plan;
  bad_root.root = BrokerId{424242};  // root outside the overlay
  const ApplyResult r2 = apply_plan_transactional(old, bad_root);
  EXPECT_FALSE(r2.success);
  EXPECT_EQ(r2.reason, FailureReason::kPlanInvalid);
  EXPECT_EQ(r2.steps_applied, 0u);

  ReconfigurationPlan bad_target = ps.plan;
  ASSERT_FALSE(old.subscribers.empty());
  bad_target.subscriber_home[old.subscribers.front().sub] = BrokerId{424242};
  const ApplyResult r3 = apply_plan_transactional(old, bad_target);
  EXPECT_FALSE(r3.success);
  EXPECT_EQ(r3.reason, FailureReason::kPlanInvalid);
  EXPECT_EQ(r3.steps_applied, 0u);
  EXPECT_EQ(r3.deployment.topology.brokers(), old.topology.brokers());
}

// Chain 0 - 1 - 2: publisher at 0, subscriber at 2, broker 1 is a pure
// forwarder. Crashing it mid-run loses exactly the messages it carried —
// real losses without retransmit, zero real losses with it.
struct ChainNet {
  Deployment dep;

  ChainNet() {
    for (std::uint64_t i = 0; i < 3; ++i) {
      dep.topology.add_broker(BrokerId{i});
      if (i > 0) dep.topology.add_link(BrokerId{i - 1}, BrokerId{i});
      dep.capacities.emplace(BrokerId{i},
                             BrokerCapacity{1.0e5, MatchingDelayFunction{10e-6, 0.5e-6}});
    }
    PublisherSpec p;
    p.client = ClientId{0};
    p.adv = AdvId{0};
    p.symbol = "YHOO";
    p.rate_msg_s = 50.0;
    p.home = BrokerId{0};
    p.adv_filter = parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO']");
    dep.publishers.push_back(std::move(p));
    SubscriberSpec s;
    s.client = ClientId{1};
    s.sub = SubId{0};
    s.filter = parse_filter("[symbol,=,'YHOO']");
    s.home = BrokerId{2};
    dep.subscribers.push_back(s);
  }

  Simulation make() {
    return Simulation(std::move(dep),
                      StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(99)));
  }
};

LossAudit run_forwarder_outage(bool retransmit) {
  ChainNet net;
  Simulation sim = net.make();
  FaultSchedule schedule;
  schedule.outage(seconds(2.0), seconds(2.0), BrokerId{1});
  FaultOptions opts;
  opts.retransmit_on_reconnect = retransmit;
  sim.install_faults(std::move(schedule), opts);
  sim.run(10.0);
  EXPECT_GT(sim.fault_state().stats().arrivals_dropped +
                sim.fault_state().stats().retransmits_replayed,
            0u);
  return audit_losses(sim, StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(99)));
}

TEST(LossOracle, ForwarderCrashWithoutRetransmitLosesMessages) {
  const LossAudit audit = run_forwarder_outage(/*retransmit=*/false);
  // Neither endpoint's home broker was down, so nothing excuses the gap
  // the dead forwarder left: these are real losses and the oracle says so.
  EXPECT_GT(audit.expected, 0u);
  EXPECT_FALSE(audit.real_losses.empty());
  EXPECT_EQ(audit.false_positives, 0u);
}

TEST(LossOracle, RetransmitOnReconnectEliminatesRealLosses) {
  const LossAudit audit = run_forwarder_outage(/*retransmit=*/true);
  EXPECT_GT(audit.expected, 0u);
  EXPECT_GT(audit.recorded, 0u);
  EXPECT_TRUE(audit.real_losses.empty()) << audit.real_losses.size() << " real losses";
  EXPECT_EQ(audit.false_positives, 0u);
}

// Crash semantics on the chain: queued work dies with the broker, the
// restart is idempotent, and outage windows are recorded for the oracle.
TEST(FaultInjection, CrashDropsQueuedWorkAndRecordsOutageWindows) {
  ChainNet net;
  Simulation sim = net.make();
  FaultSchedule schedule;
  schedule.outage(seconds(2.0), seconds(2.0), BrokerId{1});
  schedule.crash(seconds(2.5), BrokerId{1});    // double-crash: idempotent
  schedule.restart(seconds(9.0), BrokerId{1});  // double-restart: idempotent
  sim.install_faults(std::move(schedule), FaultOptions{});
  sim.run(10.0);

  const FaultStats& stats = sim.fault_state().stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_GT(stats.arrivals_dropped, 0u);
  ASSERT_EQ(sim.fault_state().outages().size(), 1u);
  const OutageWindow& w = sim.fault_state().outages().front();
  EXPECT_EQ(w.broker, BrokerId{1});
  EXPECT_EQ(w.begin, seconds(2.0));
  EXPECT_EQ(w.end, seconds(4.0));
  EXPECT_TRUE(sim.fault_state().in_outage(BrokerId{1}, seconds(3.0)));
  EXPECT_FALSE(sim.fault_state().in_outage(BrokerId{1}, seconds(5.0)));
  EXPECT_TRUE(sim.broker_alive(BrokerId{1}));
}

}  // namespace
}  // namespace greenps
