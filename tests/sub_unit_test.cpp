#include "profile/sub_unit.hpp"

#include <gtest/gtest.h>

namespace greenps {
namespace {

constexpr AdvId kAdv{1};

PublisherTable one_publisher(MsgRate rate, Bandwidth bw, MessageSeq last) {
  PublisherTable t;
  t[kAdv] = PublisherProfile{kAdv, rate, bw, last};
  return t;
}

SubscriptionProfile profile_with_bits(MessageSeq from, MessageSeq to) {
  SubscriptionProfile p(128);
  for (MessageSeq s = from; s < to; ++s) p.record(kAdv, s);
  return p;
}

TEST(SubUnit, SubscriptionUnitComputesLoads) {
  const auto table = one_publisher(100.0, 200.0, 99);
  const auto u = make_subscription_unit(SubId{7}, profile_with_bits(0, 50), table);
  EXPECT_EQ(u.members, std::vector<SubId>{SubId{7}});
  EXPECT_FALSE(u.is_child_broker());
  EXPECT_EQ(u.endpoint_count(), 1u);
  EXPECT_NEAR(u.in_rate, 50.0, 1e-9);
  EXPECT_NEAR(u.out_bw, 100.0, 1e-9);
  EXPECT_EQ(u.filter_count, 1u);
}

TEST(SubUnit, ClusterSumsOutputButUnionsInput) {
  const auto table = one_publisher(100.0, 100.0, 99);
  // Heavy overlap: both cover bits 0..50, b adds 10 more.
  const auto a = make_subscription_unit(SubId{1}, profile_with_bits(0, 50), table);
  const auto b = make_subscription_unit(SubId{2}, profile_with_bits(10, 60), table);
  const auto c = cluster_units(a, b, table);
  EXPECT_EQ(c.members.size(), 2u);
  EXPECT_EQ(c.filter_count, 2u);
  // Output requirements add.
  EXPECT_NEAR(c.out_bw, a.out_bw + b.out_bw, 1e-9);
  // Input rate reflects the union (60 bits of 100), not the sum (100).
  EXPECT_NEAR(c.in_rate, 60.0, 1e-9);
  EXPECT_LT(c.in_rate, a.in_rate + b.in_rate);
}

TEST(SubUnit, ChildBrokerUnitForwardsUnionOnce) {
  const auto table = one_publisher(100.0, 100.0, 99);
  const auto u = make_child_broker_unit(BrokerId{3}, profile_with_bits(0, 60), table);
  EXPECT_TRUE(u.is_child_broker());
  EXPECT_EQ(u.endpoint_count(), 1u);
  // Output = the union stream, sent once (not per subscriber).
  EXPECT_NEAR(u.out_bw, 60.0, 1e-9);
  EXPECT_NEAR(u.in_rate, 60.0, 1e-9);
}

TEST(SubUnit, ClusterIsAssociativeOnLoads) {
  const auto table = one_publisher(10.0, 10.0, 99);
  const auto a = make_subscription_unit(SubId{1}, profile_with_bits(0, 10), table);
  const auto b = make_subscription_unit(SubId{2}, profile_with_bits(5, 15), table);
  const auto c = make_subscription_unit(SubId{3}, profile_with_bits(12, 20), table);
  const auto ab_c = cluster_units(cluster_units(a, b, table), c, table);
  const auto a_bc = cluster_units(a, cluster_units(b, c, table), table);
  EXPECT_NEAR(ab_c.in_rate, a_bc.in_rate, 1e-9);
  EXPECT_NEAR(ab_c.out_bw, a_bc.out_bw, 1e-9);
  EXPECT_EQ(ab_c.members.size(), 3u);
}

}  // namespace
}  // namespace greenps
