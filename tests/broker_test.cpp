#include "broker/broker.hpp"

#include <gtest/gtest.h>

#include "language/parser.hpp"

namespace greenps {
namespace {

Publication yhoo_pub() {
  Publication p(AdvId{1}, 10);
  p.set_attr("class", Value(std::string("STOCK")));
  p.set_attr("symbol", Value(std::string("YHOO")));
  p.set_attr("volume", Value(std::int64_t{5000}));
  return p;
}

TEST(SubscriptionRoutingTable, ForwardsToUniqueNeighbors) {
  SubscriptionRoutingTable srt;
  srt.insert(SubId{1}, parse_filter("[symbol,=,'YHOO']"), Hop::to_broker(BrokerId{2}));
  srt.insert(SubId{2}, parse_filter("[class,=,'STOCK']"), Hop::to_broker(BrokerId{2}));
  srt.insert(SubId{3}, parse_filter("[symbol,=,'YHOO']"), Hop::to_broker(BrokerId{3}));
  const auto r = srt.match(yhoo_pub());
  // Two matching subs point at broker 2 -> one copy; broker 3 -> one copy.
  EXPECT_EQ(r.forward_to, (std::vector<BrokerId>{BrokerId{2}, BrokerId{3}}));
  EXPECT_TRUE(r.deliver.empty());
}

TEST(SubscriptionRoutingTable, DeliversToLocalClients) {
  SubscriptionRoutingTable srt;
  srt.insert(SubId{1}, parse_filter("[symbol,=,'YHOO']"), Hop::to_client(ClientId{7}));
  srt.insert(SubId{2}, parse_filter("[symbol,=,'GOOG']"), Hop::to_client(ClientId{8}));
  const auto r = srt.match(yhoo_pub());
  ASSERT_EQ(r.deliver.size(), 1u);
  EXPECT_EQ(r.deliver[0].first, SubId{1});
  EXPECT_EQ(r.deliver[0].second, ClientId{7});
}

TEST(SubscriptionRoutingTable, ExcludesIncomingLink) {
  SubscriptionRoutingTable srt;
  srt.insert(SubId{1}, parse_filter("[symbol,=,'YHOO']"), Hop::to_broker(BrokerId{2}));
  const BrokerId from{2};
  const auto r = srt.match(yhoo_pub(), &from);
  EXPECT_TRUE(r.forward_to.empty());
}

TEST(SubscriptionRoutingTable, InsertReplacesAndRemoveDeletes) {
  SubscriptionRoutingTable srt;
  srt.insert(SubId{1}, parse_filter("[symbol,=,'YHOO']"), Hop::to_broker(BrokerId{2}));
  srt.insert(SubId{1}, parse_filter("[symbol,=,'YHOO']"), Hop::to_broker(BrokerId{5}));
  EXPECT_EQ(srt.filter_count(), 1u);
  auto r = srt.match(yhoo_pub());
  EXPECT_EQ(r.forward_to, (std::vector<BrokerId>{BrokerId{5}}));
  srt.remove(SubId{1});
  EXPECT_EQ(srt.filter_count(), 0u);
  EXPECT_TRUE(srt.match(yhoo_pub()).forward_to.empty());
}

TEST(AdvertisementRoutingTable, DirectionsForIntersectingAdvs) {
  AdvertisementRoutingTable prt;
  prt.insert(Advertisement(AdvId{1}, parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO']")),
             Hop::to_broker(BrokerId{1}));
  prt.insert(Advertisement(AdvId{2}, parse_filter("[class,=,'STOCK'],[symbol,=,'GOOG']")),
             Hop::to_broker(BrokerId{2}));
  const auto dirs = prt.directions_for(parse_filter("[class,=,'STOCK'],[symbol,=,'YHOO']"));
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(dirs[0].broker, BrokerId{1});
}

TEST(BandwidthLimiter, SerializesTransmissions) {
  BandwidthLimiter link(100.0);  // 100 kB/s
  // 50 kB at t=0 -> done at 0.5 s.
  const SimTime t1 = link.transmit(0, 50.0);
  EXPECT_EQ(t1, seconds(0.5));
  // Second message queued behind the first.
  const SimTime t2 = link.transmit(seconds(0.1), 50.0);
  EXPECT_EQ(t2, seconds(1.0));
  // After the queue drains, transmission starts immediately.
  const SimTime t3 = link.transmit(seconds(2.0), 10.0);
  EXPECT_EQ(t3, seconds(2.1));
  EXPECT_EQ(link.busy_time(), seconds(1.1));
}

TEST(BandwidthLimiter, ResetClearsState) {
  BandwidthLimiter link(10.0);
  link.transmit(0, 100.0);
  link.reset();
  EXPECT_EQ(link.busy_until(), 0);
  EXPECT_EQ(link.busy_time(), 0);
}

TEST(FifoServer, QueuesJobs) {
  FifoServer cpu;
  EXPECT_EQ(cpu.serve(0, 100), 100);
  EXPECT_EQ(cpu.serve(50, 100), 200);
  EXPECT_EQ(cpu.serve(500, 10), 510);
  EXPECT_EQ(cpu.busy_time(), 210);
}

TEST(Broker, MatchingServiceTimeGrowsWithTableSize) {
  Broker b(BrokerId{1}, BrokerCapacity{1000.0, MatchingDelayFunction{10e-6, 1e-6}});
  const SimTime empty = b.matching_service_time();
  for (int i = 0; i < 100; ++i) {
    b.srt().insert(SubId{static_cast<std::uint64_t>(i)}, parse_filter("[symbol,=,'YHOO']"),
                   Hop::to_client(ClientId{static_cast<std::uint64_t>(i)}));
  }
  EXPECT_GT(b.matching_service_time(), empty);
}

TEST(Cbc, ProfilesDeliveriesAndPublishers) {
  CbcComponent cbc(64);
  cbc.register_subscription(SubId{1}, ClientId{1}, parse_filter("[symbol,=,'YHOO']"));
  cbc.register_publisher(ClientId{9}, AdvId{4});
  for (MessageSeq s = 0; s < 10; ++s) {
    cbc.record_publish(AdvId{4}, s, 0.5, seconds(static_cast<double>(s)));
    if (s % 2 == 0) cbc.record_delivery(SubId{1}, AdvId{4}, s);
  }
  const BrokerInfo info = cbc.snapshot(BrokerId{3}, MatchingDelayFunction{}, 500.0);
  EXPECT_EQ(info.id, BrokerId{3});
  EXPECT_EQ(info.total_out_bw, 500.0);
  ASSERT_EQ(info.subscriptions.size(), 1u);
  EXPECT_EQ(info.subscriptions[0].profile.cardinality(), 5u);
  ASSERT_EQ(info.publishers.size(), 1u);
  const PublisherProfile& p = info.publishers[0].profile;
  EXPECT_EQ(p.adv, AdvId{4});
  EXPECT_EQ(p.last_seq, 9);
  // 10 messages over 9 seconds, extrapolated to ~10/10s.
  EXPECT_NEAR(p.rate_msg_s, 1.0, 0.15);
  EXPECT_NEAR(p.bw_kb_s, 0.5, 0.1);
}

TEST(Cbc, FitsMatchingDelayFromSamples) {
  CbcComponent cbc;
  EXPECT_FALSE(cbc.fitted_delay().has_value());
  const MatchingDelayFunction truth{15e-6, 0.8e-6};
  // Samples at one filter count are not enough for a line.
  cbc.record_matching(100, seconds(truth.delay_s(100)));
  EXPECT_FALSE(cbc.fitted_delay().has_value());
  // A second count pins the line.
  cbc.record_matching(1000, seconds(truth.delay_s(1000)));
  const auto fitted = cbc.fitted_delay();
  ASSERT_TRUE(fitted.has_value());
  EXPECT_NEAR(fitted->base_s, truth.base_s, 2e-6);
  EXPECT_NEAR(fitted->per_sub_s, truth.per_sub_s, 1e-8);
  // The BIA snapshot prefers the measurement over the fallback.
  const BrokerInfo info = cbc.snapshot(BrokerId{1}, MatchingDelayFunction{1.0, 1.0}, 10.0);
  EXPECT_NEAR(info.delay.per_sub_s, truth.per_sub_s, 1e-8);
}

TEST(Cbc, DelayFitTracksExtremeFilterCounts) {
  CbcComponent cbc;
  const MatchingDelayFunction truth{10e-6, 1e-6};
  for (const std::size_t n : {500u, 200u, 900u, 100u, 1200u}) {
    for (int i = 0; i < 3; ++i) cbc.record_matching(n, seconds(truth.delay_s(n)));
  }
  const auto fitted = cbc.fitted_delay();
  ASSERT_TRUE(fitted.has_value());
  // Fit pinned by the extremes (100 and 1200).
  EXPECT_NEAR(fitted->delay_s(100), truth.delay_s(100), 2e-6);
  EXPECT_NEAR(fitted->delay_s(1200), truth.delay_s(1200), 2e-6);
}

TEST(Cbc, DeliveryForUnknownSubscriptionIgnored) {
  CbcComponent cbc;
  cbc.record_delivery(SubId{99}, AdvId{1}, 5);  // must not crash
  EXPECT_EQ(cbc.subscription_count(), 0u);
}

}  // namespace
}  // namespace greenps
