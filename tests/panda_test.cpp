#include "panda/panda.hpp"

#include <gtest/gtest.h>

namespace greenps {
namespace {

constexpr const char* kSample = R"(
# three brokers in a chain, one publisher, two subscribers
broker B0 bw=300 delay-base=20e-6 delay-per-sub=0.5e-6 start=0
broker B1 bw=150 start=1
broker B2 bw=75  start=2
link B0 B1
link B1 B2
publisher P0 broker=B0 symbol=YHOO rate=1.1667 start=10
subscriber C0 broker=B2 start=12 filter=[class,=,'STOCK'],[symbol,=,'YHOO']
subscriber C1 broker=B1 start=12 filter=[class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,18.5]
)";

TEST(Panda, ParsesSampleTopology) {
  const PandaTopology topo = parse_panda(kSample);
  EXPECT_EQ(topo.deployment.topology.broker_count(), 3u);
  EXPECT_EQ(topo.deployment.topology.link_count(), 2u);
  EXPECT_TRUE(topo.deployment.topology.is_tree());
  ASSERT_EQ(topo.deployment.publishers.size(), 1u);
  ASSERT_EQ(topo.deployment.subscribers.size(), 2u);
  EXPECT_EQ(topo.deployment.publishers[0].symbol, "YHOO");
  EXPECT_NEAR(topo.deployment.publishers[0].rate_msg_s, 1.1667, 1e-9);
  EXPECT_EQ(topo.deployment.subscribers[0].filter.predicates().size(), 2u);
  EXPECT_EQ(topo.deployment.subscribers[1].filter.predicates().size(), 3u);
}

TEST(Panda, ParsesCapacities) {
  const PandaTopology topo = parse_panda(kSample);
  const auto& caps = topo.deployment.capacities;
  EXPECT_DOUBLE_EQ(caps.at(BrokerId{0}).out_bw_kb_s, 300.0);
  EXPECT_DOUBLE_EQ(caps.at(BrokerId{0}).delay.base_s, 20e-6);
  EXPECT_DOUBLE_EQ(caps.at(BrokerId{0}).delay.per_sub_s, 0.5e-6);
  EXPECT_DOUBLE_EQ(caps.at(BrokerId{2}).out_bw_kb_s, 75.0);
}

TEST(Panda, StartTimesAndOrdering) {
  const PandaTopology topo = parse_panda(kSample);
  EXPECT_DOUBLE_EQ(topo.start_times.at("P0"), 10.0);
  EXPECT_DOUBLE_EQ(topo.start_times.at("B2"), 2.0);
  EXPECT_TRUE(topo.first_ordering_violation().empty());
}

TEST(Panda, DetectsClientStartingBeforeBrokers) {
  const PandaTopology topo = parse_panda(
      "broker B0 start=5\n"
      "publisher P0 broker=B0 symbol=X start=1\n");
  EXPECT_EQ(topo.first_ordering_violation(), "P0");
}

TEST(Panda, RejectsMalformedInput) {
  EXPECT_THROW(parse_panda("broker\n"), PandaError);
  EXPECT_THROW(parse_panda("link B0 B1\n"), PandaError);  // unknown brokers
  EXPECT_THROW(parse_panda("broker B0\nlink B0 B0\n"), PandaError);
  EXPECT_THROW(parse_panda("broker B0\nbroker B0\n"), PandaError);
  EXPECT_THROW(parse_panda("broker B0 bw=fast\n"), PandaError);
  EXPECT_THROW(parse_panda("frobnicate X\n"), PandaError);
  EXPECT_THROW(parse_panda("broker B0\npublisher P0 broker=B0\n"), PandaError);
  EXPECT_THROW(parse_panda("broker B0\nsubscriber C0 broker=B0 filter=[bad\n"), PandaError);
  EXPECT_THROW(parse_panda("broker B0 bw\n"), PandaError);
}

TEST(Panda, ErrorsCarryLineNumbers) {
  try {
    (void)parse_panda("broker B0\n\nlink B0 B9\n");
    FAIL() << "expected PandaError";
  } catch (const PandaError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Panda, CommentsAndBlankLinesIgnored) {
  const PandaTopology topo = parse_panda("# only comments\n\n   \nbroker B0 # trailing\n");
  EXPECT_EQ(topo.deployment.topology.broker_count(), 1u);
}

TEST(Panda, RoundTripThroughWriter) {
  const PandaTopology original = parse_panda(kSample);
  const std::string text = write_panda(original.deployment);
  const PandaTopology reparsed = parse_panda(text);
  EXPECT_EQ(reparsed.deployment.topology.broker_count(),
            original.deployment.topology.broker_count());
  EXPECT_EQ(reparsed.deployment.topology.link_count(),
            original.deployment.topology.link_count());
  ASSERT_EQ(reparsed.deployment.subscribers.size(),
            original.deployment.subscribers.size());
  for (std::size_t i = 0; i < reparsed.deployment.subscribers.size(); ++i) {
    EXPECT_EQ(reparsed.deployment.subscribers[i].filter,
              original.deployment.subscribers[i].filter);
  }
  ASSERT_EQ(reparsed.deployment.publishers.size(), original.deployment.publishers.size());
  EXPECT_EQ(reparsed.deployment.publishers[0].symbol,
            original.deployment.publishers[0].symbol);
}

TEST(Panda, ParsedDeploymentRunsInSimulator) {
  PandaTopology topo = parse_panda(kSample);
  Simulation sim(std::move(topo.deployment),
                 StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(1)));
  sim.run(20.0);
  EXPECT_GT(sim.metrics().publications(), 0u);
  EXPECT_GT(sim.metrics().deliveries(), 0u);
}

}  // namespace
}  // namespace greenps
