#include "baselines/pairwise.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc_test_util.hpp"

namespace greenps {
namespace {

using testutil::all_members;
using testutil::one_publisher;
using testutil::pool;
using testutil::unit;

std::vector<SubUnit> two_interest_groups(const PublisherTable& table) {
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  for (int i = 0; i < 6; ++i) units.push_back(unit(id++, 0, 20, table));
  for (int i = 0; i < 6; ++i) units.push_back(unit(id++, 60, 80, table));
  return units;
}

TEST(PairwiseCluster, ReachesRequestedClusterCount) {
  const auto table = one_publisher();
  const auto clusters = pairwise_cluster(two_interest_groups(table), 2, table);
  EXPECT_EQ(clusters.size(), 2u);
  std::size_t endpoints = 0;
  for (const auto& c : clusters) endpoints += c.members.size();
  EXPECT_EQ(endpoints, 12u);
}

TEST(PairwiseCluster, GroupsSimilarInterests) {
  const auto table = one_publisher();
  const auto clusters = pairwise_cluster(two_interest_groups(table), 2, table,
                                         ClosenessMetric::kIos);
  ASSERT_EQ(clusters.size(), 2u);
  // Each cluster stays within one interest group: its input rate equals one
  // group's stream (20 msg/s), not the union (40).
  for (const auto& c : clusters) {
    EXPECT_NEAR(c.in_rate, 20.0, 1e-6);
    EXPECT_EQ(c.members.size(), 6u);
  }
}

TEST(PairwiseCluster, XorMayMergeDisjointGroups) {
  // The XOR pathology (Section IV-C.2): with k=1 everything merges,
  // including disjoint profiles.
  const auto table = one_publisher();
  const auto clusters = pairwise_cluster(two_interest_groups(table), 1, table,
                                         ClosenessMetric::kXor);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_NEAR(clusters[0].in_rate, 40.0, 1e-6);
}

TEST(PairwiseCluster, KLargerThanUnitsIsIdentity) {
  const auto table = one_publisher();
  const auto clusters = pairwise_cluster(two_interest_groups(table), 50, table);
  EXPECT_EQ(clusters.size(), 12u);
}

TEST(PairwiseK, AssignsAllClustersSomewhere) {
  const auto table = one_publisher();
  Rng rng(9);
  const Allocation a =
      pairwise_k_allocate(pool(8, 100.0), two_interest_groups(table), 4, table, rng);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(all_members(a).size(), 12u);
  EXPECT_LE(a.brokers_used(), 4u);
}

TEST(PairwiseK, IgnoresCapacity) {
  // Capacity-unaware by design: a tiny broker may be overloaded.
  const auto table = one_publisher();
  Rng rng(3);
  const Allocation a =
      pairwise_k_allocate(pool(1, 1.0), two_interest_groups(table), 2, table, rng);
  ASSERT_TRUE(a.success);  // never fails
  ASSERT_EQ(a.brokers_used(), 1u);
  EXPECT_GT(a.brokers[0].used_bw(), a.brokers[0].broker().out_bw);
}

TEST(PairwiseN, OneClusterPerBroker) {
  const auto table = one_publisher();
  Rng rng(5);
  const Allocation a = pairwise_n_allocate(pool(4, 100.0), two_interest_groups(table),
                                           table, rng);
  ASSERT_TRUE(a.success);
  EXPECT_LE(a.brokers_used(), 4u);
  for (const auto& b : a.brokers) {
    EXPECT_EQ(b.units().size(), 1u);
  }
  EXPECT_EQ(all_members(a).size(), 12u);
}

}  // namespace
}  // namespace greenps
