#include "grape/grape.hpp"

#include <gtest/gtest.h>

namespace greenps {
namespace {

constexpr AdvId kAdv{0};

PublisherTable table_with_rate(MsgRate rate) {
  // last_seq far past every window: a 100-bit window is always fully
  // observed, so fraction = set_bits / 100.
  PublisherTable t;
  t[kAdv] = PublisherProfile{kAdv, rate, rate, 100000};
  return t;
}

SubscriptionProfile sinking(MessageSeq from, MessageSeq to) {
  SubscriptionProfile p(100);
  for (MessageSeq s = from; s < to; ++s) p.record(kAdv, s);
  return p;
}

// Chain 0-1-2-3-4.
Topology chain(std::size_t n) {
  Topology t;
  for (std::uint64_t i = 0; i < n; ++i) {
    t.add_broker(BrokerId{i});
    if (i > 0) t.add_link(BrokerId{i - 1}, BrokerId{i});
  }
  return t;
}

TEST(Grape, MovesPublisherTowardItsSubscribers) {
  const auto table = table_with_rate(100.0);
  const Topology t = chain(5);
  // All sinks at broker 4.
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  profiles.emplace(BrokerId{4}, sinking(0, 100));
  const std::vector<GrapePublisher> pubs = {{ClientId{1}, kAdv}};
  for (const GrapeMode mode : {GrapeMode::kMinimizeLoad, GrapeMode::kMinimizeDelay}) {
    const GrapePlacement placed = grape_place_publishers(t, pubs, profiles, table, mode);
    EXPECT_EQ(placed.broker_for.at(ClientId{1}), BrokerId{4});
    EXPECT_DOUBLE_EQ(placed.cost.at(ClientId{1}), 0.0);
  }
}

TEST(Grape, BalancesBetweenTwoSinkGroups) {
  const auto table = table_with_rate(100.0);
  const Topology t = chain(5);
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  profiles.emplace(BrokerId{0}, sinking(0, 100));  // sinks everything
  profiles.emplace(BrokerId{4}, sinking(0, 100));  // sinks everything
  const std::vector<GrapePublisher> pubs = {{ClientId{1}, kAdv}};
  // Any placement on the chain costs the same total load (the full stream
  // crosses all 4 links); delay mode also ties. Check cost correctness at
  // the middle: 2 hops each way, 100 msg/s -> 400 weighted hops.
  const double mid_delay = grape_cost(t, BrokerId{2}, kAdv, profiles, table,
                                      GrapeMode::kMinimizeDelay);
  EXPECT_NEAR(mid_delay, 100.0 * 2 + 100.0 * 2, 1e-6);
  const double end_delay = grape_cost(t, BrokerId{0}, kAdv, profiles, table,
                                      GrapeMode::kMinimizeDelay);
  EXPECT_NEAR(end_delay, 100.0 * 4, 1e-6);
}

TEST(Grape, LoadModeCountsLinkStreamsOnce) {
  const auto table = table_with_rate(100.0);
  // Star: center 0, leaves 1..3 each sinking the full stream.
  Topology t;
  for (std::uint64_t i = 1; i <= 3; ++i) t.add_link(BrokerId{0}, BrokerId{i});
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  for (std::uint64_t i = 1; i <= 3; ++i) profiles.emplace(BrokerId{i}, sinking(0, 100));
  // At the center: 3 links each carrying 100 msg/s -> 300.
  EXPECT_NEAR(grape_cost(t, BrokerId{0}, kAdv, profiles, table, GrapeMode::kMinimizeLoad),
              300.0, 1e-6);
  // At a leaf: its own link carries nothing new (local), the other two
  // leaves' streams cross 2 links... center-leaf1 link carries union to
  // subtree {center,leaf2,leaf3}? Rooted at leaf1: edge leaf1-center carries
  // the union for {center,leaf2,leaf3} = 100; edges center-leaf2 and
  // center-leaf3 carry 100 each -> 300 total.
  EXPECT_NEAR(grape_cost(t, BrokerId{1}, kAdv, profiles, table, GrapeMode::kMinimizeLoad),
              300.0, 1e-6);
}

TEST(Grape, LoadModePrefersDenseSubtree) {
  const auto table = table_with_rate(100.0);
  const Topology t = chain(3);
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  profiles.emplace(BrokerId{0}, sinking(0, 10));   // sinks 10%
  profiles.emplace(BrokerId{2}, sinking(0, 100));  // sinks 100%
  const std::vector<GrapePublisher> pubs = {{ClientId{7}, kAdv}};
  const GrapePlacement placed =
      grape_place_publishers(t, pubs, profiles, table, GrapeMode::kMinimizeLoad);
  // Placing at 2: stream to 0 costs 10+10 (two links at 10 msg/s); placing
  // at 0: 100+100. Broker 2 wins.
  EXPECT_EQ(placed.broker_for.at(ClientId{7}), BrokerId{2});
}

TEST(Grape, DisjointSinksSplitByFraction) {
  const auto table = table_with_rate(100.0);
  const Topology t = chain(3);
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  profiles.emplace(BrokerId{0}, sinking(0, 50));    // half the stream
  profiles.emplace(BrokerId{2}, sinking(50, 100));  // the other half
  // At the middle: each link carries its half: 50+50 = 100.
  EXPECT_NEAR(grape_cost(t, BrokerId{1}, kAdv, profiles, table, GrapeMode::kMinimizeLoad),
              100.0, 1e-6);
  // At broker 0: link 0-1 carries the union of {1,2}'s needs (50), link 1-2
  // carries 50 -> 100. Same; but delay differs.
  EXPECT_NEAR(grape_cost(t, BrokerId{0}, kAdv, profiles, table, GrapeMode::kMinimizeDelay),
              50.0 * 0 + 50.0 * 2, 1e-6);
  EXPECT_NEAR(grape_cost(t, BrokerId{1}, kAdv, profiles, table, GrapeMode::kMinimizeDelay),
              50.0 * 1 + 50.0 * 1, 1e-6);
}

TEST(Grape, UnknownPublisherCostsNothing) {
  const Topology t = chain(2);
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  const PublisherTable empty;
  EXPECT_DOUBLE_EQ(
      grape_cost(t, BrokerId{0}, AdvId{42}, profiles, empty, GrapeMode::kMinimizeLoad), 0.0);
}

TEST(Grape, PlacesEveryPublisher) {
  const auto table = [] {
    PublisherTable t;
    t[AdvId{0}] = PublisherProfile{AdvId{0}, 10.0, 10.0, 100000};
    t[AdvId{1}] = PublisherProfile{AdvId{1}, 10.0, 10.0, 100000};
    return t;
  }();
  const Topology t = chain(4);
  std::unordered_map<BrokerId, SubscriptionProfile> profiles;
  {
    SubscriptionProfile p(64);
    for (MessageSeq s = 0; s < 50; ++s) p.record(AdvId{0}, s);
    profiles.emplace(BrokerId{0}, std::move(p));
  }
  {
    SubscriptionProfile p(64);
    for (MessageSeq s = 0; s < 50; ++s) p.record(AdvId{1}, s);
    profiles.emplace(BrokerId{3}, std::move(p));
  }
  const std::vector<GrapePublisher> pubs = {{ClientId{0}, AdvId{0}}, {ClientId{1}, AdvId{1}}};
  const GrapePlacement placed =
      grape_place_publishers(t, pubs, profiles, table, GrapeMode::kMinimizeDelay);
  EXPECT_EQ(placed.broker_for.size(), 2u);
  EXPECT_EQ(placed.broker_for.at(ClientId{0}), BrokerId{0});
  EXPECT_EQ(placed.broker_for.at(ClientId{1}), BrokerId{3});
}

}  // namespace
}  // namespace greenps
