#include "overlay_build/recursive_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "alloc/bin_packing.hpp"
#include "alloc_test_util.hpp"

namespace greenps {
namespace {

using testutil::one_publisher;
using testutil::pool;
using testutil::unit;

AllocatorFn bin_packing_fn() {
  return [](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
            const PublisherTable& t) { return bin_packing_allocate(p, u, t); };
}

// Leaf allocation: `groups` disjoint interest groups, each on its own
// broker, over a pool of `brokers` brokers of `bw` kB/s.
Allocation leaf_allocation(std::size_t groups, const PublisherTable& table,
                           std::size_t brokers, Bandwidth bw) {
  std::vector<SubUnit> units;
  std::uint64_t id = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    for (int i = 0; i < 3; ++i) {
      units.push_back(unit(id++, static_cast<MessageSeq>(g) * 30,
                           static_cast<MessageSeq>(g) * 30 + 20, table));
    }
  }
  return bin_packing_allocate(pool(brokers, bw), units, table);
}

TEST(OverlayBuild, SingleLeafBrokerIsRoot) {
  const auto table = one_publisher();
  const Allocation leaf = leaf_allocation(1, table, 10, 200.0);
  ASSERT_TRUE(leaf.success);
  ASSERT_EQ(leaf.brokers_used(), 1u);
  const BuiltOverlay built = build_overlay(leaf, pool(10, 200.0), table, bin_packing_fn());
  EXPECT_EQ(built.broker_count(), 1u);
  EXPECT_EQ(built.root, leaf.brokers[0].broker().id);
  EXPECT_TRUE(built.tree.is_tree());
}

TEST(OverlayBuild, BuildsTreeOverMultipleLeaves) {
  const auto table = one_publisher();
  const auto all = pool(20, 100.0);
  const Allocation leaf = leaf_allocation(4, table, 20, 100.0);
  ASSERT_TRUE(leaf.success);
  ASSERT_GE(leaf.brokers_used(), 2u);
  const BuiltOverlay built = build_overlay(leaf, all, table, bin_packing_fn());
  EXPECT_TRUE(built.tree.is_tree());
  EXPECT_TRUE(built.tree.has_broker(built.root));
  EXPECT_GE(built.stats.layers, 2u);
  // Every leaf broker is in the tree and still hosts its subscriptions.
  std::size_t endpoints = 0;
  for (const auto& [b, hosted] : built.hosted_units) {
    EXPECT_TRUE(built.tree.has_broker(b));
    for (const auto& u : hosted) endpoints += u.members.size();
  }
  EXPECT_EQ(endpoints, 12u);
}

TEST(OverlayBuild, OptimizationsReduceBrokerCount) {
  const auto table = one_publisher();
  const auto all = pool(30, 100.0);
  const Allocation leaf = leaf_allocation(6, table, 30, 100.0);
  ASSERT_TRUE(leaf.success);
  OverlayBuildOptions off;
  off.eliminate_pure_forwarders = false;
  off.takeover_children = false;
  off.best_fit_replacement = false;
  const BuiltOverlay plain = build_overlay(leaf, all, table, bin_packing_fn(), off);
  const BuiltOverlay optimized = build_overlay(leaf, all, table, bin_packing_fn());
  EXPECT_TRUE(plain.tree.is_tree());
  EXPECT_TRUE(optimized.tree.is_tree());
  EXPECT_LE(optimized.broker_count(), plain.broker_count());
}

TEST(OverlayBuild, PureForwarderElimination) {
  // One leaf group so small that any parent above it would host exactly one
  // child unit: the parent must be eliminated, leaving the leaf as root...
  // with two leaves, the first recursion allocates one parent for both
  // (fine), but with capacities forcing one parent PER child the forwarder
  // rule kicks in and the fallback keeps the tree valid.
  const auto table = one_publisher();
  const auto all = pool(10, 45.0);  // parent fits only one 30 kB/s child stream + margin
  std::vector<SubUnit> units;
  units.push_back(unit(0, 0, 30, table));
  units.push_back(unit(1, 40, 70, table));
  const Allocation leaf = bin_packing_allocate(all, units, table);
  ASSERT_TRUE(leaf.success);
  ASSERT_EQ(leaf.brokers_used(), 2u);
  OverlayBuildOptions opts;
  opts.takeover_children = false;
  opts.best_fit_replacement = false;
  const BuiltOverlay built = build_overlay(leaf, all, table, bin_packing_fn(), opts);
  EXPECT_TRUE(built.tree.is_tree());
  // Either forwarders were removed or the star fallback fired; both keep
  // the broker count at the minimum.
  EXPECT_GT(built.stats.pure_forwarders_removed + (built.stats.forced_root ? 1u : 0u), 0u);
}

TEST(OverlayBuild, TakeoverAbsorbsTinyChildren) {
  const auto table = one_publisher();
  // Two leaf brokers with tiny loads; the parent can host both loads
  // directly.
  const auto all = pool(10, 300.0);
  std::vector<SubUnit> units;
  units.push_back(unit(0, 0, 10, table));
  units.push_back(unit(1, 50, 60, table));
  // Force them apart with a tiny pool bandwidth? Instead allocate manually:
  Allocation leaf;
  leaf.success = true;
  {
    BrokerLoad a(AllocBroker{BrokerId{0}, 300.0, {20e-6, 0.5e-6}});
    a.add(units[0], table);
    BrokerLoad b(AllocBroker{BrokerId{1}, 300.0, {20e-6, 0.5e-6}});
    b.add(units[1], table);
    leaf.brokers.push_back(std::move(a));
    leaf.brokers.push_back(std::move(b));
  }
  OverlayBuildOptions opts;
  opts.eliminate_pure_forwarders = false;
  opts.best_fit_replacement = false;
  const BuiltOverlay built = build_overlay(leaf, all, table, bin_packing_fn(), opts);
  EXPECT_TRUE(built.tree.is_tree());
  EXPECT_GT(built.stats.children_taken_over, 0u);
  // After takeover both subscriptions live on one broker.
  std::size_t brokers_with_subs = 0;
  for (const auto& [b, hosted] : built.hosted_units) {
    if (!hosted.empty()) ++brokers_with_subs;
  }
  EXPECT_EQ(brokers_with_subs, 1u);
}

TEST(OverlayBuild, BestFitPrefersSmallerBrokers) {
  const auto table = one_publisher();
  // Heterogeneous pool: two big brokers (leaf layer) + small spares.
  std::vector<AllocBroker> all = {
      {BrokerId{0}, 500.0, {20e-6, 0.5e-6}}, {BrokerId{1}, 500.0, {20e-6, 0.5e-6}},
      {BrokerId{2}, 500.0, {20e-6, 0.5e-6}}, {BrokerId{3}, 60.0, {20e-6, 0.5e-6}},
      {BrokerId{4}, 60.0, {20e-6, 0.5e-6}},
  };
  std::vector<SubUnit> units = {unit(0, 0, 20, table), unit(1, 50, 70, table)};
  Allocation leaf;
  leaf.success = true;
  {
    BrokerLoad a(all[0]);
    a.add(units[0], table);
    BrokerLoad b(all[1]);
    b.add(units[1], table);
    leaf.brokers.push_back(std::move(a));
    leaf.brokers.push_back(std::move(b));
  }
  OverlayBuildOptions opts;
  opts.eliminate_pure_forwarders = false;
  opts.takeover_children = false;
  const BuiltOverlay built = build_overlay(leaf, all, table, bin_packing_fn(), opts);
  EXPECT_TRUE(built.tree.is_tree());
  // The parent layer's 40 kB/s load fits a 60 kB/s broker; best-fit must
  // have replaced the 500 kB/s pick.
  EXPECT_GT(built.stats.best_fit_replacements, 0u);
}

TEST(OverlayBuild, FallbackWhenPoolExhausted) {
  const auto table = one_publisher();
  // Exactly as many brokers as leaves: no broker left for the upper layer.
  const auto all = pool(2, 45.0);
  std::vector<SubUnit> units = {unit(0, 0, 30, table), unit(1, 40, 70, table)};
  const Allocation leaf = bin_packing_allocate(all, units, table);
  ASSERT_TRUE(leaf.success);
  ASSERT_EQ(leaf.brokers_used(), 2u);
  const BuiltOverlay built = build_overlay(leaf, all, table, bin_packing_fn());
  EXPECT_TRUE(built.stats.forced_root);
  EXPECT_TRUE(built.tree.is_tree());
  EXPECT_EQ(built.broker_count(), 2u);
}

}  // namespace
}  // namespace greenps
