// Differential suite for the incremental allocation probe.
//
// CheckpointedFirstFit::probe_replacement promises bit-identical results to
// a from-scratch first-fit packing of the overlay, for every checkpoint
// stride. These tests hold it to that promise: randomized overlays (removed
// ranges + a spliced-in unit) are probed through checkpoint resume and
// compared — outcome, broker count, work accounting AND final broker states
// — against the first_fit_probe oracle, across strides {none, 1, 3, 8,
// auto}. Directed cases cover the edges: first/last unit removed, the whole
// base removed, empty overlays, adds that sort first/last, multi-round
// commit-with-hint rebuilds and zero-pack adoption.
#include "alloc/allocation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cassert>
#include <vector>

#include "alloc/bin_packing.hpp"
#include "alloc_test_util.hpp"
#include "common/rng.hpp"

namespace greenps {
namespace {

using testutil::range_profile;

constexpr std::size_t kAuto = 0;
constexpr std::size_t kNone = CheckpointedFirstFit::kNoCheckpoints;
const std::vector<std::size_t> kStrides = {kNone, 1, 3, 8, kAuto};

PublisherTable three_publishers() {
  PublisherTable t;
  t[AdvId{0}] = PublisherProfile{AdvId{0}, 100.0, 100.0, 100000};
  t[AdvId{1}] = PublisherProfile{AdvId{1}, 60.0, 80.0, 100000};
  t[AdvId{2}] = PublisherProfile{AdvId{2}, 25.0, 40.0, 100000};
  return t;
}

// Stable unit storage: probes hold pointers into it and UnitRange is a raw
// contiguous span, so the vector is pre-reserved and must never reallocate
// while a packer is alive.
struct Workload {
  PublisherTable table = three_publishers();
  std::vector<SubUnit> storage;
  std::vector<AllocBroker> pool;

  Workload() { storage.reserve(64); }

  const SubUnit* add_unit(std::uint64_t id, MessageSeq from, MessageSeq to, AdvId adv) {
    assert(storage.size() < storage.capacity());
    storage.push_back(
        make_subscription_unit(SubId{id}, range_profile(from, to, adv), table));
    return &storage.back();
  }
};

Workload random_workload(Rng& rng) {
  Workload w;
  const auto brokers = static_cast<std::size_t>(rng.uniform_int(1, 6));
  for (std::size_t i = 0; i < brokers; ++i) {
    w.pool.push_back(AllocBroker{BrokerId{i}, rng.uniform_real(30.0, 200.0),
                                 MatchingDelayFunction{20e-6, 0.5e-6}});
  }
  const auto n = static_cast<std::size_t>(rng.uniform_int(3, 40));
  for (std::size_t i = 0; i < n; ++i) {
    const auto adv = AdvId{static_cast<std::uint64_t>(rng.uniform_int(0, 2))};
    const auto from = static_cast<MessageSeq>(rng.uniform_int(0, 60));
    const auto len = static_cast<MessageSeq>(rng.uniform_int(1, 35));
    w.add_unit(i, from, from + len, adv);
  }
  return w;
}

std::vector<const SubUnit*> all_ptrs(const Workload& w) {
  std::vector<const SubUnit*> out;
  for (const SubUnit& u : w.storage) out.push_back(&u);
  return out;
}

// The overlay as the oracle sees it: base minus removed plus added, in the
// exact first-fit order (sorted by unit_order_less).
std::vector<const SubUnit*> overlay_ptrs(const std::vector<const SubUnit*>& base,
                                         const std::vector<UnitRange>& removed,
                                         const SubUnit* added) {
  std::vector<const SubUnit*> out;
  for (const SubUnit* u : base) {
    bool gone = false;
    for (const UnitRange& r : removed) gone = gone || (u >= r.first && u < r.last);
    if (!gone) out.push_back(u);
  }
  if (added != nullptr) out.push_back(added);
  std::sort(out.begin(), out.end(),
            [](const SubUnit* a, const SubUnit* b) { return unit_order_less(*a, *b); });
  return out;
}

// Exact equality of final broker states — the strongest bit-identity check
// the probe exposes (floats compared with ==, unions entry by entry).
void expect_same_loads(const std::vector<BrokerLoad>& a, const std::vector<BrokerLoad>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].in_rate(), b[i].in_rate());
    EXPECT_EQ(a[i].used_bw(), b[i].used_bw());
    EXPECT_EQ(a[i].filter_count(), b[i].filter_count());
    const auto& ea = a[i].union_view().entries();
    const auto& eb = b[i].union_view().entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t j = 0; j < ea.size(); ++j) {
      EXPECT_EQ(ea[j].adv, eb[j].adv);
      EXPECT_EQ(ea[j].count, eb[j].count);
      EXPECT_TRUE(ea[j].bits == eb[j].bits);
    }
  }
}

// Oracle: pack the overlay from scratch and keep the final loads.
PackProbe oracle_probe(const Workload& w, const std::vector<const SubUnit*>& overlay,
                       std::vector<BrokerLoad>* loads_out) {
  std::vector<AllocBroker> pool = w.pool;
  sort_by_capacity_desc(pool);
  std::vector<BrokerLoad> loads;
  for (const AllocBroker& b : pool) loads.emplace_back(b, /*keep_units=*/false);
  PackProbe probe;
  for (const SubUnit* u : overlay) {
    probe.units_packed += 1;
    bool placed = false;
    for (BrokerLoad& load : loads) {
      if (load.try_add(*u, w.table)) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      *loads_out = std::move(loads);
      return probe;
    }
  }
  for (const BrokerLoad& load : loads) {
    if (!load.empty()) probe.brokers_used += 1;
  }
  probe.success = true;
  *loads_out = std::move(loads);
  return probe;
}

// One overlay, checked against the oracle for one packer.
void check_overlay(const Workload& w, const CheckpointedFirstFit& packer,
                   const std::vector<UnitRange>& removed, const SubUnit* added) {
  std::vector<BrokerLoad> oracle_loads;
  const auto overlay = overlay_ptrs(packer.units(), removed, added);
  const PackProbe want = oracle_probe(w, overlay, &oracle_loads);

  CheckpointedFirstFit::Scratch scratch;
  const PackProbe got = packer.probe_replacement(removed, added, w.table, scratch);
  EXPECT_EQ(got.success, want.success);
  EXPECT_EQ(got.brokers_used, want.brokers_used);
  // Work conservation: resumed + walked covers exactly what the oracle
  // walked, wherever the checkpoints happened to fall.
  EXPECT_EQ(got.units_packed + got.units_skipped, want.units_packed);
  expect_same_loads(scratch.loads, oracle_loads);
}

std::vector<UnitRange> random_removed(const Workload& w, Rng& rng) {
  std::vector<UnitRange> removed;
  const std::size_t n = w.storage.size();
  const auto ranges = static_cast<std::size_t>(rng.uniform_int(0, 3));
  std::size_t pos = 0;
  for (std::size_t r = 0; r < ranges && pos < n; ++r) {
    const auto first = pos + static_cast<std::size_t>(
                                 rng.uniform_int(0, static_cast<std::int64_t>(n - pos) - 1));
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(n - first)));
    removed.push_back({&w.storage[first], &w.storage[first] + len});
    pos = first + len;
  }
  return removed;
}

TEST(ProbeResume, RandomizedDifferentialAgainstFromScratchFirstFit) {
  std::size_t cases = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed * 7919 + 1);
    Workload w = random_workload(rng);
    for (const std::size_t stride : kStrides) {
      CheckpointedFirstFit packer(w.pool, stride);
      packer.rebuild(all_ptrs(w), w.table);
      for (int probe = 0; probe < 4; ++probe) {
        const std::vector<UnitRange> removed = random_removed(w, rng);
        const SubUnit* added = nullptr;
        SubUnit merged;
        if (!removed.empty() && rng.chance(0.7)) {
          merged = cluster_units(*removed.front().first,
                                 *(removed.back().last - 1), w.table);
          added = &merged;
        }
        check_overlay(w, packer, removed, added);
        ++cases;
      }
    }
  }
  // The suite's advertised depth: at least 1,000 randomized differential
  // comparisons (60 seeds x 5 strides x 4 overlays = 1,200).
  EXPECT_GE(cases, 1000u);
}

TEST(ProbeResume, RemovedRangeEdgeCases) {
  Rng rng(42);
  for (const std::size_t stride : kStrides) {
    Workload w = random_workload(rng);
    CheckpointedFirstFit packer(w.pool, stride);
    packer.rebuild(all_ptrs(w), w.table);
    const auto& sorted = packer.units();

    // First and last unit in PACK order (not storage order).
    const SubUnit* first_packed = sorted.front();
    const SubUnit* last_packed = sorted.back();
    check_overlay(w, packer, {{first_packed, first_packed + 1}}, nullptr);
    check_overlay(w, packer, {{last_packed, last_packed + 1}}, nullptr);

    // The whole base removed: empty overlay, trivially feasible.
    const UnitRange everything{&w.storage.front(), &w.storage.back() + 1};
    check_overlay(w, packer, {everything}, nullptr);
    CheckpointedFirstFit::Scratch scratch;
    const PackProbe empty = packer.probe_replacement({everything}, nullptr, w.table, scratch);
    EXPECT_TRUE(empty.success);
    EXPECT_EQ(empty.brokers_used, 0u);

    // Whole base replaced by one unit.
    SubUnit merged = cluster_units(w.storage.front(), w.storage.back(), w.table);
    check_overlay(w, packer, {everything}, &merged);

    // An add that sorts before everything (heaviest) and one that sorts
    // after everything (lightest), with nothing removed.
    SubUnit heavy = w.storage.front();
    for (const SubUnit* u : sorted) {
      if (heavy.out_bw <= u->out_bw) heavy = cluster_units(heavy, *u, w.table);
    }
    check_overlay(w, packer, {}, &heavy);
    const SubUnit* light = w.add_unit(900, 0, 1, AdvId{2});
    check_overlay(w, packer, {}, light);
  }
}

TEST(ProbeResume, ProbeIsReusableAndConstAcrossRepeats) {
  Rng rng(7);
  Workload w = random_workload(rng);
  CheckpointedFirstFit packer(w.pool, 3);
  packer.rebuild(all_ptrs(w), w.table);
  const SubUnit* victim = packer.units()[packer.units().size() / 2];
  CheckpointedFirstFit::Scratch scratch;
  const PackProbe once = packer.probe_replacement({{victim, victim + 1}}, nullptr, w.table,
                                                  scratch);
  for (int i = 0; i < 3; ++i) {
    const PackProbe again = packer.probe_replacement({{victim, victim + 1}}, nullptr,
                                                     w.table, scratch);
    EXPECT_EQ(again.success, once.success);
    EXPECT_EQ(again.brokers_used, once.brokers_used);
    EXPECT_EQ(again.units_packed, once.units_packed);
    EXPECT_EQ(again.units_skipped, once.units_skipped);
  }
}

// Multi-round: commit random overlays, resuming each rebuild from the
// divergence position, and keep comparing against a packer rebuilt from
// scratch every round. Exercises checkpoint reuse across generations.
TEST(ProbeResume, CommitWithResumeHintMatchesFreshRebuild) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 100);
    Workload w = random_workload(rng);
    CheckpointedFirstFit resumed(w.pool, 2);
    CheckpointedFirstFit fresh(w.pool, kNone);
    std::vector<const SubUnit*> live = all_ptrs(w);
    resumed.rebuild(live, w.table);
    fresh.rebuild(live, w.table);

    for (int round = 0; round < 5 && live.size() >= 2; ++round) {
      // Remove two units (as two singleton ranges), add their cluster.
      const std::size_t ia = rng.index(live.size());
      std::size_t ib = rng.index(live.size());
      if (ib == ia) ib = (ib + 1) % live.size();
      const SubUnit *ua = live[ia], *ub = live[ib];
      w.storage.push_back(cluster_units(*ua, *ub, w.table));
      const SubUnit* merged = &w.storage.back();
      const std::vector<UnitRange> removed{{ua, ua + 1}, {ub, ub + 1}};

      check_overlay(w, resumed, removed, merged);
      const std::size_t hint = resumed.divergence_position(removed, merged);

      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const SubUnit* u) { return u == ua || u == ub; }),
                 live.end());
      live.push_back(merged);
      const PackProbe& a = resumed.rebuild(live, w.table, hint);
      const PackProbe& b = fresh.rebuild(live, w.table);
      EXPECT_EQ(a.success, b.success);
      EXPECT_EQ(a.brokers_used, b.brokers_used);
      // The resumed rebuild walks only what its checkpoints cannot cover.
      EXPECT_EQ(a.units_packed + a.units_skipped, b.units_packed);
      // And probes on the two bases agree from here on.
      if (!live.empty()) {
        const SubUnit* victim = resumed.units().front();
        CheckpointedFirstFit::Scratch sa, sb;
        const PackProbe pa =
            resumed.probe_replacement({{victim, victim + 1}}, nullptr, w.table, sa);
        const PackProbe pb =
            fresh.probe_replacement({{victim, victim + 1}}, nullptr, w.table, sb);
        EXPECT_EQ(pa.success, pb.success);
        EXPECT_EQ(pa.brokers_used, pb.brokers_used);
        expect_same_loads(sa.loads, sb.loads);
      }
    }
  }
}

// Adoption: installing a committed overlay's winning probe as the new base
// without packing must leave the packer indistinguishable (to probes) from
// one that re-packed the same sequence.
TEST(ProbeResume, AdoptedBaseMatchesRebuiltBase) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 500);
    Workload w = random_workload(rng);
    CheckpointedFirstFit adopted(w.pool, 2);
    CheckpointedFirstFit rebuilt(w.pool, 2);
    std::vector<const SubUnit*> live = all_ptrs(w);
    adopted.rebuild(live, w.table);
    rebuilt.rebuild(live, w.table);

    for (int round = 0; round < 4 && live.size() >= 2; ++round) {
      const std::size_t ia = rng.index(live.size());
      const SubUnit* ua = live[ia];
      std::size_t ib = rng.index(live.size());
      if (ib == ia) ib = (ib + 1) % live.size();
      const SubUnit* ub = live[ib];
      w.storage.push_back(cluster_units(*ua, *ub, w.table));
      const SubUnit* merged = &w.storage.back();
      const std::vector<UnitRange> removed{{ua, ua + 1}, {ub, ub + 1}};

      CheckpointedFirstFit::Scratch scratch;
      const PackProbe winning =
          adopted.probe_replacement(removed, merged, w.table, scratch);
      if (!winning.success) break;  // only successful overlays are ever adopted
      const std::size_t hint = adopted.divergence_position(removed, merged);

      live.erase(std::remove_if(live.begin(), live.end(),
                                [&](const SubUnit* u) { return u == ua || u == ub; }),
                 live.end());
      live.push_back(merged);
      adopted.adopt(live, hint, winning);
      rebuilt.rebuild(live, w.table);
      EXPECT_EQ(adopted.base().success, rebuilt.base().success);
      EXPECT_EQ(adopted.base().brokers_used, rebuilt.base().brokers_used);
      ASSERT_EQ(adopted.units().size(), rebuilt.units().size());
      for (std::size_t i = 0; i < adopted.units().size(); ++i) {
        EXPECT_EQ(adopted.units()[i], rebuilt.units()[i]);
      }

      if (live.empty()) break;
      const SubUnit* victim = adopted.units().front();
      CheckpointedFirstFit::Scratch sa, sb;
      const PackProbe pa =
          adopted.probe_replacement({{victim, victim + 1}}, nullptr, w.table, sa);
      const PackProbe pb =
          rebuilt.probe_replacement({{victim, victim + 1}}, nullptr, w.table, sb);
      EXPECT_EQ(pa.success, pb.success);
      EXPECT_EQ(pa.brokers_used, pb.brokers_used);
      EXPECT_EQ(pa.units_packed + pa.units_skipped, pb.units_packed + pb.units_skipped);
      expect_same_loads(sa.loads, sb.loads);
    }
  }
}

// try_add is the fused fits+add: a rejected unit must leave the load
// untouched bit for bit, and an accepted one must cost a single union walk
// on the provably-fitting fast path.
TEST(ProbeResume, TryAddRejectionLeavesLoadUntouched) {
  const PublisherTable table = three_publishers();
  const AllocBroker tiny{BrokerId{0}, 10.0, MatchingDelayFunction{20e-6, 0.5e-6}};
  BrokerLoad load(tiny, /*keep_units=*/false);
  const SubUnit small = make_subscription_unit(SubId{1}, range_profile(0, 5, AdvId{0}), table);
  ASSERT_TRUE(load.try_add(small, table));
  const MsgRate in_before = load.in_rate();
  const Bandwidth bw_before = load.used_bw();
  const std::size_t filters_before = load.filter_count();
  const SubUnit huge =
      make_subscription_unit(SubId{2}, range_profile(0, 90, AdvId{1}), table);
  EXPECT_FALSE(load.try_add(huge, table));
  EXPECT_EQ(load.in_rate(), in_before);
  EXPECT_EQ(load.used_bw(), bw_before);
  EXPECT_EQ(load.filter_count(), filters_before);
}

TEST(ProbeResume, FastPathAcceptCostsOneWalk) {
  const PublisherTable table = three_publishers();
  const AllocBroker big{BrokerId{0}, 1000.0, MatchingDelayFunction{20e-6, 0.5e-6}};
  BrokerLoad load(big, /*keep_units=*/false);
  const SubUnit u = make_subscription_unit(SubId{1}, range_profile(0, 10, AdvId{0}), table);
  UnionProfile::reset_probe_walks();
  ASSERT_TRUE(load.try_add(u, table));
  // An empty 1000 kB/s broker trivially satisfies the rate bound, so the
  // decision is walk-free and the fused merge_with_rate is the only walk.
  EXPECT_EQ(UnionProfile::probe_walks(), 1u);
}

}  // namespace
}  // namespace greenps
