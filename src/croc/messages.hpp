// Phase-1 protocol messages (Section III-A).
//
// CROC connects to one broker and sends a Broker Information Request (BIR);
// brokers flood it to their neighbors and reply with Broker Information
// Answers (BIA) only once all their downstream neighbors answered,
// aggregating those answers with their own into a single BIA.
#pragma once

#include <vector>

#include "broker/cbc.hpp"
#include "common/ids.hpp"

namespace greenps {

struct BrokerInformationRequest {
  BrokerId from;  // the neighbor (or CROC entry point) the BIR arrived from
};

struct BrokerInformationAnswer {
  // Aggregated broker infos for the whole subtree that answered.
  std::vector<BrokerInfo> infos;
};

// A subscription as CROC sees it after Phase 1: the BIA payload plus the
// broker that reported it.
struct SubscriptionRecord {
  BrokerId home;
  LocalSubscriptionInfo info;
};

// A publisher as CROC sees it after Phase 1.
struct PublisherRecord {
  BrokerId home;
  ClientId client;
  PublisherProfile profile;
};

}  // namespace greenps
