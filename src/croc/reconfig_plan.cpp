#include "croc/reconfig_plan.hpp"

#include <cassert>

namespace greenps {

Deployment apply_plan(const Deployment& old_deployment, const ReconfigurationPlan& plan) {
  Deployment next;
  next.topology = plan.overlay;
  next.profile_window_bits = old_deployment.profile_window_bits;
  for (const BrokerId b : plan.overlay.brokers()) {
    const auto it = old_deployment.capacities.find(b);
    assert(it != old_deployment.capacities.end());
    next.capacities.emplace(b, it->second);
  }
  for (const PublisherSpec& p : old_deployment.publishers) {
    PublisherSpec np = p;
    const auto it = plan.publisher_home.find(p.client);
    np.home = it != plan.publisher_home.end() ? it->second : plan.root;
    next.publishers.push_back(std::move(np));
  }
  for (const SubscriberSpec& s : old_deployment.subscribers) {
    SubscriberSpec ns = s;
    const auto it = plan.subscriber_home.find(s.sub);
    ns.home = it != plan.subscriber_home.end() ? it->second : plan.root;
    next.subscribers.push_back(std::move(ns));
  }
  return next;
}

}  // namespace greenps
