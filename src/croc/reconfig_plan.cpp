#include "croc/reconfig_plan.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace greenps {

const char* failure_reason_name(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kGatherFailed: return "gather_failed";
    case FailureReason::kPhase2Insufficient: return "phase2_insufficient";
    case FailureReason::kPlanInvalid: return "plan_invalid";
    case FailureReason::kBrokerUnreachable: return "broker_unreachable";
    case FailureReason::kNoIncrementalSession: return "no_incremental_session";
  }
  return "?";
}

namespace {

ApplyResult rollback(const Deployment& old_deployment, FailureReason reason,
                     std::string detail, std::size_t applied, std::size_t total) {
  ApplyResult r;
  r.success = false;
  r.reason = reason;
  r.detail = std::move(detail);
  r.steps_applied = applied;
  r.steps_total = total;
  r.deployment = old_deployment;
  log::warn("apply_plan rolled back (", failure_reason_name(reason), "): ", r.detail);
  return r;
}

}  // namespace

ApplyResult apply_plan_transactional(const Deployment& old_deployment,
                                     const ReconfigurationPlan& plan,
                                     const BrokerHealthProbe& probe) {
  // ---- validate against the current deployment ----
  const std::vector<BrokerId> brokers = plan.overlay.brokers();
  if (brokers.empty()) {
    return rollback(old_deployment, FailureReason::kPlanInvalid, "plan overlay is empty", 0, 0);
  }
  if (!plan.overlay.has_broker(plan.root)) {
    return rollback(old_deployment, FailureReason::kPlanInvalid,
                    "root broker " + std::to_string(plan.root.value()) + " not in overlay", 0,
                    0);
  }
  if (!plan.overlay.is_tree()) {
    return rollback(old_deployment, FailureReason::kPlanInvalid,
                    "plan overlay is not a tree", 0, 0);
  }
  for (const BrokerId b : brokers) {
    if (!old_deployment.capacities.contains(b)) {
      return rollback(old_deployment, FailureReason::kPlanInvalid,
                      "plan names broker " + std::to_string(b.value()) +
                          " with no capacity entry in the current deployment",
                      0, 0);
    }
  }
  for (const auto& [sub, b] : plan.subscriber_home) {
    if (!plan.overlay.has_broker(b)) {
      return rollback(old_deployment, FailureReason::kPlanInvalid,
                      "subscriber " + std::to_string(sub.value()) + " targets broker " +
                          std::to_string(b.value()) + " outside the overlay",
                      0, 0);
    }
  }
  for (const auto& [client, b] : plan.publisher_home) {
    if (!plan.overlay.has_broker(b)) {
      return rollback(old_deployment, FailureReason::kPlanInvalid,
                      "publisher client " + std::to_string(client.value()) +
                          " targets broker " + std::to_string(b.value()) +
                          " outside the overlay",
                      0, 0);
    }
  }

  // ---- staged apply: commission brokers, then attach clients ----
  const std::size_t total =
      brokers.size() + old_deployment.publishers.size() + old_deployment.subscribers.size();
  std::size_t applied = 0;

  Deployment next;
  next.topology = plan.overlay;
  next.profile_window_bits = old_deployment.profile_window_bits;

  std::vector<BrokerId> ordered = brokers;
  std::sort(ordered.begin(), ordered.end());  // deterministic step order
  for (const BrokerId b : ordered) {
    if (probe && !probe(b)) {
      return rollback(old_deployment, FailureReason::kBrokerUnreachable,
                      "broker " + std::to_string(b.value()) + " unreachable at commission",
                      applied, total);
    }
    next.capacities.emplace(b, old_deployment.capacities.at(b));
    applied += 1;
  }
  for (const PublisherSpec& p : old_deployment.publishers) {
    const auto it = plan.publisher_home.find(p.client);
    const BrokerId target = it != plan.publisher_home.end() ? it->second : plan.root;
    if (probe && !probe(target)) {
      return rollback(old_deployment, FailureReason::kBrokerUnreachable,
                      "broker " + std::to_string(target.value()) +
                          " unreachable attaching publisher client " +
                          std::to_string(p.client.value()),
                      applied, total);
    }
    PublisherSpec np = p;
    np.home = target;
    next.publishers.push_back(std::move(np));
    applied += 1;
  }
  for (const SubscriberSpec& s : old_deployment.subscribers) {
    const auto it = plan.subscriber_home.find(s.sub);
    const BrokerId target = it != plan.subscriber_home.end() ? it->second : plan.root;
    if (probe && !probe(target)) {
      return rollback(old_deployment, FailureReason::kBrokerUnreachable,
                      "broker " + std::to_string(target.value()) +
                          " unreachable attaching subscriber " + std::to_string(s.sub.value()),
                      applied, total);
    }
    SubscriberSpec ns = s;
    ns.home = target;
    next.subscribers.push_back(std::move(ns));
    applied += 1;
  }

  ApplyResult r;
  r.success = true;
  r.reason = FailureReason::kNone;
  r.steps_applied = applied;
  r.steps_total = total;
  r.deployment = std::move(next);
  return r;
}

Deployment apply_plan(const Deployment& old_deployment, const ReconfigurationPlan& plan) {
  ApplyResult r = apply_plan_transactional(old_deployment, plan);
  assert(r.success);
  return std::move(r.deployment);
}

}  // namespace greenps
