#include "croc/croc.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>
#include <utility>

#include "alloc/bin_packing.hpp"
#include "alloc/fbf.hpp"
#include "baselines/pairwise.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/topology_builder.hpp"

namespace greenps {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

const char* algorithm_name(Phase2Algorithm a) {
  switch (a) {
    case Phase2Algorithm::kFbf: return "FBF";
    case Phase2Algorithm::kBinPacking: return "BIN PACKING";
    case Phase2Algorithm::kCram: return "CRAM";
    case Phase2Algorithm::kPairwiseK: return "PAIRWISE-K";
    case Phase2Algorithm::kPairwiseN: return "PAIRWISE-N";
  }
  return "?";
}

std::vector<SubUnit> Croc::units_from(const GatheredInfo& info) {
  std::vector<SubUnit> units;
  units.reserve(info.subscriptions.size());
  for (const SubscriptionRecord& rec : info.subscriptions) {
    units.push_back(
        make_subscription_unit(rec.info.id, rec.info.profile, info.publisher_table));
  }
  return units;
}

std::vector<AllocBroker> Croc::pool_from(const GatheredInfo& info) {
  std::vector<AllocBroker> pool;
  pool.reserve(info.brokers.size());
  for (const BrokerInfo& b : info.brokers) {
    pool.push_back(AllocBroker{b.id, b.total_out_bw, b.delay});
  }
  return pool;
}

ReconfigurationReport Croc::reconfigure(const Simulation& sim, BrokerId entry) {
  GREENPS_SPAN("croc.reconfigure");
  const auto t0 = Clock::now();
  GatheredInfo info;
  {
    GREENPS_SPAN("croc.phase1.gather");
    // Crashed brokers answer nothing: Phase 1 times out on them (bounded
    // retry in the gatherer) and CROC plans from the brokers that answered.
    info = gather_information(sim.deployment().topology, entry, [&sim](BrokerId b) {
      return sim.broker_info_if_reachable(b);
    });
  }
  apply_quarantine(info);
  if (info.brokers.empty()) {
    ReconfigurationReport report;
    report.failure = FailureReason::kGatherFailed;
    report.gather = info.stats;
    report.phase1_seconds = seconds_since(t0);
    log::warn("phase 1 gathered no broker info (entry broker ", entry.value(),
              " unreachable?); reconfiguration aborted");
    return report;
  }
  splice_reserve(info);
  ReconfigurationReport report = plan_from_info(info);
  report.phase1_seconds = seconds_since(t0) - report.phase2_seconds -
                          report.phase3_seconds - report.grape_seconds;
  report.gather = info.stats;
  if (report.success) report.migration = migration_cost(sim.deployment(), report.plan);
  return report;
}

MigrationCost migration_cost(const Deployment& current, const ReconfigurationPlan& plan) {
  MigrationCost cost;
  cost.subscribers_total = current.subscribers.size();
  cost.publishers_total = current.publishers.size();
  // An empty plan (failed reconfiguration) moves nothing: without this
  // guard every client would count as "moved to the root" and every
  // current broker as decommissioned, for a plan that never ran.
  if (plan.overlay.brokers().empty()) return cost;
  for (const auto& s : current.subscribers) {
    const auto it = plan.subscriber_home.find(s.sub);
    const BrokerId target = it != plan.subscriber_home.end() ? it->second : plan.root;
    if (target != s.home) cost.subscribers_moved += 1;
  }
  for (const auto& p : current.publishers) {
    const auto it = plan.publisher_home.find(p.client);
    const BrokerId target = it != plan.publisher_home.end() ? it->second : plan.root;
    if (target != p.home) cost.publishers_moved += 1;
  }
  for (const BrokerId b : current.topology.brokers()) {
    if (!plan.overlay.has_broker(b)) cost.brokers_decommissioned += 1;
  }
  for (const BrokerId b : plan.overlay.brokers()) {
    if (!current.topology.has_broker(b)) cost.brokers_commissioned += 1;
  }
  return cost;
}

ReconfigurationReport Croc::plan_from_info(const GatheredInfo& info) {
  ReconfigurationReport report;
  Rng rng(config_.seed);
  const PublisherTable& table = info.publisher_table;
  std::vector<AllocBroker> pool = pool_from(info);
  if (pool.empty()) {
    // Nothing answered the BIR (total gather failure): there is no broker
    // to allocate onto, and the no-subscription fallback below would index
    // an empty pool.
    report.failure = FailureReason::kGatherFailed;
    log::warn("plan_from_info: gathered info names no brokers; nothing to plan");
    return report;
  }
  for (AllocBroker& b : pool) b.out_bw *= config_.capacity_headroom;
  std::vector<SubUnit> units = units_from(info);

  // ---- Phase 2 ----
  const auto t2 = Clock::now();
  GREENPS_INSTANT("croc.phase2.start");
  Allocation phase2;
  {
    GREENPS_SPAN_TAGGED("croc.phase2", static_cast<std::uint64_t>(config_.algorithm));
    switch (config_.algorithm) {
      case Phase2Algorithm::kFbf:
        phase2 = fbf_allocate(pool, units, table, rng);
        break;
      case Phase2Algorithm::kBinPacking:
        phase2 = bin_packing_allocate(pool, units, table);
        break;
      case Phase2Algorithm::kCram: {
        CramResult r = cram_allocate(pool, units, table, config_.cram);
        report.cram = r.stats;
        phase2 = std::move(r.allocation);
        break;
      }
      case Phase2Algorithm::kPairwiseK: {
        std::size_t k = config_.pairwise_k;
        if (k == 0) {
          CramOptions xor_opts = config_.cram;
          xor_opts.metric = ClosenessMetric::kXor;
          CramResult r = cram_allocate(pool, units, table, xor_opts);
          report.cram = r.stats;
          k = r.allocation.success ? r.allocation.unit_count() : pool.size();
        }
        phase2 = pairwise_k_allocate(pool, units, k, table, rng);
        break;
      }
      case Phase2Algorithm::kPairwiseN:
        phase2 = pairwise_n_allocate(pool, units, table, rng);
        break;
    }
  }
  report.phase2_seconds = seconds_since(t2);
  if (!phase2.success) {
    report.failure = FailureReason::kPhase2Insufficient;
    log::warn("phase 2 (", algorithm_name(config_.algorithm),
              ") failed: insufficient broker resources");
    return report;
  }
  report.cluster_count = phase2.unit_count();
  return finish_plan(info, std::move(pool), std::move(phase2), std::move(report), rng);
}

ReconfigurationReport Croc::finish_plan(const GatheredInfo& info,
                                        std::vector<AllocBroker> pool, Allocation phase2,
                                        ReconfigurationReport report, Rng& rng) {
  const PublisherTable& table = info.publisher_table;
  const bool pairwise = !report.incremental &&
                        (config_.algorithm == Phase2Algorithm::kPairwiseK ||
                         config_.algorithm == Phase2Algorithm::kPairwiseN);

  // ---- Phase 3 ----
  const auto t3 = Clock::now();
  // Phase 3 and GRAPE interleave with early returns, so their spans are
  // emitted explicitly at the points the report timers already stop.
  const std::uint64_t ph3_ts = obs::trace_now_us();
  ReconfigurationPlan plan;
  std::unordered_map<BrokerId, SubscriptionProfile> local_profiles;
  if (phase2.brokers.empty()) {
    // No subscriptions to serve: keep one broker (the most resourceful) so
    // publishers still have a home.
    sort_by_capacity_desc(pool);
    plan.overlay.add_broker(pool.front().id);
    plan.root = pool.front().id;
    plan.allocated_brokers = {plan.root};
    for (const PublisherRecord& p : info.publishers) {
      plan.publisher_home[p.client] = plan.root;
    }
    report.allocated_brokers = 1;
    report.plan = std::move(plan);
    report.success = true;
    return report;
  }
  if (pairwise) {
    // The pairwise derivatives build their overlay with the AUTOMATIC
    // approach: a random tree over the brokers that received clusters.
    std::vector<BrokerId> used;
    for (const BrokerLoad& b : phase2.brokers) used.push_back(b.broker().id);
    rng.shuffle(used);
    plan.overlay = build_random_tree(used, rng);
    plan.root = used.front();
    for (const BrokerLoad& b : phase2.brokers) {
      SubscriptionProfile agg;
      for (const SubUnit& u : b.units()) {
        for (const SubId s : u.members) plan.subscriber_home[s] = b.broker().id;
        agg.merge(u.profile);
      }
      local_profiles.emplace(b.broker().id, std::move(agg));
    }
  } else {
    AllocatorFn allocator;
    // Incremental sessions allocate with CRAM whatever config_.algorithm
    // says; the recursion must use the same allocator as Phase 2 did.
    switch (report.incremental ? Phase2Algorithm::kCram : config_.algorithm) {
      case Phase2Algorithm::kFbf:
        allocator = [&rng](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
                           const PublisherTable& t) { return fbf_allocate(p, u, t, rng); };
        break;
      case Phase2Algorithm::kBinPacking:
        allocator = [](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
                       const PublisherTable& t) { return bin_packing_allocate(p, u, t); };
        break;
      default:
        allocator = [this](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
                           const PublisherTable& t) {
          return cram_allocate(p, u, t, config_.cram).allocation;
        };
        break;
    }
    BuiltOverlay built = build_overlay(phase2, pool, table, allocator, config_.overlay);
    report.overlay = built.stats;
    plan.overlay = std::move(built.tree);
    plan.root = built.root;
    for (const auto& [broker, hosted] : built.hosted_units) {
      SubscriptionProfile agg;
      for (const SubUnit& u : hosted) {
        for (const SubId s : u.members) plan.subscriber_home[s] = broker;
        agg.merge(u.profile);
      }
      if (!hosted.empty()) local_profiles.emplace(broker, std::move(agg));
    }
  }
  plan.allocated_brokers = plan.overlay.brokers();
  plan.cluster_count = report.cluster_count;
  report.phase3_seconds = seconds_since(t3);
  obs::trace_complete("croc.phase3", ph3_ts, obs::trace_now_us());

  // ---- GRAPE ----
  const auto tg = Clock::now();
  const std::uint64_t grape_ts = obs::trace_now_us();
  if (pairwise || !config_.run_grape) {
    // AUTOMATIC-style random publisher placement for the pairwise
    // baselines; root placement when GRAPE is disabled.
    for (const PublisherRecord& p : info.publishers) {
      plan.publisher_home[p.client] =
          pairwise ? plan.allocated_brokers[rng.index(plan.allocated_brokers.size())]
                   : plan.root;
    }
  } else {
    std::vector<GrapePublisher> pubs;
    pubs.reserve(info.publishers.size());
    for (const PublisherRecord& p : info.publishers) {
      pubs.push_back(GrapePublisher{p.client, p.profile.adv});
    }
    const GrapePlacement placed = grape_place_publishers(plan.overlay, pubs, local_profiles,
                                                         table, config_.grape_mode);
    plan.publisher_home = placed.broker_for;
  }
  report.grape_seconds = seconds_since(tg);
  obs::trace_complete("croc.grape", grape_ts, obs::trace_now_us());

  report.allocated_brokers = plan.allocated_brokers.size();
  report.plan = std::move(plan);
  report.success = true;

  // Publish the plan's headline numbers to the metrics registry so run
  // reports can snapshot them without re-deriving from the report struct.
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("croc.phase2_seconds").set(report.phase2_seconds);
  reg.gauge("croc.phase3_seconds").set(report.phase3_seconds);
  reg.gauge("croc.grape_seconds").set(report.grape_seconds);
  reg.gauge("croc.cluster_count").set(static_cast<double>(report.cluster_count));
  reg.gauge("croc.allocated_brokers").set(static_cast<double>(report.allocated_brokers));
  return report;
}

// ---- incremental reconfiguration ----

struct Croc::Session {
  GatheredInfo info;              // latest gathered state; the BIA cache
  std::vector<AllocBroker> pool;  // headroom-scaled allocator pool
  std::unordered_set<SubId> live; // subscription ids currently in the session
  std::unique_ptr<IncrementalCram> cram;
};

Croc::Croc(CrocConfig config) : config_(config) {}
Croc::~Croc() = default;
Croc::Croc(Croc&&) noexcept = default;
Croc& Croc::operator=(Croc&&) noexcept = default;

const IncrementalCram* Croc::session_cram() const {
  return session_ != nullptr ? session_->cram.get() : nullptr;
}

void Croc::end_incremental() { session_.reset(); }

void Croc::set_reserve_brokers(std::vector<BrokerInfo> reserve) {
  std::sort(reserve.begin(), reserve.end(),
            [](const BrokerInfo& a, const BrokerInfo& b) { return a.id < b.id; });
  reserve_ = std::move(reserve);
}

void Croc::set_capacity_headroom(double headroom) {
  if (headroom == config_.capacity_headroom) return;
  config_.capacity_headroom = headroom;
  // The warm state converged on the previous headroom-scaled pool; a fresh
  // session bootstraps on the next reconfigure_incremental().
  if (session_ != nullptr) {
    obs::MetricsRegistry::global().counter("croc.incremental.session_resets").add(1);
    end_incremental();
  }
}

void Croc::set_quarantined_brokers(std::vector<BrokerId> brokers) {
  std::sort(brokers.begin(), brokers.end());
  brokers.erase(std::unique(brokers.begin(), brokers.end()), brokers.end());
  quarantine_ = std::move(brokers);
}

void Croc::apply_quarantine(GatheredInfo& info) const {
  if (quarantine_.empty()) return;
  std::erase_if(info.brokers, [this](const BrokerInfo& b) {
    return std::binary_search(quarantine_.begin(), quarantine_.end(), b.id);
  });
}

void Croc::splice_reserve(GatheredInfo& info) const {
  if (reserve_.empty()) return;
  std::unordered_set<BrokerId> live;
  live.reserve(info.brokers.size());
  for (const BrokerInfo& b : info.brokers) live.insert(b.id);
  for (const BrokerInfo& b : reserve_) {
    // reserve_ is sorted by id, so the spliced order — and every plan
    // derived from the pool — is deterministic. A quarantined broker must
    // not come back through the reserve: its entry covers the same id the
    // quarantine just removed from the gathered pool.
    if (live.contains(b.id)) continue;
    if (std::binary_search(quarantine_.begin(), quarantine_.end(), b.id)) continue;
    info.brokers.push_back(b);
  }
}

ReconfigurationReport Croc::begin_incremental(const GatheredInfo& info) {
  GREENPS_SPAN("croc.begin_incremental");
  end_incremental();
  ReconfigurationReport report;
  report.incremental = true;
  Rng rng(config_.seed);
  std::vector<AllocBroker> pool = pool_from(info);
  if (pool.empty()) {
    report.failure = FailureReason::kGatherFailed;
    log::warn("begin_incremental: gathered info names no brokers; nothing to plan");
    return report;
  }
  for (AllocBroker& b : pool) b.out_bw *= config_.capacity_headroom;

  auto session = std::make_unique<Session>();
  session->info = info;
  session->pool = pool;
  session->live.reserve(info.subscriptions.size());
  for (const SubscriptionRecord& rec : info.subscriptions) {
    session->live.insert(rec.info.id);
  }
  session->cram = std::make_unique<IncrementalCram>(
      std::move(pool), units_from(info), info.publisher_table, config_.cram);

  const auto t2 = Clock::now();
  GREENPS_INSTANT("croc.phase2.start");
  CramResult r = session->cram->initialize();
  report.cram = r.stats;
  report.phase2_seconds = seconds_since(t2);
  if (!r.allocation.success) {
    // No session survives a failed convergence: there is no feasible warm
    // state for later deltas to start from.
    report.failure = FailureReason::kPhase2Insufficient;
    log::warn("begin_incremental: CRAM failed: insufficient broker resources");
    return report;
  }
  report.cluster_count = r.allocation.unit_count();
  session_ = std::move(session);
  obs::MetricsRegistry::global().counter("croc.incremental.sessions").add(1);
  return finish_plan(session_->info, session_->pool, std::move(r.allocation),
                     std::move(report), rng);
}

ReconfigurationReport Croc::plan_incremental(const SubscriptionDelta& delta) {
  GREENPS_SPAN("croc.plan_incremental");
  ReconfigurationReport report;
  report.incremental = true;
  if (session_ == nullptr) {
    report.failure = FailureReason::kNoIncrementalSession;
    log::warn("plan_incremental called without a live session; "
              "run begin_incremental (or reconfigure_incremental) first");
    return report;
  }
  Session& s = *session_;

  const auto t2 = Clock::now();
  GREENPS_INSTANT("croc.phase2.start");
  std::vector<SubUnit> added;
  added.reserve(delta.added.size());
  for (const SubscriptionRecord& rec : delta.added) {
    added.push_back(make_subscription_unit(rec.info.id, rec.info.profile, s.cram->table()));
  }
  CramResult r = s.cram->apply(std::move(added), delta.removed);
  report.cram = r.stats;
  report.delta = s.cram->last_delta();
  report.phase2_seconds = seconds_since(t2);

  // Keep the session's subscription view in step with the delta. Insertion
  // is presence-checked so this stays idempotent under
  // reconfigure_incremental, which refreshes the view from the gather (new
  // arrivals already included) before planning.
  const std::unordered_set<SubId> removed_set(delta.removed.begin(), delta.removed.end());
  std::erase_if(s.info.subscriptions, [&](const SubscriptionRecord& rec) {
    return removed_set.contains(rec.info.id);
  });
  for (const SubId id : delta.removed) s.live.erase(id);
  std::unordered_set<SubId> present;
  present.reserve(s.info.subscriptions.size());
  for (const SubscriptionRecord& rec : s.info.subscriptions) present.insert(rec.info.id);
  for (const SubscriptionRecord& rec : delta.added) {
    s.live.insert(rec.info.id);
    if (present.insert(rec.info.id).second) s.info.subscriptions.push_back(rec);
  }

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("croc.incremental.plans").add(1);
  reg.counter("croc.incremental.subs_added").add(delta.added.size());
  reg.counter("croc.incremental.subs_removed").add(delta.removed.size());

  if (!r.allocation.success) {
    // The session stays live: its state is consistent, merely infeasible on
    // the current pool — a later removal-heavy delta can recover it.
    report.failure = FailureReason::kPhase2Insufficient;
    log::warn("plan_incremental: reconvergence failed: insufficient broker resources");
    return report;
  }
  report.cluster_count = r.allocation.unit_count();
  Rng rng(config_.seed);
  return finish_plan(s.info, s.pool, std::move(r.allocation), std::move(report), rng);
}

namespace {

// The warm CRAM state is keyed to the broker pool and publisher set it
// converged on; a change to either (broker joined/left/resized, publisher
// appeared/vanished) invalidates the packing and the unit rates wholesale.
bool structural_reset_needed(const GatheredInfo& prev, const GatheredInfo& now) {
  if (prev.brokers.size() != now.brokers.size()) return true;
  std::unordered_map<BrokerId, Bandwidth> caps;
  caps.reserve(prev.brokers.size());
  for (const BrokerInfo& b : prev.brokers) caps.emplace(b.id, b.total_out_bw);
  for (const BrokerInfo& b : now.brokers) {
    const auto it = caps.find(b.id);
    if (it == caps.end() || it->second != b.total_out_bw) return true;
  }
  if (prev.publisher_table.size() != now.publisher_table.size()) return true;
  for (const auto& [adv, prof] : now.publisher_table) {
    (void)prof;
    if (!prev.publisher_table.contains(adv)) return true;
  }
  return false;
}

}  // namespace

ReconfigurationReport Croc::reconfigure_incremental(const Simulation& sim, BrokerId entry) {
  GREENPS_SPAN("croc.reconfigure_incremental");
  const auto t0 = Clock::now();
  const auto provider = [&sim](BrokerId b) { return sim.broker_info_if_reachable(b); };

  const auto finalize = [&](ReconfigurationReport report, const GatherStats& gather) {
    report.gather = gather;
    report.phase1_seconds = seconds_since(t0) - report.phase2_seconds -
                            report.phase3_seconds - report.grape_seconds;
    if (report.success) report.migration = migration_cost(sim.deployment(), report.plan);
    return report;
  };
  const auto gather_failed = [&](GatherStats stats) {
    ReconfigurationReport report;
    report.incremental = true;
    report.failure = FailureReason::kGatherFailed;
    log::warn("incremental phase 1 gathered no broker info (entry broker ",
              entry.value(), " unreachable?); reconfiguration aborted");
    return finalize(std::move(report), stats);
  };
  const auto bootstrap = [&](GatheredInfo info) {
    apply_quarantine(info);
    if (info.brokers.empty()) return gather_failed(info.stats);
    splice_reserve(info);
    return finalize(begin_incremental(info), info.stats);
  };

  if (session_ == nullptr) {
    GREENPS_SPAN("croc.phase1.gather");
    return bootstrap(gather_information(sim.deployment().topology, entry, provider));
  }

  GatheredInfo info;
  {
    GREENPS_SPAN("croc.phase1.gather_incremental");
    info = gather_information_incremental(
        sim.deployment().topology, entry, session_->info,
        [&sim](BrokerId b) { return sim.broker_epoch_if_reachable(b); }, provider);
  }
  apply_quarantine(info);
  if (info.brokers.empty()) return gather_failed(info.stats);
  splice_reserve(info);
  if (structural_reset_needed(session_->info, info)) {
    obs::MetricsRegistry::global().counter("croc.incremental.session_resets").add(1);
    end_incremental();
    return bootstrap(std::move(info));
  }

  // The delta is the diff between what Phase 1 now reports and what the
  // session converged on.
  SubscriptionDelta delta;
  std::unordered_set<SubId> now_ids;
  now_ids.reserve(info.subscriptions.size());
  for (const SubscriptionRecord& rec : info.subscriptions) {
    now_ids.insert(rec.info.id);
    if (!session_->live.contains(rec.info.id)) delta.added.push_back(rec);
  }
  for (const SubId id : session_->live) {
    if (!now_ids.contains(id)) delta.removed.push_back(id);
  }
  // live is an unordered set; keep the delta (and so the reconvergence)
  // independent of its iteration order.
  std::sort(delta.removed.begin(), delta.removed.end());
  std::sort(delta.added.begin(), delta.added.end(),
            [](const SubscriptionRecord& a, const SubscriptionRecord& b) {
              return a.info.id < b.info.id;
            });

  const GatherStats gather = info.stats;
  session_->info = std::move(info);  // refresh the BIA cache for the next gather
  return finalize(plan_incremental(delta), gather);
}

}  // namespace greenps
