#include "croc/croc.hpp"

#include <chrono>

#include "alloc/bin_packing.hpp"
#include "alloc/fbf.hpp"
#include "baselines/pairwise.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay/topology_builder.hpp"

namespace greenps {

namespace {
using Clock = std::chrono::steady_clock;
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

const char* algorithm_name(Phase2Algorithm a) {
  switch (a) {
    case Phase2Algorithm::kFbf: return "FBF";
    case Phase2Algorithm::kBinPacking: return "BIN PACKING";
    case Phase2Algorithm::kCram: return "CRAM";
    case Phase2Algorithm::kPairwiseK: return "PAIRWISE-K";
    case Phase2Algorithm::kPairwiseN: return "PAIRWISE-N";
  }
  return "?";
}

std::vector<SubUnit> Croc::units_from(const GatheredInfo& info) {
  std::vector<SubUnit> units;
  units.reserve(info.subscriptions.size());
  for (const SubscriptionRecord& rec : info.subscriptions) {
    units.push_back(
        make_subscription_unit(rec.info.id, rec.info.profile, info.publisher_table));
  }
  return units;
}

std::vector<AllocBroker> Croc::pool_from(const GatheredInfo& info) {
  std::vector<AllocBroker> pool;
  pool.reserve(info.brokers.size());
  for (const BrokerInfo& b : info.brokers) {
    pool.push_back(AllocBroker{b.id, b.total_out_bw, b.delay});
  }
  return pool;
}

ReconfigurationReport Croc::reconfigure(const Simulation& sim, BrokerId entry) {
  GREENPS_SPAN("croc.reconfigure");
  const auto t0 = Clock::now();
  GatheredInfo info;
  {
    GREENPS_SPAN("croc.phase1.gather");
    // Crashed brokers answer nothing: Phase 1 times out on them (bounded
    // retry in the gatherer) and CROC plans from the brokers that answered.
    info = gather_information(sim.deployment().topology, entry, [&sim](BrokerId b) {
      return sim.broker_info_if_reachable(b);
    });
  }
  if (info.brokers.empty()) {
    ReconfigurationReport report;
    report.failure = FailureReason::kGatherFailed;
    report.gather = info.stats;
    report.phase1_seconds = seconds_since(t0);
    log::warn("phase 1 gathered no broker info (entry broker ", entry.value(),
              " unreachable?); reconfiguration aborted");
    return report;
  }
  ReconfigurationReport report = plan_from_info(info);
  report.phase1_seconds = seconds_since(t0) - report.phase2_seconds -
                          report.phase3_seconds - report.grape_seconds;
  report.gather = info.stats;
  if (report.success) report.migration = migration_cost(sim.deployment(), report.plan);
  return report;
}

MigrationCost migration_cost(const Deployment& current, const ReconfigurationPlan& plan) {
  MigrationCost cost;
  cost.subscribers_total = current.subscribers.size();
  cost.publishers_total = current.publishers.size();
  // An empty plan (failed reconfiguration) moves nothing: without this
  // guard every client would count as "moved to the root" and every
  // current broker as decommissioned, for a plan that never ran.
  if (plan.overlay.brokers().empty()) return cost;
  for (const auto& s : current.subscribers) {
    const auto it = plan.subscriber_home.find(s.sub);
    const BrokerId target = it != plan.subscriber_home.end() ? it->second : plan.root;
    if (target != s.home) cost.subscribers_moved += 1;
  }
  for (const auto& p : current.publishers) {
    const auto it = plan.publisher_home.find(p.client);
    const BrokerId target = it != plan.publisher_home.end() ? it->second : plan.root;
    if (target != p.home) cost.publishers_moved += 1;
  }
  for (const BrokerId b : current.topology.brokers()) {
    if (!plan.overlay.has_broker(b)) cost.brokers_decommissioned += 1;
  }
  for (const BrokerId b : plan.overlay.brokers()) {
    if (!current.topology.has_broker(b)) cost.brokers_commissioned += 1;
  }
  return cost;
}

ReconfigurationReport Croc::plan_from_info(const GatheredInfo& info) {
  ReconfigurationReport report;
  Rng rng(config_.seed);
  const PublisherTable& table = info.publisher_table;
  std::vector<AllocBroker> pool = pool_from(info);
  if (pool.empty()) {
    // Nothing answered the BIR (total gather failure): there is no broker
    // to allocate onto, and the no-subscription fallback below would index
    // an empty pool.
    report.failure = FailureReason::kGatherFailed;
    log::warn("plan_from_info: gathered info names no brokers; nothing to plan");
    return report;
  }
  for (AllocBroker& b : pool) b.out_bw *= config_.capacity_headroom;
  std::vector<SubUnit> units = units_from(info);

  // ---- Phase 2 ----
  const auto t2 = Clock::now();
  GREENPS_INSTANT("croc.phase2.start");
  Allocation phase2;
  const bool pairwise = config_.algorithm == Phase2Algorithm::kPairwiseK ||
                        config_.algorithm == Phase2Algorithm::kPairwiseN;
  {
    GREENPS_SPAN_TAGGED("croc.phase2", static_cast<std::uint64_t>(config_.algorithm));
    switch (config_.algorithm) {
      case Phase2Algorithm::kFbf:
        phase2 = fbf_allocate(pool, units, table, rng);
        break;
      case Phase2Algorithm::kBinPacking:
        phase2 = bin_packing_allocate(pool, units, table);
        break;
      case Phase2Algorithm::kCram: {
        CramResult r = cram_allocate(pool, units, table, config_.cram);
        report.cram = r.stats;
        phase2 = std::move(r.allocation);
        break;
      }
      case Phase2Algorithm::kPairwiseK: {
        std::size_t k = config_.pairwise_k;
        if (k == 0) {
          CramOptions xor_opts = config_.cram;
          xor_opts.metric = ClosenessMetric::kXor;
          CramResult r = cram_allocate(pool, units, table, xor_opts);
          report.cram = r.stats;
          k = r.allocation.success ? r.allocation.unit_count() : pool.size();
        }
        phase2 = pairwise_k_allocate(pool, units, k, table, rng);
        break;
      }
      case Phase2Algorithm::kPairwiseN:
        phase2 = pairwise_n_allocate(pool, units, table, rng);
        break;
    }
  }
  report.phase2_seconds = seconds_since(t2);
  if (!phase2.success) {
    report.failure = FailureReason::kPhase2Insufficient;
    log::warn("phase 2 (", algorithm_name(config_.algorithm),
              ") failed: insufficient broker resources");
    return report;
  }
  report.cluster_count = phase2.unit_count();

  // ---- Phase 3 ----
  const auto t3 = Clock::now();
  // Phase 3 and GRAPE interleave with early returns, so their spans are
  // emitted explicitly at the points the report timers already stop.
  const std::uint64_t ph3_ts = obs::trace_now_us();
  ReconfigurationPlan plan;
  std::unordered_map<BrokerId, SubscriptionProfile> local_profiles;
  if (phase2.brokers.empty()) {
    // No subscriptions to serve: keep one broker (the most resourceful) so
    // publishers still have a home.
    sort_by_capacity_desc(pool);
    plan.overlay.add_broker(pool.front().id);
    plan.root = pool.front().id;
    plan.allocated_brokers = {plan.root};
    for (const PublisherRecord& p : info.publishers) {
      plan.publisher_home[p.client] = plan.root;
    }
    report.allocated_brokers = 1;
    report.plan = std::move(plan);
    report.success = true;
    return report;
  }
  if (pairwise) {
    // The pairwise derivatives build their overlay with the AUTOMATIC
    // approach: a random tree over the brokers that received clusters.
    std::vector<BrokerId> used;
    for (const BrokerLoad& b : phase2.brokers) used.push_back(b.broker().id);
    rng.shuffle(used);
    plan.overlay = build_random_tree(used, rng);
    plan.root = used.front();
    for (const BrokerLoad& b : phase2.brokers) {
      SubscriptionProfile agg;
      for (const SubUnit& u : b.units()) {
        for (const SubId s : u.members) plan.subscriber_home[s] = b.broker().id;
        agg.merge(u.profile);
      }
      local_profiles.emplace(b.broker().id, std::move(agg));
    }
  } else {
    AllocatorFn allocator;
    switch (config_.algorithm) {
      case Phase2Algorithm::kFbf:
        allocator = [&rng](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
                           const PublisherTable& t) { return fbf_allocate(p, u, t, rng); };
        break;
      case Phase2Algorithm::kBinPacking:
        allocator = [](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
                       const PublisherTable& t) { return bin_packing_allocate(p, u, t); };
        break;
      default:
        allocator = [this](const std::vector<AllocBroker>& p, const std::vector<SubUnit>& u,
                           const PublisherTable& t) {
          return cram_allocate(p, u, t, config_.cram).allocation;
        };
        break;
    }
    BuiltOverlay built = build_overlay(phase2, pool, table, allocator, config_.overlay);
    report.overlay = built.stats;
    plan.overlay = std::move(built.tree);
    plan.root = built.root;
    for (const auto& [broker, hosted] : built.hosted_units) {
      SubscriptionProfile agg;
      for (const SubUnit& u : hosted) {
        for (const SubId s : u.members) plan.subscriber_home[s] = broker;
        agg.merge(u.profile);
      }
      if (!hosted.empty()) local_profiles.emplace(broker, std::move(agg));
    }
  }
  plan.allocated_brokers = plan.overlay.brokers();
  plan.cluster_count = report.cluster_count;
  report.phase3_seconds = seconds_since(t3);
  obs::trace_complete("croc.phase3", ph3_ts, obs::trace_now_us());

  // ---- GRAPE ----
  const auto tg = Clock::now();
  const std::uint64_t grape_ts = obs::trace_now_us();
  if (pairwise || !config_.run_grape) {
    // AUTOMATIC-style random publisher placement for the pairwise
    // baselines; root placement when GRAPE is disabled.
    for (const PublisherRecord& p : info.publishers) {
      plan.publisher_home[p.client] =
          pairwise ? plan.allocated_brokers[rng.index(plan.allocated_brokers.size())]
                   : plan.root;
    }
  } else {
    std::vector<GrapePublisher> pubs;
    pubs.reserve(info.publishers.size());
    for (const PublisherRecord& p : info.publishers) {
      pubs.push_back(GrapePublisher{p.client, p.profile.adv});
    }
    const GrapePlacement placed = grape_place_publishers(plan.overlay, pubs, local_profiles,
                                                         table, config_.grape_mode);
    plan.publisher_home = placed.broker_for;
  }
  report.grape_seconds = seconds_since(tg);
  obs::trace_complete("croc.grape", grape_ts, obs::trace_now_us());

  report.allocated_brokers = plan.allocated_brokers.size();
  report.plan = std::move(plan);
  report.success = true;

  // Publish the plan's headline numbers to the metrics registry so run
  // reports can snapshot them without re-deriving from the report struct.
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("croc.phase2_seconds").set(report.phase2_seconds);
  reg.gauge("croc.phase3_seconds").set(report.phase3_seconds);
  reg.gauge("croc.grape_seconds").set(report.grape_seconds);
  reg.gauge("croc.cluster_count").set(static_cast<double>(report.cluster_count));
  reg.gauge("croc.allocated_brokers").set(static_cast<double>(report.allocated_brokers));
  return report;
}

}  // namespace greenps
