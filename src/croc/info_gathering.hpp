// Phase 1: information gathering over the live overlay.
//
// Implements the BIR/BIA protocol of Section III-A as an explicit
// message-passing traversal: the BIR is broadcast, leaves answer
// immediately, and interior brokers answer only after every neighbor they
// forwarded the BIR to has answered — aggregating the received BIAs with
// their own info into one message (the paper's overhead reduction).
#pragma once

#include <functional>

#include "croc/messages.hpp"
#include "overlay/topology.hpp"
#include "profile/publisher_profile.hpp"

namespace greenps {

struct GatherStats {
  std::size_t bir_messages = 0;  // one per overlay link traversed (+ entry)
  std::size_t bia_messages = 0;  // one per link, aggregated
  std::size_t brokers_answered = 0;
};

struct GatheredInfo {
  std::vector<BrokerInfo> brokers;
  std::vector<SubscriptionRecord> subscriptions;
  std::vector<PublisherRecord> publishers;
  PublisherTable publisher_table;
  GatherStats stats;
};

// `provider` plays the role of each broker's CBC answering the BIR.
using BrokerInfoProvider = std::function<BrokerInfo(BrokerId)>;

// Runs the protocol starting at `entry`. The overlay must be connected;
// cycles are tolerated (a broker answers its first BIR and ignores others,
// as the dedup rule implies).
[[nodiscard]] GatheredInfo gather_information(const Topology& overlay, BrokerId entry,
                                              const BrokerInfoProvider& provider);

}  // namespace greenps
