// Phase 1: information gathering over the live overlay.
//
// Implements the BIR/BIA protocol of Section III-A as an explicit
// message-passing traversal: the BIR is broadcast, leaves answer
// immediately, and interior brokers answer only after every neighbor they
// forwarded the BIR to has answered — aggregating the received BIAs with
// their own info into one message (the paper's overhead reduction).
#pragma once

#include <functional>
#include <optional>

#include "croc/messages.hpp"
#include "overlay/topology.hpp"
#include "profile/publisher_profile.hpp"

namespace greenps {

struct GatherStats {
  std::size_t bir_messages = 0;  // one per overlay link traversed (+ entry)
  std::size_t bia_messages = 0;  // one per link, aggregated
  std::size_t brokers_answered = 0;
  std::size_t unreachable_brokers = 0;  // every attempt timed out
  std::size_t retries = 0;              // BIRs re-sent after a timeout
  double backoff_s = 0;                 // simulated time spent waiting on timeouts
  // Incremental (epoch-based) gathers only:
  std::size_t epoch_probes = 0;    // cheap epoch queries sent before full BIAs
  std::size_t brokers_reused = 0;  // cached BIAs reused (epoch unchanged)
};

struct GatheredInfo {
  std::vector<BrokerInfo> brokers;
  std::vector<SubscriptionRecord> subscriptions;
  std::vector<PublisherRecord> publishers;
  PublisherTable publisher_table;
  GatherStats stats;
};

// `provider` plays the role of each broker's CBC answering the BIR; nullopt
// models a timeout (the broker is down or unreachable). Lambdas returning a
// plain BrokerInfo still convert — infallible providers need no change.
using BrokerInfoProvider = std::function<std::optional<BrokerInfo>(BrokerId)>;

// Per-broker timeout/retry policy for a gather over a degraded overlay.
struct GatherOptions {
  // Total query attempts per broker (1 first try + bounded retries).
  std::size_t attempts_per_broker = 3;
  // Simulated wait after the first timeout; doubles on each further retry.
  double retry_backoff_s = 0.05;
};

// Runs the protocol starting at `entry`. The overlay must be connected;
// cycles are tolerated (a broker answers its first BIR and ignores others,
// as the dedup rule implies). Brokers whose every attempt times out are
// skipped (counted in stats.unreachable_brokers) and the traversal routes
// around them — CROC knows the overlay, so the rest of the tree still
// answers. An unreachable *entry* broker aborts the gather with an empty
// result: there is nowhere to inject the BIR.
[[nodiscard]] GatheredInfo gather_information(const Topology& overlay, BrokerId entry,
                                              const BrokerInfoProvider& provider,
                                              const GatherOptions& options = {});

// Cheap per-broker probe for the structural profile epoch (typically
// Simulation::broker_epoch_if_reachable); nullopt models a timeout.
using BrokerEpochProbe = std::function<std::optional<std::uint64_t>(BrokerId)>;

// Epoch-based incremental gather: the same BIR/BIA traversal, but each
// broker with a cached BIA in `previous` is first sent an epoch probe —
// when the answered epoch matches the cached snapshot's, the cached payload
// is reused without re-transferring the full BIA (stats.brokers_reused).
// Brokers whose epoch moved, whose probe timed out, or that are new since
// `previous` are queried in full under the usual retry policy, so the
// result is exactly what gather_information would return on the live
// overlay — only the per-broker transfer cost changes.
[[nodiscard]] GatheredInfo gather_information_incremental(
    const Topology& overlay, BrokerId entry, const GatheredInfo& previous,
    const BrokerEpochProbe& epoch_probe, const BrokerInfoProvider& provider,
    const GatherOptions& options = {});

}  // namespace greenps
