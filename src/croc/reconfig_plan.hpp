// The outcome of Phases 2-3 + GRAPE: where every broker, subscriber and
// publisher should go. Applying a plan to the running deployment yields the
// new deployment ("the results of the reassignment is in the form of
// publications directed to each broker controlling where publishers and
// subscribers should migrate, and which neighbors brokers should connect
// with", Section III-A).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "overlay/topology.hpp"
#include "sim/simulation.hpp"

namespace greenps {

struct ReconfigurationPlan {
  Topology overlay;
  BrokerId root;
  std::vector<BrokerId> allocated_brokers;
  std::unordered_map<SubId, BrokerId> subscriber_home;
  std::unordered_map<ClientId, BrokerId> publisher_home;
  std::size_t cluster_count = 0;
};

// Why a reconfiguration (planning or applying) did not produce a new
// deployment. Shared by ReconfigurationReport and ApplyResult.
enum class FailureReason {
  kNone,
  kGatherFailed,         // Phase 1 collected no broker info (entry down?)
  kPhase2Insufficient,   // allocation failed: not enough broker resources
  kPlanInvalid,          // plan inconsistent with the current deployment
  kBrokerUnreachable,    // a target broker died mid-apply; rolled back
  kNoIncrementalSession, // plan_incremental called without begin_incremental
};

[[nodiscard]] const char* failure_reason_name(FailureReason r);

// Liveness probe consulted before each apply step touches a broker
// (typically Simulation::broker_alive). Empty probe = assume healthy.
using BrokerHealthProbe = std::function<bool(BrokerId)>;

struct ApplyResult {
  bool success = false;
  FailureReason reason = FailureReason::kNone;
  std::string detail;              // human-readable failure description
  std::size_t steps_applied = 0;   // commission/attach steps completed
  std::size_t steps_total = 0;
  // The deployment to run next: the plan's on success, the *old* one on
  // failure (rollback — a failed apply never leaves a half-migrated state).
  Deployment deployment;
};

// Transactional apply: validate the plan against the current deployment
// (every plan broker has a capacity entry, the overlay is a tree containing
// the root, every client target is in the overlay), then stage it step by
// step — commission brokers, attach publishers, attach subscribers —
// probing each target broker's health before touching it. Any validation
// error or mid-apply crash rolls back to `old_deployment`.
[[nodiscard]] ApplyResult apply_plan_transactional(const Deployment& old_deployment,
                                                   const ReconfigurationPlan& plan,
                                                   const BrokerHealthProbe& probe = {});

// Build the new deployment: the plan's overlay and client placements with
// the old deployment's broker capacities and client/workload identities.
// Clients without an explicit placement attach to the root. Thin wrapper
// over apply_plan_transactional (no probe) that asserts success — callers
// that can face an invalid plan or dying brokers should use the
// transactional form and inspect ApplyResult.
[[nodiscard]] Deployment apply_plan(const Deployment& old_deployment,
                                    const ReconfigurationPlan& plan);

}  // namespace greenps
