// The outcome of Phases 2-3 + GRAPE: where every broker, subscriber and
// publisher should go. Applying a plan to the running deployment yields the
// new deployment ("the results of the reassignment is in the form of
// publications directed to each broker controlling where publishers and
// subscribers should migrate, and which neighbors brokers should connect
// with", Section III-A).
#pragma once

#include <unordered_map>
#include <vector>

#include "overlay/topology.hpp"
#include "sim/simulation.hpp"

namespace greenps {

struct ReconfigurationPlan {
  Topology overlay;
  BrokerId root;
  std::vector<BrokerId> allocated_brokers;
  std::unordered_map<SubId, BrokerId> subscriber_home;
  std::unordered_map<ClientId, BrokerId> publisher_home;
  std::size_t cluster_count = 0;
};

// Build the new deployment: the plan's overlay and client placements with
// the old deployment's broker capacities and client/workload identities.
// Clients without an explicit placement attach to the root.
[[nodiscard]] Deployment apply_plan(const Deployment& old_deployment,
                                    const ReconfigurationPlan& plan);

}  // namespace greenps
