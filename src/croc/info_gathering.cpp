#include "croc/info_gathering.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace greenps {

namespace {

// Query one broker with bounded retry + exponential backoff. Each retry
// models a re-sent BIR after a timeout; the backoff accumulates into the
// stats as simulated waiting time.
std::optional<BrokerInfo> query_with_retry(BrokerId b, const BrokerInfoProvider& provider,
                                           const GatherOptions& options,
                                           GatherStats& stats) {
  const std::size_t attempts = std::max<std::size_t>(options.attempts_per_broker, 1);
  double backoff = options.retry_backoff_s;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      stats.retries += 1;
      stats.backoff_s += backoff;
      backoff *= 2;
    }
    if (std::optional<BrokerInfo> info = provider(b)) return info;
  }
  return std::nullopt;
}

// Recursive subtree gather: broker `b` received a BIR from `parent`
// (or from CROC when parent == b). Returns the aggregated BIA of b's
// subtree and accounts protocol messages. An unreachable broker is skipped
// but its subtree is still gathered: CROC knows the overlay and reroutes
// the BIR around the hole.
BrokerInformationAnswer gather_subtree(const Topology& overlay, BrokerId b, BrokerId parent,
                                       const BrokerInfoProvider& provider,
                                       const GatherOptions& options,
                                       std::unordered_set<BrokerId>& visited,
                                       GatherStats& stats) {
  visited.insert(b);
  BrokerInformationAnswer answer;
  // Query b up front so an unreachable entry can abort before any fan-out;
  // its info is still appended *after* the children reply, preserving the
  // protocol's aggregation order.
  std::optional<BrokerInfo> self = query_with_retry(b, provider, options, stats);
  if (!self.has_value()) {
    stats.unreachable_brokers += 1;
    if (b == parent) return answer;  // unreachable entry: nowhere to inject the BIR
  }
  // Broadcast the BIR to all (unvisited) neighbors, then wait for their BIAs.
  for (const BrokerId n : overlay.neighbors(b)) {
    if (n == parent || visited.contains(n)) continue;
    stats.bir_messages += 1;
    BrokerInformationAnswer child =
        gather_subtree(overlay, n, b, provider, options, visited, stats);
    stats.bia_messages += 1;  // the child's aggregated BIA crosses one link
    answer.infos.insert(answer.infos.end(),
                        std::make_move_iterator(child.infos.begin()),
                        std::make_move_iterator(child.infos.end()));
  }
  // Only now (no unanswered neighbors left) does b add its own info and
  // reply.
  if (self.has_value()) {
    answer.infos.push_back(std::move(*self));
    stats.brokers_answered += 1;
  }
  return answer;
}

// Shared tail of both gather flavors: derive the flat subscription /
// publisher / table views from the collected BIAs and publish the stats.
void finalize_gather(GatheredInfo& out) {
  for (const BrokerInfo& info : out.brokers) {
    for (const LocalSubscriptionInfo& s : info.subscriptions) {
      out.subscriptions.push_back(SubscriptionRecord{info.id, s});
    }
    for (const LocalPublisherInfo& p : info.publishers) {
      out.publishers.push_back(PublisherRecord{info.id, p.client, p.profile});
      out.publisher_table[p.profile.adv] = p.profile;
    }
  }

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("croc.bir_messages").add(out.stats.bir_messages);
  reg.counter("croc.bia_messages").add(out.stats.bia_messages);
  reg.counter("croc.brokers_answered").add(out.stats.brokers_answered);
  if (out.stats.unreachable_brokers > 0) {
    reg.counter("croc.gather_unreachable").add(out.stats.unreachable_brokers);
    reg.counter("croc.gather_retries").add(out.stats.retries);
  }
  if (out.stats.epoch_probes > 0) {
    reg.counter("croc.gather_epoch_probes").add(out.stats.epoch_probes);
    reg.counter("croc.gather_brokers_reused").add(out.stats.brokers_reused);
  }
  GREENPS_COUNTER("croc.gather.brokers_answered", out.stats.brokers_answered);
}

}  // namespace

GatheredInfo gather_information(const Topology& overlay, BrokerId entry,
                                const BrokerInfoProvider& provider,
                                const GatherOptions& options) {
  assert(overlay.has_broker(entry));
  GatheredInfo out;
  std::unordered_set<BrokerId> visited;
  out.stats.bir_messages += 1;  // CROC -> entry broker
  BrokerInformationAnswer root =
      gather_subtree(overlay, entry, entry, provider, options, visited, out.stats);
  out.stats.bia_messages += 1;  // entry broker -> CROC (or its timeout)
  out.brokers = std::move(root.infos);
  finalize_gather(out);
  return out;
}

GatheredInfo gather_information_incremental(const Topology& overlay, BrokerId entry,
                                            const GatheredInfo& previous,
                                            const BrokerEpochProbe& epoch_probe,
                                            const BrokerInfoProvider& provider,
                                            const GatherOptions& options) {
  assert(overlay.has_broker(entry));
  std::unordered_map<BrokerId, const BrokerInfo*> cache;
  cache.reserve(previous.brokers.size());
  for (const BrokerInfo& b : previous.brokers) cache.emplace(b.id, &b);

  // The traversal, retries and unreachable accounting are untouched — the
  // epoch check simply wraps the provider: a cached broker answers its
  // epoch first, and an unchanged epoch stands in for the full BIA.
  GatheredInfo out;
  std::size_t epoch_probes = 0;
  std::size_t brokers_reused = 0;
  const BrokerInfoProvider cached_provider =
      [&](BrokerId b) -> std::optional<BrokerInfo> {
    const auto hit = cache.find(b);
    if (hit != cache.end()) {
      ++epoch_probes;
      if (const std::optional<std::uint64_t> e = epoch_probe(b);
          e.has_value() && *e == hit->second->epoch) {
        ++brokers_reused;
        return *hit->second;
      }
      // Epoch moved (or the probe timed out): fall through to a full query.
    }
    return provider(b);
  };

  std::unordered_set<BrokerId> visited;
  out.stats.bir_messages += 1;  // CROC -> entry broker
  BrokerInformationAnswer root =
      gather_subtree(overlay, entry, entry, cached_provider, options, visited, out.stats);
  out.stats.bia_messages += 1;  // entry broker -> CROC (or its timeout)
  out.brokers = std::move(root.infos);
  out.stats.epoch_probes = epoch_probes;
  out.stats.brokers_reused = brokers_reused;
  finalize_gather(out);
  return out;
}

}  // namespace greenps
