#include "croc/info_gathering.hpp"

#include <cassert>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace greenps {

namespace {

// Recursive subtree gather: broker `b` received a BIR from `parent`
// (or from CROC when parent == b). Returns the aggregated BIA of b's
// subtree and accounts protocol messages.
BrokerInformationAnswer gather_subtree(const Topology& overlay, BrokerId b, BrokerId parent,
                                       const BrokerInfoProvider& provider,
                                       std::unordered_set<BrokerId>& visited,
                                       GatherStats& stats) {
  visited.insert(b);
  BrokerInformationAnswer answer;
  // Broadcast the BIR to all (unvisited) neighbors, then wait for their BIAs.
  for (const BrokerId n : overlay.neighbors(b)) {
    if (n == parent || visited.contains(n)) continue;
    stats.bir_messages += 1;
    BrokerInformationAnswer child = gather_subtree(overlay, n, b, provider, visited, stats);
    stats.bia_messages += 1;  // the child's aggregated BIA crosses one link
    answer.infos.insert(answer.infos.end(),
                        std::make_move_iterator(child.infos.begin()),
                        std::make_move_iterator(child.infos.end()));
  }
  // Only now (no unanswered neighbors left) does b add its own info and
  // reply.
  answer.infos.push_back(provider(b));
  stats.brokers_answered += 1;
  return answer;
}

}  // namespace

GatheredInfo gather_information(const Topology& overlay, BrokerId entry,
                                const BrokerInfoProvider& provider) {
  assert(overlay.has_broker(entry));
  GatheredInfo out;
  std::unordered_set<BrokerId> visited;
  out.stats.bir_messages += 1;  // CROC -> entry broker
  BrokerInformationAnswer root =
      gather_subtree(overlay, entry, entry, provider, visited, out.stats);
  out.stats.bia_messages += 1;  // entry broker -> CROC
  out.brokers = std::move(root.infos);

  for (const BrokerInfo& info : out.brokers) {
    for (const LocalSubscriptionInfo& s : info.subscriptions) {
      out.subscriptions.push_back(SubscriptionRecord{info.id, s});
    }
    for (const LocalPublisherInfo& p : info.publishers) {
      out.publishers.push_back(PublisherRecord{info.id, p.client, p.profile});
      out.publisher_table[p.profile.adv] = p.profile;
    }
  }

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("croc.bir_messages").add(out.stats.bir_messages);
  reg.counter("croc.bia_messages").add(out.stats.bia_messages);
  reg.counter("croc.brokers_answered").add(out.stats.brokers_answered);
  GREENPS_COUNTER("croc.gather.brokers_answered", out.stats.brokers_answered);
  return out;
}

}  // namespace greenps
