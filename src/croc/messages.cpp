#include "croc/messages.hpp"

// Message structs are header-only; translation unit anchors the target.
