// Differential oracle for incremental reconfiguration.
//
// An incremental reconvergence is allowed to be *bounded-worse* than a
// from-scratch run on the same post-delta population: neighborhoods the
// delta never dirtied are not re-searched, so a clustering opportunity the
// new packing would admit can go unnoticed — but nothing else may differ.
// The oracle re-runs CRAM from scratch on the session's live subscriptions
// (same pool, same table, same options) and checks:
//
//   1. success agreement — both allocate or both fail;
//   2. member conservation — every live subscription appears in the
//      incremental allocation exactly once, and nothing else does;
//   3. objective bound — union-rate objective (Allocation::total_in_rate,
//      the traffic entering the broker tier) within a configurable relative
//      epsilon of the from-scratch result;
//   4. broker bound — at most `broker_slack` more brokers than from-scratch.
#pragma once

#include <cstddef>
#include <string>

#include "alloc/cram_incremental.hpp"

namespace greenps {

struct DiffOracleOptions {
  // Relative slack on the union-rate objective: incremental may cost up to
  // scratch * (1 + objective_epsilon). 0 demands an identical-or-better
  // objective (floating-point exact, since both sides sum the same rates).
  double objective_epsilon = 0.05;
  // Brokers the incremental allocation may use beyond the from-scratch one.
  std::size_t broker_slack = 0;
};

struct DiffOracleResult {
  bool ok = false;  // all checks below passed
  bool success_agrees = false;
  bool members_conserved = false;
  bool objective_bounded = false;
  bool brokers_bounded = false;
  double incremental_objective = 0;  // total_in_rate
  double scratch_objective = 0;
  std::size_t incremental_brokers = 0;
  std::size_t scratch_brokers = 0;
  // Comparison counts of the oracle's from-scratch run — the denominator of
  // the incremental speedup claim.
  CramStats scratch_stats;
  std::string detail;  // first violated check, human-readable; empty when ok
};

// Verify `incremental` (the allocation the session just produced) against a
// from-scratch cram_allocate on session.current_original_units(). The
// scratch run is pure — the session is not touched.
[[nodiscard]] DiffOracleResult diff_against_scratch(const IncrementalCram& session,
                                                    const Allocation& incremental,
                                                    const DiffOracleOptions& options = {});

}  // namespace greenps
