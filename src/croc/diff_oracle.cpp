#include "croc/diff_oracle.hpp"

#include <sstream>
#include <unordered_set>

#include "obs/metrics.hpp"

namespace greenps {

DiffOracleResult diff_against_scratch(const IncrementalCram& session,
                                      const Allocation& incremental,
                                      const DiffOracleOptions& options) {
  DiffOracleResult res;
  const std::vector<SubUnit> live = session.current_original_units();
  const CramResult scratch =
      cram_allocate(session.pool(), live, session.table(), session.options());
  res.scratch_stats = scratch.stats;

  std::ostringstream detail;

  res.success_agrees = incremental.success == scratch.allocation.success;
  if (!res.success_agrees) {
    detail << "success mismatch: incremental="
           << (incremental.success ? "ok" : "failed")
           << " scratch=" << (scratch.allocation.success ? "ok" : "failed");
  }

  // Member conservation: the incremental allocation must serve exactly the
  // live subscription set, each id once.
  std::unordered_set<SubId> expected;
  expected.reserve(live.size());
  for (const SubUnit& u : live) expected.insert(u.members.front());
  std::unordered_set<SubId> seen;
  seen.reserve(expected.size());
  res.members_conserved = true;
  for (const BrokerLoad& b : incremental.brokers) {
    for (const SubUnit& u : b.units()) {
      for (const SubId m : u.members) {
        if (!expected.contains(m)) {
          res.members_conserved = false;
          if (detail.str().empty()) {
            detail << "member " << m.value() << " allocated but not live";
          }
        } else if (!seen.insert(m).second) {
          res.members_conserved = false;
          if (detail.str().empty()) {
            detail << "member " << m.value() << " allocated twice";
          }
        }
      }
    }
  }
  if (incremental.success && seen.size() != expected.size()) {
    res.members_conserved = false;
    if (detail.str().empty()) {
      detail << "allocated members " << seen.size() << " != live " << expected.size();
    }
  }

  res.incremental_objective = incremental.total_in_rate();
  res.scratch_objective = scratch.allocation.total_in_rate();
  res.incremental_brokers = incremental.brokers_used();
  res.scratch_brokers = scratch.allocation.brokers_used();

  if (incremental.success && scratch.allocation.success) {
    res.objective_bounded = res.incremental_objective <=
                            res.scratch_objective * (1.0 + options.objective_epsilon);
    if (!res.objective_bounded && detail.str().empty()) {
      detail << "objective " << res.incremental_objective << " exceeds scratch "
             << res.scratch_objective << " * (1 + " << options.objective_epsilon << ")";
    }
    res.brokers_bounded =
        res.incremental_brokers <= res.scratch_brokers + options.broker_slack;
    if (!res.brokers_bounded && detail.str().empty()) {
      detail << "brokers " << res.incremental_brokers << " exceed scratch "
             << res.scratch_brokers << " + " << options.broker_slack;
    }
  } else {
    // Nothing to bound when either side failed; success agreement (and, on
    // the incremental side, conservation) already carry the verdict.
    res.objective_bounded = true;
    res.brokers_bounded = true;
  }

  res.ok = res.success_agrees && res.members_conserved && res.objective_bounded &&
           res.brokers_bounded;
  res.detail = detail.str();

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("croc.incremental.oracle_runs").add(1);
  if (!res.ok) reg.counter("croc.incremental.oracle_failures").add(1);
  return res;
}

}  // namespace greenps
