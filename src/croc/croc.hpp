// CROC — Coordinator for Reconfiguring the Overlay and Clients.
//
// The external publish/subscribe client of Section III: connects to one
// broker, runs Phase 1 (BIR/BIA gathering), Phase 2 (subscription
// allocation), Phase 3 (recursive overlay construction) and GRAPE, and
// emits a ReconfigurationPlan the deployment can apply.
#pragma once

#include <cstdint>
#include <memory>

#include "alloc/cram.hpp"
#include "alloc/cram_incremental.hpp"
#include "common/rng.hpp"
#include "croc/info_gathering.hpp"
#include "croc/reconfig_plan.hpp"
#include "grape/grape.hpp"
#include "overlay_build/recursive_builder.hpp"

namespace greenps {

enum class Phase2Algorithm {
  kFbf,
  kBinPacking,
  kCram,
  kPairwiseK,  // related work: pairwise clustering, K from CRAM-XOR
  kPairwiseN,  // related work: pairwise clustering, one cluster per broker
};

[[nodiscard]] const char* algorithm_name(Phase2Algorithm a);

struct CrocConfig {
  Phase2Algorithm algorithm = Phase2Algorithm::kCram;
  CramOptions cram;  // metric + optimization toggles (CRAM only)
  OverlayBuildOptions overlay;
  bool run_grape = true;
  GrapeMode grape_mode = GrapeMode::kMinimizeLoad;
  // PAIRWISE-K cluster count; 0 = derive by running CRAM with XOR, as the
  // paper does.
  std::size_t pairwise_k = 0;
  // Fraction of each broker's reported output bandwidth the allocators may
  // plan against. 1.0 maximizes utilization (the paper's objective); lower
  // values trade brokers for delivery-delay headroom (less queueing).
  double capacity_headroom = 1.0;
  std::uint64_t seed = 1;
};

// How disruptive applying a plan would be: every client that must detach
// from its current broker and re-attach elsewhere.
struct MigrationCost {
  std::size_t subscribers_moved = 0;
  std::size_t subscribers_total = 0;
  std::size_t publishers_moved = 0;
  std::size_t publishers_total = 0;
  std::size_t brokers_decommissioned = 0;  // in the old overlay, not the new
  std::size_t brokers_commissioned = 0;    // in the new overlay, not the old
};

struct ReconfigurationReport {
  bool success = false;
  // Why success is false; kNone while success is true.
  FailureReason failure = FailureReason::kNone;
  ReconfigurationPlan plan;
  GatherStats gather;
  CramStats cram;                // populated when CRAM ran
  OverlayBuildStats overlay;     // populated for recursive construction
  MigrationCost migration;       // populated by reconfigure()
  // True when the plan came from the incremental path (session deltas
  // reconverged in place instead of a from-scratch Phase 2).
  bool incremental = false;
  CramDeltaStats delta;          // populated by incremental plans
  std::size_t allocated_brokers = 0;
  std::size_t cluster_count = 0;
  double phase1_seconds = 0;
  double phase2_seconds = 0;
  double phase3_seconds = 0;
  double grape_seconds = 0;
};

// Compare a plan against the currently-deployed client placement.
[[nodiscard]] MigrationCost migration_cost(const Deployment& current,
                                           const ReconfigurationPlan& plan);

// One batch of subscription churn between two reconfigurations, as the
// incremental planner consumes it.
struct SubscriptionDelta {
  // Arrivals, as Phase 1 would report them (home broker + local info).
  std::vector<SubscriptionRecord> added;
  // Departures, by subscription id.
  std::vector<SubId> removed;

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty(); }
  [[nodiscard]] std::size_t size() const { return added.size() + removed.size(); }
};

class Croc {
 public:
  // Out-of-line (with the destructor and moves): Session is incomplete
  // here, and unique_ptr<Session> needs the complete type to instantiate.
  explicit Croc(CrocConfig config);
  ~Croc();
  Croc(Croc&&) noexcept;
  Croc& operator=(Croc&&) noexcept;

  // Run all phases against a live simulation, entering the overlay at
  // `entry`. The returned plan is not applied; pass it to apply_plan().
  // Tolerates crashed brokers: Phase 1 times out on them (bounded retry)
  // and plans from whatever answered; a crashed *entry* broker fails the
  // report with FailureReason::kGatherFailed.
  [[nodiscard]] ReconfigurationReport reconfigure(const Simulation& sim, BrokerId entry);

  // Phases 2+3 from already-gathered information (also used by benches that
  // skip the simulator).
  [[nodiscard]] ReconfigurationReport plan_from_info(const GatheredInfo& info);

  // Helpers shared with benches/tests.
  [[nodiscard]] static std::vector<SubUnit> units_from(const GatheredInfo& info);
  [[nodiscard]] static std::vector<AllocBroker> pool_from(const GatheredInfo& info);

  // ---- incremental reconfiguration (subscription churn) ----
  //
  // A session keeps Phase 2's converged CRAM state (and the Phase 1 BIA
  // cache) alive between reconfigurations. Deltas reconverge only the dirty
  // neighborhoods, so per-step cost scales with the churn, not the live
  // population. Sessions always allocate with CRAM (config.cram options),
  // whatever `algorithm` says — the other allocators have no incremental
  // form. The emitted plan is a complete ReconfigurationPlan; feed it to
  // apply_plan_transactional as usual (only clients whose home actually
  // changed migrate, which migration_cost quantifies).

  // Start a session from already-gathered info: full Phase 2 convergence
  // (the warm state every later delta starts from), then Phases 3 + GRAPE.
  [[nodiscard]] ReconfigurationReport begin_incremental(const GatheredInfo& info);

  // Apply one delta batch to the live session and emit a fresh plan from
  // the incrementally reconverged allocation. Fails with
  // FailureReason::kNoIncrementalSession when no session is live.
  [[nodiscard]] ReconfigurationReport plan_incremental(const SubscriptionDelta& delta);

  // Incremental counterpart of reconfigure(): epoch-based Phase 1 (brokers
  // whose profile epoch is unchanged reuse their cached BIA), delta derived
  // by diffing the gathered subscriptions against the session's live set.
  // Without a session — or when the broker pool or publisher set changed,
  // which invalidates the warm state — it bootstraps a fresh session via a
  // full gather + begin_incremental.
  [[nodiscard]] ReconfigurationReport reconfigure_incremental(const Simulation& sim,
                                                              BrokerId entry);

  [[nodiscard]] bool has_session() const { return session_ != nullptr; }
  // The session's live CRAM state, for differential oracles. nullptr when
  // no session is live.
  [[nodiscard]] const IncrementalCram* session_cram() const;
  void end_incremental();

  // ---- elastic operation (the autoscaling controller) ----

  // Parked capacity the allocators may commission even though the brokers
  // are not in the live overlay and answer no BIR (a consolidation powered
  // them off). reconfigure()/reconfigure_incremental() splice any reserve
  // entry whose id Phase 1 did not report into the gathered pool, so plans
  // can scale the deployment back out under a flash crowd. Because the
  // spliced pool covers the same broker universe whether a broker is live
  // or parked, commissioning/decommissioning does not trip the structural
  // session reset — the warm incremental state survives controller epochs.
  // Entries are kept sorted by id; pass an empty vector to clear.
  void set_reserve_brokers(std::vector<BrokerInfo> reserve);
  [[nodiscard]] const std::vector<BrokerInfo>& reserve_brokers() const { return reserve_; }

  // Retune the allocator headroom between plans (consolidation plans pack
  // tighter than flash-crowd commissions). Ends any live incremental
  // session when the value actually changes: the warm CRAM state is keyed
  // to the headroom-scaled pool it converged on.
  void set_capacity_headroom(double headroom);
  [[nodiscard]] double capacity_headroom() const { return config_.capacity_headroom; }

  // Brokers no plan may use (the control plane's failure detector declared
  // them dead). Quarantined brokers are filtered out of the gathered pool
  // AND skipped by the reserve splice — without the latter, a crashed
  // broker that answers no BIR would be silently re-commissioned from the
  // reserve (whose entries cover the whole universe). Changing the
  // quarantine changes the pool, so a live incremental session resets
  // naturally on the next plan. Pass an empty vector to lift.
  void set_quarantined_brokers(std::vector<BrokerId> brokers);
  [[nodiscard]] const std::vector<BrokerId>& quarantined_brokers() const {
    return quarantine_;
  }

 private:
  struct Session;

  // Append reserve entries Phase 1 did not report (parked brokers are not
  // in the overlay, so the gather never visits them).
  void splice_reserve(GatheredInfo& info) const;
  // Drop quarantined brokers from the gathered pool (a suspect broker may
  // still have answered its BIR).
  void apply_quarantine(GatheredInfo& info) const;

  // Phases 3 + GRAPE from a successful Phase 2 allocation (the shared tail
  // of plan_from_info and the incremental planners).
  [[nodiscard]] ReconfigurationReport finish_plan(const GatheredInfo& info,
                                                  std::vector<AllocBroker> pool,
                                                  Allocation phase2,
                                                  ReconfigurationReport report, Rng& rng);

  CrocConfig config_;
  std::unique_ptr<Session> session_;
  std::vector<BrokerInfo> reserve_;  // sorted by id
  std::vector<BrokerId> quarantine_;  // sorted by id
};

}  // namespace greenps
