// CROC — Coordinator for Reconfiguring the Overlay and Clients.
//
// The external publish/subscribe client of Section III: connects to one
// broker, runs Phase 1 (BIR/BIA gathering), Phase 2 (subscription
// allocation), Phase 3 (recursive overlay construction) and GRAPE, and
// emits a ReconfigurationPlan the deployment can apply.
#pragma once

#include <cstdint>

#include "alloc/cram.hpp"
#include "croc/info_gathering.hpp"
#include "croc/reconfig_plan.hpp"
#include "grape/grape.hpp"
#include "overlay_build/recursive_builder.hpp"

namespace greenps {

enum class Phase2Algorithm {
  kFbf,
  kBinPacking,
  kCram,
  kPairwiseK,  // related work: pairwise clustering, K from CRAM-XOR
  kPairwiseN,  // related work: pairwise clustering, one cluster per broker
};

[[nodiscard]] const char* algorithm_name(Phase2Algorithm a);

struct CrocConfig {
  Phase2Algorithm algorithm = Phase2Algorithm::kCram;
  CramOptions cram;  // metric + optimization toggles (CRAM only)
  OverlayBuildOptions overlay;
  bool run_grape = true;
  GrapeMode grape_mode = GrapeMode::kMinimizeLoad;
  // PAIRWISE-K cluster count; 0 = derive by running CRAM with XOR, as the
  // paper does.
  std::size_t pairwise_k = 0;
  // Fraction of each broker's reported output bandwidth the allocators may
  // plan against. 1.0 maximizes utilization (the paper's objective); lower
  // values trade brokers for delivery-delay headroom (less queueing).
  double capacity_headroom = 1.0;
  std::uint64_t seed = 1;
};

// How disruptive applying a plan would be: every client that must detach
// from its current broker and re-attach elsewhere.
struct MigrationCost {
  std::size_t subscribers_moved = 0;
  std::size_t subscribers_total = 0;
  std::size_t publishers_moved = 0;
  std::size_t publishers_total = 0;
  std::size_t brokers_decommissioned = 0;  // in the old overlay, not the new
  std::size_t brokers_commissioned = 0;    // in the new overlay, not the old
};

struct ReconfigurationReport {
  bool success = false;
  // Why success is false; kNone while success is true.
  FailureReason failure = FailureReason::kNone;
  ReconfigurationPlan plan;
  GatherStats gather;
  CramStats cram;                // populated when CRAM ran
  OverlayBuildStats overlay;     // populated for recursive construction
  MigrationCost migration;       // populated by reconfigure()
  std::size_t allocated_brokers = 0;
  std::size_t cluster_count = 0;
  double phase1_seconds = 0;
  double phase2_seconds = 0;
  double phase3_seconds = 0;
  double grape_seconds = 0;
};

// Compare a plan against the currently-deployed client placement.
[[nodiscard]] MigrationCost migration_cost(const Deployment& current,
                                           const ReconfigurationPlan& plan);

class Croc {
 public:
  explicit Croc(CrocConfig config) : config_(config) {}

  // Run all phases against a live simulation, entering the overlay at
  // `entry`. The returned plan is not applied; pass it to apply_plan().
  // Tolerates crashed brokers: Phase 1 times out on them (bounded retry)
  // and plans from whatever answered; a crashed *entry* broker fails the
  // report with FailureReason::kGatherFailed.
  [[nodiscard]] ReconfigurationReport reconfigure(const Simulation& sim, BrokerId entry);

  // Phases 2+3 from already-gathered information (also used by benches that
  // skip the simulator).
  [[nodiscard]] ReconfigurationReport plan_from_info(const GatheredInfo& info);

  // Helpers shared with benches/tests.
  [[nodiscard]] static std::vector<SubUnit> units_from(const GatheredInfo& info);
  [[nodiscard]] static std::vector<AllocBroker> pool_from(const GatheredInfo& info);

 private:
  CrocConfig config_;
};

}  // namespace greenps
