#include "sim/shard_partitioner.hpp"

#include <algorithm>
#include <unordered_set>

namespace greenps {

ShardPlan partition_brokers(const Topology& topology,
                            const std::unordered_map<BrokerId, std::size_t>& extra_weight,
                            std::size_t shard_count) {
  ShardPlan plan;
  std::vector<BrokerId> ids = topology.brokers();
  std::sort(ids.begin(), ids.end());
  if (ids.empty()) {
    plan.shards.resize(std::max<std::size_t>(shard_count, 1));
    return plan;
  }
  shard_count = std::clamp<std::size_t>(shard_count, 1, ids.size());

  // Deterministic DFS order over every component: sorted roots, sorted
  // neighbor visits. On a tree this lists each subtree contiguously.
  std::vector<BrokerId> order;
  order.reserve(ids.size());
  std::unordered_set<BrokerId> seen;
  seen.reserve(ids.size());
  std::vector<BrokerId> stack;
  for (const BrokerId root : ids) {
    if (seen.contains(root)) continue;
    stack.push_back(root);
    seen.insert(root);
    while (!stack.empty()) {
      const BrokerId b = stack.back();
      stack.pop_back();
      order.push_back(b);
      std::vector<BrokerId> nbrs = topology.neighbors(b);
      std::sort(nbrs.begin(), nbrs.end());
      // Push in reverse so the smallest-id neighbor is visited first.
      for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
        if (seen.insert(*it).second) stack.push_back(*it);
      }
    }
  }

  const auto weight_of = [&](BrokerId b) -> std::size_t {
    const auto it = extra_weight.find(b);
    return 1 + (it != extra_weight.end() ? it->second : 0);
  };
  std::size_t remaining_weight = 0;
  for (const BrokerId b : order) remaining_weight += weight_of(b);

  // Greedy sweep: each shard takes consecutive DFS-order brokers until it
  // reaches its share of the remaining weight, always leaving at least one
  // broker per remaining shard.
  plan.shards.resize(shard_count);
  std::size_t next = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t shards_left = shard_count - s;
    const std::size_t target = (remaining_weight + shards_left - 1) / shards_left;
    std::size_t acc = 0;
    while (next < order.size()) {
      const std::size_t must_leave = shard_count - s - 1;
      if (order.size() - next <= must_leave) break;
      if (acc >= target && !plan.shards[s].empty()) break;
      const BrokerId b = order[next++];
      plan.shards[s].push_back(b);
      acc += weight_of(b);
    }
    remaining_weight -= acc;
  }
  // Weight rounding can exhaust targets early; sweep leftovers to the last shard.
  while (next < order.size()) plan.shards.back().push_back(order[next++]);

  for (std::size_t s = 0; s < shard_count; ++s) {
    std::sort(plan.shards[s].begin(), plan.shards[s].end());
    for (const BrokerId b : plan.shards[s]) plan.owner.emplace(b, s);
  }
  for (const BrokerId b : ids) {
    const std::size_t s = plan.owner.at(b);
    for (const BrokerId n : topology.neighbors(b)) {
      if (b.value() < n.value() && plan.owner.at(n) != s) plan.cross_links += 1;
    }
  }
  return plan;
}

}  // namespace greenps
