// Work-donation queue for parallel intra-broker matching inside the
// sharded simulator.
//
// During a lookahead window, shards that drain their queues early sit at
// the window barrier while hot shards keep matching — exactly the skew a
// consolidated ("green") deployment produces. The help queue turns that
// idle time into matching throughput: a hot shard (the owner) publishes a
// candidate batch into its slot of a small per-shard request ring, and
// shards spinning at the barrier poll help() and claim chunks of any
// published request. The owner claims chunks too, waits for all chunks to
// complete, and merges per-chunk hits in chunk order, so the result is
// bit-identical to the serial loop no matter which shards helped or how
// chunks interleaved.
//
// One slot per shard means several hot brokers on different shards can fan
// out in the same lookahead window (the single-slot design forced all but
// one of them back to the serial loop). A slot's owner is its shard's
// worker thread, so slot claims never contend in the simulator; the claim
// flag only arbitrates callers that share a slot (tests, external users).
//
// Helpers only ever dereference a published request and, through the
// predicate, the owner's epoch-pinned routing snapshot — immutable for the
// duration of the request, since the owner does not return from evaluate()
// (and therefore cannot unpin) until every helper has left its slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "matching/matching_engine.hpp"

namespace greenps {

class MatchHelpQueue {
 public:
  static constexpr std::size_t kDefaultChunk = 64;

  explicit MatchHelpQueue(std::size_t chunk = kDefaultChunk, std::size_t slots = 1)
      : chunk_(chunk == 0 ? kDefaultChunk : chunk) {
    configure_slots(slots);
  }

  // Size the request ring: one slot per owner (shard index). Must only be
  // called while no request is published and no helper is polling — the
  // simulator calls it from redeploy(), before the epoch's workers exist.
  void configure_slots(std::size_t slots);
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }

  // Owner side: evaluate pred over [0, n) in `slot`, with help from any
  // shard worker currently polling help(). Appends the true indices to
  // `out` in ascending order. Falls back to the serial loop if the slot is
  // already claimed by another owner (per-slot claiming keeps the fast
  // path wait-free). Out-of-range slots alias slot 0.
  void evaluate(std::size_t slot, std::size_t n, CandidatePred pred,
                std::vector<std::uint32_t>& out);
  // Single-slot convenience (tests, single-shard callers).
  void evaluate(std::size_t n, CandidatePred pred, std::vector<std::uint32_t>& out) {
    evaluate(0, n, pred, out);
  }

  // Helper side: scan the ring and claim chunks of every published
  // request. Returns true if any work was done. Safe to call from any
  // thread at any time; called by shards spinning at the window barrier.
  bool help();

  // Chunks executed by helpers (not the owners) since construction.
  // Observability/test hook; monotonic, relaxed.
  [[nodiscard]] std::uint64_t donated_chunks() const {
    return donated_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    CandidatePred pred;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t nchunks = 0;
    std::vector<std::vector<std::uint32_t>>* hits = nullptr;
    std::atomic<std::size_t> next{0};  // next unclaimed chunk
    std::atomic<std::size_t> done{0};  // chunks completed

    explicit Request(CandidatePred p) : pred(p) {}
  };

  // One ring slot. `claimed` arbitrates owners (exchange; losers run the
  // serial loop) and guards `chunk_hits`, which only the claiming owner may
  // touch — the previous owner releases it strictly after its helpers
  // drained, so resizing before publishing is race-free. `active` is the
  // helper-visible publication; seq_cst everywhere: a helper's inflight
  // increment and its request load form a Dekker pair with the owner's
  // request clear and its inflight check, which is what lets the owner
  // safely destroy the stack-allocated request after (clear → inflight
  // drains to 0).
  struct alignas(64) Slot {
    std::atomic<bool> claimed{false};
    std::atomic<Request*> active{nullptr};
    std::atomic<std::size_t> helpers_inflight{0};
    std::vector<std::vector<std::uint32_t>> chunk_hits;  // owner-reused
  };

  // Runs chunk `c` of `r`, writing hits into (*r.hits)[c].
  static void run_chunk(Request& r, std::size_t c);

  std::size_t chunk_;
  // unique_ptr keeps slot addresses stable (atomics are not movable).
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> donated_{0};
};

// CandidateEvaluator adapter over a shared MatchHelpQueue: each shard holds
// one bound to its own ring slot, all pointing at the simulation's queue.
class HelpQueueEvaluator : public CandidateEvaluator {
 public:
  HelpQueueEvaluator(MatchHelpQueue& queue, std::size_t threshold, std::size_t slot = 0)
      : queue_(queue), threshold_(threshold), slot_(slot) {}

  [[nodiscard]] std::size_t threshold() const override { return threshold_; }

  void evaluate(std::size_t n, CandidatePred pred,
                std::vector<std::uint32_t>& out) override {
    queue_.evaluate(slot_, n, pred, out);
  }

 private:
  MatchHelpQueue& queue_;
  std::size_t threshold_;
  std::size_t slot_;
};

}  // namespace greenps
