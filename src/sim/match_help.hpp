// Work-donation queue for parallel intra-broker matching inside the
// sharded simulator.
//
// During a lookahead window, shards that drain their queues early sit at
// the window barrier while hot shards keep matching — exactly the skew a
// consolidated ("green") deployment produces. The help queue turns that
// idle time into matching throughput: a hot shard (the owner) publishes a
// candidate batch as the single active request, and shards spinning at the
// barrier poll help() and claim chunks of it. The owner claims chunks too,
// waits for all chunks to complete, and merges per-chunk hits in chunk
// order, so the result is bit-identical to the serial loop no matter which
// shards helped or how chunks interleaved.
//
// Helpers only ever dereference the owner's published request and, through
// the predicate, the owner's epoch-pinned routing snapshot — immutable for
// the duration of the request, since the owner does not return from
// evaluate() (and therefore cannot unpin) until every helper has left.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "matching/matching_engine.hpp"

namespace greenps {

class MatchHelpQueue {
 public:
  static constexpr std::size_t kDefaultChunk = 64;

  explicit MatchHelpQueue(std::size_t chunk = kDefaultChunk)
      : chunk_(chunk == 0 ? kDefaultChunk : chunk) {}

  // Owner side: evaluate pred over [0, n) with help from any shard worker
  // currently polling help(). Appends the true indices to `out` in
  // ascending order. Falls back to the serial loop if another owner's
  // request is already active (one request at a time keeps claiming
  // wait-free).
  void evaluate(std::size_t n, CandidatePred pred, std::vector<std::uint32_t>& out);

  // Helper side: claim and run chunks of the active request, if any.
  // Returns true if any work was done. Safe to call from any thread at any
  // time; called by shards spinning at the window barrier.
  bool help();

  // Chunks executed by helpers (not the owner) since construction.
  // Observability/test hook; monotonic, relaxed.
  [[nodiscard]] std::uint64_t donated_chunks() const {
    return donated_.load(std::memory_order_relaxed);
  }

 private:
  struct Request {
    CandidatePred pred;
    std::size_t n = 0;
    std::size_t chunk = 0;
    std::size_t nchunks = 0;
    std::vector<std::vector<std::uint32_t>>* hits = nullptr;
    std::atomic<std::size_t> next{0};  // next unclaimed chunk
    std::atomic<std::size_t> done{0};  // chunks completed

    explicit Request(CandidatePred p) : pred(p) {}
  };

  // Runs chunk `c` of `r`, writing hits into (*r.hits)[c].
  static void run_chunk(Request& r, std::size_t c);

  std::size_t chunk_;
  // The single active request, owned by the evaluating thread's stack.
  // seq_cst everywhere: the helper's inflight increment and its request
  // load form a Dekker pair with the owner's request clear and its
  // inflight check, which is what lets the owner safely destroy the
  // request after (clear → inflight drains to 0).
  std::atomic<Request*> active_{nullptr};
  std::atomic<std::size_t> helpers_inflight_{0};
  std::atomic<std::uint64_t> donated_{0};
  std::vector<std::vector<std::uint32_t>> chunk_hits_;  // owner-reused
};

// CandidateEvaluator adapter over a shared MatchHelpQueue: each shard holds
// one, all pointing at the simulation's queue.
class HelpQueueEvaluator : public CandidateEvaluator {
 public:
  HelpQueueEvaluator(MatchHelpQueue& queue, std::size_t threshold)
      : queue_(queue), threshold_(threshold) {}

  [[nodiscard]] std::size_t threshold() const override { return threshold_; }

  void evaluate(std::size_t n, CandidatePred pred,
                std::vector<std::uint32_t>& out) override {
    queue_.evaluate(n, pred, out);
  }

 private:
  MatchHelpQueue& queue_;
  std::size_t threshold_;
};

}  // namespace greenps
