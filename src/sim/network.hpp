// Network latency model. Broker-to-broker links and client attachments have
// fixed propagation latency; serialization (bandwidth) delay is modeled by
// each broker's output BandwidthLimiter, matching the paper's setup where
// output bandwidth is the throttled resource.
#pragma once

#include "common/units.hpp"

namespace greenps {

struct NetworkConfig {
  SimTime link_latency = seconds(0.0005);    // 0.5 ms between brokers (LAN)
  SimTime client_latency = seconds(0.0002);  // 0.2 ms broker <-> client
  // Delay before messages buffered for a crashed broker are replayed after
  // its restart (retransmit-on-reconnect; see sim/faults.hpp).
  SimTime reconnect_latency = seconds(0.001);
};

}  // namespace greenps
