#include "sim/loss_oracle.hpp"

#include <map>
#include <utility>

namespace greenps {

LossAudit audit_losses(const Simulation& sim, StockQuoteGenerator quotes,
                       const LossAuditOptions& options) {
  LossAudit audit;
  const auto& ledger = sim.publish_ledger();
  if (ledger.empty()) return audit;

  struct Row {
    SimTime at = 0;
    bool dropped_at_source = false;
  };
  std::map<AdvId, std::map<MessageSeq, Row>> rows;
  for (const auto& r : ledger) rows[r.adv][r.seq] = {r.at, r.dropped_at_source};

  // Regenerate the publications behind every ledger row. Quote draw k for a
  // symbol is publication seq k; sequence counters survive redeploys, so
  // draws below the epoch's first ledger seq are consumed (they belong to
  // earlier epochs) but not audited.
  std::map<AdvId, std::map<MessageSeq, Publication>> pubs;
  std::map<AdvId, BrokerId> pub_home;
  for (const auto& p : sim.deployment().publishers) {
    const auto rit = rows.find(p.adv);
    if (rit == rows.end()) continue;
    pub_home[p.adv] = p.home;
    const MessageSeq last = rit->second.rbegin()->first;
    auto& dst = pubs[p.adv];
    for (MessageSeq s = 0; s <= last; ++s) {
      Publication pub = quotes.next(p.symbol);
      if (!rit->second.contains(s)) continue;
      pub.set_header(p.adv, s);
      dst.emplace(s, std::move(pub));
    }
  }

  const auto pending = sim.pending_retransmits();
  const auto deferred = sim.pending_admissions();
  const auto shed = sim.shed_publications();
  const auto& stranded = sim.stranded_messages();
  const FaultState& faults = sim.fault_state();
  const SimTime horizon = sim.now_us();

  for (const auto& s : sim.deployment().subscribers) {
    const BrokerInfo info = sim.broker_info(s.home);
    const LocalSubscriptionInfo* local = nullptr;
    for (const auto& ls : info.subscriptions) {
      if (ls.id == s.sub) {
        local = &ls;
        break;
      }
    }
    for (const auto& [adv, seq_pubs] : pubs) {
      const WindowedBitVector* v =
          local != nullptr ? local->profile.vector_for(adv) : nullptr;
      for (const auto& [seq, pub] : seq_pubs) {
        if (v != nullptr && v->anchored() && seq < v->first_id()) {
          audit.out_of_window += 1;
          continue;
        }
        const bool matches = s.filter.matches(pub);
        const bool bit = v != nullptr && v->test_seq(seq);
        if (bit && !matches) {
          audit.false_positives += 1;
          continue;
        }
        if (!matches) continue;
        audit.expected += 1;
        if (bit) {
          audit.recorded += 1;
          continue;
        }
        const Row& row = rows[adv][seq];
        const bool excused =
            row.dropped_at_source ||
            faults.in_outage(s.home, row.at, options.outage_slack) ||
            faults.in_outage(pub_home[adv], row.at, options.outage_slack) ||
            pending.contains({adv, seq}) ||
            // Degraded-mode admission control: parked at the door (still
            // deliverable), or shed under backpressure (accounted loss).
            deferred.contains({adv, seq}) || shed.contains({adv, seq}) ||
            // Swept out of a buffer by a redeploy that decommissioned the
            // buffering broker: attributable to the fault, not the router.
            stranded.contains({adv, seq}) ||
            row.at + options.horizon_slack >= horizon;
        if (excused) {
          audit.excused += 1;
        } else {
          audit.real_losses.push_back({s.sub, adv, seq, row.at});
        }
      }
    }
  }
  return audit;
}

}  // namespace greenps
