// Discrete-event scheduler: a min-heap of (time, insertion sequence,
// action). Ties break on insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/small_function.hpp"
#include "common/units.hpp"

namespace greenps {

class EventQueue {
 public:
  // Inline-storage callable: scheduling an event never heap-allocates for
  // the closure (a too-large capture fails to compile instead of silently
  // falling back to the heap). 80 bytes covers the simulator's largest
  // closure (delivery: this + broker + sub + shared_ptr + hops + 2 times)
  // with room to spare.
  static constexpr std::size_t kActionCapacity = 80;
  using Action = SmallFunction<void(), kActionCapacity>;

  void schedule(SimTime time, Action action);

  // Execute events in time order until the queue is drained or the next
  // event is after `end`. Returns the number of events executed.
  std::size_t run_until(SimTime end);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t executed() const { return executed_; }

  void clear();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace greenps
