// Discrete-event scheduler: a min-heap of (time, tie-break key, action).
//
// Two tie-break disciplines coexist:
//  - schedule() assigns an insertion-sequence key (the historical behavior:
//    same-time events fire in the order they were scheduled);
//  - schedule_keyed() takes a caller-supplied EventKey derived from the
//    event's *content* (source ordinal + per-source sequence). Content keys
//    make the execution order a pure function of the simulated system, so a
//    sharded simulation replays each broker's events in exactly the order a
//    single queue would — the foundation of the bit-identical contract for
//    any worker count.
// Keyed events order before legacy ones at the same timestamp (their class
// bits are smaller); each discipline is internally deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/small_function.hpp"
#include "common/units.hpp"

namespace greenps {

// Content-derived tie-break key: hi = (class << 56) | source ordinal,
// lo = per-source sequence number. Ties at one timestamp resolve by
// (hi, lo), so the pair must be unique per queue per timestamp.
struct EventKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

class EventQueue {
 public:
  // Inline-storage callable: scheduling an event never heap-allocates for
  // the closure (a too-large capture fails to compile instead of silently
  // falling back to the heap). 80 bytes covers the simulator's largest
  // closure (delivery: this + broker + sub + shared_ptr + hops + 2 times)
  // with room to spare.
  static constexpr std::size_t kActionCapacity = 80;
  using Action = SmallFunction<void(), kActionCapacity>;

  // next_time() when the heap is empty.
  static constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();
  // Class bits assigned to schedule() events; schedule_keyed() callers must
  // use a smaller class so their ordering is self-contained.
  static constexpr std::uint64_t kInsertionClass = 3;

  void schedule(SimTime time, Action action);
  void schedule_keyed(SimTime time, EventKey key, Action action);

  // Execute events in (time, key) order until the queue is drained or the
  // next event is after `end`; leaves now() == end. Returns the number of
  // events executed.
  std::size_t run_until(SimTime end);

  // Execute events with time strictly before `horizon`, leaving now() at
  // the last executed event (events at exactly `horizon` stay queued).
  // Used by the sharded loop to drain one conservative lookahead window:
  // cross-shard messages produced inside the window land at or after
  // `horizon`, so they merge in before the next window opens.
  std::size_t run_before(SimTime horizon);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] SimTime next_time() const {
    return heap_.empty() ? kNoEvent : heap_.top().time;
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t executed() const { return executed_; }

  void clear();

 private:
  struct Event {
    SimTime time;
    EventKey key;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.key.hi != b.key.hi) return a.key.hi > b.key.hi;
      return a.key.lo > b.key.lo;
    }
  };

  void pop_and_run();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace greenps
