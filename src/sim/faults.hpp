// Deterministic fault injection for the deployment simulator.
//
// A FaultSchedule is a seed-reproducible list of timed fault events —
// broker crashes/restarts, link outages, per-link message-drop windows and
// latency spikes — that the simulator arms onto its event queue. The
// runtime FaultState tracks which faults are currently active, records
// broker outage windows (consumed by the delivery-loss oracle), and counts
// everything that was dropped, detached or replayed so chaos runs are
// debuggable. With an empty schedule no fault event is armed and no random
// draw happens, so the event stream is bit-identical to a fault-free build.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace greenps {

enum class FaultKind {
  kBrokerCrash,    // broker drops queued publications and detaches clients
  kBrokerRestart,  // broker rejoins; buffered messages replay if enabled
  kLinkDown,       // broker-broker link stops carrying messages
  kLinkUp,         // link restored
  kLinkDrop,       // link drops each message with `drop_prob` (0 clears)
  kLatencySpike,   // every link hop gains `extra_latency` (0 clears)
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kBrokerCrash;
  BrokerId broker{};          // crash/restart target; one endpoint of a link fault
  BrokerId peer{};            // other endpoint for link faults
  double drop_prob = 0;       // kLinkDrop only
  SimTime extra_latency = 0;  // kLatencySpike only
};

// An ordered, seed-reproducible fault script. Built either explicitly
// (tests) or by the chaos generator (benches). Events fire in (time,
// insertion-order) order, exactly like the simulator's event queue.
class FaultSchedule {
 public:
  FaultSchedule& crash(SimTime at, BrokerId b);
  FaultSchedule& restart(SimTime at, BrokerId b);
  // Crash at `at`, restart at `at + outage`.
  FaultSchedule& outage(SimTime at, SimTime outage_len, BrokerId b);
  FaultSchedule& link_down(SimTime at, BrokerId a, BrokerId b);
  FaultSchedule& link_up(SimTime at, BrokerId a, BrokerId b);
  // From `at`, drop each message crossing (a, b) with probability p; a
  // later call with p = 0 clears the fault.
  FaultSchedule& link_drop(SimTime at, BrokerId a, BrokerId b, double p);
  // From `at`, add `extra` to every broker-broker hop; extra = 0 clears.
  FaultSchedule& latency_spike(SimTime at, SimTime extra);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

  // Randomized chaos script over [0, horizon). Every crash gets a matching
  // restart inside the horizon (open-ended outages are for explicit
  // schedules), and a broker is never crashed twice concurrently.
  struct ChaosConfig {
    double horizon_s = 60.0;
    std::size_t crashes = 2;
    double mean_outage_s = 5.0;
    std::size_t link_flaps = 0;       // down/up pairs on random links
    double mean_link_outage_s = 3.0;
    std::size_t drop_windows = 0;     // windows of probabilistic loss
    double drop_prob = 0.05;
    std::size_t latency_spikes = 0;
    double spike_extra_s = 0.02;
    double mean_spike_s = 2.0;
  };
  [[nodiscard]] static FaultSchedule chaos(
      const ChaosConfig& config, const std::vector<BrokerId>& brokers,
      const std::vector<std::pair<BrokerId, BrokerId>>& links, Rng& rng);

 private:
  std::vector<FaultEvent> events_;
};

// Everything dropped, detached or replayed while a schedule ran.
struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t link_downs = 0;
  std::uint64_t link_ups = 0;
  std::uint64_t pubs_dropped_at_source = 0;   // publisher's home was down
  std::uint64_t arrivals_dropped = 0;         // message reached a crashed broker
  std::uint64_t deliveries_dropped = 0;       // in-flight delivery, client detached
  std::uint64_t msgs_dropped_link_down = 0;
  std::uint64_t msgs_dropped_random = 0;      // probabilistic link drops
  std::uint64_t retransmits_replayed = 0;     // buffered messages re-injected
  std::uint64_t retransmit_overflow = 0;      // buffer cap hit; message lost
  // Degraded-mode admission control (FaultOptions::admission_control):
  std::uint64_t pubs_deferred_admission = 0;  // held at the door (backlog high)
  std::uint64_t pubs_readmitted = 0;          // deferred, later injected
  std::uint64_t pubs_shed_admission = 0;      // deferred-buffer cap hit; shed

  // Field-wise sum: reduces per-shard counters into one view.
  void add(const FaultStats& other);
};

// One broker outage as the loss oracle sees it. end < 0 = still down.
struct OutageWindow {
  BrokerId broker;
  SimTime begin = 0;
  SimTime end = -1;
};

// Live fault state, advanced by the simulator as scheduled FaultEvents
// fire. Lookups are O(1); link keys are order-independent.
class FaultState {
 public:
  // Advance the live state. With record = false only the state flips —
  // no stats counting, no outage-window bookkeeping. The sharded simulator
  // replicates every fault event to all shards (each needs the link/crash
  // state for its own brokers' hot paths) but designates exactly one
  // recording replica, so counters and windows are not multiplied.
  void apply(const FaultEvent& ev, bool record = true);

  [[nodiscard]] bool is_crashed(BrokerId b) const { return crashed_.contains(b); }
  [[nodiscard]] bool link_is_down(BrokerId a, BrokerId b) const {
    return !down_links_.empty() && down_links_.contains(link_key(a, b));
  }
  // Per-message drop probability on (a, b); 0 when no drop fault is active.
  [[nodiscard]] double drop_prob(BrokerId a, BrokerId b) const;
  [[nodiscard]] SimTime extra_latency() const { return extra_latency_; }
  [[nodiscard]] std::size_t crashed_count() const { return crashed_.size(); }

  [[nodiscard]] FaultStats& stats() { return stats_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<OutageWindow>& outages() const { return outages_; }

  // True if `t` falls inside an outage of `b`, padding each window by
  // `slack_before` (covers messages already in flight when the crash hit).
  [[nodiscard]] bool in_outage(BrokerId b, SimTime t, SimTime slack_before = 0) const;

  void reset();  // new epoch: clears active faults, windows and counters

 private:
  // Order-independent exact link key (no truncation for 64-bit ids); the
  // ordered containers stay tiny (active faults only) and every lookup is
  // behind an empty() guard on the simulator's hot path.
  static std::pair<BrokerId, BrokerId> link_key(BrokerId a, BrokerId b) {
    return a.value() < b.value() ? std::pair{a, b} : std::pair{b, a};
  }

  std::unordered_set<BrokerId> crashed_;
  std::set<std::pair<BrokerId, BrokerId>> down_links_;
  std::map<std::pair<BrokerId, BrokerId>, double> drop_probs_;
  SimTime extra_latency_ = 0;
  std::vector<OutageWindow> outages_;
  FaultStats stats_;
};

// Knobs for how the simulator reacts to faults.
struct FaultOptions {
  // Buffer messages that arrive at a crashed broker and replay them when it
  // restarts (store-and-forward at the dead broker's neighbors). Without
  // it, everything a crashed broker would have carried is lost. Replayed
  // messages re-enter `reconnect_latency` after the restart.
  bool retransmit_on_reconnect = false;
  // Per-broker cap on buffered messages; overflow drops (counted in
  // FaultStats::retransmit_overflow and SimSummary::retransmit_overflow).
  // 0 (the default) derives each broker's cap from its profiled message
  // rate x the expected outage length x `retransmit_headroom`, clamped to
  // [1024, 1 << 20]; brokers with no profile data fall back to 65536.
  // Nonzero = one flat cap for every broker (the historical behavior).
  std::size_t max_retransmit_buffer = 0;
  // Outage length the derived caps are sized for. <= 0 = use the longest
  // crash-to-restart gap in the installed schedule (fallback: 5 s when the
  // schedule has no closed outage).
  double expected_outage_s = 0;
  // Safety factor on derived caps: profiles are averages, outages hit peaks.
  double retransmit_headroom = 2.0;

  // ---- degraded-mode admission control (self-healing control plane) ----
  // While a deployment is degraded (a broker died; survivors absorb its
  // traffic until the control plane re-homes clients), backlogs on the
  // surviving brokers grow without bound unless load is shed by priority.
  // Admission control sheds the lowest-priority class — NEW publisher
  // injections — at the door: when a publisher's home broker is backlogged
  // past `admission_backlog_s`, fresh publications are parked in a bounded
  // per-broker deferred buffer and re-injected once the backlog drains
  // below `admission_resume_s` (hysteresis). In-transit work (forwards,
  // deliveries, retransmit replays) is never shed. Every deferred message
  // is counted (FaultStats::pubs_deferred_admission) and, if the buffer
  // cap forces a shed, classified by the loss oracle as excused.
  bool admission_control = false;
  double admission_backlog_s = 1.5;   // defer when home backlog exceeds this
  double admission_resume_s = 0.5;    // re-admit below this (hysteresis)
  double admission_retry_s = 0.25;    // deferred-drain polling period
  std::size_t admission_max_deferred = 4096;  // per-broker buffer cap
  std::size_t admission_drain_batch = 32;     // re-admissions per drain tick
};

}  // namespace greenps
