#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace greenps {

void SpinBarrier::arrive_and_wait(const std::function<bool()>* idle_poll) {
  const std::uint64_t phase = phase_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    phase_.fetch_add(1, std::memory_order_release);
    return;
  }
  // Bounded spin covers the common case (all parties a few hundred ns from
  // the barrier); past it, yield the slice — with more shards than cores a
  // pure spin would burn a whole scheduler quantum per crossing waiting for
  // a party that cannot run. A successful idle poll (donated matching work)
  // resets the spin budget: a thread doing real work should not yield.
  int spins = 0;
  while (phase_.load(std::memory_order_acquire) == phase) {
    if (idle_poll != nullptr && *idle_poll && (*idle_poll)()) {
      spins = 0;
      continue;
    }
    if (++spins >= 1024) std::this_thread::yield();
  }
}

void ShardedEventLoop::reset(std::size_t shards) {
  assert(shards >= 1);
  shards_.clear();
  shards_.resize(shards);
  for (Shard& s : shards_) s.out.resize(shards);
  next_times_.assign(shards, 0);
}

std::size_t ShardedEventLoop::executed() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.queue.executed();
  return total;
}

void ShardedEventLoop::post(std::size_t src, std::size_t dst, SimTime time, EventKey key,
                            EventQueue::Action action) {
  if (src == dst) {
    shards_[dst].queue.schedule_keyed(time, key, std::move(action));
    return;
  }
  shards_[src].out[dst].push_back(Posted{time, key, std::move(action)});
}

void ShardedEventLoop::run_windows(SimTime end, SimTime lookahead, std::size_t slot,
                                   SpinBarrier& barrier,
                                   const std::function<bool()>* idle_poll) {
  const std::size_t n = shards_.size();
  EventQueue& q = shards_[slot].queue;
  while (true) {
    next_times_[slot] = q.next_time();
    barrier.arrive_and_wait(idle_poll);
    // Every slot computes the same minimum from the same snapshot, so all
    // slots agree on the window — and on when to stop — without a leader.
    SimTime tmin = next_times_[0];
    for (std::size_t s = 1; s < n; ++s) tmin = std::min(tmin, next_times_[s]);
    if (tmin > end) break;
    // end + 1: the final window is inclusive of `end`, matching run_until.
    const SimTime horizon = std::min(tmin + lookahead, end + 1);
    q.run_before(horizon);
    // The drain barrier is the donation window: shards that finished their
    // drain early poll the help queue here while hot shards keep matching.
    barrier.arrive_and_wait(idle_poll);
    // All posts for this window are in the lanes; merge the ones addressed
    // to this shard. The lookahead contract puts them at/after `horizon`,
    // so next_time() stays a valid window anchor.
    for (std::size_t src = 0; src < n; ++src) {
      auto& lane = shards_[src].out[slot];
      for (Posted& p : lane) q.schedule_keyed(p.time, p.key, std::move(p.action));
      lane.clear();
    }
    barrier.arrive_and_wait(idle_poll);
  }
  // No event at or before `end` remains anywhere; settle the clock (and the
  // per-thread obs sim time) exactly like a serial run.
  q.run_until(end);
}

void ShardedEventLoop::run(SimTime end, SimTime lookahead, ThreadPool* pool,
                           const std::function<void(std::size_t)>& on_slot_begin,
                           const std::function<void(std::size_t)>& on_slot_end,
                           const std::function<bool()>& idle_poll) {
  if (shards_.size() == 1) {
    if (on_slot_begin) on_slot_begin(0);
    shards_[0].queue.run_until(end);
    if (on_slot_end) on_slot_end(0);
    return;
  }
  assert(lookahead > 0);
  assert(pool != nullptr && pool->size() >= shards_.size());
  SpinBarrier barrier(shards_.size());
  const std::function<bool()>* poll = idle_poll ? &idle_poll : nullptr;
  pool->run_slots(shards_.size(), [&](std::size_t slot) {
    if (on_slot_begin) on_slot_begin(slot);
    run_windows(end, lookahead, slot, barrier, poll);
    if (on_slot_end) on_slot_end(slot);
  });
}

}  // namespace greenps
