// The deployment simulator.
//
// Stands in for the paper's cluster/SciNet testbeds: brokers are queueing
// stations (matching CPU + throttled output link) connected by fixed-latency
// links; publishers emit stock quotes on a fixed schedule; filter-based
// routing is installed exactly as PADRES would (advertisement flooding,
// subscriptions propagated toward intersecting advertisements). CBCs profile
// deliveries, so after a measurement run CROC can gather real BrokerInfo.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "broker/broker.hpp"
#include "common/rng.hpp"
#include "obs/sampler.hpp"
#include "overlay/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/publication_pool.hpp"
#include "workload/stock_quote.hpp"

namespace greenps {

struct PublisherSpec {
  ClientId client;
  AdvId adv;
  std::string symbol;   // stock published by this publisher
  MsgRate rate_msg_s = 70.0 / 60.0;
  BrokerId home;
  Filter adv_filter;    // advertisement announced by this publisher
};

struct SubscriberSpec {
  ClientId client;
  SubId sub;
  Filter filter;
  BrokerId home;
};

struct Deployment {
  Topology topology;
  std::unordered_map<BrokerId, BrokerCapacity> capacities;
  std::vector<PublisherSpec> publishers;
  std::vector<SubscriberSpec> subscribers;
  // Capacity of every CBC profiling bit vector (Section III-B; default 1,280).
  std::size_t profile_window_bits = WindowedBitVector::kDefaultCapacity;
};

class Simulation {
 public:
  Simulation(Deployment deployment, StockQuoteGenerator quotes, NetworkConfig net = {});

  // Advance simulated time by `duration_s`, generating and routing
  // publications. May be called repeatedly; metrics accumulate until
  // reset_metrics().
  void run(double duration_s);

  // Replace the deployment (topology + client placement) with a new one —
  // the reconfiguration at the end of Phase 3. Queues, routing tables and
  // metrics restart; publisher sequence numbers and the stock price walks
  // continue, so profiles remain consistent across reconfigurations.
  void redeploy(Deployment deployment);

  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] const MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] Broker& broker(BrokerId id);
  [[nodiscard]] const Broker& broker(BrokerId id) const;

  // BIA payload for one broker (what its CBC currently knows).
  [[nodiscard]] BrokerInfo broker_info(BrokerId id) const;

  // --- fault injection ---
  // Arm a fault script for the current epoch: its events fire on the sim
  // clock interleaved with regular traffic. Also enables the publication
  // ledger. An empty schedule arms nothing and draws nothing, so the event
  // stream stays bit-identical to a run without faults. redeploy() clears
  // any remaining scheduled faults along with the rest of the queue —
  // install a fresh schedule per epoch.
  void install_faults(FaultSchedule schedule, FaultOptions options = {});
  // Apply one fault right now (tests, mid-apply chaos probes).
  void inject_fault(FaultEvent ev);
  [[nodiscard]] const FaultState& fault_state() const { return faults_; }
  // In the deployment and not currently crashed.
  [[nodiscard]] bool broker_alive(BrokerId id) const;
  // BIA if the broker answers; nullopt while it is crashed (Phase 1's
  // per-broker timeout expires against a dead CBC).
  [[nodiscard]] std::optional<BrokerInfo> broker_info_if_reachable(BrokerId id) const;

  // --- publication ledger (delivery-loss oracle) ---
  // One row per publication emitted this epoch; enabled by install_faults()
  // or explicitly. Recording is observation-only: the event stream is
  // untouched.
  struct PublishRecord {
    AdvId adv;
    MessageSeq seq = 0;
    SimTime at = 0;
    bool dropped_at_source = false;  // publisher's home broker was down
  };
  void set_publication_ledger(bool enabled) { ledger_enabled_ = enabled; }
  [[nodiscard]] const std::vector<PublishRecord>& publish_ledger() const {
    return publish_ledger_;
  }
  // (adv, seq) pairs sitting in retransmit buffers, awaiting a restart.
  [[nodiscard]] std::set<std::pair<AdvId, MessageSeq>> pending_retransmits() const;
  // Current position of the sim clock (end of the last run horizon).
  [[nodiscard]] SimTime now_us() const { return queue_.now(); }

  [[nodiscard]] SimSummary summarize() const;
  void reset_metrics();

  // Total simulated seconds measured since the last metrics reset.
  [[nodiscard]] double measured_seconds() const { return measured_s_; }

  // Discrete events executed since construction (bench instrumentation).
  [[nodiscard]] std::size_t events_executed() const { return queue_.executed(); }

 private:
  struct PublisherState {
    PublisherSpec spec;
    MessageSeq next_seq = 0;
  };

  void install_routing();
  // Periodic per-broker time-series sampling (GREENPS_OBS_SAMPLE_MS): one
  // self-rescheduling event snapshots message rates, output-queue backlog
  // and bandwidth utilization. Inert (no events scheduled) when disabled,
  // so the event stream — and thus every allocation decision — is
  // unchanged by default.
  void schedule_sample(SimTime at);
  void take_sample();
  void schedule_publisher(std::size_t pub_index, SimTime first);
  void publish(std::size_t pub_index);
  // Fire one fault: flip FaultState, sync the Broker object, emit obs
  // trace/metrics, and on restart replay any buffered messages.
  struct BufferedArrival;
  void apply_fault(const FaultEvent& ev);
  void buffer_for_retransmit(BrokerId at, BufferedArrival&& entry);
  void replay_retransmits(BrokerId restarted);
  // `br` is resolved at schedule time (broker storage is stable between
  // redeploys and the queue is cleared on redeploy), saving an id lookup
  // per hop and per delivery on the hot path.
  void arrive_at_broker(Broker& br, std::shared_ptr<const Publication> pub,
                        BrokerId from, bool has_from, int broker_hops,
                        SimTime publish_time);

  Deployment deployment_;
  StockQuoteGenerator quotes_;
  NetworkConfig net_;
  EventQueue queue_;
  MetricsCollector metrics_;
  std::unordered_map<BrokerId, std::unique_ptr<Broker>> brokers_;
  std::vector<PublisherState> publishers_;
  // Sequence numbers survive redeploys (bit vector counters stay in sync).
  std::unordered_map<AdvId, MessageSeq> seq_;
  PublicationPool pub_pool_;
  // Scratch routing decision reused across arrivals (single-threaded loop).
  SubscriptionRoutingTable::MatchResult route_scratch_;
  // Brokers hosting at least one client, precomputed at redeploy() so the
  // pure-forwarder check in summarize() is O(1) per broker instead of
  // rescanning every publisher/subscriber spec.
  std::unordered_set<BrokerId> client_hosts_;
  double measured_s_ = 0;
  bool publishers_scheduled_ = false;

  // --- fault injection state ---
  // `faults_active_` gates every hook on the hot path: when false (no
  // schedule installed this epoch) the simulator takes exactly the same
  // branches and draws exactly the same random numbers as a build without
  // fault support, keeping fault-free runs bit-identical.
  bool faults_active_ = false;
  FaultOptions fault_options_;
  FaultState faults_;
  // Dedicated stream so fault-related draws never perturb workload RNG.
  Rng fault_rng_{0x9e3779b97f4a7c15ull};
  bool ledger_enabled_ = false;
  std::vector<PublishRecord> publish_ledger_;
  // A message held at a crashed broker, awaiting restart (retransmit).
  struct BufferedArrival {
    std::shared_ptr<const Publication> pub;
    BrokerId from{};
    bool has_from = false;
    bool is_delivery = false;  // final hop: deliver to `sub` on replay
    SubId sub{};
    int broker_hops = 0;
    SimTime publish_time = 0;
  };
  std::unordered_map<BrokerId, std::vector<BufferedArrival>> retransmit_;

  // Previous-sample counters so each sample reports per-interval deltas.
  struct SampleBaseline {
    std::uint64_t msgs_in = 0;
    std::uint64_t msgs_out = 0;
    SimTime busy_us = 0;
  };
  obs::TimeSeriesSampler sampler_{
      "broker", {"in_rate_msg_s", "out_rate_msg_s", "queue_backlog_s", "bw_utilization"}};
  SimTime sample_interval_us_ = obs::TimeSeriesSampler::interval_us_from_env();
  std::unordered_map<BrokerId, SampleBaseline> sample_baselines_;
  bool sampler_scheduled_ = false;
};

}  // namespace greenps
