// The deployment simulator.
//
// Stands in for the paper's cluster/SciNet testbeds: brokers are queueing
// stations (matching CPU + throttled output link) connected by fixed-latency
// links; publishers emit stock quotes on a fixed schedule; filter-based
// routing is installed exactly as PADRES would (advertisement flooding,
// subscriptions propagated toward intersecting advertisements). CBCs profile
// deliveries, so after a measurement run CROC can gather real BrokerInfo.
//
// The event loop shards across worker threads (SimOptions::workers /
// GREENPS_SIM_WORKERS): brokers are partitioned onto per-worker event queues
// advanced in conservative lookahead windows (sim/sharded_engine.hpp), with
// content-derived event keys making every result bit-identical to the
// single-threaded run for any worker count.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "broker/broker.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/sampler.hpp"
#include "overlay/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/match_help.hpp"
#include "sim/publication_pool.hpp"
#include "sim/sharded_engine.hpp"
#include "workload/stock_quote.hpp"

namespace greenps {

struct PublisherSpec {
  ClientId client;
  AdvId adv;
  std::string symbol;   // stock published by this publisher
  MsgRate rate_msg_s = 70.0 / 60.0;
  BrokerId home;
  Filter adv_filter;    // advertisement announced by this publisher
};

struct SubscriberSpec {
  ClientId client;
  SubId sub;
  Filter filter;
  BrokerId home;
};

struct Deployment {
  Topology topology;
  std::unordered_map<BrokerId, BrokerCapacity> capacities;
  std::vector<PublisherSpec> publishers;
  std::vector<SubscriberSpec> subscribers;
  // Capacity of every CBC profiling bit vector (Section III-B; default 1,280).
  std::size_t profile_window_bits = WindowedBitVector::kDefaultCapacity;
};

// How the simulator parallelizes its event loop.
struct SimOptions {
  // Worker threads (= event-queue shards). 0 resolves GREENPS_SIM_WORKERS
  // from the environment, defaulting to 1 (single-threaded). The effective
  // count is clamped to the broker count and forced to 1 when the workload
  // cannot be sharded safely (zero link latency, or publishers sharing a
  // symbol or advertisement stream); results are identical either way.
  std::size_t workers = 0;

  // Parallel intra-broker matching: candidate batches at or above this size
  // fan out across threads — idle shard workers donated at the lookahead
  // barrier (sharded runs) or a dedicated pool (single-shard runs). 0
  // resolves GREENPS_MATCH_THRESHOLD from the environment, defaulting to
  // SIZE_MAX (disabled). Results are bit-identical for any setting.
  std::size_t match_threshold = 0;

  [[nodiscard]] static std::size_t resolve_workers(std::size_t requested);
  [[nodiscard]] static std::size_t resolve_match_threshold(std::size_t requested);
};

class Simulation {
 public:
  Simulation(Deployment deployment, StockQuoteGenerator quotes, NetworkConfig net = {},
             SimOptions opts = {});

  // Advance simulated time by `duration_s`, generating and routing
  // publications. May be called repeatedly; metrics accumulate until
  // reset_metrics().
  void run(double duration_s);

  // Replace the deployment (topology + client placement) with a new one —
  // the reconfiguration at the end of Phase 3. Queues, routing tables and
  // metrics restart; publisher sequence numbers and the stock price walks
  // continue, so profiles remain consistent across reconfigurations.
  void redeploy(Deployment deployment);

  [[nodiscard]] const Deployment& deployment() const { return deployment_; }
  [[nodiscard]] const MetricsCollector& metrics() const { return metrics_; }

  // Update one publisher's emission rate in place (every spec carrying the
  // client id, in the deployment and the live schedule). Takes effect at
  // the publisher's next scheduled publication — a pure data change, so
  // results stay bit-identical for any worker count. The rate must be
  // positive: a publisher's event chain cannot be paused mid-epoch. Rates
  // live on the deployment, so they survive redeploys (apply_plan copies
  // the old publisher specs). Traffic shapers (diurnal schedules, flash
  // crowds) drive this between run() slices.
  void set_publisher_rate(ClientId client, MsgRate rate_msg_s);

  // --- time-series sampling ---
  // Programmatic equivalent of GREENPS_OBS_SAMPLE_MS: enable (or retune)
  // per-broker sampling without touching the environment and without the
  // CSV side channel (the CSV is still written when the env var set the
  // interval). <= 0 disables. Takes effect at the next run() if sampling is
  // not yet scheduled this epoch, else at the next redeploy.
  void set_sample_interval_ms(double ms);
  // Accumulated sample rows, in canonical (time, broker) order; rows are
  // appended by run() and survive redeploys, so consumers (the elastic
  // controller) read incrementally from their last row index.
  [[nodiscard]] const obs::TimeSeriesSampler& samples() const { return sampler_; }

  [[nodiscard]] Broker& broker(BrokerId id);
  [[nodiscard]] const Broker& broker(BrokerId id) const;

  // Event-queue shards actually in use this epoch (1 = single-threaded).
  [[nodiscard]] std::size_t shard_count() const { return loop_.shard_count(); }

  // BIA payload for one broker (what its CBC currently knows).
  [[nodiscard]] BrokerInfo broker_info(BrokerId id) const;

  // --- fault injection ---
  // Arm a fault script for the current epoch: its events fire on the sim
  // clock interleaved with regular traffic. Also enables the publication
  // ledger. An empty schedule arms nothing and draws nothing, so the event
  // stream stays bit-identical to a run without faults. redeploy() clears
  // any remaining scheduled faults along with the rest of the queue —
  // install a fresh schedule per epoch.
  void install_faults(FaultSchedule schedule, FaultOptions options = {});
  // Apply one fault right now (tests, mid-apply chaos probes).
  void inject_fault(FaultEvent ev);
  [[nodiscard]] const FaultState& fault_state() const { return faults_; }
  // In the deployment and not currently crashed.
  [[nodiscard]] bool broker_alive(BrokerId id) const;
  // BIA if the broker answers; nullopt while it is crashed (Phase 1's
  // per-broker timeout expires against a dead CBC).
  [[nodiscard]] std::optional<BrokerInfo> broker_info_if_reachable(BrokerId id) const;
  // Just the CBC's structural profile epoch — the cheap probe an
  // epoch-based incremental gather sends before asking for a full BIA.
  [[nodiscard]] std::optional<std::uint64_t> broker_epoch_if_reachable(BrokerId id) const;

  // Retransmit-buffer cap in force for one broker: the explicit
  // FaultOptions cap when nonzero, else the profile-derived cap (see
  // FaultOptions::max_retransmit_buffer).
  [[nodiscard]] std::size_t retransmit_cap(BrokerId b) const;

  // --- publication ledger (delivery-loss oracle) ---
  // One row per publication emitted this epoch; enabled by install_faults()
  // or explicitly. Recording is observation-only: the event stream is
  // untouched. Rows are kept in canonical (at, adv, seq) order.
  struct PublishRecord {
    AdvId adv;
    MessageSeq seq = 0;
    SimTime at = 0;
    bool dropped_at_source = false;  // publisher's home broker was down
  };
  void set_publication_ledger(bool enabled) { ledger_enabled_ = enabled; }
  [[nodiscard]] const std::vector<PublishRecord>& publish_ledger() const {
    return publish_ledger_;
  }
  // (adv, seq) pairs sitting in retransmit buffers, awaiting a restart.
  [[nodiscard]] std::set<std::pair<AdvId, MessageSeq>> pending_retransmits() const;
  // (adv, seq) pairs parked in degraded-mode admission buffers, awaiting a
  // backlog drain (FaultOptions::admission_control).
  [[nodiscard]] std::set<std::pair<AdvId, MessageSeq>> pending_admissions() const;
  // Publications shed by admission control (deferred-buffer cap hit).
  [[nodiscard]] std::set<std::pair<AdvId, MessageSeq>> shed_publications() const;
  // Messages that were waiting in retransmit/deferred buffers when a
  // redeploy cleared them (the buffering broker was decommissioned
  // mid-outage). Cumulative across the sim's life; the loss oracle excuses
  // these instead of reporting silent losses.
  [[nodiscard]] const std::set<std::pair<AdvId, MessageSeq>>& stranded_messages() const {
    return stranded_;
  }
  // Current position of the sim clock (end of the last run horizon).
  [[nodiscard]] SimTime now_us() const { return loop_.now(); }

  [[nodiscard]] SimSummary summarize() const;
  void reset_metrics();

  // Total simulated seconds measured since the last metrics reset.
  [[nodiscard]] double measured_seconds() const { return measured_s_; }

  // Discrete events executed since construction (bench instrumentation).
  // Shard-replicated bookkeeping events (fault replicas, per-shard sampler
  // ticks beyond shard 0) are excluded, so the count is identical for any
  // worker count.
  [[nodiscard]] std::size_t events_executed() const;

 private:
  struct Shard;

  // One deployed broker plus everything the sharded loop needs to schedule
  // and execute its events deterministically: the owning shard, a dense
  // ordinal feeding event keys, the per-source key sequence, and a private
  // RNG stream for probabilistic link drops (a shared stream's draw order
  // would depend on the shard interleaving).
  struct BrokerSlot {
    std::unique_ptr<Broker> broker;
    Shard* shard = nullptr;
    std::uint64_t ord = 0;
    std::uint64_t key_seq = 0;
    Rng drop_rng{0};
  };

  struct PublisherState {
    PublisherSpec spec;
    MessageSeq next_seq = 0;
    // Node in seq_ pre-inserted at redeploy (stable address), so publishing
    // never touches the map structure from a worker thread.
    MessageSeq* seq_slot = nullptr;
    BrokerSlot* home = nullptr;  // publisher events run on the home's shard
    Shard* shard = nullptr;
    std::uint64_t ord = 0;
    std::uint64_t key_seq = 0;
  };

  // A message held at a crashed broker, awaiting restart (retransmit).
  struct BufferedArrival {
    std::shared_ptr<const Publication> pub;
    BrokerId from{};
    bool has_from = false;
    bool is_delivery = false;  // final hop: deliver to `sub` on replay
    SubId sub{};
    int broker_hops = 0;
    SimTime publish_time = 0;
  };

  // A publication parked at its home broker's door by degraded-mode
  // admission control, awaiting a backlog drain.
  struct DeferredPub {
    std::shared_ptr<Publication> pub;
    SimTime published_at = 0;  // original publish time (delay accounting)
  };

  struct DeferredQueue {
    std::deque<DeferredPub> entries;
    bool drain_scheduled = false;
  };

  // Previous-sample counters so each sample reports per-interval deltas.
  struct SampleBaseline {
    std::uint64_t msgs_in = 0;
    std::uint64_t msgs_out = 0;
    SimTime busy_us = 0;
  };

  // Everything one worker owns. All hot-path state a broker's events touch
  // lives on its owning shard, so the only cross-thread traffic during a
  // run is the engine's outbox exchange (plus publication-pool frees).
  // Master views (metrics_, faults_, publish_ledger_, sampler_) are rebuilt
  // from the shards after every run().
  struct Shard {
    std::size_t index = 0;
    MetricsCollector metrics;
    // Fault-state replica: every shard applies every fault event (its own
    // brokers' hot paths need the crash/link state), but only shard 0
    // records stats and outage windows.
    FaultState faults;
    SubscriptionRoutingTable::MatchResult route_scratch;
    MatchScratch match_scratch;
    // Candidate evaluator for parallel intra-broker matching (null when
    // disabled): a HelpQueueEvaluator over the simulation's help queue in
    // sharded runs, a PoolCandidateEvaluator in single-shard runs.
    std::unique_ptr<CandidateEvaluator> evaluator;
    PublicationPool pub_pool;
    std::vector<PublishRecord> ledger;
    std::unordered_map<BrokerId, std::vector<BufferedArrival>> retransmit;
    std::unordered_map<BrokerId, DeferredQueue> deferred;
    std::set<std::pair<AdvId, MessageSeq>> shed;  // admission-shed this epoch
    std::unordered_map<BrokerId, SampleBaseline> sample_baselines;
    std::vector<BrokerId> owned_sorted;  // brokers owned, ascending id
    obs::TimeSeriesSampler sampler{
        "broker", {"in_rate_msg_s", "out_rate_msg_s", "queue_backlog_s", "bw_utilization"}};
    std::uint64_t sampler_key_seq = 0;
    // Replicated bookkeeping events executed here (excluded from
    // events_executed()), and per-run match-walk harvest scratch.
    std::size_t aux_events = 0;
    std::size_t walk_base = 0;
    std::size_t walk_delta = 0;
  };

  void install_routing();
  // Shard count for the current deployment: the resolved worker request,
  // clamped and guarded (see SimOptions::workers).
  [[nodiscard]] std::size_t pick_shard_count() const;
  // Minimum cross-shard event distance: one link latency plus the smallest
  // matching service time (any broker-to-broker forward pays both).
  [[nodiscard]] SimTime shard_lookahead() const;
  void ensure_pool();
  // Fold per-shard metrics/faults/ledger/sampler rows into the master
  // views, in canonical order (called after every run()).
  void rebuild_master_state();
  void rebuild_fault_view();
  // Capture per-broker message rates from the current metrics window
  // (feeds derived retransmit caps in the next epoch).
  void snapshot_profiled_rates();
  void derive_retransmit_caps(const FaultSchedule& schedule);
  // Periodic per-broker time-series sampling (GREENPS_OBS_SAMPLE_MS): one
  // self-rescheduling event per shard snapshots message rates, output-queue
  // backlog and bandwidth utilization. Inert (no events scheduled) when
  // disabled, so the event stream — and thus every allocation decision —
  // is unchanged by default.
  void schedule_sample(Shard& sh, SimTime at);
  void take_sample(Shard& sh);
  void schedule_publisher(std::size_t pub_index, SimTime first);
  void publish(std::size_t pub_index);
  // Fire one fault on one shard's replica: flip its FaultState, sync the
  // Broker object if this shard owns it, and (shard 0 only) emit obs
  // trace/metrics. On restart the owner shard replays buffered messages.
  void apply_fault(const FaultEvent& ev, Shard& sh);
  void buffer_for_retransmit(Shard& sh, BrokerId at, BufferedArrival&& entry);
  void replay_retransmits(BrokerSlot& slot);
  // Degraded-mode admission control: park a fresh publication at its home
  // broker's door, and the self-rescheduling per-broker drain that
  // re-injects parked publications once the backlog recedes.
  void defer_publication(BrokerSlot& home, std::shared_ptr<Publication> pub,
                         SimTime published_at);
  void schedule_admission_drain(BrokerSlot& slot);
  void drain_admissions(BrokerSlot& slot);
  // Sweep retransmit/deferred buffers into stranded_ (redeploy is about to
  // clear the shards that hold them).
  void sweep_stranded();
  // `slot` is resolved at schedule time (broker storage is stable between
  // redeploys and the queues are cleared on redeploy), saving an id lookup
  // per hop and per delivery on the hot path.
  void arrive_at_broker(BrokerSlot& slot, std::shared_ptr<const Publication> pub,
                        BrokerId from, bool has_from, int broker_hops,
                        SimTime publish_time);

  Deployment deployment_;
  StockQuoteGenerator quotes_;
  NetworkConfig net_;
  std::size_t workers_ = 1;  // resolved request; per-epoch count may be lower
  // Resolved parallel-matching threshold (SIZE_MAX = disabled).
  std::size_t match_threshold_ = ~std::size_t{0};
  // unique_ptr: keeps Simulation movable (atomics inside) and the address
  // stable for the per-shard evaluators referencing it.
  std::unique_ptr<MatchHelpQueue> help_queue_ = std::make_unique<MatchHelpQueue>();
  // Dedicated matching pool for single-shard runs with a threshold set
  // (created lazily; the shard pool is busy driving the event loop during
  // sharded runs, so those donate barrier idle time instead).
  std::unique_ptr<ThreadPool> match_pool_;
  ShardedEventLoop loop_;
  // unique_ptr keeps Shard addresses stable across vector moves — scheduled
  // closures and BrokerSlots hold raw Shard pointers.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily on the first sharded run
  MetricsCollector metrics_;  // master view (see rebuild_master_state)
  std::unordered_map<BrokerId, BrokerSlot> brokers_;
  std::vector<PublisherState> publishers_;
  // Sequence numbers survive redeploys (bit vector counters stay in sync).
  std::unordered_map<AdvId, MessageSeq> seq_;
  // Brokers hosting at least one client, precomputed at redeploy() so the
  // pure-forwarder check in summarize() is O(1) per broker instead of
  // rescanning every publisher/subscriber spec.
  std::unordered_set<BrokerId> client_hosts_;
  double measured_s_ = 0;
  bool publishers_scheduled_ = false;

  // --- fault injection state ---
  // `faults_active_` gates every hook on the hot path: when false (no
  // schedule installed this epoch) the simulator takes exactly the same
  // branches and draws exactly the same random numbers as a build without
  // fault support, keeping fault-free runs bit-identical.
  bool faults_active_ = false;
  // Degraded-mode admission control armed (FaultOptions::admission_control
  // via install_faults). Gated separately from faults_active_ so overload
  // backpressure works without any fault event armed; false by default, so
  // the publish path is bit-identical to an admission-free build.
  bool admission_active_ = false;
  FaultOptions fault_options_;
  FaultState faults_;  // master view
  std::uint64_t fault_key_seq_ = 0;  // shared event key per replicated fault
  bool ledger_enabled_ = false;
  std::vector<PublishRecord> publish_ledger_;  // master view
  // Per-broker message rate (msgs/s) captured from the previous metrics
  // window; sizes derived retransmit caps for the next fault epoch.
  std::unordered_map<BrokerId, double> profiled_rate_;
  std::unordered_map<BrokerId, std::size_t> retransmit_caps_;
  // Buffered messages orphaned by redeploys (see stranded_messages()).
  std::set<std::pair<AdvId, MessageSeq>> stranded_;
  std::uint64_t stranded_total_ = 0;

  obs::TimeSeriesSampler sampler_{
      "broker", {"in_rate_msg_s", "out_rate_msg_s", "queue_backlog_s", "bw_utilization"}};
  SimTime sample_interval_us_ = obs::TimeSeriesSampler::interval_us_from_env();
  bool sampler_scheduled_ = false;
  // CSV rendering is tied to the env-var path (offline plotting); callers
  // of set_sample_interval_ms get the in-memory rows only.
  bool sampler_csv_ = sample_interval_us_ > 0;
};

}  // namespace greenps
