// Conservative parallel driver for a set of per-shard event queues.
//
// Chandy–Misra–Bryant-style windowing without null messages: every shard
// advances to a common safe horizon H = min(next event time over all
// shards) + lookahead, drains its own queue strictly below H, and then the
// shards exchange cross-shard events at a barrier before opening the next
// window. The caller guarantees the lookahead contract: any event posted
// from shard A to shard B carries a timestamp at least `lookahead` after
// the posting event's own timestamp (in the simulator, one network-link
// latency plus the minimum matching service time). Under that contract no
// exchanged event can land inside the window that produced it, so each
// shard's (time, key) execution order — and with content-derived EventKeys,
// the entire simulation — is bit-identical to a single-queue run.
//
// Threads: run() drives all shards through a ThreadPool in static-slot
// mode (shard s on thread s, the caller being shard 0). Outside run() the
// owner thread may touch any queue directly. With one shard, run() is a
// plain serial drain with zero synchronization.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "sim/event_queue.hpp"

namespace greenps {

// Sense-reversing spin barrier for the window loop: the crossings are a few
// hundred nanoseconds apart, far cheaper than futex sleeps at this cadence.
// Yields after a bounded spin so oversubscribed runs (more shards than
// cores) still progress at scheduler speed instead of burning quanta.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  // `idle_poll` (optional): invoked while spinning; return true if it did
  // useful work, which resets the spin budget. The simulator points it at
  // the match-help queue so shards waiting at a window barrier donate their
  // idle cycles to hot brokers' candidate evaluation instead of burning
  // them.
  void arrive_and_wait(const std::function<bool()>* idle_poll = nullptr);

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

class ShardedEventLoop {
 public:
  explicit ShardedEventLoop(std::size_t shards = 1) { reset(shards); }

  // Drop every queue and outbox and rebuild with `shards` shards.
  void reset(std::size_t shards);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] EventQueue& queue(std::size_t s) { return shards_[s].queue; }
  [[nodiscard]] const EventQueue& queue(std::size_t s) const { return shards_[s].queue; }
  // Shard 0's clock; all shards agree outside run().
  [[nodiscard]] SimTime now() const { return shards_[0].queue.now(); }
  // Total events executed across all shards.
  [[nodiscard]] std::size_t executed() const;

  // Schedule onto shard `dst` from shard `src`'s event handler during
  // run(). Cross-shard posts land in a lock-free outbox lane and merge into
  // `dst` at the next window barrier; `time` must respect the lookahead
  // contract. src == dst schedules directly.
  void post(std::size_t src, std::size_t dst, SimTime time, EventKey key,
            EventQueue::Action action);

  // Drain every shard to `end` (inclusive), leaving all clocks at `end`.
  // Events scheduled past `end` (including exchanged ones) stay queued for
  // the next run. With more than one shard, `lookahead` must be > 0 and
  // `pool` must provide at least shard_count() threads. `on_slot_begin` /
  // `on_slot_end` (optional) run on each shard's thread around its drain —
  // the simulator uses them to harvest thread-local counters. `idle_poll`
  // (optional) runs on shard threads spinning at the window barriers — the
  // work-donation hook (see SpinBarrier::arrive_and_wait).
  void run(SimTime end, SimTime lookahead, ThreadPool* pool,
           const std::function<void(std::size_t)>& on_slot_begin = {},
           const std::function<void(std::size_t)>& on_slot_end = {},
           const std::function<bool()>& idle_poll = {});

 private:
  struct Posted {
    SimTime time;
    EventKey key;
    EventQueue::Action action;
  };
  // Cache-line aligned so one shard's heap churn does not false-share with
  // its neighbors' queue headers.
  struct alignas(64) Shard {
    EventQueue queue;
    // out[dst]: events posted to shard `dst` during the current window,
    // written only by this shard's thread, drained only by `dst` after the
    // window barrier.
    std::vector<std::vector<Posted>> out;
  };

  void run_windows(SimTime end, SimTime lookahead, std::size_t slot, SpinBarrier& barrier,
                   const std::function<bool()>* idle_poll);

  std::vector<Shard> shards_;
  std::vector<SimTime> next_times_;  // window negotiation, one slot per shard
};

}  // namespace greenps
