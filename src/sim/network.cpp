#include "sim/network.hpp"

// Configuration-only today; translation unit kept to anchor the target.
