// Measurement of the quantities the paper's evaluation reports: per-broker
// message rates, publication hop counts, end-to-end delivery delays, and
// broker utilization.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace greenps {

// Delivery-latency histogram: a sim-flavored view over the observability
// subsystem's log-bucketed histogram (obs::LogHistogram), keeping the
// historical shape — 120 buckets spanning 100 us * 1.15^i, i.e. 100 us to
// ~2 min — and the ms-denominated percentile API.
class DelayHistogram {
 public:
  DelayHistogram() : hist_(kFirstBucketUs, kGrowth, kBuckets) {}

  void record(SimTime delay);
  // Estimated delay (in ms) below which `fraction` of samples fall.
  [[nodiscard]] double percentile_ms(double fraction) const {
    return hist_.samples() == 0 ? 0.0 : hist_.percentile(fraction) / 1000.0;
  }
  [[nodiscard]] std::uint64_t samples() const { return hist_.samples(); }
  // Add another histogram's samples (integer bucket counts, so merging is
  // order-free — the sharded simulator reduces per-shard histograms).
  void merge(const DelayHistogram& other) { hist_.merge(other.hist_); }
  void reset() { hist_.reset(); }

 private:
  static constexpr std::size_t kBuckets = 120;
  static constexpr double kFirstBucketUs = 100.0;
  static constexpr double kGrowth = 1.15;

  obs::LogHistogram hist_;
};

struct BrokerTraffic {
  std::uint64_t msgs_in = 0;        // publications processed (matched)
  std::uint64_t msgs_out = 0;       // copies sent (to brokers and clients)
  std::uint64_t local_deliveries = 0;
  std::uint64_t hop_total = 0;      // broker hops summed over local deliveries
  // Delivery delay summed per broker. Floating-point addition is
  // order-sensitive, so the global total is always reduced from these
  // per-broker sums in ascending broker-id order — each broker's delivery
  // order is shard-invariant, which makes the reduced total bit-identical
  // for any worker count.
  double delay_total_s = 0;
};

// Aggregate summary over one measurement window.
struct SimSummary {
  double duration_s = 0;
  std::size_t brokers_with_traffic = 0;
  std::size_t allocated_brokers = 0;  // brokers present in the deployment
  std::uint64_t publications = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t broker_msgs_total = 0;  // sum over brokers of in+out
  double avg_broker_msg_rate = 0;       // broker_msgs_total / duration / allocated
  double system_msg_rate = 0;           // broker_msgs_total / duration
  double avg_hop_count = 0;             // brokers traversed per delivery
  double avg_delivery_delay_ms = 0;
  double p50_delivery_delay_ms = 0;
  double p99_delivery_delay_ms = 0;
  double avg_output_utilization = 0;    // mean busy fraction of output links
  std::size_t pure_forwarding_brokers = 0;
  std::uint64_t retransmit_overflow = 0;  // retransmit-buffer drops (faulted runs)
  // Degraded-mode admission control (faulted runs; zero otherwise):
  std::uint64_t pubs_deferred = 0;   // publications parked at the door
  std::uint64_t pubs_shed = 0;       // deferred-buffer cap hit; shed
  // Messages swept out of retransmit/deferred buffers by a redeploy that
  // decommissioned the buffering broker (cumulative over the sim's life;
  // reclassified as excused by the loss oracle rather than silently lost).
  std::uint64_t msgs_stranded = 0;
};

class MetricsCollector {
 public:
  void on_broker_process(BrokerId b) { traffic_[b].msgs_in += 1; }
  void on_broker_send(BrokerId b) { traffic_[b].msgs_out += 1; }
  // One lookup for a burst of updates: the simulator fetches a broker's
  // counters once per publication arrival instead of hashing the id for
  // every copy sent.
  [[nodiscard]] BrokerTraffic& traffic_for(BrokerId b) { return traffic_[b]; }
  void on_publication() { publications_ += 1; }
  void on_delivery(BrokerId last_broker, int broker_hops, SimTime delay);

  [[nodiscard]] const std::unordered_map<BrokerId, BrokerTraffic>& traffic() const {
    return traffic_;
  }
  [[nodiscard]] std::uint64_t publications() const { return publications_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] double avg_hops() const;
  [[nodiscard]] double avg_delay_ms() const;
  [[nodiscard]] const DelayHistogram& delay_histogram() const { return delays_; }

  // Fold another collector in (disjoint broker sets in the sharded
  // simulator; integer counters and per-broker partial sums, so the merged
  // collector is independent of merge order up to map iteration order,
  // which no consumer observes).
  void merge_from(const MetricsCollector& other);

  void reset();

 private:
  std::unordered_map<BrokerId, BrokerTraffic> traffic_;
  std::uint64_t publications_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t hop_total_ = 0;
  DelayHistogram delays_;
};

}  // namespace greenps
