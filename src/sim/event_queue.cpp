#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace greenps {

void EventQueue::schedule(SimTime time, Action action) {
  assert(time >= now_);
  heap_.push(Event{time, next_seq_++, std::move(action)});
}

std::size_t EventQueue::run_until(SimTime end) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().time <= end) {
    // Move the action out before popping so it can schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.action();
    ++count;
    ++executed_;
  }
  now_ = end;
  return count;
}

void EventQueue::clear() {
  heap_ = {};
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
}

}  // namespace greenps
