#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

#include "obs/clock.hpp"

namespace greenps {

void EventQueue::schedule(SimTime time, Action action) {
  assert(time >= now_);
  heap_.push(Event{time, EventKey{kInsertionClass << 56, next_seq_++}, std::move(action)});
}

void EventQueue::schedule_keyed(SimTime time, EventKey key, Action action) {
  assert(time >= now_);
  assert(key.hi < (kInsertionClass << 56));
  heap_.push(Event{time, key, std::move(action)});
}

void EventQueue::pop_and_run() {
  // Move the action out before popping so it can schedule new events.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.time;
  // Publish sim time to the obs clock so log lines and trace events
  // emitted from inside event handlers carry the simulated timestamp.
  obs::set_sim_time_us(now_);
  ev.action();
  ++executed_;
}

std::size_t EventQueue::run_until(SimTime end) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().time <= end) {
    pop_and_run();
    ++count;
  }
  now_ = end;
  obs::clear_sim_time();
  return count;
}

std::size_t EventQueue::run_before(SimTime horizon) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().time < horizon) {
    pop_and_run();
    ++count;
  }
  return count;
}

void EventQueue::clear() {
  heap_ = {};
  now_ = 0;
  next_seq_ = 0;
  executed_ = 0;
}

}  // namespace greenps
