// Recycling pool for the simulator's shared publications.
//
// Every publication is passed around as shared_ptr<const Publication>; with
// make_shared each one costs a combined control-block+object allocation that
// malloc must serve and tear down per message. The pool hands those fixed-
// size blocks back out instead: once the simulation reaches steady state
// (free list warm), acquiring a publication performs no allocation at all.
// Blocks are returned when the last reference drops, wherever that happens;
// the shared State keeps the free list alive until the final publication
// dies, so pooled publications may safely outlive the pool and the
// simulation that created them. The free list is mutex-protected: in the
// sharded simulation a publication's last reference can drop on any worker
// thread (the receiving shard of a cross-shard forward), not just the one
// that acquired it.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "language/publication.hpp"

namespace greenps {

class PublicationPool {
 public:
  // A recycled (or fresh) empty publication with unique ownership.
  [[nodiscard]] std::shared_ptr<Publication> acquire() {
    return std::allocate_shared<Publication>(Alloc<Publication>{state_});
  }

  [[nodiscard]] std::size_t free_blocks() const {
    const std::lock_guard<std::mutex> lk(state_->mu);
    return state_->free.size();
  }

 private:
  struct State {
    std::mutex mu;                // guards free + block_size
    std::vector<void*> free;      // blocks of block_size bytes each
    std::size_t block_size = 0;   // set by the first allocation
    ~State() {
      for (void* p : free) ::operator delete(p);
    }
  };

  // Minimal allocator: allocate_shared rebinds it to the library's internal
  // "object + control block" type, so every n==1 allocation it ever makes
  // has one fixed size — exactly what the free list recycles.
  template <typename T>
  struct Alloc {
    using value_type = T;

    std::shared_ptr<State> state;

    explicit Alloc(std::shared_ptr<State> s) : state(std::move(s)) {}
    template <typename U>
    Alloc(const Alloc<U>& other) : state(other.state) {}  // NOLINT

    T* allocate(std::size_t n) {
      if (n == 1) {
        const std::lock_guard<std::mutex> lk(state->mu);
        if (state->block_size == sizeof(T) && !state->free.empty()) {
          void* p = state->free.back();
          state->free.pop_back();
          return static_cast<T*>(p);
        }
        state->block_size = sizeof(T);
      }
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }

    void deallocate(T* p, std::size_t n) {
      if (n == 1) {
        const std::lock_guard<std::mutex> lk(state->mu);
        if (state->block_size == sizeof(T)) {
          state->free.push_back(p);
          return;
        }
      }
      ::operator delete(p);
    }

    template <typename U>
    friend bool operator==(const Alloc& a, const Alloc<U>& b) {
      return a.state == b.state;
    }
  };

  std::shared_ptr<State> state_ = std::make_shared<State>();
};

}  // namespace greenps
