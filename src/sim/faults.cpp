#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace greenps {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kBrokerCrash: return "crash";
    case FaultKind::kBrokerRestart: return "restart";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkDrop: return "link_drop";
    case FaultKind::kLatencySpike: return "latency_spike";
  }
  return "?";
}

FaultSchedule& FaultSchedule::crash(SimTime at, BrokerId b) {
  events_.push_back(FaultEvent{at, FaultKind::kBrokerCrash, b, {}, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::restart(SimTime at, BrokerId b) {
  events_.push_back(FaultEvent{at, FaultKind::kBrokerRestart, b, {}, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::outage(SimTime at, SimTime outage_len, BrokerId b) {
  crash(at, b);
  restart(at + outage_len, b);
  return *this;
}

FaultSchedule& FaultSchedule::link_down(SimTime at, BrokerId a, BrokerId b) {
  events_.push_back(FaultEvent{at, FaultKind::kLinkDown, a, b, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::link_up(SimTime at, BrokerId a, BrokerId b) {
  events_.push_back(FaultEvent{at, FaultKind::kLinkUp, a, b, 0, 0});
  return *this;
}

FaultSchedule& FaultSchedule::link_drop(SimTime at, BrokerId a, BrokerId b, double p) {
  events_.push_back(FaultEvent{at, FaultKind::kLinkDrop, a, b, p, 0});
  return *this;
}

FaultSchedule& FaultSchedule::latency_spike(SimTime at, SimTime extra) {
  events_.push_back(FaultEvent{at, FaultKind::kLatencySpike, {}, {}, 0, extra});
  return *this;
}

FaultSchedule FaultSchedule::chaos(const ChaosConfig& config,
                                   const std::vector<BrokerId>& brokers,
                                   const std::vector<std::pair<BrokerId, BrokerId>>& links,
                                   Rng& rng) {
  FaultSchedule s;
  const SimTime horizon = seconds(config.horizon_s);
  if (horizon <= 0) return s;

  // Crash/restart pairs; a broker is never crashed again before its restart.
  std::unordered_map<BrokerId, SimTime> busy_until;
  for (std::size_t i = 0; i < config.crashes && !brokers.empty(); ++i) {
    const BrokerId b = brokers[rng.index(brokers.size())];
    // Crash inside the first 70% of the horizon so the restart (and some
    // recovery traffic) fits before the end.
    const SimTime at = static_cast<SimTime>(
        rng.uniform_real(0.05, 0.70) * static_cast<double>(horizon));
    if (at < busy_until[b]) continue;  // deterministic skip, not a retry
    SimTime len = seconds(rng.uniform_real(0.3, 1.7) * config.mean_outage_s);
    len = std::clamp<SimTime>(len, seconds(0.05), horizon - at - horizon / 10);
    if (len <= 0) continue;
    s.outage(at, len, b);
    busy_until[b] = at + len;
  }

  for (std::size_t i = 0; i < config.link_flaps && !links.empty(); ++i) {
    const auto [a, b] = links[rng.index(links.size())];
    const SimTime at = static_cast<SimTime>(
        rng.uniform_real(0.05, 0.70) * static_cast<double>(horizon));
    SimTime len = seconds(rng.uniform_real(0.3, 1.7) * config.mean_link_outage_s);
    len = std::clamp<SimTime>(len, seconds(0.05), horizon - at - horizon / 10);
    if (len <= 0) continue;
    s.link_down(at, a, b);
    s.link_up(at + len, a, b);
  }

  for (std::size_t i = 0; i < config.drop_windows && !links.empty(); ++i) {
    const auto [a, b] = links[rng.index(links.size())];
    const SimTime at = static_cast<SimTime>(
        rng.uniform_real(0.05, 0.80) * static_cast<double>(horizon));
    const SimTime len = std::max<SimTime>(
        seconds(rng.uniform_real(0.3, 1.7) * config.mean_link_outage_s), seconds(0.05));
    s.link_drop(at, a, b, config.drop_prob);
    s.link_drop(std::min(at + len, horizon - 1), a, b, 0.0);
  }

  for (std::size_t i = 0; i < config.latency_spikes; ++i) {
    const SimTime at = static_cast<SimTime>(
        rng.uniform_real(0.05, 0.80) * static_cast<double>(horizon));
    const SimTime len = std::max<SimTime>(
        seconds(rng.uniform_real(0.3, 1.7) * config.mean_spike_s), seconds(0.05));
    s.latency_spike(at, seconds(config.spike_extra_s));
    s.latency_spike(std::min(at + len, horizon - 1), 0);
  }

  // Stable order: by time, ties by insertion (matches the event queue).
  std::stable_sort(s.events_.begin(), s.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return s;
}

void FaultStats::add(const FaultStats& other) {
  crashes += other.crashes;
  restarts += other.restarts;
  link_downs += other.link_downs;
  link_ups += other.link_ups;
  pubs_dropped_at_source += other.pubs_dropped_at_source;
  arrivals_dropped += other.arrivals_dropped;
  deliveries_dropped += other.deliveries_dropped;
  msgs_dropped_link_down += other.msgs_dropped_link_down;
  msgs_dropped_random += other.msgs_dropped_random;
  retransmits_replayed += other.retransmits_replayed;
  retransmit_overflow += other.retransmit_overflow;
  pubs_deferred_admission += other.pubs_deferred_admission;
  pubs_readmitted += other.pubs_readmitted;
  pubs_shed_admission += other.pubs_shed_admission;
}

void FaultState::apply(const FaultEvent& ev, bool record) {
  switch (ev.kind) {
    case FaultKind::kBrokerCrash:
      if (crashed_.insert(ev.broker).second && record) {
        stats_.crashes += 1;
        outages_.push_back(OutageWindow{ev.broker, ev.at, -1});
      }
      break;
    case FaultKind::kBrokerRestart:
      if (crashed_.erase(ev.broker) > 0 && record) {
        stats_.restarts += 1;
        // Close the most recent open window for this broker.
        for (auto it = outages_.rbegin(); it != outages_.rend(); ++it) {
          if (it->broker == ev.broker && it->end < 0) {
            it->end = ev.at;
            break;
          }
        }
      }
      break;
    case FaultKind::kLinkDown:
      if (down_links_.insert(link_key(ev.broker, ev.peer)).second && record) {
        stats_.link_downs += 1;
      }
      break;
    case FaultKind::kLinkUp:
      if (down_links_.erase(link_key(ev.broker, ev.peer)) > 0 && record) stats_.link_ups += 1;
      break;
    case FaultKind::kLinkDrop:
      if (ev.drop_prob > 0) {
        drop_probs_[link_key(ev.broker, ev.peer)] = ev.drop_prob;
      } else {
        drop_probs_.erase(link_key(ev.broker, ev.peer));
      }
      break;
    case FaultKind::kLatencySpike:
      extra_latency_ = ev.extra_latency;
      break;
  }
}

double FaultState::drop_prob(BrokerId a, BrokerId b) const {
  if (drop_probs_.empty()) return 0;
  const auto it = drop_probs_.find(link_key(a, b));
  return it != drop_probs_.end() ? it->second : 0;
}

bool FaultState::in_outage(BrokerId b, SimTime t, SimTime slack_before) const {
  for (const OutageWindow& w : outages_) {
    if (w.broker != b) continue;
    if (t >= w.begin - slack_before && (w.end < 0 || t <= w.end)) return true;
  }
  return false;
}

void FaultState::reset() {
  crashed_.clear();
  down_links_.clear();
  drop_probs_.clear();
  extra_latency_ = 0;
  outages_.clear();
  stats_ = FaultStats{};
}

}  // namespace greenps
