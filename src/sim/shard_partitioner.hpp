// Topology-aware shard partitioner for the sharded simulator.
//
// Assigns every broker to one of `shard_count` shards so that (a) shard
// loads are balanced by a per-broker weight (1 + clients hosted, a proxy
// for event volume) and (b) few overlay links cross shards. The overlay is
// a tree in every deployed configuration, so a DFS order visits each
// subtree contiguously; cutting that order into consecutive weight-balanced
// blocks keeps most links internal (a path graph cut into k blocks has
// exactly k-1 cross links, the optimum). The whole procedure is
// deterministic — sorted roots, sorted neighbor visits — because the shard
// assignment feeds the deterministic event-key layout.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "overlay/topology.hpp"

namespace greenps {

struct ShardPlan {
  // shards[s] = brokers owned by shard s, sorted by id. Every shard is
  // non-empty when shard_count <= broker count.
  std::vector<std::vector<BrokerId>> shards;
  // Overlay links whose endpoints land on different shards.
  std::size_t cross_links = 0;

  // Shard index owning broker `b` (must be in the plan).
  [[nodiscard]] std::size_t shard_of(BrokerId b) const { return owner.at(b); }
  std::unordered_map<BrokerId, std::size_t> owner;
};

// `extra_weight` adds per-broker load on top of the implicit weight of 1
// (the simulator passes the number of clients homed on each broker).
// shard_count is clamped to [1, broker_count].
[[nodiscard]] ShardPlan partition_brokers(
    const Topology& topology,
    const std::unordered_map<BrokerId, std::size_t>& extra_weight,
    std::size_t shard_count);

}  // namespace greenps
