#include "sim/metrics.hpp"

#include <algorithm>
#include <vector>

namespace greenps {

void DelayHistogram::record(SimTime delay) {
  // Sub-microsecond delays count as 1 us, preserving the historical floor.
  hist_.record(static_cast<double>(std::max<SimTime>(delay, 1)));
}

void MetricsCollector::on_delivery(BrokerId last_broker, int broker_hops, SimTime delay) {
  BrokerTraffic& t = traffic_[last_broker];
  t.local_deliveries += 1;
  t.hop_total += static_cast<std::uint64_t>(broker_hops);
  t.delay_total_s += to_seconds(delay);
  deliveries_ += 1;
  hop_total_ += static_cast<std::uint64_t>(broker_hops);
  delays_.record(delay);
}

double MetricsCollector::avg_hops() const {
  return deliveries_ == 0 ? 0.0
                          : static_cast<double>(hop_total_) / static_cast<double>(deliveries_);
}

double MetricsCollector::avg_delay_ms() const {
  if (deliveries_ == 0) return 0.0;
  // Reduce per-broker sums in ascending id order: the only deterministic
  // order for a floating-point total (see BrokerTraffic::delay_total_s).
  std::vector<const std::pair<const BrokerId, BrokerTraffic>*> entries;
  entries.reserve(traffic_.size());
  for (const auto& e : traffic_) entries.push_back(&e);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  double total_s = 0;
  for (const auto* e : entries) total_s += e->second.delay_total_s;
  return total_s * 1000.0 / static_cast<double>(deliveries_);
}

void MetricsCollector::merge_from(const MetricsCollector& other) {
  for (const auto& [b, t] : other.traffic_) {
    BrokerTraffic& mine = traffic_[b];
    mine.msgs_in += t.msgs_in;
    mine.msgs_out += t.msgs_out;
    mine.local_deliveries += t.local_deliveries;
    mine.hop_total += t.hop_total;
    mine.delay_total_s += t.delay_total_s;
  }
  publications_ += other.publications_;
  deliveries_ += other.deliveries_;
  hop_total_ += other.hop_total_;
  delays_.merge(other.delays_);
}

void MetricsCollector::reset() {
  traffic_.clear();
  publications_ = 0;
  deliveries_ = 0;
  hop_total_ = 0;
  delays_.reset();
}

}  // namespace greenps
