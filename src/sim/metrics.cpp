#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace greenps {

std::size_t DelayHistogram::bucket_for(SimTime delay) {
  const double us = static_cast<double>(std::max<SimTime>(delay, 1));
  if (us <= kFirstBucketUs) return 0;
  const auto b = static_cast<std::size_t>(std::log(us / kFirstBucketUs) / std::log(kGrowth));
  return std::min(b + 1, kBuckets - 1);
}

void DelayHistogram::record(SimTime delay) {
  counts_[bucket_for(delay)] += 1;
  total_ += 1;
}

double DelayHistogram::percentile_ms(double fraction) const {
  if (total_ == 0) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(fraction * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) {
      // Geometric midpoint of the bucket, converted to ms.
      const double lo_us = i == 0 ? 0.0 : kFirstBucketUs * std::pow(kGrowth, i - 1);
      const double hi_us = kFirstBucketUs * std::pow(kGrowth, i);
      return (lo_us + hi_us) / 2.0 / 1000.0;
    }
  }
  return kFirstBucketUs * std::pow(kGrowth, kBuckets) / 1000.0;
}

void DelayHistogram::reset() {
  counts_.fill(0);
  total_ = 0;
}

void MetricsCollector::on_delivery(BrokerId last_broker, int broker_hops, SimTime delay) {
  traffic_[last_broker].local_deliveries += 1;
  deliveries_ += 1;
  hop_total_ += static_cast<std::uint64_t>(broker_hops);
  delay_total_s_ += to_seconds(delay);
  delays_.record(delay);
}

double MetricsCollector::avg_hops() const {
  return deliveries_ == 0 ? 0.0
                          : static_cast<double>(hop_total_) / static_cast<double>(deliveries_);
}

double MetricsCollector::avg_delay_ms() const {
  return deliveries_ == 0 ? 0.0 : delay_total_s_ * 1000.0 / static_cast<double>(deliveries_);
}

void MetricsCollector::reset() {
  traffic_.clear();
  publications_ = 0;
  deliveries_ = 0;
  hop_total_ = 0;
  delay_total_s_ = 0;
  delays_.reset();
}

}  // namespace greenps
