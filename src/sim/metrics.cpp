#include "sim/metrics.hpp"

#include <algorithm>

namespace greenps {

void DelayHistogram::record(SimTime delay) {
  // Sub-microsecond delays count as 1 us, preserving the historical floor.
  hist_.record(static_cast<double>(std::max<SimTime>(delay, 1)));
}

void MetricsCollector::on_delivery(BrokerId last_broker, int broker_hops, SimTime delay) {
  traffic_[last_broker].local_deliveries += 1;
  deliveries_ += 1;
  hop_total_ += static_cast<std::uint64_t>(broker_hops);
  delay_total_s_ += to_seconds(delay);
  delays_.record(delay);
}

double MetricsCollector::avg_hops() const {
  return deliveries_ == 0 ? 0.0
                          : static_cast<double>(hop_total_) / static_cast<double>(deliveries_);
}

double MetricsCollector::avg_delay_ms() const {
  return deliveries_ == 0 ? 0.0 : delay_total_s_ * 1000.0 / static_cast<double>(deliveries_);
}

void MetricsCollector::reset() {
  traffic_.clear();
  publications_ = 0;
  deliveries_ = 0;
  hop_total_ = 0;
  delay_total_s_ = 0;
  delays_.reset();
}

}  // namespace greenps
