#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.hpp"
#include "matching/relations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace greenps {

Simulation::Simulation(Deployment deployment, StockQuoteGenerator quotes, NetworkConfig net)
    : quotes_(std::move(quotes)), net_(net) {
  redeploy(std::move(deployment));
}

Broker& Simulation::broker(BrokerId id) {
  const auto it = brokers_.find(id);
  assert(it != brokers_.end());
  return *it->second;
}

const Broker& Simulation::broker(BrokerId id) const {
  const auto it = brokers_.find(id);
  assert(it != brokers_.end());
  return *it->second;
}

void Simulation::redeploy(Deployment deployment) {
  deployment_ = std::move(deployment);
  brokers_.clear();
  publishers_.clear();
  queue_.clear();
  metrics_.reset();
  measured_s_ = 0;
  publishers_scheduled_ = false;
  sample_baselines_.clear();
  sampler_scheduled_ = false;
  // Fault epoch ends with the deployment: pending fault events died with
  // the queue, active faults and buffers are meaningless for new brokers.
  faults_active_ = false;
  faults_.reset();
  retransmit_.clear();
  publish_ledger_.clear();
  ledger_enabled_ = false;
  for (const BrokerId b : deployment_.topology.brokers()) {
    const auto cap_it = deployment_.capacities.find(b);
    const BrokerCapacity cap =
        cap_it != deployment_.capacities.end() ? cap_it->second : BrokerCapacity{};
    brokers_.emplace(b, std::make_unique<Broker>(b, cap, deployment_.profile_window_bits));
  }
  for (const auto& spec : deployment_.publishers) {
    PublisherState st;
    st.spec = spec;
    st.next_seq = seq_.try_emplace(spec.adv, 0).first->second;
    publishers_.push_back(std::move(st));
  }
  client_hosts_.clear();
  for (const auto& sub : deployment_.subscribers) client_hosts_.insert(sub.home);
  for (const auto& pub : deployment_.publishers) client_hosts_.insert(pub.home);
  install_routing();
}

void Simulation::install_routing() {
  // Advertisement flooding: every broker learns each advertisement and the
  // direction (last hop) toward its publisher.
  for (const auto& pub : deployment_.publishers) {
    assert(deployment_.topology.has_broker(pub.home));
    // BFS tree rooted at the publisher's home broker.
    std::unordered_map<BrokerId, BrokerId> toward;  // broker -> neighbor toward home
    std::vector<BrokerId> frontier{pub.home};
    toward[pub.home] = pub.home;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const BrokerId b = frontier[head];
      for (const BrokerId n : deployment_.topology.neighbors(b)) {
        if (!toward.contains(n)) {
          toward[n] = b;
          frontier.push_back(n);
        }
      }
    }
    const Advertisement adv(pub.adv, pub.adv_filter);
    for (const auto& [b, via] : toward) {
      const Hop hop = b == pub.home ? Hop::to_client(pub.client) : Hop::to_broker(via);
      broker(b).prt().insert(adv, hop);
      // Announce to the SRT as well: it scopes matching to the candidate
      // subscriptions intersecting this advertisement.
      broker(b).srt().register_advertisement(pub.adv, pub.adv_filter);
    }
    broker(pub.home).cbc().register_publisher(pub.client, pub.adv);
  }

  // Subscription propagation: each subscription is installed at every
  // broker on the path from its home broker toward each intersecting
  // advertisement's home broker, pointing back toward the subscriber.
  for (const auto& sub : deployment_.subscribers) {
    assert(deployment_.topology.has_broker(sub.home));
    broker(sub.home).srt().insert(sub.sub, sub.filter, Hop::to_client(sub.client));
    broker(sub.home).cbc().register_subscription(sub.sub, sub.client, sub.filter);
    for (const auto& pub : deployment_.publishers) {
      if (!intersects(pub.adv_filter, sub.filter)) continue;
      const auto path = deployment_.topology.path(sub.home, pub.home);
      assert(path.has_value());
      // path[0] = sub.home; install at path[1..] pointing to path[i-1].
      for (std::size_t i = 1; i < path->size(); ++i) {
        broker((*path)[i]).srt().insert(sub.sub, sub.filter,
                                        Hop::to_broker((*path)[i - 1]));
      }
    }
  }
}

void Simulation::schedule_publisher(std::size_t pub_index, SimTime first) {
  PublisherState& st = publishers_[pub_index];
  if (st.spec.rate_msg_s <= 0) return;
  queue_.schedule(first, [this, pub_index] { publish(pub_index); });
}

void Simulation::publish(std::size_t pub_index) {
  PublisherState& st = publishers_[pub_index];
  const SimTime now = queue_.now();

  std::shared_ptr<Publication> pub = pub_pool_.acquire();
  quotes_.next_into(st.spec.symbol, *pub);
  const MessageSeq seq = st.next_seq++;
  seq_[st.spec.adv] = st.next_seq;
  pub->set_header(st.spec.adv, seq);
  metrics_.on_publication();
  Broker& home = broker(st.spec.home);
  // A crashed home broker rejects the publication at its door. The quote
  // draw and sequence increment above still happened, so the per-symbol
  // price walk and seq<->quote mapping stay aligned with a fault-free run
  // and the loss oracle can regenerate exactly what was lost.
  const bool home_down = faults_active_ && home.crashed();
  if (ledger_enabled_) publish_ledger_.push_back({st.spec.adv, seq, now, home_down});
  if (home_down) {
    faults_.stats().pubs_dropped_at_source += 1;
  } else {
    home.cbc().record_publish(st.spec.adv, seq, pub->size_kb(), now);
    const SimTime arrival = now + net_.client_latency;
    queue_.schedule(arrival, [this, pub = std::move(pub), br = &home, now] {
      arrive_at_broker(*br, pub, BrokerId{}, /*has_from=*/false, /*broker_hops=*/0, now);
    });
  }

  // Next publication, fixed inter-arrival spacing.
  const auto period = static_cast<SimTime>(
      std::llround(static_cast<double>(kMicrosPerSecond) / st.spec.rate_msg_s));
  queue_.schedule(now + std::max<SimTime>(period, 1),
                  [this, pub_index] { publish(pub_index); });
}

void Simulation::arrive_at_broker(Broker& br, std::shared_ptr<const Publication> pub,
                                  BrokerId from, bool has_from, int broker_hops,
                                  SimTime publish_time) {
  const BrokerId b = br.id();
  if (faults_active_ && br.crashed()) {
    // Messages aimed at a dead broker never enter its queues. With
    // retransmit-on-reconnect the neighbor holds the message and replays
    // it after the restart (store-and-forward); otherwise it is lost.
    faults_.stats().arrivals_dropped += 1;
    if (fault_options_.retransmit_on_reconnect) {
      buffer_for_retransmit(
          b, BufferedArrival{std::move(pub), from, has_from, /*is_delivery=*/false,
                             SubId{}, broker_hops, publish_time});
    }
    return;
  }
  BrokerTraffic& traffic = metrics_.traffic_for(b);
  traffic.msgs_in += 1;
  const int hops_here = broker_hops + 1;

  const SimTime service = br.matching_service_time();
  br.cbc().record_matching(br.srt().filter_count(), service);
  const SimTime matched_at = br.matcher().serve(queue_.now(), service);
  const BrokerId* exclude = has_from ? &from : nullptr;
  // Routing decision is computed against current tables; the simulator's
  // tables are static during a run, so evaluating now is equivalent to
  // evaluating at matched_at and avoids copying the tables into the closure.
  // The scratch result is consumed before this function returns (the
  // scheduled closures don't reference it), so reuse across arrivals is safe.
  br.route_into(*pub, exclude, route_scratch_);
  const auto& decision = route_scratch_;

  const MsgSize size = pub->size_kb();
  for (const BrokerId next : decision.forward_to) {
    if (faults_active_) {
      if (faults_.link_is_down(b, next)) {
        faults_.stats().msgs_dropped_link_down += 1;
        continue;
      }
      const double p = faults_.drop_prob(b, next);
      if (p > 0 && fault_rng_.chance(p)) {
        faults_.stats().msgs_dropped_random += 1;
        continue;
      }
    }
    const SimTime sent_at = br.out_link().transmit(matched_at, size);
    traffic.msgs_out += 1;
    const SimTime hop_latency =
        net_.link_latency + (faults_active_ ? faults_.extra_latency() : 0);
    queue_.schedule(sent_at + hop_latency,
                    [this, next_br = &broker(next), pub, b, hops_here, publish_time] {
                      arrive_at_broker(*next_br, pub, b, /*has_from=*/true, hops_here,
                                       publish_time);
                    });
  }
  for (const auto& [sub_id, client] : decision.deliver) {
    const SimTime sent_at = br.out_link().transmit(matched_at, size);
    traffic.msgs_out += 1;
    const SimTime delivered_at = sent_at + net_.client_latency;
    queue_.schedule(delivered_at, [this, b, here = &br, sub_id = sub_id, pub, hops_here,
                                   publish_time, delivered_at] {
      if (faults_active_ && here->crashed()) {
        // The home broker died while the message was on the client link:
        // the subscriber is detached, so the delivery never lands. With
        // retransmit enabled it is re-delivered after the restart.
        faults_.stats().deliveries_dropped += 1;
        if (fault_options_.retransmit_on_reconnect) {
          buffer_for_retransmit(b, BufferedArrival{pub, BrokerId{}, false,
                                                   /*is_delivery=*/true, sub_id,
                                                   hops_here, publish_time});
        }
        return;
      }
      metrics_.on_delivery(b, hops_here, delivered_at - publish_time);
      here->cbc().record_delivery(sub_id, pub->adv_id(), pub->seq());
    });
  }
}

void Simulation::install_faults(FaultSchedule schedule, FaultOptions options) {
  fault_options_ = options;
  ledger_enabled_ = true;  // the loss oracle needs the ledger either way
  if (schedule.empty()) return;
  faults_active_ = true;
  for (const FaultEvent& ev : schedule.events()) {
    queue_.schedule(std::max(ev.at, queue_.now()), [this, ev] { apply_fault(ev); });
  }
}

void Simulation::inject_fault(FaultEvent ev) {
  ev.at = queue_.now();
  faults_active_ = true;
  ledger_enabled_ = true;
  apply_fault(ev);
}

void Simulation::apply_fault(const FaultEvent& scheduled) {
  // Stamp with the actual fire time: events armed in the past were clamped
  // to "now", and outage windows must reflect when the broker really died.
  FaultEvent ev = scheduled;
  ev.at = queue_.now();
  auto& reg = obs::MetricsRegistry::global();
  switch (ev.kind) {
    case FaultKind::kBrokerCrash: {
      const auto it = brokers_.find(ev.broker);
      if (it == brokers_.end() || it->second->crashed()) return;
      it->second->on_crash();
      faults_.apply(ev);
      obs::trace_instant("fault.broker_crash", static_cast<std::uint64_t>(ev.broker.value()));
      reg.counter("fault.broker_crashes").add(1);
      break;
    }
    case FaultKind::kBrokerRestart: {
      const auto it = brokers_.find(ev.broker);
      if (it == brokers_.end() || !it->second->crashed()) return;
      it->second->on_restart();
      faults_.apply(ev);
      obs::trace_instant("fault.broker_restart", static_cast<std::uint64_t>(ev.broker.value()));
      reg.counter("fault.broker_restarts").add(1);
      if (fault_options_.retransmit_on_reconnect) replay_retransmits(ev.broker);
      break;
    }
    case FaultKind::kLinkDown:
      faults_.apply(ev);
      obs::trace_instant("fault.link_down", static_cast<std::uint64_t>(ev.broker.value()));
      reg.counter("fault.link_downs").add(1);
      break;
    case FaultKind::kLinkUp:
      faults_.apply(ev);
      obs::trace_instant("fault.link_up", static_cast<std::uint64_t>(ev.broker.value()));
      reg.counter("fault.link_ups").add(1);
      break;
    case FaultKind::kLinkDrop:
      faults_.apply(ev);
      obs::trace_instant("fault.link_drop");
      reg.counter("fault.link_drop_windows").add(1);
      break;
    case FaultKind::kLatencySpike:
      faults_.apply(ev);
      obs::trace_instant("fault.latency_spike");
      reg.counter("fault.latency_spikes").add(1);
      break;
  }
  GREENPS_COUNTER("fault.crashed_brokers", faults_.crashed_count());
}

void Simulation::buffer_for_retransmit(BrokerId at, BufferedArrival&& entry) {
  auto& buf = retransmit_[at];
  if (buf.size() >= fault_options_.max_retransmit_buffer) {
    faults_.stats().retransmit_overflow += 1;
    return;
  }
  buf.push_back(std::move(entry));
}

void Simulation::replay_retransmits(BrokerId restarted) {
  const auto it = retransmit_.find(restarted);
  if (it == retransmit_.end() || it->second.empty()) return;
  std::vector<BufferedArrival> entries = std::move(it->second);
  retransmit_.erase(it);
  const SimTime at = queue_.now() + net_.reconnect_latency;
  Broker* br = &broker(restarted);
  obs::trace_instant("fault.retransmit_replay", entries.size());
  for (BufferedArrival& e : entries) {
    faults_.stats().retransmits_replayed += 1;
    if (e.is_delivery) {
      // Final hop was lost: re-deliver straight to the local subscriber.
      queue_.schedule(at, [this, br, e = std::move(e)] {
        if (br->crashed()) {  // crashed again before the replay fired
          faults_.stats().deliveries_dropped += 1;
          if (fault_options_.retransmit_on_reconnect) {
            buffer_for_retransmit(br->id(), BufferedArrival{e});
          }
          return;
        }
        metrics_.traffic_for(br->id()).msgs_out += 1;
        metrics_.on_delivery(br->id(), e.broker_hops, queue_.now() - e.publish_time);
        br->cbc().record_delivery(e.sub, e.pub->adv_id(), e.pub->seq());
      });
    } else {
      // Re-run the arrival; arrive_at_broker re-buffers if `br` is down again.
      queue_.schedule(at, [this, br, e = std::move(e)] {
        arrive_at_broker(*br, e.pub, e.from, e.has_from, e.broker_hops, e.publish_time);
      });
    }
  }
}

bool Simulation::broker_alive(BrokerId id) const {
  const auto it = brokers_.find(id);
  return it != brokers_.end() && !it->second->crashed();
}

std::optional<BrokerInfo> Simulation::broker_info_if_reachable(BrokerId id) const {
  if (!broker_alive(id)) return std::nullopt;
  return broker_info(id);
}

std::set<std::pair<AdvId, MessageSeq>> Simulation::pending_retransmits() const {
  std::set<std::pair<AdvId, MessageSeq>> out;
  for (const auto& [b, buf] : retransmit_) {
    (void)b;
    for (const BufferedArrival& e : buf) out.emplace(e.pub->adv_id(), e.pub->seq());
  }
  return out;
}

void Simulation::run(double duration_s) {
  const SimTime start = queue_.now();
  const SimTime end = start + seconds(duration_s);
  if (!publishers_scheduled_) {
    // Start publishers, staggering initial publications across one period
    // to avoid a synchronized burst.
    for (std::size_t i = 0; i < publishers_.size(); ++i) {
      const auto& spec = publishers_[i].spec;
      if (spec.rate_msg_s <= 0) continue;
      const auto period = static_cast<SimTime>(
          std::llround(static_cast<double>(kMicrosPerSecond) / spec.rate_msg_s));
      const SimTime first = start + (period * static_cast<SimTime>(i)) /
                                        static_cast<SimTime>(publishers_.size() + 1);
      schedule_publisher(i, first);
    }
    publishers_scheduled_ = true;
  }
  if (sample_interval_us_ > 0 && !sampler_scheduled_) {
    schedule_sample(start + sample_interval_us_);
    sampler_scheduled_ = true;
  }
  {
    GREENPS_SPAN("sim.run");
    queue_.run_until(end);
  }
  // Events past `end` (in-flight deliveries, future publications) stay
  // queued; a subsequent run() continues seamlessly.
  measured_s_ += duration_s;
  if (sample_interval_us_ > 0 && sampler_.row_count() > 0) {
    sampler_.write_csv(obs::TimeSeriesSampler::path_from_env());
  }
}

void Simulation::schedule_sample(SimTime at) {
  queue_.schedule(at, [this] {
    take_sample();
    schedule_sample(queue_.now() + sample_interval_us_);
  });
}

void Simulation::take_sample() {
  const SimTime now = queue_.now();
  const double interval_s = to_seconds(sample_interval_us_);
  // Sorted broker order keeps the CSV stable across runs.
  std::vector<BrokerId> ids;
  ids.reserve(brokers_.size());
  for (const auto& [id, br] : brokers_) {
    (void)br;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const BrokerId id : ids) {
    const Broker& br = *brokers_.at(id);
    SampleBaseline& base = sample_baselines_[id];
    std::uint64_t in_now = 0, out_now = 0;
    if (const auto it = metrics_.traffic().find(id); it != metrics_.traffic().end()) {
      in_now = it->second.msgs_in;
      out_now = it->second.msgs_out;
    }
    const SimTime busy_now = br.out_link().busy_time();
    const double in_rate = static_cast<double>(in_now - base.msgs_in) / interval_s;
    const double out_rate = static_cast<double>(out_now - base.msgs_out) / interval_s;
    const double backlog_s = to_seconds(std::max<SimTime>(br.out_link().busy_until() - now, 0));
    // A crash resets the output link's busy counter, so the delta can go
    // negative mid-outage; clamp (no-op in fault-free runs, where busy
    // time is monotone).
    const double util = std::max(
        0.0,
        static_cast<double>(busy_now - base.busy_us) / static_cast<double>(sample_interval_us_));
    sampler_.append(to_seconds(now), id.value(), {in_rate, out_rate, backlog_s, util});
    base = {in_now, out_now, busy_now};
  }
}

void Simulation::reset_metrics() {
  metrics_.reset();
  measured_s_ = 0;
  // Traffic counters restart at zero; link busy time does not, so only the
  // message baselines reset.
  for (auto& [id, base] : sample_baselines_) {
    (void)id;
    base.msgs_in = 0;
    base.msgs_out = 0;
  }
}

BrokerInfo Simulation::broker_info(BrokerId id) const {
  const Broker& br = broker(id);
  return br.cbc().snapshot(id, br.capacity().delay, br.capacity().out_bw_kb_s);
}

SimSummary Simulation::summarize() const {
  SimSummary s;
  s.duration_s = measured_s_;
  s.allocated_brokers = brokers_.size();
  s.publications = metrics_.publications();
  s.deliveries = metrics_.deliveries();
  s.avg_hop_count = metrics_.avg_hops();
  s.avg_delivery_delay_ms = metrics_.avg_delay_ms();
  s.p50_delivery_delay_ms = metrics_.delay_histogram().percentile_ms(0.50);
  s.p99_delivery_delay_ms = metrics_.delay_histogram().percentile_ms(0.99);

  double util_total = 0;
  for (const auto& [b, traffic] : metrics_.traffic()) {
    (void)b;
    if (traffic.msgs_in + traffic.msgs_out > 0) s.brokers_with_traffic += 1;
    s.broker_msgs_total += traffic.msgs_in + traffic.msgs_out;
  }
  std::size_t with_subs_or_traffic = 0;
  for (const auto& [id, br] : brokers_) {
    const auto it = metrics_.traffic().find(id);
    const bool processed = it != metrics_.traffic().end() && it->second.msgs_in > 0;
    if (processed) {
      with_subs_or_traffic += 1;
      util_total += static_cast<double>(br->out_link().busy_time());
      const bool no_local = it->second.local_deliveries == 0;
      // A pure forwarder processes traffic but hosts no clients and fans
      // out to at most one direction (Section V-A, Figure 4a).
      if (no_local && deployment_.topology.neighbors(id).size() <= 2 &&
          !client_hosts_.contains(id)) {
        s.pure_forwarding_brokers += 1;
      }
    }
  }
  if (s.duration_s > 0) {
    s.system_msg_rate = static_cast<double>(s.broker_msgs_total) / s.duration_s;
    if (s.allocated_brokers > 0) {
      s.avg_broker_msg_rate = s.system_msg_rate / static_cast<double>(s.allocated_brokers);
    }
    if (with_subs_or_traffic > 0) {
      s.avg_output_utilization = util_total / static_cast<double>(kMicrosPerSecond) /
                                 s.duration_s / static_cast<double>(with_subs_or_traffic);
    }
  }
  return s;
}

}  // namespace greenps
