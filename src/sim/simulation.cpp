#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "broker/parallel_match.hpp"
#include "common/logging.hpp"
#include "matching/matching_engine.hpp"
#include "matching/relations.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/shard_partitioner.hpp"

namespace greenps {

namespace {

// Event-key classes (sim/event_queue.hpp): smaller class fires first at a
// tied timestamp. Fault events beat sampler ticks beat traffic, and all of
// them beat legacy insertion-keyed events (kInsertionClass).
constexpr std::uint64_t kFaultClass = 0;
constexpr std::uint64_t kSamplerClass = 1;
constexpr std::uint64_t kSourceClass = 2;
static_assert(kSourceClass < EventQueue::kInsertionClass);

EventKey make_key(std::uint64_t klass, std::uint64_t ord, std::uint64_t seq) {
  return EventKey{(klass << 56) | ord, seq};
}

// Retransmit-cap fallback when a broker has no profile data (also the old
// flat default, so unprofiled runs keep the historical behavior).
constexpr std::size_t kDefaultRetransmitCap = 65536;
constexpr std::size_t kMinRetransmitCap = 1024;
constexpr std::size_t kMaxRetransmitCap = std::size_t{1} << 20;

// Per-broker drop-RNG seeding: splitmix-style mix of the broker id so
// adjacent ids get uncorrelated streams.
std::uint64_t drop_seed(BrokerId b) {
  std::uint64_t z = (static_cast<std::uint64_t>(b.value()) + 1) * 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::size_t SimOptions::resolve_workers(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* v = std::getenv("GREENPS_SIM_WORKERS"); v != nullptr && *v != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 1;
}

std::size_t SimOptions::resolve_match_threshold(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* v = std::getenv("GREENPS_MATCH_THRESHOLD"); v != nullptr && *v != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return ~std::size_t{0};  // disabled
}

Simulation::Simulation(Deployment deployment, StockQuoteGenerator quotes, NetworkConfig net,
                       SimOptions opts)
    : quotes_(std::move(quotes)),
      net_(net),
      workers_(SimOptions::resolve_workers(opts.workers)),
      match_threshold_(SimOptions::resolve_match_threshold(opts.match_threshold)) {
  redeploy(std::move(deployment));
}

Broker& Simulation::broker(BrokerId id) {
  const auto it = brokers_.find(id);
  assert(it != brokers_.end());
  return *it->second.broker;
}

const Broker& Simulation::broker(BrokerId id) const {
  const auto it = brokers_.find(id);
  assert(it != brokers_.end());
  return *it->second.broker;
}

std::size_t Simulation::pick_shard_count() const {
  std::size_t n = std::min(workers_, std::max<std::size_t>(
                                         deployment_.topology.broker_count(), 1));
  if (n <= 1) return 1;
  // Zero link latency leaves no conservative lookahead to window on.
  if (net_.link_latency <= 0) return 1;
  // Publishers sharing a symbol (one price walk) or an advertisement (one
  // sequence counter) would race across shards; such workloads run on one.
  std::unordered_set<std::string> symbols;
  std::unordered_set<AdvId> advs;
  for (const auto& pub : deployment_.publishers) {
    if (!symbols.insert(pub.symbol).second || !advs.insert(pub.adv).second) return 1;
  }
  return n;
}

void Simulation::redeploy(Deployment deployment) {
  snapshot_profiled_rates();  // keep the last window's rates across epochs
  // Messages parked in retransmit/deferred buffers die with the shards —
  // if the buffering broker is decommissioned mid-outage there is no
  // restart to replay them. Record them as stranded (cumulative) so the
  // loss oracle can excuse instead of silently losing them.
  sweep_stranded();
  deployment_ = std::move(deployment);
  brokers_.clear();
  publishers_.clear();
  const std::size_t num_shards = pick_shard_count();
  loop_.reset(num_shards);
  shards_.clear();
  shards_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_[s]->index = s;
  }
  if (match_threshold_ != ~std::size_t{0}) {
    if (num_shards > 1) {
      // Sharded run: the shard pool is busy driving the event loop, so hot
      // shards publish batches into their slot of the help-queue request
      // ring and idle shards donate barrier wait time (SpinBarrier idle
      // poll). One slot per shard lets several hot brokers fan out in the
      // same lookahead window; no workers exist yet, so resizing is safe.
      help_queue_->configure_slots(num_shards);
      for (auto& sh : shards_) {
        sh->evaluator =
            std::make_unique<HelpQueueEvaluator>(*help_queue_, match_threshold_, sh->index);
      }
    } else {
      // Single-shard run: fan out across a dedicated matching pool.
      if (match_pool_ == nullptr) match_pool_ = std::make_unique<ThreadPool>(0);
      shards_[0]->evaluator =
          std::make_unique<PoolCandidateEvaluator>(*match_pool_, match_threshold_);
    }
  }
  metrics_.reset();
  measured_s_ = 0;
  publishers_scheduled_ = false;
  sampler_scheduled_ = false;
  // The sampler's epoch ends with the deployment: the event clock restarts
  // at zero, so keeping old rows would interleave two timelines in one
  // series (the canonical (time, key) sort would shuffle them together).
  sampler_.clear();
  // Fault epoch ends with the deployment: pending fault events died with
  // the queue, active faults and buffers are meaningless for new brokers.
  faults_active_ = false;
  admission_active_ = false;
  faults_.reset();
  fault_key_seq_ = 0;
  retransmit_caps_.clear();
  publish_ledger_.clear();
  ledger_enabled_ = false;

  // Shard assignment: contiguous cuts of the overlay, balanced by hosted
  // clients (a proxy for per-broker event volume).
  std::unordered_map<BrokerId, std::size_t> weight;
  for (const auto& sub : deployment_.subscribers) weight[sub.home] += 1;
  for (const auto& pub : deployment_.publishers) weight[pub.home] += 1;
  const ShardPlan plan = partition_brokers(deployment_.topology, weight, num_shards);
  obs::MetricsRegistry::global().gauge("sim.shards").set(static_cast<double>(num_shards));
  obs::MetricsRegistry::global()
      .gauge("sim.cross_shard_links")
      .set(static_cast<double>(plan.cross_links));

  // Dense ordinals in ascending-id order feed the event keys; the same
  // deployment gets the same keys no matter how many shards it runs on.
  std::vector<BrokerId> ids = deployment_.topology.brokers();
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const BrokerId b = ids[i];
    const auto cap_it = deployment_.capacities.find(b);
    const BrokerCapacity cap =
        cap_it != deployment_.capacities.end() ? cap_it->second : BrokerCapacity{};
    BrokerSlot slot;
    slot.broker = std::make_unique<Broker>(b, cap, deployment_.profile_window_bits);
    slot.shard = shards_[plan.shard_of(b)].get();
    slot.ord = i;
    slot.drop_rng = Rng(drop_seed(b));
    slot.shard->owned_sorted.push_back(b);  // ids ascend, so this stays sorted
    brokers_.emplace(b, std::move(slot));
  }
  for (std::size_t i = 0; i < deployment_.publishers.size(); ++i) {
    const PublisherSpec& spec = deployment_.publishers[i];
    PublisherState st;
    st.spec = spec;
    auto [seq_it, inserted] = seq_.try_emplace(spec.adv, 0);
    (void)inserted;
    st.next_seq = seq_it->second;
    st.seq_slot = &seq_it->second;
    st.home = &brokers_.at(spec.home);
    st.shard = st.home->shard;
    st.ord = ids.size() + i;
    publishers_.push_back(std::move(st));
    // Pre-create the symbol's walk state: worker threads must never insert
    // into the generator's map concurrently.
    quotes_.prewarm(spec.symbol);
  }
  client_hosts_.clear();
  for (const auto& sub : deployment_.subscribers) client_hosts_.insert(sub.home);
  for (const auto& pub : deployment_.publishers) client_hosts_.insert(pub.home);
  install_routing();
}

void Simulation::install_routing() {
  // Advertisement flooding: every broker learns each advertisement and the
  // direction (last hop) toward its publisher.
  for (const auto& pub : deployment_.publishers) {
    assert(deployment_.topology.has_broker(pub.home));
    // BFS tree rooted at the publisher's home broker.
    std::unordered_map<BrokerId, BrokerId> toward;  // broker -> neighbor toward home
    std::vector<BrokerId> frontier{pub.home};
    toward[pub.home] = pub.home;
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const BrokerId b = frontier[head];
      for (const BrokerId n : deployment_.topology.neighbors(b)) {
        if (!toward.contains(n)) {
          toward[n] = b;
          frontier.push_back(n);
        }
      }
    }
    const Advertisement adv(pub.adv, pub.adv_filter);
    for (const auto& [b, via] : toward) {
      const Hop hop = b == pub.home ? Hop::to_client(pub.client) : Hop::to_broker(via);
      broker(b).prt().insert(adv, hop);
      // Announce to the SRT as well: it scopes matching to the candidate
      // subscriptions intersecting this advertisement.
      broker(b).srt().register_advertisement(pub.adv, pub.adv_filter);
    }
    broker(pub.home).cbc().register_publisher(pub.client, pub.adv);
  }

  // Subscription propagation: each subscription is installed at every
  // broker on the path from its home broker toward each intersecting
  // advertisement's home broker, pointing back toward the subscriber.
  for (const auto& sub : deployment_.subscribers) {
    assert(deployment_.topology.has_broker(sub.home));
    broker(sub.home).srt().insert(sub.sub, sub.filter, Hop::to_client(sub.client));
    broker(sub.home).cbc().register_subscription(sub.sub, sub.client, sub.filter);
    for (const auto& pub : deployment_.publishers) {
      if (!intersects(pub.adv_filter, sub.filter)) continue;
      const auto path = deployment_.topology.path(sub.home, pub.home);
      assert(path.has_value());
      // path[0] = sub.home; install at path[1..] pointing to path[i-1].
      for (std::size_t i = 1; i < path->size(); ++i) {
        broker((*path)[i]).srt().insert(sub.sub, sub.filter,
                                        Hop::to_broker((*path)[i - 1]));
      }
    }
  }

  // Publish immutable routing snapshots: the hot path routes through them
  // (same match sets and walk counts as the live tables), and parallel
  // matching helpers and concurrent readers require them. Tables mutated
  // after this point fall back to the live path until re-published.
  for (auto& [id, slot] : brokers_) {
    (void)id;
    slot.broker->publish_routing();
  }
}

void Simulation::schedule_publisher(std::size_t pub_index, SimTime first) {
  PublisherState& st = publishers_[pub_index];
  if (st.spec.rate_msg_s <= 0) return;
  loop_.queue(st.shard->index)
      .schedule_keyed(first, make_key(kSourceClass, st.ord, st.key_seq++),
                      [this, pub_index] { publish(pub_index); });
}

void Simulation::publish(std::size_t pub_index) {
  PublisherState& st = publishers_[pub_index];
  Shard& sh = *st.shard;
  EventQueue& q = loop_.queue(sh.index);
  const SimTime now = q.now();

  std::shared_ptr<Publication> pub = sh.pub_pool.acquire();
  quotes_.next_into(st.spec.symbol, *pub);
  const MessageSeq seq = st.next_seq++;
  *st.seq_slot = st.next_seq;
  pub->set_header(st.spec.adv, seq);
  sh.metrics.on_publication();
  BrokerSlot& home = *st.home;
  // A crashed home broker rejects the publication at its door. The quote
  // draw and sequence increment above still happened, so the per-symbol
  // price walk and seq<->quote mapping stay aligned with a fault-free run
  // and the loss oracle can regenerate exactly what was lost.
  const bool home_down = faults_active_ && home.broker->crashed();
  if (ledger_enabled_) sh.ledger.push_back({st.spec.adv, seq, now, home_down});
  if (home_down) {
    sh.faults.stats().pubs_dropped_at_source += 1;
  } else if (admission_active_ &&
             to_seconds(std::max<SimTime>(home.broker->out_link().busy_until() - now, 0)) >
                 fault_options_.admission_backlog_s) {
    // Degraded mode: the home broker is drowning (typically absorbing a
    // dead peer's traffic) — park the publication at the door instead of
    // feeding the backlog. New injections are the lowest-priority class;
    // in-transit forwards and deliveries are never shed.
    defer_publication(home, std::move(pub), now);
  } else {
    home.broker->cbc().record_publish(st.spec.adv, seq, pub->size_kb(), now);
    const SimTime arrival = now + net_.client_latency;
    q.schedule_keyed(arrival, make_key(kSourceClass, st.ord, st.key_seq++),
                     [this, pub = std::move(pub), slot = &home, now] {
                       arrive_at_broker(*slot, pub, BrokerId{}, /*has_from=*/false,
                                        /*broker_hops=*/0, now);
                     });
  }

  // Next publication, fixed inter-arrival spacing.
  const auto period = static_cast<SimTime>(
      std::llround(static_cast<double>(kMicrosPerSecond) / st.spec.rate_msg_s));
  q.schedule_keyed(now + std::max<SimTime>(period, 1),
                   make_key(kSourceClass, st.ord, st.key_seq++),
                   [this, pub_index] { publish(pub_index); });
}

void Simulation::arrive_at_broker(BrokerSlot& slot, std::shared_ptr<const Publication> pub,
                                  BrokerId from, bool has_from, int broker_hops,
                                  SimTime publish_time) {
  Broker& br = *slot.broker;
  Shard& sh = *slot.shard;
  EventQueue& q = loop_.queue(sh.index);
  const BrokerId b = br.id();
  if (faults_active_ && br.crashed()) {
    // Messages aimed at a dead broker never enter its queues. With
    // retransmit-on-reconnect the neighbor holds the message and replays
    // it after the restart (store-and-forward); otherwise it is lost.
    sh.faults.stats().arrivals_dropped += 1;
    if (fault_options_.retransmit_on_reconnect) {
      buffer_for_retransmit(
          sh, b, BufferedArrival{std::move(pub), from, has_from, /*is_delivery=*/false,
                                 SubId{}, broker_hops, publish_time});
    }
    return;
  }
  BrokerTraffic& traffic = sh.metrics.traffic_for(b);
  traffic.msgs_in += 1;
  const int hops_here = broker_hops + 1;

  const SimTime service = br.matching_service_time();
  br.cbc().record_matching(br.srt().filter_count(), service);
  const SimTime matched_at = br.matcher().serve(q.now(), service);
  const BrokerId* exclude = has_from ? &from : nullptr;
  // Routing decision is computed against current tables; the simulator's
  // tables are static during a run, so evaluating now is equivalent to
  // evaluating at matched_at and avoids copying the tables into the closure.
  // The scratch result is consumed before this function returns (the
  // scheduled closures don't reference it), so reuse across arrivals is safe.
  br.route_into(*pub, exclude, sh.route_scratch, sh.match_scratch, sh.evaluator.get());
  const auto& decision = sh.route_scratch;

  const MsgSize size = pub->size_kb();
  for (const BrokerId next : decision.forward_to) {
    if (faults_active_) {
      if (sh.faults.link_is_down(b, next)) {
        sh.faults.stats().msgs_dropped_link_down += 1;
        continue;
      }
      const double p = sh.faults.drop_prob(b, next);
      if (p > 0 && slot.drop_rng.chance(p)) {
        sh.faults.stats().msgs_dropped_random += 1;
        continue;
      }
    }
    const SimTime sent_at = br.out_link().transmit(matched_at, size);
    traffic.msgs_out += 1;
    const SimTime hop_latency =
        net_.link_latency + (faults_active_ ? sh.faults.extra_latency() : 0);
    // Lookahead contract (sim/sharded_engine.hpp): sent_at >= now + the
    // sender's matching service time and hop_latency >= link latency, so a
    // cross-shard arrival is always at least shard_lookahead() ahead.
    BrokerSlot* next_slot = &brokers_.at(next);
    const SimTime at = sent_at + hop_latency;
    const EventKey key = make_key(kSourceClass, slot.ord, slot.key_seq++);
    EventQueue::Action action = [this, next_slot, pub, b, hops_here, publish_time] {
      arrive_at_broker(*next_slot, pub, b, /*has_from=*/true, hops_here, publish_time);
    };
    if (next_slot->shard == &sh) {
      q.schedule_keyed(at, key, std::move(action));
    } else {
      loop_.post(sh.index, next_slot->shard->index, at, key, std::move(action));
    }
  }
  for (const auto& [sub_id, client] : decision.deliver) {
    const SimTime sent_at = br.out_link().transmit(matched_at, size);
    traffic.msgs_out += 1;
    const SimTime delivered_at = sent_at + net_.client_latency;
    q.schedule_keyed(delivered_at, make_key(kSourceClass, slot.ord, slot.key_seq++),
                     [this, sp = &slot, sub_id = sub_id, pub, hops_here, publish_time,
                      delivered_at] {
                       Shard& s2 = *sp->shard;
                       if (faults_active_ && sp->broker->crashed()) {
                         // The home broker died while the message was on the
                         // client link: the subscriber is detached, so the
                         // delivery never lands. With retransmit enabled it is
                         // re-delivered after the restart.
                         s2.faults.stats().deliveries_dropped += 1;
                         if (fault_options_.retransmit_on_reconnect) {
                           buffer_for_retransmit(
                               s2, sp->broker->id(),
                               BufferedArrival{pub, BrokerId{}, false,
                                               /*is_delivery=*/true, sub_id, hops_here,
                                               publish_time});
                         }
                         return;
                       }
                       s2.metrics.on_delivery(sp->broker->id(), hops_here,
                                              delivered_at - publish_time);
                       sp->broker->cbc().record_delivery(sub_id, pub->adv_id(), pub->seq());
                     });
  }
}

void Simulation::install_faults(FaultSchedule schedule, FaultOptions options) {
  fault_options_ = options;
  ledger_enabled_ = true;  // the loss oracle needs the ledger either way
  // Admission control arms with the options, schedule or not: a re-armed
  // epoch after a recovery redeploy has no scheduled events, but the
  // surviving brokers still need backpressure while load settles.
  admission_active_ = options.admission_control;
  derive_retransmit_caps(schedule);
  if (schedule.empty()) return;
  faults_active_ = true;
  const SimTime now = loop_.now();
  for (const FaultEvent& ev : schedule.events()) {
    // Replicate onto every shard under one shared key: each replica flips
    // its shard's FaultState at the same point in the event order. Replicas
    // beyond shard 0 are bookkeeping, excluded from events_executed().
    const EventKey key = make_key(kFaultClass, 0, fault_key_seq_++);
    const SimTime at = std::max(ev.at, now);
    for (auto& shp : shards_) {
      Shard* sh = shp.get();
      loop_.queue(sh->index).schedule_keyed(at, key, [this, ev, sh] {
        if (sh->index != 0) sh->aux_events += 1;
        apply_fault(ev, *sh);
      });
    }
  }
}

void Simulation::inject_fault(FaultEvent ev) {
  faults_active_ = true;
  ledger_enabled_ = true;
  for (auto& sh : shards_) apply_fault(ev, *sh);
  rebuild_fault_view();
}

void Simulation::apply_fault(const FaultEvent& scheduled, Shard& sh) {
  // Stamp with the actual fire time: events armed in the past were clamped
  // to "now", and outage windows must reflect when the broker really died.
  FaultEvent ev = scheduled;
  ev.at = loop_.queue(sh.index).now();
  const bool record = sh.index == 0;
  auto& reg = obs::MetricsRegistry::global();
  switch (ev.kind) {
    case FaultKind::kBrokerCrash: {
      const auto it = brokers_.find(ev.broker);
      // Dedup against this replica's own state: every replica sees the same
      // fault sequence, so all of them agree (the Broker object belongs to
      // one shard and cannot be consulted from the others).
      if (it == brokers_.end() || sh.faults.is_crashed(ev.broker)) return;
      sh.faults.apply(ev, record);
      if (it->second.shard == &sh) it->second.broker->on_crash();
      if (record) {
        obs::trace_instant("fault.broker_crash",
                           static_cast<std::uint64_t>(ev.broker.value()));
        reg.counter("fault.broker_crashes").add(1);
      }
      break;
    }
    case FaultKind::kBrokerRestart: {
      const auto it = brokers_.find(ev.broker);
      if (it == brokers_.end() || !sh.faults.is_crashed(ev.broker)) return;
      sh.faults.apply(ev, record);
      if (it->second.shard == &sh) {
        it->second.broker->on_restart();
        if (fault_options_.retransmit_on_reconnect) replay_retransmits(it->second);
      }
      if (record) {
        obs::trace_instant("fault.broker_restart",
                           static_cast<std::uint64_t>(ev.broker.value()));
        reg.counter("fault.broker_restarts").add(1);
      }
      break;
    }
    case FaultKind::kLinkDown:
      sh.faults.apply(ev, record);
      if (record) {
        obs::trace_instant("fault.link_down", static_cast<std::uint64_t>(ev.broker.value()));
        reg.counter("fault.link_downs").add(1);
      }
      break;
    case FaultKind::kLinkUp:
      sh.faults.apply(ev, record);
      if (record) {
        obs::trace_instant("fault.link_up", static_cast<std::uint64_t>(ev.broker.value()));
        reg.counter("fault.link_ups").add(1);
      }
      break;
    case FaultKind::kLinkDrop:
      sh.faults.apply(ev, record);
      if (record) {
        obs::trace_instant("fault.link_drop");
        reg.counter("fault.link_drop_windows").add(1);
      }
      break;
    case FaultKind::kLatencySpike:
      sh.faults.apply(ev, record);
      if (record) {
        obs::trace_instant("fault.latency_spike");
        reg.counter("fault.latency_spikes").add(1);
      }
      break;
  }
  if (record) {
    GREENPS_COUNTER("fault.crashed_brokers", sh.faults.crashed_count());
  }
}

std::size_t Simulation::retransmit_cap(BrokerId b) const {
  if (fault_options_.max_retransmit_buffer != 0) return fault_options_.max_retransmit_buffer;
  const auto it = retransmit_caps_.find(b);
  return it != retransmit_caps_.end() ? it->second : kDefaultRetransmitCap;
}

void Simulation::derive_retransmit_caps(const FaultSchedule& schedule) {
  retransmit_caps_.clear();
  if (fault_options_.max_retransmit_buffer != 0) return;  // explicit flat cap
  double outage_s = fault_options_.expected_outage_s;
  if (outage_s <= 0) {
    // Size for the longest crash-to-restart gap the schedule will inflict.
    std::unordered_map<BrokerId, SimTime> crash_at;
    SimTime longest = 0;
    for (const FaultEvent& ev : schedule.events()) {
      if (ev.kind == FaultKind::kBrokerCrash) {
        crash_at[ev.broker] = ev.at;
      } else if (ev.kind == FaultKind::kBrokerRestart) {
        if (const auto it = crash_at.find(ev.broker); it != crash_at.end()) {
          longest = std::max(longest, ev.at - it->second);
          crash_at.erase(it);
        }
      }
    }
    outage_s = longest > 0 ? to_seconds(longest) : 5.0;
  }
  for (const auto& [b, rate] : profiled_rate_) {
    const double raw = rate * outage_s * fault_options_.retransmit_headroom;
    const auto cap = static_cast<std::size_t>(std::ceil(std::max(raw, 0.0)));
    retransmit_caps_[b] = std::clamp(cap, kMinRetransmitCap, kMaxRetransmitCap);
  }
}

void Simulation::buffer_for_retransmit(Shard& sh, BrokerId at, BufferedArrival&& entry) {
  auto& buf = sh.retransmit[at];
  if (buf.size() >= retransmit_cap(at)) {
    sh.faults.stats().retransmit_overflow += 1;
    return;
  }
  buf.push_back(std::move(entry));
}

void Simulation::replay_retransmits(BrokerSlot& slot) {
  Shard& sh = *slot.shard;
  const auto it = sh.retransmit.find(slot.broker->id());
  if (it == sh.retransmit.end() || it->second.empty()) return;
  std::vector<BufferedArrival> entries = std::move(it->second);
  sh.retransmit.erase(it);
  EventQueue& q = loop_.queue(sh.index);
  const SimTime at = q.now() + net_.reconnect_latency;
  obs::trace_instant("fault.retransmit_replay", entries.size());
  for (BufferedArrival& e : entries) {
    sh.faults.stats().retransmits_replayed += 1;
    if (e.is_delivery) {
      // Final hop was lost: re-deliver straight to the local subscriber.
      q.schedule_keyed(at, make_key(kSourceClass, slot.ord, slot.key_seq++),
                       [this, sp = &slot, e = std::move(e)] {
                         Shard& s2 = *sp->shard;
                         if (sp->broker->crashed()) {  // crashed again before the replay
                           s2.faults.stats().deliveries_dropped += 1;
                           if (fault_options_.retransmit_on_reconnect) {
                             buffer_for_retransmit(s2, sp->broker->id(), BufferedArrival{e});
                           }
                           return;
                         }
                         s2.metrics.traffic_for(sp->broker->id()).msgs_out += 1;
                         s2.metrics.on_delivery(sp->broker->id(), e.broker_hops,
                                                loop_.queue(s2.index).now() - e.publish_time);
                         sp->broker->cbc().record_delivery(e.sub, e.pub->adv_id(),
                                                           e.pub->seq());
                       });
    } else {
      // Re-run the arrival; arrive_at_broker re-buffers if down again.
      q.schedule_keyed(at, make_key(kSourceClass, slot.ord, slot.key_seq++),
                       [this, sp = &slot, e = std::move(e)] {
                         arrive_at_broker(*sp, e.pub, e.from, e.has_from, e.broker_hops,
                                          e.publish_time);
                       });
    }
  }
}

void Simulation::defer_publication(BrokerSlot& home, std::shared_ptr<Publication> pub,
                                   SimTime published_at) {
  Shard& sh = *home.shard;
  DeferredQueue& dq = sh.deferred[home.broker->id()];
  if (dq.entries.size() >= fault_options_.admission_max_deferred) {
    // Back-pressure at the door: the freshest message is the one shed.
    sh.faults.stats().pubs_shed_admission += 1;
    sh.shed.emplace(pub->adv_id(), pub->seq());
    return;
  }
  sh.faults.stats().pubs_deferred_admission += 1;
  dq.entries.push_back(DeferredPub{std::move(pub), published_at});
  if (!dq.drain_scheduled) {
    dq.drain_scheduled = true;
    schedule_admission_drain(home);
  }
}

void Simulation::schedule_admission_drain(BrokerSlot& slot) {
  Shard& sh = *slot.shard;
  EventQueue& q = loop_.queue(sh.index);
  const SimTime retry = std::max<SimTime>(seconds(fault_options_.admission_retry_s), 1);
  q.schedule_keyed(q.now() + retry, make_key(kSourceClass, slot.ord, slot.key_seq++),
                   [this, sp = &slot] { drain_admissions(*sp); });
}

void Simulation::drain_admissions(BrokerSlot& slot) {
  Shard& sh = *slot.shard;
  const auto it = sh.deferred.find(slot.broker->id());
  if (it == sh.deferred.end()) return;
  DeferredQueue& dq = it->second;
  if (dq.entries.empty()) {
    dq.drain_scheduled = false;
    return;
  }
  EventQueue& q = loop_.queue(sh.index);
  const SimTime now = q.now();
  const double backlog_s =
      to_seconds(std::max<SimTime>(slot.broker->out_link().busy_until() - now, 0));
  // A crashed home holds its parked messages (re-admitting them would only
  // migrate them into the retransmit buffer); hysteresis on the backlog
  // keeps the drain from re-flooding a link that barely recovered.
  if (!slot.broker->crashed() && backlog_s <= fault_options_.admission_resume_s) {
    const std::size_t n =
        std::min(dq.entries.size(), fault_options_.admission_drain_batch);
    for (std::size_t i = 0; i < n; ++i) {
      DeferredPub e = std::move(dq.entries.front());
      dq.entries.pop_front();
      sh.faults.stats().pubs_readmitted += 1;
      slot.broker->cbc().record_publish(e.pub->adv_id(), e.pub->seq(), e.pub->size_kb(),
                                        now);
      // Re-stamp the ledger at re-admission: the oracle's horizon-slack
      // excuse must measure from when the message actually entered the
      // system, not from when it was parked (later rows win in its map).
      if (ledger_enabled_) {
        sh.ledger.push_back({e.pub->adv_id(), e.pub->seq(), now, false});
      }
      q.schedule_keyed(now + net_.client_latency,
                       make_key(kSourceClass, slot.ord, slot.key_seq++),
                       [this, sp = &slot, pub = std::move(e.pub),
                        at = e.published_at]() mutable {
                         arrive_at_broker(*sp, std::move(pub), BrokerId{},
                                          /*has_from=*/false, /*broker_hops=*/0, at);
                       });
    }
  }
  if (dq.entries.empty()) {
    dq.drain_scheduled = false;
    return;
  }
  schedule_admission_drain(slot);
}

void Simulation::sweep_stranded() {
  for (const auto& sh : shards_) {
    for (const auto& [b, buf] : sh->retransmit) {
      (void)b;
      for (const BufferedArrival& e : buf) {
        if (stranded_.emplace(e.pub->adv_id(), e.pub->seq()).second) stranded_total_ += 1;
      }
    }
    for (const auto& [b, dq] : sh->deferred) {
      (void)b;
      for (const DeferredPub& e : dq.entries) {
        if (stranded_.emplace(e.pub->adv_id(), e.pub->seq()).second) stranded_total_ += 1;
      }
    }
  }
}

bool Simulation::broker_alive(BrokerId id) const {
  const auto it = brokers_.find(id);
  return it != brokers_.end() && !it->second.broker->crashed();
}

std::optional<BrokerInfo> Simulation::broker_info_if_reachable(BrokerId id) const {
  if (!broker_alive(id)) return std::nullopt;
  return broker_info(id);
}

std::optional<std::uint64_t> Simulation::broker_epoch_if_reachable(BrokerId id) const {
  if (!broker_alive(id)) return std::nullopt;
  return broker(id).cbc().epoch();
}

std::set<std::pair<AdvId, MessageSeq>> Simulation::pending_retransmits() const {
  std::set<std::pair<AdvId, MessageSeq>> out;
  for (const auto& sh : shards_) {
    for (const auto& [b, buf] : sh->retransmit) {
      (void)b;
      for (const BufferedArrival& e : buf) out.emplace(e.pub->adv_id(), e.pub->seq());
    }
  }
  return out;
}

std::set<std::pair<AdvId, MessageSeq>> Simulation::pending_admissions() const {
  std::set<std::pair<AdvId, MessageSeq>> out;
  for (const auto& sh : shards_) {
    for (const auto& [b, dq] : sh->deferred) {
      (void)b;
      for (const DeferredPub& e : dq.entries) out.emplace(e.pub->adv_id(), e.pub->seq());
    }
  }
  return out;
}

std::set<std::pair<AdvId, MessageSeq>> Simulation::shed_publications() const {
  std::set<std::pair<AdvId, MessageSeq>> out;
  for (const auto& sh : shards_) out.insert(sh->shed.begin(), sh->shed.end());
  return out;
}

void Simulation::ensure_pool() {
  const std::size_t n = loop_.shard_count();
  if (pool_ == nullptr || pool_->size() < n) pool_ = std::make_unique<ThreadPool>(n);
}

SimTime Simulation::shard_lookahead() const {
  SimTime min_service = std::numeric_limits<SimTime>::max();
  for (const auto& [id, slot] : brokers_) {
    (void)id;
    min_service = std::min(min_service, slot.broker->matching_service_time());
  }
  if (min_service == std::numeric_limits<SimTime>::max()) min_service = 0;
  return net_.link_latency + min_service;
}

void Simulation::run(double duration_s) {
  const SimTime start = loop_.now();
  const SimTime end = start + seconds(duration_s);
  if (!publishers_scheduled_) {
    // Start publishers, staggering initial publications across one period
    // to avoid a synchronized burst.
    for (std::size_t i = 0; i < publishers_.size(); ++i) {
      const auto& spec = publishers_[i].spec;
      if (spec.rate_msg_s <= 0) continue;
      const auto period = static_cast<SimTime>(
          std::llround(static_cast<double>(kMicrosPerSecond) / spec.rate_msg_s));
      const SimTime first = start + (period * static_cast<SimTime>(i)) /
                                        static_cast<SimTime>(publishers_.size() + 1);
      schedule_publisher(i, first);
    }
    publishers_scheduled_ = true;
  }
  if (sample_interval_us_ > 0 && !sampler_scheduled_) {
    for (auto& sh : shards_) schedule_sample(*sh, start + sample_interval_us_);
    sampler_scheduled_ = true;
  }
  {
    GREENPS_SPAN("sim.run");
    if (loop_.shard_count() <= 1) {
      loop_.run(end, 0, nullptr);
    } else {
      ensure_pool();
      // Work donation: shards spinning at window barriers run chunks of any
      // hot broker's published candidate batch. Helpers' match walks land
      // in their own slot's thread_local counter and are harvested below,
      // so totals stay invariant across donation patterns.
      std::function<bool()> idle_poll;
      if (match_threshold_ != ~std::size_t{0}) {
        idle_poll = [q = help_queue_.get()] { return q->help(); };
      }
      // Match-walk counters are thread_local; harvest each worker slot's
      // delta and fold it into the caller's counter after the join.
      loop_.run(
          end, shard_lookahead(), pool_.get(),
          [this](std::size_t s) { shards_[s]->walk_base = MatchingEngine::match_walks(); },
          [this](std::size_t s) {
            shards_[s]->walk_delta = MatchingEngine::match_walks() - shards_[s]->walk_base;
          },
          idle_poll);
      for (std::size_t s = 1; s < shards_.size(); ++s) {
        MatchingEngine::add_match_walks(shards_[s]->walk_delta);
      }
    }
  }
  // Events past `end` (in-flight deliveries, future publications) stay
  // queued; a subsequent run() continues seamlessly.
  measured_s_ += duration_s;
  rebuild_master_state();
  if (sampler_csv_ && sample_interval_us_ > 0 && sampler_.row_count() > 0) {
    sampler_.write_csv(obs::TimeSeriesSampler::path_from_env());
  }
}

void Simulation::set_publisher_rate(ClientId client, MsgRate rate_msg_s) {
  assert(rate_msg_s > 0);
  for (auto& spec : deployment_.publishers) {
    if (spec.client == client) spec.rate_msg_s = rate_msg_s;
  }
  for (auto& st : publishers_) {
    if (st.spec.client == client) st.spec.rate_msg_s = rate_msg_s;
  }
}

void Simulation::set_sample_interval_ms(double ms) {
  sample_interval_us_ = ms > 0 ? static_cast<SimTime>(std::llround(ms * 1000.0)) : 0;
}

void Simulation::rebuild_master_state() {
  metrics_.reset();
  for (const auto& sh : shards_) metrics_.merge_from(sh->metrics);
  rebuild_fault_view();
  publish_ledger_.clear();
  for (const auto& sh : shards_) {
    publish_ledger_.insert(publish_ledger_.end(), sh->ledger.begin(), sh->ledger.end());
  }
  // Canonical order regardless of shard layout (advs are unique per
  // publisher whenever more than one shard is in play).
  std::stable_sort(publish_ledger_.begin(), publish_ledger_.end(),
                   [](const PublishRecord& a, const PublishRecord& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.adv != b.adv) return a.adv < b.adv;
                     return a.seq < b.seq;
                   });
  for (const auto& sh : shards_) sampler_.absorb(sh->sampler);
  sampler_.sort_rows();
}

void Simulation::rebuild_fault_view() {
  // Shard 0 is the recording replica: full state plus schedule-driven
  // stats and outage windows. The other shards contribute only their
  // hot-path drop/replay counters.
  faults_ = shards_[0]->faults;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    faults_.stats().add(shards_[s]->faults.stats());
  }
}

void Simulation::snapshot_profiled_rates() {
  if (measured_s_ <= 0) return;
  profiled_rate_.clear();
  for (const auto& [b, t] : metrics_.traffic()) {
    profiled_rate_[b] =
        static_cast<double>(t.msgs_in + t.local_deliveries) / measured_s_;
  }
}

void Simulation::schedule_sample(Shard& sh, SimTime at) {
  loop_.queue(sh.index).schedule_keyed(
      at, make_key(kSamplerClass, sh.index, sh.sampler_key_seq++), [this, sp = &sh] {
        if (sp->index != 0) sp->aux_events += 1;
        take_sample(*sp);
        schedule_sample(*sp, loop_.queue(sp->index).now() + sample_interval_us_);
      });
}

void Simulation::take_sample(Shard& sh) {
  const SimTime now = loop_.queue(sh.index).now();
  const double interval_s = to_seconds(sample_interval_us_);
  for (const BrokerId id : sh.owned_sorted) {
    const Broker& br = *brokers_.at(id).broker;
    // A crashed broker emits no row: sampler rows double as heartbeats for
    // the control plane's failure detector, and silence is the signal. The
    // faults_active_ guard keeps fault-free series bit-identical. Baselines
    // are left untouched, so the first post-restart row reports the rates
    // accumulated since the last emitted row.
    if (faults_active_ && br.crashed()) continue;
    SampleBaseline& base = sh.sample_baselines[id];
    std::uint64_t in_now = 0;
    std::uint64_t out_now = 0;
    if (const auto it = sh.metrics.traffic().find(id); it != sh.metrics.traffic().end()) {
      in_now = it->second.msgs_in;
      out_now = it->second.msgs_out;
    }
    const SimTime busy_now = br.out_link().busy_time();
    const double in_rate = static_cast<double>(in_now - base.msgs_in) / interval_s;
    const double out_rate = static_cast<double>(out_now - base.msgs_out) / interval_s;
    const double backlog_s = to_seconds(std::max<SimTime>(br.out_link().busy_until() - now, 0));
    // A crash resets the output link's busy counter, so the delta can go
    // negative mid-outage; clamp (no-op in fault-free runs, where busy
    // time is monotone).
    const double util = std::max(
        0.0,
        static_cast<double>(busy_now - base.busy_us) / static_cast<double>(sample_interval_us_));
    sh.sampler.append(to_seconds(now), id.value(), {in_rate, out_rate, backlog_s, util});
    base = {in_now, out_now, busy_now};
  }
}

void Simulation::reset_metrics() {
  snapshot_profiled_rates();
  metrics_.reset();
  measured_s_ = 0;
  for (const auto& sh : shards_) {
    sh->metrics.reset();
    // Traffic counters restart at zero; link busy time does not, so only
    // the message baselines reset.
    for (auto& [id, base] : sh->sample_baselines) {
      (void)id;
      base.msgs_in = 0;
      base.msgs_out = 0;
    }
  }
}

std::size_t Simulation::events_executed() const {
  std::size_t aux = 0;
  for (const auto& sh : shards_) aux += sh->aux_events;
  return loop_.executed() - aux;
}

BrokerInfo Simulation::broker_info(BrokerId id) const {
  const Broker& br = broker(id);
  return br.cbc().snapshot(id, br.capacity().delay, br.capacity().out_bw_kb_s);
}

SimSummary Simulation::summarize() const {
  SimSummary s;
  s.duration_s = measured_s_;
  s.allocated_brokers = brokers_.size();
  s.publications = metrics_.publications();
  s.deliveries = metrics_.deliveries();
  s.avg_hop_count = metrics_.avg_hops();
  s.avg_delivery_delay_ms = metrics_.avg_delay_ms();
  s.p50_delivery_delay_ms = metrics_.delay_histogram().percentile_ms(0.50);
  s.p99_delivery_delay_ms = metrics_.delay_histogram().percentile_ms(0.99);
  s.retransmit_overflow = faults_.stats().retransmit_overflow;
  s.pubs_deferred = faults_.stats().pubs_deferred_admission;
  s.pubs_shed = faults_.stats().pubs_shed_admission;
  s.msgs_stranded = stranded_total_;

  double util_total = 0;
  for (const auto& [b, traffic] : metrics_.traffic()) {
    (void)b;
    if (traffic.msgs_in + traffic.msgs_out > 0) s.brokers_with_traffic += 1;
    s.broker_msgs_total += traffic.msgs_in + traffic.msgs_out;
  }
  std::size_t with_subs_or_traffic = 0;
  for (const auto& [id, slot] : brokers_) {
    const auto it = metrics_.traffic().find(id);
    const bool processed = it != metrics_.traffic().end() && it->second.msgs_in > 0;
    if (processed) {
      with_subs_or_traffic += 1;
      // busy_time is an integer microsecond count far below 2^53, so this
      // sum is exact and iteration order cannot perturb it.
      util_total += static_cast<double>(slot.broker->out_link().busy_time());
      const bool no_local = it->second.local_deliveries == 0;
      // A pure forwarder processes traffic but hosts no clients and fans
      // out to at most one direction (Section V-A, Figure 4a).
      if (no_local && deployment_.topology.neighbors(id).size() <= 2 &&
          !client_hosts_.contains(id)) {
        s.pure_forwarding_brokers += 1;
      }
    }
  }
  if (s.duration_s > 0) {
    s.system_msg_rate = static_cast<double>(s.broker_msgs_total) / s.duration_s;
    if (s.allocated_brokers > 0) {
      s.avg_broker_msg_rate = s.system_msg_rate / static_cast<double>(s.allocated_brokers);
    }
    if (with_subs_or_traffic > 0) {
      s.avg_output_utilization = util_total / static_cast<double>(kMicrosPerSecond) /
                                 s.duration_s / static_cast<double>(with_subs_or_traffic);
    }
  }
  return s;
}

}  // namespace greenps
