#include "sim/match_help.hpp"

#include <algorithm>
#include <thread>

namespace greenps {

void MatchHelpQueue::run_chunk(Request& r, std::size_t c) {
  std::vector<std::uint32_t>& hits = (*r.hits)[c];
  hits.clear();
  const std::size_t lo = c * r.chunk;
  const std::size_t hi = std::min(lo + r.chunk, r.n);
  for (std::size_t i = lo; i < hi; ++i) {
    if (r.pred(i)) hits.push_back(static_cast<std::uint32_t>(i));
  }
}

void MatchHelpQueue::evaluate(std::size_t n, CandidatePred pred,
                              std::vector<std::uint32_t>& out) {
  Request req(pred);
  req.n = n;
  req.chunk = chunk_;
  req.nchunks = (n + chunk_ - 1) / chunk_;
  if (chunk_hits_.size() < req.nchunks) chunk_hits_.resize(req.nchunks);
  req.hits = &chunk_hits_;

  Request* expected = nullptr;
  if (!active_.compare_exchange_strong(expected, &req, std::memory_order_seq_cst)) {
    // Another shard's request is in flight; evaluate serially rather than
    // queue behind it (the serial loop is cheap compared to a stall).
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(static_cast<std::uint32_t>(i));
    }
    return;
  }

  // Owner claims chunks alongside any helpers.
  for (;;) {
    const std::size_t c = req.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= req.nchunks) break;
    run_chunk(req, c);
    req.done.fetch_add(1, std::memory_order_release);
  }
  // Wait for helper-claimed chunks, then merge BEFORE retracting the
  // request: chunk_hits_ is shared across sequential owners, and the next
  // owner's CAS succeeds the moment active_ reads null — retracting first
  // would let it clobber the vectors mid-merge. Once done == nchunks
  // (acquire), every chunk write is visible and any helper still inside
  // help() can only claim out-of-range chunks, so merging while the
  // request is still published is safe.
  while (req.done.load(std::memory_order_acquire) < req.nchunks) {
    std::this_thread::yield();
  }
  for (std::size_t c = 0; c < req.nchunks; ++c) {
    out.insert(out.end(), chunk_hits_[c].begin(), chunk_hits_[c].end());
  }
  // Retract, then wait for every helper holding the pointer to leave
  // before the stack frame (and the epoch pin covering the snapshot the
  // predicate reads) goes away.
  active_.store(nullptr, std::memory_order_seq_cst);
  while (helpers_inflight_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

bool MatchHelpQueue::help() {
  helpers_inflight_.fetch_add(1, std::memory_order_seq_cst);
  Request* r = active_.load(std::memory_order_seq_cst);
  if (r == nullptr) {
    helpers_inflight_.fetch_sub(1, std::memory_order_seq_cst);
    return false;
  }
  bool did_work = false;
  for (;;) {
    const std::size_t c = r->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= r->nchunks) break;
    run_chunk(*r, c);
    r->done.fetch_add(1, std::memory_order_release);
    did_work = true;
  }
  if (did_work) donated_.fetch_add(1, std::memory_order_relaxed);
  helpers_inflight_.fetch_sub(1, std::memory_order_seq_cst);
  return did_work;
}

}  // namespace greenps
