#include "sim/match_help.hpp"

#include <algorithm>
#include <thread>

namespace greenps {

void MatchHelpQueue::configure_slots(std::size_t slots) {
  const std::size_t n = std::max<std::size_t>(slots, 1);
  if (slots_.size() == n) return;
  slots_.clear();
  slots_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) slots_.push_back(std::make_unique<Slot>());
}

void MatchHelpQueue::run_chunk(Request& r, std::size_t c) {
  std::vector<std::uint32_t>& hits = (*r.hits)[c];
  hits.clear();
  const std::size_t lo = c * r.chunk;
  const std::size_t hi = std::min(lo + r.chunk, r.n);
  for (std::size_t i = lo; i < hi; ++i) {
    if (r.pred(i)) hits.push_back(static_cast<std::uint32_t>(i));
  }
}

void MatchHelpQueue::evaluate(std::size_t slot, std::size_t n, CandidatePred pred,
                              std::vector<std::uint32_t>& out) {
  Slot& s = *slots_[slot < slots_.size() ? slot : 0];
  // Claim the slot before touching its hit vectors: a previous owner of
  // this slot releases `claimed` only after its last helper left, so the
  // winner may resize chunk_hits without racing anyone.
  if (s.claimed.exchange(true, std::memory_order_acquire)) {
    // Another owner holds this slot (never the simulator — each shard owns
    // its own slot); evaluate serially rather than queue behind it.
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(static_cast<std::uint32_t>(i));
    }
    return;
  }

  Request req(pred);
  req.n = n;
  req.chunk = chunk_;
  req.nchunks = (n + chunk_ - 1) / chunk_;
  if (s.chunk_hits.size() < req.nchunks) s.chunk_hits.resize(req.nchunks);
  req.hits = &s.chunk_hits;
  s.active.store(&req, std::memory_order_seq_cst);

  // Owner claims chunks alongside any helpers.
  for (;;) {
    const std::size_t c = req.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= req.nchunks) break;
    run_chunk(req, c);
    req.done.fetch_add(1, std::memory_order_release);
  }
  // Wait for helper-claimed chunks, then merge BEFORE retracting the
  // request: chunk_hits is shared across this slot's sequential owners, and
  // the next owner may claim the moment `claimed` reads false — retracting
  // and releasing first would let it clobber the vectors mid-merge. Once
  // done == nchunks (acquire), every chunk write is visible and any helper
  // still inside help() can only claim out-of-range chunks, so merging
  // while the request is still published is safe.
  while (req.done.load(std::memory_order_acquire) < req.nchunks) {
    std::this_thread::yield();
  }
  for (std::size_t c = 0; c < req.nchunks; ++c) {
    out.insert(out.end(), s.chunk_hits[c].begin(), s.chunk_hits[c].end());
  }
  // Retract, then wait for every helper holding the pointer to leave
  // before the stack frame (and the epoch pin covering the snapshot the
  // predicate reads) goes away. Only then release the slot claim.
  s.active.store(nullptr, std::memory_order_seq_cst);
  while (s.helpers_inflight.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  s.claimed.store(false, std::memory_order_release);
}

bool MatchHelpQueue::help() {
  bool did_work = false;
  for (const auto& sp : slots_) {
    Slot& s = *sp;
    s.helpers_inflight.fetch_add(1, std::memory_order_seq_cst);
    Request* r = s.active.load(std::memory_order_seq_cst);
    if (r == nullptr) {
      s.helpers_inflight.fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }
    bool helped = false;
    for (;;) {
      const std::size_t c = r->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= r->nchunks) break;
      run_chunk(*r, c);
      r->done.fetch_add(1, std::memory_order_release);
      helped = true;
    }
    if (helped) {
      donated_.fetch_add(1, std::memory_order_relaxed);
      did_work = true;
    }
    s.helpers_inflight.fetch_sub(1, std::memory_order_seq_cst);
  }
  return did_work;
}

}  // namespace greenps
