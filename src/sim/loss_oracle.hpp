// Delivery-loss oracle for chaos runs.
//
// Per-symbol quote streams are deterministic given (seed, symbol), and the
// simulator draws a quote and advances the sequence counter even when the
// publisher's home broker is down. So after a faulted run we can replay the
// publication ledger offline, recompute which publications each subscriber
// should have received, and classify every missed delivery: *excused* when
// an injected fault accounts for it (publisher or subscriber homed on a
// crashed broker around publish time, message parked in a retransmit or
// degraded-mode admission buffer, shed under admission backpressure,
// stranded by a redeploy that decommissioned its buffering broker, or
// still in flight at the horizon) or a *real loss* otherwise.
// With retransmit-on-reconnect enabled and faults limited to broker
// outages, a correct simulator produces zero real losses.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulation.hpp"
#include "workload/stock_quote.hpp"

namespace greenps {

struct LossAuditOptions {
  // Pad each outage window backwards: a message published this long before
  // the crash may still have been in flight toward the dying broker.
  SimTime outage_slack = seconds(0.25);
  // Publications this close to the measurement horizon may still be in
  // flight when the run stops.
  SimTime horizon_slack = seconds(0.25);
};

// One missed delivery with no fault to blame.
struct MissedDelivery {
  SubId sub{};
  AdvId adv{};
  MessageSeq seq = 0;
  SimTime published_at = 0;
};

struct LossAudit {
  std::uint64_t expected = 0;         // matching (sub, publication) pairs audited
  std::uint64_t recorded = 0;         // delivered and profiled by the CBC
  std::uint64_t excused = 0;          // missed, attributable to an injected fault
  std::uint64_t out_of_window = 0;    // slid out of the profiling window; unauditable
  std::uint64_t false_positives = 0;  // profile bit set for a non-matching publication
  std::vector<MissedDelivery> real_losses;

  [[nodiscard]] bool clean() const {
    return real_losses.empty() && false_positives == 0;
  }
};

// `quotes` must be a fresh generator built from the same seed as the run's
// (regeneration restarts every symbol stream from the beginning).
[[nodiscard]] LossAudit audit_losses(const Simulation& sim, StockQuoteGenerator quotes,
                                     const LossAuditOptions& options = {});

}  // namespace greenps
