// The three Phase-3 overlay optimizations (Section V-A..C, Figure 4) and
// the shared build state they mutate.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "alloc/allocation.hpp"
#include "overlay_build/recursive_builder.hpp"

namespace greenps {

// Mutable state of the layer-by-layer construction.
struct BuildState {
  // Every allocated broker and what it hosts (subscription units at the
  // leaf layer; child-broker units above).
  std::unordered_map<BrokerId, BrokerLoad> nodes;
  std::unordered_set<BrokerId> used;
  std::vector<BrokerId> current;  // brokers of the layer awaiting a parent
  // Edges added outside the unit bookkeeping (star-root fallback).
  std::vector<std::pair<BrokerId, BrokerId>> extra_edges;
  BrokerId root_override;
};

// Optimization 1: deallocate brokers that host exactly one child-broker
// unit and nothing else (pure forwarders, Figure 4a). The orphaned child is
// promoted back into the layer.
void eliminate_pure_forwarders(BuildState& st, std::vector<BrokerId>& layer,
                               OverlayBuildStats& stats);

// Optimization 2: a parent with spare capacity absorbs the units of its
// least-utilized children directly (Figure 4b), deallocating them. Only
// singleton child units (not CRAM-clustered child groups) are absorbed.
void takeover_children(BuildState& st, std::vector<BrokerId>& layer,
                       const PublisherTable& table, OverlayBuildStats& stats);

// Optimization 3: replace each layer broker with the smallest-capacity
// unallocated broker that still fits its load (Figure 4c).
void best_fit_replacement(BuildState& st, std::vector<BrokerId>& layer,
                          const std::vector<AllocBroker>& all_brokers,
                          const PublisherTable& table, OverlayBuildStats& stats);

// Fallback when the allocator cannot consolidate the layer: pick the most
// resourceful unallocated broker (or the first layer member) as a star root
// for the remaining layer members.
void force_star_root(BuildState& st, const std::vector<AllocBroker>& pool,
                     const PublisherTable& table, OverlayBuildStats& stats);

}  // namespace greenps
