// Phase 3 (Section V): recursive broker overlay construction.
//
// Each broker allocated by Phase 2 is mapped to a subscription-like unit
// (the OR of all profiles it services) and the *same* allocation algorithm
// is invoked recursively, building the tree layer by layer until a single
// broker — the root, where publishers initially attach — remains. Three
// optimizations (Section V-A..C) run after each layer: pure-forwarder
// elimination, child takeover, and best-fit broker replacement.
#pragma once

#include <functional>
#include <unordered_map>

#include "alloc/allocation.hpp"
#include "overlay/topology.hpp"

namespace greenps {

struct OverlayBuildOptions {
  bool eliminate_pure_forwarders = true;  // optimization 1
  bool takeover_children = true;          // optimization 2
  bool best_fit_replacement = true;       // optimization 3
};

struct OverlayBuildStats {
  std::size_t layers = 0;
  std::size_t pure_forwarders_removed = 0;
  std::size_t children_taken_over = 0;
  std::size_t best_fit_replacements = 0;
  bool forced_root = false;  // allocator ran out of brokers; star fallback
};

struct BuiltOverlay {
  Topology tree;
  BrokerId root;
  // Subscription units finally hosted per broker (after takeovers and
  // replacements). Brokers present only as interior forwarders map to an
  // empty vector.
  std::unordered_map<BrokerId, std::vector<SubUnit>> hosted_units;
  OverlayBuildStats stats;

  [[nodiscard]] std::size_t broker_count() const { return tree.broker_count(); }
};

// The Phase-2 algorithm, re-invoked per layer. Receives the unallocated
// broker pool and the child units; returns an Allocation (success=false
// when the pool is exhausted).
using AllocatorFn = std::function<Allocation(
    const std::vector<AllocBroker>&, const std::vector<SubUnit>&, const PublisherTable&)>;

// `phase2` is the leaf-layer allocation; `all_brokers` the full broker pool
// from Phase 1 (used brokers are excluded automatically per layer).
[[nodiscard]] BuiltOverlay build_overlay(const Allocation& phase2,
                                         const std::vector<AllocBroker>& all_brokers,
                                         const PublisherTable& table,
                                         const AllocatorFn& allocator,
                                         const OverlayBuildOptions& options = {});

}  // namespace greenps
