#include "overlay_build/recursive_builder.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "overlay_build/optimizations.hpp"

namespace greenps {

BuiltOverlay build_overlay(const Allocation& phase2,
                           const std::vector<AllocBroker>& all_brokers,
                           const PublisherTable& table, const AllocatorFn& allocator,
                           const OverlayBuildOptions& options) {
  assert(phase2.success && !phase2.brokers.empty());

  BuildState st;
  for (const BrokerLoad& load : phase2.brokers) {
    const BrokerId id = load.broker().id;
    st.nodes.emplace(id, load);
    st.used.insert(id);
    st.current.push_back(id);
  }

  BuiltOverlay out;
  out.stats.layers = 1;  // the Phase-2 leaf layer

  while (st.current.size() > 1) {
    // One span per recursive layer, tagged with the layer index (1 = first
    // interior layer above the Phase-2 leaves).
    GREENPS_SPAN_TAGGED("phase3.layer", out.stats.layers);
    // Map each broker of the current layer to one subscription-like unit.
    std::vector<SubUnit> child_units;
    child_units.reserve(st.current.size());
    for (const BrokerId id : st.current) {
      child_units.push_back(
          make_child_broker_unit(id, st.nodes.at(id).union_profile(), table));
    }
    // Remaining pool: every Phase-1 broker not already allocated.
    std::vector<AllocBroker> pool;
    for (const AllocBroker& b : all_brokers) {
      if (!st.used.contains(b.id)) pool.push_back(b);
    }
    sort_by_capacity_desc(pool);

    Allocation layer = allocator(pool, child_units, table);
    const std::size_t prev_size = st.current.size();
    if (!layer.success || layer.brokers.size() >= prev_size) {
      // Pool exhausted or no consolidation possible: force a star root so
      // the reconfiguration still terminates with a valid tree.
      force_star_root(st, pool, table, out.stats);
      break;
    }
    out.stats.layers += 1;

    std::vector<BrokerId> next;
    for (BrokerLoad& load : layer.brokers) {
      const BrokerId id = load.broker().id;
      st.nodes.emplace(id, std::move(load));
      st.used.insert(id);
      next.push_back(id);
    }

    if (options.eliminate_pure_forwarders) {
      eliminate_pure_forwarders(st, next, out.stats);
    }
    if (options.takeover_children) {
      takeover_children(st, next, table, out.stats);
    }
    if (options.best_fit_replacement) {
      best_fit_replacement(st, next, all_brokers, table, out.stats);
    }

    if (next.size() >= prev_size) {
      // Optimizations undid the consolidation; avoid cycling forever.
      force_star_root(st, {}, table, out.stats);
      st.current = {st.root_override};
      break;
    }
    st.current = std::move(next);
  }

  // Derive the tree from the hosted child units.
  const BrokerId root = st.root_override.valid() ? st.root_override : st.current.front();
  out.root = root;
  out.tree.add_broker(root);
  for (const auto& [id, load] : st.nodes) {
    out.tree.add_broker(id);
    for (const SubUnit& u : load.units()) {
      for (const BrokerId child : u.child_members) out.tree.add_link(id, child);
    }
  }
  for (const auto& [parent, child] : st.extra_edges) out.tree.add_link(parent, child);

  for (const auto& [id, load] : st.nodes) {
    auto& hosted = out.hosted_units[id];
    for (const SubUnit& u : load.units()) {
      if (!u.is_child_broker()) hosted.push_back(u);
    }
  }

  if (!out.tree.is_tree()) {
    log::warn("phase-3 overlay is not a tree (brokers=", out.tree.broker_count(),
              " links=", out.tree.link_count(), ")");
  }
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("phase3.layers").set(static_cast<double>(out.stats.layers));
  reg.gauge("phase3.overlay_brokers").set(static_cast<double>(out.tree.broker_count()));
  return out;
}

}  // namespace greenps
