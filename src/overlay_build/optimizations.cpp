#include "overlay_build/optimizations.hpp"

#include <algorithm>
#include <cassert>

#include "common/logging.hpp"

namespace greenps {

void eliminate_pure_forwarders(BuildState& st, std::vector<BrokerId>& layer,
                               OverlayBuildStats& stats) {
  std::vector<BrokerId> result;
  result.reserve(layer.size());
  for (const BrokerId id : layer) {
    const BrokerLoad& node = st.nodes.at(id);
    const bool pure = node.units().size() == 1 && node.units()[0].is_child_broker() &&
                      node.units()[0].child_members.size() == 1;
    if (!pure) {
      result.push_back(id);
      continue;
    }
    // Deallocate the forwarder; its single child returns to the layer to be
    // parented next round.
    const BrokerId child = node.units()[0].child_members[0];
    st.nodes.erase(id);
    st.used.erase(id);
    result.push_back(child);
    stats.pure_forwarders_removed += 1;
  }
  layer = std::move(result);
}

void takeover_children(BuildState& st, std::vector<BrokerId>& layer,
                       const PublisherTable& table, OverlayBuildStats& stats) {
  for (const BrokerId pid : layer) {
    // Children reachable through singleton child units, least utilized
    // first ("in order of least-to-highest utilization", Section V-B).
    bool changed = true;
    while (changed) {
      changed = false;
      const BrokerLoad& parent = st.nodes.at(pid);
      std::vector<std::pair<double, BrokerId>> kids;
      for (const SubUnit& u : parent.units()) {
        if (u.is_child_broker() && u.child_members.size() == 1) {
          const BrokerId c = u.child_members[0];
          const auto cit = st.nodes.find(c);
          if (cit != st.nodes.end()) kids.emplace_back(cit->second.utilization(), c);
        }
      }
      std::sort(kids.begin(), kids.end());
      for (const auto& [util, c] : kids) {
        (void)util;
        // Candidate load: the parent without c's child unit, plus all of
        // c's own units.
        BrokerLoad candidate(parent.broker());
        bool ok = true;
        for (const SubUnit& u : parent.units()) {
          if (u.is_child_broker() && u.child_members.size() == 1 &&
              u.child_members[0] == c) {
            continue;  // the stream we are absorbing
          }
          if (!candidate.try_add(u, table)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        for (const SubUnit& u : st.nodes.at(c).units()) {
          if (!candidate.try_add(u, table)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        // Commit: parent absorbs the child; the child broker is freed.
        st.nodes.at(pid) = std::move(candidate);
        st.nodes.erase(c);
        st.used.erase(c);
        stats.children_taken_over += 1;
        changed = true;
        break;  // re-enumerate children against the new load
      }
    }
  }
}

void best_fit_replacement(BuildState& st, std::vector<BrokerId>& layer,
                          const std::vector<AllocBroker>& all_brokers,
                          const PublisherTable& table, OverlayBuildStats& stats) {
  for (BrokerId& pid : layer) {
    const BrokerLoad& node = st.nodes.at(pid);
    // Smallest unallocated broker that still fits the load and is smaller
    // than the current one.
    const AllocBroker* best = nullptr;
    for (const AllocBroker& b : all_brokers) {
      if (st.used.contains(b.id)) continue;
      if (b.out_bw >= node.broker().out_bw) continue;
      if (best != nullptr && b.out_bw >= best->out_bw) continue;
      BrokerLoad candidate(b);
      bool ok = true;
      for (const SubUnit& u : node.units()) {
        if (!candidate.try_add(u, table)) {
          ok = false;
          break;
        }
      }
      if (ok) best = &b;
    }
    if (best == nullptr) continue;
    BrokerLoad replacement(*best);
    for (const SubUnit& u : node.units()) replacement.add(u, table);
    st.nodes.erase(pid);
    st.used.erase(pid);
    st.nodes.emplace(best->id, std::move(replacement));
    st.used.insert(best->id);
    pid = best->id;
    stats.best_fit_replacements += 1;
  }
}

void force_star_root(BuildState& st, const std::vector<AllocBroker>& pool,
                     const PublisherTable& table, OverlayBuildStats& stats) {
  stats.forced_root = true;
  BrokerId root;
  if (!pool.empty()) {
    // Pool arrives sorted descending; take the most resourceful.
    root = pool.front().id;
    BrokerLoad load(pool.front());
    for (const BrokerId id : st.current) {
      load.add(make_child_broker_unit(id, st.nodes.at(id).union_profile(), table), table);
    }
    st.nodes.emplace(root, std::move(load));
    st.used.insert(root);
  } else {
    root = st.current.front();
    for (std::size_t i = 1; i < st.current.size(); ++i) {
      st.extra_edges.emplace_back(root, st.current[i]);
    }
  }
  st.root_override = root;
  log::warn("phase-3: forced star root at broker ", to_string(root));
}

}  // namespace greenps
