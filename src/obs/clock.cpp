#include "obs/clock.hpp"

#include <chrono>
#include <limits>

namespace greenps::obs {

namespace {
constexpr std::int64_t kNoSimTime = std::numeric_limits<std::int64_t>::min();
thread_local std::int64_t t_sim_time = kNoSimTime;
}  // namespace

std::uint64_t wall_now_us() {
  // Epoch fixed on first call anywhere in the process (thread-safe local
  // static); every later call measures against it.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

void set_sim_time_us(std::int64_t t) { t_sim_time = t; }

void clear_sim_time() { t_sim_time = kNoSimTime; }

std::optional<std::int64_t> current_sim_time_us() {
  if (t_sim_time == kNoSimTime) return std::nullopt;
  return t_sim_time;
}

}  // namespace greenps::obs
