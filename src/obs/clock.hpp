// Shared observability clock.
//
// All observability timestamps — trace-span begin/end, log-line prefixes —
// come from one steady-clock epoch fixed at the first use in the process,
// so a `+12.345s` log line and a trace event at ts=12345000 µs name the
// same instant. The event loop additionally publishes the simulated time
// of the event it is executing into a thread-local slot, letting the
// logger stamp lines produced inside a simulation with the sim time they
// correspond to.
#pragma once

#include <cstdint>
#include <optional>

namespace greenps::obs {

// Microseconds of steady (wall) time since the process-wide epoch.
[[nodiscard]] std::uint64_t wall_now_us();

// Publish/withdraw the simulated time (µs) the current thread is executing
// under. Cheap (one thread-local store); the event loop calls this per
// event.
void set_sim_time_us(std::int64_t t);
void clear_sim_time();
[[nodiscard]] std::optional<std::int64_t> current_sim_time_us();

}  // namespace greenps::obs
