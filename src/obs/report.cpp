#include "obs/report.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace greenps::obs {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_array(const std::vector<std::string>& rendered_elems) {
  std::string out = "[";
  for (std::size_t i = 0; i < rendered_elems.size(); ++i) {
    if (i > 0) out += ',';
    out += rendered_elems[i];
  }
  out += ']';
  return out;
}

JsonObject& JsonObject::set_raw(std::string key, std::string rendered_value) {
  fields_.emplace_back(std::move(key), std::move(rendered_value));
  return *this;
}

JsonObject& JsonObject::set_string(std::string key, const std::string& v) {
  return set_raw(std::move(key), json_quote(v));
}

JsonObject& JsonObject::set_number(std::string key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return set_raw(std::move(key), buf);
}

JsonObject& JsonObject::set_integer(std::string key, std::size_t v) {
  return set_raw(std::move(key), std::to_string(v));
}

JsonObject& JsonObject::set_bool(std::string key, bool v) {
  return set_raw(std::move(key), v ? "true" : "false");
}

std::string JsonObject::render() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ',';
    out += json_quote(fields_[i].first);
    out += ':';
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[greenps obs] cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[greenps obs] short write to %s\n", path.c_str());
  return ok;
}

RunReport::RunReport(std::string bench) { doc_.set_string("bench", bench); }

RunReport& RunReport::add_row(const JsonObject& row) {
  rows_.push_back(row.render());
  return *this;
}

RunReport& RunReport::add_row(std::string rendered_row) {
  rows_.push_back(std::move(rendered_row));
  return *this;
}

RunReport& RunReport::add_metrics_snapshot() {
  JsonObject metrics;
  for (const auto& e : MetricsRegistry::global().snapshot()) {
    switch (e.kind) {
      case MetricsRegistry::Entry::Kind::kCounter:
        metrics.set_integer(e.name, static_cast<std::size_t>(e.value));
        break;
      case MetricsRegistry::Entry::Kind::kGauge:
        metrics.set_number(e.name, e.value);
        break;
      case MetricsRegistry::Entry::Kind::kHistogram: {
        JsonObject h;
        h.set_integer("samples", e.samples)
            .set_number("mean", e.value)
            .set_number("p50", e.p50)
            .set_number("p99", e.p99);
        metrics.set_raw(e.name, h.render());
        break;
      }
    }
  }
  doc_.set_raw("metrics", metrics.render());
  return *this;
}

std::string RunReport::render(const std::string& rows_key) const {
  JsonObject doc = doc_;
  doc.set_raw(rows_key, json_array(rows_));
  return doc.render() + "\n";
}

bool RunReport::write(const std::string& path, const std::string& rows_key) const {
  const bool ok = write_text_file(path, render(rows_key));
  if (ok) std::printf("\nwrote %s (%zu result rows)\n", path.c_str(), rows_.size());
  return ok;
}

}  // namespace greenps::obs
