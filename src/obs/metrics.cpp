#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greenps::obs {

LogHistogram::LogHistogram(double first_bucket, double growth, std::size_t buckets)
    : first_(first_bucket), growth_(growth), log_growth_(std::log(growth)),
      counts_(buckets, 0) {
  assert(first_bucket > 0 && growth > 1.0 && buckets >= 2);
}

std::size_t LogHistogram::bucket_for(double v) const {
  if (v <= first_) return 0;
  const auto b = static_cast<std::size_t>(std::log(v / first_) / log_growth_);
  return std::min(b + 1, counts_.size() - 1);
}

void LogHistogram::record(double v) {
  v = std::max(v, 0.0);
  counts_[bucket_for(v)] += 1;
  total_ += 1;
  sum_ += v;
}

double LogHistogram::percentile(double fraction) const {
  if (total_ == 0) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(fraction * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) {
      const double lo = i == 0 ? 0.0 : first_ * std::pow(growth_, i - 1);
      const double hi = first_ * std::pow(growth_, i);
      return (lo + hi) / 2.0;
    }
  }
  return first_ * std::pow(growth_, counts_.size());
}

double LogHistogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

void LogHistogram::merge(const LogHistogram& other) {
  assert(counts_.size() == other.counts_.size() && first_ == other.first_ &&
         growth_ == other.growth_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void LogHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0;
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked for the same reason as the tracer registry: worker threads may
  // outlive static destruction.
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name, double first_bucket,
                                         double growth, std::size_t buckets) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LogHistogram>(first_bucket, growth, buckets);
  return *slot;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot() const {
  std::vector<Entry> out;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [name, c] : counters_) {
      out.push_back({name, Entry::Kind::kCounter, static_cast<double>(c->value()), 0, 0, 0});
    }
    for (const auto& [name, g] : gauges_) {
      out.push_back({name, Entry::Kind::kGauge, g->value(), 0, 0, 0});
    }
    for (const auto& [name, h] : histograms_) {
      out.push_back({name, Entry::Kind::kHistogram, h->mean(), h->samples(),
                     h->percentile(0.50), h->percentile(0.99)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

}  // namespace greenps::obs
