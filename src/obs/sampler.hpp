// Sim time-series sampler.
//
// Collects periodic per-entity snapshots (per-broker message rates, queue
// depth, bandwidth utilization) keyed by sim time and renders them as CSV
// for offline plotting. The simulator drives it from the event loop when
// GREENPS_OBS_SAMPLE_MS is set; it stays completely inert otherwise so
// event counts and allocation decisions remain bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace greenps::obs {

class TimeSeriesSampler {
 public:
  struct Row {
    double time_s;
    std::uint64_t key;
    std::vector<double> values;
  };

  // `key_column` names the per-entity id column (e.g. "broker");
  // `value_columns` name the metrics appended per sample row.
  TimeSeriesSampler(std::string key_column, std::vector<std::string> value_columns);

  // Append one row: values.size() must equal the configured column count.
  void append(double time_s, std::uint64_t key, const std::vector<double>& values);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  // In-memory view for programmatic consumers (the elastic controller reads
  // load series straight off the simulator instead of re-parsing CSV).
  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::string render_csv() const;
  bool write_csv(const std::string& path) const;
  void clear() { rows_.clear(); }

  // Move every row of `other` into this sampler (and clear `other`); the
  // sharded simulator reduces per-shard samplers into one stream this way.
  void absorb(TimeSeriesSampler& other);
  // Stable-sort rows by (time, key): canonical order after absorbing
  // shards, identical to what a single-shard run appends naturally.
  void sort_rows();

  // GREENPS_OBS_SAMPLE_MS parsed as a sim-time sampling interval; 0 when
  // unset/invalid, meaning sampling is disabled.
  [[nodiscard]] static std::int64_t interval_us_from_env();
  // GREENPS_OBS_SAMPLES output path, default "obs_samples.csv".
  [[nodiscard]] static std::string path_from_env();

 private:
  std::string key_column_;
  std::vector<std::string> value_columns_;
  std::vector<Row> rows_;
};

}  // namespace greenps::obs
