#include "obs/sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "obs/report.hpp"

namespace greenps::obs {

TimeSeriesSampler::TimeSeriesSampler(std::string key_column,
                                     std::vector<std::string> value_columns)
    : key_column_(std::move(key_column)), value_columns_(std::move(value_columns)) {}

void TimeSeriesSampler::append(double time_s, std::uint64_t key,
                               const std::vector<double>& values) {
  assert(values.size() == value_columns_.size());
  rows_.push_back({time_s, key, values});
}

void TimeSeriesSampler::absorb(TimeSeriesSampler& other) {
  assert(other.value_columns_.size() == value_columns_.size());
  if (rows_.empty()) {
    rows_ = std::move(other.rows_);
  } else {
    rows_.reserve(rows_.size() + other.rows_.size());
    for (Row& r : other.rows_) rows_.push_back(std::move(r));
  }
  other.rows_.clear();
}

void TimeSeriesSampler::sort_rows() {
  std::stable_sort(rows_.begin(), rows_.end(), [](const Row& a, const Row& b) {
    return a.time_s != b.time_s ? a.time_s < b.time_s : a.key < b.key;
  });
}

std::string TimeSeriesSampler::render_csv() const {
  std::string out = "time_s," + key_column_;
  for (const auto& c : value_columns_) {
    out += ',';
    out += c;
  }
  out += '\n';
  char buf[64];
  for (const Row& row : rows_) {
    std::snprintf(buf, sizeof(buf), "%.6f,%llu", row.time_s,
                  static_cast<unsigned long long>(row.key));
    out += buf;
    for (const double v : row.values) {
      std::snprintf(buf, sizeof(buf), ",%.6g", v);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

bool TimeSeriesSampler::write_csv(const std::string& path) const {
  const bool ok = write_text_file(path, render_csv());
  if (ok) {
    std::printf("wrote %s (%zu sample rows)\n", path.c_str(), rows_.size());
  }
  return ok;
}

std::int64_t TimeSeriesSampler::interval_us_from_env() {
  const char* v = std::getenv("GREENPS_OBS_SAMPLE_MS");
  if (v == nullptr || *v == '\0') return 0;
  const long ms = std::strtol(v, nullptr, 10);
  return ms > 0 ? static_cast<std::int64_t>(ms) * 1000 : 0;
}

std::string TimeSeriesSampler::path_from_env() {
  const char* v = std::getenv("GREENPS_OBS_SAMPLES");
  return (v != nullptr && *v != '\0') ? v : "obs_samples.csv";
}

}  // namespace greenps::obs
