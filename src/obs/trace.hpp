// Thread-safe span tracer exporting Chrome trace-event JSON.
//
// RAII scoped spans plus instant and counter events are recorded into
// per-thread buffers (one uncontended mutex each) and drained on flush
// into a single JSON document loadable in Perfetto or chrome://tracing.
//
// Tracing is OFF by default and costs one relaxed atomic load per
// disabled GREENPS_SPAN, so the macros can sit on warm paths. Enable it
// with the environment variable GREENPS_TRACE=<path> (auto-started before
// main, flushed at process exit) or programmatically with trace_start() /
// trace_stop(). Compiling with -DGREENPS_OBS_DISABLE removes the macros
// entirely for zero-footprint builds.
//
// Event names must have static storage duration (string literals): the
// tracer stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>

namespace greenps::obs {

// ---- control ----

// Begin recording; events flush to `path` on trace_stop()/process exit.
// Restarting discards anything recorded for the previous path.
void trace_start(const std::string& path);
// Disable recording and write the trace file.
void trace_stop();
// Write everything recorded so far without stopping. Returns false if
// tracing never started or the file cannot be written.
bool trace_flush();
[[nodiscard]] bool trace_enabled();
[[nodiscard]] std::string trace_path();

// ---- event recording ----

inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

// Complete event ('X'): [start_us, end_us) on the shared obs clock.
void trace_complete(const char* name, std::uint64_t start_us, std::uint64_t end_us,
                    std::uint64_t arg = kNoArg);
// Instant event ('i') at now.
void trace_instant(const char* name, std::uint64_t arg = kNoArg);
// Counter sample ('C') at now; renders as a value track.
void trace_counter(const char* name, double value);

// Now on the shared obs timeline (µs since process epoch).
[[nodiscard]] std::uint64_t trace_now_us();

class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::uint64_t arg = kNoArg) {
    if (trace_enabled()) {
      name_ = name;
      arg_ = arg;
      start_ = trace_now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) trace_complete(name_, start_, trace_now_us(), arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint64_t arg_ = kNoArg;
};

}  // namespace greenps::obs

#if defined(GREENPS_OBS_DISABLE)
#define GREENPS_SPAN(name)
#define GREENPS_SPAN_TAGGED(name, arg)
#define GREENPS_INSTANT(name)
#define GREENPS_COUNTER(name, value)
#else
#define GREENPS_OBS_CONCAT2(a, b) a##b
#define GREENPS_OBS_CONCAT(a, b) GREENPS_OBS_CONCAT2(a, b)
// Scoped span: lives until the end of the enclosing block.
#define GREENPS_SPAN(name) \
  const ::greenps::obs::TraceSpan GREENPS_OBS_CONCAT(greenps_span_, __LINE__) { name }
// Scoped span carrying one integer argument (worker slot, layer index...).
#define GREENPS_SPAN_TAGGED(name, arg)                                      \
  const ::greenps::obs::TraceSpan GREENPS_OBS_CONCAT(greenps_span_, __LINE__) { \
    name, static_cast<std::uint64_t>(arg)                                   \
  }
#define GREENPS_INSTANT(name) ::greenps::obs::trace_instant(name)
#define GREENPS_COUNTER(name, value)                                            \
  do {                                                                          \
    if (::greenps::obs::trace_enabled())                                        \
      ::greenps::obs::trace_counter(name, static_cast<double>(value));          \
  } while (0)
#endif
