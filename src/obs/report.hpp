// Unified run-report writer.
//
// The single producer of the machine-readable BENCH_*.json result files:
// one JSON-escaping implementation, one document assembler, one file
// writer. Benches build a RunReport (top-level fields + result rows) and
// write it; the rendered schema is exactly what the hand-rolled per-bench
// writers used to emit, so downstream tooling keyed on BENCH_cram.json /
// BENCH_sim.json sees no difference.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace greenps::obs {

[[nodiscard]] std::string json_quote(const std::string& s);
[[nodiscard]] std::string json_array(const std::vector<std::string>& rendered_elems);

// Minimal JSON object assembly. Values are stored pre-rendered; use the
// typed setters for escaping. Fields render in insertion order.
class JsonObject {
 public:
  JsonObject& set_raw(std::string key, std::string rendered_value);
  JsonObject& set_string(std::string key, const std::string& v);
  JsonObject& set_number(std::string key, double v);
  JsonObject& set_integer(std::string key, std::size_t v);
  JsonObject& set_bool(std::string key, bool v);
  [[nodiscard]] std::string render() const;  // {"k":v,...}

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Write `content` to `path` (truncating); returns false and warns on failure.
bool write_text_file(const std::string& path, const std::string& content);

// One run report: a flat header of run-level fields plus an array of
// result rows, rendered as {"bench":...,<header fields>,"<rows_key>":[...]}.
class RunReport {
 public:
  explicit RunReport(std::string bench);

  // Top-level fields after "bench" (insertion order preserved).
  [[nodiscard]] JsonObject& header() { return doc_; }
  RunReport& add_row(const JsonObject& row);
  RunReport& add_row(std::string rendered_row);
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  // Attach a "metrics" object rendered from the global MetricsRegistry
  // snapshot (opt-in; absent unless called, keeping legacy schemas exact).
  RunReport& add_metrics_snapshot();

  // Render and write; prints "wrote <path> (N result rows)" on success.
  bool write(const std::string& path, const std::string& rows_key = "rows") const;
  [[nodiscard]] std::string render(const std::string& rows_key = "rows") const;

 private:
  JsonObject doc_;
  std::vector<std::string> rows_;
};

}  // namespace greenps::obs
