#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/clock.hpp"

namespace greenps::obs {

namespace {

struct TraceEvent {
  const char* name;
  char ph;           // 'X' complete, 'i' instant, 'C' counter
  std::uint64_t ts;  // µs on the shared obs clock
  std::uint64_t dur = 0;
  std::uint64_t arg = kNoArg;
  double value = 0;  // counters only
};

// One buffer per thread. The owning thread appends under the buffer's own
// mutex (uncontended except during a flush), so a concurrent flush from
// another thread is race-free — this is what keeps the tracer TSan-clean
// while pool workers record spans.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint64_t next_tid = 1;
  std::string path;
  bool started = false;
  bool atexit_registered = false;
  std::atomic<bool> enabled{false};
};

Registry& registry() {
  // Intentionally leaked: worker threads (and their thread_local buffer
  // holders) may outlive static destruction order.
  static Registry* r = new Registry;
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lk(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void record(TraceEvent ev) {
  ThreadBuffer& b = local_buffer();
  const std::lock_guard<std::mutex> lk(b.mu);
  b.events.push_back(ev);
}

void append_json(std::string& out, const TraceEvent& ev, std::uint64_t tid) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"cat\":\"greenps\",\"ph\":\"%c\",\"pid\":1,\"tid\":%llu,\"ts\":%llu",
                ev.name, ev.ph, static_cast<unsigned long long>(tid),
                static_cast<unsigned long long>(ev.ts));
  out += buf;
  if (ev.ph == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%llu", static_cast<unsigned long long>(ev.dur));
    out += buf;
  }
  if (ev.ph == 'i') out += ",\"s\":\"t\"";
  if (ev.ph == 'C') {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.6g}", ev.value);
    out += buf;
  } else if (ev.arg != kNoArg) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"tag\":%llu}",
                  static_cast<unsigned long long>(ev.arg));
    out += buf;
  }
  out += '}';
}

// Render all recorded events into one Chrome trace-event JSON document.
// Caller holds no locks; buffers are locked one at a time.
std::string render() {
  struct Out {
    TraceEvent ev;
    std::uint64_t tid;
  };
  std::vector<Out> all;
  Registry& r = registry();
  {
    const std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& b : r.buffers) {
      const std::lock_guard<std::mutex> blk(b->mu);
      for (const TraceEvent& ev : b->events) all.push_back({ev, b->tid});
    }
  }
  // Stable time order makes the file diffable and easy to golden-test.
  std::sort(all.begin(), all.end(), [](const Out& a, const Out& b) {
    return a.ev.ts != b.ev.ts ? a.ev.ts < b.ev.ts : a.tid < b.tid;
  });
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += ",\n";
    append_json(out, all[i].ev, all[i].tid);
  }
  out += "\n]}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[greenps obs] cannot write trace %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[greenps obs] short write to %s\n", path.c_str());
  return ok;
}

void stop_at_exit() { trace_stop(); }

// GREENPS_TRACE=<path> starts the tracer before main() runs, so every
// binary in the repo (benches, examples, tests) is traceable with no code
// changes.
struct EnvInit {
  EnvInit() {
    if (const char* p = std::getenv("GREENPS_TRACE"); p != nullptr && *p != '\0') {
      trace_start(p);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

bool trace_enabled() { return registry().enabled.load(std::memory_order_relaxed); }

std::uint64_t trace_now_us() { return wall_now_us(); }

void trace_start(const std::string& path) {
  Registry& r = registry();
  {
    const std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& b : r.buffers) {
      const std::lock_guard<std::mutex> blk(b->mu);
      b->events.clear();
    }
    r.path = path;
    r.started = true;
    if (!r.atexit_registered) {
      r.atexit_registered = true;
      std::atexit(stop_at_exit);
    }
  }
  r.enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  Registry& r = registry();
  if (!r.enabled.exchange(false, std::memory_order_relaxed)) return;
  trace_flush();
}

bool trace_flush() {
  Registry& r = registry();
  std::string path;
  {
    const std::lock_guard<std::mutex> lk(r.mu);
    if (!r.started) return false;
    path = r.path;
  }
  return write_file(path, render());
}

std::string trace_path() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lk(r.mu);
  return r.path;
}

void trace_complete(const char* name, std::uint64_t start_us, std::uint64_t end_us,
                    std::uint64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'X';
  ev.ts = start_us;
  ev.dur = end_us >= start_us ? end_us - start_us : 0;
  ev.arg = arg;
  record(ev);
}

void trace_instant(const char* name, std::uint64_t arg) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'i';
  ev.ts = trace_now_us();
  ev.arg = arg;
  record(ev);
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.ph = 'C';
  ev.ts = trace_now_us();
  ev.value = value;
  record(ev);
}

}  // namespace greenps::obs
