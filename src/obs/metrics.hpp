// Metrics registry: named counters, gauges, and log-bucketed histograms.
//
// The registry is the process-wide home for operational metrics the
// pipeline emits (CRAM probe counts, CROC phase seconds, simulator
// rates). Counters and gauges are atomics and safe to update from any
// thread; histograms are single-writer (the simulator's event loop and
// CRAM's decision path are single-threaded where they record).
//
// LogHistogram generalizes the delay histogram the simulator has always
// used (sim/metrics.hpp's DelayHistogram is now a thin wrapper): constant
// memory regardless of sample volume, ~growth/2 relative error on
// percentile estimates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace greenps::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Logarithmically-bucketed histogram over non-negative values. Bucket i>0
// covers (first * growth^(i-1), first * growth^i]; bucket 0 covers
// [0, first]. The last bucket absorbs everything above the range.
class LogHistogram {
 public:
  LogHistogram(double first_bucket, double growth, std::size_t buckets);

  void record(double v);
  // Estimated value below which `fraction` of samples fall (midpoint of
  // the bucket holding that rank).
  [[nodiscard]] double percentile(double fraction) const;
  [[nodiscard]] std::uint64_t samples() const { return total_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  // Accumulate another histogram of identical shape.
  void merge(const LogHistogram& other);
  void reset();

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::size_t bucket_for(double v) const;

 private:
  double first_;
  double growth_;
  double log_growth_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0;
};

// Named-metric registry. Lookup interns the name on first use and returns
// a reference that stays valid for the registry's lifetime, so hot paths
// can resolve once and update the reference.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Shape parameters apply on first registration; later lookups of the
  // same name return the existing histogram unchanged.
  LogHistogram& histogram(const std::string& name, double first_bucket = 1.0,
                          double growth = 1.15, std::size_t buckets = 120);

  struct Entry {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    double value = 0;            // counter/gauge value; histogram mean
    std::uint64_t samples = 0;   // histograms only
    double p50 = 0, p99 = 0;     // histograms only
  };
  // Sorted-by-name snapshot of every registered metric.
  [[nodiscard]] std::vector<Entry> snapshot() const;

  // Zero every metric (counters/gauges to 0, histograms emptied).
  void reset();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

}  // namespace greenps::obs
