#include "broker/routing_tables.hpp"

#include <algorithm>

#include "matching/relations.hpp"

namespace greenps {

namespace {
std::atomic<bool> g_adv_pruning_enabled{true};
}  // namespace

void SubscriptionRoutingTable::set_adv_pruning_enabled(bool enabled) {
  g_adv_pruning_enabled.store(enabled, std::memory_order_relaxed);
}
bool SubscriptionRoutingTable::adv_pruning_enabled() {
  return g_adv_pruning_enabled.load(std::memory_order_relaxed);
}

std::vector<SubscriptionRoutingTable::EqPred> SubscriptionRoutingTable::eq_preds(
    const Filter& f) {
  std::vector<EqPred> out;
  for (const Predicate& p : f.predicates()) {
    if (p.op != Op::kEq) continue;
    out.push_back(EqPred{Interner::global().intern(p.attribute), value_key(p.value)});
  }
  return out;
}

// Conservative disjointness: if both filters carry an equality predicate on
// the same attribute with different value keys, no publication value can
// equal both, so the filters share no matching publication. (Equal keys of
// different values exist only for NaN; keeping such a candidate is merely
// conservative.) This is far cheaper than a full intersects() — no filter
// normalization/copies — at the cost of a slightly wider candidate set for
// range-disjoint filters, which the per-candidate match re-check absorbs.
bool SubscriptionRoutingTable::eq_disjoint(const std::vector<EqPred>& a,
                                           const std::vector<EqPred>& b) {
  for (const EqPred& pa : a) {
    for (const EqPred& pb : b) {
      if (pa.attr == pb.attr && !(pa.key == pb.key)) return true;
    }
  }
  return false;
}

void SubscriptionRoutingTable::insert(SubId sub, const Filter& filter, Hop next_hop) {
  if (hops_.contains(sub)) remove(sub);
  engine_.insert(sub.value(), filter);
  hops_.insert_or_assign(sub, next_hop);
  dirty_.store(true, std::memory_order_relaxed);
  if (advs_.empty()) return;
  const CompiledFilter* cf = engine_.compiled(sub.value());
  const std::vector<EqPred> sub_eqs = eq_preds(filter);
  for (auto& [adv, scope] : advs_) {
    (void)adv;
    if (eq_disjoint(scope.eqs, sub_eqs)) continue;
    const auto pos = std::lower_bound(
        scope.candidates.begin(), scope.candidates.end(), sub.value(),
        [](const Cand& c, MatchingEngine::Handle h) { return c.handle < h; });
    scope.candidates.insert(pos, Cand{sub.value(), cf, next_hop});
  }
}

void SubscriptionRoutingTable::remove(SubId sub) {
  if (!hops_.contains(sub)) return;
  engine_.remove(sub.value());
  hops_.erase(sub);
  dirty_.store(true, std::memory_order_relaxed);
  for (auto& [adv, scope] : advs_) {
    (void)adv;
    const auto pos = std::lower_bound(
        scope.candidates.begin(), scope.candidates.end(), sub.value(),
        [](const Cand& c, MatchingEngine::Handle h) { return c.handle < h; });
    if (pos != scope.candidates.end() && pos->handle == sub.value()) {
      scope.candidates.erase(pos);
    }
  }
}

void SubscriptionRoutingTable::register_advertisement(AdvId id, const Filter& filter) {
  AdvScope scope;
  scope.compiled = CompiledFilter(filter);
  scope.eqs = eq_preds(filter);
  engine_.for_each([&](MatchingEngine::Handle h, const Filter& f) {
    if (eq_disjoint(scope.eqs, eq_preds(f))) return;
    const auto hit = hops_.find(SubId{h});
    if (hit == hops_.end()) return;
    scope.candidates.push_back(Cand{h, engine_.compiled(h), hit->second});
  });
  std::sort(scope.candidates.begin(), scope.candidates.end(),
            [](const Cand& a, const Cand& b) { return a.handle < b.handle; });
  advs_.insert_or_assign(id, std::move(scope));
  dirty_.store(true, std::memory_order_relaxed);
}

SubscriptionRoutingTable::Snapshot* SubscriptionRoutingTable::build_snapshot() const {
  auto* s = new Snapshot();
  s->engine = engine_.build_snapshot();
  // Dense-index lookup for the hop array and the advertisement candidate
  // remap. Every engine handle has a hop (insert/remove keep them in sync).
  std::unordered_map<MatchingEngine::Handle, std::uint32_t> dense;
  dense.reserve(s->engine.subs.size());
  s->hops.reserve(s->engine.subs.size());
  for (const auto& sub : s->engine.subs) {
    dense.emplace(sub.handle, static_cast<std::uint32_t>(s->hops.size()));
    s->hops.push_back(hops_.at(SubId{sub.handle}));
  }
  s->advs.reserve(advs_.size());
  for (const auto& [id, scope] : advs_) {
    Snapshot::SnapScope snap_scope;
    snap_scope.compiled = scope.compiled;
    snap_scope.candidates.reserve(scope.candidates.size());
    for (const Cand& c : scope.candidates) snap_scope.candidates.push_back(dense.at(c.handle));
    s->advs.emplace(id, std::move(snap_scope));
  }
  return s;
}

void SubscriptionRoutingTable::publish() {
  if (!dirty_.load(std::memory_order_relaxed)) return;
  Snapshot* s = build_snapshot();
  s->version = next_version_++;
  dirty_.store(false, std::memory_order_relaxed);
  snap_.publish(s);
}

std::uint64_t SubscriptionRoutingTable::published_version() const {
  EpochGuard guard;
  const Snapshot* s = snap_.load();
  return s == nullptr ? 0 : s->version;
}

void SubscriptionRoutingTable::finalize(MatchResult& result) {
  // Deterministic ordering for reproducible simulations; forwarding dedup is
  // one sort + unique instead of a quadratic std::find per hop.
  std::sort(result.forward_to.begin(), result.forward_to.end());
  result.forward_to.erase(std::unique(result.forward_to.begin(), result.forward_to.end()),
                          result.forward_to.end());
  std::sort(result.deliver.begin(), result.deliver.end());
}

void SubscriptionRoutingTable::match_snapshot(const Snapshot& snap, const Publication& pub,
                                              const BrokerId* exclude, MatchResult& result,
                                              MatchScratch& scratch,
                                              CandidateEvaluator* eval) const {
  result.clear();
  auto route = [&](std::uint32_t idx) {
    const Hop& hop = snap.hops[idx];
    if (hop.kind == Hop::Kind::kClient) {
      result.deliver.emplace_back(SubId{snap.engine.subs[idx].handle}, hop.client);
    } else {
      if (exclude != nullptr && hop.broker == *exclude) return;
      result.forward_to.push_back(hop.broker);
    }
  };
  const Snapshot::SnapScope* scope = nullptr;
  if (adv_pruning_enabled() && pub.adv_id().valid()) {
    const auto it = snap.advs.find(pub.adv_id());
    if (it != snap.advs.end() && it->second.compiled.matches(pub)) scope = &it->second;
  }
  if (scope != nullptr) {
    // Advertisement-scoped fast path: the candidate list is one dense pass.
    // Walks are credited up front as in the live path; with an evaluator the
    // pass fans out but the emitted order (ascending candidate position)
    // keeps the result bit-identical.
    MatchingEngine::add_match_walks(scope->candidates.size());
    auto pred = [&](std::size_t i) {
      return snap.engine.subs[scope->candidates[i]].filter.matches(pub);
    };
    for_each_matching(eval, &scratch, scope->candidates.size(), pred,
                      [&](std::size_t i) { route(scope->candidates[i]); });
  } else {
    scratch.dense.clear();
    snap.engine.match_into(pub, scratch, scratch.dense, eval);
    for (const std::uint32_t idx : scratch.dense) route(idx);
  }
  finalize(result);
}

void SubscriptionRoutingTable::match_live(const Publication& pub, const BrokerId* exclude,
                                          MatchResult& result, MatchScratch& scratch,
                                          CandidateEvaluator* eval) const {
  (void)eval;  // parallel evaluation runs on published snapshots only
  result.clear();
  const AdvScope* scope = nullptr;
  if (adv_pruning_enabled() && pub.adv_id().valid()) {
    const auto it = advs_.find(pub.adv_id());
    // Pruning applies only to conforming publications; anything else (or an
    // unknown advertisement) takes the full engine match.
    if (it != advs_.end() && it->second.compiled.matches(pub)) scope = &it->second;
  }
  if (scope != nullptr) {
    // Fast path: candidates carry compiled filter and hop, so the whole
    // routing decision is a linear pass with zero hash lookups.
    MatchingEngine::add_match_walks(scope->candidates.size());
    for (const Cand& c : scope->candidates) {
      if (!c.filter->matches(pub)) continue;
      if (c.hop.kind == Hop::Kind::kClient) {
        result.deliver.emplace_back(SubId{c.handle}, c.hop.client);
      } else {
        if (exclude != nullptr && c.hop.broker == *exclude) continue;
        result.forward_to.push_back(c.hop.broker);
      }
    }
  } else {
    scratch.handles.clear();
    engine_.match_into(pub, scratch.handles);
    for (const auto handle : scratch.handles) {
      const SubId sub{handle};
      const auto it = hops_.find(sub);
      if (it == hops_.end()) continue;
      const Hop& hop = it->second;
      if (hop.kind == Hop::Kind::kClient) {
        result.deliver.emplace_back(sub, hop.client);
      } else {
        if (exclude != nullptr && hop.broker == *exclude) continue;
        result.forward_to.push_back(hop.broker);
      }
    }
  }
  finalize(result);
}

void SubscriptionRoutingTable::match_into(const Publication& pub, const BrokerId* exclude,
                                          MatchResult& result, MatchScratch& scratch,
                                          CandidateEvaluator* eval) const {
  if (!dirty_.load(std::memory_order_relaxed)) {
    EpochGuard guard;
    if (const Snapshot* s = snap_.load(); s != nullptr) {
      match_snapshot(*s, pub, exclude, result, scratch, eval);
      return;
    }
  }
  match_live(pub, exclude, result, scratch, eval);
}

std::uint64_t SubscriptionRoutingTable::match_published(const Publication& pub,
                                                        const BrokerId* exclude,
                                                        MatchResult& result,
                                                        MatchScratch& scratch,
                                                        CandidateEvaluator* eval) const {
  EpochGuard guard;
  const Snapshot* s = snap_.load();
  if (s == nullptr) {
    result.clear();
    return 0;
  }
  match_snapshot(*s, pub, exclude, result, scratch, eval);
  return s->version;
}

void AdvertisementRoutingTable::insert(Advertisement adv, Hop last_hop) {
  remove(adv.id());
  entries_.push_back(Entry{std::move(adv), last_hop});
  dirty_.store(true, std::memory_order_relaxed);
}

void AdvertisementRoutingTable::remove(AdvId id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.adv.id() == id; }),
                 entries_.end());
  dirty_.store(true, std::memory_order_relaxed);
}

std::vector<Hop> AdvertisementRoutingTable::directions_for(const Filter& f) const {
  std::vector<Hop> out;
  for (const Entry& e : entries_) {
    if (!intersects(e.adv.filter(), f)) continue;
    if (std::find(out.begin(), out.end(), e.last_hop) == out.end()) {
      out.push_back(e.last_hop);
    }
  }
  return out;
}

void AdvertisementRoutingTable::publish() {
  if (!dirty_.load(std::memory_order_relaxed)) return;
  auto* s = new Snapshot();
  s->entries = entries_;
  s->version = next_version_++;
  dirty_.store(false, std::memory_order_relaxed);
  snap_.publish(s);
}

std::uint64_t AdvertisementRoutingTable::published_version() const {
  EpochGuard guard;
  const Snapshot* s = snap_.load();
  return s == nullptr ? 0 : s->version;
}

std::uint64_t AdvertisementRoutingTable::directions_for_published(
    const Filter& f, std::vector<Hop>& out) const {
  out.clear();
  EpochGuard guard;
  const Snapshot* s = snap_.load();
  if (s == nullptr) return 0;
  for (const Entry& e : s->entries) {
    if (!intersects(e.adv.filter(), f)) continue;
    if (std::find(out.begin(), out.end(), e.last_hop) == out.end()) {
      out.push_back(e.last_hop);
    }
  }
  return s->version;
}

}  // namespace greenps
