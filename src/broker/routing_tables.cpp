#include "broker/routing_tables.hpp"

#include <algorithm>

#include "matching/relations.hpp"

namespace greenps {

void SubscriptionRoutingTable::insert(SubId sub, const Filter& filter, Hop next_hop) {
  if (hops_.contains(sub)) engine_.remove(sub.value());
  engine_.insert(sub.value(), filter);
  hops_.insert_or_assign(sub, next_hop);
}

void SubscriptionRoutingTable::remove(SubId sub) {
  if (!hops_.contains(sub)) return;
  engine_.remove(sub.value());
  hops_.erase(sub);
}

SubscriptionRoutingTable::MatchResult SubscriptionRoutingTable::match(
    const Publication& pub, const BrokerId* exclude) const {
  MatchResult result;
  for (const auto handle : engine_.match(pub)) {
    const SubId sub{handle};
    const auto it = hops_.find(sub);
    if (it == hops_.end()) continue;
    const Hop& hop = it->second;
    if (hop.kind == Hop::Kind::kClient) {
      result.deliver.emplace_back(sub, hop.client);
    } else {
      if (exclude != nullptr && hop.broker == *exclude) continue;
      if (std::find(result.forward_to.begin(), result.forward_to.end(), hop.broker) ==
          result.forward_to.end()) {
        result.forward_to.push_back(hop.broker);
      }
    }
  }
  // Deterministic ordering for reproducible simulations.
  std::sort(result.forward_to.begin(), result.forward_to.end());
  std::sort(result.deliver.begin(), result.deliver.end());
  return result;
}

void AdvertisementRoutingTable::insert(Advertisement adv, Hop last_hop) {
  remove(adv.id());
  entries_.push_back(Entry{std::move(adv), last_hop});
}

void AdvertisementRoutingTable::remove(AdvId id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.adv.id() == id; }),
                 entries_.end());
}

std::vector<Hop> AdvertisementRoutingTable::directions_for(const Filter& f) const {
  std::vector<Hop> out;
  for (const Entry& e : entries_) {
    if (!intersects(e.adv.filter(), f)) continue;
    if (std::find(out.begin(), out.end(), e.last_hop) == out.end()) {
      out.push_back(e.last_hop);
    }
  }
  return out;
}

}  // namespace greenps
