#include "broker/cbc.hpp"

namespace greenps {

void CbcComponent::register_subscription(SubId id, ClientId client, Filter filter) {
  SubState s{client, std::move(filter), SubscriptionProfile(window_bits_)};
  subs_.insert_or_assign(id, std::move(s));
  ++epoch_;
}

void CbcComponent::unregister_subscription(SubId id) {
  if (subs_.erase(id) > 0) ++epoch_;
}

void CbcComponent::record_delivery(SubId id, AdvId adv, MessageSeq seq) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return;
  it->second.profile.record(adv, seq);
}

void CbcComponent::register_publisher(ClientId client, AdvId adv) {
  PubState p;
  p.client = client;
  pubs_.insert_or_assign(adv, p);
  ++epoch_;
}

void CbcComponent::unregister_publisher(AdvId adv) {
  if (pubs_.erase(adv) > 0) ++epoch_;
}

void CbcComponent::record_publish(AdvId adv, MessageSeq seq, MsgSize size_kb, SimTime now) {
  const auto it = pubs_.find(adv);
  if (it == pubs_.end()) return;
  PubState& p = it->second;
  p.last_seq = seq;
  p.messages += 1;
  p.bytes_kb += size_kb;
  if (p.first_publish < 0) p.first_publish = now;
  p.last_publish = now;
}

void CbcComponent::record_matching(std::size_t filters, SimTime service) {
  // Keep two sample buckets: the smallest and largest filter counts seen.
  // The widest spread gives the most stable line fit; samples at counts
  // strictly between the buckets add little and are dropped.
  auto& s = match_samples_;
  auto add = [&](MatchSamples::Bucket& b) {
    b.filters = filters;
    b.total_s += to_seconds(service);
    b.n += 1;
  };
  if (s.lo.n == 0) {
    add(s.lo);
  } else if (filters == s.lo.filters) {
    add(s.lo);
  } else if (s.hi.n == 0) {
    if (filters > s.lo.filters) {
      add(s.hi);
    } else {
      s.hi = s.lo;
      s.lo = {};
      add(s.lo);
    }
  } else if (filters == s.hi.filters) {
    add(s.hi);
  } else if (filters < s.lo.filters) {
    s.lo = {};
    add(s.lo);
  } else if (filters > s.hi.filters) {
    s.hi = {};
    add(s.hi);
  }
}

std::optional<MatchingDelayFunction> CbcComponent::fitted_delay() const {
  const auto& s = match_samples_;
  if (s.lo.n == 0 || s.hi.n == 0 || s.lo.filters == s.hi.filters) return std::nullopt;
  return fit_delay_function(s.lo.filters, s.lo.total_s / static_cast<double>(s.lo.n),
                            s.hi.filters, s.hi.total_s / static_cast<double>(s.hi.n));
}

BrokerInfo CbcComponent::snapshot(BrokerId broker, const MatchingDelayFunction& fallback_delay,
                                  Bandwidth out_bw) const {
  BrokerInfo info;
  info.id = broker;
  info.delay = fitted_delay().value_or(fallback_delay);
  info.total_out_bw = out_bw;
  info.epoch = epoch_;
  info.subscriptions.reserve(subs_.size());
  for (const auto& [id, s] : subs_) {
    info.subscriptions.push_back(LocalSubscriptionInfo{id, s.client, s.filter, s.profile});
  }
  info.publishers.reserve(pubs_.size());
  for (const auto& [adv, p] : pubs_) {
    PublisherProfile prof;
    prof.adv = adv;
    prof.last_seq = p.last_seq;
    // Average over the span between first and last publish. With a single
    // sample the span is zero; treat the rate as unknown-but-positive by
    // spreading one message over one second.
    const double span_s =
        p.messages > 1 && p.last_publish > p.first_publish
            ? to_seconds(p.last_publish - p.first_publish) *
                  (static_cast<double>(p.messages) / static_cast<double>(p.messages - 1))
            : 1.0;
    prof.rate_msg_s = static_cast<double>(p.messages) / span_s;
    prof.bw_kb_s = p.bytes_kb / span_s;
    info.publishers.push_back(LocalPublisherInfo{p.client, prof});
  }
  return info;
}

void CbcComponent::clear() {
  subs_.clear();
  pubs_.clear();
  ++epoch_;
}

}  // namespace greenps
