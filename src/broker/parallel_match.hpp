// Thread-pool backed candidate evaluator for intra-broker parallel
// matching.
//
// Splits a candidate batch into fixed-size chunks, claims chunks
// dynamically across the pool, and merges per-chunk hit lists in chunk
// order — so the emitted index sequence (and therefore the MatchResult) is
// bit-identical to the serial loop for any thread count. The predicate runs
// concurrently on several threads; it must only read immutable snapshot
// state and bump thread_local counters, which is exactly what the published
// routing-table snapshots guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "matching/matching_engine.hpp"

namespace greenps {

class PoolCandidateEvaluator : public CandidateEvaluator {
 public:
  static constexpr std::size_t kDefaultChunk = 128;

  // `threshold`: minimum candidate count before fanning out (below it the
  // caller's serial loop is faster than the dispatch). `chunk`: candidates
  // per claimed chunk; large enough to amortize the claim, small enough to
  // balance skewed filters.
  explicit PoolCandidateEvaluator(ThreadPool& pool, std::size_t threshold,
                                  std::size_t chunk = kDefaultChunk)
      : pool_(pool), threshold_(threshold), chunk_(chunk == 0 ? kDefaultChunk : chunk) {}

  [[nodiscard]] std::size_t threshold() const override { return threshold_; }

  void evaluate(std::size_t n, CandidatePred pred,
                std::vector<std::uint32_t>& out) override;

 private:
  ThreadPool& pool_;
  std::size_t threshold_;
  std::size_t chunk_;
  std::vector<std::vector<std::uint32_t>> chunk_hits_;  // reused across calls
};

}  // namespace greenps
