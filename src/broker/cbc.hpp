// CROC Back-end Component (CBC, Section III).
//
// Lives inside each broker. It profiles local subscribers (maintaining one
// windowed bit vector per (subscription, publisher) pair) and local
// publishers (rate, bandwidth, last message ID), and answers CROC's Broker
// Information Request with a BrokerInfo snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "language/subscription.hpp"
#include "matching/delay_model.hpp"
#include "profile/publisher_profile.hpp"
#include "profile/subscription_profile.hpp"

namespace greenps {

// One locally attached subscription as reported in a BIA message.
struct LocalSubscriptionInfo {
  SubId id;
  ClientId client;
  Filter filter;
  SubscriptionProfile profile;
};

// One locally attached publisher as reported in a BIA message.
struct LocalPublisherInfo {
  ClientId client;
  PublisherProfile profile;
};

// The per-broker payload of a Broker Information Answer (Section III-A).
struct BrokerInfo {
  BrokerId id;                        // stands in for the broker URL
  MatchingDelayFunction delay;        // matching delay function
  Bandwidth total_out_bw = 0;         // total output bandwidth
  // Structural profile epoch at snapshot time (see CbcComponent::epoch()).
  // An incremental gather skips re-transferring this broker's payload when
  // its epoch has not moved since the cached BIA.
  std::uint64_t epoch = 0;
  std::vector<LocalSubscriptionInfo> subscriptions;
  std::vector<LocalPublisherInfo> publishers;
};

class CbcComponent {
 public:
  explicit CbcComponent(std::size_t profile_window_bits = WindowedBitVector::kDefaultCapacity)
      : window_bits_(profile_window_bits) {}

  // --- subscriber profiling ---
  void register_subscription(SubId id, ClientId client, Filter filter);
  void unregister_subscription(SubId id);
  // Called on every local delivery; fills the bit vectors.
  void record_delivery(SubId id, AdvId adv, MessageSeq seq);

  // --- publisher profiling ---
  void register_publisher(ClientId client, AdvId adv);
  void unregister_publisher(AdvId adv);
  // Called on every local publish.
  void record_publish(AdvId adv, MessageSeq seq, MsgSize size_kb, SimTime now);

  // --- matching-delay profiling ---
  // Called whenever the broker matches a publication against `filters`
  // filters, taking `service` time. The BIA's "matching delay function"
  // (a linear model) is fitted from these samples.
  void record_matching(std::size_t filters, SimTime service);
  // Fitted model, or nullopt until samples at two distinct filter counts
  // exist (a line needs two points).
  [[nodiscard]] std::optional<MatchingDelayFunction> fitted_delay() const;

  // Snapshot for a BIA message. `fallback_delay`/`out_bw` describe the
  // hosting broker; the measured delay model is preferred when available.
  [[nodiscard]] BrokerInfo snapshot(BrokerId broker,
                                    const MatchingDelayFunction& fallback_delay,
                                    Bandwidth out_bw) const;

  void clear();

  [[nodiscard]] std::size_t subscription_count() const { return subs_.size(); }
  [[nodiscard]] std::size_t publisher_count() const { return pubs_.size(); }

  // Structural profile epoch: bumped when the set of local subscriptions or
  // publishers changes (register/unregister/clear), NOT on every recorded
  // delivery or publish — message traffic must not invalidate cached BIAs,
  // or epoch-based incremental gathers would never get a cache hit.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  struct SubState {
    ClientId client;
    Filter filter;
    SubscriptionProfile profile;
  };
  struct PubState {
    ClientId client;
    MessageSeq last_seq = -1;
    std::size_t messages = 0;
    double bytes_kb = 0;
    SimTime first_publish = -1;
    SimTime last_publish = -1;
  };

  struct MatchSamples {
    // Mean service time per observed filter-count bucket; two buckets are
    // enough to fit the line exactly for a linear matcher and average out
    // noise for a real one.
    struct Bucket {
      std::size_t filters = 0;
      double total_s = 0;
      std::size_t n = 0;
    };
    Bucket lo;
    Bucket hi;
  };

  std::size_t window_bits_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<SubId, SubState> subs_;
  std::unordered_map<AdvId, PubState> pubs_;
  MatchSamples match_samples_;
};

}  // namespace greenps
