#include "broker/parallel_match.hpp"

#include <algorithm>

namespace greenps {

void PoolCandidateEvaluator::evaluate(std::size_t n, CandidatePred pred,
                                      std::vector<std::uint32_t>& out) {
  const std::size_t nchunks = (n + chunk_ - 1) / chunk_;
  if (chunk_hits_.size() < nchunks) chunk_hits_.resize(nchunks);
  pool_.parallel_for(nchunks, [&](std::size_t c) {
    std::vector<std::uint32_t>& hits = chunk_hits_[c];
    hits.clear();
    const std::size_t lo = c * chunk_;
    const std::size_t hi = std::min(lo + chunk_, n);
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) hits.push_back(static_cast<std::uint32_t>(i));
    }
  });
  // Chunk-order merge: chunk c holds ascending indices from [c*chunk,
  // (c+1)*chunk), so concatenation is globally ascending — the evaluator
  // contract — no matter which thread ran which chunk.
  for (std::size_t c = 0; c < nchunks; ++c) {
    out.insert(out.end(), chunk_hits_[c].begin(), chunk_hits_[c].end());
  }
}

}  // namespace greenps
