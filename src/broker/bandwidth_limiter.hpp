// FIFO serialization of a finite-rate resource.
//
// Models both a broker's throttled output link ("we achieve bandwidth
// throttling through the use of a bandwidth limiter in each broker",
// Section VI-A) and, with a fixed service time, its matching CPU.
#pragma once

#include "common/units.hpp"

namespace greenps {

class BandwidthLimiter {
 public:
  explicit BandwidthLimiter(Bandwidth rate_kb_s) : rate_kb_s_(rate_kb_s) {}

  // Enqueue a message of `size_kb` arriving at `now`; returns the time its
  // transmission completes. Calls must have non-decreasing `now`.
  SimTime transmit(SimTime now, MsgSize size_kb);

  [[nodiscard]] Bandwidth rate() const { return rate_kb_s_; }
  [[nodiscard]] SimTime busy_until() const { return ready_; }
  // Total busy time accumulated (for utilization metrics).
  [[nodiscard]] SimTime busy_time() const { return busy_; }

  void reset();

 private:
  Bandwidth rate_kb_s_;
  SimTime ready_ = 0;
  SimTime busy_ = 0;
};

// FIFO server with per-message service time chosen by the caller (used for
// the matching stage, whose delay depends on the live filter count).
class FifoServer {
 public:
  // Returns completion time of a job arriving at `now` with the given
  // service duration.
  SimTime serve(SimTime now, SimTime service);

  [[nodiscard]] SimTime busy_until() const { return ready_; }
  [[nodiscard]] SimTime busy_time() const { return busy_; }

  void reset();

 private:
  SimTime ready_ = 0;
  SimTime busy_ = 0;
};

}  // namespace greenps
