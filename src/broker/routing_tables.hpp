// Routing state of a filter-based publish/subscribe broker: the
// subscription routing table (SRT) steering publications toward subscribers
// and the publication/advertisement routing table (PRT) steering
// subscriptions toward matching advertisements.
//
// Concurrency model: mutations (insert/remove/register_advertisement) and
// publish() belong to one owning thread. The match read paths are const and
// keep no table-side scratch — callers own a MatchScratch — so once a
// snapshot is published, any number of threads can match concurrently and
// lock-free via match_published() while the owner keeps mutating and
// re-publishing: readers pin an epoch, load the snapshot pointer with one
// atomic load, and retired snapshots are reclaimed when the last reader
// leaves (src/common/epoch.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/epoch.hpp"
#include "common/ids.hpp"
#include "language/advertisement.hpp"
#include "matching/matching_engine.hpp"

namespace greenps {

// Next hop of a routed message: either a neighbor broker or a locally
// attached client.
struct Hop {
  enum class Kind : std::uint8_t { kBroker, kClient };

  Kind kind = Kind::kBroker;
  BrokerId broker;
  ClientId client;

  [[nodiscard]] static Hop to_broker(BrokerId b) {
    Hop h;
    h.kind = Kind::kBroker;
    h.broker = b;
    return h;
  }
  [[nodiscard]] static Hop to_client(ClientId c) {
    Hop h;
    h.kind = Kind::kClient;
    h.client = c;
    return h;
  }

  friend bool operator==(const Hop&, const Hop&) = default;
};

class SubscriptionRoutingTable {
 public:
  struct MatchResult {
    // Unique neighbor brokers that need one copy of the publication.
    std::vector<BrokerId> forward_to;
    // Local subscriber deliveries: one copy per matching subscription.
    std::vector<std::pair<SubId, ClientId>> deliver;

    void clear() {
      forward_to.clear();
      deliver.clear();
    }
  };

  SubscriptionRoutingTable() = default;

  // Install or replace the routing entry for `sub`.
  void insert(SubId sub, const Filter& filter, Hop next_hop);
  void remove(SubId sub);

  // Announce an advertisement known at this broker. A conforming publication
  // from `id` (one matching the advertisement's filter) can only match
  // subscriptions compatible with it, so the table precomputes a
  // conservative candidate set per advertisement — routing tables are
  // static during a simulation run — and matches only those candidates.
  // Each candidate carries its compiled filter and next hop, so the fast
  // path runs without any per-candidate hash lookup. Non-conforming
  // publications fall back to the full engine match, so registration never
  // changes the match set.
  void register_advertisement(AdvId id, const Filter& filter);

  // Build an immutable snapshot of the current table and publish it with a
  // single atomic pointer swap. Owner-thread only; cheap when nothing
  // changed since the last publish.
  void publish();
  // Version of the latest published snapshot (0 before the first publish).
  [[nodiscard]] std::uint64_t published_version() const;

  // Match a publication, optionally excluding the broker link it arrived on
  // (never forward a publication back where it came from). `out` is cleared
  // first. Owner-thread path: routes through the published snapshot when it
  // is current, else through the live index. `scratch` is caller-owned;
  // `eval` (optional) fans large candidate batches across threads with a
  // bit-identical result.
  void match_into(const Publication& pub, const BrokerId* exclude, MatchResult& out,
                  MatchScratch& scratch, CandidateEvaluator* eval = nullptr) const;

  // Convenience overload with call-local scratch (allocates; tests and cold
  // paths only).
  void match_into(const Publication& pub, const BrokerId* exclude, MatchResult& out) const {
    MatchScratch scratch;
    match_into(pub, exclude, out, scratch);
  }

  // Lock-free concurrent read path: match against the latest published
  // snapshot, never touching live state. Safe from any thread at any time,
  // including while the owner mutates and re-publishes. Returns the
  // snapshot version matched against, or 0 (empty result) if nothing has
  // been published yet.
  std::uint64_t match_published(const Publication& pub, const BrokerId* exclude,
                                MatchResult& out, MatchScratch& scratch,
                                CandidateEvaluator* eval = nullptr) const;

  [[nodiscard]] MatchResult match(const Publication& pub,
                                  const BrokerId* exclude = nullptr) const {
    MatchResult out;
    match_into(pub, exclude, out);
    return out;
  }

  [[nodiscard]] std::size_t filter_count() const { return hops_.size(); }
  [[nodiscard]] bool contains(SubId sub) const { return hops_.contains(sub); }

  // Test hook: disable advertisement-scoped candidate pruning process-wide
  // (the determinism test asserts identical results either way). The flag
  // is atomic; flip it only while no match is in flight.
  static void set_adv_pruning_enabled(bool enabled);
  [[nodiscard]] static bool adv_pruning_enabled();

 private:
  // One equality predicate of a filter in interned form, for the
  // candidate-set disjointness test: two filters with equality predicates on
  // the same attribute but different values can never match the same
  // publication.
  struct EqPred {
    InternId attr = kNoIntern;
    ValueKey key;
  };

  struct Cand {
    MatchingEngine::Handle handle;
    const CompiledFilter* filter;  // owned by engine_, valid while inserted
    Hop hop;
  };

  struct AdvScope {
    CompiledFilter compiled;   // conformance check for incoming publications
    std::vector<EqPred> eqs;   // the advertisement's equality predicates
    std::vector<Cand> candidates;  // sorted by handle
  };

  // Immutable published table: the engine snapshot (dense subs in ascending
  // handle order) plus a hop per dense sub and the advertisement scopes
  // with candidates as dense indices.
  struct Snapshot {
    struct SnapScope {
      CompiledFilter compiled;
      std::vector<std::uint32_t> candidates;  // dense, ascending handle
    };

    MatchingEngine::Snapshot engine;
    std::vector<Hop> hops;  // parallel to engine.subs
    std::unordered_map<AdvId, SnapScope> advs;
    std::uint64_t version = 0;
  };

  [[nodiscard]] static std::vector<EqPred> eq_preds(const Filter& f);
  [[nodiscard]] static bool eq_disjoint(const std::vector<EqPred>& a,
                                        const std::vector<EqPred>& b);

  [[nodiscard]] Snapshot* build_snapshot() const;
  void match_snapshot(const Snapshot& snap, const Publication& pub,
                      const BrokerId* exclude, MatchResult& out, MatchScratch& scratch,
                      CandidateEvaluator* eval) const;
  void match_live(const Publication& pub, const BrokerId* exclude, MatchResult& out,
                  MatchScratch& scratch, CandidateEvaluator* eval) const;
  static void finalize(MatchResult& out);

  MatchingEngine engine_;
  std::unordered_map<SubId, Hop> hops_;
  std::unordered_map<AdvId, AdvScope> advs_;
  EpochPtr<Snapshot> snap_;
  std::uint64_t next_version_ = 1;
  // Set by mutators, cleared by publish(): the owner-thread match path uses
  // the snapshot only while it reflects the live table.
  std::atomic<bool> dirty_{true};
};

class AdvertisementRoutingTable {
 public:
  struct Entry {
    Advertisement adv;
    Hop last_hop;  // direction toward the publisher
  };

  void insert(Advertisement adv, Hop last_hop);
  void remove(AdvId id);

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  // Directions (deduplicated) toward every advertisement intersecting `f`.
  // Owner-thread path (reads the live table).
  [[nodiscard]] std::vector<Hop> directions_for(const Filter& f) const;

  // Publish an immutable copy of the table; see SubscriptionRoutingTable.
  void publish();
  [[nodiscard]] std::uint64_t published_version() const;
  // Lock-free read of the latest published snapshot; appends to `out`
  // (cleared first). Returns the snapshot version, or 0 if none.
  std::uint64_t directions_for_published(const Filter& f, std::vector<Hop>& out) const;

 private:
  struct Snapshot {
    std::vector<Entry> entries;
    std::uint64_t version = 0;
  };

  std::vector<Entry> entries_;
  EpochPtr<Snapshot> snap_;
  std::uint64_t next_version_ = 1;
  std::atomic<bool> dirty_{true};
};

}  // namespace greenps
