// Routing state of a filter-based publish/subscribe broker: the
// subscription routing table (SRT) steering publications toward subscribers
// and the publication/advertisement routing table (PRT) steering
// subscriptions toward matching advertisements.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "language/advertisement.hpp"
#include "matching/matching_engine.hpp"

namespace greenps {

// Next hop of a routed message: either a neighbor broker or a locally
// attached client.
struct Hop {
  enum class Kind : std::uint8_t { kBroker, kClient };

  Kind kind = Kind::kBroker;
  BrokerId broker;
  ClientId client;

  [[nodiscard]] static Hop to_broker(BrokerId b) {
    Hop h;
    h.kind = Kind::kBroker;
    h.broker = b;
    return h;
  }
  [[nodiscard]] static Hop to_client(ClientId c) {
    Hop h;
    h.kind = Kind::kClient;
    h.client = c;
    return h;
  }

  friend bool operator==(const Hop&, const Hop&) = default;
};

class SubscriptionRoutingTable {
 public:
  struct MatchResult {
    // Unique neighbor brokers that need one copy of the publication.
    std::vector<BrokerId> forward_to;
    // Local subscriber deliveries: one copy per matching subscription.
    std::vector<std::pair<SubId, ClientId>> deliver;

    void clear() {
      forward_to.clear();
      deliver.clear();
    }
  };

  // Install or replace the routing entry for `sub`.
  void insert(SubId sub, const Filter& filter, Hop next_hop);
  void remove(SubId sub);

  // Announce an advertisement known at this broker. A conforming publication
  // from `id` (one matching the advertisement's filter) can only match
  // subscriptions compatible with it, so the table precomputes a
  // conservative candidate set per advertisement — routing tables are
  // static during a simulation run — and matches only those candidates.
  // Each candidate carries its compiled filter and next hop, so the fast
  // path runs without any per-candidate hash lookup. Non-conforming
  // publications fall back to the full engine match, so registration never
  // changes the match set.
  void register_advertisement(AdvId id, const Filter& filter);

  // Match a publication, optionally excluding the broker link it arrived on
  // (never forward a publication back where it came from). `out` is cleared
  // first; reusing one MatchResult across calls avoids reallocation.
  void match_into(const Publication& pub, const BrokerId* exclude, MatchResult& out) const;

  [[nodiscard]] MatchResult match(const Publication& pub,
                                  const BrokerId* exclude = nullptr) const {
    MatchResult out;
    match_into(pub, exclude, out);
    return out;
  }

  [[nodiscard]] std::size_t filter_count() const { return hops_.size(); }
  [[nodiscard]] bool contains(SubId sub) const { return hops_.contains(sub); }

  // Test hook: disable advertisement-scoped candidate pruning process-wide
  // (the determinism test asserts identical results either way). Not
  // thread-safe against concurrent matching.
  static void set_adv_pruning_enabled(bool enabled);
  [[nodiscard]] static bool adv_pruning_enabled();

 private:
  // One equality predicate of a filter in interned form, for the
  // candidate-set disjointness test: two filters with equality predicates on
  // the same attribute but different values can never match the same
  // publication.
  struct EqPred {
    InternId attr = kNoIntern;
    ValueKey key;
  };

  struct Cand {
    MatchingEngine::Handle handle;
    const CompiledFilter* filter;  // owned by engine_, valid while inserted
    Hop hop;
  };

  struct AdvScope {
    CompiledFilter compiled;   // conformance check for incoming publications
    std::vector<EqPred> eqs;   // the advertisement's equality predicates
    std::vector<Cand> candidates;  // sorted by handle
  };

  [[nodiscard]] static std::vector<EqPred> eq_preds(const Filter& f);
  [[nodiscard]] static bool eq_disjoint(const std::vector<EqPred>& a,
                                        const std::vector<EqPred>& b);

  MatchingEngine engine_;
  std::unordered_map<SubId, Hop> hops_;
  std::unordered_map<AdvId, AdvScope> advs_;
  // Scratch for match_into; mutable because matching is logically const.
  // Brokers are driven by the single simulation thread.
  mutable std::vector<MatchingEngine::Handle> scratch_;
};

class AdvertisementRoutingTable {
 public:
  struct Entry {
    Advertisement adv;
    Hop last_hop;  // direction toward the publisher
  };

  void insert(Advertisement adv, Hop last_hop);
  void remove(AdvId id);

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  // Directions (deduplicated) toward every advertisement intersecting `f`.
  [[nodiscard]] std::vector<Hop> directions_for(const Filter& f) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace greenps
