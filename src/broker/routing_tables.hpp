// Routing state of a filter-based publish/subscribe broker: the
// subscription routing table (SRT) steering publications toward subscribers
// and the publication/advertisement routing table (PRT) steering
// subscriptions toward matching advertisements.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "language/advertisement.hpp"
#include "matching/matching_engine.hpp"

namespace greenps {

// Next hop of a routed message: either a neighbor broker or a locally
// attached client.
struct Hop {
  enum class Kind : std::uint8_t { kBroker, kClient };

  Kind kind = Kind::kBroker;
  BrokerId broker;
  ClientId client;

  [[nodiscard]] static Hop to_broker(BrokerId b) {
    Hop h;
    h.kind = Kind::kBroker;
    h.broker = b;
    return h;
  }
  [[nodiscard]] static Hop to_client(ClientId c) {
    Hop h;
    h.kind = Kind::kClient;
    h.client = c;
    return h;
  }

  friend bool operator==(const Hop&, const Hop&) = default;
};

class SubscriptionRoutingTable {
 public:
  struct MatchResult {
    // Unique neighbor brokers that need one copy of the publication.
    std::vector<BrokerId> forward_to;
    // Local subscriber deliveries: one copy per matching subscription.
    std::vector<std::pair<SubId, ClientId>> deliver;
  };

  // Install or replace the routing entry for `sub`.
  void insert(SubId sub, const Filter& filter, Hop next_hop);
  void remove(SubId sub);

  // Match a publication, optionally excluding the broker link it arrived on
  // (never forward a publication back where it came from).
  [[nodiscard]] MatchResult match(const Publication& pub,
                                  const BrokerId* exclude = nullptr) const;

  [[nodiscard]] std::size_t filter_count() const { return hops_.size(); }
  [[nodiscard]] bool contains(SubId sub) const { return hops_.contains(sub); }

 private:
  MatchingEngine engine_;
  std::unordered_map<SubId, Hop> hops_;
};

class AdvertisementRoutingTable {
 public:
  struct Entry {
    Advertisement adv;
    Hop last_hop;  // direction toward the publisher
  };

  void insert(Advertisement adv, Hop last_hop);
  void remove(AdvId id);

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  // Directions (deduplicated) toward every advertisement intersecting `f`.
  [[nodiscard]] std::vector<Hop> directions_for(const Filter& f) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace greenps
