#include "broker/broker.hpp"

namespace greenps {

void Broker::on_crash() {
  crashed_ = true;
  // Queued matching work and the output backlog die with the process; the
  // restart begins with idle queues. CBC profiles and routing tables are
  // durable state and survive.
  reset_queues();
}

void Broker::on_restart() { crashed_ = false; }

}  // namespace greenps
