#include "broker/broker.hpp"

// Broker is header-only today; translation unit kept for future out-of-line
// growth and to anchor the library target.
