#include "broker/bandwidth_limiter.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greenps {

SimTime BandwidthLimiter::transmit(SimTime now, MsgSize size_kb) {
  assert(rate_kb_s_ > 0);
  const SimTime start = std::max(now, ready_);
  const auto duration = static_cast<SimTime>(
      std::ceil(size_kb / rate_kb_s_ * static_cast<double>(kMicrosPerSecond)));
  ready_ = start + std::max<SimTime>(duration, 1);
  busy_ += ready_ - start;
  return ready_;
}

void BandwidthLimiter::reset() {
  ready_ = 0;
  busy_ = 0;
}

SimTime FifoServer::serve(SimTime now, SimTime service) {
  const SimTime start = std::max(now, ready_);
  ready_ = start + std::max<SimTime>(service, 1);
  busy_ += ready_ - start;
  return ready_;
}

void FifoServer::reset() {
  ready_ = 0;
  busy_ = 0;
}

}  // namespace greenps
