// A PADRES-style content-based publish/subscribe broker.
//
// Holds the routing tables, capacity description (output bandwidth +
// matching delay function), the CBC profiling component, and the two
// queueing stages the simulator drives: a matching CPU (FifoServer) and a
// throttled output link (BandwidthLimiter).
#pragma once

#include <vector>

#include "broker/bandwidth_limiter.hpp"
#include "broker/cbc.hpp"
#include "broker/routing_tables.hpp"
#include "common/ids.hpp"
#include "matching/delay_model.hpp"

namespace greenps {

struct BrokerCapacity {
  Bandwidth out_bw_kb_s = 1.0e6;
  MatchingDelayFunction delay;
};

class Broker {
 public:
  Broker(BrokerId id, BrokerCapacity capacity,
         std::size_t profile_window_bits = WindowedBitVector::kDefaultCapacity)
      : id_(id),
        capacity_(capacity),
        cbc_(profile_window_bits),
        out_link_(capacity.out_bw_kb_s) {}

  [[nodiscard]] BrokerId id() const { return id_; }
  [[nodiscard]] const BrokerCapacity& capacity() const { return capacity_; }

  [[nodiscard]] SubscriptionRoutingTable& srt() { return srt_; }
  [[nodiscard]] const SubscriptionRoutingTable& srt() const { return srt_; }
  [[nodiscard]] AdvertisementRoutingTable& prt() { return prt_; }
  [[nodiscard]] const AdvertisementRoutingTable& prt() const { return prt_; }
  [[nodiscard]] CbcComponent& cbc() { return cbc_; }
  [[nodiscard]] const CbcComponent& cbc() const { return cbc_; }

  // Matching service time for one publication at the current table size.
  [[nodiscard]] SimTime matching_service_time() const {
    return seconds(capacity_.delay.delay_s(srt_.filter_count()));
  }

  [[nodiscard]] FifoServer& matcher() { return matcher_; }
  [[nodiscard]] BandwidthLimiter& out_link() { return out_link_; }
  [[nodiscard]] const BandwidthLimiter& out_link() const { return out_link_; }

  // Route one publication, excluding the neighbor it came from (if any).
  [[nodiscard]] SubscriptionRoutingTable::MatchResult route(const Publication& pub,
                                                            const BrokerId* from) const {
    return srt_.match(pub, from);
  }

  // Allocation-free variant: fills (and clears) a caller-owned result, so a
  // driver can reuse one MatchResult's vectors across every routed message.
  void route_into(const Publication& pub, const BrokerId* from,
                  SubscriptionRoutingTable::MatchResult& out) const {
    srt_.match_into(pub, from, out);
  }

  // Hot-path variant with caller-owned scratch and optional parallel
  // candidate evaluation (bit-identical result either way).
  void route_into(const Publication& pub, const BrokerId* from,
                  SubscriptionRoutingTable::MatchResult& out, MatchScratch& scratch,
                  CandidateEvaluator* eval = nullptr) const {
    srt_.match_into(pub, from, out, scratch, eval);
  }

  // Publish immutable snapshots of both routing tables (epoch handle), so
  // concurrent readers — parallel matching helpers, other threads via
  // match_published — can route lock-free. Call after (re)installing
  // routing state; cheap when nothing changed.
  void publish_routing() {
    srt_.publish();
    prt_.publish();
  }

  void reset_queues() {
    matcher_.reset();
    out_link_.reset();
  }

  // --- fault injection (sim/faults) ---
  // A crashed broker drops every message that reaches it and detaches its
  // clients until restart. Routing tables and CBC profiles survive (warm
  // restart); queued work is dropped.
  [[nodiscard]] bool crashed() const { return crashed_; }
  void on_crash();
  void on_restart();

 private:
  BrokerId id_;
  BrokerCapacity capacity_;
  SubscriptionRoutingTable srt_;
  AdvertisementRoutingTable prt_;
  CbcComponent cbc_;
  FifoServer matcher_;
  BandwidthLimiter out_link_;
  bool crashed_ = false;
};

}  // namespace greenps
