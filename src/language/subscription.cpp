#include "language/subscription.hpp"

#include <sstream>

namespace greenps {

bool Filter::matches(const Publication& pub) const {
  for (const auto& p : preds_) {
    const Value* v = pub.find(p.attribute);
    if (v == nullptr || !p.matches(*v)) return false;
  }
  return true;
}

std::string Filter::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& p : preds_) {
    if (!first) os << ',';
    first = false;
    os << p.to_string();
  }
  return os.str();
}

}  // namespace greenps
