// Attribute values of the content-based publish/subscribe language.
//
// PADRES-style tuples carry typed values: integers, reals, strings, and
// booleans. Numeric comparisons are performed in a common double domain so
// `[volume,>,1000]` matches a publication carrying `[volume,6200]` whether
// the workload generator emitted it as an integer or a real.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace greenps {

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  explicit Value(std::int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(bool b) : v_(b) {}

  [[nodiscard]] bool is_numeric() const {
    return std::holds_alternative<std::int64_t>(v_) || std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }

  // Numeric view; only valid when is_numeric().
  [[nodiscard]] double as_double() const;
  // String view; only valid when is_string().
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }

  // Values of incomparable kinds are never equal and never ordered.
  [[nodiscard]] bool equals(const Value& other) const;
  // Strict ordering comparison. Returns false for incomparable kinds.
  [[nodiscard]] bool less_than(const Value& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.equals(b); }

 private:
  std::variant<std::int64_t, double, std::string, bool> v_;
};

}  // namespace greenps
