#include "language/advertisement.hpp"

// Header-only today; translation unit kept so the build presents one .cpp
// per public header and future out-of-line growth has a home.
