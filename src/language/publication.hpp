// A publication message: an attribute→value map plus the routing header the
// profiling framework relies on (advertisement ID identifying the publisher
// and the per-publisher message sequence number, Section III-B).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "language/value.hpp"

namespace greenps {

class Publication {
 public:
  Publication() = default;
  Publication(AdvId adv, MessageSeq seq) : adv_(adv), seq_(seq) {}

  void set_attr(std::string name, Value v);
  [[nodiscard]] const Value* find(const std::string& name) const;

  [[nodiscard]] AdvId adv_id() const { return adv_; }
  [[nodiscard]] MessageSeq seq() const { return seq_; }
  void set_header(AdvId adv, MessageSeq seq) {
    adv_ = adv;
    seq_ = seq;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& attrs() const {
    return attrs_;
  }

  // Approximate wire size in kB (used by the bandwidth model).
  [[nodiscard]] MsgSize size_kb() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::pair<std::string, Value>> attrs_;  // sorted by name
  AdvId adv_;
  MessageSeq seq_ = 0;
};

}  // namespace greenps
