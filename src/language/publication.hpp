// A publication message: an attribute→value map plus the routing header the
// profiling framework relies on (advertisement ID identifying the publisher
// and the per-publisher message sequence number, Section III-B).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "language/interner.hpp"
#include "language/value.hpp"

namespace greenps {

class Publication {
 public:
  // Interned view of one attribute, precomputed at set_attr() time so every
  // broker a publication visits can probe hash indexes without touching the
  // attribute strings again.
  struct AttrKey {
    InternId attr = kNoIntern;
    ValueKey key;
  };

  Publication() = default;
  Publication(AdvId adv, MessageSeq seq) : adv_(adv), seq_(seq) {}

  void set_attr(std::string name, Value v);
  [[nodiscard]] const Value* find(const std::string& name) const;

  // Drop all attributes and the header, keeping allocated capacity — used by
  // the simulator's publication pool to recycle objects.
  void clear() {
    attrs_.clear();
    keys_.clear();
    size_kb_cache_ = -1;
    adv_ = AdvId{};
    seq_ = 0;
  }

  [[nodiscard]] AdvId adv_id() const { return adv_; }
  [[nodiscard]] MessageSeq seq() const { return seq_; }
  void set_header(AdvId adv, MessageSeq seq) {
    adv_ = adv;
    seq_ = seq;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& attrs() const {
    return attrs_;
  }
  // Parallel to attrs(): keys_[i] is the interned key of attrs()[i].
  [[nodiscard]] const std::vector<AttrKey>& attr_keys() const { return keys_; }

  // Approximate wire size in kB (used by the bandwidth model). Rendering
  // the attributes is costly relative to a routing step, so the result is
  // memoized until the attribute set changes.
  [[nodiscard]] MsgSize size_kb() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::pair<std::string, Value>> attrs_;  // sorted by name
  std::vector<AttrKey> keys_;                         // parallel to attrs_
  mutable MsgSize size_kb_cache_ = -1;                // <0: not yet computed
  AdvId adv_;
  MessageSeq seq_ = 0;
};

}  // namespace greenps
