// An advertisement declares the space of publications a publisher will emit.
// Subscriptions are only routed toward advertisements they intersect
// (filter-based routing, Section II-A).
#pragma once

#include "common/ids.hpp"
#include "language/subscription.hpp"

namespace greenps {

class Advertisement {
 public:
  Advertisement() = default;
  Advertisement(AdvId id, Filter filter) : id_(id), filter_(std::move(filter)) {}

  [[nodiscard]] AdvId id() const { return id_; }
  [[nodiscard]] const Filter& filter() const { return filter_; }
  // Advertisements promise that every emitted publication matches the
  // advertisement filter.
  [[nodiscard]] bool matches(const Publication& pub) const { return filter_.matches(pub); }

 private:
  AdvId id_;
  Filter filter_;
};

}  // namespace greenps
