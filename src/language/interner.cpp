#include "language/interner.hpp"

#include <mutex>

namespace greenps {

Interner& Interner::global() {
  static Interner instance;
  return instance;
}

InternId Interner::intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  const auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;  // raced with another writer
  const auto id = static_cast<InternId>(spellings_.size());
  spellings_.emplace_back(s);
  ids_.emplace(spellings_.back(), id);
  return id;
}

InternId Interner::find(std::string_view s) const {
  std::shared_lock lock(mu_);
  const auto it = ids_.find(s);
  return it == ids_.end() ? kNoIntern : it->second;
}

const std::string& Interner::spelling(InternId id) const {
  std::shared_lock lock(mu_);
  return spellings_.at(id);
}

std::size_t Interner::size() const {
  std::shared_lock lock(mu_);
  return spellings_.size();
}

ValueKey value_key(const Value& v) {
  if (v.is_numeric()) return {ValueKey::Tag::kNumber, numeric_key_bits(v.as_double())};
  if (v.is_string()) return {ValueKey::Tag::kString, Interner::global().intern(v.as_string())};
  return {ValueKey::Tag::kBool, v.as_bool() ? 1u : 0u};
}

ValueKey value_key_readonly(const Value& v) {
  if (v.is_numeric()) return {ValueKey::Tag::kNumber, numeric_key_bits(v.as_double())};
  if (v.is_string()) {
    const InternId id = Interner::global().find(v.as_string());
    if (id == kNoIntern) return {};  // unseen string: matches no interned key
    return {ValueKey::Tag::kString, id};
  }
  return {ValueKey::Tag::kBool, v.as_bool() ? 1u : 0u};
}

}  // namespace greenps
