#include "language/interner.hpp"

namespace greenps {

Interner& Interner::global() {
  static Interner instance;
  return instance;
}

InternId Interner::intern(std::string_view s) {
  if (const InternId id = find(s); id != kNoIntern) return id;
  std::lock_guard<std::mutex> lock(write_mu_);
  // Re-check under the write lock: another thread may have published the
  // string between our miss and acquiring the mutex.
  {
    EpochGuard guard;
    if (const Table* t = table_.load(); t != nullptr) {
      const auto it = t->ids.find(s);
      if (it != t->ids.end()) return it->second;
    }
  }
  const std::string& stored = storage_.emplace_back(s);
  auto* next = new Table();
  {
    EpochGuard guard;
    if (const Table* t = table_.load(); t != nullptr) *next = *t;
  }
  const auto id = static_cast<InternId>(next->spellings.size());
  next->spellings.push_back(&stored);
  next->ids.emplace(std::string_view(stored), id);
  table_.publish(next);
  return id;
}

InternId Interner::find(std::string_view s) const {
  EpochGuard guard;
  const Table* t = table_.load();
  if (t == nullptr) return kNoIntern;
  const auto it = t->ids.find(s);
  return it == t->ids.end() ? kNoIntern : it->second;
}

const std::string& Interner::spelling(InternId id) const {
  EpochGuard guard;
  // The returned reference outlives the guard safely: spellings live in the
  // grow-only storage deque, not in the (reclaimable) table snapshot.
  return *table_.load()->spellings.at(id);
}

std::size_t Interner::size() const {
  EpochGuard guard;
  const Table* t = table_.load();
  return t == nullptr ? 0 : t->spellings.size();
}

ValueKey value_key(const Value& v) {
  if (v.is_numeric()) return {ValueKey::Tag::kNumber, numeric_key_bits(v.as_double())};
  if (v.is_string()) return {ValueKey::Tag::kString, Interner::global().intern(v.as_string())};
  return {ValueKey::Tag::kBool, v.as_bool() ? 1u : 0u};
}

ValueKey value_key_readonly(const Value& v) {
  if (v.is_numeric()) return {ValueKey::Tag::kNumber, numeric_key_bits(v.as_double())};
  if (v.is_string()) {
    const InternId id = Interner::global().find(v.as_string());
    if (id == kNoIntern) return {};  // unseen string: matches no interned key
    return {ValueKey::Tag::kString, id};
  }
  return {ValueKey::Tag::kBool, v.as_bool() ? 1u : 0u};
}

}  // namespace greenps
