// Process-wide string interner and compact value keys for the matching fast
// path.
//
// Attribute names and string attribute values recur constantly (every stock
// publication carries the same twelve attribute names; filters reuse the
// same symbols), so the matching engine keys its indexes on small integer
// ids instead of strings. Numeric values are keyed on the bit pattern of
// their canonical double — previously the engine built
// `"n:" + std::to_string(double)` per attribute per match, which allocated
// and was locale-dependent (std::to_string obeys LC_NUMERIC); the bit key
// removes the formatting entirely.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/epoch.hpp"
#include "language/value.hpp"

namespace greenps {

// Id of an interned string. Ids are dense, process-local and stable for the
// process lifetime; they are never persisted.
using InternId = std::uint32_t;
inline constexpr InternId kNoIntern = ~InternId{0};

class Interner {
 public:
  // The process-wide instance used by publications and matching engines.
  [[nodiscard]] static Interner& global();

  // Id of `s`, interning it on first sight.
  [[nodiscard]] InternId intern(std::string_view s);
  // Id of `s` if already interned, kNoIntern otherwise (never inserts).
  [[nodiscard]] InternId find(std::string_view s) const;
  // Spelling of a previously returned id.
  [[nodiscard]] const std::string& spelling(InternId id) const;

  [[nodiscard]] std::size_t size() const;

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  // Thread-safe and lock-free on the hot path: the lookup table is an
  // immutable snapshot published behind an epoch handle, so find/spelling
  // and the already-known intern() case are a pinned load plus a hash
  // probe — no lock, no shared cacheline. First-sight interning takes the
  // write mutex, appends the spelling to grow-only stable storage, rebuilds
  // the table copy and publishes it. The vocabulary is tiny and converges
  // fast, so rebuild-on-miss is off the steady-state path entirely.
  struct Table {
    // Views point into storage_'s deque-stable strings.
    std::unordered_map<std::string_view, InternId, Hash, std::equal_to<>> ids;
    std::vector<const std::string*> spellings;
  };

  mutable std::mutex write_mu_;
  std::deque<std::string> storage_;  // grow-only; stable references on growth
  EpochPtr<Table> table_;
};

// Canonical constant-size key of a Value, suitable for hashing: equal values
// (under Value::equals) produce equal keys, including int 5 vs real 5.0,
// which share the canonical double 5.0.
struct ValueKey {
  enum class Tag : std::uint8_t { kNone, kNumber, kString, kBool };

  Tag tag = Tag::kNone;
  std::uint64_t bits = 0;

  friend bool operator==(const ValueKey&, const ValueKey&) = default;
};

struct ValueKeyHash {
  std::size_t operator()(const ValueKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(k.bits * 0x9e3779b97f4a7c15ULL +
                                      static_cast<std::uint64_t>(k.tag));
  }
};

// Key of `v`, interning string values in the global interner.
[[nodiscard]] ValueKey value_key(const Value& v);

// Key of `v` without interning: string values never seen by the process get
// Tag::kNone, which compares unequal to every interned key.
[[nodiscard]] ValueKey value_key_readonly(const Value& v);

// Canonical double for numeric keys: -0.0 folds into +0.0 so the two equal
// zeros share a bucket.
[[nodiscard]] inline std::uint64_t numeric_key_bits(double d) {
  if (d == 0.0) d = 0.0;
  return std::bit_cast<std::uint64_t>(d);
}

}  // namespace greenps
