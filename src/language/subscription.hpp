// Filters (predicate conjunctions) and subscriptions.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "language/predicate.hpp"
#include "language/publication.hpp"

namespace greenps {

// A conjunction of predicates over distinct (or repeated, for ranges)
// attributes. Shared by subscriptions and advertisements.
class Filter {
 public:
  Filter() = default;
  explicit Filter(std::vector<Predicate> preds) : preds_(std::move(preds)) {}

  void add(Predicate p) { preds_.push_back(std::move(p)); }

  [[nodiscard]] const std::vector<Predicate>& predicates() const { return preds_; }
  [[nodiscard]] bool empty() const { return preds_.empty(); }

  // A publication matches iff every predicate's attribute is present and
  // satisfied.
  [[nodiscard]] bool matches(const Publication& pub) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Filter&, const Filter&) = default;

 private:
  std::vector<Predicate> preds_;
};

class Subscription {
 public:
  Subscription() = default;
  Subscription(SubId id, Filter filter) : id_(id), filter_(std::move(filter)) {}

  [[nodiscard]] SubId id() const { return id_; }
  [[nodiscard]] const Filter& filter() const { return filter_; }
  [[nodiscard]] bool matches(const Publication& pub) const { return filter_.matches(pub); }

 private:
  SubId id_;
  Filter filter_;
};

}  // namespace greenps
