// One `[attribute, operator, value]` tuple of a subscription or
// advertisement filter.
#pragma once

#include <string>

#include "language/value.hpp"

namespace greenps {

enum class Op {
  kEq,        // =
  kNeq,       // !=  (negation support, Section II-C)
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kPrefix,    // str-prefix
  kSuffix,    // str-suffix
  kContains,  // str-contains
  kPresent,   // attribute exists (value ignored)
};

[[nodiscard]] const char* op_name(Op op);

struct Predicate {
  std::string attribute;
  Op op = Op::kEq;
  Value value;

  // Does a publication value satisfy this predicate?
  [[nodiscard]] bool matches(const Value& v) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Predicate& a, const Predicate& b) {
    return a.attribute == b.attribute && a.op == b.op && a.value == b.value;
  }
};

}  // namespace greenps
