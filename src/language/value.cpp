#include "language/value.hpp"

#include <sstream>

namespace greenps {

double Value::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  return std::get<double>(v_);
}

bool Value::equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return as_double() == other.as_double();
  if (is_string() && other.is_string()) return as_string() == other.as_string();
  if (is_bool() && other.is_bool()) return as_bool() == other.as_bool();
  return false;
}

bool Value::less_than(const Value& other) const {
  if (is_numeric() && other.is_numeric()) return as_double() < other.as_double();
  if (is_string() && other.is_string()) return as_string() < other.as_string();
  return false;
}

std::string Value::to_string() const {
  std::ostringstream os;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    os << *i;
  } else if (const auto* d = std::get_if<double>(&v_)) {
    os << *d;
  } else if (const auto* s = std::get_if<std::string>(&v_)) {
    os << '\'' << *s << '\'';
  } else {
    os << (std::get<bool>(v_) ? "'true'" : "'false'");
  }
  return os.str();
}

}  // namespace greenps
