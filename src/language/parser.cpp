#include "language/parser.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <vector>

namespace greenps {

namespace {

void skip_ws(std::string_view& s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
}

[[noreturn]] void fail(std::string_view text, const std::string& why) {
  throw ParseError("parse error: " + why + " near '" + std::string(text.substr(0, 32)) + "'");
}

// Split the interior of one [...] tuple into comma-separated fields,
// respecting quoted strings.
std::vector<std::string_view> split_fields(std::string_view body) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  bool in_quote = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '\'') in_quote = !in_quote;
    if (c == ',' && !in_quote) {
      fields.push_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  fields.push_back(body.substr(start));
  return fields;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::optional<Op> parse_op(std::string_view tok) {
  if (tok == "=") return Op::kEq;
  if (tok == "!=" || tok == "<>") return Op::kNeq;
  if (tok == "<") return Op::kLt;
  if (tok == "<=") return Op::kLe;
  if (tok == ">") return Op::kGt;
  if (tok == ">=") return Op::kGe;
  if (tok == "str-prefix") return Op::kPrefix;
  if (tok == "str-suffix") return Op::kSuffix;
  if (tok == "str-contains") return Op::kContains;
  if (tok == "isPresent") return Op::kPresent;
  return std::nullopt;
}

// Extract tuples, i.e. the interiors of the [...] groups.
std::vector<std::string_view> split_tuples(std::string_view text) {
  std::vector<std::string_view> tuples;
  skip_ws(text);
  while (!text.empty()) {
    if (text.front() != '[') fail(text, "expected '['");
    bool in_quote = false;
    std::size_t close = std::string_view::npos;
    for (std::size_t i = 1; i < text.size(); ++i) {
      if (text[i] == '\'') in_quote = !in_quote;
      if (text[i] == ']' && !in_quote) {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) fail(text, "unterminated tuple");
    tuples.push_back(text.substr(1, close - 1));
    text.remove_prefix(close + 1);
    skip_ws(text);
    if (!text.empty()) {
      if (text.front() != ',') fail(text, "expected ',' between tuples");
      text.remove_prefix(1);
      skip_ws(text);
    }
  }
  return tuples;
}

}  // namespace

Value parse_value(std::string_view token) {
  token = trim(token);
  if (token.empty()) throw ParseError("empty value token");
  if (token.front() == '\'') {
    if (token.size() < 2 || token.back() != '\'') throw ParseError("unterminated string value");
    return Value(std::string(token.substr(1, token.size() - 2)));
  }
  if (token == "true") return Value(true);
  if (token == "false") return Value(false);
  // Numeric: integer unless a '.', 'e' or 'E' appears.
  const bool is_real = token.find_first_of(".eE") != std::string_view::npos;
  if (is_real) {
    double d = 0;
    const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc{} || p != token.data() + token.size()) {
      throw ParseError("bad real value '" + std::string(token) + "'");
    }
    return Value(d);
  }
  std::int64_t i = 0;
  const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
  if (ec != std::errc{} || p != token.data() + token.size()) {
    throw ParseError("bad integer value '" + std::string(token) + "'");
  }
  return Value(i);
}

Filter parse_filter(std::string_view text) {
  Filter f;
  for (const auto tuple : split_tuples(text)) {
    const auto fields = split_fields(tuple);
    if (fields.size() != 3) fail(tuple, "filter tuple needs [attr,op,value]");
    const auto op = parse_op(trim(fields[1]));
    if (!op) fail(fields[1], "unknown operator");
    f.add(Predicate{std::string(trim(fields[0])), *op, parse_value(fields[2])});
  }
  return f;
}

Publication parse_publication(std::string_view text) {
  Publication pub;
  for (const auto tuple : split_tuples(text)) {
    const auto fields = split_fields(tuple);
    if (fields.size() != 2) fail(tuple, "publication tuple needs [attr,value]");
    pub.set_attr(std::string(trim(fields[0])), parse_value(fields[1]));
  }
  return pub;
}

}  // namespace greenps
