// Text parser for the PADRES-style tuple syntax used throughout the paper:
//
//   filter:      [class,=,'STOCK'],[symbol,=,'YHOO'],[volume,>,1000]
//   publication: [class,'STOCK'],[open,18.37],[volume,6200]
//
// Values: single-quoted strings, integers, reals, and bare true/false
// booleans. Operators: = != < <= > >= str-prefix str-suffix str-contains
// isPresent.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "language/publication.hpp"
#include "language/subscription.hpp"

namespace greenps {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Parse a filter (subscription/advertisement body). Throws ParseError.
[[nodiscard]] Filter parse_filter(std::string_view text);

// Parse a publication body (attribute/value tuples; header is set by the
// publisher). Throws ParseError.
[[nodiscard]] Publication parse_publication(std::string_view text);

// Parse a single value token ('str', 42, 4.2, true).
[[nodiscard]] Value parse_value(std::string_view token);

}  // namespace greenps
