#include "language/publication.hpp"

#include <algorithm>
#include <sstream>

namespace greenps {

void Publication::set_attr(std::string name, Value v) {
  const auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  // Interned keys are computed once here; value_key() interns string values
  // so later filter inserts using the same strings land on the same ids.
  const AttrKey key{Interner::global().intern(name), value_key(v)};
  size_kb_cache_ = -1;
  if (it != attrs_.end() && it->first == name) {
    it->second = std::move(v);
    keys_[static_cast<std::size_t>(it - attrs_.begin())] = key;
  } else {
    keys_.insert(keys_.begin() + (it - attrs_.begin()), key);
    attrs_.emplace(it, std::move(name), std::move(v));
  }
}

const Value* Publication::find(const std::string& name) const {
  const auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  if (it != attrs_.end() && it->first == name) return &it->second;
  return nullptr;
}

MsgSize Publication::size_kb() const {
  if (size_kb_cache_ >= 0) return size_kb_cache_;
  // Rough PADRES-like encoding estimate: ~24 bytes of header plus the
  // rendered attribute tuples.
  std::size_t bytes = 24;
  for (const auto& [name, value] : attrs_) {
    bytes += name.size() + value.to_string().size() + 4;
  }
  size_kb_cache_ = static_cast<MsgSize>(bytes) / 1024.0;
  return size_kb_cache_;
}

std::string Publication::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) os << ',';
    first = false;
    os << '[' << name << ',' << value.to_string() << ']';
  }
  return os.str();
}

}  // namespace greenps
