#include "language/predicate.hpp"

#include <sstream>

namespace greenps {

const char* op_name(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNeq: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kPrefix: return "str-prefix";
    case Op::kSuffix: return "str-suffix";
    case Op::kContains: return "str-contains";
    case Op::kPresent: return "isPresent";
  }
  return "?";
}

bool Predicate::matches(const Value& v) const {
  switch (op) {
    case Op::kEq:
      return v.equals(value);
    case Op::kNeq:
      // Incomparable kinds are "not equal"; mirror SQL-ish tri-state by
      // requiring comparable kinds for a positive match.
      if (v.is_numeric() != value.is_numeric() || v.is_string() != value.is_string() ||
          v.is_bool() != value.is_bool()) {
        return false;
      }
      return !v.equals(value);
    case Op::kLt:
      return v.less_than(value);
    case Op::kLe:
      return v.less_than(value) || v.equals(value);
    case Op::kGt:
      return value.less_than(v);
    case Op::kGe:
      return value.less_than(v) || v.equals(value);
    case Op::kPrefix:
      return v.is_string() && value.is_string() &&
             v.as_string().starts_with(value.as_string());
    case Op::kSuffix:
      return v.is_string() && value.is_string() &&
             v.as_string().ends_with(value.as_string());
    case Op::kContains:
      return v.is_string() && value.is_string() &&
             v.as_string().find(value.as_string()) != std::string::npos;
    case Op::kPresent:
      return true;
  }
  return false;
}

std::string Predicate::to_string() const {
  std::ostringstream os;
  os << '[' << attribute << ',' << op_name(op) << ',' << value.to_string() << ']';
  return os.str();
}

}  // namespace greenps
