// Experiment scenarios of Section VI-A.
//
// Builds the initial deployments the paper evaluates: MANUAL (fan-out-2
// tree; under heterogeneity the most resourceful brokers at the top and
// subscriber counts proportional to broker resources) and AUTOMATIC
// (random tree, random placement). Capacity mixes, publisher counts and
// subscription counts default to the paper's cluster-testbed settings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "workload/stock_quote.hpp"
#include "workload/subscription_gen.hpp"

namespace greenps {

enum class InitialPlacement { kManual, kAutomatic };

struct ScenarioConfig {
  std::size_t num_brokers = 80;
  std::size_t num_publishers = 40;
  // Homogeneous: every publisher gets this many subscriptions.
  // Heterogeneous: publisher i (1-based) gets max(1, Ns / i) per Section VI.
  std::size_t subs_per_publisher = 50;
  bool heterogeneous = false;
  InitialPlacement placement = InitialPlacement::kManual;
  std::size_t manual_fanout = 2;

  MsgRate publication_rate = 70.0 / 60.0;  // 70 msg/min
  // Output bandwidth of a 100%-capacity broker. The heterogeneous mix uses
  // 100% / 50% / 25% in the paper's 15:25:40 proportions.
  Bandwidth full_out_bw_kb_s = 300.0;
  MatchingDelayFunction delay{20e-6, 0.5e-6};

  std::size_t profile_window_bits = WindowedBitVector::kDefaultCapacity;
  // Section II-A adaptation: clients that both publish and subscribe, with
  // separated network connections for the two roles. When true, every
  // publisher client also issues one subscription to another symbol; the
  // two halves are placed (and later reconfigured) independently.
  bool combined_clients = false;
  std::uint64_t seed = 42;
};

struct Scenario {
  Deployment deployment;
  ScenarioConfig config;
  // Symbols, one per publisher (publisher i publishes symbols[i]).
  std::vector<std::string> symbols;
  // For combined clients: the subscription half belonging to each
  // publisher client (publisher ClientId -> its subscription).
  std::vector<std::pair<ClientId, SubId>> combined_pairs;
};

// Build the deployment; the caller pairs it with a StockQuoteGenerator
// seeded from the same config (see make_quote_generator).
[[nodiscard]] Scenario build_scenario(const ScenarioConfig& config);

[[nodiscard]] StockQuoteGenerator make_quote_generator(const ScenarioConfig& config);

// Convenience: scenario + simulation in one step.
[[nodiscard]] Simulation make_simulation(const ScenarioConfig& config);
// Same, with explicit simulator options (worker-thread count).
[[nodiscard]] Simulation make_simulation(const ScenarioConfig& config, SimOptions sim_options);

}  // namespace greenps
