#include "scenario/scenario.hpp"

#include <algorithm>
#include <cassert>

#include "overlay/topology_builder.hpp"

namespace greenps {

namespace {

// Capacity of broker index i in a heterogeneous pool of `n`: the paper's
// 80-broker mix is 15 full, 25 half, 40 quarter; generalized by proportion.
double capacity_share(std::size_t i, std::size_t n) {
  const double f = static_cast<double>(i) / static_cast<double>(n);
  if (f < 15.0 / 80.0) return 1.0;
  if (f < 40.0 / 80.0) return 0.5;
  return 0.25;
}

std::string symbol_name(std::size_t i) {
  // Three-letter ticker-like symbols: AAA, AAB, ...
  std::string s = "AAA";
  s[2] = static_cast<char>('A' + i % 26);
  s[1] = static_cast<char>('A' + (i / 26) % 26);
  s[0] = static_cast<char>('A' + (i / 676) % 26);
  return s;
}

}  // namespace

StockQuoteGenerator make_quote_generator(const ScenarioConfig& config) {
  return StockQuoteGenerator(StockQuoteGenerator::Config{}, Rng(config.seed * 7919 + 17));
}

Scenario build_scenario(const ScenarioConfig& config) {
  assert(config.num_brokers > 0 && config.num_publishers > 0);
  Rng rng(config.seed);
  Scenario sc;
  sc.config = config;
  sc.deployment.profile_window_bits = config.profile_window_bits;

  // --- brokers and capacities, most resourceful first ---
  std::vector<BrokerId> brokers;
  brokers.reserve(config.num_brokers);
  for (std::size_t i = 0; i < config.num_brokers; ++i) brokers.emplace_back(i);

  std::vector<double> shares(config.num_brokers, 1.0);
  if (config.heterogeneous) {
    for (std::size_t i = 0; i < config.num_brokers; ++i) {
      shares[i] = capacity_share(i, config.num_brokers);
    }
  }
  for (std::size_t i = 0; i < config.num_brokers; ++i) {
    BrokerCapacity cap;
    cap.out_bw_kb_s = config.full_out_bw_kb_s * shares[i];
    cap.delay = config.delay;
    sc.deployment.capacities.emplace(brokers[i], cap);
  }

  // --- overlay ---
  switch (config.placement) {
    case InitialPlacement::kManual:
      // brokers[] is already sorted by descending capacity (shares are
      // non-increasing in i), so the most resourceful land at the top.
      sc.deployment.topology = build_manual_tree(brokers, config.manual_fanout);
      break;
    case InitialPlacement::kAutomatic: {
      std::vector<BrokerId> shuffled = brokers;
      rng.shuffle(shuffled);
      sc.deployment.topology = build_random_tree(shuffled, rng);
      break;
    }
  }

  // --- weighted broker pick for client placement ---
  const double total_share = [&] {
    double t = 0;
    for (const double s : shares) t += s;
    return t;
  }();
  auto pick_broker = [&](bool weighted) -> BrokerId {
    if (!weighted) return brokers[rng.index(brokers.size())];
    double x = rng.uniform_real(0.0, total_share);
    for (std::size_t i = 0; i < brokers.size(); ++i) {
      x -= shares[i];
      if (x <= 0) return brokers[i];
    }
    return brokers.back();
  };

  // --- publishers ---
  StockQuoteGenerator threshold_quotes = make_quote_generator(config);
  SubscriptionGenerator subgen(SubscriptionGenerator::Config{}, rng.fork());
  std::uint64_t next_client = 0;
  std::uint64_t next_sub = 0;
  for (std::size_t i = 0; i < config.num_publishers; ++i) {
    const std::string symbol = symbol_name(i);
    sc.symbols.push_back(symbol);
    PublisherSpec p;
    p.client = ClientId{next_client++};
    p.adv = AdvId{i};
    p.symbol = symbol;
    p.rate_msg_s = config.publication_rate;
    p.home = pick_broker(false);  // publishers are randomly placed (MANUAL)
    Filter adv;
    adv.add({"class", Op::kEq, Value(std::string("STOCK"))});
    adv.add({"symbol", Op::kEq, Value(symbol)});
    p.adv_filter = std::move(adv);
    sc.deployment.publishers.push_back(std::move(p));

    // --- this publisher's subscribers ---
    std::size_t count = config.subs_per_publisher;
    if (config.heterogeneous) {
      count = std::max<std::size_t>(1, config.subs_per_publisher / (i + 1));
    }
    for (std::size_t k = 0; k < count; ++k) {
      SubscriberSpec s;
      s.client = ClientId{next_client++};
      s.sub = SubId{next_sub++};
      s.filter = subgen.next(symbol, threshold_quotes);
      // Heterogeneous MANUAL places subscribers proportionally to broker
      // resources; otherwise placement is uniform.
      s.home = pick_broker(config.heterogeneous &&
                           config.placement == InitialPlacement::kManual);
      sc.deployment.subscribers.push_back(std::move(s));
    }
  }

  // Combined publisher+subscriber clients: the subscriber half initially
  // attaches to the same broker (the same machine) but keeps its own
  // connection and can be relocated independently.
  if (config.combined_clients) {
    for (std::size_t i = 0; i < config.num_publishers; ++i) {
      const PublisherSpec& p = sc.deployment.publishers[i];
      SubscriberSpec s;
      s.client = ClientId{next_client++};
      s.sub = SubId{next_sub++};
      const std::string& other = sc.symbols[(i + 1) % sc.symbols.size()];
      s.filter = subgen.next(other, threshold_quotes);
      s.home = p.home;
      sc.combined_pairs.emplace_back(p.client, s.sub);
      sc.deployment.subscribers.push_back(std::move(s));
    }
  }
  return sc;
}

Simulation make_simulation(const ScenarioConfig& config) {
  return make_simulation(config, SimOptions{});
}

Simulation make_simulation(const ScenarioConfig& config, SimOptions sim_options) {
  Scenario sc = build_scenario(config);
  return Simulation(std::move(sc.deployment), make_quote_generator(config), NetworkConfig{},
                    sim_options);
}

}  // namespace greenps
