#include "workload/subscription_gen.hpp"

#include <cmath>

namespace greenps {

Filter SubscriptionGenerator::next(const std::string& symbol, StockQuoteGenerator& quotes) {
  Filter f;
  f.add({"class", Op::kEq, Value(std::string("STOCK"))});
  f.add({"symbol", Op::kEq, Value(symbol)});
  if (rng_.chance(config_.template_fraction)) return f;

  // Add one inequality predicate on a random quote attribute.
  static constexpr const char* kPriceAttrs[] = {"open", "high", "low", "close"};
  static constexpr Op kOps[] = {Op::kLt, Op::kLe, Op::kGt, Op::kGe};
  const Op op = kOps[rng_.index(4)];
  const std::size_t which = rng_.index(6);
  if (which < 4) {
    const double ref = quotes.reference_price(symbol);
    // Threshold within ±3 sigma-ish of the walk so selectivity varies from
    // near-none to near-all.
    const double threshold = ref * rng_.uniform_real(0.9, 1.1);
    f.add({kPriceAttrs[which], op, Value(std::round(threshold * 100.0) / 100.0)});
  } else if (which == 4) {
    const auto& cfg = quotes.config();
    const std::int64_t threshold = rng_.uniform_int(cfg.min_volume, cfg.max_volume);
    f.add({"volume", op, Value(threshold)});
  } else {
    f.add({"highLow%Diff", op, Value(rng_.uniform_real(0.0, 0.05))});
  }
  return f;
}

std::vector<Filter> SubscriptionGenerator::batch(const std::string& symbol, std::size_t count,
                                                 StockQuoteGenerator& quotes) {
  std::vector<Filter> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(next(symbol, quotes));
  return out;
}

}  // namespace greenps
