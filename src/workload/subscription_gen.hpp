// Subscription workload of Section VI-A:
//
//   "40% of the subscriptions subscribe to the template
//    [class,=,'STOCK'],[symbol,=,'YHOO'], while the other 60% also
//    subscribe to that same subscription but with an additional inequality
//    attribute, such as [class,=,'STOCK'],[symbol,=,'YHOO'],[low,<,...]"
//
// Thresholds for the inequality predicates are drawn around each symbol's
// current walk price (or the volume range) so the resulting subscriptions
// select varying, non-trivial fractions of the publication stream.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "language/subscription.hpp"
#include "workload/stock_quote.hpp"

namespace greenps {

class SubscriptionGenerator {
 public:
  struct Config {
    double template_fraction = 0.4;  // plain [class][symbol] subscriptions
  };

  SubscriptionGenerator(Config config, Rng rng) : config_(config), rng_(std::move(rng)) {}

  // One subscription filter interested in `symbol`. `quotes` supplies the
  // reference price so inequality thresholds land inside the price walk.
  [[nodiscard]] Filter next(const std::string& symbol, StockQuoteGenerator& quotes);

  // `count` subscriptions for one symbol.
  [[nodiscard]] std::vector<Filter> batch(const std::string& symbol, std::size_t count,
                                          StockQuoteGenerator& quotes);

 private:
  Config config_;
  Rng rng_;
};

}  // namespace greenps
