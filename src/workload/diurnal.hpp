// Diurnal + flash-crowd traffic schedule.
//
// A pure, deterministic rate-multiplier function of simulated time: a
// squared-sinusoid day/night cycle (trough at t = 0 and t = day_length,
// narrow busy-hours peak at mid-day) overlaid with trapezoidal flash
// crowds (linear ramp up, plateau, linear ramp down). Traffic shapers multiply every publisher's base rate
// by multiplier(t) between run() slices — the schedule itself never touches
// the simulator, so any driver (bench, test, controller harness) can reuse
// it and two drivers walking the same schedule see identical series.
#pragma once

#include <vector>

namespace greenps {

struct FlashCrowdSpec {
  double start_s = 0;       // plateau start (ramp begins ramp_s earlier)
  double duration_s = 0;    // plateau length
  double multiplier = 2.5;  // applied on top of the diurnal component
  double ramp_s = 20;       // linear ramp up before / down after the plateau
};

struct DiurnalConfig {
  double day_length_s = 1800;
  double trough_multiplier = 0.25;
  double peak_multiplier = 1.0;
  std::vector<FlashCrowdSpec> flash_crowds;
};

class DiurnalSchedule {
 public:
  explicit DiurnalSchedule(DiurnalConfig config);

  // Total multiplier at sim time t (diurnal * flash overlays).
  [[nodiscard]] double multiplier(double t_s) const;
  // The sinusoid alone / the flash overlay alone (1.0 outside crowds).
  [[nodiscard]] double diurnal_component(double t_s) const;
  [[nodiscard]] double flash_component(double t_s) const;

  // Extrema of multiplier() over one day, sampled at 1 s granularity —
  // the static-peak / static-trough provisioning baselines plan at these.
  [[nodiscard]] double peak() const { return peak_; }
  [[nodiscard]] double trough() const { return trough_; }

  [[nodiscard]] const DiurnalConfig& config() const { return config_; }

 private:
  DiurnalConfig config_;
  double peak_ = 0;
  double trough_ = 0;
};

// The E13/E14 shape: one flash crowd on the morning ramp (commissioning
// while load is already rising) and one in the evening trough (a cold spike
// against a consolidated deployment).
[[nodiscard]] DiurnalConfig default_diurnal(double day_length_s);

}  // namespace greenps
