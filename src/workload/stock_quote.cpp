#include "workload/stock_quote.hpp"

#include <algorithm>
#include <cmath>

namespace greenps {

namespace {
constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

double round2(double v) { return std::round(v * 100.0) / 100.0; }
double round3(double v) { return std::round(v * 1000.0) / 1000.0; }
}  // namespace

StockQuoteGenerator::StockQuoteGenerator(Config config, Rng rng)
    : config_(config), seed_(rng.engine()()) {}

StockQuoteGenerator::SymbolState& StockQuoteGenerator::state_for(const std::string& symbol) {
  auto it = symbols_.find(symbol);
  if (it == symbols_.end()) {
    SymbolState s{Rng(seed_ ^ std::hash<std::string>{}(symbol)), 0, 0};
    s.close = s.rng.uniform_real(config_.min_initial_price, config_.max_initial_price);
    it = symbols_.emplace(symbol, std::move(s)).first;
  }
  return it->second;
}

std::string StockQuoteGenerator::format_date(int day_index) {
  // Trading-day calendar starting 5-Sep-96, matching the paper's sample.
  const int day = 5 + day_index;
  const int month = 8 + day / 28;  // September = index 8
  const int year = 96 + month / 12;
  return std::to_string(1 + (day - 1) % 28) + "-" + kMonths[month % 12] + "-" +
         std::to_string(year % 100);
}

double StockQuoteGenerator::reference_price(const std::string& symbol) {
  return state_for(symbol).close;
}

Publication StockQuoteGenerator::next(const std::string& symbol) {
  Publication p;
  next_into(symbol, p);
  return p;
}

void StockQuoteGenerator::next_into(const std::string& symbol, Publication& out) {
  SymbolState& s = state_for(symbol);
  const double open = s.close > 0 ? s.close : 10.0;
  // Geometric random walk for the close.
  const double ret = s.rng.gaussian(0.0, config_.daily_volatility);
  double close = std::max(0.01, open * std::exp(ret));
  close = round2(close);
  const double spread_hi = std::abs(s.rng.gaussian(0.0, config_.intraday_spread));
  const double spread_lo = std::abs(s.rng.gaussian(0.0, config_.intraday_spread));
  const double high = round2(std::max(open, close) * (1.0 + spread_hi));
  const double low = round2(std::max(0.01, std::min(open, close) * (1.0 - spread_lo)));
  const auto volume = s.rng.uniform_int(config_.min_volume, config_.max_volume);

  out.clear();
  out.set_attr("class", Value(std::string("STOCK")));
  out.set_attr("symbol", Value(symbol));
  out.set_attr("open", Value(round2(open)));
  out.set_attr("high", Value(high));
  out.set_attr("low", Value(low));
  out.set_attr("close", Value(close));
  out.set_attr("volume", Value(volume));
  out.set_attr("date", Value(format_date(s.day)));
  out.set_attr("openClose%Diff", Value(round3(open > 0 ? (close - open) / open : 0.0)));
  out.set_attr("highLow%Diff", Value(round3(high > 0 ? (high - low) / high : 0.0)));
  out.set_attr("closeEqualsLow", Value(std::string(close == low ? "true" : "false")));
  out.set_attr("closeEqualsHigh", Value(std::string(close == high ? "true" : "false")));

  s.close = close;
  s.day += 1;
}

}  // namespace greenps
