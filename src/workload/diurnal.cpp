#include "workload/diurnal.hpp"

#include <algorithm>
#include <cmath>

namespace greenps {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

DiurnalSchedule::DiurnalSchedule(DiurnalConfig config) : config_(std::move(config)) {
  if (config_.day_length_s <= 0) config_.day_length_s = 1;
  peak_ = multiplier(0);
  trough_ = peak_;
  const int steps = static_cast<int>(std::ceil(config_.day_length_s));
  for (int i = 1; i <= steps; ++i) {
    const double m = multiplier(static_cast<double>(i));
    peak_ = std::max(peak_, m);
    trough_ = std::min(trough_, m);
  }
}

double DiurnalSchedule::diurnal_component(double t_s) const {
  const double phase = std::fmod(std::max(t_s, 0.0), config_.day_length_s);
  const double wave = 0.5 * (1.0 - std::cos(2.0 * kPi * phase / config_.day_length_s));
  // Squared sinusoid: real diurnal load has a narrower busy-hours peak and
  // longer off-peak shoulders than a pure sine — exactly the shape that
  // makes elastic consolidation pay.
  return config_.trough_multiplier +
         (config_.peak_multiplier - config_.trough_multiplier) * wave * wave;
}

double DiurnalSchedule::flash_component(double t_s) const {
  double m = 1.0;
  for (const FlashCrowdSpec& c : config_.flash_crowds) {
    const double ramp = std::max(c.ramp_s, 0.0);
    const double up0 = c.start_s - ramp;
    const double down1 = c.start_s + c.duration_s + ramp;
    if (t_s <= up0 || t_s >= down1 || c.multiplier <= 1.0) continue;
    double f = 1.0;
    if (t_s < c.start_s) {
      f = (t_s - up0) / ramp;  // ramp > 0 here: t_s in (up0, start)
    } else if (t_s > c.start_s + c.duration_s) {
      f = (down1 - t_s) / ramp;
    }
    // Overlapping crowds compose multiplicatively (each adds its own
    // audience on top of whatever else is happening).
    m *= 1.0 + (c.multiplier - 1.0) * std::clamp(f, 0.0, 1.0);
  }
  return m;
}

double DiurnalSchedule::multiplier(double t_s) const {
  return diurnal_component(t_s) * flash_component(t_s);
}

DiurnalConfig default_diurnal(double day_length_s) {
  DiurnalConfig cfg;
  cfg.day_length_s = day_length_s;
  cfg.trough_multiplier = 0.25;
  cfg.peak_multiplier = 1.0;
  FlashCrowdSpec morning;
  morning.start_s = 0.30 * day_length_s;
  morning.duration_s = 0.08 * day_length_s;
  morning.multiplier = 2.0;
  morning.ramp_s = 0.01 * day_length_s;
  FlashCrowdSpec evening;
  evening.start_s = 0.85 * day_length_s;
  evening.duration_s = 0.06 * day_length_s;
  evening.multiplier = 2.5;
  evening.ramp_s = 0.01 * day_length_s;
  cfg.flash_crowds = {morning, evening};
  return cfg;
}

}  // namespace greenps
