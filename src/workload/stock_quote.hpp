// Stock-quote workload (Section VI-A).
//
// The paper replays Yahoo! Finance daily quotes; we synthesize equivalent
// per-symbol OHLCV series with a geometric random walk (a substitution
// documented in DESIGN.md). The emitted publication schema is exactly the
// paper's, including the derived attributes:
//
//   [class,'STOCK'],[symbol,'YHOO'],[open,18.37],[high,18.6],[low,18.37],
//   [close,18.37],[volume,6200],[date,'5-Sep-96'],[openClose%Diff,0.0],
//   [highLow%Diff,0.014],[closeEqualsLow,'true'],[closeEqualsHigh,'false']
#pragma once

#include <string>
#include <unordered_map>

#include "common/rng.hpp"
#include "language/publication.hpp"

namespace greenps {

class StockQuoteGenerator {
 public:
  struct Config {
    double min_initial_price = 5.0;
    double max_initial_price = 250.0;
    double daily_volatility = 0.02;   // stddev of daily log-return
    double intraday_spread = 0.015;   // high/low spread around open/close
    std::int64_t min_volume = 1'000;
    std::int64_t max_volume = 2'000'000;
  };

  // Each symbol gets its own random stream seeded from (seed, symbol), so a
  // symbol's quote sequence is identical no matter how calls for different
  // symbols interleave — which lets tests regenerate a simulation's exact
  // publications offline.
  StockQuoteGenerator(Config config, Rng rng);

  // Next daily quote for `symbol` (publication header left unset; the
  // publisher client stamps adv ID and sequence number).
  [[nodiscard]] Publication next(const std::string& symbol);
  // In-place variant for pooled publications: clears `out` and fills it with
  // the next quote, reusing its attribute storage.
  void next_into(const std::string& symbol, Publication& out);

  // Current walk price for a symbol (useful for generating subscription
  // thresholds that actually select a fraction of the stream).
  [[nodiscard]] double reference_price(const std::string& symbol);

  // Ensure the symbol's walk state exists. Symbol states are created
  // lazily, which would be a concurrent map insertion once shards publish
  // in parallel; the simulator pre-warms every publisher symbol at
  // redeploy so the map is read-only during a run. Creation is a pure
  // function of (seed, symbol), so pre-warming never changes a stream.
  void prewarm(const std::string& symbol) { (void)state_for(symbol); }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct SymbolState {
    Rng rng;
    double close = 0;
    int day = 0;
  };

  SymbolState& state_for(const std::string& symbol);
  [[nodiscard]] static std::string format_date(int day_index);

  Config config_;
  std::uint64_t seed_;
  std::unordered_map<std::string, SymbolState> symbols_;
};

}  // namespace greenps
