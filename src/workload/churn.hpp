// Subscription churn model for incremental-reconfiguration experiments.
//
// Real populations are never static: subscribers arrive and leave
// continuously. This generator drives that process at a configurable
// turnover rate — per simulated step, departures are drawn Poisson from the
// live population and arrivals Poisson toward the initial population size
// (so the population is stationary around its starting point at every
// turnover level). Arriving subscriptions get profiles synthesized by
// thinning a randomly chosen reference profile bit-by-bit, which preserves
// the reference population's containment structure (subsets, intersections
// and — at keep_probability 1 — exact GIF duplicates) without replaying any
// traffic.
//
// Fully deterministic from the seed: the same options, references and step
// count always produce the same batches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "profile/subscription_profile.hpp"

namespace greenps {

struct ChurnOptions {
  // Fraction of the population replaced per simulated second (0.01 = 1%/s,
  // the ISSUE's target operating point).
  double turnover_per_s = 0.01;
  // Simulated seconds that elapse per step() call.
  double step_s = 1.0;
  // Per-bit survival probability when thinning a reference profile into an
  // arrival's profile. 1.0 clones references exactly (pure GIF churn);
  // lower values grow subset/intersect diversity.
  double keep_probability = 0.7;
};

// One step's worth of churn.
struct ChurnBatch {
  struct Arrival {
    SubId id;
    SubscriptionProfile profile;
  };
  std::vector<Arrival> added;
  std::vector<SubId> removed;

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty(); }
};

class ChurnGenerator {
 public:
  // `reference` seeds arrival-profile synthesis (must be non-empty);
  // `initial_live` is the starting population (its size is the stationary
  // target); new arrivals get ids from `first_new_id` upward — pass a value
  // above every live id so arrivals never collide.
  ChurnGenerator(ChurnOptions options, std::vector<SubscriptionProfile> reference,
                 std::vector<SubId> initial_live, std::uint64_t first_new_id, Rng rng);

  // Draw one step of churn and update the live set.
  [[nodiscard]] ChurnBatch step();

  [[nodiscard]] const std::vector<SubId>& live() const { return live_; }
  [[nodiscard]] std::size_t target_population() const { return target_; }

 private:
  [[nodiscard]] SubscriptionProfile synthesize_profile();

  ChurnOptions opts_;
  std::vector<SubscriptionProfile> reference_;
  std::vector<SubId> live_;
  std::size_t target_;
  std::uint64_t next_id_;
  Rng rng_;
};

}  // namespace greenps
