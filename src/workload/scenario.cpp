// placeholder
