#include "workload/churn.hpp"

#include <cassert>
#include <random>
#include <utility>

namespace greenps {

namespace {

// Poisson draw with the engine Rng already carries; mean 0 short-circuits so
// a zero-turnover generator emits empty batches deterministically.
std::size_t poisson(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  std::poisson_distribution<std::size_t> dist(mean);
  return dist(rng.engine());
}

}  // namespace

ChurnGenerator::ChurnGenerator(ChurnOptions options,
                               std::vector<SubscriptionProfile> reference,
                               std::vector<SubId> initial_live,
                               std::uint64_t first_new_id, Rng rng)
    : opts_(options),
      reference_(std::move(reference)),
      live_(std::move(initial_live)),
      target_(live_.size()),
      next_id_(first_new_id),
      rng_(std::move(rng)) {
  assert(!reference_.empty());
}

ChurnBatch ChurnGenerator::step() {
  ChurnBatch batch;
  const double expected = opts_.turnover_per_s * opts_.step_s;

  // Departures: Poisson over the current live population.
  std::size_t departures =
      std::min(poisson(rng_, expected * static_cast<double>(live_.size())), live_.size());
  batch.removed.reserve(departures);
  while (departures-- > 0) {
    const std::size_t pick = rng_.index(live_.size());
    batch.removed.push_back(live_[pick]);
    live_[pick] = live_.back();
    live_.pop_back();
  }

  // Arrivals: Poisson toward the stationary target, so the population
  // hovers around its starting size at any turnover level.
  const std::size_t arrivals =
      poisson(rng_, expected * static_cast<double>(target_));
  batch.added.reserve(arrivals);
  for (std::size_t i = 0; i < arrivals; ++i) {
    const SubId id{next_id_++};
    batch.added.push_back({id, synthesize_profile()});
    live_.push_back(id);
  }
  return batch;
}

SubscriptionProfile ChurnGenerator::synthesize_profile() {
  const SubscriptionProfile& ref = reference_[rng_.index(reference_.size())];
  SubscriptionProfile out(ref.window_bits());
  std::size_t kept = 0;
  for (const auto& [adv, v] : ref.vectors()) {
    if (!v.anchored()) continue;
    for (MessageSeq s = v.first_id(); s < v.end_id(); ++s) {
      if (v.test_seq(s) && rng_.chance(opts_.keep_probability)) {
        out.record(adv, s);
        ++kept;
      }
    }
  }
  if (kept > 0) return out;
  // Thinning dropped everything — keep the reference's first set bit so the
  // arrival still induces load (empty profiles never happen in Phase 1).
  for (const auto& [adv, v] : ref.vectors()) {
    if (!v.anchored()) continue;
    for (MessageSeq s = v.first_id(); s < v.end_id(); ++s) {
      if (v.test_seq(s)) {
        out.record(adv, s);
        return out;
      }
    }
  }
  return out;
}

}  // namespace greenps
