#include "profile/sub_unit.hpp"

#include <cassert>

namespace greenps {

SubUnit make_subscription_unit(SubId id, SubscriptionProfile profile,
                               const PublisherTable& table) {
  SubUnit u;
  u.in_rate = profile.induced_rate(table);
  u.out_bw = profile.induced_bandwidth(table);
  u.profile = std::move(profile);
  u.members = {id};
  u.filter_count = 1;
  return u;
}

SubUnit make_child_broker_unit(BrokerId broker, SubscriptionProfile profile,
                               const PublisherTable& table) {
  SubUnit u;
  u.in_rate = profile.induced_rate(table);
  // The parent forwards the union stream to the child exactly once.
  u.out_bw = profile.induced_bandwidth(table);
  u.profile = std::move(profile);
  u.child_members = {broker};
  u.filter_count = 1;
  return u;
}

SubUnit cluster_units(const SubUnit& a, const SubUnit& b, const PublisherTable& table) {
  assert(a.is_child_broker() == b.is_child_broker());
  SubUnit u;
  u.profile = a.profile;
  u.profile.merge(b.profile);
  u.members = a.members;
  u.members.insert(u.members.end(), b.members.begin(), b.members.end());
  u.child_members = a.child_members;
  u.child_members.insert(u.child_members.end(), b.child_members.begin(),
                         b.child_members.end());
  u.filter_count = a.filter_count + b.filter_count;
  u.in_rate = u.profile.induced_rate(table);
  // Each endpoint (subscriber or child broker) still receives its own copy
  // of every matching publication, so output requirements add even when the
  // input streams overlap.
  u.out_bw = a.out_bw + b.out_bw;
  return u;
}

}  // namespace greenps
