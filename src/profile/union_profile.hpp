// Flat union profile: the OR of hosted subscription profiles kept as a
// sorted vector instead of a per-adv std::map.
//
// BrokerLoad's allocation test evaluates r(U ∩ u) against the union of every
// already-accepted profile thousands of times per CRAM run, so the union
// side is stored flat (one contiguous sorted vector, publisher pointers
// resolved once) and walked against the unit's sorted map with a single
// two-pointer pass. Arithmetic is kept operation-for-operation identical to
// SubscriptionProfile::intersection_rate so allocations stay bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "bitvec/windowed_bit_vector.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "profile/publisher_profile.hpp"
#include "profile/subscription_profile.hpp"

namespace greenps {

class UnionProfile {
 public:
  struct Entry {
    AdvId adv;
    WindowedBitVector bits;
    // Cached |bits| — every rate walk needs it and BitVector::count() is a
    // full popcount pass. Updated on merge.
    std::size_t count = 0;
    // Publisher resolved once at first merge; nullptr when the adv is absent
    // from the table (contributes no rate, exactly like the map kernel).
    const PublisherProfile* pub = nullptr;
  };

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  // Publication rate common to this union and `p` — one sorted two-pointer
  // walk, numerically identical to
  // SubscriptionProfile::intersection_rate(union, p, table).
  [[nodiscard]] MsgRate intersection_rate(const SubscriptionProfile& p) const;

  // OR-merge `p` into the union (publishers resolved against `table` on
  // first appearance). No rate math — used after a fits decision.
  void merge(const SubscriptionProfile& p, const PublisherTable& table);

  // Fused accept-and-account: OR-merge `p` and return the pre-merge
  // intersection rate in the same walk (the unconditional-add path).
  MsgRate merge_with_rate(const SubscriptionProfile& p, const PublisherTable& table);

  // Materialize back into a map-backed profile (Phase-3 child-broker units).
  [[nodiscard]] SubscriptionProfile to_subscription_profile() const;

  // Number of union-rate walks performed by the calling thread
  // (intersection_rate + merge_with_rate), mirroring
  // SubscriptionProfile::pairwise_walks(). Per-thread so speculative
  // parallel probes stay contention-free.
  [[nodiscard]] static std::size_t probe_walks();
  static void reset_probe_walks();

 private:
  std::vector<Entry> entries_;  // sorted by adv
};

}  // namespace greenps
