#include "profile/union_profile.hpp"

#include <algorithm>

namespace greenps {

namespace {

thread_local std::size_t t_probe_walks = 0;

// Exact replica of SubscriptionProfile::set_fraction with the set-bit count
// supplied by the caller (cached for the union side).
double fraction(std::size_t set, MessageSeq first_id, std::size_t capacity,
                const PublisherProfile& pub) {
  if (set == 0) return 0.0;
  MessageSeq observed = pub.last_seq >= first_id ? pub.last_seq - first_id + 1
                                                 : static_cast<MessageSeq>(set);
  observed = std::min<MessageSeq>(observed, static_cast<MessageSeq>(capacity));
  observed = std::max<MessageSeq>(observed, static_cast<MessageSeq>(set));
  return static_cast<double>(set) / static_cast<double>(observed);
}

// One common-publisher contribution, operation-for-operation the body of
// SubscriptionProfile::intersection_rate's loop.
MsgRate adv_rate(const UnionProfile::Entry& e, const WindowedBitVector& vb,
                 const PublisherProfile& pub) {
  const std::size_t common = WindowedBitVector::intersect_count(e.bits, vb);
  if (common == 0) return 0;
  const double fa = fraction(e.count, e.bits.first_id(), e.bits.capacity(), pub);
  const double fb = SubscriptionProfile::set_fraction(vb, pub);
  const double denom_a = fa > 0 ? static_cast<double>(e.count) / fa : 1.0;
  const double denom_b = fb > 0 ? static_cast<double>(vb.count()) / fb : 1.0;
  const double denom = std::max({denom_a, denom_b, static_cast<double>(common)});
  return pub.rate_msg_s * static_cast<double>(common) / denom;
}

const PublisherProfile* resolve(const PublisherTable& table, AdvId adv) {
  const auto it = table.find(adv);
  return it == table.end() ? nullptr : &it->second;
}

}  // namespace

std::size_t UnionProfile::probe_walks() { return t_probe_walks; }
void UnionProfile::reset_probe_walks() { t_probe_walks = 0; }

MsgRate UnionProfile::intersection_rate(const SubscriptionProfile& p) const {
  ++t_probe_walks;
  MsgRate total = 0;
  auto ie = entries_.begin();
  const auto& vecs = p.vectors();
  auto ip = vecs.begin();
  while (ie != entries_.end() && ip != vecs.end()) {
    if (ie->adv < ip->first) {
      ++ie;
    } else if (ip->first < ie->adv) {
      ++ip;
    } else {
      if (ie->pub != nullptr) total += adv_rate(*ie, ip->second, *ie->pub);
      ++ie;
      ++ip;
    }
  }
  return total;
}

void UnionProfile::merge(const SubscriptionProfile& p, const PublisherTable& table) {
  std::size_t i = 0;
  for (const auto& [adv, v] : p.vectors()) {
    while (i < entries_.size() && entries_[i].adv < adv) ++i;
    if (i < entries_.size() && entries_[i].adv == adv) {
      Entry& e = entries_[i];
      e.bits.merge(v);
      e.count = e.bits.count();
    } else {
      entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(i),
                      Entry{adv, v, v.count(), resolve(table, adv)});
    }
    ++i;
  }
}

MsgRate UnionProfile::merge_with_rate(const SubscriptionProfile& p,
                                      const PublisherTable& table) {
  ++t_probe_walks;
  MsgRate total = 0;
  std::size_t i = 0;
  for (const auto& [adv, v] : p.vectors()) {
    while (i < entries_.size() && entries_[i].adv < adv) ++i;
    if (i < entries_.size() && entries_[i].adv == adv) {
      Entry& e = entries_[i];
      if (e.pub != nullptr) total += adv_rate(e, v, *e.pub);
      e.bits.merge(v);
      e.count = e.bits.count();
    } else {
      entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(i),
                      Entry{adv, v, v.count(), resolve(table, adv)});
    }
    ++i;
  }
  return total;
}

SubscriptionProfile UnionProfile::to_subscription_profile() const {
  SubscriptionProfile out;
  for (const Entry& e : entries_) out.merge_vector(e.adv, e.bits);
  return out;
}

}  // namespace greenps
