// SubUnit: the unit of allocation in Phases 2 and 3.
//
// A unit is either (a) one subscription, (b) a cluster of subscriptions
// formed by CRAM (profile = OR of members, output requirement = sum over
// member endpoints, since each subscriber still receives its own copy), or
// (c) a Phase-3 "child broker" unit whose union stream is forwarded once
// per child, so its output requirement is computed from the OR'd profile.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "profile/subscription_profile.hpp"

namespace greenps {

struct SubUnit {
  SubscriptionProfile profile;
  // Subscriber endpoints served by this unit (one per original
  // subscription). Empty for child-broker units.
  std::vector<SubId> members;
  // Phase-3 units: the already-allocated child brokers whose union streams
  // this unit represents. Empty for subscription units.
  std::vector<BrokerId> child_members;

  // Publication rate flowing *into* a broker because it hosts this unit
  // (from the OR'd profile — shared publications counted once).
  MsgRate in_rate = 0;
  // Output bandwidth needed to serve this unit (sum over member endpoints
  // for clusters; one union stream per child broker for Phase-3 units).
  Bandwidth out_bw = 0;
  // Number of individual filters inside (capacity tests feed it to the
  // matching delay function). Child-broker units count 1 filter per child.
  std::size_t filter_count = 1;

  [[nodiscard]] bool is_child_broker() const { return !child_members.empty(); }
  [[nodiscard]] std::size_t endpoint_count() const {
    return is_child_broker() ? child_members.size() : members.size();
  }
};

// Build a unit for one subscription.
[[nodiscard]] SubUnit make_subscription_unit(SubId id, SubscriptionProfile profile,
                                             const PublisherTable& table);

// Build a Phase-3 unit representing an allocated broker: `profile` is the OR
// of all profiles the broker services.
[[nodiscard]] SubUnit make_child_broker_unit(BrokerId broker, SubscriptionProfile profile,
                                             const PublisherTable& table);

// Cluster two units of the same kind (Figure 1): OR the profiles,
// concatenate members, sum output requirements, recompute the induced input
// rate.
[[nodiscard]] SubUnit cluster_units(const SubUnit& a, const SubUnit& b,
                                    const PublisherTable& table);

}  // namespace greenps
