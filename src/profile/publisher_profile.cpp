#include "profile/publisher_profile.hpp"

// Currently header-only; translation unit reserved for future growth.
