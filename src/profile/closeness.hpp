// The four closeness metrics of Section IV-C.
//
//   INTERSECT: |S1 ∩ S2|
//   XOR:       1 / |S1 ⊕ S2|   (capped on division by zero; Gryphon-derived)
//   IOS:       |S1 ∩ S2|² / (|S1| + |S2|)
//   IOU:       |S1 ∩ S2|² / |S1 ∪ S2|
//
// Higher is always more favorable. INTERSECT, IOS and IOU are zero exactly
// when the two profiles share no publication — the property the poset search
// pruning of CRAM's optimization 2 exploits. XOR is non-zero even for
// disjoint profiles, which is why it cannot prune and runs ≥75% longer.
#pragma once

#include <string>

#include "profile/subscription_profile.hpp"

namespace greenps {

enum class ClosenessMetric { kIntersect, kXor, kIos, kIou };

[[nodiscard]] const char* metric_name(ClosenessMetric m);

// Cap applied when |S1 ⊕ S2| = 0 (identical profiles) under XOR.
inline constexpr double kXorCap = 2147483648.0;  // 2^31

[[nodiscard]] double closeness(ClosenessMetric metric, const SubscriptionProfile& a,
                               const SubscriptionProfile& b);

// True for metrics whose zero value identifies an empty relation, enabling
// poset search pruning (all but XOR).
[[nodiscard]] bool metric_prunes_empty(ClosenessMetric metric);

}  // namespace greenps
