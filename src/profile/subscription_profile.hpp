// Subscription profile (Section III-B): one windowed bit vector per
// publisher the subscription received publications from. All of Phases 2
// and 3 operate on these profiles — never on the subscription language —
// which is what makes the allocation framework language-independent.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "bitvec/windowed_bit_vector.hpp"
#include "common/ids.hpp"
#include "common/units.hpp"
#include "profile/publisher_profile.hpp"

namespace greenps {

// Set-relationship between two profiles, decided purely from bit vectors
// (the online Appendix's relation classification).
enum class Relation { kEqual, kSuperset, kSubset, kIntersect, kEmpty };

[[nodiscard]] const char* relation_name(Relation r);

class SubscriptionProfile {
 public:
  explicit SubscriptionProfile(std::size_t window_bits = WindowedBitVector::kDefaultCapacity)
      : window_bits_(window_bits) {}

  // Record delivery of publication `seq` from publisher `adv`.
  void record(AdvId adv, MessageSeq seq);

  [[nodiscard]] const std::map<AdvId, WindowedBitVector>& vectors() const { return vectors_; }
  [[nodiscard]] std::size_t window_bits() const { return window_bits_; }

  // Total number of set bits across all publishers.
  [[nodiscard]] std::size_t cardinality() const;
  [[nodiscard]] bool empty() const { return cardinality() == 0; }

  // OR-merge another profile into this one (Figure 1 clustering).
  void merge(const SubscriptionProfile& other);

  // Insert-or-OR one publisher vector (used to materialize flat union
  // profiles back into a map-backed profile).
  void merge_vector(AdvId adv, const WindowedBitVector& v);

  // --- Pairwise set algebra, aligned by (publisher, message ID) ---
  [[nodiscard]] static std::size_t intersect_count(const SubscriptionProfile& a,
                                                   const SubscriptionProfile& b);
  [[nodiscard]] static std::size_t union_count(const SubscriptionProfile& a,
                                               const SubscriptionProfile& b);
  [[nodiscard]] static std::size_t xor_count(const SubscriptionProfile& a,
                                             const SubscriptionProfile& b);

  // Fused kernel: every pairwise cardinality in one aligned walk of the two
  // publisher maps (a single bit-vector word loop per *common* publisher —
  // disjoint pairs cost no popcounts at all). closeness() and relation() are
  // routed through this, so each performs exactly one profile walk.
  // Concurrency: reads (and may fill) the cardinality caches of both
  // profiles. Callers sharing profiles across threads must warm
  // cardinality() on them first — CramRun does before its parallel search.
  struct PairwiseCounts {
    std::size_t intersect = 0;
    std::size_t union_ = 0;
    std::size_t xor_ = 0;
    std::size_t card_a = 0;  // |a|
    std::size_t card_b = 0;  // |b|
  };
  [[nodiscard]] static PairwiseCounts pairwise_counts(const SubscriptionProfile& a,
                                                      const SubscriptionProfile& b);

  // Number of pairwise_counts() walks performed by the calling thread.
  // Test hook for the one-walk-per-closeness invariant; per-thread so the
  // parallel pair search stays contention-free.
  [[nodiscard]] static std::size_t pairwise_walks();
  static void reset_pairwise_walks();
  // Every publication recorded by `sub` was also recorded by `sup`.
  [[nodiscard]] static bool covers(const SubscriptionProfile& sup,
                                   const SubscriptionProfile& sub);
  [[nodiscard]] static Relation relation(const SubscriptionProfile& a,
                                         const SubscriptionProfile& b);

  // Identical set bits (the GIF grouping criterion).
  [[nodiscard]] static bool same_bits(const SubscriptionProfile& a,
                                      const SubscriptionProfile& b);
  // Hash over set bits, stable across windows with different anchors.
  [[nodiscard]] std::size_t bit_hash() const;

  // --- Load estimation (Section III-B) ---
  // A profile with k of n observed bits set for a publisher at r msg/s and
  // b kB/s induces r*k/n msg/s and b*k/n kB/s. Publishers absent from
  // `table` contribute nothing.
  [[nodiscard]] MsgRate induced_rate(const PublisherTable& table) const;
  [[nodiscard]] Bandwidth induced_bandwidth(const PublisherTable& table) const;

  // Publication rate common to both profiles (used to estimate the rate of
  // a union without materializing it: r(a∪b) = r(a) + r(b) − r(a∩b)).
  [[nodiscard]] static MsgRate intersection_rate(const SubscriptionProfile& a,
                                                 const SubscriptionProfile& b,
                                                 const PublisherTable& table);

  // Bit vector for one publisher, or nullptr if none recorded.
  [[nodiscard]] const WindowedBitVector* vector_for(AdvId adv) const;
  // Fraction of `pub`'s observed stream this profile sinks (0 when absent).
  [[nodiscard]] double fraction_for(const PublisherProfile& pub) const;
  // Fraction of `pub`'s observed stream captured by one bit vector.
  [[nodiscard]] static double set_fraction(const WindowedBitVector& v,
                                           const PublisherProfile& pub);

  [[nodiscard]] std::string to_string() const;

 private:
  std::map<AdvId, WindowedBitVector> vectors_;
  std::size_t window_bits_;
  // Cardinality is consulted by every closeness computation; cache it and
  // invalidate on mutation (record/merge).
  mutable std::size_t card_cache_ = kNoCache;
  static constexpr std::size_t kNoCache = ~std::size_t{0};
};

}  // namespace greenps
