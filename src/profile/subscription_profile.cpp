#include "profile/subscription_profile.hpp"

#include <algorithm>
#include <sstream>

namespace greenps {

const char* relation_name(Relation r) {
  switch (r) {
    case Relation::kEqual: return "equal";
    case Relation::kSuperset: return "superset";
    case Relation::kSubset: return "subset";
    case Relation::kIntersect: return "intersect";
    case Relation::kEmpty: return "empty";
  }
  return "?";
}

void SubscriptionProfile::record(AdvId adv, MessageSeq seq) {
  auto it = vectors_.find(adv);
  if (it == vectors_.end()) {
    it = vectors_.emplace(adv, WindowedBitVector(window_bits_)).first;
  }
  it->second.record(seq);
  card_cache_ = kNoCache;
}

std::size_t SubscriptionProfile::cardinality() const {
  if (card_cache_ != kNoCache) return card_cache_;
  std::size_t total = 0;
  for (const auto& [adv, v] : vectors_) {
    (void)adv;
    total += v.count();
  }
  card_cache_ = total;
  return total;
}

void SubscriptionProfile::merge(const SubscriptionProfile& other) {
  for (const auto& [adv, v] : other.vectors_) {
    auto it = vectors_.find(adv);
    if (it == vectors_.end()) {
      vectors_.emplace(adv, v);
    } else {
      it->second.merge(v);
    }
  }
  card_cache_ = kNoCache;
}

void SubscriptionProfile::merge_vector(AdvId adv, const WindowedBitVector& v) {
  auto it = vectors_.find(adv);
  if (it == vectors_.end()) {
    vectors_.emplace(adv, v);
  } else {
    it->second.merge(v);
  }
  card_cache_ = kNoCache;
}

namespace {
thread_local std::size_t t_pairwise_walks = 0;
}  // namespace

std::size_t SubscriptionProfile::pairwise_walks() { return t_pairwise_walks; }
void SubscriptionProfile::reset_pairwise_walks() { t_pairwise_walks = 0; }

SubscriptionProfile::PairwiseCounts SubscriptionProfile::pairwise_counts(
    const SubscriptionProfile& a, const SubscriptionProfile& b) {
  ++t_pairwise_walks;
  // Word loops run only over *common* publishers — a disjoint pair (the bulk
  // of an unpruned pair search) costs zero popcounts. The per-profile
  // cardinalities come from the invalidated-on-write cache, and union/xor
  // follow arithmetically: |a∪b| = |a|+|b|−|a∩b|, |a⊕b| = |a|+|b|−2|a∩b|.
  std::size_t both = 0;
  auto ia = a.vectors_.begin();
  auto ib = b.vectors_.begin();
  while (ia != a.vectors_.end() && ib != b.vectors_.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      both += WindowedBitVector::intersect_count(ia->second, ib->second);
      ++ia;
      ++ib;
    }
  }
  const std::size_t ca = a.cardinality();
  const std::size_t cb = b.cardinality();
  PairwiseCounts out;
  out.intersect = both;
  out.union_ = ca + cb - both;
  out.xor_ = ca + cb - 2 * both;
  out.card_a = ca;
  out.card_b = cb;
  return out;
}

std::size_t SubscriptionProfile::intersect_count(const SubscriptionProfile& a,
                                                 const SubscriptionProfile& b) {
  std::size_t total = 0;
  for (const auto& [adv, va] : a.vectors_) {
    const auto it = b.vectors_.find(adv);
    if (it != b.vectors_.end()) total += WindowedBitVector::intersect_count(va, it->second);
  }
  return total;
}

std::size_t SubscriptionProfile::union_count(const SubscriptionProfile& a,
                                             const SubscriptionProfile& b) {
  return a.cardinality() + b.cardinality() - intersect_count(a, b);
}

std::size_t SubscriptionProfile::xor_count(const SubscriptionProfile& a,
                                           const SubscriptionProfile& b) {
  return a.cardinality() + b.cardinality() - 2 * intersect_count(a, b);
}

bool SubscriptionProfile::covers(const SubscriptionProfile& sup,
                                 const SubscriptionProfile& sub) {
  // Aligned walk over the two sorted publisher maps with early exit: `sup`
  // covers `sub` iff for every publisher, |sup ∩ sub| equals |sub| — one
  // fused word loop per publisher instead of a count pass plus a subset pass.
  auto is = sup.vectors_.begin();
  for (const auto& [adv, vb] : sub.vectors_) {
    while (is != sup.vectors_.end() && is->first < adv) ++is;
    if (is == sup.vectors_.end() || is->first != adv) {
      if (vb.count() != 0) return false;
      continue;
    }
    const auto pc = WindowedBitVector::pairwise_counts(is->second, vb);
    if (pc.both != pc.b) return false;
  }
  return true;
}

Relation SubscriptionProfile::relation(const SubscriptionProfile& a,
                                       const SubscriptionProfile& b) {
  // One fused walk decides everything: |a ∩ b| = |b| means a covers b (every
  // bit of b matched one of a), and symmetrically for |a|.
  const PairwiseCounts pc = pairwise_counts(a, b);
  if (pc.intersect == 0) return Relation::kEmpty;
  const bool ab = pc.intersect == pc.card_b;
  const bool ba = pc.intersect == pc.card_a;
  if (ab && ba) return Relation::kEqual;
  if (ab) return Relation::kSuperset;
  if (ba) return Relation::kSubset;
  return Relation::kIntersect;
}

bool SubscriptionProfile::same_bits(const SubscriptionProfile& a,
                                    const SubscriptionProfile& b) {
  const PairwiseCounts pc = pairwise_counts(a, b);
  return pc.intersect == pc.card_a && pc.intersect == pc.card_b;
}

std::size_t SubscriptionProfile::bit_hash() const {
  // FNV-1a over (adv id, message id) of every set bit; stable regardless of
  // window anchors so equal bit sets hash equally.
  std::size_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [adv, v] : vectors_) {
    if (v.count() == 0) continue;
    mix(adv.value());
    for (MessageSeq s = v.first_id(); s < v.end_id(); ++s) {
      if (v.test_seq(s)) mix(static_cast<std::uint64_t>(s));
    }
  }
  return h;
}

double SubscriptionProfile::set_fraction(const WindowedBitVector& v,
                                         const PublisherProfile& pub) {
  const std::size_t set = v.count();
  if (set == 0) return 0.0;
  // Window observed so far: from the window anchor to the publisher's last
  // message ID (the publisher profile synchronizes the counters).
  MessageSeq observed = pub.last_seq >= v.first_id() ? pub.last_seq - v.first_id() + 1
                                                     : static_cast<MessageSeq>(set);
  observed = std::min<MessageSeq>(observed, static_cast<MessageSeq>(v.capacity()));
  observed = std::max<MessageSeq>(observed, static_cast<MessageSeq>(set));
  return static_cast<double>(set) / static_cast<double>(observed);
}

MsgRate SubscriptionProfile::induced_rate(const PublisherTable& table) const {
  MsgRate total = 0;
  for (const auto& [adv, v] : vectors_) {
    const auto it = table.find(adv);
    if (it == table.end()) continue;
    total += it->second.rate_msg_s * set_fraction(v, it->second);
  }
  return total;
}

Bandwidth SubscriptionProfile::induced_bandwidth(const PublisherTable& table) const {
  Bandwidth total = 0;
  for (const auto& [adv, v] : vectors_) {
    const auto it = table.find(adv);
    if (it == table.end()) continue;
    total += it->second.bw_kb_s * set_fraction(v, it->second);
  }
  return total;
}

MsgRate SubscriptionProfile::intersection_rate(const SubscriptionProfile& a,
                                               const SubscriptionProfile& b,
                                               const PublisherTable& table) {
  MsgRate total = 0;
  for (const auto& [adv, va] : a.vectors_) {
    const auto bit = b.vectors_.find(adv);
    if (bit == b.vectors_.end()) continue;
    const auto pit = table.find(adv);
    if (pit == table.end()) continue;
    const std::size_t common = WindowedBitVector::intersect_count(va, bit->second);
    if (common == 0) continue;
    // Use the larger observed window of the two as the denominator; the
    // intersection cannot out-fraction either operand.
    const double fa = set_fraction(va, pit->second);
    const double fb = set_fraction(bit->second, pit->second);
    const double denom_a = fa > 0 ? static_cast<double>(va.count()) / fa : 1.0;
    const double denom_b = fb > 0 ? static_cast<double>(bit->second.count()) / fb : 1.0;
    const double denom = std::max({denom_a, denom_b, static_cast<double>(common)});
    total += pit->second.rate_msg_s * static_cast<double>(common) / denom;
  }
  return total;
}

const WindowedBitVector* SubscriptionProfile::vector_for(AdvId adv) const {
  const auto it = vectors_.find(adv);
  return it == vectors_.end() ? nullptr : &it->second;
}

double SubscriptionProfile::fraction_for(const PublisherProfile& pub) const {
  const WindowedBitVector* v = vector_for(pub.adv);
  return v == nullptr ? 0.0 : set_fraction(*v, pub);
}

std::string SubscriptionProfile::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [adv, v] : vectors_) {
    if (!first) os << ", ";
    first = false;
    os << "adv" << adv.value() << ":" << v.count() << "/" << v.capacity() << "@"
       << v.first_id();
  }
  os << "}";
  return os.str();
}

}  // namespace greenps
