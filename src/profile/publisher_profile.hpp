// Publisher profile (Section III-B): advertisement ID, publication rate,
// bandwidth consumption, and the message ID of the last publication sent.
// CROC combines these with subscription bit vectors to estimate load.
#pragma once

#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"

namespace greenps {

struct PublisherProfile {
  AdvId adv;
  MsgRate rate_msg_s = 0;     // publications per second
  Bandwidth bw_kb_s = 0;      // rate * average message size
  MessageSeq last_seq = -1;   // message ID of the last publication sent

  // Average publication size implied by rate and bandwidth.
  [[nodiscard]] MsgSize avg_msg_kb() const {
    return rate_msg_s > 0 ? bw_kb_s / rate_msg_s : 0.0;
  }
};

// All publishers known to CROC, keyed by advertisement ID.
using PublisherTable = std::unordered_map<AdvId, PublisherProfile>;

}  // namespace greenps
