#include "profile/closeness.hpp"

namespace greenps {

const char* metric_name(ClosenessMetric m) {
  switch (m) {
    case ClosenessMetric::kIntersect: return "INTERSECT";
    case ClosenessMetric::kXor: return "XOR";
    case ClosenessMetric::kIos: return "IOS";
    case ClosenessMetric::kIou: return "IOU";
  }
  return "?";
}

bool metric_prunes_empty(ClosenessMetric metric) {
  return metric != ClosenessMetric::kXor;
}

double closeness(ClosenessMetric metric, const SubscriptionProfile& a,
                 const SubscriptionProfile& b) {
  // Every metric needs |a ∩ b| plus at most the two cardinalities, so one
  // fused walk covers all four (kIou previously walked the profiles three
  // times: twice for intersect via union_count, once for the cardinality
  // caches). The walk reads the cardinality caches; CRAM warms them before
  // fanning the pair search out across threads.
  const auto pc = SubscriptionProfile::pairwise_counts(a, b);
  switch (metric) {
    case ClosenessMetric::kIntersect:
      return static_cast<double>(pc.intersect);
    case ClosenessMetric::kXor:
      return pc.xor_ == 0 ? kXorCap : 1.0 / static_cast<double>(pc.xor_);
    case ClosenessMetric::kIos: {
      const auto i = static_cast<double>(pc.intersect);
      const auto s = static_cast<double>(pc.card_a + pc.card_b);
      return s == 0 ? 0.0 : i * i / s;
    }
    case ClosenessMetric::kIou: {
      const auto i = static_cast<double>(pc.intersect);
      const auto u = static_cast<double>(pc.union_);
      return u == 0 ? 0.0 : i * i / u;
    }
  }
  return 0.0;
}

}  // namespace greenps
