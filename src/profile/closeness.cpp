#include "profile/closeness.hpp"

namespace greenps {

const char* metric_name(ClosenessMetric m) {
  switch (m) {
    case ClosenessMetric::kIntersect: return "INTERSECT";
    case ClosenessMetric::kXor: return "XOR";
    case ClosenessMetric::kIos: return "IOS";
    case ClosenessMetric::kIou: return "IOU";
  }
  return "?";
}

bool metric_prunes_empty(ClosenessMetric metric) {
  return metric != ClosenessMetric::kXor;
}

double closeness(ClosenessMetric metric, const SubscriptionProfile& a,
                 const SubscriptionProfile& b) {
  switch (metric) {
    case ClosenessMetric::kIntersect:
      return static_cast<double>(SubscriptionProfile::intersect_count(a, b));
    case ClosenessMetric::kXor: {
      const std::size_t x = SubscriptionProfile::xor_count(a, b);
      return x == 0 ? kXorCap : 1.0 / static_cast<double>(x);
    }
    case ClosenessMetric::kIos: {
      const auto i = static_cast<double>(SubscriptionProfile::intersect_count(a, b));
      const auto s = static_cast<double>(a.cardinality() + b.cardinality());
      return s == 0 ? 0.0 : i * i / s;
    }
    case ClosenessMetric::kIou: {
      const auto i = static_cast<double>(SubscriptionProfile::intersect_count(a, b));
      const auto u = static_cast<double>(SubscriptionProfile::union_count(a, b));
      return u == 0 ? 0.0 : i * i / u;
    }
  }
  return 0.0;
}

}  // namespace greenps
