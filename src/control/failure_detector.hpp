// FailureDetector — phi-accrual failure detection over sampler heartbeats.
//
// The simulator's per-broker sampler rows double as heartbeats: a live
// broker produces one row per sampling period, a crashed one goes silent
// (Simulation::take_sample skips crashed brokers). The detector accrues
// suspicion the longer a broker stays silent, following the phi-accrual
// model of Hayashibara et al.: the inter-heartbeat gap is modeled as a
// normal distribution learned online per broker, and
//
//   phi(now) = -log10( P(next heartbeat arrives later than now) )
//
// so phi ~ 1 means "this silence had a 10% chance under normal jitter",
// phi ~ 6 means one in a million. Two thresholds map phi onto a health
// state machine (alive -> suspect -> dead); a structural min-missed floor
// guarantees zero false positives on a fault-free run, where the sampler
// is strictly periodic and every evaluation sees at most one period of
// silence. All state is driven by the caller's (heartbeat, evaluate) call
// sequence — no wall clock, no randomness — so detection is deterministic
// for any simulator worker count.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/ids.hpp"

namespace greenps::control {

enum class BrokerHealth { kAlive, kSuspect, kDead };
[[nodiscard]] const char* health_name(BrokerHealth h);

struct FailureDetectorConfig {
  // Heartbeat cadence the tracks are seeded with (the sampler period).
  // Learned inter-arrival statistics take over after a few beats.
  double expected_interval_s = 1.0;
  // Phi thresholds for the two transitions.
  double phi_suspect = 2.0;
  double phi_dead = 6.0;
  // Structural floors: a broker is never suspected (declared dead) before
  // this many expected intervals of silence, whatever phi says. With a
  // strictly periodic heartbeat an evaluation can race one period of
  // silence at most, so any floor > 1 makes fault-free false positives
  // impossible by construction.
  double min_missed_suspect = 2.0;
  double min_missed_dead = 3.0;
  // Variance floor (seconds): a perfectly periodic source would otherwise
  // learn sigma = 0 and fire on the first microsecond of silence.
  double min_std_s = 0.25;
  // EWMA weight for the learned inter-arrival mean/variance.
  double alpha = 0.2;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorConfig config = {}) : config_(config) {}

  [[nodiscard]] const FailureDetectorConfig& config() const { return config_; }

  // Replace the monitored set (call on every redeploy): brokers joining
  // start with a grace heartbeat at `now_s`, brokers leaving are dropped
  // along with their state.
  void watch(const std::vector<BrokerId>& brokers, double now_s);

  // One heartbeat observed from `b` at `at_s` (monotone per broker).
  void heartbeat(BrokerId b, double at_s);

  // Re-evaluate every watched broker's health at `now_s`.
  void evaluate(double now_s);

  [[nodiscard]] double phi(BrokerId b, double now_s) const;
  [[nodiscard]] BrokerHealth health(BrokerId b) const;
  // Time (the caller's clock) at which the broker transitioned to dead;
  // negative when it is not dead.
  [[nodiscard]] double dead_since(BrokerId b) const;

  // Currently-watched brokers in each state, ascending id.
  [[nodiscard]] std::vector<BrokerId> suspects() const;
  [[nodiscard]] std::vector<BrokerId> dead() const;

  // Cumulative transition counts (false-positive audits: a fault-free run
  // must end with both still zero).
  [[nodiscard]] std::size_t suspect_transitions() const { return suspect_transitions_; }
  [[nodiscard]] std::size_t dead_transitions() const { return dead_transitions_; }

 private:
  struct Track {
    double last_s = 0;       // most recent heartbeat
    double mean_s = 0;       // learned inter-arrival mean
    double var_s2 = 0;       // learned inter-arrival variance
    std::size_t beats = 0;   // heartbeats observed
    BrokerHealth health = BrokerHealth::kAlive;
    double dead_since = -1;
  };

  [[nodiscard]] double phi_of(const Track& t, double now_s) const;

  FailureDetectorConfig config_;
  // Ordered map: suspects()/dead() enumerate in ascending id without a sort.
  std::map<BrokerId, Track> tracks_;
  std::size_t suspect_transitions_ = 0;
  std::size_t dead_transitions_ = 0;
};

}  // namespace greenps::control
