#include "control/elastic_controller.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace greenps::control {

const char* action_name(ControlAction a) {
  switch (a) {
    case ControlAction::kHold: return "hold";
    case ControlAction::kConsolidate: return "consolidate";
    case ControlAction::kCommission: return "commission";
    case ControlAction::kRecover: return "recover";
  }
  return "?";
}

const char* hold_reason_name(HoldReason r) {
  switch (r) {
    case HoldReason::kNone: return "none";
    case HoldReason::kNoSignal: return "no_signal";
    case HoldReason::kWarmup: return "warmup";
    case HoldReason::kInBand: return "in_band";
    case HoldReason::kDwell: return "dwell";
    case HoldReason::kCooldown: return "cooldown";
    case HoldReason::kBackoff: return "backoff";
    case HoldReason::kDegraded: return "degraded";
  }
  return "?";
}

PlanScore score_consolidation(const ControllerConfig& cfg, std::size_t brokers_now,
                              std::size_t brokers_planned, const MigrationCost& migration,
                              double window_avg_util, double capacity_now_kb_s,
                              double capacity_planned_kb_s) {
  PlanScore s;
  const double saved = static_cast<double>(brokers_now) - static_cast<double>(brokers_planned);
  s.energy_gain = cfg.energy_weight * saved * cfg.score_horizon_s / 3600.0;
  const std::size_t moved = migration.subscribers_moved + migration.publishers_moved;
  const std::size_t population =
      migration.subscribers_total + migration.publishers_total;
  s.migration_penalty =
      population > 0 ? cfg.migration_weight * static_cast<double>(moved) /
                           static_cast<double>(population)
                     : 0.0;
  s.commission_penalty =
      cfg.commission_weight * static_cast<double>(migration.brokers_commissioned +
                                                  migration.brokers_decommissioned);
  // Today's aggregate output work, spread over the planned capacity: the
  // same busy-seconds concentrated on fewer links.
  s.projected_util = capacity_planned_kb_s > 0
                         ? window_avg_util * capacity_now_kb_s / capacity_planned_kb_s
                         : 1.0;
  s.delay_risk = s.projected_util > cfg.consolidate_util_cap;
  s.net = s.energy_gain - s.migration_penalty - s.commission_penalty;
  return s;
}

Decision ElasticController::decide(const LoadEstimate& est, double now_s,
                                   double since_deploy_s) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("control.ticks").add(1);
  reg.gauge("control.ewma_peak_util").set(est.ewma_peak_util);
  reg.gauge("control.max_backlog_s").set(est.max_backlog_s);

  const auto hold = [&reg](HoldReason r) {
    reg.counter("control.holds").add(1);
    return Decision{ControlAction::kHold, r, false};
  };

  if (est.sample_ticks == 0) return hold(HoldReason::kNoSignal);

  if (since_deploy_s < config_.warmup_s) {
    // The windows right after a redeploy measure the migration transient
    // (queues rebuilt, backlog draining), not the workload — dwell must
    // not accumulate on them or every apply pre-charges the next trigger.
    up_dwell_ = 0;
    down_dwell_ = 0;
    return hold(HoldReason::kWarmup);
  }

  const bool emergency = est.max_backlog_s > config_.backlog_high_s;
  const bool signal_up = est.ewma_peak_util > config_.util_high || emergency;
  const bool signal_down = est.ewma_peak_util < config_.util_low &&
                           est.max_backlog_s < config_.backlog_quiet_s;
  // Dwell counters advance on every tick the signal persists and reset the
  // moment it breaks — a flapping signal never accumulates dwell. They do
  // accumulate through cooldown/backoff holds, so a persistent signal acts
  // the moment those expire.
  up_dwell_ = signal_up ? up_dwell_ + 1 : 0;
  down_dwell_ = signal_down ? down_dwell_ + 1 : 0;

  if (now_s < backoff_until_) return hold(HoldReason::kBackoff);

  if (signal_up) {
    if (now_s < commission_ready_at_) return hold(HoldReason::kCooldown);
    if (!emergency && up_dwell_ < config_.commission_dwell_ticks) {
      return hold(HoldReason::kDwell);
    }
    if (emergency) reg.counter("control.emergency_commissions").add(1);
    return Decision{ControlAction::kCommission, HoldReason::kNone, emergency};
  }
  if (signal_down) {
    if (now_s < consolidate_ready_at_) return hold(HoldReason::kCooldown);
    if (down_dwell_ < config_.consolidate_dwell_ticks) return hold(HoldReason::kDwell);
    return Decision{ControlAction::kConsolidate, HoldReason::kNone, false};
  }
  return hold(HoldReason::kInBand);
}

void ElasticController::on_applied(ControlAction action, double now_s) {
  up_dwell_ = 0;
  down_dwell_ = 0;
  failures_ = 0;
  backoff_until_ = 0;
  // Both directions cool down after any apply — an immediate reversal of a
  // move we just paid for is exactly the flapping the bands exist to stop —
  // but asymmetrically. The full consolidate cooldown only follows a
  // consolidation: commissions are sized from an EWMA that lags under
  // backlog and routinely overshoot, and the claw-back consolidation after
  // the surge passes is the controller's whole energy case. It still has
  // to clear the short guard, the warm-up gate and the full dwell.
  commission_ready_at_ = now_s + config_.commission_cooldown_s;
  // A recovery reshuffles load onto the survivors and often commissions
  // spares — exactly the state an eager consolidation would immediately
  // unwind (and re-migrate the just-re-homed orphans). It earns the full
  // consolidate cooldown, like a consolidation itself.
  consolidate_ready_at_ =
      now_s + (action == ControlAction::kConsolidate || action == ControlAction::kRecover
                   ? config_.consolidate_cooldown_s
                   : config_.commission_cooldown_s);
}

void ElasticController::on_apply_failed(double now_s) {
  failures_ += 1;
  double backoff = config_.failure_backoff_s;
  for (std::size_t i = 1; i < failures_; ++i) backoff *= 2;
  backoff = std::min(backoff, config_.max_backoff_s);
  backoff_until_ = now_s + backoff;
  obs::MetricsRegistry::global().gauge("control.backoff_s").set(backoff);
  // Dwell survives: the load signal that motivated the plan is still there,
  // so once the backoff expires the controller re-plans immediately.
}

void ElasticController::on_plan_rejected(ControlAction action, double now_s) {
  if (action == ControlAction::kConsolidate) {
    consolidate_ready_at_ = now_s + config_.consolidate_cooldown_s / 2;
  } else if (action == ControlAction::kCommission) {
    commission_ready_at_ = now_s + config_.commission_cooldown_s / 2;
  }
  obs::MetricsRegistry::global().counter("control.plans_rejected").add(1);
}

}  // namespace greenps::control
