// Windowed + EWMA load estimation over the simulator's per-broker
// time-series sampler (PR 4): the elastic controller's sensor fusion.
//
// Each control tick folds the sampler rows appended since the previous tick
// into a window digest (mean/max link utilization, worst queue backlog,
// system input rate) and updates exponentially-weighted running estimates.
// Rows arrive in canonical (time, broker) order and the fold is pure
// arithmetic over them, so for a fixed seed the estimate series — and every
// controller decision derived from it — is identical for any worker count.
#pragma once

#include <cstddef>

#include "obs/sampler.hpp"

namespace greenps::control {

// Digest of one control window, plus the running EWMA state after it.
struct LoadEstimate {
  double time_s = 0;             // sim time of the last sample folded in
  std::size_t brokers = 0;       // brokers that reported in the window
  std::size_t sample_ticks = 0;  // sampling instants folded in (0 = blind)
  // Window aggregates (across the window's sampling instants):
  double avg_util = 0;       // mean over instants of mean per-broker link util
  double peak_util = 0;      // max over instants of max per-broker link util
  double max_backlog_s = 0;  // worst output-queue backlog observed
  double in_rate_msg_s = 0;  // mean over instants of summed broker input rate
  // Running EWMA (seeded by the first window, updated once per instant):
  double ewma_avg_util = 0;
  double ewma_peak_util = 0;
  double ewma_in_rate = 0;
};

class LoadEstimator {
 public:
  // `alpha` is the per-sampling-instant EWMA weight of the new value.
  explicit LoadEstimator(double alpha = 0.4) : alpha_(alpha) {}

  // Fold rows [begin_row, row_count) of `sampler` into a fresh window
  // digest and advance the EWMA state. Row layout is the simulator's:
  // (time_s, broker, {in_rate_msg_s, out_rate_msg_s, queue_backlog_s,
  // bw_utilization}).
  const LoadEstimate& update(const obs::TimeSeriesSampler& sampler, std::size_t begin_row);

  [[nodiscard]] const LoadEstimate& current() const { return state_; }
  void reset();

 private:
  double alpha_;
  LoadEstimate state_;
  bool primed_ = false;
};

}  // namespace greenps::control
