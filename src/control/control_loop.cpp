#include "control/control_loop.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace greenps::control {

ControlLoop::ControlLoop(Simulation& sim, ControlLoopConfig config)
    : sim_(sim),
      config_(config),
      controller_(config.controller),
      croc_([&] {
        CrocConfig c = config.croc;
        c.capacity_headroom = config.consolidate_headroom;
        return c;
      }()) {
  universe_ = sim_.deployment().capacities;
  // Every universe broker is commissionable: parked ones answer no BIR, so
  // CROC plans them from this reserve capacity instead.
  std::vector<BrokerInfo> reserve;
  reserve.reserve(universe_.size());
  for (const auto& [id, cap] : universe_) {
    BrokerInfo info;
    info.id = id;
    info.delay = cap.delay;
    info.total_out_bw = cap.out_bw_kb_s;
    reserve.push_back(std::move(info));
  }
  croc_.set_reserve_brokers(std::move(reserve));
  if (config_.sample_interval_ms > 0) {
    sim_.set_sample_interval_ms(config_.sample_interval_ms);
  }
  consumed_rows_ = sim_.samples().row_count();
  // Construction is not a redeploy: nothing migrated and the caller's
  // profiles are warm, so the first decision owes dwell but not warm-up.
  last_deploy_s_ = -config_.controller.warmup_s;
}

double ControlLoop::capacity_of(const std::vector<BrokerId>& brokers) const {
  double total = 0;
  for (const BrokerId b : brokers) {
    const auto it = universe_.find(b);
    if (it != universe_.end()) total += it->second.out_bw_kb_s;
  }
  return total;
}

const TickRecord& ControlLoop::step() {
  GREENPS_SPAN("control.tick");
  sim_.run(config_.interval_s);
  // The simulator's event clock restarts at zero on every redeploy; the
  // loop keeps its own continuous timeline for cooldowns and reports.
  now_s_ += config_.interval_s;
  const double now_s = now_s_;

  TickRecord rec;
  rec.time_s = now_s;
  rec.window = sim_.summarize();
  rec.brokers_before = sim_.deployment().topology.broker_count();
  rec.brokers_after = rec.brokers_before;

  totals_.broker_seconds += static_cast<double>(rec.brokers_before) * config_.interval_s;
  totals_.publications += rec.window.publications;
  totals_.deliveries += rec.window.deliveries;
  totals_.delay_sum_ms +=
      rec.window.avg_delivery_delay_ms * static_cast<double>(rec.window.deliveries);
  delays_.merge(sim_.metrics().delay_histogram());

  rec.estimate = estimator_.update(sim_.samples(), consumed_rows_);
  consumed_rows_ = sim_.samples().row_count();

  if (config_.enabled) {
    rec.decision = controller_.decide(rec.estimate, now_s, now_s - last_deploy_s_);
  } else {
    rec.decision = Decision{ControlAction::kHold, HoldReason::kNone, false};
  }
  // Window boundary: the next interval measures from zero (the merged
  // histogram above keeps the overall distribution exact).
  sim_.reset_metrics();

  obs::MetricsRegistry::global()
      .gauge("control.brokers")
      .set(static_cast<double>(rec.brokers_before));

  if (rec.decision.action != ControlAction::kHold) act(rec, now_s);

  history_.push_back(std::move(rec));
  return history_.back();
}

void ControlLoop::act(TickRecord& rec, double now_s) {
  auto& reg = obs::MetricsRegistry::global();
  const ControlAction action = rec.decision.action;

  // Deterministic entry point: the smallest live broker in the overlay.
  std::vector<BrokerId> ids = sim_.deployment().topology.brokers();
  std::sort(ids.begin(), ids.end());
  BrokerId entry{};
  bool found = false;
  for (const BrokerId b : ids) {
    if (sim_.broker_alive(b)) {
      entry = b;
      found = true;
      break;
    }
  }
  if (!found) {
    rec.plan_failure = FailureReason::kGatherFailed;
    totals_.plan_failures += 1;
    controller_.on_apply_failed(now_s);
    return;
  }

  // The allocator packs by profiled publication rates, which charge each
  // delivery once at its home broker; the measured link utilization pays it
  // at every overlay hop. headroom_scale_ is the learned correction: a
  // delay-risk rejection below tightens it from the measured/projected
  // ratio and re-plans with more brokers. It persists across ticks — the
  // mismatch is a property of the workload's fanout, not of one window.
  ReconfigurationReport report;
  std::size_t moved = 0;
  for (int attempt = 0;; ++attempt) {
    const double base = action == ControlAction::kCommission
                            ? config_.commission_headroom
                            : config_.consolidate_headroom;
    // Changing the headroom ends the warm session (rebootstrap), so it only
    // moves when the direction or the learned scale actually changes.
    croc_.set_capacity_headroom(std::max(0.05, base * headroom_scale_));
    {
      GREENPS_SPAN_TAGGED("control.plan", static_cast<std::uint64_t>(action));
      report = croc_.reconfigure_incremental(sim_, entry);
    }
    rec.planned = true;
    if (!report.success) {
      rec.plan_failure = report.failure;
      totals_.plan_failures += 1;
      reg.counter("control.plan_failures").add(1);
      // Infeasible plans back off like failed applies: re-planning every
      // tick against the same pool would just burn planner time.
      controller_.on_apply_failed(now_s);
      return;
    }

    rec.migration = report.migration;
    const std::size_t planned_brokers = report.plan.allocated_brokers.size();
    moved = report.migration.subscribers_moved + report.migration.publishers_moved;
    const bool noop = moved == 0 && report.migration.brokers_commissioned == 0 &&
                      report.migration.brokers_decommissioned == 0;

    // Measured projection of the plan: the EWMA peak per-broker utilization
    // scaled by the capacity ratio. The estimator is reset on every
    // redeploy, so this EWMA describes the current deployment only — never
    // the ghost of a crisis an earlier commission already relieved.
    const double cap_planned = capacity_of(report.plan.allocated_brokers);
    const double proj_peak =
        cap_planned > 0
            ? rec.estimate.ewma_peak_util * capacity_of(ids) / cap_planned
            : 0.0;
    const double target = config_.controller.consolidate_util_target;

    if (action == ControlAction::kCommission) {
      const bool stale = noop || planned_brokers <= rec.brokers_before;
      // Size the growth toward the target utilization: a plan whose
      // projected peak still clears the band adds too little; one far
      // below 0.75x target adds too much (the overshoot that a later
      // consolidation would have to claw back, migrating everyone twice).
      const bool too_hot = proj_peak > config_.controller.util_high;
      const bool too_cold = proj_peak < 0.75 * target;
      if ((stale || too_hot || too_cold) && attempt < kMaxPlanAttempts) {
        if (stale) {
          // The profiled rates say current capacity suffices while the
          // measured load says otherwise (profiles are lifetime averages
          // and do not see the backlog): tighten until the plan grows —
          // proportionally when the projection is usable, bluntly when the
          // trigger was pure backlog at modest utilization.
          reg.counter("control.stale_profile_rejections").add(1);
          const double factor = proj_peak > target ? target / proj_peak : 0.7;
          headroom_scale_ = std::clamp(headroom_scale_ * factor, 0.05, kMaxScale);
        } else {
          headroom_scale_ = std::clamp(
              headroom_scale_ * target / std::max(proj_peak, 1e-3), 0.05, kMaxScale);
          reg.counter(too_hot ? "control.commission_hot_retunes"
                              : "control.commission_cold_retunes")
              .add(1);
        }
        reg.gauge("control.headroom_scale").set(headroom_scale_);
        continue;
      }
      if (stale) {
        // Out of attempts and the plan never grew: reject, cool down.
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
      // A hot/cold plan that at least grows is still applied at this
      // point — under a commission signal, imperfect capacity beats none.
    } else {
      rec.score = score_consolidation(config_.controller, rec.brokers_before,
                                      planned_brokers, report.migration,
                                      rec.estimate.avg_util, capacity_of(ids),
                                      cap_planned);
      reg.gauge("control.score_net").set(rec.score.net);
      // Predict the post-repack hottest broker: the avg-based capacity
      // scaling times the measured peak/avg skew. The skew is clamped —
      // repacking onto fewer brokers evens out the extreme imbalance of a
      // sparse deployment, so today's raw ratio overstates tomorrow's.
      const double skew = std::clamp(
          rec.estimate.ewma_avg_util > 1e-6
              ? rec.estimate.ewma_peak_util / rec.estimate.ewma_avg_util
              : 1.0,
          1.0, 1.6);
      const double proj = rec.score.projected_util * skew;
      // Calibrate the learned scale toward the target: too hot (the packed
      // peak would ride a rising ramp straight out of the band and flap
      // back) means the model still undercounts; far too cold means the
      // scale has over-corrected (e.g. after a commission surge) and the
      // plan keeps brokers the load cannot fill — including noop plans
      // that refuse to shrink at all. Both retune and re-plan.
      const bool too_hot = proj > 1.2 * target;
      const bool too_cold = proj > 0 && proj < 0.8 * target;
      if ((too_hot || too_cold) && attempt < kMaxPlanAttempts) {
        headroom_scale_ =
            std::clamp(headroom_scale_ * target / std::max(proj, 1e-3), 0.05, kMaxScale);
        reg.gauge("control.headroom_scale").set(headroom_scale_);
        reg.counter(too_cold ? "control.slack_retunes"
                             : "control.delay_risk_retunes")
            .add(1);
        continue;
      }
      if (noop) {
        reg.counter("control.noop_plans").add(1);
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
      if (rec.score.delay_risk || proj > config_.controller.consolidate_util_cap) {
        reg.counter("control.delay_risk_rejections").add(1);
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
      if (!rec.score.worth_applying()) {
        reg.counter("control.not_worth_rejections").add(1);
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
    }
    break;
  }

  if (pre_apply_hook) pre_apply_hook(report.plan);

  // The commissionable universe rides along so the validator accepts plan
  // brokers that are currently parked (powered off, not in the overlay).
  Deployment base = sim_.deployment();
  for (const auto& [id, cap] : universe_) base.capacities.try_emplace(id, cap);

  // Health probe: a broker is unreachable only if it is deployed AND
  // crashed. Parked universe brokers are powered off, not failed — they
  // must probe healthy or no commission could ever succeed.
  const auto probe = [this](BrokerId b) {
    return !sim_.deployment().topology.has_broker(b) || sim_.broker_alive(b);
  };
  ApplyResult applied;
  {
    GREENPS_SPAN_TAGGED("control.apply", static_cast<std::uint64_t>(action));
    applied = apply_plan_transactional(base, report.plan, probe);
  }
  if (!applied.success) {
    rec.apply_failure = applied.reason;
    totals_.apply_failures += 1;
    reg.counter("control.apply_failures").add(1);
    obs::trace_instant("control.rollback", static_cast<std::uint64_t>(applied.steps_applied));
    controller_.on_apply_failed(now_s);
    return;
  }

  sim_.redeploy(std::move(applied.deployment));
  consumed_rows_ = 0;  // redeploy cleared the sampler with the old epoch
  // The EWMA state describes a deployment that no longer exists — re-seed
  // it from the new one's first window rather than averaging across the
  // discontinuity.
  estimator_.reset();
  last_deploy_s_ = now_s;
  rec.applied = true;
  rec.brokers_after = sim_.deployment().topology.broker_count();
  controller_.on_applied(action, now_s);
  totals_.reconfigurations += 1;
  totals_.clients_migrated += moved;
  reg.counter("control.clients_migrated").add(moved);
  if (action == ControlAction::kCommission) {
    totals_.commissions += 1;
    reg.counter("control.commissions").add(1);
    obs::trace_instant("control.commission", rec.brokers_after);
  } else {
    totals_.consolidations += 1;
    reg.counter("control.consolidations").add(1);
    obs::trace_instant("control.consolidate", rec.brokers_after);
  }
}

void ControlLoop::run_for(double seconds) {
  const auto steps = static_cast<std::size_t>(std::ceil(seconds / config_.interval_s));
  for (std::size_t i = 0; i < steps; ++i) step();
}

}  // namespace greenps::control
