#include "control/control_loop.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace greenps::control {

namespace {

// GREENPS_HEADROOM_SCALE: persisted learned headroom correction from a
// previous run (benches emit it; operators feed it back). 0 when unset.
double headroom_scale_from_env() {
  const char* env = std::getenv("GREENPS_HEADROOM_SCALE");
  if (env == nullptr || *env == '\0') return 0;
  return std::atof(env);
}

}  // namespace

ControlLoop::ControlLoop(Simulation& sim, ControlLoopConfig config)
    : sim_(sim),
      config_(config),
      controller_(config.controller),
      detector_([&] {
        // Heartbeats ARE the sampler rows, so the detector's notion of a
        // normal inter-arrival is the sampling period, not a free knob.
        FailureDetectorConfig d = config.detector;
        if (config.sample_interval_ms > 0) {
          d.expected_interval_s = config.sample_interval_ms / 1000.0;
        }
        return d;
      }()),
      croc_([&] {
        CrocConfig c = config.croc;
        c.capacity_headroom = config.consolidate_headroom;
        return c;
      }()) {
  universe_ = sim_.deployment().capacities;
  // Every universe broker is commissionable: parked ones answer no BIR, so
  // CROC plans them from this reserve capacity instead.
  std::vector<BrokerInfo> reserve;
  reserve.reserve(universe_.size());
  for (const auto& [id, cap] : universe_) {
    BrokerInfo info;
    info.id = id;
    info.delay = cap.delay;
    info.total_out_bw = cap.out_bw_kb_s;
    reserve.push_back(std::move(info));
  }
  croc_.set_reserve_brokers(std::move(reserve));
  if (config_.sample_interval_ms > 0) {
    sim_.set_sample_interval_ms(config_.sample_interval_ms);
  }
  consumed_rows_ = sim_.samples().row_count();
  // Construction is not a redeploy: nothing migrated and the caller's
  // profiles are warm, so the first decision owes dwell but not warm-up.
  last_deploy_s_ = -config_.controller.warmup_s;

  const double seed_scale = config_.initial_headroom_scale > 0
                                ? config_.initial_headroom_scale
                                : headroom_scale_from_env();
  if (seed_scale > 0) headroom_scale_ = std::clamp(seed_scale, 0.05, kMaxScale);

  if (config_.healing) {
    std::vector<BrokerId> brokers = sim_.deployment().topology.brokers();
    std::sort(brokers.begin(), brokers.end());
    detector_.watch(brokers, now_s_);
  }
}

double ControlLoop::capacity_of(const std::vector<BrokerId>& brokers) const {
  double total = 0;
  for (const BrokerId b : brokers) {
    const auto it = universe_.find(b);
    if (it != universe_.end()) total += it->second.out_bw_kb_s;
  }
  return total;
}

const TickRecord& ControlLoop::step() {
  GREENPS_SPAN("control.tick");
  sim_.run(config_.interval_s);
  // The simulator's event clock restarts at zero on every redeploy; the
  // loop keeps its own continuous timeline for cooldowns and reports.
  now_s_ += config_.interval_s;
  const double now_s = now_s_;

  TickRecord rec;
  rec.time_s = now_s;
  rec.window = sim_.summarize();
  rec.brokers_before = sim_.deployment().topology.broker_count();
  rec.brokers_after = rec.brokers_before;

  totals_.broker_seconds += static_cast<double>(rec.brokers_before) * config_.interval_s;
  totals_.publications += rec.window.publications;
  totals_.deliveries += rec.window.deliveries;
  totals_.delay_sum_ms +=
      rec.window.avg_delivery_delay_ms * static_cast<double>(rec.window.deliveries);
  delays_.merge(sim_.metrics().delay_histogram());

  const std::size_t row_begin = consumed_rows_;
  rec.estimate = estimator_.update(sim_.samples(), consumed_rows_);
  consumed_rows_ = sim_.samples().row_count();

  if (config_.healing) {
    // The sampler rows double as heartbeats: take_sample skips crashed
    // brokers, so silence is the failure signal. Row times are on the sim's
    // per-epoch clock; translate them onto the loop's continuous timeline.
    const auto& rows = sim_.samples().rows();
    const double offset = now_s - to_seconds(sim_.now_us());
    for (std::size_t i = row_begin; i < rows.size(); ++i) {
      detector_.heartbeat(BrokerId{rows[i].key}, rows[i].time_s + offset);
    }
    detector_.evaluate(now_s);
    rec.suspects = detector_.suspects();
    rec.dead = detector_.dead();
    totals_.detections = detector_.dead_transitions();
    obs::MetricsRegistry::global()
        .gauge("control.brokers_dead")
        .set(static_cast<double>(rec.dead.size()));
  }

  if (config_.enabled) {
    rec.decision = controller_.decide(rec.estimate, now_s, now_s - last_deploy_s_);
    if (config_.healing && !rec.dead.empty()) {
      // Confirmed death overrides the load-driven decision: recovery skips
      // dwell and cooldown like the backlog emergency. It still respects
      // the failed-apply backoff — the failed apply usually WAS the last
      // recovery attempt, and re-planning every tick against the same
      // broken pool burns planner time without new information.
      rec.decision = controller_.in_backoff(now_s)
                         ? Decision{ControlAction::kHold, HoldReason::kBackoff, true}
                         : Decision{ControlAction::kRecover, HoldReason::kNone, true};
    } else if (config_.healing && !rec.suspects.empty() &&
               rec.decision.action == ControlAction::kConsolidate) {
      // Suspects gate consolidation (not commission): packing tighter while
      // a broker wobbles risks planning onto a dying broker and then
      // immediately re-migrating everything in the recovery — flapping.
      rec.decision = Decision{ControlAction::kHold, HoldReason::kDegraded, false};
    }
  } else {
    rec.decision = Decision{ControlAction::kHold, HoldReason::kNone, false};
  }
  // Window boundary: the next interval measures from zero (the merged
  // histogram above keeps the overall distribution exact).
  sim_.reset_metrics();

  obs::MetricsRegistry::global()
      .gauge("control.brokers")
      .set(static_cast<double>(rec.brokers_before));

  if (rec.decision.action != ControlAction::kHold) act(rec, now_s);

  history_.push_back(std::move(rec));
  return history_.back();
}

void ControlLoop::act(TickRecord& rec, double now_s) {
  if (rec.decision.action == ControlAction::kRecover) {
    recover(rec, now_s);
    return;
  }

  auto& reg = obs::MetricsRegistry::global();
  const ControlAction action = rec.decision.action;

  // Regular plans must exclude quarantined (confirmed-dead) brokers too:
  // a dead broker answers no BIR, so without the quarantine the reserve
  // splice would happily re-commission it and the apply probe would bounce
  // every plan until its quarantine lapsed.
  refresh_quarantine(now_s);

  // Deterministic entry point: the smallest live broker in the overlay.
  std::vector<BrokerId> ids = sim_.deployment().topology.brokers();
  std::sort(ids.begin(), ids.end());
  BrokerId entry{};
  bool found = false;
  for (const BrokerId b : ids) {
    if (sim_.broker_alive(b)) {
      entry = b;
      found = true;
      break;
    }
  }
  if (!found) {
    rec.plan_failure = FailureReason::kGatherFailed;
    totals_.plan_failures += 1;
    controller_.on_apply_failed(now_s);
    return;
  }

  // The allocator packs by profiled publication rates, which charge each
  // delivery once at its home broker; the measured link utilization pays it
  // at every overlay hop. headroom_scale_ is the learned correction: a
  // delay-risk rejection below tightens it from the measured/projected
  // ratio and re-plans with more brokers. It persists across ticks — the
  // mismatch is a property of the workload's fanout, not of one window.
  ReconfigurationReport report;
  std::size_t moved = 0;
  for (int attempt = 0;; ++attempt) {
    const double base = action == ControlAction::kCommission
                            ? config_.commission_headroom
                            : config_.consolidate_headroom;
    // Changing the headroom ends the warm session (rebootstrap), so it only
    // moves when the direction or the learned scale actually changes.
    croc_.set_capacity_headroom(std::max(0.05, base * headroom_scale_));
    {
      GREENPS_SPAN_TAGGED("control.plan", static_cast<std::uint64_t>(action));
      report = croc_.reconfigure_incremental(sim_, entry);
    }
    rec.planned = true;
    if (!report.success) {
      rec.plan_failure = report.failure;
      totals_.plan_failures += 1;
      reg.counter("control.plan_failures").add(1);
      // Infeasible plans back off like failed applies: re-planning every
      // tick against the same pool would just burn planner time.
      controller_.on_apply_failed(now_s);
      return;
    }

    rec.migration = report.migration;
    const std::size_t planned_brokers = report.plan.allocated_brokers.size();
    moved = report.migration.subscribers_moved + report.migration.publishers_moved;
    const bool noop = moved == 0 && report.migration.brokers_commissioned == 0 &&
                      report.migration.brokers_decommissioned == 0;

    // Measured projection of the plan: the EWMA peak per-broker utilization
    // scaled by the capacity ratio. The estimator is reset on every
    // redeploy, so this EWMA describes the current deployment only — never
    // the ghost of a crisis an earlier commission already relieved.
    const double cap_planned = capacity_of(report.plan.allocated_brokers);
    const double proj_peak =
        cap_planned > 0
            ? rec.estimate.ewma_peak_util * capacity_of(ids) / cap_planned
            : 0.0;
    const double target = config_.controller.consolidate_util_target;

    if (action == ControlAction::kCommission) {
      const bool stale = noop || planned_brokers <= rec.brokers_before;
      // Size the growth toward the target utilization: a plan whose
      // projected peak still clears the band adds too little; one far
      // below 0.75x target adds too much (the overshoot that a later
      // consolidation would have to claw back, migrating everyone twice).
      const bool too_hot = proj_peak > config_.controller.util_high;
      const bool too_cold = proj_peak < 0.75 * target;
      if ((stale || too_hot || too_cold) && attempt < kMaxPlanAttempts) {
        if (stale) {
          // The profiled rates say current capacity suffices while the
          // measured load says otherwise (profiles are lifetime averages
          // and do not see the backlog): tighten until the plan grows —
          // proportionally when the projection is usable, bluntly when the
          // trigger was pure backlog at modest utilization.
          reg.counter("control.stale_profile_rejections").add(1);
          const double factor = proj_peak > target ? target / proj_peak : 0.7;
          headroom_scale_ = std::clamp(headroom_scale_ * factor, 0.05, kMaxScale);
        } else {
          headroom_scale_ = std::clamp(
              headroom_scale_ * target / std::max(proj_peak, 1e-3), 0.05, kMaxScale);
          reg.counter(too_hot ? "control.commission_hot_retunes"
                              : "control.commission_cold_retunes")
              .add(1);
        }
        reg.gauge("control.headroom_scale").set(headroom_scale_);
        continue;
      }
      if (stale) {
        // Out of attempts and the plan never grew: reject, cool down.
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
      // A hot/cold plan that at least grows is still applied at this
      // point — under a commission signal, imperfect capacity beats none.
    } else {
      rec.score = score_consolidation(config_.controller, rec.brokers_before,
                                      planned_brokers, report.migration,
                                      rec.estimate.avg_util, capacity_of(ids),
                                      cap_planned);
      reg.gauge("control.score_net").set(rec.score.net);
      // Predict the post-repack hottest broker: the avg-based capacity
      // scaling times the measured peak/avg skew. The skew is clamped —
      // repacking onto fewer brokers evens out the extreme imbalance of a
      // sparse deployment, so today's raw ratio overstates tomorrow's.
      const double skew = std::clamp(
          rec.estimate.ewma_avg_util > 1e-6
              ? rec.estimate.ewma_peak_util / rec.estimate.ewma_avg_util
              : 1.0,
          1.0, 1.6);
      const double proj = rec.score.projected_util * skew;
      // Calibrate the learned scale toward the target: too hot (the packed
      // peak would ride a rising ramp straight out of the band and flap
      // back) means the model still undercounts; far too cold means the
      // scale has over-corrected (e.g. after a commission surge) and the
      // plan keeps brokers the load cannot fill — including noop plans
      // that refuse to shrink at all. Both retune and re-plan.
      const bool too_hot = proj > 1.2 * target;
      const bool too_cold = proj > 0 && proj < 0.8 * target;
      if ((too_hot || too_cold) && attempt < kMaxPlanAttempts) {
        headroom_scale_ =
            std::clamp(headroom_scale_ * target / std::max(proj, 1e-3), 0.05, kMaxScale);
        reg.gauge("control.headroom_scale").set(headroom_scale_);
        reg.counter(too_cold ? "control.slack_retunes"
                             : "control.delay_risk_retunes")
            .add(1);
        continue;
      }
      if (noop) {
        reg.counter("control.noop_plans").add(1);
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
      if (rec.score.delay_risk || proj > config_.controller.consolidate_util_cap) {
        reg.counter("control.delay_risk_rejections").add(1);
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
      if (!rec.score.worth_applying()) {
        reg.counter("control.not_worth_rejections").add(1);
        controller_.on_plan_rejected(action, now_s);
        totals_.plans_rejected += 1;
        return;
      }
    }
    break;
  }

  if (!finish_apply(rec, report, action, now_s, moved)) return;

  if (action == ControlAction::kCommission) {
    totals_.commissions += 1;
    reg.counter("control.commissions").add(1);
    obs::trace_instant("control.commission", rec.brokers_after);
  } else {
    totals_.consolidations += 1;
    reg.counter("control.consolidations").add(1);
    obs::trace_instant("control.consolidate", rec.brokers_after);
  }
}

bool ControlLoop::finish_apply(TickRecord& rec, const ReconfigurationReport& report,
                               ControlAction action, double now_s, std::size_t moved) {
  auto& reg = obs::MetricsRegistry::global();
  if (pre_apply_hook) pre_apply_hook(report.plan);

  // The commissionable universe rides along so the validator accepts plan
  // brokers that are currently parked (powered off, not in the overlay).
  Deployment base = sim_.deployment();
  for (const auto& [id, cap] : universe_) base.capacities.try_emplace(id, cap);

  // Health probe: a broker is unreachable only if it is deployed AND
  // crashed. Parked universe brokers are powered off, not failed — they
  // must probe healthy or no commission could ever succeed.
  const auto probe = [this](BrokerId b) {
    return !sim_.deployment().topology.has_broker(b) || sim_.broker_alive(b);
  };
  ApplyResult applied;
  {
    GREENPS_SPAN_TAGGED("control.apply", static_cast<std::uint64_t>(action));
    applied = apply_plan_transactional(base, report.plan, probe);
  }
  if (!applied.success) {
    rec.apply_failure = applied.reason;
    totals_.apply_failures += 1;
    reg.counter("control.apply_failures").add(1);
    obs::trace_instant("control.rollback", static_cast<std::uint64_t>(applied.steps_applied));
    controller_.on_apply_failed(now_s);
    return false;
  }

  if (pre_redeploy_hook) pre_redeploy_hook(sim_);
  sim_.redeploy(std::move(applied.deployment));
  if (post_redeploy_hook) post_redeploy_hook(sim_);
  // Redeploy cleared the sampler with the old epoch.
  consumed_rows_ = sim_.samples().row_count();
  // The EWMA state describes a deployment that no longer exists — re-seed
  // it from the new one's first window rather than averaging across the
  // discontinuity.
  estimator_.reset();
  last_deploy_s_ = now_s;
  rec.applied = true;
  rec.brokers_after = sim_.deployment().topology.broker_count();
  if (config_.healing) {
    // Fresh watch list: departed brokers stop being tracked, newly
    // commissioned ones start with a grace heartbeat (their first sampler
    // row is up to a full interval away).
    std::vector<BrokerId> brokers = sim_.deployment().topology.brokers();
    std::sort(brokers.begin(), brokers.end());
    detector_.watch(brokers, now_s);
  }
  controller_.on_applied(action, now_s);
  totals_.reconfigurations += 1;
  totals_.clients_migrated += moved;
  reg.counter("control.clients_migrated").add(moved);
  return true;
}

void ControlLoop::recover(TickRecord& rec, double now_s) {
  auto& reg = obs::MetricsRegistry::global();
  const std::vector<BrokerId> dead = detector_.dead();

  // Capture detection times now: the post-apply watch() drops dead tracks.
  std::vector<RecoveryRecord> pending;
  pending.reserve(dead.size());
  for (const BrokerId b : dead) {
    const double since = detector_.dead_since(b);
    pending.push_back({b, since >= 0 ? since : now_s, now_s, 0});
    quarantine_until_[b] = now_s + config_.quarantine_s;
  }
  refresh_quarantine(now_s);

  // Deterministic entry: the smallest deployed broker that is actually
  // reachable and not one of the condemned.
  std::vector<BrokerId> ids = sim_.deployment().topology.brokers();
  std::sort(ids.begin(), ids.end());
  BrokerId entry{};
  bool found = false;
  for (const BrokerId b : ids) {
    if (detector_.health(b) == BrokerHealth::kDead) continue;
    if (sim_.broker_alive(b)) {
      entry = b;
      found = true;
      break;
    }
  }
  ReconfigurationReport report;
  if (found) {
    // Recovery plans size like commissions: the survivors are about to
    // absorb the dead brokers' whole client load, and the profiled rates
    // that size the plan have not seen it yet.
    croc_.set_capacity_headroom(
        std::max(0.05, config_.commission_headroom * headroom_scale_));
    {
      GREENPS_SPAN_TAGGED("control.plan",
                          static_cast<std::uint64_t>(ControlAction::kRecover));
      report = croc_.reconfigure_incremental(sim_, entry);
    }
  } else {
    // Total outage (e.g. the deployment had consolidated to a single broker
    // and that broker died): no survivor can answer Phase 1, so gather-based
    // planning is impossible. The control plane still holds the broker
    // universe and the client registry, so it bootstraps: commission fresh
    // reserve brokers and re-home everybody onto them.
    GREENPS_SPAN_TAGGED("control.plan",
                        static_cast<std::uint64_t>(ControlAction::kRecover));
    report = bootstrap_plan();
  }
  rec.planned = true;
  if (!report.success) {
    rec.plan_failure = report.failure;
    totals_.plan_failures += 1;
    reg.counter("control.plan_failures").add(1);
    controller_.on_apply_failed(now_s);
    return;
  }

  // The dead brokers' clients never answered Phase 1, so the plan does not
  // place them (they would all default to the plan root): re-home them
  // explicitly, and pin everyone else — an emergency migrates the orphans,
  // not the whole population. In the bootstrap case the entire deployed
  // fleet is condemned, which makes every client an orphan.
  std::vector<BrokerId> condemned = dead;
  if (!found) {
    condemned = sim_.deployment().topology.brokers();
    std::sort(condemned.begin(), condemned.end());
  }
  std::map<BrokerId, std::size_t> orphans_per_home;
  rec.orphans_rehomed = pin_and_rehome(report.plan, condemned, orphans_per_home);
  report.migration = migration_cost(sim_.deployment(), report.plan);
  rec.migration = report.migration;
  const std::size_t moved =
      report.migration.subscribers_moved + report.migration.publishers_moved;

  if (!finish_apply(rec, report, ControlAction::kRecover, now_s, moved)) return;

  for (auto& r : pending) {
    r.orphans = orphans_per_home[r.broker];
    reg.counter("control.recoveries").add(1);
    obs::trace_instant("control.recover", static_cast<std::uint64_t>(r.broker.value()));
    recoveries_.push_back(r);
  }
  totals_.recoveries += 1;
  totals_.orphans_rehomed += rec.orphans_rehomed;
}

ReconfigurationReport ControlLoop::bootstrap_plan() const {
  ReconfigurationReport report;
  // The whole deployed fleet is condemned; commission capacity to match it.
  const double lost = capacity_of(sim_.deployment().topology.brokers());
  std::vector<BrokerId> candidates;
  candidates.reserve(universe_.size());
  for (const auto& [b, cap] : universe_) {
    if (quarantine_until_.contains(b)) continue;
    if (sim_.deployment().topology.has_broker(b)) continue;
    candidates.push_back(b);
  }
  std::sort(candidates.begin(), candidates.end());
  if (candidates.empty()) {
    // Every reserve broker is quarantined too: nothing to bootstrap onto.
    report.failure = FailureReason::kPhase2Insufficient;
    return report;
  }
  // Ascending ids until the vanished capacity is replaced — but never a
  // single broker when the reserve has two: a one-broker deployment is the
  // unrecoverable single point of failure that forced this bootstrap. The
  // regular controller re-sizes the fleet on subsequent ticks.
  std::vector<BrokerId> selected;
  double cap = 0;
  for (const BrokerId b : candidates) {
    if (selected.size() >= 2 && cap >= lost) break;
    selected.push_back(b);
    cap += capacity_of({b});
  }
  ReconfigurationPlan& plan = report.plan;
  plan.root = selected.front();
  for (const BrokerId b : selected) plan.overlay.add_broker(b);
  for (std::size_t i = 1; i < selected.size(); ++i) {
    plan.overlay.add_link(plan.root, selected[i]);
  }
  plan.allocated_brokers = selected;
  plan.cluster_count = 1;
  report.success = true;
  return report;
}

std::size_t ControlLoop::pin_and_rehome(ReconfigurationPlan& plan,
                                        const std::vector<BrokerId>& dead,
                                        std::map<BrokerId, std::size_t>& per_home) const {
  const auto is_dead = [&dead](BrokerId b) {
    return std::find(dead.begin(), dead.end(), b) != dead.end();
  };
  // Sorted surviving plan brokers: a deterministic round-robin target list.
  std::vector<BrokerId> targets;
  targets.reserve(plan.allocated_brokers.size());
  for (const BrokerId b : plan.allocated_brokers) {
    if (!is_dead(b)) targets.push_back(b);
  }
  std::sort(targets.begin(), targets.end());
  if (targets.empty()) return 0;

  std::size_t rr = 0;
  std::size_t orphans = 0;
  const Deployment& cur = sim_.deployment();
  for (const auto& s : cur.subscribers) {
    if (!is_dead(s.home)) {
      if (plan.overlay.has_broker(s.home)) plan.subscriber_home[s.sub] = s.home;
      continue;
    }
    plan.subscriber_home[s.sub] = targets[rr++ % targets.size()];
    per_home[s.home] += 1;
    orphans += 1;
  }
  for (const auto& p : cur.publishers) {
    if (!is_dead(p.home)) {
      if (plan.overlay.has_broker(p.home)) plan.publisher_home[p.client] = p.home;
      continue;
    }
    plan.publisher_home[p.client] = targets[rr++ % targets.size()];
    per_home[p.home] += 1;
    orphans += 1;
  }
  return orphans;
}

void ControlLoop::refresh_quarantine(double now_s) {
  std::vector<BrokerId> active;
  for (auto it = quarantine_until_.begin(); it != quarantine_until_.end();) {
    if (it->second <= now_s) {
      it = quarantine_until_.erase(it);
    } else {
      active.push_back(it->first);
      ++it;
    }
  }
  croc_.set_quarantined_brokers(std::move(active));
}

void ControlLoop::run_for(double seconds) {
  const auto steps = static_cast<std::size_t>(std::ceil(seconds / config_.interval_s));
  for (std::size_t i = 0; i < steps; ++i) step();
}

}  // namespace greenps::control
