// ElasticController — the decision core of closed-loop elastic autoscaling.
//
// Pure policy over LoadEstimate series: given the EWMA'd utilization and
// backlog signals it decides, once per control tick, whether to hold, to
// consolidate brokers (low load — the paper's green objective), or to
// commission parked capacity back (flash crowd). Anti-flap machinery is
// explicit: hysteresis bands (util_low << util_high), per-direction dwell
// counters (a signal must persist before acting), per-direction cooldowns
// after an apply, a post-redeploy warm-up gate (CBC profiles restart empty
// after every migration and the planner needs them refilled), and
// exponential backoff after failed applies.
//
// Whether a consolidation plan is *worth applying* is a separate explicit
// multi-objective score (score_consolidation): energy saved (broker-hours
// over the decision horizon) against migration cost (clients moved, brokers
// cycled) and delivery-delay risk (projected post-consolidation
// utilization), following the consumer-group autoscaling framing of
// arXiv 2206.11170 / 2402.06085.
//
// The controller is deterministic: decisions depend only on the
// estimate/feedback call sequence, never on wall clock or randomness.
#pragma once

#include <cstddef>

#include "control/load_estimator.hpp"
#include "croc/croc.hpp"

namespace greenps::control {

// kRecover is never produced by decide(): the ControlLoop overrides the
// decision with it when its failure detector confirms a broker death —
// emergency recovery, like a backlog commission, skips dwell and cooldown.
enum class ControlAction { kHold, kConsolidate, kCommission, kRecover };
[[nodiscard]] const char* action_name(ControlAction a);

// Why a tick held (kNone when it acted).
enum class HoldReason {
  kNone,
  kNoSignal,   // no samples arrived this window
  kWarmup,     // too soon after a redeploy: profiles still refilling
  kInBand,     // load inside the hysteresis band
  kDwell,      // signal present but not yet persistent enough
  kCooldown,   // acted too recently in this direction
  kBackoff,    // a recent apply failed; waiting before re-planning
  kDegraded,   // brokers suspect/dead: consolidation suppressed (anti-flap)
};
[[nodiscard]] const char* hold_reason_name(HoldReason r);

struct ControllerConfig {
  // Hysteresis band on EWMA peak per-broker output-link utilization. The
  // lower edge sits 25% under consolidate_util_target: riding below it
  // means the deployment carries >1/3 idle capacity (e.g. the remnant of a
  // flash-crowd commission), which is exactly what consolidation exists to
  // reclaim — while post-consolidation load (~target) stays safely inside
  // the band.
  double util_high = 0.70;
  double util_low = 0.45;
  // Raw (un-smoothed) backlog that triggers an emergency commission,
  // skipping the dwell requirement: seconds of queued output.
  double backlog_high_s = 0.75;
  // Consolidation additionally requires the worst backlog to be quiet —
  // i.e. near the steady-state queueing of a healthy broker (~0.2 s here),
  // not a draining surge.
  double backlog_quiet_s = 0.3;
  // Ticks the signal must persist before acting — emergencies (backlog)
  // skip the commission dwell entirely, keeping surge response at one tick.
  std::size_t commission_dwell_ticks = 2;
  std::size_t consolidate_dwell_ticks = 3;
  // Seconds after an apply before acting again in each direction.
  double commission_cooldown_s = 20;
  double consolidate_cooldown_s = 150;
  // Seconds after a redeploy before any decision (profile warm-up).
  double warmup_s = 20;
  // Failed-apply backoff: doubles per consecutive failure, capped.
  double failure_backoff_s = 20;
  double max_backoff_s = 320;

  // ---- multi-objective score (units: broker-hours) ----
  // Energy saved integrates over this horizon (how long the consolidated
  // deployment is expected to persist).
  double score_horizon_s = 600;
  double energy_weight = 1.0;  // per broker-hour saved
  // Broker-hour equivalent of migrating the ENTIRE client population. The
  // penalty is charged on the moved fraction, so it is scale-free: a
  // reshuffle that moves everyone to save one broker loses to the energy
  // term whether the system hosts five hundred clients or fifty thousand,
  // and a multi-broker consolidation clears it just the same.
  double migration_weight = 0.25;
  double commission_weight = 1.0 / 40;  // per broker commissioned/decommissioned
  // Hard delay-risk gate: reject consolidations whose projected mean
  // utilization exceeds this. Sits just below the allocator's consolidation
  // packing headroom — the plan is already capacity-feasible against
  // profiled rates, so this only vetoes packing into load that the window
  // shows is higher than the profiles admit (i.e. a rising ramp).
  double consolidate_util_cap = 0.85;
  // Projected utilization a well-sized consolidation should land at; the
  // control loop retunes its learned headroom correction toward this.
  double consolidate_util_target = 0.60;
};

struct Decision {
  ControlAction action = ControlAction::kHold;
  HoldReason hold = HoldReason::kNone;
  bool emergency = false;  // backlog-triggered commission (dwell skipped)
};

// Explicit worthiness of a concrete consolidation plan.
struct PlanScore {
  double energy_gain = 0;         // broker-hours saved over the horizon
  double migration_penalty = 0;   // broker-hour equivalent of the moved fraction
  double commission_penalty = 0;  // broker-hour equivalent of cycled brokers
  double projected_util = 0;      // window avg util scaled to the new capacity
  bool delay_risk = false;        // projected_util above the cap
  double net = 0;                 // energy - migration - commission
  [[nodiscard]] bool worth_applying() const { return net > 0 && !delay_risk; }
};

[[nodiscard]] PlanScore score_consolidation(const ControllerConfig& cfg,
                                            std::size_t brokers_now,
                                            std::size_t brokers_planned,
                                            const MigrationCost& migration,
                                            double window_avg_util,
                                            double capacity_now_kb_s,
                                            double capacity_planned_kb_s);

class ElasticController {
 public:
  explicit ElasticController(ControllerConfig config = {}) : config_(config) {}

  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  // One decision at sim time `now_s`; `since_deploy_s` is the time since
  // the deployment last changed (warm-up gating).
  [[nodiscard]] Decision decide(const LoadEstimate& est, double now_s,
                                double since_deploy_s);

  // Outcome feedback — drives cooldowns, dwell resets and failure backoff.
  void on_applied(ControlAction action, double now_s);
  void on_apply_failed(double now_s);
  // Planned but rejected (not worth it / infeasible / no-op): hold off
  // re-planning in that direction for half a cooldown.
  void on_plan_rejected(ControlAction action, double now_s);

  [[nodiscard]] std::size_t consecutive_failures() const { return failures_; }
  // Inside the failed-apply backoff window? Emergency recovery respects it
  // (the failed apply usually IS the recovery attempt; retrying every tick
  // against the same broken pool would just burn planner time).
  [[nodiscard]] bool in_backoff(double now_s) const { return now_s < backoff_until_; }

 private:
  ControllerConfig config_;
  std::size_t up_dwell_ = 0;
  std::size_t down_dwell_ = 0;
  double commission_ready_at_ = 0;
  double consolidate_ready_at_ = 0;
  double backoff_until_ = 0;
  std::size_t failures_ = 0;
};

}  // namespace greenps::control
