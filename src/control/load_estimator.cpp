#include "control/load_estimator.hpp"

#include <algorithm>

namespace greenps::control {

namespace {
// Column order fixed by Simulation's sampler construction.
constexpr std::size_t kColInRate = 0;
constexpr std::size_t kColBacklog = 2;
constexpr std::size_t kColUtil = 3;
}  // namespace

void LoadEstimator::reset() {
  state_ = LoadEstimate{};
  primed_ = false;
}

const LoadEstimate& LoadEstimator::update(const obs::TimeSeriesSampler& sampler,
                                          std::size_t begin_row) {
  const auto& rows = sampler.rows();
  LoadEstimate w;  // window aggregates rebuilt from scratch
  w.ewma_avg_util = state_.ewma_avg_util;
  w.ewma_peak_util = state_.ewma_peak_util;
  w.ewma_in_rate = state_.ewma_in_rate;
  w.time_s = state_.time_s;

  double avg_util_sum = 0;   // per-instant means, summed over instants
  double in_rate_sum = 0;    // per-instant totals, summed over instants
  std::size_t max_brokers = 0;

  std::size_t i = begin_row;
  while (i < rows.size()) {
    // One sampling instant: the run of rows sharing a timestamp (canonical
    // order groups them; every broker reports each instant).
    const double t = rows[i].time_s;
    double util_sum = 0;
    double util_max = 0;
    double in_rate = 0;
    std::size_t n = 0;
    for (; i < rows.size() && rows[i].time_s == t; ++i) {
      const auto& v = rows[i].values;
      util_sum += v[kColUtil];
      util_max = std::max(util_max, v[kColUtil]);
      in_rate += v[kColInRate];
      w.max_backlog_s = std::max(w.max_backlog_s, v[kColBacklog]);
      n += 1;
    }
    const double util_mean = n > 0 ? util_sum / static_cast<double>(n) : 0.0;
    if (!primed_) {
      w.ewma_avg_util = util_mean;
      w.ewma_peak_util = util_max;
      w.ewma_in_rate = in_rate;
      primed_ = true;
    } else {
      w.ewma_avg_util += alpha_ * (util_mean - w.ewma_avg_util);
      w.ewma_peak_util += alpha_ * (util_max - w.ewma_peak_util);
      w.ewma_in_rate += alpha_ * (in_rate - w.ewma_in_rate);
    }
    w.peak_util = std::max(w.peak_util, util_max);
    avg_util_sum += util_mean;
    in_rate_sum += in_rate;
    max_brokers = std::max(max_brokers, n);
    w.sample_ticks += 1;
    w.time_s = t;
  }
  if (w.sample_ticks > 0) {
    w.avg_util = avg_util_sum / static_cast<double>(w.sample_ticks);
    w.in_rate_msg_s = in_rate_sum / static_cast<double>(w.sample_ticks);
  }
  w.brokers = max_brokers;
  state_ = w;
  return state_;
}

}  // namespace greenps::control
