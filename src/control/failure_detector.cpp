#include "control/failure_detector.hpp"

#include <algorithm>
#include <cmath>

namespace greenps::control {

const char* health_name(BrokerHealth h) {
  switch (h) {
    case BrokerHealth::kAlive:
      return "alive";
    case BrokerHealth::kSuspect:
      return "suspect";
    case BrokerHealth::kDead:
      return "dead";
  }
  return "?";
}

void FailureDetector::watch(const std::vector<BrokerId>& brokers, double now_s) {
  std::map<BrokerId, Track> next;
  for (const BrokerId b : brokers) {
    const auto it = tracks_.find(b);
    if (it != tracks_.end()) {
      next.emplace(b, it->second);
    } else {
      // Grace heartbeat: a freshly (re)deployed broker owes nothing until a
      // full detection window elapses from the deployment itself.
      Track t;
      t.last_s = now_s;
      t.mean_s = config_.expected_interval_s;
      next.emplace(b, t);
    }
  }
  tracks_ = std::move(next);
}

void FailureDetector::heartbeat(BrokerId b, double at_s) {
  const auto it = tracks_.find(b);
  if (it == tracks_.end()) return;  // not watched (parked / decommissioned)
  Track& t = it->second;
  if (at_s < t.last_s) return;  // stale row from before the grace mark
  if (t.beats > 0 || t.health != BrokerHealth::kAlive || at_s > t.last_s) {
    // Fold the gap into the learned statistics. Gaps are clamped: the first
    // beat after an outage (or after the grace mark) measures the silence,
    // not the cadence, and must not blow up the window for the next one.
    const double gap =
        std::min(at_s - t.last_s, 4.0 * std::max(t.mean_s, config_.expected_interval_s));
    if (t.beats == 0) {
      t.mean_s = std::max(gap, 1e-6);
    } else {
      const double a = config_.alpha;
      const double d = gap - t.mean_s;
      t.mean_s += a * d;
      t.var_s2 = (1 - a) * (t.var_s2 + a * d * d);
    }
    t.beats += 1;
  }
  t.last_s = at_s;
  if (t.health != BrokerHealth::kAlive) {
    // Heard from it again: suspicion (or a not-yet-recovered death) clears.
    t.health = BrokerHealth::kAlive;
    t.dead_since = -1;
  }
}

double FailureDetector::phi_of(const Track& t, double now_s) const {
  const double gap = now_s - t.last_s;
  if (gap <= 0) return 0;
  const double mean = std::max(t.mean_s, 1e-6);
  const double std_dev = std::max(std::sqrt(std::max(t.var_s2, 0.0)), config_.min_std_s);
  const double z = (gap - mean) / std_dev;
  // P(heartbeat later than now) under N(mean, std^2); erfc keeps precision
  // in the far tail where 1 - CDF underflows.
  const double p_later = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (p_later <= 0) return 40.0;  // beyond double precision: certainly dead
  return std::min(-std::log10(p_later), 40.0);
}

double FailureDetector::phi(BrokerId b, double now_s) const {
  const auto it = tracks_.find(b);
  return it == tracks_.end() ? 0.0 : phi_of(it->second, now_s);
}

BrokerHealth FailureDetector::health(BrokerId b) const {
  const auto it = tracks_.find(b);
  return it == tracks_.end() ? BrokerHealth::kAlive : it->second.health;
}

double FailureDetector::dead_since(BrokerId b) const {
  const auto it = tracks_.find(b);
  return it == tracks_.end() ? -1.0 : it->second.dead_since;
}

void FailureDetector::evaluate(double now_s) {
  for (auto& [b, t] : tracks_) {
    (void)b;
    const double gap = now_s - t.last_s;
    const double expected = std::max(t.mean_s, 1e-6);
    const double p = phi_of(t, now_s);
    if (t.health == BrokerHealth::kDead) continue;  // sticky until watch()/heartbeat()
    if (p >= config_.phi_dead && gap >= config_.min_missed_dead * expected) {
      if (t.health != BrokerHealth::kSuspect) suspect_transitions_ += 1;
      t.health = BrokerHealth::kDead;
      t.dead_since = now_s;
      dead_transitions_ += 1;
    } else if (p >= config_.phi_suspect && gap >= config_.min_missed_suspect * expected) {
      if (t.health == BrokerHealth::kAlive) {
        t.health = BrokerHealth::kSuspect;
        suspect_transitions_ += 1;
      }
    } else if (t.health == BrokerHealth::kSuspect) {
      t.health = BrokerHealth::kAlive;
    }
  }
}

std::vector<BrokerId> FailureDetector::suspects() const {
  std::vector<BrokerId> out;
  for (const auto& [b, t] : tracks_) {
    if (t.health == BrokerHealth::kSuspect) out.push_back(b);
  }
  return out;
}

std::vector<BrokerId> FailureDetector::dead() const {
  std::vector<BrokerId> out;
  for (const auto& [b, t] : tracks_) {
    if (t.health == BrokerHealth::kDead) out.push_back(b);
  }
  return out;
}

}  // namespace greenps::control
